package elan

// The benchmark harness: every table and figure of the paper's evaluation
// has a benchmark that regenerates it. Run
//
//	go test -bench=. -benchmem
//
// to reproduce the full evaluation; each benchmark prints the paper-style
// rows once (on its first iteration) and then measures the cost of the
// regeneration itself. The per-figure logic lives in internal/experiment,
// shared with cmd/elan-bench.

import (
	"io"
	"math/rand"
	"os"
	"sync"
	"testing"

	"github.com/elan-sys/elan/internal/collective"
	"github.com/elan-sys/elan/internal/experiment"
	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/replication"
	"github.com/elan-sys/elan/internal/tensor"
	"github.com/elan-sys/elan/internal/topology"
	"github.com/elan-sys/elan/internal/transport"
)

// onceWriter returns os.Stdout on the first call of a benchmark and
// io.Discard afterwards, so tables print exactly once per `go test -bench`
// invocation.
type onceWriter struct {
	once sync.Once
}

func (o *onceWriter) next() io.Writer {
	w := io.Writer(io.Discard)
	o.once.Do(func() { w = os.Stdout })
	return w
}

var benchPrint = map[string]*onceWriter{}
var benchPrintMu sync.Mutex

func out(name string) io.Writer {
	benchPrintMu.Lock()
	ow, ok := benchPrint[name]
	if !ok {
		ow = &onceWriter{}
		benchPrint[name] = ow
	}
	benchPrintMu.Unlock()
	return ow.next()
}

func BenchmarkTable01ModelZoo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Table01(out("table1"))
	}
}

func BenchmarkTable02StateCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Table02(out("table2"))
	}
}

func BenchmarkFig01TraceUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig01(out("fig1")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig03StrongScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Fig03(out("fig3"))
	}
}

func BenchmarkFig04WeakScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Fig04(out("fig4"))
	}
}

func BenchmarkFig05BatchSizeAccuracy(b *testing.B) {
	quick := testing.Short()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig05(out("fig5"), quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlg01HybridScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Fig06Demo(out("alg1"))
	}
}

func BenchmarkFig08LinkBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Fig08(out("fig8"))
	}
}

func BenchmarkFig09ReplicationPlan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig09(out("fig9")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11SRBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Fig11(out("fig11"))
	}
}

func BenchmarkFig12AdjustmentTimelines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig12(out("fig12")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14RuntimeOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig14(out("fig14")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15Adjustments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig15(out("fig15")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16LitzThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig16(out("fig16")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17ResNetStrongScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Fig17(out("fig17"))
	}
}

func BenchmarkFig18ElasticAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Fig18(out("fig18"))
	}
}

func BenchmarkFig19TrainingEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig19(out("fig19")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable04TimeToSolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table04(out("table4")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20SchedulingPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig20(out("fig20"), 1, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig21UtilizationDetail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Fig21(out("fig21"), true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig22SystemComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig22(out("fig22"), true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationReplication(out("abl-repl")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCoordination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationCoordination(out("abl-coord")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationProgressiveLR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationProgressiveLR(out("abl-lr")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDataSemantics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationDataSemantics(out("abl-data")); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the hot substrates ---

func BenchmarkRingAllreduce8x64k(b *testing.B) {
	const ranks, length = 8, 65536
	g, err := collective.NewGroup(ranks)
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	vecs := make([][]float64, ranks)
	for r := range vecs {
		vecs[r] = make([]float64, length)
	}
	b.SetBytes(ranks * length * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan error, ranks)
		for r := 0; r < ranks; r++ {
			r := r
			go func() { done <- g.AllReduce(r, vecs[r]) }()
		}
		for r := 0; r < ranks; r++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.MustNew(128, 128)
	y := tensor.MustNew(128, 128)
	x.Randn(rng, 1)
	y.Randn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.MatMul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMulInto128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.MustNew(128, 128)
	y := tensor.MustNew(128, 128)
	dst := tensor.MustNew(128, 128)
	x.Randn(rng, 1)
	y.Randn(rng, 1)
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tensor.MatMulInto(dst, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMulInto128Parallel4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.MustNew(128, 128)
	y := tensor.MustNew(128, 128)
	dst := tensor.MustNew(128, 128)
	x.Randn(rng, 1)
	y.Randn(rng, 1)
	prev := tensor.SetParallelism(4)
	defer tensor.SetParallelism(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tensor.MatMulInto(dst, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMul512(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.MustNew(512, 512)
	y := tensor.MustNew(512, 512)
	x.Randn(rng, 1)
	y.Randn(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.MatMul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMulInto512(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.MustNew(512, 512)
	y := tensor.MustNew(512, 512)
	dst := tensor.MustNew(512, 512)
	x.Randn(rng, 1)
	y.Randn(rng, 1)
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tensor.MatMulInto(dst, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMulInto512Parallel4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.MustNew(512, 512)
	y := tensor.MustNew(512, 512)
	dst := tensor.MustNew(512, 512)
	x.Randn(rng, 1)
	y.Randn(rng, 1)
	prev := tensor.SetParallelism(4)
	defer tensor.SetParallelism(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tensor.MatMulInto(dst, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransportCall(b *testing.B) {
	bus := transport.NewBus(transport.DefaultBusConfig())
	if _, err := bus.Endpoint("server", func(m transport.Message) ([]byte, error) {
		return m.Payload, nil
	}); err != nil {
		b.Fatal(err)
	}
	client, err := bus.Endpoint("client", nil)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call("server", "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplicationPlanning(b *testing.B) {
	g := topology.DefaultGeometry()
	g.Nodes = 16
	c, err := topology.NewCluster(g)
	if err != nil {
		b.Fatal(err)
	}
	existing := topology.IDsOf(c.AllGPUs()[:64])
	add := topology.IDsOf(c.AllGPUs()[64:96])
	m := models.ResNet50()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := replication.NewPlan(existing, add, m.GPUStateBytes(), m.CPUStateBytes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScenarioStraggler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.StragglerScenario(out("straggler")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScenarioSpotCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.SpotScenario(out("spot")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationAsyncTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationAsyncTimeline(out("abl-async")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRingBroadcast8x64k(b *testing.B) {
	const ranks, length = 8, 65536
	g, err := collective.NewGroup(ranks)
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	vecs := make([][]float64, ranks)
	for r := range vecs {
		vecs[r] = make([]float64, length)
	}
	b.SetBytes(length * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan error, ranks)
		for r := 0; r < ranks; r++ {
			r := r
			go func() { done <- g.Broadcast(r, 0, vecs[r]) }()
		}
		for r := 0; r < ranks; r++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkLiveTrainingStep(b *testing.B) {
	ds, err := GenDataset(1, 2048, 4, 3)
	if err != nil {
		b.Fatal(err)
	}
	job, err := NewLiveJob(LiveConfig{
		Dataset: ds, LayerSizes: []int{4, 32, 3},
		Workers: 4, TotalBatch: 64, LR: 0.05, Momentum: 0.9, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer job.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := job.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotRestore(b *testing.B) {
	ds, err := GenDataset(1, 512, 4, 3)
	if err != nil {
		b.Fatal(err)
	}
	job, err := NewLiveJob(LiveConfig{
		Dataset: ds, LayerSizes: []int{4, 64, 3},
		Workers: 2, TotalBatch: 16, LR: 0.05, Momentum: 0.9, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer job.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := job.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		if err := job.RestoreSnapshot(snap); err != nil {
			b.Fatal(err)
		}
	}
}
