package main

import (
	"strings"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"fifo", "bf", "e-fifo", "e-bf"} {
		if _, err := parsePolicy(name); err != nil {
			t.Errorf("parsePolicy(%s): %v", name, err)
		}
	}
	if _, err := parsePolicy("lifo"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestParseSystem(t *testing.T) {
	for _, name := range []string{"ideal", "elan", "sr"} {
		if _, err := parseSystem(name, 1); err != nil {
			t.Errorf("parseSystem(%s): %v", name, err)
		}
	}
	if _, err := parseSystem("magic", 1); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "e-bf", "elan", 128, 2, 300, 30, 1); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{"mean JPT", "mean JCT", "makespan", "utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "nope", "elan", 128, 2, 300, 30, 1); err == nil {
		t.Fatal("bad policy accepted")
	}
	if err := run(&b, "e-bf", "nope", 128, 2, 300, 30, 1); err == nil {
		t.Fatal("bad system accepted")
	}
	if err := run(&b, "e-bf", "elan", 0, 2, 300, 30, 1); err == nil {
		t.Fatal("zero GPUs accepted")
	}
}
