// Command elan-sched runs the elastic scheduling simulator on a synthetic
// trace and reports JPT / JCT / makespan / utilization.
//
// Usage:
//
//	elan-sched -policy e-bf -system elan -gpus 128 -hours 48 -seed 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/elan-sys/elan/internal/metrics"
	"github.com/elan-sys/elan/internal/sched"
	"github.com/elan-sys/elan/internal/trace"
)

func main() {
	var (
		policy  = flag.String("policy", "e-bf", "fifo | bf | e-fifo | e-bf")
		system  = flag.String("system", "elan", "ideal | elan | sr")
		gpus    = flag.Int("gpus", 128, "cluster GPU count")
		hours   = flag.Float64("hours", 48, "trace span in hours")
		perDay  = flag.Int("jobs-per-day", 260, "mean job arrivals per day")
		service = flag.Float64("service-min", 150, "mean job service minutes")
		seed    = flag.Int64("seed", 1, "trace seed")
	)
	flag.Parse()
	if err := run(os.Stdout, *policy, *system, *gpus, *hours, *perDay, *service, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "elan-sched:", err)
		os.Exit(1)
	}
}

func parsePolicy(s string) (sched.Policy, error) {
	switch s {
	case "fifo":
		return sched.FIFO, nil
	case "bf":
		return sched.Backfill, nil
	case "e-fifo":
		return sched.ElasticFIFO, nil
	case "e-bf":
		return sched.ElasticBackfill, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func parseSystem(s string, seed int64) (sched.System, error) {
	switch s {
	case "ideal":
		return sched.IdealSystem{}, nil
	case "elan":
		return sched.NewElanSystem(seed), nil
	case "sr":
		return sched.NewSRSystem(seed), nil
	default:
		return nil, fmt.Errorf("unknown system %q", s)
	}
}

func run(w io.Writer, policyName, systemName string, gpus int, hours float64, perDay int, service float64, seed int64) error {
	policy, err := parsePolicy(policyName)
	if err != nil {
		return err
	}
	system, err := parseSystem(systemName, seed)
	if err != nil {
		return err
	}
	tcfg := trace.Config{
		Seed:               seed,
		Span:               time.Duration(hours * float64(time.Hour)),
		JobsPerDay:         perDay,
		ClusterGPUs:        gpus,
		MeanServiceMinutes: service,
	}
	jobs, err := trace.Generate(tcfg)
	if err != nil {
		return err
	}
	cfg := sched.DefaultConfig(policy, system)
	cfg.GPUs = gpus
	res, err := sched.Run(cfg, jobs)
	if err != nil {
		return err
	}
	t := metrics.NewTable(fmt.Sprintf("%s on %s, %d jobs, %d GPUs", policy, system.Name(), len(jobs), gpus),
		"Metric", "Value")
	t.AddRow("mean JPT", res.MeanJPT.Round(time.Second).String())
	t.AddRow("mean JCT", res.MeanJCT.Round(time.Second).String())
	t.AddRow("makespan", res.Makespan.Round(time.Minute).String())
	var meanUtil float64
	for _, u := range res.UtilVals {
		meanUtil += u
	}
	if len(res.UtilVals) > 0 {
		meanUtil /= float64(len(res.UtilVals))
	}
	t.AddRow("mean utilization", fmt.Sprintf("%.1f%%", 100*meanUtil))
	t.Render(w)
	util := &metrics.Series{Name: "utilization"}
	for i := range res.UtilHours {
		util.Add(res.UtilHours[i], res.UtilVals[i])
	}
	metrics.PlotASCII(w, "GPU utilization over time", 72, 12, util.Downsample(72))
	return nil
}
