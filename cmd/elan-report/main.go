// Command elan-report runs the full evaluation and writes a browsable
// report directory: one text file per experiment plus an index, suitable
// for attaching to a reproduction artifact.
//
// Usage:
//
//	elan-report -out report/          # full run
//	elan-report -out report/ -quick   # shrunken workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/experiment"
)

func main() {
	out := flag.String("out", "report", "output directory")
	quick := flag.Bool("quick", false, "shrink workloads for a fast run")
	flag.Parse()
	if err := run(*out, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "elan-report:", err)
		os.Exit(1)
	}
}

func run(outDir string, quick bool) error {
	if outDir == "" {
		return fmt.Errorf("empty output directory")
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("create %s: %w", outDir, err)
	}
	// Report durations are genuinely wall-clock — they time real local
	// compute — but still flow through the clock substrate.
	clk := clock.Wall{}
	var index strings.Builder
	index.WriteString("# Elan reproduction report\n\n")
	fmt.Fprintf(&index, "Mode: quick=%v\n\n", quick)
	index.WriteString("| Experiment | Status | Duration | File |\n|---|---|---|---|\n")
	for _, id := range experiment.IDs() {
		path := filepath.Join(outDir, id+".txt")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		start := clk.Now()
		runErr := experiment.Run(id, f, quick)
		dur := clk.Since(start).Round(time.Millisecond)
		if cerr := f.Close(); cerr != nil && runErr == nil {
			runErr = cerr
		}
		status := "ok"
		if runErr != nil {
			status = "FAILED: " + runErr.Error()
		}
		fmt.Fprintf(&index, "| %s | %s | %v | [%s.txt](./%s.txt) |\n", id, status, dur, id, id)
		if runErr != nil {
			// Keep going so the index records every failure, then report.
			defer func(id string, err error) {
				fmt.Fprintf(os.Stderr, "elan-report: %s failed: %v\n", id, err)
			}(id, runErr)
		}
	}
	indexPath := filepath.Join(outDir, "README.md")
	if err := os.WriteFile(indexPath, []byte(index.String()), 0o644); err != nil {
		return fmt.Errorf("write index: %w", err)
	}
	fmt.Printf("report written to %s (%d experiments)\n", outDir, len(experiment.IDs()))
	return nil
}
