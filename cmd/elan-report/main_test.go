package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "report")
	if err := run(out, true); err != nil {
		t.Fatalf("run: %v", err)
	}
	index, err := os.ReadFile(filepath.Join(out, "README.md"))
	if err != nil {
		t.Fatalf("read index: %v", err)
	}
	s := string(index)
	for _, want := range []string{"fig15", "table4", "straggler", "| ok |"} {
		if !strings.Contains(s, want) {
			t.Errorf("index missing %q", want)
		}
	}
	if strings.Contains(s, "FAILED") {
		t.Fatalf("report contains failures:\n%s", s)
	}
	// Every experiment file exists and is non-empty.
	entries, err := os.ReadDir(out)
	if err != nil {
		t.Fatalf("read dir: %v", err)
	}
	txt := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".txt") {
			info, err := e.Info()
			if err != nil {
				t.Fatalf("stat: %v", err)
			}
			if info.Size() == 0 {
				t.Errorf("%s is empty", e.Name())
			}
			txt++
		}
	}
	if txt < 25 {
		t.Fatalf("only %d experiment files", txt)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", false); err == nil {
		t.Fatal("empty output dir accepted")
	}
}
