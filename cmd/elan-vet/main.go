// elan-vet mechanically enforces the project's static invariants: the
// clock-injection contract behind deterministic simulation, seeded
// randomness behind replayable chaos runs, context-cancellable blocking
// APIs, no blocking under held mutexes, no test-masking t.Fatal in
// goroutines, span lifetimes that always reach End, pooled buffers released
// exactly once on every path, errors.Is instead of sentinel identity, and
// allocation-free //elan:hotpath functions.
//
// Usage:
//
//	elan-vet [-analyzer name[,name...]] [-json] [-list] [-report-allows] [packages]
//
// Packages default to ./... resolved against the enclosing module root.
// Findings print as file:line:col: message (analyzer) — or, with -json, as
// a JSON array with stable field order (file, line, col, analyzer, message)
// — and any finding makes the exit status 1, so CI can run
// `go run ./cmd/elan-vet ./...` as a required job. A finding may be waived
// on its line with a justified `//elan:vet-allow <analyzer> — why` comment;
// -report-allows prints the full waiver inventory as JSON instead of
// running the analyzers, so CI can archive it and reject waivers whose
// justification is empty.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/elan-sys/elan/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag fixes the field order of -json output: file, line, col,
// analyzer, message. encoding/json emits struct fields in declaration
// order, so this order is a stable interface for jq pipelines in CI.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonAllow is one waiver in -report-allows output.
type jsonAllow struct {
	File          string   `json:"file"`
	Line          int      `json:"line"`
	Analyzers     []string `json:"analyzers"`
	Justification string   `json:"justification"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("elan-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	analyzerFlag := fs.String("analyzer", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	reportAllows := fs.Bool("report-allows", false, "print the //elan:vet-allow waiver inventory as JSON and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var names []string
	if *analyzerFlag != "" {
		names = strings.Split(*analyzerFlag, ",")
	}
	analyzers, err := analysis.ByName(names...)
	if err != nil {
		fmt.Fprintf(stderr, "elan-vet: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "elan-vet: %v\n", err)
		return 2
	}
	root, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "elan-vet: %v\n", err)
		return 2
	}
	// Resolve patterns relative to cwd but load with module-relative
	// paths, so allowlists keyed on "internal/clock" hold wherever the
	// tool is invoked from.
	rel, err := filepath.Rel(root, cwd)
	if err != nil {
		rel = "."
	}
	for i, p := range patterns {
		patterns[i] = filepath.ToSlash(filepath.Join(rel, p))
	}

	pkgs, err := analysis.LoadPackages(root, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "elan-vet: %v\n", err)
		return 2
	}

	if *reportAllows {
		allows := analysis.CollectAllows(pkgs)
		rows := make([]jsonAllow, 0, len(allows))
		for _, a := range allows {
			rows = append(rows, jsonAllow{
				File:          relPath(cwd, a.Pos.Filename),
				Line:          a.Pos.Line,
				Analyzers:     a.Analyzers,
				Justification: a.Justification,
			})
		}
		return emitJSON(stdout, stderr, rows, 0)
	}

	diags := analysis.Run(analyzers, pkgs)
	for i := range diags {
		// Print paths relative to the invocation directory so CI log
		// lines are short and clickable.
		diags[i].Pos.Filename = relPath(cwd, diags[i].Pos.Filename)
	}

	exit := 0
	if len(diags) > 0 {
		exit = 1
	}
	if *jsonOut {
		rows := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			rows = append(rows, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		return emitJSON(stdout, stderr, rows, exit)
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if exit != 0 {
		fmt.Fprintf(stderr, "elan-vet: %d finding(s)\n", len(diags))
	}
	return exit
}

// emitJSON marshals v (an initialized, possibly empty slice — so a clean
// run prints `[]`, never `null`) with indentation for diffable artifacts.
func emitJSON(stdout, stderr io.Writer, v any, exit int) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(stderr, "elan-vet: encode: %v\n", err)
		return 2
	}
	return exit
}

func relPath(cwd, name string) string {
	if r, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return name
}
