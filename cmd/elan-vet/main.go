// elan-vet mechanically enforces the project's static invariants: the
// clock-injection contract behind deterministic simulation, seeded
// randomness behind replayable chaos runs, context-cancellable blocking
// APIs, no blocking under held mutexes, and no test-masking t.Fatal in
// goroutines.
//
// Usage:
//
//	elan-vet [-analyzer name[,name...]] [-list] [packages]
//
// Packages default to ./... resolved against the enclosing module root.
// Findings print as file:line:col: message (analyzer) and any finding
// makes the exit status 1, so CI can run `go run ./cmd/elan-vet ./...` as
// a required job. A finding may be waived on its line with a justified
// `//elan:vet-allow <analyzer> — why` comment.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/elan-sys/elan/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("elan-vet", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	analyzerFlag := fs.String("analyzer", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var names []string
	if *analyzerFlag != "" {
		names = strings.Split(*analyzerFlag, ",")
	}
	analyzers, err := analysis.ByName(names...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "elan-vet: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "elan-vet: %v\n", err)
		return 2
	}
	root, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "elan-vet: %v\n", err)
		return 2
	}
	// Resolve patterns relative to cwd but load with module-relative
	// paths, so allowlists keyed on "internal/clock" hold wherever the
	// tool is invoked from.
	rel, err := filepath.Rel(root, cwd)
	if err != nil {
		rel = "."
	}
	for i, p := range patterns {
		patterns[i] = filepath.ToSlash(filepath.Join(rel, p))
	}

	pkgs, err := analysis.LoadPackages(root, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "elan-vet: %v\n", err)
		return 2
	}
	diags := analysis.Run(analyzers, pkgs)
	for _, d := range diags {
		// Print paths relative to the invocation directory so CI log
		// lines are short and clickable.
		if r, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			d.Pos.Filename = r
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "elan-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
