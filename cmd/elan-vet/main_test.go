package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestWholeTreeClean(t *testing.T) {
	// The final tree must satisfy every invariant: this is the same run
	// CI performs, kept under `go test` so a violation fails locally too.
	var out, errOut bytes.Buffer
	if code := run([]string{"../../..."}, &out, &errOut); code != 0 {
		t.Fatalf("elan-vet over the module = exit %d, want 0\n%s%s", code, out.String(), errOut.String())
	}
}

func TestFindingsExitNonZero(t *testing.T) {
	// Pointing directly at analyzer testdata (excluded from ./... walks)
	// must surface its intentional violations.
	code := run([]string{"-analyzer", "clockpolicy", "../../internal/analysis/testdata/src/clockpolicy"}, io.Discard, io.Discard)
	if code != 1 {
		t.Fatalf("elan-vet over violating testdata = exit %d, want 1", code)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	if code := run([]string{"-analyzer", "nope", "../../..."}, io.Discard, io.Discard); code != 2 {
		t.Fatalf("unknown analyzer = exit %d, want 2", code)
	}
}

func TestList(t *testing.T) {
	if code := run([]string{"-list"}, io.Discard, io.Discard); code != 0 {
		t.Fatalf("-list = exit %d, want 0", code)
	}
}

func TestJSONFindings(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-json", "-analyzer", "erridentity", "../../internal/analysis/testdata/src/erridentity"}, &out, io.Discard)
	if code != 1 {
		t.Fatalf("-json over violating testdata = exit %d, want 1", code)
	}
	var rows []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &rows); err != nil {
		t.Fatalf("-json output is not parseable JSON: %v\n%s", err, out.String())
	}
	if len(rows) == 0 {
		t.Fatal("-json output is empty despite exit 1")
	}
	for _, r := range rows {
		if r.File == "" || r.Line == 0 || r.Col == 0 || r.Analyzer != "erridentity" || r.Message == "" {
			t.Fatalf("incomplete diagnostic row: %+v", r)
		}
	}
	// Field order is a stable interface for jq pipelines: file, line,
	// col, analyzer, message.
	text := out.String()
	order := []string{`"file"`, `"line"`, `"col"`, `"analyzer"`, `"message"`}
	last := -1
	for _, key := range order {
		i := strings.Index(text, key)
		if i < 0 || i < last {
			t.Fatalf("JSON field order broken: want %v in order\n%s", order, text)
		}
		last = i
	}
}

func TestJSONCleanPrintsEmptyArray(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-json", "../../internal/analysis/testdata/src/clean"}, &out, io.Discard)
	if code != 0 {
		t.Fatalf("-json over clean testdata = exit %d, want 0\n%s", code, out.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Fatalf("clean -json output = %q, want [] (never null)", got)
	}
}

func TestReportAllows(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-report-allows", "../../internal/analysis/testdata/src/hotpathalloc"}, &out, io.Discard)
	if code != 0 {
		t.Fatalf("-report-allows = exit %d, want 0", code)
	}
	var rows []struct {
		File          string   `json:"file"`
		Line          int      `json:"line"`
		Analyzers     []string `json:"analyzers"`
		Justification string   `json:"justification"`
	}
	if err := json.Unmarshal(out.Bytes(), &rows); err != nil {
		t.Fatalf("-report-allows output is not parseable JSON: %v\n%s", err, out.String())
	}
	if len(rows) != 1 {
		t.Fatalf("got %d waivers, want the 1 in hotpathalloc testdata:\n%s", len(rows), out.String())
	}
	w := rows[0]
	if len(w.Analyzers) != 1 || w.Analyzers[0] != "hotpathalloc" {
		t.Fatalf("waiver analyzers = %v, want [hotpathalloc]", w.Analyzers)
	}
	if w.Justification == "" || !strings.Contains(w.Justification, "testdata") {
		t.Fatalf("waiver justification not captured: %+v", w)
	}
	if w.Line == 0 || !strings.HasSuffix(w.File, "a.go") {
		t.Fatalf("waiver position not captured: %+v", w)
	}
}
