package main

import "testing"

func TestWholeTreeClean(t *testing.T) {
	// The final tree must satisfy every invariant: this is the same run
	// CI performs, kept under `go test` so a violation fails locally too.
	if code := run([]string{"../../..."}); code != 0 {
		t.Fatalf("elan-vet over the module = exit %d, want 0", code)
	}
}

func TestFindingsExitNonZero(t *testing.T) {
	// Pointing directly at analyzer testdata (excluded from ./... walks)
	// must surface its intentional violations.
	code := run([]string{"-analyzer", "clockpolicy", "../../internal/analysis/testdata/src/clockpolicy"})
	if code != 1 {
		t.Fatalf("elan-vet over violating testdata = exit %d, want 1", code)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	if code := run([]string{"-analyzer", "nope", "../../..."}); code != 2 {
		t.Fatalf("unknown analyzer = exit %d, want 2", code)
	}
}

func TestList(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("-list = exit %d, want 0", code)
	}
}
