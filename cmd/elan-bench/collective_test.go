package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteCollectiveJSON pins the acceptance shape of BENCH_collective.json:
// both engines measured allocation-free in-process, and the simulated
// section showing hierarchical beating flat at every multi-node point with a
// near-linear weak-scaling curve.
func TestWriteCollectiveJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "collective.json")
	var b strings.Builder
	if err := writeCollectiveJSON(path, true, &b); err != nil {
		t.Fatalf("writeCollectiveJSON: %v", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report collReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(report.Measured) != 2 {
		t.Fatalf("measured %d engines, want flat and hierarchical", len(report.Measured))
	}
	for _, r := range report.Measured {
		if r.NsPerOp <= 0 {
			t.Errorf("%s: degenerate measurement %+v", r.Name, r)
		}
		if r.AllocsPerOp >= 1 {
			t.Errorf("%s: %.2f allocs/op in steady state, want sub-one", r.Name, r.AllocsPerOp)
		}
	}

	sim := report.Simulated
	if sim.GradBytes <= 0 || sim.Model == "" {
		t.Fatalf("simulated section incomplete: %+v", sim)
	}
	multiNode := 0
	for _, p := range sim.Allreduce {
		if p.Nodes < 2 {
			continue
		}
		multiNode++
		if p.HierNs >= p.FlatNs {
			t.Errorf("%d workers (%d nodes): hierarchical %v ns not below flat %v ns",
				p.Workers, p.Nodes, p.HierNs, p.FlatNs)
		}
	}
	if multiNode < 2 {
		t.Fatalf("only %d multi-node simulation points", multiNode)
	}
	for _, p := range sim.WeakScaling {
		if p.HierEfficiency < p.FlatEfficiency {
			t.Errorf("%d workers: hierarchical efficiency %.3f below flat %.3f",
				p.Workers, p.HierEfficiency, p.FlatEfficiency)
		}
		// Near-linear: the hierarchical curve must hold the efficiency floor
		// the perfmodel tests pin (ResNet-50 stays comfortably above it).
		if p.HierEfficiency < 0.6 {
			t.Errorf("%d workers: hierarchical weak efficiency %.3f below 0.6", p.Workers, p.HierEfficiency)
		}
	}
	if n := len(sim.WeakScaling); n < 5 {
		t.Fatalf("weak-scaling curve has only %d points", n)
	}
	if !strings.Contains(b.String(), "wrote") {
		t.Errorf("summary line missing:\n%s", b.String())
	}
}
