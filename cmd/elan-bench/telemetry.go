package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/telemetry"
)

// tracedStep runs the instrumented shape of one worker rank step — the
// rank-step span with its annotations and the forward/allreduce/optimize
// children — against the given tracer. With the Nop tracer every span is
// nil and the whole function is allocation-free; with a Recorder it is the
// span cost the -telemetry report measures.
func tracedStep(tr telemetry.Tracer, iter int) {
	s := tr.StartSpan("worker.rank_step")
	s.SetProc("agent-0")
	s.AnnotateInt("rank", 0)
	s.AnnotateInt("iter", iter)
	f := s.Child("worker.forward")
	f.End()
	c := s.Child("collective.allreduce")
	c.End()
	o := s.Child("worker.optimize")
	o.End()
	s.End()
}

// telemetryBenches measures the observability tax: the instrumented step
// shape with tracing disabled (the production default), enabled, and
// enabled with the flight ring attached, plus the raw flight-recorder
// record path. The disabled step and the flight record path must both
// measure allocation-free — the strict ==0 versions of those guards are
// the AllocsPerRun tests in internal/telemetry.
func telemetryBenches(quick bool) ([]hotBenchResult, error) {
	clk := clock.Wall{}
	scale := 1
	if quick {
		scale = 50
	}
	var results []hotBenchResult
	add := func(name string, iters int, fn func() error) error {
		if iters < 2 {
			iters = 2
		}
		r, err := measureHot(clk, name, iters, fn)
		if err != nil {
			return err
		}
		results = append(results, r)
		return nil
	}

	iter := 0
	nop := telemetry.Nop{}
	if err := add("span_disabled_step", 200000/scale, func() error {
		tracedStep(nop, iter)
		iter++
		return nil
	}); err != nil {
		return nil, err
	}

	// Enabled paths record 4 spans per step (1 + warm-up); the recorder cap
	// is sized so no span is dropped and the append path is what's measured.
	// The figure includes the GC time the retained trace induces — that is
	// the honest cost of running with an exportable trace on.
	const stepIters = 20000
	rec := telemetry.NewRecorder(clk, 4*(stepIters+2))
	iter = 0
	if err := add("span_enabled_step", stepIters/scale, func() error {
		tracedStep(rec, iter)
		iter++
		return nil
	}); err != nil {
		return nil, err
	}

	rec = telemetry.NewRecorder(clk, 4*(stepIters+2))
	rec.SetFlightRecorder(telemetry.NewFlightRecorder(0))
	iter = 0
	if err := add("span_enabled_flight", stepIters/scale, func() error {
		tracedStep(rec, iter)
		iter++
		return nil
	}); err != nil {
		return nil, err
	}

	// The bare ring: one prebuilt finished span (two attrs, one event)
	// copied into the flight recorder per op. This is the overhead the
	// always-on black box adds to every span End.
	flight := telemetry.NewFlightRecorder(0)
	epoch := time.Unix(0, 0)
	srec := telemetry.SpanRecord{
		ID: 7, Parent: 3, Trace: 1, Proc: "agent-0", Name: "worker.rank_step",
		Start: epoch, End: epoch.Add(time.Millisecond),
		Attrs:  []telemetry.Attr{{Key: "rank", Value: "0"}, {Key: "iter", Value: "12"}},
		Events: []telemetry.EventRecord{{Name: "retry", At: epoch}},
	}
	if err := add("flight_record", 1000000/scale, func() error {
		flight.Record(srec)
		return nil
	}); err != nil {
		return nil, err
	}
	return results, nil
}

// writeTelemetryJSON runs the telemetry overhead benchmarks and writes the
// report.
func writeTelemetryJSON(path string, quick bool, w io.Writer) error {
	results, err := telemetryBenches(quick)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Fprintf(w, "%-32s %12.0f ns/op %8.1f allocs/op %12.1f B/op\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	fmt.Fprintf(w, "wrote %d benchmarks to %s\n", len(results), path)
	return nil
}
