package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/elan-sys/elan/internal/checkpoint"
	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/store"
)

// The -store report measures the coordination state plane and the
// checkpoint plane rebuilt in this repo's sharded-store change.
//
// Throughput ladder: the pre-sharding design — one mutex over one map,
// allocating on every Get and Put — re-created here as mutexStore, against
// internal/store's 32-shard, zero-steady-state-alloc implementation, under
// a mixed 80/20 read/write workload on ~1KB values. The headline figure is
// speedup_c256 (sharded over single-mutex ops/sec at 256 goroutines).
//
// Watch fan-out: with 10k idle watchers parked on other keys, a Put on an
// unwatched key must do zero fan-out work (watch_work_per_put == 0) — the
// O(changed-keys) contract, proven by the store's own delivery counter.
//
// Checkpoints: delta saves and warm restores must cost O(dirty), not
// O(model): as the parameter count grows with the dirty set fixed, delta
// bytes and warm-restore work stay flat while the full-blob path (the old
// gob checkpoint.Store) grows linearly.
type storeBenchRow struct {
	Name        string  `json:"name"`
	Impl        string  `json:"impl"` // "mutex" | "sharded"
	Concurrency int     `json:"concurrency"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

type storeWatchRow struct {
	Name            string  `json:"name"`
	IdleWatchers    int     `json:"idle_watchers"`
	Puts            int     `json:"puts"`
	WatchWorkPerPut float64 `json:"watch_work_per_put"`
	NsPerPut        float64 `json:"ns_per_put"`
}

type storeCkptRow struct {
	Name           string  `json:"name"`
	NumElems       int     `json:"num_elems"`
	DirtyElems     int     `json:"dirty_elems"`
	FullBlobBytes  int64   `json:"full_blob_bytes"`
	DeltaBytes     int64   `json:"delta_bytes"`
	DeltaChunks    int     `json:"delta_chunks"`
	FullRestoreNs  float64 `json:"full_restore_ns"`
	WarmRestoreNs  float64 `json:"warm_restore_ns"`
	ChunksReplayed int     `json:"chunks_replayed"`
}

type storeBenchReport struct {
	Note        string          `json:"note"`
	ValueSize   int             `json:"value_bytes"`
	Rows        []storeBenchRow `json:"rows"`
	SpeedupC256 float64         `json:"speedup_c256"`
	Watch       []storeWatchRow `json:"watch"`
	Checkpoint  []storeCkptRow  `json:"checkpoint"`
	// Growth ratios largest/smallest model: the delta path must stay flat
	// (≈1) while the full-blob path tracks the model size.
	DeltaBytesGrowth float64 `json:"delta_bytes_growth"`
	FullBytesGrowth  float64 `json:"full_bytes_growth"`
	WarmNsGrowth     float64 `json:"warm_restore_ns_growth"`
}

// mutexStore is the pre-sharding coordination store re-created for the
// comparison rows: one mutex, one map, a copy allocated on every Get and
// every Put — the design internal/store replaced.
type mutexStore struct {
	mu   sync.Mutex
	data map[string][]byte
	rev  int64
}

func newMutexStore() *mutexStore {
	return &mutexStore{data: make(map[string][]byte)}
}

func (m *mutexStore) Put(key string, value []byte) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rev++
	m.data[key] = append([]byte(nil), value...)
	return m.rev
}

func (m *mutexStore) Get(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// xorshift is a tiny per-goroutine PRNG so key choice costs no allocations
// and no shared state.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// measureStore runs conc goroutines × opsPer mixed operations and reports
// whole-workload throughput with process-wide allocation figures.
func measureStore(name, impl string, conc, opsPer int, op func(g, i int) error) (storeBenchRow, error) {
	row := storeBenchRow{Name: name, Impl: impl, Concurrency: conc, Ops: conc * opsPer}
	clk := clock.Wall{}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := clk.Now()
	var wg sync.WaitGroup
	errs := make(chan error, conc)
	for g := 0; g < conc; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				if err := op(g, i); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := clk.Since(start)
	runtime.ReadMemStats(&after)
	close(errs)
	if err := <-errs; err != nil {
		return row, fmt.Errorf("%s: %w", name, err)
	}
	n := float64(row.Ops)
	row.NsPerOp = float64(elapsed.Nanoseconds()) / n
	row.OpsPerSec = n / elapsed.Seconds()
	row.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / n
	row.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / n
	return row, nil
}

const storeBenchKeys = 256

// storeKeyNames is precomputed so key selection costs the hot loops no
// allocations — the rows measure the stores, not fmt.
var storeKeyNames = func() [storeBenchKeys]string {
	var keys [storeBenchKeys]string
	for i := range keys {
		keys[i] = fmt.Sprintf("job/worker-%03d", i)
	}
	return keys
}()

func storeBenchKey(n uint64) string {
	return storeKeyNames[n%storeBenchKeys]
}

// storeThroughput runs the mutex vs sharded ladder: 80% reads, 20% writes
// over 256 keys holding valueSize-byte values.
func storeThroughput(report *storeBenchReport, valueSize int, quick bool) error {
	value := make([]byte, valueSize)
	for i := range value {
		value[i] = byte(i)
	}
	levels := []struct {
		conc, ops, quickOps int
	}{
		{1, 200000, 20000},
		{64, 4000, 400},
		{256, 1500, 150},
	}
	var mutexC256, shardedC256 float64

	old := newMutexStore()
	for i := 0; i < storeBenchKeys; i++ {
		old.Put(storeBenchKey(uint64(i)), value)
	}
	for _, lv := range levels {
		ops := lv.ops
		if quick {
			ops = lv.quickOps
		}
		rngs := make([]xorshift, lv.conc)
		for g := range rngs {
			rngs[g] = xorshift(g*2654435761 + 1)
		}
		row, err := measureStore(fmt.Sprintf("mutex_c%d", lv.conc), "mutex", lv.conc, ops,
			func(g, i int) error {
				r := rngs[g].next()
				key := storeBenchKey(r)
				if r%10 < 8 {
					if _, ok := old.Get(key); !ok {
						return fmt.Errorf("miss on %s", key)
					}
					return nil
				}
				old.Put(key, value)
				return nil
			})
		if err != nil {
			return err
		}
		report.Rows = append(report.Rows, row)
		if lv.conc == 256 {
			mutexC256 = row.OpsPerSec
		}
	}

	st := store.New()
	for i := 0; i < storeBenchKeys; i++ {
		st.Put(storeBenchKey(uint64(i)), value)
	}
	for _, lv := range levels {
		ops := lv.ops
		if quick {
			ops = lv.quickOps
		}
		rngs := make([]xorshift, lv.conc)
		bufs := make([][]byte, lv.conc)
		for g := range rngs {
			rngs[g] = xorshift(g*2654435761 + 1)
			bufs[g] = make([]byte, 0, valueSize)
		}
		row, err := measureStore(fmt.Sprintf("sharded_c%d", lv.conc), "sharded", lv.conc, ops,
			func(g, i int) error {
				r := rngs[g].next()
				key := storeBenchKey(r)
				if r%10 < 8 {
					buf, _, err := st.GetInto(key, bufs[g][:0])
					if err != nil {
						return err
					}
					bufs[g] = buf
					return nil
				}
				st.Put(key, value)
				return nil
			})
		if err != nil {
			return err
		}
		report.Rows = append(report.Rows, row)
		if lv.conc == 256 {
			shardedC256 = row.OpsPerSec
		}
	}
	if mutexC256 > 0 {
		report.SpeedupC256 = shardedC256 / mutexC256
	}
	return nil
}

// storeWatchBench parks idle watchers on 10k distinct keys and measures a
// Put storm on (a) a key nobody watches and (b) a watched key: fan-out work
// — the store's own delivery counter — must be 0 and 1 per Put.
func storeWatchBench(report *storeBenchReport, quick bool) error {
	st := store.New()
	watchers, puts := 10000, 20000
	if quick {
		watchers, puts = 1000, 2000
	}
	cancels := make([]func(), 0, watchers+1)
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	for i := 0; i < watchers; i++ {
		_, cancel := st.Watch(fmt.Sprintf("idle/%05d", i))
		cancels = append(cancels, cancel)
	}
	clk := clock.Wall{}
	value := []byte("x")

	before := st.WatchWork()
	start := clk.Now()
	for i := 0; i < puts; i++ {
		st.Put("hot/unwatched", value)
	}
	elapsed := clk.Since(start)
	report.Watch = append(report.Watch, storeWatchRow{
		Name:            "put_unwatched_key",
		IdleWatchers:    watchers,
		Puts:            puts,
		WatchWorkPerPut: float64(st.WatchWork()-before) / float64(puts),
		NsPerPut:        float64(elapsed.Nanoseconds()) / float64(puts),
	})

	ch, cancel := st.Watch("hot/watched")
	cancels = append(cancels, cancel)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range ch {
		}
	}()
	before = st.WatchWork()
	start = clk.Now()
	for i := 0; i < puts; i++ {
		st.Put("hot/watched", value)
	}
	elapsed = clk.Since(start)
	// Delivery is asynchronous (a central dispatcher goroutine); wait for
	// it to work through the queued events before reading the counter.
	waitStart := clk.Now()
	for st.WatchWork()-before < int64(puts) && clk.Since(waitStart) < 10*time.Second {
		runtime.Gosched()
	}
	report.Watch = append(report.Watch, storeWatchRow{
		Name:            "put_watched_key",
		IdleWatchers:    watchers,
		Puts:            puts,
		WatchWorkPerPut: float64(st.WatchWork()-before) / float64(puts),
		NsPerPut:        float64(elapsed.Nanoseconds()) / float64(puts),
	})
	cancel()
	<-drained
	return nil
}

// storeCkptBench grows the model with the dirty set fixed and compares the
// delta path (bytes written, warm-restore work) against a full gob blob.
func storeCkptBench(report *storeBenchReport, quick bool) error {
	sizes := []int{16384, 65536, 262144}
	if quick {
		sizes = []int{4096, 16384, 65536}
	}
	const dirtyElems = 64
	clk := clock.Wall{}
	for _, n := range sizes {
		ds := checkpoint.NewDeltaStore(checkpoint.DeltaConfig{})
		state := make([]float64, n)
		for i := range state {
			state[i] = float64(i) * 0.5
		}
		name := fmt.Sprintf("model-%d", n)
		if _, err := ds.Save(name, []byte("hdr"), state); err != nil {
			return err
		}
		base := append([]float64(nil), state...)
		baseSeq, _ := ds.LastSeq(name)

		// Touch a fixed, size-independent sliver of the model.
		for i := 0; i < dirtyElems; i++ {
			state[i] += 1.0
		}
		st, err := ds.Save(name, []byte("hdr"), state)
		if err != nil {
			return err
		}

		blob := checkpoint.NewStore()
		if _, err := blob.Save(name, state); err != nil {
			return err
		}
		blobBytes, err := blob.Size(name)
		if err != nil {
			return err
		}

		start := clk.Now()
		if _, _, _, err := ds.Restore(name); err != nil {
			return err
		}
		fullNs := float64(clk.Since(start).Nanoseconds())

		start = clk.Now()
		_, rs, err := ds.RestoreFrom(name, base, baseSeq)
		if err != nil {
			return err
		}
		warmNs := float64(clk.Since(start).Nanoseconds())

		report.Checkpoint = append(report.Checkpoint, storeCkptRow{
			Name:           name,
			NumElems:       n,
			DirtyElems:     dirtyElems,
			FullBlobBytes:  blobBytes,
			DeltaBytes:     st.BytesWritten,
			DeltaChunks:    st.ChunksWritten,
			FullRestoreNs:  fullNs,
			WarmRestoreNs:  warmNs,
			ChunksReplayed: rs.ChunksReplayed,
		})
	}
	first := report.Checkpoint[0]
	last := report.Checkpoint[len(report.Checkpoint)-1]
	if first.DeltaBytes > 0 {
		report.DeltaBytesGrowth = float64(last.DeltaBytes) / float64(first.DeltaBytes)
	}
	if first.FullBlobBytes > 0 {
		report.FullBytesGrowth = float64(last.FullBlobBytes) / float64(first.FullBlobBytes)
	}
	if first.WarmRestoreNs > 0 {
		report.WarmNsGrowth = last.WarmRestoreNs / first.WarmRestoreNs
	}
	return nil
}

// storeBenches runs all three sections of the -store report.
func storeBenches(quick bool) (*storeBenchReport, error) {
	const valueSize = 1024
	report := &storeBenchReport{
		Note: "mutex = pre-sharding single-mutex allocating store; sharded = internal/store (32 shards, " +
			"zero-alloc steady state); 80/20 read/write over 256 keys of 1KB. watch rows prove O(changed-keys) " +
			"fan-out via the delivery counter. checkpoint rows grow the model with a fixed 64-elem dirty set: " +
			"delta bytes and warm-restore work stay flat, the full gob blob grows with the model.",
		ValueSize: valueSize,
	}
	if err := storeThroughput(report, valueSize, quick); err != nil {
		return nil, err
	}
	if err := storeWatchBench(report, quick); err != nil {
		return nil, err
	}
	if err := storeCkptBench(report, quick); err != nil {
		return nil, err
	}
	return report, nil
}

// writeStoreJSON runs the store benchmarks and writes the report.
func writeStoreJSON(path string, quick bool, w io.Writer) error {
	report, err := storeBenches(quick)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	for _, r := range report.Rows {
		fmt.Fprintf(w, "%-16s %10.0f ns/op %12.0f ops/s %8.2f allocs/op %10.1f B/op\n",
			r.Name, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp, r.BytesPerOp)
	}
	for _, r := range report.Watch {
		fmt.Fprintf(w, "%-20s %6d watchers %8.3f work/put %10.0f ns/put\n",
			r.Name, r.IdleWatchers, r.WatchWorkPerPut, r.NsPerPut)
	}
	for _, r := range report.Checkpoint {
		fmt.Fprintf(w, "%-14s full=%8dB delta=%6dB warm=%8.0fns (replayed %d chunks) cold=%8.0fns\n",
			r.Name, r.FullBlobBytes, r.DeltaBytes, r.WarmRestoreNs, r.ChunksReplayed, r.FullRestoreNs)
	}
	fmt.Fprintf(w, "sharded vs mutex at c256: %.1fx; delta growth %.2fx vs full-blob growth %.2fx; wrote %s\n",
		report.SpeedupC256, report.DeltaBytesGrowth, report.FullBytesGrowth, path)
	return nil
}
