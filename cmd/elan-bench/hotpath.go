package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/collective"
	"github.com/elan-sys/elan/internal/data"
	"github.com/elan-sys/elan/internal/nn"
	"github.com/elan-sys/elan/internal/tensor"
)

// hotBenchResult is one row of the -json hot-path report. Allocation
// figures are measured process-wide via runtime.MemStats, so multi-rank
// benchmarks include every participant — which is exactly the
// zero-steady-state-allocation contract the hot path promises.
type hotBenchResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// measureHot times iters calls of fn after one warm-up call (which builds
// workspaces, so the steady state is what gets measured).
func measureHot(clk clock.Clock, name string, iters int, fn func() error) (hotBenchResult, error) {
	r := hotBenchResult{Name: name, Iters: iters}
	if err := fn(); err != nil {
		return r, fmt.Errorf("%s: warm-up: %w", name, err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := clk.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return r, fmt.Errorf("%s: iter %d: %w", name, i, err)
		}
	}
	elapsed := clk.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	r.NsPerOp = float64(elapsed.Nanoseconds()) / n
	r.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / n
	r.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / n
	return r, nil
}

// hotpathBenches runs the hot-path micro-benchmarks: naive vs Into matmul
// (serial and parallel), the full nn training step, and the bare ring
// allreduce. quick shrinks iteration counts for tests.
func hotpathBenches(quick bool) ([]hotBenchResult, error) {
	clk := clock.Wall{}
	scale := 1
	if quick {
		scale = 50
	}
	var results []hotBenchResult
	add := func(name string, iters int, fn func() error) error {
		if iters < 2 {
			iters = 2
		}
		r, err := measureHot(clk, name, iters, fn)
		if err != nil {
			return err
		}
		results = append(results, r)
		return nil
	}

	rng := rand.New(rand.NewSource(1))
	const mm = 128
	x := tensor.MustNew(mm, mm)
	y := tensor.MustNew(mm, mm)
	dst := tensor.MustNew(mm, mm)
	x.Randn(rng, 1)
	y.Randn(rng, 1)
	if err := add("matmul_naive_128", 500/scale, func() error {
		_, err := tensor.MatMul(x, y)
		return err
	}); err != nil {
		return nil, err
	}
	prev := tensor.SetParallelism(1)
	err := add("matmul_into_128_serial", 500/scale, func() error {
		return tensor.MatMulInto(dst, x, y)
	})
	tensor.SetParallelism(prev)
	if err != nil {
		return nil, err
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2 // exercise the pool dispatch even on one CPU
	}
	prev = tensor.SetParallelism(workers)
	err = add(fmt.Sprintf("matmul_into_128_parallel_%d", workers), 500/scale, func() error {
		return tensor.MatMulInto(dst, x, y)
	})
	tensor.SetParallelism(prev)
	if err != nil {
		return nil, err
	}

	ds, err := data.GenGaussianMixture(1, 2048, 8, 3)
	if err != nil {
		return nil, err
	}
	net, err := nn.NewMLP(rand.New(rand.NewSource(1)), []int{8, 32, 32, 3})
	if err != nil {
		return nil, err
	}
	opt, err := nn.NewSGD(net.Params(), 0.05, 0.9)
	if err != nil {
		return nil, err
	}
	const batch = 32
	bx := tensor.MustNew(batch, ds.Features)
	by := make([]int, batch)
	var flat []float64
	cursor := 0
	if err := add("train_step_32x8-32-32-3", 500/scale, func() error {
		if err := ds.BatchInto(bx, by, cursor, cursor+batch); err != nil {
			return err
		}
		cursor = (cursor + batch) % ds.N()
		out, err := net.Forward(bx)
		if err != nil {
			return err
		}
		_, grad, err := net.SoftmaxLoss(out, by)
		if err != nil {
			return err
		}
		net.ZeroGrads()
		if err := net.Backward(grad); err != nil {
			return err
		}
		flat = net.FlattenGrads(flat[:0])
		if err := net.LoadGrads(flat); err != nil {
			return err
		}
		return opt.Step(net.Params(), net.Grads())
	}); err != nil {
		return nil, err
	}

	const ranks, vecLen = 4, 1 << 16
	g, err := collective.NewGroup(ranks)
	if err != nil {
		return nil, err
	}
	vecs := make([][]float64, ranks)
	for r := range vecs {
		vecs[r] = make([]float64, vecLen)
	}
	for r := 1; r < ranks; r++ {
		r := r
		go func() {
			for g.AllReduce(r, vecs[r]) == nil {
			}
		}()
	}
	err = add(fmt.Sprintf("allreduce_bare_%dx%d", ranks, vecLen), 200/scale, func() error {
		return g.AllReduce(0, vecs[0])
	})
	g.Close()
	if err != nil {
		return nil, err
	}
	return results, nil
}

// writeHotpathJSON runs the hot-path benchmarks and writes the report.
func writeHotpathJSON(path string, quick bool, w io.Writer) error {
	results, err := hotpathBenches(quick)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Fprintf(w, "%-32s %12.0f ns/op %8.1f allocs/op %12.1f B/op\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	fmt.Fprintf(w, "wrote %d benchmarks to %s\n", len(results), path)
	return nil
}
