package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteStoreJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	var b strings.Builder
	if err := writeStoreJSON(path, true, &b); err != nil {
		t.Fatalf("writeStoreJSON: %v", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report storeBenchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	byName := map[string]storeBenchRow{}
	for _, r := range report.Rows {
		byName[r.Name] = r
		if r.Ops <= 0 || r.NsPerOp <= 0 || r.OpsPerSec <= 0 {
			t.Errorf("%s: degenerate measurement %+v", r.Name, r)
		}
	}
	for _, name := range []string{
		"mutex_c1", "mutex_c64", "mutex_c256",
		"sharded_c1", "sharded_c64", "sharded_c256",
	} {
		if _, ok := byName[name]; !ok {
			t.Errorf("report missing %q", name)
		}
	}
	// The committed BENCH_store.json trajectory pins speedup_c256 >= 3 on a
	// quiet machine; in quick mode only shape and direction are asserted.
	if report.SpeedupC256 <= 1 {
		t.Errorf("speedup_c256 = %.2f, sharded store slower than single-mutex", report.SpeedupC256)
	}
	if len(report.Watch) != 2 {
		t.Fatalf("watch rows = %d, want 2", len(report.Watch))
	}
	// The O(changed-keys) contract is exact, not statistical: zero fan-out
	// work on the unwatched key, exactly one delivery per put on the
	// watched one.
	if w := report.Watch[0]; w.Name != "put_unwatched_key" || w.WatchWorkPerPut != 0 {
		t.Errorf("unwatched row = %+v, want zero watch work", w)
	}
	if w := report.Watch[1]; w.Name != "put_watched_key" || w.WatchWorkPerPut != 1 {
		t.Errorf("watched row = %+v, want one delivery per put", w)
	}
	if len(report.Checkpoint) < 2 {
		t.Fatalf("checkpoint rows = %d, want >= 2", len(report.Checkpoint))
	}
	for _, r := range report.Checkpoint {
		if r.DeltaBytes <= 0 || r.FullBlobBytes <= 0 || r.WarmRestoreNs <= 0 {
			t.Errorf("%s: degenerate checkpoint row %+v", r.Name, r)
		}
	}
	// Delta bytes are a function of the dirty set, not the model: exactly
	// flat across sizes. The full blob must grow with the model.
	if report.DeltaBytesGrowth != 1 {
		t.Errorf("delta_bytes_growth = %.2f, want 1.0 (O(dirty) bytes)", report.DeltaBytesGrowth)
	}
	if report.FullBytesGrowth < 2 {
		t.Errorf("full_bytes_growth = %.2f, want model-proportional growth", report.FullBytesGrowth)
	}
	if !strings.Contains(b.String(), "wrote") {
		t.Errorf("summary line missing:\n%s", b.String())
	}
}
