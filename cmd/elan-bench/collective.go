package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/collective"
	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/perfmodel"
	"github.com/elan-sys/elan/internal/topology"
)

// collReport is the -collective report: measured in-process numbers for the
// flat and hierarchical allreduce engines, plus the analytic model's
// prediction for the hardware regime the hierarchy is built for.
//
// The two sections deliberately tell different stories. In-process "links"
// are Go channels and all cost the same, so the hierarchy's extra intra-node
// hops are pure overhead and the flat ring wins wall-clock — the measured
// rows exist to pin the allocation-free contract and give a real baseline,
// not to show a speedup. The speedup lives where the topology does: the
// simulated section evaluates the same schedules under NVLink-class
// intra-node bandwidth against an IB network, where only the leaders-only
// ring touches the slow links and weak scaling stays near-linear.
type collReport struct {
	Measured     []hotBenchResult `json:"measured"`
	MeasuredNote string           `json:"measured_note"`
	Simulated    collSimulated    `json:"simulated"`
}

// collSimulated is the perfmodel section of the -collective report.
type collSimulated struct {
	Note        string          `json:"note"`
	Comm        collCommParams  `json:"comm"`
	Model       string          `json:"model"`
	GradBytes   int64           `json:"grad_bytes"`
	Allreduce   []collSimPoint  `json:"allreduce"`
	WeakScaling []collWeakPoint `json:"weak_scaling"`
}

// collCommParams records the CommModel parameters the simulation ran under,
// so the committed report is reproducible.
type collCommParams struct {
	LatencyPerStepNs     int64   `json:"latency_per_step_ns"`
	IntraNodeBytesPerSec float64 `json:"intra_node_bytes_per_sec"`
	InterNodeBytesPerSec float64 `json:"inter_node_bytes_per_sec"`
	GPUsPerNode          int     `json:"gpus_per_node"`
}

// collSimPoint compares one worker count's flat and hierarchical allreduce
// times for the model's full gradient.
type collSimPoint struct {
	Workers int     `json:"workers"`
	Nodes   int     `json:"nodes"`
	FlatNs  float64 `json:"flat_ns"`
	HierNs  float64 `json:"hier_ns"`
	Speedup float64 `json:"speedup"`
}

// collWeakPoint is one point of the weak-scaling curve (fixed per-worker
// batch). Efficiency is throughput relative to perfectly linear scaling from
// one worker; near-linear hierarchical scaling is the paper's Figure 3/4
// shape.
type collWeakPoint struct {
	Workers        int     `json:"workers"`
	FlatPerSec     float64 `json:"flat_samples_per_sec"`
	HierPerSec     float64 `json:"hier_samples_per_sec"`
	FlatEfficiency float64 `json:"flat_efficiency"`
	HierEfficiency float64 `json:"hier_efficiency"`
}

// nvlinkCommModel is the simulated hardware regime: the default testbed's
// latency and IB network, with NVLink-class intra-node links. This is the
// regime hierarchical collectives are designed for — the intra:inter
// bandwidth gap is wide enough that spending extra intra-node volume to keep
// the network traffic leaders-only is a clear win.
func nvlinkCommModel() perfmodel.CommModel {
	cm := perfmodel.DefaultCommModel()
	cm.IntraNodeBytesPerSec = 60e9
	return cm
}

// measureCollective times the flat 8-rank ring and the 2-node × 4-GPU
// hierarchical engine on the same 64k-element vector, in-process.
func measureCollective(quick bool) ([]hotBenchResult, error) {
	clk := clock.Wall{}
	iters := 200
	if quick {
		iters = 4
	}
	const ranks, vecLen = 8, 1 << 16

	run := func(name string, topo collective.Topology) (hotBenchResult, error) {
		g, err := collective.NewGroupWithTopology(topo)
		if err != nil {
			return hotBenchResult{}, err
		}
		defer g.Close()
		vecs := make([][]float64, ranks)
		for r := range vecs {
			vecs[r] = make([]float64, vecLen)
		}
		for r := 1; r < ranks; r++ {
			r := r
			go func() {
				for g.AllReduce(r, vecs[r]) == nil {
				}
			}()
		}
		return measureHot(clk, name, iters, func() error {
			return g.AllReduce(0, vecs[0])
		})
	}

	flat, err := run(fmt.Sprintf("allreduce_flat_%dx%d", ranks, vecLen), collective.Flat(ranks))
	if err != nil {
		return nil, err
	}
	place := make([]topology.GPUID, ranks)
	for r := range place {
		place[r] = topology.GPUID{Node: r / (ranks / 2), Index: r % (ranks / 2)}
	}
	ct, err := collective.NewClustered(place)
	if err != nil {
		return nil, err
	}
	hier, err := run(fmt.Sprintf("allreduce_hier_2x%dx%d", ranks/2, vecLen), ct)
	if err != nil {
		return nil, err
	}
	return []hotBenchResult{flat, hier}, nil
}

// simulateCollective evaluates the analytic comm model in the NVLink regime
// for VGG-19's gradient: flat vs hierarchical allreduce times across node
// counts, and the weak-scaling throughput curve. VGG-19 is the zoo's most
// communication-bound model (a half-gigabyte gradient), so its curve
// actually exposes the allreduce term — overlap hides ResNet-class comm
// entirely at a comfortable batch and both curves degenerate to 1.0.
func simulateCollective() collSimulated {
	cm := nvlinkCommModel()
	m := models.VGG19()
	bytes := m.GradBytes()
	sim := collSimulated{
		Note: "analytic model, NVLink-class intra-node links vs IB network; " +
			"hierarchical keeps network traffic leaders-only so allreduce time " +
			"scales with nodes, not workers",
		Comm: collCommParams{
			LatencyPerStepNs:     cm.LatencyPerStep.Nanoseconds(),
			IntraNodeBytesPerSec: cm.IntraNodeBytesPerSec,
			InterNodeBytesPerSec: cm.InterNodeBytesPerSec,
			GPUsPerNode:          cm.GPUsPerNode,
		},
		Model:     m.Name,
		GradBytes: bytes,
	}

	flatCM, hierCM := cm, cm
	hierCM.Hierarchical = true
	for _, n := range []int{8, 16, 32, 64} {
		flat := flatCM.AllreduceTime(n, bytes)
		hier := hierCM.AllreduceTime(n, bytes)
		sim.Allreduce = append(sim.Allreduce, collSimPoint{
			Workers: n,
			Nodes:   (n + cm.GPUsPerNode - 1) / cm.GPUsPerNode,
			FlatNs:  float64(flat.Nanoseconds()),
			HierNs:  float64(hier.Nanoseconds()),
			Speedup: float64(flat) / float64(hier),
		})
	}

	const perWorkerBatch = 32
	flatPerf, hierPerf := perfmodel.New(flatCM), perfmodel.New(hierCM)
	base, err := flatPerf.Throughput(m, 1, perWorkerBatch)
	if err != nil || base <= 0 {
		return sim // zoo model with default comm cannot fail; keep report valid
	}
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		ft, err1 := flatPerf.Throughput(m, n, perWorkerBatch)
		ht, err2 := hierPerf.Throughput(m, n, perWorkerBatch)
		if err1 != nil || err2 != nil {
			continue
		}
		linear := base * float64(n)
		sim.WeakScaling = append(sim.WeakScaling, collWeakPoint{
			Workers:        n,
			FlatPerSec:     ft,
			HierPerSec:     ht,
			FlatEfficiency: ft / linear,
			HierEfficiency: ht / linear,
		})
	}
	return sim
}

// writeCollectiveJSON runs the collective benchmarks and simulation and
// writes the combined report.
func writeCollectiveJSON(path string, quick bool, w io.Writer) error {
	measured, err := measureCollective(quick)
	if err != nil {
		return err
	}
	report := collReport{
		Measured: measured,
		MeasuredNote: "in-process links are uniform-speed Go channels, so the " +
			"hierarchy's extra intra-node hops cost wall-clock here; these rows " +
			"pin the allocation-free steady state, not a speedup — see simulated",
		Simulated: simulateCollective(),
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	for _, r := range report.Measured {
		fmt.Fprintf(w, "%-28s %12.0f ns/op %8.1f allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}
	for _, p := range report.Simulated.Allreduce {
		fmt.Fprintf(w, "sim %2d workers (%d nodes): flat %-12v hier %-12v speedup %.2fx\n",
			p.Workers, p.Nodes,
			time.Duration(p.FlatNs), time.Duration(p.HierNs), p.Speedup)
	}
	fmt.Fprintf(w, "wrote collective report to %s\n", path)
	return nil
}
