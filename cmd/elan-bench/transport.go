package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/transport"
)

// The -transport report measures the TCP data plane under concurrency:
// the legacy dial-per-call path (transport.Call — one TCP handshake per
// request) against the pooled, multiplexed client (transport.Client —
// long-lived connections, requests matched by per-connection IDs). Both
// drive the same echo server over loopback. The headline figure is
// speedup_c256: pooled throughput over dial-per-call throughput at 256
// concurrent callers, the ROADMAP's "millions of users" artery under its
// heaviest local load point. Allocation figures are process-wide
// (runtime.MemStats), so rows include the server side of every call —
// which is exactly the end-to-end buffer-reuse contract being guarded.
type transportBenchRow struct {
	Name        string  `json:"name"`
	Path        string  `json:"path"` // "dial_per_call" | "pooled"
	Concurrency int     `json:"concurrency"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

type transportBenchReport struct {
	Note        string              `json:"note"`
	PayloadSize int                 `json:"payload_bytes"`
	Rows        []transportBenchRow `json:"rows"`
	SpeedupC256 float64             `json:"speedup_c256"`
}

// measureTransport runs conc workers × callsPer calls of call and reports
// whole-workload throughput and per-op allocation figures.
func measureTransport(clk clock.Clock, name, path string, conc, callsPer int, call func() error) (transportBenchRow, error) {
	row := transportBenchRow{Name: name, Path: path, Concurrency: conc, Ops: conc * callsPer}
	// Warm-up: one call per worker's worth of connections — builds pools,
	// frame buffers, and the server's accept state outside the timed
	// window.
	for i := 0; i < conc/8+1; i++ {
		if err := call(); err != nil {
			return row, fmt.Errorf("%s: warm-up: %w", name, err)
		}
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := clk.Now()
	var wg sync.WaitGroup
	errs := make(chan error, conc)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < callsPer; i++ {
				if err := call(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := clk.Since(start)
	runtime.ReadMemStats(&after)
	close(errs)
	if err := <-errs; err != nil {
		return row, fmt.Errorf("%s: %w", name, err)
	}
	n := float64(row.Ops)
	row.NsPerOp = float64(elapsed.Nanoseconds()) / n
	row.OpsPerSec = n / elapsed.Seconds()
	row.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / n
	row.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / n
	return row, nil
}

// transportBenches runs the dial-per-call vs pooled ladder over one echo
// server. quick shrinks per-worker call counts for CI smoke runs.
func transportBenches(quick bool) (*transportBenchReport, error) {
	clk := clock.Wall{}
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	srv := transport.NewServer(func(m transport.Message) ([]byte, error) {
		return m.Payload, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ctx := context.Background()
	const timeout = 30 * time.Second

	report := &transportBenchReport{
		Note: "loopback echo, 64B payload; dial_per_call = one TCP handshake per request (transport.Call), " +
			"pooled = multiplexed transport.Client over 8 connections; allocs are process-wide incl. the server",
		PayloadSize: len(payload),
	}
	levels := []struct {
		conc, calls, quickCalls int
	}{
		{1, 400, 40},
		{64, 60, 8},
		{256, 40, 5},
	}
	var dialC256, pooledC256 float64
	for _, lv := range levels {
		calls := lv.calls
		if quick {
			calls = lv.quickCalls
		}
		row, err := measureTransport(clk, fmt.Sprintf("dial_per_call_c%d", lv.conc), "dial_per_call",
			lv.conc, calls, func() error {
				_, err := transport.Call(ctx, addr, "echo", payload, timeout)
				return err
			})
		if err != nil {
			return nil, err
		}
		report.Rows = append(report.Rows, row)
		if lv.conc == 256 {
			dialC256 = row.OpsPerSec
		}
	}
	client := transport.NewClient(addr, transport.ClientConfig{Conns: 8})
	defer client.Close()
	for _, lv := range levels {
		calls := lv.calls
		if quick {
			calls = lv.quickCalls
		}
		// The pooled path sustains far higher rates; give it more work per
		// worker so the timed window stays measurable.
		calls *= 5
		row, err := measureTransport(clk, fmt.Sprintf("pooled_c%d", lv.conc), "pooled",
			lv.conc, calls, func() error {
				_, err := client.Call(ctx, "echo", payload, timeout)
				return err
			})
		if err != nil {
			return nil, err
		}
		report.Rows = append(report.Rows, row)
		if lv.conc == 256 {
			pooledC256 = row.OpsPerSec
		}
	}
	if dialC256 > 0 {
		report.SpeedupC256 = pooledC256 / dialC256
	}
	return report, nil
}

// writeTransportJSON runs the transport benchmarks and writes the report.
func writeTransportJSON(path string, quick bool, w io.Writer) error {
	report, err := transportBenches(quick)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	for _, r := range report.Rows {
		fmt.Fprintf(w, "%-24s %10.0f ns/op %12.0f ops/s %8.1f allocs/op %10.1f B/op\n",
			r.Name, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp, r.BytesPerOp)
	}
	fmt.Fprintf(w, "pooled vs dial-per-call at c256: %.1fx; wrote %d rows to %s\n",
		report.SpeedupC256, len(report.Rows), path)
	return nil
}
