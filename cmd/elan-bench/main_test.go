package main

import (
	"strings"
	"testing"

	"github.com/elan-sys/elan/internal/experiment"
)

func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run("", true, false, &b); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	out := b.String()
	for _, want := range []string{"fig15", "table4", "ablation-replication"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var b strings.Builder
	if err := run("fig11", false, true, &b); err != nil {
		t.Fatalf("run fig11: %v", err)
	}
	if !strings.Contains(b.String(), "initialize") {
		t.Fatalf("fig11 output missing breakdown:\n%s", b.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run("fig999", false, false, &b); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run("", false, false, &b); err == nil {
		t.Fatal("missing -exp accepted")
	}
}

func TestRegistryCoversEveryEvaluationItem(t *testing.T) {
	reg := experiment.Registry()
	// Every table and figure of the evaluation plus the ablations must be
	// regenerable.
	want := []string{
		"table1", "table2", "table4",
		"fig1", "fig3", "fig4", "fig5", "alg1", "fig8", "fig9",
		"fig11", "fig12", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21", "fig22",
		"ablation-replication", "ablation-coordination",
		"ablation-progressive-lr", "ablation-data-semantics",
		"ablation-async-timeline", "straggler", "spot",
	}
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Errorf("registry missing %q", id)
		}
	}
	if len(reg) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(reg), len(want))
	}
}
