package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteTransportJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "transport.json")
	var b strings.Builder
	if err := writeTransportJSON(path, true, &b); err != nil {
		t.Fatalf("writeTransportJSON: %v", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report transportBenchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	byName := map[string]transportBenchRow{}
	for _, r := range report.Rows {
		byName[r.Name] = r
		if r.Ops <= 0 || r.NsPerOp <= 0 || r.OpsPerSec <= 0 {
			t.Errorf("%s: degenerate measurement %+v", r.Name, r)
		}
	}
	for _, name := range []string{
		"dial_per_call_c1", "dial_per_call_c64", "dial_per_call_c256",
		"pooled_c1", "pooled_c64", "pooled_c256",
	} {
		if _, ok := byName[name]; !ok {
			t.Errorf("report missing %q", name)
		}
	}
	// The committed BENCH_transport.json trajectory pins speedup_c256 >= 5
	// on a quiet machine; here (quick mode, possibly a shared CI box) only
	// the shape and the direction are asserted — skipping the TCP handshake
	// per call must not make the c256 path slower.
	if report.SpeedupC256 <= 1 {
		t.Errorf("speedup_c256 = %.2f, pooled path slower than dial-per-call", report.SpeedupC256)
	}
	if !strings.Contains(b.String(), "wrote") {
		t.Errorf("summary line missing:\n%s", b.String())
	}
}
