// Command elan-bench regenerates the paper's tables and figures by id.
//
// Usage:
//
//	elan-bench -exp fig15                  # one experiment
//	elan-bench -exp all                    # the full evaluation
//	elan-bench -list                       # list experiment ids
//	elan-bench -exp fig20 -quick           # short trace for a fast run
//	elan-bench -adjust-trace adjust.json   # trace one scaling adjustment
//	elan-bench -json hotpath.json          # hot-path micro-benchmark report
//	elan-bench -collective coll.json       # flat vs hierarchical allreduce report
//	elan-bench -telemetry telem.json       # span + flight-recorder overhead report
//	elan-bench -transport transport.json   # dial-per-call vs pooled TCP data-plane report
//	elan-bench -store store.json           # sharded store + delta checkpoint report
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	elan "github.com/elan-sys/elan"
	"github.com/elan-sys/elan/internal/experiment"
)

func main() {
	exp := flag.String("exp", "", "experiment id (or 'all')")
	list := flag.Bool("list", false, "list experiment ids")
	quick := flag.Bool("quick", false, "shrink workloads for a fast run")
	adjTrace := flag.String("adjust-trace", "",
		"write a Chrome trace-event JSON file of one live scale-out adjustment and exit")
	jsonOut := flag.String("json", "",
		"run the hot-path micro-benchmarks (matmul, train step, allreduce) and write ns/op, allocs/op and B/op to this JSON file")
	collOut := flag.String("collective", "",
		"measure flat vs hierarchical allreduce in-process and simulate both under the analytic comm model; write the report to this JSON file")
	telemOut := flag.String("telemetry", "",
		"measure the tracing overhead (disabled/enabled spans, flight ring) and write the report to this JSON file")
	transOut := flag.String("transport", "",
		"measure the TCP data plane (dial-per-call vs pooled multiplexed client at 1/64/256 concurrent callers) and write the report to this JSON file")
	storeOut := flag.String("store", "",
		"measure the sharded store (vs the old single-mutex design), watch fan-out cost and delta checkpoints, and write the report to this JSON file")
	flag.Parse()
	if *storeOut != "" {
		if err := writeStoreJSON(*storeOut, *quick, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "elan-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *transOut != "" {
		if err := writeTransportJSON(*transOut, *quick, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "elan-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *telemOut != "" {
		if err := writeTelemetryJSON(*telemOut, *quick, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "elan-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *collOut != "" {
		if err := writeCollectiveJSON(*collOut, *quick, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "elan-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut != "" {
		if err := writeHotpathJSON(*jsonOut, *quick, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "elan-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *adjTrace != "" {
		if err := writeAdjustTrace(*adjTrace, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "elan-bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *list, *quick, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "elan-bench:", err)
		os.Exit(1)
	}
}

// writeAdjustTrace records the paper's Fig. 11 story as a trace: a live job
// trains a few iterations, scales out 2→4, and trains a few more. The
// resulting JSON shows the adjustment span with its build/replicate/
// reconfigure children and the commit-point event, next to the step spans
// it interrupts.
func writeAdjustTrace(path string, w io.Writer) error {
	rec := elan.NewTraceRecorder(nil, 0)
	const features, classes = 16, 8
	train, err := elan.GenDataset(11, 4096, features, classes)
	if err != nil {
		return err
	}
	job, err := elan.NewLiveJob(elan.LiveConfig{
		Dataset:    train,
		LayerSizes: []int{features, 32, classes},
		Workers:    2,
		TotalBatch: 64,
		LR:         0.02,
		Momentum:   0.9,
		Seed:       11,
		Tracer:     rec,
	})
	if err != nil {
		return err
	}
	defer job.Close()
	for i := 0; i < 5; i++ {
		if _, err := job.Step(); err != nil {
			return err
		}
	}
	if err := job.ScaleOut(2); err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		if _, err := job.Step(); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := elan.WriteChromeTrace(f, rec.Snapshot()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "adjustment took %v; wrote %d spans to %s — open in ui.perfetto.dev\n",
		job.LastAdjustDuration(), rec.Len(), path)
	return nil
}

func run(exp string, list, quick bool, w io.Writer) error {
	if list {
		fmt.Fprintln(w, strings.Join(experiment.IDs(), "\n"))
		return nil
	}
	if exp == "" {
		return fmt.Errorf("missing -exp (use -list to see ids)")
	}
	if exp == "all" {
		for _, id := range experiment.IDs() {
			fmt.Fprintf(w, "\n### %s ###\n", id)
			if err := experiment.Run(id, w, quick); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
		return nil
	}
	if err := experiment.Run(exp, w, quick); err != nil {
		if strings.Contains(err.Error(), "unknown id") {
			return fmt.Errorf("unknown experiment %q (use -list)", exp)
		}
		return err
	}
	return nil
}
