// Command elan-bench regenerates the paper's tables and figures by id.
//
// Usage:
//
//	elan-bench -exp fig15          # one experiment
//	elan-bench -exp all            # the full evaluation
//	elan-bench -list               # list experiment ids
//	elan-bench -exp fig20 -quick   # short trace for a fast run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/elan-sys/elan/internal/experiment"
)

func main() {
	exp := flag.String("exp", "", "experiment id (or 'all')")
	list := flag.Bool("list", false, "list experiment ids")
	quick := flag.Bool("quick", false, "shrink workloads for a fast run")
	flag.Parse()
	if err := run(*exp, *list, *quick, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "elan-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, list, quick bool, w io.Writer) error {
	if list {
		fmt.Fprintln(w, strings.Join(experiment.IDs(), "\n"))
		return nil
	}
	if exp == "" {
		return fmt.Errorf("missing -exp (use -list to see ids)")
	}
	if exp == "all" {
		for _, id := range experiment.IDs() {
			fmt.Fprintf(w, "\n### %s ###\n", id)
			if err := experiment.Run(id, w, quick); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
		return nil
	}
	if err := experiment.Run(exp, w, quick); err != nil {
		if strings.Contains(err.Error(), "unknown id") {
			return fmt.Errorf("unknown experiment %q (use -list)", exp)
		}
		return err
	}
	return nil
}
