package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteTelemetryJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.json")
	var b strings.Builder
	if err := writeTelemetryJSON(path, true, &b); err != nil {
		t.Fatalf("writeTelemetryJSON: %v", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var results []hotBenchResult
	if err := json.Unmarshal(buf, &results); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	byName := map[string]hotBenchResult{}
	for _, r := range results {
		byName[r.Name] = r
		if r.Iters <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: degenerate measurement %+v", r.Name, r)
		}
	}
	for _, name := range []string{
		"span_disabled_step", "span_enabled_step", "span_enabled_flight", "flight_record",
	} {
		if _, ok := byName[name]; !ok {
			t.Errorf("report missing %q", name)
		}
	}
	// The production-default disabled path and the flight ring's record path
	// are the zero-allocation contracts; <1 tolerates stray runtime mallocs
	// at quick mode's small iteration counts (the strict ==0 guards are the
	// AllocsPerRun tests in internal/telemetry).
	for _, name := range []string{"span_disabled_step", "flight_record"} {
		if r := byName[name]; r.AllocsPerOp >= 1 {
			t.Errorf("%s allocates: %.2f allocs/op", name, r.AllocsPerOp)
		}
	}
	if !strings.Contains(b.String(), "wrote") {
		t.Errorf("summary line missing:\n%s", b.String())
	}
}
