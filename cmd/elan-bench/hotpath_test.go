package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteHotpathJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hotpath.json")
	var b strings.Builder
	if err := writeHotpathJSON(path, true, &b); err != nil {
		t.Fatalf("writeHotpathJSON: %v", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var results []hotBenchResult
	if err := json.Unmarshal(buf, &results); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	want := map[string]bool{
		"matmul_naive_128":        false,
		"matmul_into_128_serial":  false,
		"train_step_32x8-32-32-3": false,
	}
	sawInto, sawAllreduce := false, false
	for _, r := range results {
		if _, ok := want[r.Name]; ok {
			want[r.Name] = true
		}
		if strings.HasPrefix(r.Name, "matmul_into_128_parallel_") {
			sawInto = true
		}
		if strings.HasPrefix(r.Name, "allreduce_bare_") {
			sawAllreduce = true
		}
		if r.Iters <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: degenerate measurement %+v", r.Name, r)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("report missing %q", name)
		}
	}
	if !sawInto || !sawAllreduce {
		t.Errorf("report missing parallel matmul or allreduce rows")
	}
	if !strings.Contains(b.String(), "wrote") {
		t.Errorf("summary line missing:\n%s", b.String())
	}
}
