// Command elan-trace generates and inspects synthetic DL-training job
// traces (the Sensetime-trace substitute).
//
// Usage:
//
//	elan-trace -hours 168 -seed 1           # weekly stats + utilization plot
//	elan-trace -hours 48 -dump | head -20   # job listing
//	elan-trace -attrib spans.json           # per-step time attribution
//
// -attrib reads a raw span-record file (elan-live -spans-out) and prints
// where each training step's time went: compute, communication,
// coordination and stall per rank, with stragglers flagged against the
// fleet P95.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/elan-sys/elan/internal/metrics"
	"github.com/elan-sys/elan/internal/telemetry"
	"github.com/elan-sys/elan/internal/trace"
)

// pipeWriter wraps stdout so that a closed downstream pipe (elan-trace
// -dump | head) ends the run cleanly instead of crashing: the first EPIPE
// is remembered and all further writes are discarded.
type pipeWriter struct {
	w      io.Writer
	broken bool
}

func (p *pipeWriter) Write(b []byte) (int, error) {
	if p.broken {
		return len(b), nil
	}
	n, err := p.w.Write(b)
	if errors.Is(err, syscall.EPIPE) {
		p.broken = true
		return len(b), nil
	}
	return n, err
}

func main() {
	var (
		hours   = flag.Float64("hours", 168, "trace span in hours")
		perDay  = flag.Int("jobs-per-day", 260, "mean job arrivals per day")
		service = flag.Float64("service-min", 150, "mean job service minutes")
		gpus    = flag.Int("gpus", 128, "cluster GPU count")
		seed    = flag.Int64("seed", 1, "generator seed")
		dump    = flag.Bool("dump", false, "print every job instead of stats")
		attrib  = flag.String("attrib", "",
			"read a raw span-record JSON file (elan-live -spans-out) and print the per-step time attribution")
	)
	flag.Parse()
	// The Go runtime forwards SIGPIPE from writes to stdout as a process
	// kill; ignore it so the write returns EPIPE and pipeWriter can turn
	// the truncation into a clean exit.
	signal.Ignore(syscall.SIGPIPE)
	if *attrib != "" {
		if err := runAttrib(&pipeWriter{w: os.Stdout}, *attrib); err != nil {
			fmt.Fprintln(os.Stderr, "elan-trace:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(&pipeWriter{w: os.Stdout}, *hours, *perDay, *service, *gpus, *seed, *dump); err != nil {
		fmt.Fprintln(os.Stderr, "elan-trace:", err)
		os.Exit(1)
	}
}

// runAttrib folds a recorded span file into the per-step phase attribution.
func runAttrib(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := telemetry.ReadSpans(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return telemetry.WriteAttribution(w, telemetry.Attribute(spans))
}

func run(w io.Writer, hours float64, perDay int, service float64, gpus int, seed int64, dump bool) error {
	cfg := trace.Config{
		Seed:               seed,
		Span:               time.Duration(hours * float64(time.Hour)),
		JobsPerDay:         perDay,
		ClusterGPUs:        gpus,
		MeanServiceMinutes: service,
	}
	jobs, err := trace.Generate(cfg)
	if err != nil {
		return err
	}
	if dump {
		t := metrics.NewTable("", "ID", "Submit", "Model", "Req", "Min", "Max", "BS/worker")
		for _, j := range jobs {
			t.AddRow(j.ID, j.Submit.Round(time.Second).String(), j.Model.Name,
				j.ReqWorkers, j.MinWorkers, j.MaxWorkers, j.PerWorkerBatch)
		}
		t.Render(w)
		return nil
	}
	sizes := make([]float64, len(jobs))
	for i, j := range jobs {
		sizes[i] = float64(j.ReqWorkers)
	}
	sum := metrics.Summarize(sizes)
	t := metrics.NewTable(fmt.Sprintf("trace: %d jobs over %.0f hours", len(jobs), hours),
		"Metric", "Value")
	t.AddRow("jobs", len(jobs))
	t.AddRow("mean req workers", sum.Mean)
	t.AddRow("max req workers", sum.Max)
	t.AddRow("p50 req workers", metrics.Percentile(sizes, 50))
	t.AddRow("p90 req workers", metrics.Percentile(sizes, 90))
	t.Render(w)

	hoursX, utils, err := trace.UtilizationSeries(jobs, gpus, 30*time.Minute)
	if err != nil {
		return err
	}
	s := &metrics.Series{Name: "utilization"}
	for i := range hoursX {
		s.Add(hoursX[i], utils[i])
	}
	metrics.PlotASCII(w, "static-FIFO utilization (Figure 1 style)", 72, 12, s.Downsample(72))
	fmt.Fprintf(w, "mean utilization: %.1f%%\n", 100*s.MeanY())
	return nil
}
