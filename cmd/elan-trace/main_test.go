package main

import (
	"strings"
	"testing"
)

func TestRunStats(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 24, 260, 150, 128, 1, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{"jobs", "mean req workers", "utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunDump(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 6, 260, 150, 128, 1, true); err != nil {
		t.Fatalf("run -dump: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "Submit") || !strings.Contains(out, "Model") {
		t.Fatalf("dump header missing:\n%.200s", out)
	}
	if len(strings.Split(out, "\n")) < 10 {
		t.Fatal("dump too short")
	}
}

func TestRunInvalid(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 0, 260, 150, 128, 1, false); err == nil {
		t.Fatal("zero hours accepted")
	}
	if err := run(&b, 24, 0, 150, 128, 1, false); err == nil {
		t.Fatal("zero jobs/day accepted")
	}
}
