// Command elan-live runs real elastic training on the pure-Go substrate
// from the command line: it trains an MLP with data-parallel worker
// goroutines and executes a schedule of elastic adjustments, printing
// loss/accuracy and verifying the data-parallel invariant after every
// adjustment.
//
// Usage:
//
//	elan-live -workers 2 -tbs 64 -iters 600 -schedule "200:out2,400:batch128"
//
// Schedule entries are iteration:action with actions out<N> (scale out by
// N), in<N> (scale in by N), batch<B> (set total batch to B with the
// progressive LR ramp).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	elan "github.com/elan-sys/elan"
)

type action struct {
	iter int
	verb string // out | in | batch
	arg  int
}

func parseSchedule(s string) ([]action, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []action
	for _, part := range strings.Split(s, ",") {
		bits := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(bits) != 2 {
			return nil, fmt.Errorf("bad schedule entry %q (want iter:action)", part)
		}
		iter, err := strconv.Atoi(bits[0])
		if err != nil || iter < 0 {
			return nil, fmt.Errorf("bad iteration in %q", part)
		}
		act := bits[1]
		var verb string
		switch {
		case strings.HasPrefix(act, "out"):
			verb = "out"
			act = act[3:]
		case strings.HasPrefix(act, "in"):
			verb = "in"
			act = act[2:]
		case strings.HasPrefix(act, "batch"):
			verb = "batch"
			act = act[5:]
		default:
			return nil, fmt.Errorf("unknown action in %q", part)
		}
		arg, err := strconv.Atoi(act)
		if err != nil || arg <= 0 {
			return nil, fmt.Errorf("bad argument in %q", part)
		}
		out = append(out, action{iter: iter, verb: verb, arg: arg})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].iter < out[j].iter })
	return out, nil
}

func main() {
	var (
		workers  = flag.Int("workers", 2, "initial worker count")
		tbs      = flag.Int("tbs", 64, "initial total batch size")
		iters    = flag.Int("iters", 600, "training iterations")
		lr       = flag.Float64("lr", 0.02, "initial learning rate")
		seed     = flag.Int64("seed", 7, "run seed")
		schedule = flag.String("schedule", "", "adjustments, e.g. 200:out2,400:batch128")
	)
	flag.Parse()
	// Ctrl-C cancels the run context: an adjustment in flight unwinds
	// cleanly instead of being killed halfway.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, *workers, *tbs, *iters, *lr, *seed, *schedule); err != nil {
		fmt.Fprintln(os.Stderr, "elan-live:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, w io.Writer, workers, tbs, iters int, lr float64, seed int64, schedule string) error {
	actions, err := parseSchedule(schedule)
	if err != nil {
		return err
	}
	const features, classes = 16, 8
	train, err := elan.GenDataset(seed, 8192, features, classes)
	if err != nil {
		return err
	}
	test, err := elan.GenDataset(seed+1, 2048, features, classes)
	if err != nil {
		return err
	}
	job, err := elan.NewLiveJob(elan.LiveConfig{
		Dataset:    train,
		LayerSizes: []int{features, 32, classes},
		Workers:    workers,
		TotalBatch: tbs,
		LR:         lr,
		Momentum:   0.9,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	defer job.Close()

	next := 0
	report := func(tag string) error {
		loss, acc, err := job.Evaluate(test)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s iter %5d workers %2d tbs %5d lr %.4f loss %.3f acc %5.1f%% consistent=%v\n",
			tag, job.Iteration(), job.NumWorkers(), job.TotalBatch(), job.LR(),
			loss, 100*acc, job.ReplicasConsistent())
		return nil
	}
	if err := report("start"); err != nil {
		return err
	}
	for i := 0; i < iters; i++ {
		for next < len(actions) && actions[next].iter <= i {
			a := actions[next]
			next++
			var aerr error
			switch a.verb {
			case "out":
				aerr = job.ScaleOutCtx(ctx, a.arg)
			case "in":
				aerr = job.ScaleInCtx(ctx, a.arg)
			case "batch":
				aerr = job.SetTotalBatch(a.arg, 40, true)
			}
			if aerr != nil {
				return fmt.Errorf("iteration %d action %s%d: %w", i, a.verb, a.arg, aerr)
			}
			if a.verb != "batch" {
				fmt.Fprintf(w, "%-18s adjustment took %v\n",
					fmt.Sprintf("%s%d timing", a.verb, a.arg), job.LastAdjustDuration())
			}
			if err := report(fmt.Sprintf("after %s%d", a.verb, a.arg)); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("interrupted at iteration %d: %w", i, err)
		}
		if _, err := job.Step(); err != nil {
			return err
		}
		if (i+1)%200 == 0 {
			if err := report("progress"); err != nil {
				return err
			}
		}
	}
	return report("final")
}
