// Command elan-live runs real elastic training on the pure-Go substrate
// from the command line: it trains an MLP with data-parallel worker
// goroutines and executes a schedule of elastic adjustments, printing
// loss/accuracy and verifying the data-parallel invariant after every
// adjustment.
//
// Usage:
//
//	elan-live -workers 2 -tbs 64 -iters 600 -schedule "200:out2,400:batch128"
//
// Schedule entries are iteration:action with actions out<N> (scale out by
// N), in<N> (scale in by N), batch<B> (set total batch to B with the
// progressive LR ramp).
//
// With -chaos the command instead replays a seeded randomized fault
// schedule (worker crashes/restarts, AM crash + recovery, partitions, drop
// bursts, stragglers) against a worker fleet on virtual time and prints the
// deterministic fault-event log ("fault " lines are byte-identical across
// runs with the same -chaos-seed) plus a convergence summary.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	elan "github.com/elan-sys/elan"
	"github.com/elan-sys/elan/internal/chaos"
)

type action struct {
	iter int
	verb string // out | in | batch
	arg  int
}

func parseSchedule(s string) ([]action, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []action
	for _, part := range strings.Split(s, ",") {
		bits := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(bits) != 2 {
			return nil, fmt.Errorf("bad schedule entry %q (want iter:action)", part)
		}
		iter, err := strconv.Atoi(bits[0])
		if err != nil || iter < 0 {
			return nil, fmt.Errorf("bad iteration in %q", part)
		}
		act := bits[1]
		var verb string
		switch {
		case strings.HasPrefix(act, "out"):
			verb = "out"
			act = act[3:]
		case strings.HasPrefix(act, "in"):
			verb = "in"
			act = act[2:]
		case strings.HasPrefix(act, "batch"):
			verb = "batch"
			act = act[5:]
		default:
			return nil, fmt.Errorf("unknown action in %q", part)
		}
		arg, err := strconv.Atoi(act)
		if err != nil || arg <= 0 {
			return nil, fmt.Errorf("bad argument in %q", part)
		}
		out = append(out, action{iter: iter, verb: verb, arg: arg})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].iter < out[j].iter })
	return out, nil
}

// options bundles the run parameters.
type options struct {
	workers   int
	tbs       int
	iters     int
	lr        float64
	seed      int64
	schedule  string
	traceOut  string // Chrome trace-event JSON output path ("" = off)
	spansOut  string // raw span-record JSON output path ("" = off)
	debugAddr string // /metrics + /healthz listen address ("" = off)
	flightrec int    // flight-recorder ring capacity (0 = off)

	chaos       bool  // run the chaos harness instead of a training schedule
	chaosSeed   int64 // fault-schedule seed (not the model seed)
	chaosFaults int   // approximate number of faults to inject
}

func main() {
	var opts options
	flag.IntVar(&opts.workers, "workers", 2, "initial worker count")
	flag.IntVar(&opts.tbs, "tbs", 64, "initial total batch size")
	flag.IntVar(&opts.iters, "iters", 600, "training iterations")
	flag.Float64Var(&opts.lr, "lr", 0.02, "initial learning rate")
	flag.Int64Var(&opts.seed, "seed", 7, "run seed")
	flag.StringVar(&opts.schedule, "schedule", "", "adjustments, e.g. 200:out2,400:batch128")
	flag.StringVar(&opts.traceOut, "trace-out", "",
		"write a Chrome trace-event JSON file (load in Perfetto) covering the run")
	flag.StringVar(&opts.spansOut, "spans-out", "",
		"write raw span records as JSON (feed to elan-trace -attrib) and print the per-step time attribution")
	flag.StringVar(&opts.debugAddr, "debug-addr", "",
		"serve /metrics (Prometheus text) and /healthz on this address, e.g. localhost:9090")
	flag.IntVar(&opts.flightrec, "flightrec", 0,
		"attach an always-on flight recorder with a ring of this many records; chaos faults and crash paths dump it (0 = off)")
	flag.BoolVar(&opts.chaos, "chaos", false,
		"replay a seeded fault schedule against a worker fleet instead of training")
	flag.Int64Var(&opts.chaosSeed, "chaos-seed", 1, "fault schedule seed (chaos mode)")
	flag.IntVar(&opts.chaosFaults, "chaos-faults", 40, "approximate fault count (chaos mode)")
	flag.Parse()
	// Ctrl-C cancels the run context: an adjustment in flight unwinds
	// cleanly instead of being killed halfway.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runFn := run
	if opts.chaos {
		runFn = runChaos
	}
	if err := runFn(ctx, os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "elan-live:", err)
		os.Exit(1)
	}
}

// runChaos replays a seeded randomized fault schedule on virtual time. The
// "fault " lines are the deterministic artifact: byte-identical across runs
// with the same -chaos-seed and -chaos-faults. The summary line reflects
// runtime outcomes and may vary.
func runChaos(ctx context.Context, w io.Writer, opts options) error {
	sched := chaos.RandomSchedule(opts.chaosSeed, opts.chaosFaults, 4)
	cfg := chaos.Config{Schedule: sched, Seed: opts.seed}
	// With -flightrec the harness gets a flight ring plus a tracer feeding
	// it, so every fault freezes a dump of the spans just before impact.
	// The harness drives its own sim clock; the recorder only needs a time
	// source for construction, so a fresh sim at the same epoch does.
	var flight *elan.FlightRecorder
	if opts.flightrec > 0 {
		flight = elan.NewFlightRecorder(opts.flightrec)
		cfg.Flight = flight
		cfg.Tracer = elan.NewTraceRecorder(elan.NewSimClock(time.Unix(0, 0)), 0)
	}
	h, err := chaos.New(cfg)
	if err != nil {
		return err
	}
	defer h.Close()
	total := sched.Iters()
	fmt.Fprintf(w, "chaos: seed=%d faults=%d iters=%d workers=4 tbs=24\n",
		opts.chaosSeed, len(sched.Faults), total)
	for done := 0; done < total; {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("interrupted at iteration %d: %w", done, err)
		}
		n := total - done
		if n > 25 {
			n = 25
		}
		if err := h.Run(n); err != nil {
			return err
		}
		done += n
	}
	for _, line := range strings.Split(strings.TrimRight(chaos.FormatEvents(h.Events()), "\n"), "\n") {
		fmt.Fprintf(w, "fault %s\n", line)
	}
	rep := h.Report()
	fmt.Fprintf(w, "chaos: iterations=%d final-workers=%d consistent=%v loss=%.3f events=%d fault-errors=%d am-down=%v\n",
		rep.Iterations, rep.FinalWorkers, rep.Consistent, rep.FinalLoss,
		rep.Events, len(rep.FaultErrors), rep.AMDown)
	if len(rep.FaultErrors) > 0 {
		return fmt.Errorf("%d faults failed to apply, first: %s", len(rep.FaultErrors), rep.FaultErrors[0])
	}
	if !rep.Consistent {
		return fmt.Errorf("replicas inconsistent after chaos run")
	}
	// The flight dump is a postmortem artifact, not a determinism artifact:
	// its span interleaving varies with goroutine scheduling, so it prints
	// after (and never among) the byte-compared "fault " lines.
	if flight != nil {
		if reason, dump := flight.LastDump(); reason != "" {
			if err := elan.WriteFlightDump(w, reason, dump); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "flight: %d records through a %d-slot ring\n",
			flight.Total(), flight.Capacity())
	}
	return nil
}

func run(ctx context.Context, w io.Writer, opts options) error {
	actions, err := parseSchedule(opts.schedule)
	if err != nil {
		return err
	}
	// Telemetry is optional: when no flag asks for it the tracer stays
	// Nop and the instruments stay nil, so the training path is unchanged.
	var (
		rec    *elan.TraceRecorder
		reg    *elan.MetricsRegistry
		tracer elan.Tracer
		flight *elan.FlightRecorder
	)
	if opts.traceOut != "" || opts.spansOut != "" || opts.debugAddr != "" || opts.flightrec > 0 {
		rec = elan.NewTraceRecorder(nil, 0)
		reg = elan.NewMetricsRegistry()
		tracer = rec
	}
	if opts.flightrec > 0 {
		flight = elan.NewFlightRecorder(opts.flightrec)
		rec.SetFlightRecorder(flight)
	}
	if opts.debugAddr != "" {
		srv, err := elan.NewTelemetryServer(opts.debugAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(w, "debug: serving /metrics and /healthz on http://%s\n", srv.Addr())
	}
	const features, classes = 16, 8
	train, err := elan.GenDataset(opts.seed, 8192, features, classes)
	if err != nil {
		return err
	}
	test, err := elan.GenDataset(opts.seed+1, 2048, features, classes)
	if err != nil {
		return err
	}
	job, err := elan.NewLiveJob(elan.LiveConfig{
		Dataset:    train,
		LayerSizes: []int{features, 32, classes},
		Workers:    opts.workers,
		TotalBatch: opts.tbs,
		LR:         opts.lr,
		Momentum:   0.9,
		Seed:       opts.seed,
		Tracer:     tracer,
		Metrics:    reg,
	})
	if err != nil {
		return err
	}
	defer job.Close()

	next := 0
	report := func(tag string) error {
		loss, acc, err := job.Evaluate(test)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s iter %5d workers %2d tbs %5d lr %.4f loss %.3f acc %5.1f%% consistent=%v\n",
			tag, job.Iteration(), job.NumWorkers(), job.TotalBatch(), job.LR(),
			loss, 100*acc, job.ReplicasConsistent())
		return nil
	}
	if err := report("start"); err != nil {
		return err
	}
	for i := 0; i < opts.iters; i++ {
		for next < len(actions) && actions[next].iter <= i {
			a := actions[next]
			next++
			var aerr error
			switch a.verb {
			case "out":
				aerr = job.ScaleOutCtx(ctx, a.arg)
			case "in":
				aerr = job.ScaleInCtx(ctx, a.arg)
			case "batch":
				aerr = job.SetTotalBatch(a.arg, 40, true)
			}
			if aerr != nil {
				return fmt.Errorf("iteration %d action %s%d: %w", i, a.verb, a.arg, aerr)
			}
			if a.verb != "batch" {
				fmt.Fprintf(w, "%-18s adjustment took %v\n",
					fmt.Sprintf("%s%d timing", a.verb, a.arg), job.LastAdjustDuration())
			}
			if err := report(fmt.Sprintf("after %s%d", a.verb, a.arg)); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("interrupted at iteration %d: %w", i, err)
		}
		if _, err := job.Step(); err != nil {
			return err
		}
		if (i+1)%200 == 0 {
			if err := report("progress"); err != nil {
				return err
			}
		}
	}
	if err := report("final"); err != nil {
		return err
	}
	// With tracing on, also exercise the resident worker-agent runtime so
	// the trace covers all three layers — worker fleet lifecycle/steps,
	// the coordination RPCs on the transport bus, and the core adjustment
	// spans recorded above.
	if rec != nil {
		if err := runFleetSegment(ctx, w, train, tracer, reg, opts.seed); err != nil {
			return err
		}
	}
	if opts.traceOut != "" {
		f, err := os.Create(opts.traceOut)
		if err != nil {
			return err
		}
		if err := elan.WriteChromeTrace(f, rec.Snapshot()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace: wrote %d spans (%d dropped) to %s — open in ui.perfetto.dev\n",
			rec.Len(), rec.Dropped(), opts.traceOut)
	}
	if opts.spansOut != "" {
		spans := rec.Snapshot()
		f, err := os.Create(opts.spansOut)
		if err != nil {
			return err
		}
		if err := elan.WriteSpans(f, spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "spans: wrote %d records to %s — inspect with elan-trace -attrib\n",
			len(spans), opts.spansOut)
		// The attribution the file supports, printed right away: where the
		// run's step time went and which ranks straggled.
		a := elan.Attribute(spans)
		a.Publish(reg)
		if err := elan.WriteAttribution(w, a); err != nil {
			return err
		}
	}
	if flight != nil {
		fmt.Fprintf(w, "flight: %d records through a %d-slot ring\n",
			flight.Total(), flight.Capacity())
	}
	return nil
}

// runFleetSegment runs a short fleet session — a few steps, one scale-out,
// a few more steps — against the same dataset, under the shared tracer.
func runFleetSegment(ctx context.Context, w io.Writer, train *elan.Dataset, tracer elan.Tracer, reg *elan.MetricsRegistry, seed int64) error {
	fleet, err := elan.NewFleet(elan.FleetConfig{
		Dataset:    train,
		LayerSizes: []int{train.Features, 32, train.Classes},
		Workers:    2,
		TotalBatch: 30, // divisible by both 2 and the post-scale-out 3
		LR:         0.02,
		Momentum:   0.9,
		Seed:       seed,
		Tracer:     tracer,
		Metrics:    reg,
	})
	if err != nil {
		return err
	}
	defer fleet.Close()
	if err := fleet.Start(ctx); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if _, err := fleet.Step(); err != nil {
			return err
		}
	}
	if err := fleet.RequestScaleOut(1); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if _, err := fleet.Step(); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "fleet: %d workers after scale-out, consistent=%v\n",
		fleet.NumWorkers(), fleet.ReplicasConsistent())
	return nil
}
