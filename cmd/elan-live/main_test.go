package main

import (
	"context"
	"strings"
	"testing"
)

func TestParseSchedule(t *testing.T) {
	actions, err := parseSchedule("200:out2, 400:batch128,100:in1")
	if err != nil {
		t.Fatalf("parseSchedule: %v", err)
	}
	if len(actions) != 3 {
		t.Fatalf("actions = %d", len(actions))
	}
	// Sorted by iteration.
	if actions[0].iter != 100 || actions[0].verb != "in" || actions[0].arg != 1 {
		t.Fatalf("actions[0] = %+v", actions[0])
	}
	if actions[2].verb != "batch" || actions[2].arg != 128 {
		t.Fatalf("actions[2] = %+v", actions[2])
	}
	if got, err := parseSchedule(""); err != nil || got != nil {
		t.Fatalf("empty schedule = %v, %v", got, err)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, bad := range []string{"nocolon", "x:out2", "5:fly3", "5:out", "5:outx", "-1:out2", "5:out0"} {
		if _, err := parseSchedule(bad); err == nil {
			t.Errorf("schedule %q accepted", bad)
		}
	}
}

func TestRunWithSchedule(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, 2, 64, 120, 0.02, 7, "40:out2,80:batch128"); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{"after out2", "out2 timing", "after batch128", "final", "consistent=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "consistent=false") {
		t.Fatal("replica consistency violated")
	}
}

func TestRunBadAction(t *testing.T) {
	var b strings.Builder
	// Scale in below 1 worker fails at execution time.
	if err := run(context.Background(), &b, 2, 64, 50, 0.02, 7, "10:in2"); err == nil {
		t.Fatal("impossible scale-in accepted")
	}
}

func TestRunCancelled(t *testing.T) {
	var b strings.Builder
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, &b, 2, 64, 50, 0.02, 7, ""); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}

func FuzzParseSchedule(f *testing.F) {
	f.Add("200:out2,400:batch128")
	f.Add("1:in1")
	f.Add("x")
	f.Fuzz(func(t *testing.T, s string) {
		actions, err := parseSchedule(s)
		if err != nil {
			return
		}
		// Accepted schedules are sorted with positive arguments.
		for i, a := range actions {
			if a.arg <= 0 || a.iter < 0 {
				t.Fatalf("invalid accepted action %+v", a)
			}
			if i > 0 && actions[i-1].iter > a.iter {
				t.Fatal("schedule not sorted")
			}
		}
	})
}
