package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSchedule(t *testing.T) {
	actions, err := parseSchedule("200:out2, 400:batch128,100:in1")
	if err != nil {
		t.Fatalf("parseSchedule: %v", err)
	}
	if len(actions) != 3 {
		t.Fatalf("actions = %d", len(actions))
	}
	// Sorted by iteration.
	if actions[0].iter != 100 || actions[0].verb != "in" || actions[0].arg != 1 {
		t.Fatalf("actions[0] = %+v", actions[0])
	}
	if actions[2].verb != "batch" || actions[2].arg != 128 {
		t.Fatalf("actions[2] = %+v", actions[2])
	}
	if got, err := parseSchedule(""); err != nil || got != nil {
		t.Fatalf("empty schedule = %v, %v", got, err)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, bad := range []string{"nocolon", "x:out2", "5:fly3", "5:out", "5:outx", "-1:out2", "5:out0"} {
		if _, err := parseSchedule(bad); err == nil {
			t.Errorf("schedule %q accepted", bad)
		}
	}
}

func TestRunWithSchedule(t *testing.T) {
	var b strings.Builder
	opts := options{workers: 2, tbs: 64, iters: 120, lr: 0.02, seed: 7, schedule: "40:out2,80:batch128"}
	if err := run(context.Background(), &b, opts); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{"after out2", "out2 timing", "after batch128", "final", "consistent=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "consistent=false") {
		t.Fatal("replica consistency violated")
	}
}

func TestRunBadAction(t *testing.T) {
	var b strings.Builder
	// Scale in below 1 worker fails at execution time.
	opts := options{workers: 2, tbs: 64, iters: 50, lr: 0.02, seed: 7, schedule: "10:in2"}
	if err := run(context.Background(), &b, opts); err == nil {
		t.Fatal("impossible scale-in accepted")
	}
}

func TestRunCancelled(t *testing.T) {
	var b strings.Builder
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := options{workers: 2, tbs: 64, iters: 50, lr: 0.02, seed: 7}
	if err := run(ctx, &b, opts); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}

// TestRunTraceOut runs a short traced session and checks the acceptance
// contract: the file is valid Chrome trace-event JSON containing spans from
// the transport, worker AND core layers, and the debug listener serves
// /metrics and /healthz while the run is live.
func TestRunTraceOut(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var b strings.Builder
	opts := options{
		workers: 2, tbs: 64, iters: 10, lr: 0.02, seed: 7,
		schedule: "5:out2", traceOut: tracePath, debugAddr: "127.0.0.1:0",
	}
	if err := run(context.Background(), &b, opts); err != nil {
		t.Fatalf("run: %v\n%s", err, b.String())
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	seen := map[string]bool{}
	for _, e := range events {
		name, _ := e["name"].(string)
		if i := strings.IndexByte(name, '.'); i > 0 {
			seen[name[:i]] = true
		}
	}
	for _, layer := range []string{"transport", "worker", "core"} {
		if !seen[layer] {
			t.Errorf("trace has no %s.* spans (saw %v)", layer, seen)
		}
	}

	// The debug address is printed while serving; probe it from the output.
	out := b.String()
	var addr string
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "debug: serving /metrics and /healthz on http://"); ok {
			addr = rest
		}
	}
	if addr == "" {
		t.Fatalf("no debug address in output:\n%s", out)
	}
	// The server is closed when run returns; a fresh one on the metrics of
	// a new run is exercised by the telemetry package tests. Here just
	// check the line format parsed to host:port.
	if !strings.Contains(addr, ":") {
		t.Fatalf("debug address %q is not host:port", addr)
	}
}

// TestRunChaosDeterministic runs chaos mode twice with the same seed and
// checks the acceptance contract: both runs converge and their "fault "
// event lines are byte-identical.
func TestRunChaosDeterministic(t *testing.T) {
	faultLines := func() (string, string) {
		var b strings.Builder
		opts := options{seed: 7, chaos: true, chaosSeed: 99, chaosFaults: 20}
		if err := runChaos(context.Background(), &b, opts); err != nil {
			t.Fatalf("runChaos: %v\n%s", err, b.String())
		}
		var faults []string
		for _, line := range strings.Split(b.String(), "\n") {
			if strings.HasPrefix(line, "fault ") {
				faults = append(faults, line)
			}
		}
		if len(faults) < 20 {
			t.Fatalf("only %d fault lines:\n%s", len(faults), b.String())
		}
		return strings.Join(faults, "\n"), b.String()
	}
	run1, out := faultLines()
	run2, _ := faultLines()
	if run1 != run2 {
		t.Fatalf("fault logs differ across same-seed runs:\n%s\nvs:\n%s", run1, run2)
	}
	if !strings.Contains(out, "consistent=true") {
		t.Fatalf("chaos run did not converge:\n%s", out)
	}
}

func FuzzParseSchedule(f *testing.F) {
	f.Add("200:out2,400:batch128")
	f.Add("1:in1")
	f.Add("x")
	f.Fuzz(func(t *testing.T, s string) {
		actions, err := parseSchedule(s)
		if err != nil {
			return
		}
		// Accepted schedules are sorted with positive arguments.
		for i, a := range actions {
			if a.arg <= 0 || a.iter < 0 {
				t.Fatalf("invalid accepted action %+v", a)
			}
			if i > 0 && actions[i-1].iter > a.iter {
				t.Fatal("schedule not sorted")
			}
		}
	})
}
