// Package elan is the public API of the Elan reproduction: a generic and
// efficient elastic training system for data-parallel deep learning with
// collective communication (Xie et al., ICDCS 2020), rebuilt in pure Go on
// simulated hardware substrates.
//
// The package re-exports the system's main entry points:
//
//   - Cluster construction and hardware topology (NewCluster, Geometry);
//   - the simulated elastic job with Elan's adjustment mechanisms
//     (NewJob, Job.ScaleOut / ScaleIn / Migrate);
//   - real in-process elastic training on the pure-Go MLP substrate
//     (NewLiveJob, LiveJob.Step / ScaleOut / SetTotalBatch);
//   - the hybrid scaling mechanism (NewHybridMechanism, LRSchedule);
//   - the analytic performance model (NewPerfModel);
//   - the elastic scheduling simulator (RunSchedule) and trace generation
//     (GenerateTrace).
//
// See the examples/ directory for runnable walkthroughs and DESIGN.md for
// the system inventory and the experiment index.
package elan

import (
	"io"
	"time"

	"github.com/elan-sys/elan/internal/baseline"
	"github.com/elan-sys/elan/internal/checkpoint"
	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/coord"
	"github.com/elan-sys/elan/internal/core"
	"github.com/elan-sys/elan/internal/data"
	"github.com/elan-sys/elan/internal/engine"
	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/perfmodel"
	"github.com/elan-sys/elan/internal/scaling"
	"github.com/elan-sys/elan/internal/sched"
	"github.com/elan-sys/elan/internal/telemetry"
	"github.com/elan-sys/elan/internal/topology"
	"github.com/elan-sys/elan/internal/trace"
	"github.com/elan-sys/elan/internal/worker"
)

// Re-exported core types. The underlying implementations live in internal
// packages; these aliases are the supported public surface.
type (
	// Cluster is the hardware topology and allocation state.
	Cluster = topology.Cluster
	// Geometry describes a cluster's shape.
	Geometry = topology.Geometry
	// GPUID identifies one GPU in the cluster tree.
	GPUID = topology.GPUID
	// GPU is one accelerator.
	GPU = topology.GPU
	// Model is a DL model with its calibration constants.
	Model = models.Model
	// Job is the simulated elastic training job.
	Job = core.Job
	// JobConfig configures a Job.
	JobConfig = core.JobConfig
	// AdjustmentReport describes one resource adjustment.
	AdjustmentReport = core.AdjustmentReport
	// SystemCosts calibrates fixed system costs.
	SystemCosts = core.SystemCosts
	// LiveJob is real in-process elastic training.
	LiveJob = core.LiveJob
	// LiveConfig configures a LiveJob.
	LiveConfig = core.LiveConfig
	// Dataset is an in-memory labeled dataset.
	Dataset = data.Dataset
	// HybridMechanism is the hybrid scaling decision engine.
	HybridMechanism = scaling.Mechanism
	// ScalingDecision is one hybrid-scaling outcome.
	ScalingDecision = scaling.Decision
	// LRSchedule is the progressive linear scaling rule.
	LRSchedule = scaling.LRSchedule
	// PerfModel predicts data-parallel training performance.
	PerfModel = perfmodel.Perf
	// AdjustmentKind classifies adjustments.
	AdjustmentKind = coord.Kind
	// SchedulePolicy selects the scheduling discipline.
	SchedulePolicy = sched.Policy
	// ScheduleSystem models an elasticity substrate's costs.
	ScheduleSystem = sched.System
	// ScheduleResult aggregates one scheduling run.
	ScheduleResult = sched.Result
	// TraceJob is one synthetic trace entry.
	TraceJob = trace.Job
	// TraceConfig controls trace generation.
	TraceConfig = trace.Config
	// SRBaseline is the Shutdown-&-Restart baseline.
	SRBaseline = baseline.SR
	// LitzBaseline is the executor-based baseline.
	LitzBaseline = baseline.Litz
	// Fleet is the resident worker-agent runtime: persistent worker
	// goroutines coordinating over the message bus.
	Fleet = worker.Fleet
	// FleetConfig configures a Fleet.
	FleetConfig = worker.FleetConfig
	// Engine is the framework contract of the hook API; StaticEngine and
	// DynamicEngine are the two demo integrations.
	Engine = engine.Engine
	// StaticEngine is the Caffe-like precompiled engine.
	StaticEngine = engine.StaticEngine
	// DynamicEngine is the PyTorch-like eager engine.
	DynamicEngine = engine.DynamicEngine
	// Snapshot is a LiveJob's complete serializable training state.
	Snapshot = core.Snapshot
	// Clock is the injectable time source used across the runtime. All
	// timeout, backoff and liveness logic goes through a Clock, so tests
	// and simulations can run on virtual time (see NewSimClock).
	Clock = clock.Clock
	// SimClock is a discrete-event virtual clock implementing Clock.
	SimClock = clock.Sim
	// Tracer records nested spans; inject via LiveConfig.Tracer or
	// FleetConfig.Tracer. A TraceRecorder is the live implementation.
	Tracer = telemetry.Tracer
	// Span is one traced operation; safe (and free) on a nil receiver.
	Span = telemetry.Span
	// SpanRecord is a completed span as snapshotted by a TraceRecorder.
	SpanRecord = telemetry.SpanRecord
	// TraceRecorder collects spans against an injected Clock.
	TraceRecorder = telemetry.Recorder
	// MetricsRegistry holds the runtime's named counters, gauges and
	// histograms; inject via LiveConfig.Metrics or FleetConfig.Metrics.
	MetricsRegistry = telemetry.Registry
	// TelemetryServer serves /metrics and /healthz over HTTP.
	TelemetryServer = telemetry.DebugServer
	// TraceContext is a span's wire identity (trace + span + process); it
	// travels inside transport messages so one adjustment renders as a
	// single cross-process span tree.
	TraceContext = telemetry.TraceContext
	// FlightRecorder is the always-on black box: a fixed-capacity ring of
	// recent span/event records with an allocation-free record path, dumped
	// on faults and crashes. Attach via FleetConfig.Flight or
	// TraceRecorder.SetFlightRecorder.
	FlightRecorder = telemetry.FlightRecorder
	// FlightRecord is one slot of the flight ring.
	FlightRecord = telemetry.FlightRecord
	// AttribSummary is a trace's per-step time attribution: compute/comm/
	// coord/stall totals per rank step plus straggler flags.
	AttribSummary = telemetry.AttribSummary
)

// Adjustment kinds.
const (
	ScaleOut = coord.ScaleOut
	ScaleIn  = coord.ScaleIn
	Migrate  = coord.Migrate
)

// Scheduling policies.
const (
	FIFO            = sched.FIFO
	Backfill        = sched.Backfill
	ElasticFIFO     = sched.ElasticFIFO
	ElasticBackfill = sched.ElasticBackfill
)

// DefaultGeometry returns the paper's testbed shape: 8 nodes x 8 GPUs.
func DefaultGeometry() Geometry { return topology.DefaultGeometry() }

// ParseGeometry decodes a JSON cluster description (see
// topology.GeometryConfig for the schema).
func ParseGeometry(data []byte) (Geometry, error) { return topology.ParseGeometry(data) }

// EncodeGeometry renders a geometry as its JSON config form.
func EncodeGeometry(g Geometry) ([]byte, error) { return topology.EncodeGeometry(g) }

// NewCluster materializes a cluster from a geometry.
func NewCluster(g Geometry) (*Cluster, error) { return topology.NewCluster(g) }

// Models returns the evaluation model zoo (Table I plus ResNet-50).
func Models() []Model { return models.Zoo() }

// ModelByName looks a model up by name (e.g. "ResNet-50").
func ModelByName(name string) (Model, error) { return models.ByName(name) }

// NewPerfModel returns the default-calibrated performance model.
func NewPerfModel() *PerfModel { return perfmodel.Default() }

// NewJob builds a simulated elastic job.
func NewJob(cfg JobConfig) (*Job, error) { return core.NewJob(cfg) }

// DefaultSystemCosts returns the system-cost calibration used throughout
// the experiments.
func DefaultSystemCosts() SystemCosts { return core.DefaultSystemCosts() }

// NewLiveJob builds a real in-process elastic training job.
func NewLiveJob(cfg LiveConfig) (*LiveJob, error) { return core.NewLiveJob(cfg) }

// GenDataset generates the synthetic Gaussian-mixture classification
// dataset used by the live training experiments.
func GenDataset(seed int64, n, features, classes int) (*Dataset, error) {
	return data.GenGaussianMixture(seed, n, features, classes)
}

// NewHybridMechanism builds the hybrid scaling mechanism with the default
// performance model and a 100-iteration learning-rate ramp.
func NewHybridMechanism() (*HybridMechanism, error) {
	return scaling.New(scaling.DefaultConfig())
}

// NewLRSchedule builds a progressive linear scaling rule schedule: the
// learning rate moves from lr0 to lrT linearly over rampIters iterations
// starting at iteration t0.
func NewLRSchedule(lr0, lrT float64, t0, rampIters int) (*LRSchedule, error) {
	return scaling.NewLRSchedule(lr0, lrT, t0, rampIters)
}

// GenerateTrace produces a synthetic Sensetime-style job trace.
func GenerateTrace(cfg TraceConfig) ([]TraceJob, error) { return trace.Generate(cfg) }

// DefaultTraceConfig matches the paper's two-day, 128-GPU setup.
func DefaultTraceConfig() TraceConfig { return trace.DefaultConfig() }

// IdealScheduleSystem returns the zero-cost elasticity substrate.
func IdealScheduleSystem() ScheduleSystem { return sched.IdealSystem{} }

// ElanScheduleSystem returns the Elan cost model for scheduling.
func ElanScheduleSystem(seed int64) ScheduleSystem { return sched.NewElanSystem(seed) }

// SRScheduleSystem returns the Shutdown-&-Restart cost model.
func SRScheduleSystem(seed int64) ScheduleSystem { return sched.NewSRSystem(seed) }

// RunSchedule simulates a trace under a policy and elasticity system on a
// cluster of gpus GPUs.
func RunSchedule(policy SchedulePolicy, system ScheduleSystem, gpus int, jobs []TraceJob) (*ScheduleResult, error) {
	cfg := sched.DefaultConfig(policy, system)
	cfg.GPUs = gpus
	return sched.Run(cfg, jobs)
}

// NewSRBaseline builds the Shutdown-&-Restart baseline with default
// calibrations.
func NewSRBaseline(seed int64) *SRBaseline {
	return baseline.NewSR(core.DefaultSystemCosts(), checkpoint.DefaultFSModel(), seed)
}

// NewLitzBaseline builds the executor-based baseline with the given
// executors-per-worker (Litz-2, Litz-4).
func NewLitzBaseline(executors int) (*LitzBaseline, error) {
	return baseline.NewLitz(baseline.DefaultLitzConfig(executors), perfmodel.Default())
}

// TraceUtilization replays a trace and returns the Figure 1-style
// (hours, utilization) series.
func TraceUtilization(jobs []TraceJob, gpus int, step time.Duration) (hours, utils []float64, err error) {
	return trace.UtilizationSeries(jobs, gpus, step)
}

// NewFleet builds the resident worker-agent runtime.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return worker.NewFleet(cfg) }

// WallClock returns the real-time Clock (the default everywhere a config's
// Clock field is nil).
func WallClock() Clock { return clock.Wall{} }

// NewSimClock returns a virtual clock starting at epoch. Inject it via
// LiveConfig.Clock or FleetConfig.Clock to run timeout and liveness logic
// on deterministic discrete-event time; drive it with Advance, or start
// AutoAdvance to have it jump to each next deadline automatically.
func NewSimClock(epoch time.Time) *SimClock { return clock.NewSim(epoch) }

// NewTraceRecorder builds a span recorder reading time from clk (nil
// selects the wall clock) and retaining at most maxSpans completed spans
// (0 selects the default). Pass it as the Tracer of a LiveConfig or
// FleetConfig and export its Snapshot with WriteChromeTrace.
func NewTraceRecorder(clk Clock, maxSpans int) *TraceRecorder {
	return telemetry.NewRecorder(clk, maxSpans)
}

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// WriteChromeTrace renders spans as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	return telemetry.WriteChromeTrace(w, spans)
}

// NewFlightRecorder pre-allocates a flight ring of the given capacity
// (<= 0 selects the default). Recording into it never allocates; dump it
// with its DumpNow/LastDump and render dumps with WriteFlightDump.
func NewFlightRecorder(capacity int) *FlightRecorder {
	return telemetry.NewFlightRecorder(capacity)
}

// WriteFlightDump renders a flight-recorder dump as a readable postmortem
// log, oldest record first.
func WriteFlightDump(w io.Writer, reason string, recs []FlightRecord) error {
	return telemetry.WriteFlightDump(w, reason, recs)
}

// Attribute folds a trace's per-rank span trees into compute/comm/coord/
// stall phase totals per step and flags stragglers against the fleet P95.
func Attribute(spans []SpanRecord) AttribSummary { return telemetry.Attribute(spans) }

// WriteAttribution renders an attribution summary as a per-step table plus
// fleet totals.
func WriteAttribution(w io.Writer, a AttribSummary) error {
	return telemetry.WriteAttribution(w, a)
}

// WriteSpans serializes raw span records as JSON — the interchange format
// between elan-live -spans-out and elan-trace -attrib.
func WriteSpans(w io.Writer, spans []SpanRecord) error { return telemetry.WriteSpans(w, spans) }

// ReadSpans parses a WriteSpans file.
func ReadSpans(r io.Reader) ([]SpanRecord, error) { return telemetry.ReadSpans(r) }

// NewTelemetryServer serves reg's /metrics (Prometheus text format) and
// /healthz on addr (e.g. "localhost:9090"; port 0 picks a free port —
// read it back from Addr).
func NewTelemetryServer(addr string, reg *MetricsRegistry) (*TelemetryServer, error) {
	return telemetry.NewDebugServer(addr, reg)
}

// NewStaticEngine builds the Caffe-like precompiled training engine.
func NewStaticEngine(seed int64, sizes []int, lr, momentum float64) (*StaticEngine, error) {
	return engine.NewStatic(seed, sizes, lr, momentum)
}

// NewDynamicEngine builds the PyTorch-like eager engine with one or more
// structural branches.
func NewDynamicEngine(seed int64, branchSizes [][]int, lr, momentum float64) (*DynamicEngine, error) {
	return engine.NewDynamic(seed, branchSizes, lr, momentum)
}
