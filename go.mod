module github.com/elan-sys/elan

go 1.22
