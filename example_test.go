package elan_test

import (
	"fmt"

	elan "github.com/elan-sys/elan"
)

// ExampleHybridMechanism demonstrates Algorithm 1: scaling ResNet-50 from
// 16 to 32 workers keeps the total batch (strong scaling), while scaling to
// 512 workers grows it and rescales the learning rate linearly.
func Example_hybridScaling() {
	h, err := elan.NewHybridMechanism()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	m, err := elan.ModelByName("ResNet-50")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	small, err := h.Decide(m, 16, 512, 32, 0.1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("16->32: TBS %d, strong=%v, LR %.1f\n", small.TotalBatch, small.Strong, small.TargetLR)
	big, err := h.Decide(m, 16, 512, 512, 0.1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("16->512: TBS %d, strong=%v, LR factor %.0fx\n", big.TotalBatch, big.Strong, big.Factor)
	// Output:
	// 16->32: TBS 512, strong=true, LR 0.1
	// 16->512: TBS 16384, strong=false, LR factor 32x
}

// Example_lrSchedule shows the progressive linear scaling rule (Equation 3):
// the learning rate ramps linearly from lr0 to lr0*k over T iterations.
func Example_lrSchedule() {
	sched, err := elan.NewLRSchedule(0.1, 0.4, 100, 100)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, t := range []int{0, 100, 150, 200, 500} {
		fmt.Printf("iter %3d: lr %.3f\n", t, sched.At(t))
	}
	// Output:
	// iter   0: lr 0.100
	// iter 100: lr 0.100
	// iter 150: lr 0.250
	// iter 200: lr 0.400
	// iter 500: lr 0.400
}

// Example_topology classifies links between GPUs and picks replication
// sources the way Section IV describes.
func Example_topology() {
	a := elan.GPUID{Node: 0, Socket: 0, Switch: 0, Index: 0}
	b := elan.GPUID{Node: 0, Socket: 0, Switch: 0, Index: 1}
	c := elan.GPUID{Node: 0, Socket: 1, Switch: 0, Index: 0}
	d := elan.GPUID{Node: 1, Socket: 0, Switch: 0, Index: 0}
	fmt.Println(a.String(), "<->", b.String())
	fmt.Println(a.String(), "<->", c.String())
	fmt.Println(a.String(), "<->", d.String())
	// Output:
	// n0.s0.p0.g0 <-> n0.s0.p0.g1
	// n0.s0.p0.g0 <-> n0.s1.p0.g0
	// n0.s0.p0.g0 <-> n1.s0.p0.g0
}

// Example_perfModel queries the strong-scaling optimum that Algorithm 1
// consults: bigger batches support more workers.
func Example_perfModel() {
	p := elan.NewPerfModel()
	m, err := elan.ModelByName("ResNet-50")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, tbs := range []int{128, 512, 2048} {
		n, err := p.OptimalWorkers(m, tbs, 1024)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("TBS %4d: optimal workers %d\n", tbs, n)
	}
	// Output:
	// TBS  128: optimal workers 16
	// TBS  512: optimal workers 32
	// TBS 2048: optimal workers 128
}
