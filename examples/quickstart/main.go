// Quickstart: create a cluster, start an elastic ResNet-50 job on 8 GPUs,
// scale it out to 16, migrate it to another set of nodes and scale it back
// in — printing what Elan does at each step and how long training pauses.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	elan "github.com/elan-sys/elan"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The paper's testbed: 8 nodes x 2 sockets x 2 PCIe switches x 2 GPUs.
	cluster, err := elan.NewCluster(elan.DefaultGeometry())
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %d GPUs (%d per node)\n", cluster.NumGPUs(), cluster.GPUsPerNode())

	model, err := elan.ModelByName("ResNet-50")
	if err != nil {
		return err
	}
	gpus, err := cluster.Reserve(8)
	if err != nil {
		return err
	}
	ids := make([]elan.GPUID, len(gpus))
	for i, g := range gpus {
		ids[i] = g.ID
	}
	job, err := elan.NewJob(elan.JobConfig{
		Model:      model,
		Cluster:    cluster,
		Workers:    ids,
		TotalBatch: 256,
		LR:         0.1,
		Seed:       42,
	})
	if err != nil {
		return err
	}
	report := func(label string, rep elan.AdjustmentReport) {
		fmt.Printf("\n%s (%v): training paused %v\n", label, rep.Kind, rep.Pause.Round(1e6))
		for _, p := range rep.Breakdown {
			fmt.Printf("  %-18s %v\n", p.Name, p.Duration.Round(1e5))
		}
		if rep.HiddenStartInit > 0 {
			fmt.Printf("  (start+init of new workers, %v, overlapped with training)\n",
				rep.HiddenStartInit.Round(1e6))
		}
		if !rep.Decision.Strong {
			fmt.Printf("  hybrid scaling: total batch -> %d (k=%.0f), LR -> %.3f\n",
				rep.Decision.TotalBatch, rep.Decision.Factor, rep.Decision.TargetLR)
		}
	}

	tp, err := job.Throughput()
	if err != nil {
		return err
	}
	fmt.Printf("\njob: %s, %d workers, total batch %d, %.0f samples/s\n",
		model.Name, job.NumWorkers(), job.TotalBatch, tp)
	ov, err := job.RuntimeOverhead()
	if err != nil {
		return err
	}
	fmt.Printf("elasticity runtime overhead: %.2f per-mille\n", ov*1000)

	// Scale out 8 -> 16.
	more, err := cluster.Reserve(8)
	if err != nil {
		return err
	}
	moreIDs := make([]elan.GPUID, len(more))
	for i, g := range more {
		moreIDs[i] = g.ID
	}
	rep, err := job.ScaleOut(moreIDs)
	if err != nil {
		return err
	}
	report("scale out 8 -> 16", rep)

	// Migrate the 16 workers to fresh GPUs.
	dest, err := cluster.Reserve(16)
	if err != nil {
		return err
	}
	destIDs := make([]elan.GPUID, len(dest))
	for i, g := range dest {
		destIDs[i] = g.ID
	}
	old := append([]elan.GPUID(nil), job.Workers...)
	rep, err = job.Migrate(destIDs)
	if err != nil {
		return err
	}
	report("migrate 16 -> 16", rep)
	_ = old

	// Scale in 16 -> 8 (concede resources to another job).
	rep, err = job.ScaleIn(job.Workers[8:])
	if err != nil {
		return err
	}
	report("scale in 16 -> 8", rep)

	tp, err = job.Throughput()
	if err != nil {
		return err
	}
	fmt.Printf("\nfinal: %d workers, total batch %d, %.0f samples/s\n",
		job.NumWorkers(), job.TotalBatch, tp)
	return nil
}
