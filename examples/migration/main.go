// Migration: topology-aware state replication in detail. The example
// builds the paper's Figure 9 scenario, prints the replication plan the
// planner produces (nearest sources, transports, contention domains) and
// contrasts the concurrent IO-free mechanism with the checkpoint path the
// S&R baseline uses for the same state.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	elan "github.com/elan-sys/elan"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := elan.NewCluster(elan.DefaultGeometry())
	if err != nil {
		return err
	}
	model, err := elan.ModelByName("VGG-19") // 1.1 GiB of GPU state
	if err != nil {
		return err
	}
	fmt.Printf("model: %s, GPU state to replicate per worker: %.2f GiB\n\n",
		model.Name, float64(model.GPUStateBytes())/(1<<30))

	// An 8-worker job packed on node 0.
	gpus, err := cluster.Reserve(8)
	if err != nil {
		return err
	}
	ids := make([]elan.GPUID, len(gpus))
	for i, g := range gpus {
		ids[i] = g.ID
	}
	job, err := elan.NewJob(elan.JobConfig{
		Model:      model,
		Cluster:    cluster,
		Workers:    ids,
		TotalBatch: 192,
		LR:         0.05,
		Seed:       9,
	})
	if err != nil {
		return err
	}

	// Migrate it to node 1.
	dest, err := cluster.Reserve(8)
	if err != nil {
		return err
	}
	destIDs := make([]elan.GPUID, len(dest))
	for i, g := range dest {
		destIDs[i] = g.ID
	}
	fmt.Println("migrating 8 workers from node 0 to node 1 with Elan:")
	rep, err := job.Migrate(destIDs)
	if err != nil {
		return err
	}
	for _, p := range rep.Breakdown {
		fmt.Printf("  %-18s %v\n", p.Name, p.Duration.Round(1e6))
	}
	fmt.Printf("  pause: %v (destination start/init of %v fully overlapped)\n\n",
		rep.Pause.Round(1e6), rep.HiddenStartInit.Round(1e9))

	// The same migration under Shutdown-&-Restart.
	sr := elan.NewSRBaseline(9)
	srRep, err := sr.Adjust(elan.Migrate, model, 8, 8)
	if err != nil {
		return err
	}
	fmt.Println("the same migration with the S&R baseline (checkpoint through the shared FS):")
	for _, p := range srRep.Breakdown {
		fmt.Printf("  %-18s %v\n", p.Name, p.Duration.Round(1e6))
	}
	fmt.Printf("  pause: %v\n\n", srRep.Pause.Round(1e6))
	fmt.Printf("Elan is %.1fx faster: it moves GPU state directly over P2P/SHM/RDMA\n",
		float64(srRep.Pause)/float64(rep.Pause))
	fmt.Println("links chosen from the hardware topology, avoiding the filesystem and")
	fmt.Println("the CPU-GPU copies entirely, and replicates to all workers concurrently.")
	return nil
}
