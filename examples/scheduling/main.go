// Scheduling: elastic vs static scheduling of a synthetic two-day
// production trace on a 128-GPU cluster (the Section VI-C experiment),
// comparing FIFO/Backfill against their elastic variants and the three
// elasticity systems (Ideal, Elan, S&R).
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"
	"time"

	elan "github.com/elan-sys/elan"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := elan.DefaultTraceConfig()
	cfg.Span = 12 * time.Hour // a compact slice of the two-day trace
	cfg.JobsPerDay = 400
	cfg.MeanServiceMinutes = 70
	jobs, err := elan.GenerateTrace(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d jobs over %v on %d GPUs\n\n", len(jobs), cfg.Span, cfg.ClusterGPUs)

	fmt.Println("policy comparison (Ideal system):")
	fmt.Printf("%-8s %12s %12s %12s\n", "policy", "mean JPT", "mean JCT", "makespan")
	for _, p := range []elan.SchedulePolicy{elan.FIFO, elan.Backfill, elan.ElasticFIFO, elan.ElasticBackfill} {
		res, err := elan.RunSchedule(p, elan.IdealScheduleSystem(), cfg.ClusterGPUs, jobs)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %12v %12v %12v\n", p,
			res.MeanJPT.Round(time.Second), res.MeanJCT.Round(time.Second),
			res.Makespan.Round(time.Minute))
	}

	fmt.Println("\nsystem comparison (E-BF policy):")
	fmt.Printf("%-8s %12s %12s\n", "system", "mean JCT", "makespan")
	systems := []elan.ScheduleSystem{
		elan.IdealScheduleSystem(),
		elan.ElanScheduleSystem(1),
		elan.SRScheduleSystem(1),
	}
	for _, sys := range systems {
		res, err := elan.RunSchedule(elan.ElasticBackfill, sys, cfg.ClusterGPUs, jobs)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %12v %12v\n", sys.Name(),
			res.MeanJCT.Round(time.Second), res.Makespan.Round(time.Minute))
	}
	fmt.Println("\nhigh-performance elasticity (Elan ~ Ideal) is what makes the elastic\npolicies profitable; S&R gives part of the gain back in adjustment pauses.")
	return nil
}
