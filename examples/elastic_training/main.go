// Elastic training: the Section VI-B scenario on the live substrate. An
// AdaBatch-style algorithm doubles the total batch size at fixed intervals;
// Elan scales the worker pool to match and applies the progressive linear
// scaling rule to the learning rate. The example trains a real pure-Go MLP
// with genuine ring-allreduce data parallelism and verifies that replicas
// stay bitwise-consistent across every adjustment.
//
//	go run ./examples/elastic_training
package main

import (
	"fmt"
	"log"

	elan "github.com/elan-sys/elan"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		seed     = 7
		features = 16
		classes  = 8
	)
	train, err := elan.GenDataset(seed, 8192, features, classes)
	if err != nil {
		return err
	}
	test, err := elan.GenDataset(seed+1, 2048, features, classes)
	if err != nil {
		return err
	}
	job, err := elan.NewLiveJob(elan.LiveConfig{
		Dataset:    train,
		LayerSizes: []int{features, 32, classes},
		Workers:    2,
		TotalBatch: 64,
		LR:         0.02,
		Momentum:   0.9,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	defer job.Close()

	eval := func(stage string) error {
		loss, acc, err := job.Evaluate(test)
		if err != nil {
			return err
		}
		fmt.Printf("%-28s iter %4d, workers %d, TBS %4d, LR %.4f, loss %.3f, acc %.1f%%, consistent=%v\n",
			stage, job.Iteration(), job.NumWorkers(), job.TotalBatch(), job.LR(),
			loss, 100*acc, job.ReplicasConsistent())
		return nil
	}

	steps := func(n int) error {
		for i := 0; i < n; i++ {
			if _, err := job.Step(); err != nil {
				return err
			}
		}
		return nil
	}

	if err := eval("start"); err != nil {
		return err
	}

	// Phase 1: TBS 64 on 2 workers.
	if err := steps(300); err != nil {
		return err
	}
	if err := eval("after phase 1"); err != nil {
		return err
	}

	// AdaBatch doubles the batch; Elan scales out and ramps the LR
	// (progressive linear scaling over 40 iterations).
	if err := job.SetTotalBatch(128, 40, true); err != nil {
		return err
	}
	if err := job.ScaleOut(2); err != nil { // 2 -> 4 workers
		return err
	}
	fmt.Println("-- adjustment: TBS 64 -> 128, workers 2 -> 4 (replication + group rebuild) --")
	if err := steps(200); err != nil {
		return err
	}
	if err := eval("after phase 2"); err != nil {
		return err
	}

	// Second doubling.
	if err := job.SetTotalBatch(256, 40, true); err != nil {
		return err
	}
	if err := job.ScaleOut(4); err != nil { // 4 -> 8 workers
		return err
	}
	fmt.Println("-- adjustment: TBS 128 -> 256, workers 4 -> 8 --")
	if err := steps(150); err != nil {
		return err
	}
	if err := eval("after phase 3"); err != nil {
		return err
	}

	// The cluster needs GPUs back: scale in to 4 without losing state.
	if err := job.ScaleIn(4); err != nil {
		return err
	}
	fmt.Println("-- adjustment: scale in 8 -> 4 (no state movement) --")
	if err := steps(100); err != nil {
		return err
	}
	if err := eval("final"); err != nil {
		return err
	}
	if !job.ReplicasConsistent() {
		return fmt.Errorf("replica consistency violated")
	}
	fmt.Println("\nall adjustments preserved the data-parallel invariant.")
	return nil
}
