// Fault tolerance: the application master is a single point of failure, so
// Elan (Section V-D) persists its state machine to a replicated store,
// tags every message with a unique ID for resend-and-dedup, and relies on
// reconnecting sockets. This example kills the AM in the middle of a
// scale-out — after one of two new workers has reported — recovers a new
// incarnation from the store on the same TCP address, and completes the
// adjustment without losing the first report. It also shows the fencing of
// the stale incarnation.
//
//	go run ./examples/fault_tolerance
package main

// This example reaches into internal packages; it lives in this module, so
// that is allowed, and it demonstrates machinery the public facade wraps.

import (
	"fmt"
	"log"

	"github.com/elan-sys/elan/internal/coord"
	"github.com/elan-sys/elan/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The replicated store (etcd in the paper's deployment).
	st := store.New()

	fmt.Println("1. starting the application master and serving it over TCP")
	am1, err := coord.NewAM("job-42", st)
	if err != nil {
		return err
	}
	svc1, err := coord.NewTCPService(am1, "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := svc1.Addr
	fmt.Printf("   AM listening on %s\n", addr)
	client := coord.NewTCPClient(addr)

	fmt.Println("2. scheduler requests a scale-out by two workers (w5, w6)")
	if err := client.RequestAdjustment(coord.ScaleOut, []string{"w5", "w6"}, nil); err != nil {
		return err
	}
	fmt.Println("3. w5 finishes start+initialization and reports")
	if err := client.ReportReady("w5"); err != nil {
		return err
	}
	state, err := client.AMState()
	if err != nil {
		return err
	}
	fmt.Printf("   AM state: %v, still waiting for: %v\n", state.State, state.Pending)

	fmt.Println("4. the AM process crashes")
	svc1.Close()
	if _, err := client.AMState(); err != nil {
		fmt.Printf("   (worker sees: %v — it will keep resending)\n", shortErr(err))
	}

	fmt.Println("5. a new AM incarnation recovers the state machine from the store")
	am2, err := coord.Recover("job-42", st)
	if err != nil {
		return err
	}
	svc2, err := coord.NewTCPService(am2, addr)
	if err != nil {
		return err
	}
	defer svc2.Close()
	state, err = client.AMState()
	if err != nil {
		return err
	}
	fmt.Printf("   recovered state: %v, pending: %v (w5's report survived)\n",
		state.State, state.Pending)

	fmt.Println("6. the stale incarnation is fenced off by the store's CAS")
	if err := am1.RequestAdjustment(coord.ScaleIn, nil, []string{"w1"}); err != nil {
		fmt.Printf("   stale AM mutation rejected: %v\n", shortErr(err))
	}

	fmt.Println("7. w6 reports; the next coordination fires the adjustment")
	if err := client.ReportReady("w6"); err != nil {
		return err
	}
	adj, ok, err := client.Coordinate()
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("adjustment did not fire")
	}
	fmt.Printf("   adjustment #%d delivered: %v add=%v\n", adj.Seq, adj.Kind, adj.Add)
	fmt.Println("\nthe adjustment completed exactly once across an AM failure.")
	return nil
}

func shortErr(err error) string {
	s := err.Error()
	if len(s) > 70 {
		return s[:70] + "..."
	}
	return s
}
