// Frameworks: Elan's generality claim (Section V-A). The paper integrates
// Elan with both Caffe (a static execution engine) and PyTorch (a dynamic
// one) through the same hook API. This example trains the same task with a
// static precompiled engine and a dynamic eager engine — one of whose
// branches changes per step, something a static plan cannot express — and
// shows that the identical replication hook adapter makes both elastic.
//
//	go run ./examples/frameworks
package main

import (
	"fmt"
	"log"

	elan "github.com/elan-sys/elan"
	"github.com/elan-sys/elan/internal/replication"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ds, err := elan.GenDataset(3, 2048, 4, 3)
	if err != nil {
		return err
	}
	x, y, err := ds.Batch(0, 512)
	if err != nil {
		return err
	}

	// Framework 1: static engine (Caffe-like).
	static, err := elan.NewStaticEngine(1, []int{4, 24, 3}, 0.1, 0.9)
	if err != nil {
		return err
	}
	// Framework 2: dynamic engine (PyTorch-like) with two structural
	// branches chosen per step.
	dynamic, err := elan.NewDynamicEngine(1, [][]int{{4, 24, 3}, {4, 12, 12, 3}}, 0.1, 0.9)
	if err != nil {
		return err
	}
	dynamic.Select = func(step int) int { return step % 2 }

	for name, eng := range map[string]elan.Engine{"static (Caffe-like)": static, "dynamic (PyTorch-like)": dynamic} {
		var loss float64
		for i := 0; i < 80; i++ {
			l, err := eng.Step(x, y, 0.08)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			loss = l
		}
		_, acc, err := eng.Eval(x, y)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s final loss %.3f, accuracy %.1f%%\n", name, loss, 100*acc)
	}

	// Elasticity through the hook API, identically for both frameworks: a
	// scale-out from 1 to 3 replicas replicates the trained state.
	fmt.Println("\nscale-out via the RegisterHook API (1 -> 3 replicas):")
	for name, build := range map[string]func() (elan.Engine, error){
		"static": func() (elan.Engine, error) {
			return elan.NewStaticEngine(9, []int{4, 24, 3}, 0.1, 0.9)
		},
		"dynamic": func() (elan.Engine, error) {
			return elan.NewDynamicEngine(9, [][]int{{4, 24, 3}}, 0.1, 0.9)
		},
	} {
		replicas := make([]elan.Engine, 3)
		for i := range replicas {
			e, err := build()
			if err != nil {
				return err
			}
			replicas[i] = e
		}
		for i := 0; i < 40; i++ {
			if _, err := replicas[0].Step(x, y, 0.08); err != nil {
				return err
			}
		}
		copier := replication.NewCopier()
		if err := engineHooks(copier, replicas); err != nil {
			return err
		}
		if err := copier.Execute(0, 1); err != nil {
			return err
		}
		if err := copier.Execute(0, 2); err != nil {
			return err
		}
		l0, _, err := replicas[0].Eval(x, y)
		if err != nil {
			return err
		}
		l2, _, err := replicas[2].Eval(x, y)
		if err != nil {
			return err
		}
		fmt.Printf("  %-8s replica 0 loss %.4f == replica 2 loss %.4f\n", name, l0, l2)
	}
	fmt.Println("\nthe same hooks served both execution models: that is the generality claim.")
	return nil
}

// engineHooks registers the one hook any framework must provide.
func engineHooks(c *replication.Copier, replicas []elan.Engine) error {
	return c.RegisterHook(replication.Hook{
		Kind:  "engine-state",
		OnGPU: true,
		Copy: func(src, dst int) error {
			return replicas[dst].ImportState(replicas[src].ExportState())
		},
	})
}
