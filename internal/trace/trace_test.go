package trace

import (
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Submit != b[i].Submit || a[i].ReqWorkers != b[i].ReqWorkers ||
			a[i].Model.Name != b[i].Model.Name {
			t.Fatalf("job %d differs", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 99
	c, err := Generate(cfg2)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i].Submit != c[i].Submit {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds gave identical traces")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Span = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("zero span accepted")
	}
	bad = DefaultConfig()
	bad.JobsPerDay = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("zero jobs/day accepted")
	}
	bad = DefaultConfig()
	bad.ClusterGPUs = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("zero GPUs accepted")
	}
}

func TestGenerateInvariants(t *testing.T) {
	cfg := DefaultConfig()
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(jobs) < 100 {
		t.Fatalf("two-day trace has only %d jobs", len(jobs))
	}
	var prev time.Duration
	for _, j := range jobs {
		if j.Submit < prev {
			t.Fatal("jobs not sorted by submit time")
		}
		prev = j.Submit
		if j.Submit >= cfg.Span {
			t.Fatalf("job %d submitted after span", j.ID)
		}
		if j.MinWorkers < 1 || j.MinWorkers > j.ReqWorkers {
			t.Fatalf("job %d: min %d req %d", j.ID, j.MinWorkers, j.ReqWorkers)
		}
		if j.MaxWorkers < j.ReqWorkers || j.MaxWorkers > cfg.ClusterGPUs/2 {
			t.Fatalf("job %d: max %d req %d", j.ID, j.MaxWorkers, j.ReqWorkers)
		}
		if j.ReqWorkers > cfg.ClusterGPUs/4 {
			t.Fatalf("job %d: req %d exceeds cluster/4", j.ID, j.ReqWorkers)
		}
		if j.PerWorkerBatch < 1 || j.PerWorkerBatch > j.Model.MaxPerWorkerBatch {
			t.Fatalf("job %d: per-worker batch %d", j.ID, j.PerWorkerBatch)
		}
		if j.TotalSamples <= 0 {
			t.Fatalf("job %d: no work", j.ID)
		}
	}
}

func TestGenerateDiurnalPattern(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Span = 7 * 24 * time.Hour
	cfg.JobsPerDay = 200
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Arrivals during the daytime window (8:00-20:00) should outnumber the
	// nighttime window clearly.
	day, night := 0, 0
	for _, j := range jobs {
		h := int(j.Submit.Hours()) % 24
		if h >= 8 && h < 20 {
			day++
		} else {
			night++
		}
	}
	if float64(day) < 1.2*float64(night) {
		t.Fatalf("no diurnal pattern: day=%d night=%d", day, night)
	}
}

func TestGenerateJobSizeDistribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Span = 14 * 24 * time.Hour
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	small, large := 0, 0
	for _, j := range jobs {
		if j.ReqWorkers <= 8 {
			small++
		} else {
			large++
		}
	}
	// Heavy-tailed: small jobs dominate but large ones exist.
	if small <= 4*large {
		t.Fatalf("size distribution off: small=%d large=%d", small, large)
	}
	if large == 0 {
		t.Fatal("no large jobs in two weeks")
	}
}

func TestUtilizationSeries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Span = 7 * 24 * time.Hour
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	hours, utils, err := UtilizationSeries(jobs, cfg.ClusterGPUs, 10*time.Minute)
	if err != nil {
		t.Fatalf("UtilizationSeries: %v", err)
	}
	if len(hours) != len(utils) || len(hours) < 100 {
		t.Fatalf("series lengths %d/%d", len(hours), len(utils))
	}
	var minU, maxU = 2.0, -1.0
	for _, u := range utils {
		if u < 0 || u > 1 {
			t.Fatalf("utilization %v out of [0,1]", u)
		}
		if u < minU {
			minU = u
		}
		if u > maxU {
			maxU = u
		}
	}
	// Figure 1's point: dramatic fluctuation.
	if maxU-minU < 0.3 {
		t.Fatalf("utilization fluctuation too small: [%v, %v]", minU, maxU)
	}
	if _, _, err := UtilizationSeries(jobs, 0, time.Minute); err == nil {
		t.Fatal("zero GPUs accepted")
	}
}
