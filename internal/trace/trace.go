// Package trace generates synthetic DL-training job traces shaped like the
// production Sensetime trace the paper describes: a multi-day span with a
// strong diurnal arrival pattern, heavy-tailed job sizes (most jobs are
// small, a few span many GPUs) and heavy-tailed service demands (minutes to
// many hours). The real trace is proprietary; the scheduling results depend
// on the statistical shape — fluctuating load and queueing behind large
// jobs — which this generator reproduces deterministically from a seed.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/elan-sys/elan/internal/models"
)

// Job is one trace entry.
type Job struct {
	ID     int
	Submit time.Duration
	// Model indexes models.Zoo().
	Model models.Model
	// ReqWorkers is the static resource request (req_res).
	ReqWorkers int
	// MinWorkers/MaxWorkers bound elastic scheduling (min_res/max_res):
	// the model fits in GPU memory at MinWorkers and still converges at
	// MaxWorkers (Section VI-C).
	MinWorkers int
	MaxWorkers int
	// PerWorkerBatch is the configured batch per worker at ReqWorkers.
	PerWorkerBatch int
	// TotalSamples is the work to process before the job completes.
	TotalSamples float64
}

// TotalBatch returns the job's static total batch size.
func (j Job) TotalBatch() int { return j.ReqWorkers * j.PerWorkerBatch }

// Config controls generation.
type Config struct {
	Seed int64
	// Span is the trace length (the paper uses a down-sampled two-day
	// trace for scheduling and one week for the utilization figure).
	Span time.Duration
	// JobsPerDay is the mean arrival count per day.
	JobsPerDay int
	// ClusterGPUs caps job sizes (the paper downscales to 128 GPUs).
	ClusterGPUs int
	// MeanServiceMinutes is the mean job service demand at ReqWorkers.
	MeanServiceMinutes float64
}

// DefaultConfig matches the paper's scheduling experiment: a two-day trace
// against 128 GPUs.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		Span:               48 * time.Hour,
		JobsPerDay:         260,
		ClusterGPUs:        128,
		MeanServiceMinutes: 150,
	}
}

// Generate produces a trace. Jobs are sorted by submission time.
func Generate(cfg Config) ([]Job, error) {
	if cfg.Span <= 0 {
		return nil, fmt.Errorf("trace: non-positive span %v", cfg.Span)
	}
	if cfg.JobsPerDay <= 0 || cfg.ClusterGPUs <= 0 {
		return nil, fmt.Errorf("trace: invalid config %+v", cfg)
	}
	if cfg.MeanServiceMinutes <= 0 {
		cfg.MeanServiceMinutes = 95
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zoo := models.Zoo()
	days := cfg.Span.Hours() / 24
	n := int(float64(cfg.JobsPerDay) * days)
	jobs := make([]Job, 0, n)
	var t time.Duration
	id := 0
	for t < cfg.Span {
		// Diurnal arrival intensity: peak during the (simulated) work day,
		// trough at night, matching the fluctuation of Figure 1.
		hourOfDay := math.Mod(t.Hours(), 24)
		intensity := 0.35 + 0.65*0.5*(1+math.Sin((hourOfDay-8)/24*2*math.Pi))
		meanGap := cfg.Span.Seconds() / float64(n) / intensity
		gap := rng.ExpFloat64() * meanGap
		t += time.Duration(gap * float64(time.Second))
		if t >= cfg.Span {
			break
		}
		m := zoo[rng.Intn(len(zoo))]
		req := sampleWorkers(rng, cfg.ClusterGPUs)
		minW := req / 4
		if minW < 1 {
			minW = 1
		}
		maxW := req * 4
		if maxW > cfg.ClusterGPUs/2 {
			maxW = cfg.ClusterGPUs / 2
		}
		if maxW < req {
			maxW = req
		}
		perWorker := m.MaxPerWorkerBatch / (1 << rng.Intn(3)) // /1, /2 or /4
		if perWorker < 1 {
			perWorker = 1
		}
		// Heavy-tailed (lognormal) service demand in samples: mean service
		// minutes at req workers converted via a rough throughput estimate.
		serviceMin := math.Exp(rng.NormFloat64()*1.0) * cfg.MeanServiceMinutes
		if serviceMin < 2 {
			serviceMin = 2
		}
		throughputGuess := float64(req*perWorker) / 0.3 // ~0.3 s/iter guess
		samples := serviceMin * 60 * throughputGuess
		jobs = append(jobs, Job{
			ID:             id,
			Submit:         t,
			Model:          m,
			ReqWorkers:     req,
			MinWorkers:     minW,
			MaxWorkers:     maxW,
			PerWorkerBatch: perWorker,
			TotalSamples:   samples,
		})
		id++
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("trace: generated no jobs for %+v", cfg)
	}
	return jobs, nil
}

// sampleWorkers draws a job size: mostly 1-8 GPUs, occasionally up to a
// quarter of the cluster, as in production DL traces.
func sampleWorkers(rng *rand.Rand, clusterGPUs int) int {
	sizes := []int{1, 2, 4, 8, 16, 32}
	weights := []float64{0.22, 0.26, 0.24, 0.16, 0.08, 0.04}
	r := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if r <= acc {
			if sizes[i] > clusterGPUs/4 {
				return clusterGPUs / 4
			}
			return sizes[i]
		}
	}
	return 1
}

// UtilizationSeries replays the trace under a naive static FIFO occupancy
// model and returns (hour, fraction-of-GPUs-busy) samples — the Figure 1
// style weekly utilization curve showing fluctuation and pending jobs
// caused by the lack of elasticity.
func UtilizationSeries(jobs []Job, clusterGPUs int, step time.Duration) ([]float64, []float64, error) {
	if clusterGPUs <= 0 || step <= 0 {
		return nil, nil, fmt.Errorf("trace: invalid utilization params")
	}
	// Naive replay: FIFO admission on GPU counts, service time estimated
	// from per-job demand at the requested size.
	type running struct {
		end     time.Duration
		workers int
	}
	var (
		hours, utils []float64
		active       []running
		queue        []Job
		next         int
		free         = clusterGPUs
	)
	end := jobs[len(jobs)-1].Submit + 24*time.Hour
	for now := time.Duration(0); now < end; now += step {
		// Complete jobs.
		var still []running
		for _, r := range active {
			if r.end <= now {
				free += r.workers
			} else {
				still = append(still, r)
			}
		}
		active = still
		// Admit arrivals into the queue.
		for next < len(jobs) && jobs[next].Submit <= now {
			queue = append(queue, jobs[next])
			next++
		}
		// FIFO start.
		for len(queue) > 0 && queue[0].ReqWorkers <= free {
			j := queue[0]
			queue = queue[1:]
			free -= j.ReqWorkers
			serviceSec := j.TotalSamples / (float64(j.TotalBatch()) / 0.3)
			active = append(active, running{
				end:     now + time.Duration(serviceSec*float64(time.Second)),
				workers: j.ReqWorkers,
			})
		}
		hours = append(hours, now.Hours())
		utils = append(utils, float64(clusterGPUs-free)/float64(clusterGPUs))
	}
	return hours, utils, nil
}
