package store

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGetPut(t *testing.T) {
	s := New()
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v", err)
	}
	v1 := s.Put("k", []byte("a"))
	if v1 <= 0 {
		t.Fatalf("version = %d", v1)
	}
	e, err := s.Get("k")
	if err != nil || string(e.Value) != "a" || e.Version != v1 {
		t.Fatalf("Get = %+v, %v", e, err)
	}
	v2 := s.Put("k", []byte("b"))
	if v2 <= v1 {
		t.Fatalf("versions not increasing: %d -> %d", v1, v2)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	s.Put("k", []byte("abc"))
	e, err := s.Get("k")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	e.Value[0] = 'X'
	e2, _ := s.Get("k")
	if string(e2.Value) != "abc" {
		t.Fatal("Get exposed internal storage")
	}
}

func TestPutCopiesInput(t *testing.T) {
	s := New()
	buf := []byte("abc")
	s.Put("k", buf)
	buf[0] = 'X'
	e, _ := s.Get("k")
	if string(e.Value) != "abc" {
		t.Fatal("Put retained caller's buffer")
	}
}

func TestCAS(t *testing.T) {
	s := New()
	// Create-if-absent with expected version 0.
	v1, err := s.CAS("k", 0, []byte("a"))
	if err != nil {
		t.Fatalf("CAS create: %v", err)
	}
	// Wrong version fails.
	if _, err := s.CAS("k", 0, []byte("b")); !errors.Is(err, ErrCASFailure) {
		t.Fatalf("CAS stale = %v", err)
	}
	// Right version succeeds.
	v2, err := s.CAS("k", v1, []byte("b"))
	if err != nil || v2 <= v1 {
		t.Fatalf("CAS update = %d, %v", v2, err)
	}
	e, _ := s.Get("k")
	if string(e.Value) != "b" {
		t.Fatalf("value = %q", e.Value)
	}
}

func TestCASLeaderElectionPattern(t *testing.T) {
	// Two concurrent "AM incarnations" race to create the same key; exactly
	// one wins.
	s := New()
	var wins int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.CAS("leader", 0, []byte("me")); err == nil {
				mu.Lock()
				wins++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("wins = %d, want 1", wins)
	}
}

func TestDelete(t *testing.T) {
	s := New()
	s.Put("k", []byte("a"))
	if err := s.Delete("k"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("key survived delete")
	}
	if err := s.Delete("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestWatch(t *testing.T) {
	s := New()
	ch, cancel := s.Watch("k")
	defer cancel()
	v := s.Put("k", []byte("a"))
	select {
	case ev := <-ch:
		if ev.Key != "k" || string(ev.Value) != "a" || ev.Version != v || ev.Deleted {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}
	if err := s.Delete("k"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	select {
	case ev := <-ch:
		if !ev.Deleted {
			t.Fatalf("event = %+v, want deletion", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no deletion event")
	}
}

func TestWatchCancel(t *testing.T) {
	s := New()
	ch, cancel := s.Watch("k")
	cancel()
	s.Put("k", []byte("a"))
	select {
	case ev, ok := <-ch:
		if ok {
			t.Fatalf("event after cancel: %+v", ev)
		}
	case <-time.After(50 * time.Millisecond):
		// No event: correct.
	}
}

func TestWatchEventValueIsPrivateCopy(t *testing.T) {
	// A watcher mutating the event value must not corrupt the stored entry
	// or a sibling watcher's view. Before the fix, putLocked handed the
	// same backing slice to s.data and every watcher event.
	s := New()
	ch1, cancel1 := s.Watch("k")
	defer cancel1()
	ch2, cancel2 := s.Watch("k")
	defer cancel2()
	s.Put("k", []byte("abc"))
	ev1 := <-ch1
	ev1.Value[0] = 'X'
	e, err := s.Get("k")
	if err != nil || string(e.Value) != "abc" {
		t.Fatalf("stored entry corrupted by watcher: %q, %v", e.Value, err)
	}
	ev2 := <-ch2
	if string(ev2.Value) != "abc" {
		t.Fatalf("sibling watcher saw mutation: %q", ev2.Value)
	}
}

func TestWatchRangeTerminatesAfterCancel(t *testing.T) {
	// A consumer ranging over the watch channel must unblock when the watch
	// is cancelled. Before the fix, cancel only removed the channel from
	// the registry and the range below blocked forever.
	s := New()
	ch, cancel := s.Watch("k")
	s.Put("k", []byte("a"))
	s.Put("k", []byte("b"))
	done := make(chan int)
	go func() {
		n := 0
		for range ch {
			n++
		}
		done <- n
	}()
	// Let the consumer drain, then cancel; the range loop must exit.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case n := <-done:
		if n != 2 {
			t.Fatalf("consumer saw %d events, want 2", n)
		}
	case <-time.After(time.Second):
		t.Fatal("range over cancelled watch never terminated")
	}
	// Cancel is idempotent and post-cancel puts don't panic.
	cancel()
	s.Put("k", []byte("c"))
}

func TestWatchSlowConsumerKeepsNewest(t *testing.T) {
	s := New()
	ch, cancel := s.Watch("k")
	defer cancel()
	// Overflow the 16-slot buffer.
	for i := 0; i < 40; i++ {
		s.Put("k", []byte{byte(i)})
	}
	// Drain until the final event shows up (delivery is asynchronous); it
	// must never be conflated away.
	var last Event
	deadline := time.After(2 * time.Second)
	for len(last.Value) != 1 || last.Value[0] != 39 {
		select {
		case ev := <-ch:
			last = ev
		case <-deadline:
			t.Fatalf("newest event lost, last = %+v", last)
		}
	}
}

func TestWatchOnlyMatchingKey(t *testing.T) {
	s := New()
	ch, cancel := s.Watch("a")
	defer cancel()
	s.Put("b", []byte("x"))
	select {
	case ev := <-ch:
		t.Fatalf("event for wrong key: %+v", ev)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestKeys(t *testing.T) {
	s := New()
	s.Put("a", nil)
	s.Put("b", nil)
	keys := s.Keys()
	if len(keys) != 2 {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := string(rune('a' + g%4))
			for i := 0; i < 100; i++ {
				s.Put(key, []byte{byte(i)})
				if _, err := s.Get(key); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
