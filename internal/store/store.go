// Package store implements a versioned key-value store with watches and
// compare-and-swap — the etcd substitute the application master persists its
// state machine to (Section V-D). Versions increase monotonically per key;
// CAS enables the leader-recovery pattern (only the AM incarnation holding
// the latest version may advance the state machine).
package store

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the store.
var (
	ErrNotFound   = errors.New("store: key not found")
	ErrCASFailure = errors.New("store: compare-and-swap version mismatch")
)

// Entry is a value with its version.
type Entry struct {
	Value   []byte
	Version int64
}

// Event describes a change delivered to watchers.
type Event struct {
	Key     string
	Value   []byte
	Version int64
	Deleted bool
}

// Store is an in-memory versioned KV store, safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	data     map[string]Entry
	watchers map[string][]chan Event
	nextRev  int64
}

// New creates an empty store.
func New() *Store {
	return &Store{
		data:     make(map[string]Entry),
		watchers: make(map[string][]chan Event),
	}
}

// Get returns the entry for key.
func (s *Store) Get(key string) (Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[key]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	out := Entry{Value: make([]byte, len(e.Value)), Version: e.Version}
	copy(out.Value, e.Value)
	return out, nil
}

// Put stores value under key unconditionally and returns the new version.
func (s *Store) Put(key string, value []byte) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(key, value)
}

func (s *Store) putLocked(key string, value []byte) int64 {
	s.nextRev++
	v := make([]byte, len(value))
	copy(v, value)
	e := Entry{Value: v, Version: s.nextRev}
	s.data[key] = e
	s.notifyLocked(Event{Key: key, Value: v, Version: e.Version})
	return e.Version
}

// CAS stores value under key only if the current version equals expected
// (use 0 for "key must not exist"). It returns the new version.
func (s *Store) CAS(key string, expected int64, value []byte) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.data[key]
	curVersion := int64(0)
	if ok {
		curVersion = cur.Version
	}
	if curVersion != expected {
		return 0, fmt.Errorf("%w: key %q at version %d, expected %d",
			ErrCASFailure, key, curVersion, expected)
	}
	return s.putLocked(key, value), nil
}

// Delete removes key; deleting a missing key is an error.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.data[key]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	delete(s.data, key)
	s.nextRev++
	s.notifyLocked(Event{Key: key, Version: s.nextRev, Deleted: true})
	return nil
}

// Watch subscribes to changes of key. The returned cancel function must be
// called to release the watcher; it closes the channel, so a consumer
// ranging over it terminates. Events are delivered asynchronously on a
// buffered channel; a slow consumer loses the oldest events (the channel is
// a conflating buffer of size 16), which is acceptable because consumers
// re-read the current state with Get after waking. Each event carries its
// own copy of the value, so watchers may mutate it freely.
func (s *Store) Watch(key string) (<-chan Event, func()) {
	ch := make(chan Event, 16)
	s.mu.Lock()
	s.watchers[key] = append(s.watchers[key], ch)
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		ws := s.watchers[key]
		for i, w := range ws {
			if w == ch {
				s.watchers[key] = append(ws[:i], ws[i+1:]...)
				// Closing under s.mu makes cancel idempotent (the second
				// call no longer finds ch in the map) and cannot race
				// notifyLocked, which only sends to registered channels
				// under the same lock.
				close(ch)
				break
			}
		}
	}
	return ch, cancel
}

func (s *Store) notifyLocked(ev Event) {
	for _, ch := range s.watchers[ev.Key] {
		// Each watcher gets a private copy of the value; aliasing the
		// stored slice lets a mutating consumer corrupt the entry that
		// Get serves to everyone else.
		evCopy := ev
		if ev.Value != nil {
			evCopy.Value = append([]byte(nil), ev.Value...)
		}
		select {
		case ch <- evCopy:
		default:
			// Drop oldest, then insert: keeps the newest event visible.
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- evCopy:
			default:
			}
		}
	}
}

// Keys returns all keys currently present (for inspection and tests).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	return out
}
