// Package store implements a versioned key-value store with watches and
// compare-and-swap — the etcd substitute the application master persists its
// state machine to (Section V-D). Versions increase monotonically per key;
// CAS enables the leader-recovery pattern (only the AM incarnation holding
// the latest version may advance the state machine).
//
// The store is sharded: keys route to one of numShards shards by FNV-1a
// hash, each shard guarded by its own mutex, so writers to unrelated keys
// never contend (DESIGN §13). A single atomic revision counter, bumped
// while the owning shard's lock is held, preserves the global ordering the
// per-key monotonic-version and CAS leader-fencing contracts rely on.
//
// Watch fan-out is O(changed keys): a mutation enqueues an event on its
// shard only when that key has watchers (one map lookup), and a central
// dispatcher goroutine — started lazily with the first watcher, stopped
// with the last — drains the per-shard queues and delivers to watcher
// channels. Ten thousand idle watchers on other keys cost a Put nothing.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/telemetry"
)

// Errors returned by the store.
var (
	ErrNotFound   = errors.New("store: key not found")
	ErrCASFailure = errors.New("store: compare-and-swap version mismatch")
)

// numShards is the fixed shard count. A power of two keeps the key→shard
// route a mask instead of a modulo; 32 is comfortably past the point of
// diminishing returns for a control-plane store whose hot keys number in
// the hundreds.
const numShards = 32

const shardMask = numShards - 1

// watchBuf is the per-watcher channel capacity; a slow consumer conflates
// (drop oldest, keep newest) past this depth.
const watchBuf = 16

// Entry is a value with its version.
type Entry struct {
	Value   []byte
	Version int64
}

// Event describes a change delivered to watchers.
type Event struct {
	Key     string
	Value   []byte
	Version int64
	Deleted bool
}

// shard is one lock domain: a slice of the keyspace, its watcher registry,
// and the queue of not-yet-dispatched events for watched keys.
type shard struct {
	mu       sync.Mutex
	data     map[string]Entry
	watchers map[string][]chan Event
	queue    []Event
}

// Store is an in-memory versioned KV store, safe for concurrent use.
type Store struct {
	shards [numShards]shard

	// rev is the global revision; incremented under the owning shard's
	// lock, so writes to one key observe strictly increasing values.
	rev atomic.Int64

	// wake (capacity 1) nudges the dispatcher after an enqueue.
	wake chan struct{}

	// dmu guards the dispatcher lifecycle: refcount of live watchers and
	// the current generation's quit/done channels. The dispatcher is lazy
	// — a store that is never watched owns no goroutine — and refcounted,
	// because Store has no Close and callers drop stores freely.
	dmu    sync.Mutex
	nwatch int
	quit   chan struct{}
	done   chan struct{}

	// deliveries counts per-watcher delivery attempts — the O(changed
	// keys) fan-out proof: a Put on an unwatched key must not move it.
	deliveries atomic.Int64

	// Telemetry (nil instruments are free no-ops).
	clk         clock.Clock
	mGets       *telemetry.Counter
	mPuts       *telemetry.Counter
	mCAS        *telemetry.Counter
	mCASFail    *telemetry.Counter
	mDeletes    *telemetry.Counter
	mEvents     *telemetry.Counter
	mDrops      *telemetry.Counter
	hGetSeconds *telemetry.Histogram
	hPutSeconds *telemetry.Histogram
	hCASSeconds *telemetry.Histogram
}

// New creates an empty store.
func New() *Store {
	s := &Store{wake: make(chan struct{}, 1)}
	for i := range s.shards {
		s.shards[i].data = make(map[string]Entry)
		s.shards[i].watchers = make(map[string][]chan Event)
	}
	return s
}

// Instrument wires the store's telemetry: operation counters, watch-drop
// counter, and — when clk is non-nil — per-operation latency histograms
// (store_get_seconds etc.). Latency observation takes a per-histogram
// mutex, so leave clk nil on stores whose throughput matters more than
// latency quantiles. Call before concurrent use.
func (s *Store) Instrument(clk clock.Clock, reg *telemetry.Registry) {
	s.mGets = reg.Counter("store_gets_total")
	s.mPuts = reg.Counter("store_puts_total")
	s.mCAS = reg.Counter("store_cas_total")
	s.mCASFail = reg.Counter("store_cas_failures_total")
	s.mDeletes = reg.Counter("store_deletes_total")
	s.mEvents = reg.Counter("store_watch_events_total")
	s.mDrops = reg.Counter("store_watch_drops_total")
	if clk != nil {
		s.clk = clk
		s.hGetSeconds = reg.Histogram("store_get_seconds")
		s.hPutSeconds = reg.Histogram("store_put_seconds")
		s.hCASSeconds = reg.Histogram("store_cas_seconds")
	}
}

// shardIndex routes a key to its shard with inline FNV-1a (hash/fnv's
// New32a allocates a hash.Hash32; the loop below does not).
//
//elan:hotpath
func shardIndex(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h & shardMask
}

// Get returns the entry for key. The value is a fresh copy the caller may
// mutate; the allocation-free variant is GetInto.
func (s *Store) Get(key string) (Entry, error) {
	var t0 time.Time
	if s.hGetSeconds != nil {
		t0 = s.clk.Now()
	}
	sh := &s.shards[shardIndex(key)]
	sh.mu.Lock()
	e, ok := sh.data[key]
	if !ok {
		sh.mu.Unlock()
		return Entry{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	out := Entry{Value: make([]byte, len(e.Value)), Version: e.Version}
	copy(out.Value, e.Value)
	sh.mu.Unlock()
	s.mGets.Inc()
	if s.hGetSeconds != nil {
		s.hGetSeconds.Observe(s.clk.Now().Sub(t0).Seconds())
	}
	return out, nil
}

// GetInto appends the value for key to dst and returns the extended slice
// with the entry's version. It performs no allocation when dst has
// capacity; a missing key returns the bare ErrNotFound sentinel (no
// wrapping, to stay allocation-free).
//
//elan:hotpath
func (s *Store) GetInto(key string, dst []byte) ([]byte, int64, error) {
	sh := &s.shards[shardIndex(key)]
	sh.mu.Lock()
	e, ok := sh.data[key]
	if !ok {
		sh.mu.Unlock()
		return dst, 0, ErrNotFound
	}
	dst = append(dst, e.Value...)
	ver := e.Version
	sh.mu.Unlock()
	s.mGets.Inc()
	return dst, ver, nil
}

// Put stores value under key unconditionally and returns the new version.
// Steady-state Put (existing key, value fits the entry's buffer, no
// watchers on the key) is allocation-free: the value is copied in place.
//
//elan:hotpath
func (s *Store) Put(key string, value []byte) int64 {
	var t0 time.Time
	if s.hPutSeconds != nil {
		t0 = s.clk.Now()
	}
	sh := &s.shards[shardIndex(key)]
	sh.mu.Lock()
	rev := s.putLocked(sh, key, value)
	watched := len(sh.watchers[key]) > 0
	if watched {
		s.enqueueLocked(sh, key, value, rev, false)
	}
	sh.mu.Unlock()
	if watched {
		s.signalWake()
	}
	s.mPuts.Inc()
	if s.hPutSeconds != nil {
		s.hPutSeconds.Observe(s.clk.Now().Sub(t0).Seconds())
	}
	return rev
}

// putLocked installs value under key, reusing the existing entry's buffer
// when it fits.
//
//elan:hotpath
func (s *Store) putLocked(sh *shard, key string, value []byte) int64 {
	rev := s.rev.Add(1)
	e, ok := sh.data[key]
	if ok && cap(e.Value) >= len(value) {
		e.Value = e.Value[:len(value)]
		copy(e.Value, value)
		e.Version = rev
		sh.data[key] = e
		return rev
	}
	s.putGrow(sh, key, value, rev)
	return rev
}

// putGrow is the cold path of putLocked: first write of a key, or a value
// larger than the entry's buffer. Called with the shard lock held.
func (s *Store) putGrow(sh *shard, key string, value []byte, rev int64) {
	v := make([]byte, len(value))
	copy(v, value)
	sh.data[key] = Entry{Value: v, Version: rev}
}

// CAS stores value under key only if the current version equals expected
// (use 0 for "key must not exist"). It returns the new version.
func (s *Store) CAS(key string, expected int64, value []byte) (int64, error) {
	var t0 time.Time
	if s.hCASSeconds != nil {
		t0 = s.clk.Now()
	}
	sh := &s.shards[shardIndex(key)]
	sh.mu.Lock()
	cur, ok := sh.data[key]
	curVersion := int64(0)
	if ok {
		curVersion = cur.Version
	}
	if curVersion != expected {
		sh.mu.Unlock()
		s.mCASFail.Inc()
		return 0, fmt.Errorf("%w: key %q at version %d, expected %d",
			ErrCASFailure, key, curVersion, expected)
	}
	rev := s.putLocked(sh, key, value)
	watched := len(sh.watchers[key]) > 0
	if watched {
		s.enqueueLocked(sh, key, value, rev, false)
	}
	sh.mu.Unlock()
	if watched {
		s.signalWake()
	}
	s.mCAS.Inc()
	if s.hCASSeconds != nil {
		s.hCASSeconds.Observe(s.clk.Now().Sub(t0).Seconds())
	}
	return rev, nil
}

// Delete removes key; deleting a missing key is an error.
func (s *Store) Delete(key string) error {
	sh := &s.shards[shardIndex(key)]
	sh.mu.Lock()
	if _, ok := sh.data[key]; !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	delete(sh.data, key)
	rev := s.rev.Add(1)
	watched := len(sh.watchers[key]) > 0
	if watched {
		s.enqueueLocked(sh, key, nil, rev, true)
	}
	sh.mu.Unlock()
	if watched {
		s.signalWake()
	}
	s.mDeletes.Inc()
	return nil
}

// enqueueLocked records a change event for a watched key on the shard's
// queue. The value is copied here — the entry's buffer may be overwritten
// in place by a later Put before the dispatcher runs. Called with the
// shard lock held; runs only when the key has watchers, so an unwatched
// Put never reaches it.
func (s *Store) enqueueLocked(sh *shard, key string, value []byte, rev int64, deleted bool) {
	ev := Event{Key: key, Version: rev, Deleted: deleted}
	if value != nil {
		ev.Value = append([]byte(nil), value...)
	}
	sh.queue = append(sh.queue, ev)
	s.mEvents.Inc()
}

// signalWake nudges the dispatcher (non-blocking; wake has capacity 1).
//
//elan:hotpath
func (s *Store) signalWake() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Watch subscribes to changes of key. The returned cancel function must be
// called to release the watcher; it closes the channel, so a consumer
// ranging over it terminates, and is idempotent. Events are delivered
// asynchronously by the dispatcher on a buffered channel; a slow consumer
// loses the oldest events (the channel is a conflating buffer of size 16),
// which is acceptable because consumers re-read the current state with Get
// after waking. Each event carries its own copy of the value, so watchers
// may mutate it freely.
func (s *Store) Watch(key string) (<-chan Event, func()) {
	ch := make(chan Event, watchBuf)
	sh := &s.shards[shardIndex(key)]
	// Start the dispatcher before registering: once the channel is in the
	// watcher map, mutations enqueue events and expect a drain.
	s.retainDispatcher()
	sh.mu.Lock()
	sh.watchers[key] = append(sh.watchers[key], ch)
	sh.mu.Unlock()
	cancel := func() {
		removed := false
		sh.mu.Lock()
		ws := sh.watchers[key]
		for i, w := range ws {
			if w == ch {
				sh.watchers[key] = append(ws[:i], ws[i+1:]...)
				if len(sh.watchers[key]) == 0 {
					delete(sh.watchers, key)
				}
				// Closing under the shard lock makes cancel idempotent
				// (the second call no longer finds ch) and cannot race the
				// dispatcher, which only sends to registered channels
				// under the same lock.
				close(ch)
				removed = true
				break
			}
		}
		sh.mu.Unlock()
		if removed {
			s.releaseDispatcher()
		}
	}
	return ch, cancel
}

// retainDispatcher bumps the watcher refcount, starting the dispatcher
// generation on 0→1.
func (s *Store) retainDispatcher() {
	s.dmu.Lock()
	s.nwatch++
	if s.nwatch == 1 {
		s.quit = make(chan struct{})
		s.done = make(chan struct{})
		go s.dispatch(s.quit, s.done)
	}
	s.dmu.Unlock()
}

// releaseDispatcher drops the refcount; on 1→0 it stops the dispatcher
// goroutine (waiting for it to exit outside dmu, so tests' goroutine-leak
// guards see a clean heap without blocking under the lifecycle lock) and
// clears any queued events, which have no audience. If a new generation
// started while we waited, the clearing is skipped — the new dispatcher
// owns the queues.
func (s *Store) releaseDispatcher() {
	s.dmu.Lock()
	s.nwatch--
	var wait chan struct{}
	if s.nwatch == 0 {
		close(s.quit)
		wait = s.done
		s.quit, s.done = nil, nil
	}
	s.dmu.Unlock()
	if wait == nil {
		return
	}
	<-wait
	s.dmu.Lock()
	if s.nwatch == 0 {
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			sh.queue = nil
			sh.mu.Unlock()
		}
	}
	s.dmu.Unlock()
}

// dispatch is the central fan-out goroutine: woken after an enqueue, it
// sweeps every shard queue and delivers to that key's watchers. Total work
// per sweep is O(sum over changed keys of their watcher counts) — idle
// watchers on unchanged keys are never visited.
func (s *Store) dispatch(quit, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-quit:
			return
		case <-s.wake:
			for i := range s.shards {
				sh := &s.shards[i]
				sh.mu.Lock()
				if len(sh.queue) > 0 {
					s.deliverLocked(sh)
				}
				sh.mu.Unlock()
			}
		}
	}
}

// deliverLocked drains one shard's event queue to the current watchers of
// each changed key. Called with the shard lock held (by the dispatcher),
// which excludes cancel's close-under-lock — a send can never hit a closed
// channel. Sends conflate: a full buffer drops its oldest event to admit
// the newest.
func (s *Store) deliverLocked(sh *shard) {
	for i := range sh.queue {
		ev := sh.queue[i]
		sh.queue[i] = Event{} // release the value buffer to the GC
		for _, ch := range sh.watchers[ev.Key] {
			s.deliveries.Add(1)
			// Each watcher gets a private copy of the value; aliasing one
			// slice across watchers lets a mutating consumer corrupt a
			// sibling's view.
			evCopy := ev
			if ev.Value != nil {
				evCopy.Value = append([]byte(nil), ev.Value...)
			}
			select {
			case ch <- evCopy:
			default:
				// Drop oldest, then insert: keeps the newest event visible.
				s.mDrops.Inc()
				select {
				case <-ch:
				default:
				}
				select {
				case ch <- evCopy:
				default:
				}
			}
		}
	}
	sh.queue = sh.queue[:0]
}

// WatchWork returns the cumulative count of per-watcher delivery attempts
// — the observable for the O(changed-keys) contract: mutations on
// unwatched keys must not advance it no matter how many watchers idle on
// other keys.
func (s *Store) WatchWork() int64 { return s.deliveries.Load() }

// Snapshot returns a point-in-time consistent copy of the requested keys
// (of every key, when none are named) together with the store revision at
// that instant. It locks all shards in index order, so no mutation — each
// of which holds exactly one shard lock — can interleave: the returned map
// is a true cut of the keyspace, not a per-key racy read.
func (s *Store) Snapshot(keys ...string) (map[string]Entry, int64) {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	out := make(map[string]Entry)
	if len(keys) == 0 {
		for i := range s.shards {
			for k, e := range s.shards[i].data {
				out[k] = copyEntry(e)
			}
		}
	} else {
		for _, k := range keys {
			if e, ok := s.shards[shardIndex(k)].data[k]; ok {
				out[k] = copyEntry(e)
			}
		}
	}
	rev := s.rev.Load()
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
	return out, rev
}

func copyEntry(e Entry) Entry {
	v := make([]byte, len(e.Value))
	copy(v, e.Value)
	return Entry{Value: v, Version: e.Version}
}

// Rev returns the current global revision.
func (s *Store) Rev() int64 { return s.rev.Load() }

// Keys returns all keys currently present, sorted (for inspection and
// tests).
func (s *Store) Keys() []string {
	out := []string{}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.data {
			out = append(out, k)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}
