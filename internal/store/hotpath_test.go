package store

import (
	"testing"

	"github.com/elan-sys/elan/internal/racecheck"
)

// TestStorePutSteadyStateZeroAllocs pins the sharded store's write fast
// path: once a key exists and the incoming value fits its buffer, Put
// copies in place — no fresh value buffer, no event (the key is
// unwatched), no instrument overhead (nil counters are no-ops).
func TestStorePutSteadyStateZeroAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates; alloc guards run in the non-race CI job")
	}
	s := New()
	val := make([]byte, 1024)
	s.Put("am/state", val) // cold first write allocates the entry buffer
	if avg := testing.AllocsPerRun(1000, func() {
		s.Put("am/state", val)
	}); avg != 0 {
		t.Fatalf("%v allocs per steady-state Put, want 0", avg)
	}
}

// TestStoreGetIntoZeroAllocs pins the read fast path: GetInto appends into
// the caller's buffer and wraps no error, so a warm read allocates
// nothing.
func TestStoreGetIntoZeroAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates; alloc guards run in the non-race CI job")
	}
	s := New()
	s.Put("am/state", make([]byte, 1024))
	dst := make([]byte, 0, 2048)
	if avg := testing.AllocsPerRun(1000, func() {
		dst = dst[:0]
		var err error
		dst, _, err = s.GetInto("am/state", dst)
		if err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("%v allocs per GetInto, want 0", avg)
	}
}

// TestStoreGetIntoMissZeroAllocs: the not-found path returns the bare
// sentinel, so even misses stay allocation-free.
func TestStoreGetIntoMissZeroAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates; alloc guards run in the non-race CI job")
	}
	s := New()
	dst := make([]byte, 0, 16)
	if avg := testing.AllocsPerRun(1000, func() {
		dst, _, _ = s.GetInto("missing", dst)
	}); avg != 0 {
		t.Fatalf("%v allocs per GetInto miss, want 0", avg)
	}
}
