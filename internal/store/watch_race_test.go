package store

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWatchStormRace is the satellite coverage for watchers under -race:
// 1000 concurrent watchers over 100 keys with interleaved Put/Delete
// traffic and mid-flight cancellations (some deliberately doubled from two
// goroutines at once). It asserts
//
//   - no lost latest: after quiescence, every surviving watcher has seen
//     the sentinel final write of its key (conflation may eat
//     intermediate events, never the newest);
//   - idempotent cancel: concurrent duplicate cancels neither panic nor
//     strand consumers;
//   - goroutine hygiene: consumers and the store dispatcher are all gone
//     once every watch is cancelled.
func TestWatchStormRace(t *testing.T) {
	before := runtime.NumGoroutine()
	defer func() {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	const (
		nKeys     = 100
		nWatchers = 1000
		nCancel   = 400 // cancelled mid-storm, each from two goroutines
	)
	s := New()
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("job/%d", i)
	}

	type watcher struct {
		key    string
		cancel func()
		last   atomic.Int64 // newest version seen
		done   chan struct{}
	}
	watchers := make([]*watcher, nWatchers)
	for i := range watchers {
		w := &watcher{key: keys[i%nKeys], done: make(chan struct{})}
		ch, cancel := s.Watch(w.key)
		w.cancel = cancel
		watchers[i] = w
		go func() {
			defer close(w.done)
			for ev := range ch {
				if ev.Version > w.last.Load() {
					w.last.Store(ev.Version)
				}
			}
		}()
	}

	// Mutator storm: Puts with interleaved Deletes (every delete is
	// followed by a re-Put so the final sentinel write below always
	// lands on a live key).
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[rng.Intn(nKeys)]
				if rng.Intn(8) == 0 {
					_ = s.Delete(k) // may miss; fine
				}
				s.Put(k, []byte{byte(rng.Intn(256))})
			}
		}(int64(g) + 1)
	}

	// Mid-storm cancellations, each fired twice concurrently.
	var cwg sync.WaitGroup
	for i := 0; i < nCancel; i++ {
		w := watchers[i]
		for dup := 0; dup < 2; dup++ {
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				w.cancel()
			}()
		}
	}
	cwg.Wait()
	close(stop)
	wg.Wait()

	// Quiesce: one sentinel write per key, then require every surviving
	// watcher to observe at least that version.
	sentinel := make(map[string]int64, nKeys)
	for _, k := range keys {
		sentinel[k] = s.Put(k, []byte("final"))
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, w := range watchers[nCancel:] {
		for w.last.Load() < sentinel[w.key] {
			if time.Now().After(deadline) {
				t.Fatalf("watcher on %s stuck at version %d, sentinel %d (lost latest)",
					w.key, w.last.Load(), sentinel[w.key])
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Tear down; every consumer loop must terminate.
	for _, w := range watchers {
		w.cancel()
	}
	for _, w := range watchers {
		select {
		case <-w.done:
		case <-time.After(5 * time.Second):
			t.Fatalf("consumer for %s never exited after cancel", w.key)
		}
	}
}
