package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/telemetry"
)

func TestGetInto(t *testing.T) {
	s := New()
	dst := make([]byte, 0, 16)
	if _, _, err := s.GetInto("missing", dst); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetInto missing = %v", err)
	}
	v := s.Put("k", []byte("abc"))
	out, ver, err := s.GetInto("k", dst)
	if err != nil || string(out) != "abc" || ver != v {
		t.Fatalf("GetInto = %q, %d, %v", out, ver, err)
	}
	// Appends after existing content.
	out2, _, err := s.GetInto("k", []byte("x"))
	if err != nil || string(out2) != "xabc" {
		t.Fatalf("GetInto append = %q, %v", out2, err)
	}
}

// TestSnapshotIsolation drives a single writer that alternates Puts on two
// keys living in different shards; because Snapshot holds every shard lock
// at once, any cut it returns must be a prefix of the write sequence — the
// first key's counter may lead the second's by at most one round. A racy
// per-key read loop can observe the second key ahead of the first; the
// snapshot never may.
func TestSnapshotIsolation(t *testing.T) {
	s := New()
	enc := func(i uint64) []byte {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, i)
		return b
	}
	dec := func(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Put("pair/x", enc(i))
			s.Put("pair/y", enc(i))
		}
	}()
	defer func() { close(stop); <-done }()

	for n := 0; n < 2000; n++ {
		snap, rev := s.Snapshot("pair/x", "pair/y")
		ex, okx := snap["pair/x"]
		ey, oky := snap["pair/y"]
		if !okx && !oky {
			continue // before the first write
		}
		if okx != oky && oky {
			t.Fatalf("snapshot saw y without x: %+v", snap)
		}
		if !oky {
			continue // cut between the very first x and y
		}
		ix, iy := dec(ex.Value), dec(ey.Value)
		if ix != iy && ix != iy+1 {
			t.Fatalf("snapshot not a prefix cut: x=%d y=%d", ix, iy)
		}
		if ex.Version > rev || ey.Version > rev {
			t.Fatalf("entry version beyond snapshot revision %d: %+v", rev, snap)
		}
	}
}

func TestSnapshotAllKeys(t *testing.T) {
	s := New()
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	snap, rev := s.Snapshot()
	if len(snap) != 2 || string(snap["a"].Value) != "1" || string(snap["b"].Value) != "2" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if rev != s.Rev() || rev < 2 {
		t.Fatalf("rev = %d", rev)
	}
	// The snapshot is a copy, not a view.
	snap["a"].Value[0] = 'X'
	e, _ := s.Get("a")
	if string(e.Value) != "1" {
		t.Fatal("snapshot aliased internal storage")
	}
}

// TestUnrelatedPutCostsNoWatchWork is the O(changed-keys) fan-out proof:
// with 10k watchers idling on other keys, a storm of Puts on an unwatched
// key performs zero per-watcher deliveries.
func TestUnrelatedPutCostsNoWatchWork(t *testing.T) {
	s := New()
	const idle = 10000
	cancels := make([]func(), 0, idle)
	for i := 0; i < idle; i++ {
		_, cancel := s.Watch(fmt.Sprintf("idle/%d", i))
		cancels = append(cancels, cancel)
	}
	base := s.WatchWork()
	for i := 0; i < 1000; i++ {
		s.Put("hot", []byte("v"))
	}
	if got := s.WatchWork(); got != base {
		t.Fatalf("unrelated Puts performed %d per-watcher deliveries, want 0", got-base)
	}
	// Sanity: the counter does move when a watched key changes.
	ch, cancel := s.Watch("hot")
	s.Put("hot", []byte("w"))
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("watched key event not delivered")
	}
	if got := s.WatchWork(); got != base+1 {
		t.Fatalf("WatchWork = %d, want %d", got, base+1)
	}
	cancel()
	for _, c := range cancels {
		c()
	}
}

func TestInstrumentCounters(t *testing.T) {
	s := New()
	reg := telemetry.NewRegistry()
	s.Instrument(clock.Wall{}, reg)
	s.Put("k", []byte("a"))
	if _, err := s.Get("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CAS("k", 0, []byte("b")); !errors.Is(err, ErrCASFailure) {
		t.Fatalf("CAS stale = %v", err)
	}
	if _, err := s.CAS("c", 0, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("c"); err != nil {
		t.Fatal(err)
	}
	checks := map[string]int64{
		"store_puts_total":         1,
		"store_gets_total":         1,
		"store_cas_total":          1,
		"store_cas_failures_total": 1,
		"store_deletes_total":      1,
	}
	for name, want := range checks {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if reg.Histogram("store_put_seconds").Snapshot().Count == 0 {
		t.Error("store_put_seconds recorded no samples")
	}
}

func TestShardIndexSpread(t *testing.T) {
	// Sequentially named keys (the workload's worker/N pattern) must not
	// collapse onto a few shards.
	hit := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		hit[shardIndex(fmt.Sprintf("worker/%d", i))] = true
	}
	if len(hit) < numShards/2 {
		t.Fatalf("1000 keys hit only %d/%d shards", len(hit), numShards)
	}
}

func TestKeysSorted(t *testing.T) {
	s := New()
	s.Put("b", nil)
	s.Put("a", nil)
	s.Put("c", nil)
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("Keys = %v", keys)
	}
}
