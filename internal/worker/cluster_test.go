package worker

import (
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/telemetry"
	"github.com/elan-sys/elan/internal/topology"
)

// smallCluster builds a 2-node × 2-GPU simulated cluster (4 GPUs): a
// 4-worker fleet spans both nodes (hierarchical group, L4 label) while 3 or
// fewer workers pack onto fewer links.
func smallCluster(t *testing.T) *topology.Cluster {
	t.Helper()
	geom := topology.DefaultGeometry()
	geom.Nodes, geom.SocketsPerNode, geom.SwitchesPerSock, geom.GPUsPerSwitch = 2, 1, 1, 2
	c, err := topology.NewCluster(geom)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

// TestFleetOnClusterHierarchical trains a fleet whose collective group is
// placed on a simulated two-node cluster with gradient bucketing enabled:
// the allreduce spans must carry the placement-derived L4 link label and
// bucket indices, training must keep the replica invariant, and Close must
// return the GPU reservation.
func TestFleetOnClusterHierarchical(t *testing.T) {
	guardGoroutines(t)
	cl := smallCluster(t)
	rec := telemetry.NewRecorder(clock.Wall{}, 4096)
	f, err := NewFleet(FleetConfig{
		Dataset:     dataset(t, 1024),
		LayerSizes:  []int{4, 16, 3},
		Workers:     4,
		TotalBatch:  64,
		LR:          0.05,
		Momentum:    0.9,
		Seed:        21,
		Tracer:      rec,
		Cluster:     cl,
		BucketElems: 40,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	t.Cleanup(f.Close)
	if free := cl.NumFree(); free != 0 {
		t.Fatalf("%d GPUs free with 4 workers placed, want 0", free)
	}
	for i := 0; i < 10; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
	}
	if !f.ReplicasConsistent() {
		t.Fatal("replicas diverged on hierarchical group")
	}
	var reduces, bucketed int
	for _, sp := range rec.Snapshot() {
		if sp.Name != "collective.allreduce" {
			continue
		}
		reduces++
		link, ok := sp.Attr("link")
		if !ok || link != "L4" {
			t.Fatalf("allreduce span link = %q (ok=%v), want L4", link, ok)
		}
		if _, ok := sp.Attr("nodes"); !ok {
			t.Fatal("hierarchical allreduce span missing nodes attr")
		}
		if _, ok := sp.Attr("bucket"); ok {
			bucketed++
		}
	}
	if reduces == 0 {
		t.Fatal("no allreduce spans recorded")
	}
	if bucketed != reduces {
		t.Fatalf("%d of %d allreduce spans tagged with bucket index", bucketed, reduces)
	}
	f.Close()
	if free := cl.NumFree(); free != 4 {
		t.Fatalf("%d GPUs free after Close, want 4", free)
	}
}

// TestFleetClusterCrashRejoin drives the failure-mitigation loop on a
// cluster-placed fleet: crashing a worker shrinks the reservation at the
// next sweep, rejoining regrows it, and the group stays usable throughout —
// the hierarchical-group-reconstruction path of crash recovery.
func TestFleetClusterCrashRejoin(t *testing.T) {
	guardGoroutines(t)
	cl := smallCluster(t)
	f, err := NewFleet(FleetConfig{
		Dataset:     dataset(t, 1024),
		LayerSizes:  []int{4, 16, 3},
		Workers:     4,
		TotalBatch:  48,
		LR:          0.05,
		Momentum:    0.9,
		Seed:        21,
		Cluster:     cl,
		BucketElems: 25,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	t.Cleanup(f.Close)
	if _, err := f.Step(); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if err := f.CrashWorker("agent-2"); err != nil {
		t.Fatalf("CrashWorker: %v", err)
	}
	// The next step sweeps the dead rank out and rebuilds the group — and
	// with it the GPU reservation — for the 3 survivors.
	if _, err := f.Step(); err != nil {
		t.Fatalf("Step after crash: %v", err)
	}
	if free := cl.NumFree(); free != 1 {
		t.Fatalf("%d GPUs free after sweep, want 1", free)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := f.RejoinWorker("agent-2"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("RejoinWorker never succeeded")
		}
	}
	if free := cl.NumFree(); free != 0 {
		t.Fatalf("%d GPUs free after rejoin, want 0", free)
	}
	for i := 0; i < 5; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step after rejoin: %v", err)
		}
	}
	if !f.ReplicasConsistent() {
		t.Fatal("replicas diverged across crash/rejoin on cluster")
	}
}
