package worker

import (
	"errors"
	"testing"

	"github.com/elan-sys/elan/internal/checkpoint"
)

func checkpointFleet(t *testing.T, ds *checkpoint.DeltaStore) *Fleet {
	t.Helper()
	guardGoroutines(t)
	f, err := NewFleet(FleetConfig{
		Dataset:     dataset(t, 1024),
		LayerSizes:  []int{4, 16, 3},
		Workers:     2,
		TotalBatch:  24,
		LR:          0.05,
		Momentum:    0.9,
		Seed:        21,
		Checkpoints: ds,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	t.Cleanup(f.Close)
	return f
}

func exportState(t *testing.T, f *Fleet) []float64 {
	t.Helper()
	r := f.agents[0].send(command{kind: exportCmd})
	if r.err != nil {
		t.Fatalf("export: %v", r.err)
	}
	return r.state
}

// TestFleetCheckpointRestoreBitIdentical trains, saves, trains on, then
// restores: replicas, iteration and loader cursor must be exactly the
// checkpointed ones, and the restore must use the warm path (only the
// chunks of the post-save deltas are replayed — here zero, since nothing
// was committed after the save).
func TestFleetCheckpointRestoreBitIdentical(t *testing.T) {
	ds := checkpoint.NewDeltaStore(checkpoint.DeltaConfig{ChunkElems: 16, CompactEvery: 100})
	f := checkpointFleet(t, ds)
	for i := 0; i < 5; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st, err := f.SaveCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full || st.ChunksWritten == 0 {
		t.Fatalf("first save stats = %+v", st)
	}
	want := exportState(t, f)
	wantIter := f.Iteration()

	for i := 0; i < 4; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := f.RestoreCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Warm restore: the fleet's cached base is the committed state, so no
	// chunks needed replaying at all.
	if rs.ChunksReplayed != 0 {
		t.Fatalf("warm restore replayed %d chunks, want 0: %+v", rs.ChunksReplayed, rs)
	}
	if f.Iteration() != wantIter {
		t.Fatalf("iteration = %d, want %d", f.Iteration(), wantIter)
	}
	got := exportState(t, f)
	if len(got) != len(want) {
		t.Fatalf("state sizes %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("state[%d] = %v, want %v (not bit-identical)", i, got[i], want[i])
		}
	}
	if !f.ReplicasConsistent() {
		t.Fatal("replicas diverged after restore")
	}
	if _, err := f.Step(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetAMCrashMidDeltaSaveRecovers is the acceptance scenario: the AM
// dies between a delta save's chunk writes and its manifest commit. The
// successor incarnation recovers via CAS, restores from the manifest
// chain, and lands bit-identical on the last *committed* save — the torn
// one invisible.
func TestFleetAMCrashMidDeltaSaveRecovers(t *testing.T) {
	ds := checkpoint.NewDeltaStore(checkpoint.DeltaConfig{ChunkElems: 16, CompactEvery: 100})
	f := checkpointFleet(t, ds)
	for i := 0; i < 3; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	committed := exportState(t, f)
	committedIter := f.Iteration()

	// Train on, then crash mid-save: chunk writes land, no manifest.
	for i := 0; i < 2; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ds.InjectCrash(1)
	if _, err := f.SaveCheckpoint(); !errors.Is(err, checkpoint.ErrCrashInjected) {
		t.Fatalf("crash save = %v", err)
	}
	if _, err := f.CrashAM(); err != nil {
		t.Fatal(err)
	}
	if err := f.RecoverAM(); err != nil {
		t.Fatal(err)
	}
	rs, err := f.RestoreCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if f.Iteration() != committedIter {
		t.Fatalf("iteration = %d, want %d", f.Iteration(), committedIter)
	}
	got := exportState(t, f)
	for i := range committed {
		if got[i] != committed[i] {
			t.Fatalf("state[%d] = %v, want %v (torn save leaked)", i, got[i], committed[i])
		}
	}
	if rs.Seq == 0 {
		t.Fatalf("restore stats = %+v", rs)
	}
	// The fleet keeps training and the next save commits cleanly.
	if _, err := f.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetWarmRestoreReplaysOnlyDelta: saves bracket further training, so
// recovering to the newest commit from the older warm base replays only
// the chunks the optimizer touched in between — not the whole model.
func TestFleetWarmRestoreReplaysOnlyDelta(t *testing.T) {
	ds := checkpoint.NewDeltaStore(checkpoint.DeltaConfig{ChunkElems: 16, CompactEvery: 100})
	f := checkpointFleet(t, ds)
	if _, err := f.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Step(); err != nil {
		t.Fatal(err)
	}
	st, err := f.SaveCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := f.RestoreCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	// The warm base is the second save itself: zero replay. More
	// interesting: force the base back to the first save and confirm the
	// replay equals the second save's dirty set, not the full model.
	f.mu.Lock()
	f.ckptSeq = st.Seq - 1
	f.mu.Unlock()
	rs, err = f.RestoreCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Dense SGD moves every parameter each step, so the delta here spans
	// all chunks; what matters is that the warm replay equals exactly the
	// recorded dirty set of the chain tail (sparse workloads shrink it).
	if rs.ChunksReplayed != st.ChunksDirty {
		t.Fatalf("replayed %d chunks, want the delta's %d", rs.ChunksReplayed, st.ChunksDirty)
	}
}

func TestFleetCheckpointWithoutStore(t *testing.T) {
	f := fleet(t, 2, 24, nil)
	if _, err := f.SaveCheckpoint(); !errors.Is(err, ErrNoCheckpointStore) {
		t.Fatalf("SaveCheckpoint = %v", err)
	}
	if _, err := f.RestoreCheckpoint(); !errors.Is(err, ErrNoCheckpointStore) {
		t.Fatalf("RestoreCheckpoint = %v", err)
	}
}
