package worker

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"github.com/elan-sys/elan/internal/checkpoint"
)

// Fleet delta checkpointing (DESIGN §13): SaveCheckpoint exports the lead
// replica's state vector and hands it to the delta store, which persists
// only the chunks the optimizer moved since the previous save.
// RestoreCheckpoint is the crash-recovery inverse; it prefers the warm
// path — the fleet keeps the last committed state vector in memory, so
// after an AM crash (RecoverAM) only the manifest-chain tail since that
// commit is deserialized, keeping recovery work proportional to the delta
// rather than the model.

// fleetCkptHeader is the runtime (non-tensor) state riding in the
// manifest header.
type fleetCkptHeader struct {
	Iter   int
	TBS    int
	LR     float64
	Cursor int
}

// ErrNoCheckpointStore is returned by checkpoint calls on a fleet built
// without FleetConfig.Checkpoints.
var ErrNoCheckpointStore = errors.New("worker: fleet has no checkpoint store")

// SaveCheckpoint delta-saves the fleet's training state (lead replica's
// parameters and optimizer state, iteration, batch size, learning rate,
// loader cursor) into the configured checkpoint store.
func (f *Fleet) SaveCheckpoint() (checkpoint.SaveStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.Checkpoints == nil {
		return checkpoint.SaveStats{}, ErrNoCheckpointStore
	}
	var src *Agent
	for _, a := range f.agents {
		if a.alive() {
			src = a
			break
		}
	}
	if src == nil {
		return checkpoint.SaveStats{}, fmt.Errorf("worker: no live agent to checkpoint from")
	}
	r := src.send(command{kind: exportCmd})
	if r.err != nil {
		return checkpoint.SaveStats{}, fmt.Errorf("worker: checkpoint export: %w", r.err)
	}
	var buf bytes.Buffer
	h := fleetCkptHeader{Iter: f.iter, TBS: f.cfg.TotalBatch, LR: f.currentLR(), Cursor: f.loader.Cursor()}
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		return checkpoint.SaveStats{}, fmt.Errorf("worker: encode checkpoint header: %w", err)
	}
	stats, err := f.cfg.Checkpoints.Save(f.ckptName, buf.Bytes(), r.state)
	if err != nil {
		// A failed save (e.g. a crash injected between chunk writes and
		// the manifest commit) leaves the previous chain — and our warm
		// cache of it — authoritative.
		return stats, err
	}
	f.ckptState = append(f.ckptState[:0], r.state...)
	f.ckptSeq = stats.Seq
	f.lifeSpan.Event("checkpoint-save")
	f.flight.RecordEvent("fleet-ckpt", "save", f.clk.Now())
	return stats, nil
}

// RestoreCheckpoint installs the last committed checkpoint into every live
// agent and restores the runtime state. When the warm base (the state as
// of the fleet's own last committed save) is available, only the chunks
// committed after it are deserialized; a fleet that has never saved — or
// whose model shape changed — falls back to replaying the full chain.
func (f *Fleet) RestoreCheckpoint() (checkpoint.RestoreStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.Checkpoints == nil {
		return checkpoint.RestoreStats{}, ErrNoCheckpointStore
	}
	ds := f.cfg.Checkpoints
	var (
		hdrB  []byte
		state []float64
		stats checkpoint.RestoreStats
		err   error
	)
	if f.ckptState != nil {
		hdrB, stats, err = ds.RestoreFrom(f.ckptName, f.ckptState, f.ckptSeq)
		if err == nil {
			state = f.ckptState
		} else if !errors.Is(err, checkpoint.ErrStateSize) {
			return checkpoint.RestoreStats{}, err
		}
	}
	if state == nil {
		hdrB, state, stats, err = ds.Restore(f.ckptName)
		if err != nil {
			return checkpoint.RestoreStats{}, err
		}
		f.ckptState = append(f.ckptState[:0], state...)
	}
	f.ckptSeq = stats.Seq

	var h fleetCkptHeader
	if err := gob.NewDecoder(bytes.NewReader(hdrB)).Decode(&h); err != nil {
		return checkpoint.RestoreStats{}, fmt.Errorf("worker: decode checkpoint header: %w", err)
	}
	for _, a := range f.agents {
		if !a.alive() {
			continue
		}
		if r := a.send(command{kind: installCmd, state: state}); r.err != nil {
			return checkpoint.RestoreStats{}, fmt.Errorf("worker: install checkpoint into %s: %w", a.Name, r.err)
		}
	}
	f.iter = h.Iter
	f.lr = h.LR
	f.lrRampLen = 0
	if err := f.loader.SetCursor(h.Cursor); err != nil {
		return checkpoint.RestoreStats{}, fmt.Errorf("worker: restore cursor: %w", err)
	}
	// The batch size is restored only when the surviving worker count can
	// shard it; otherwise the current (adjusted) batch stays in force.
	if h.TBS > 0 && len(f.agents) > 0 && h.TBS%len(f.agents) == 0 {
		f.cfg.TotalBatch = h.TBS
	}
	f.lifeSpan.Event("checkpoint-restore")
	f.flight.RecordEvent("fleet-ckpt", "restore", f.clk.Now())
	return stats, nil
}

// CheckpointSeq returns the manifest seq of the fleet's last committed
// save (0 if none).
func (f *Fleet) CheckpointSeq() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ckptSeq
}
