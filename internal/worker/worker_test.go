package worker

import (
	"context"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/data"
	"github.com/elan-sys/elan/internal/transport"
)

// guardGoroutines fails the test if goroutines outlive Fleet.Close (and the
// rest of the cleanup stack). Register before creating fleets or buses.
func guardGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

func dataset(t *testing.T, n int) *data.Dataset {
	t.Helper()
	d, err := data.GenGaussianMixture(21, n, 4, 3)
	if err != nil {
		t.Fatalf("GenGaussianMixture: %v", err)
	}
	return d
}

func fleet(t *testing.T, workers, tbs int, bus *transport.Bus) *Fleet {
	t.Helper()
	guardGoroutines(t)
	f, err := NewFleet(FleetConfig{
		Dataset:    dataset(t, 1024),
		LayerSizes: []int{4, 16, 3},
		Workers:    workers,
		TotalBatch: tbs,
		LR:         0.05,
		Momentum:   0.9,
		Seed:       21,
		Bus:        bus,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	t.Cleanup(f.Close)
	return f
}

func TestNewFleetValidation(t *testing.T) {
	d := dataset(t, 128)
	cases := []FleetConfig{
		{Dataset: nil, LayerSizes: []int{4, 3}, Workers: 2, TotalBatch: 8, LR: 0.1},
		{Dataset: d, LayerSizes: []int{4, 3}, Workers: 0, TotalBatch: 8, LR: 0.1},
		{Dataset: d, LayerSizes: []int{4, 3}, Workers: 3, TotalBatch: 8, LR: 0.1},
	}
	for i, cfg := range cases {
		if _, err := NewFleet(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFleetTrains(t *testing.T) {
	f := fleet(t, 4, 64, nil)
	var first, last float64
	for i := 0; i < 100; i++ {
		loss, err := f.Step()
		if err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first*0.75 {
		t.Fatalf("loss barely moved: %v -> %v", first, last)
	}
	if !f.ReplicasConsistent() {
		t.Fatal("replicas diverged")
	}
	if f.Iteration() != 100 {
		t.Fatalf("Iteration = %d", f.Iteration())
	}
}

func TestFleetScaleOutViaProtocol(t *testing.T) {
	f := fleet(t, 2, 32, nil)
	for i := 0; i < 10; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if err := f.RequestScaleOut(2); err != nil {
		t.Fatalf("RequestScaleOut: %v", err)
	}
	// The new agents report over the bus asynchronously; keep training
	// until a coordination picks the adjustment up.
	deadline := time.Now().Add(5 * time.Second)
	for f.NumWorkers() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("adjustment never applied; workers = %d", f.NumWorkers())
		}
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if !f.ReplicasConsistent() {
		t.Fatal("replicas inconsistent after scale-out")
	}
	// Training continues at 4 workers.
	for i := 0; i < 10; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step after scale-out: %v", err)
		}
	}
	if !f.ReplicasConsistent() {
		t.Fatal("replicas diverged after scale-out training")
	}
}

func TestFleetScaleInViaProtocol(t *testing.T) {
	f := fleet(t, 4, 32, nil)
	for i := 0; i < 5; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if err := f.RequestScaleIn(2); err != nil {
		t.Fatalf("RequestScaleIn: %v", err)
	}
	// Scale-in is immediately Ready; the next step applies it.
	if _, err := f.Step(); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if f.NumWorkers() != 2 {
		t.Fatalf("workers = %d, want 2", f.NumWorkers())
	}
	for i := 0; i < 5; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step after scale-in: %v", err)
		}
	}
	if !f.ReplicasConsistent() {
		t.Fatal("replicas inconsistent after scale-in")
	}
}

func TestFleetScaleRequestsValidated(t *testing.T) {
	f := fleet(t, 2, 32, nil)
	if err := f.RequestScaleOut(0); err == nil {
		t.Fatal("zero scale-out accepted")
	}
	if err := f.RequestScaleOut(3); err == nil {
		t.Fatal("indivisible scale-out accepted") // 32 % 5 != 0
	}
	if err := f.RequestScaleIn(2); err == nil {
		t.Fatal("scale-in to zero accepted")
	}
	if err := f.RequestScaleIn(0); err == nil {
		t.Fatal("zero scale-in accepted")
	}
}

func TestFleetSurvivesLossyBus(t *testing.T) {
	guardGoroutines(t)
	// The lossy bus runs on virtual time: the resend protocol's ack
	// timeouts cost nothing in wall time.
	sim := clock.NewSim(time.Unix(0, 0))
	t.Cleanup(sim.AutoAdvance(0))
	cfg := transport.DefaultBusConfig()
	cfg.DropRate = 0.3
	cfg.Seed = 5
	cfg.AckTimeout = 4 * time.Millisecond
	cfg.MaxRetries = 100
	cfg.Clock = sim
	bus := transport.NewBus(cfg)
	t.Cleanup(bus.Close)
	f := fleet(t, 2, 32, bus)
	if err := f.RequestScaleOut(2); err != nil {
		t.Fatalf("RequestScaleOut under loss: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for f.NumWorkers() != 4 {
		if time.Now().After(deadline) {
			t.Fatal("adjustment lost on lossy bus")
		}
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if !f.ReplicasConsistent() {
		t.Fatal("replicas inconsistent")
	}
}

func TestFleetStartLifecycle(t *testing.T) {
	f := fleet(t, 2, 32, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := f.Start(ctx); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := f.Start(ctx); err == nil {
		t.Fatal("double Start accepted")
	}
	if _, err := f.Step(); err != nil {
		t.Fatalf("Step after Start: %v", err)
	}
	// Cancelling the parent context closes the fleet (asynchronously, via
	// context.AfterFunc).
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := f.Start(context.Background())
		if err != nil && strings.Contains(err.Error(), "closed") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never closed after ctx cancel; Start = %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	f.Close() // idempotent
}

func TestFleetLivenessDetectsSilentWorkers(t *testing.T) {
	guardGoroutines(t)
	// Everything — bus, heartbeats, monitor ticker — runs on one sim clock;
	// a 200ms TTL expires in microseconds of wall time.
	sim := clock.NewSim(time.Unix(0, 0))
	t.Cleanup(sim.AutoAdvance(0))
	f, err := NewFleet(FleetConfig{
		Dataset:         dataset(t, 256),
		LayerSizes:      []int{4, 8, 3},
		Workers:         2,
		TotalBatch:      16,
		LR:              0.05,
		Seed:            21,
		Clock:           sim,
		HeartbeatTTL:    200 * time.Millisecond,
		MonitorInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	t.Cleanup(f.Close)
	if err := f.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if got := f.DeadWorkers(); len(got) != 0 {
		t.Fatalf("fresh fleet has dead workers: %v", got)
	}
	// No Steps happen, so no heartbeats: the monitor must declare every
	// agent dead once virtual time passes the TTL.
	deadline := time.Now().Add(5 * time.Second)
	for len(f.DeadWorkers()) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("monitor never flagged silent workers; dead = %v", f.DeadWorkers())
		}
		time.Sleep(time.Millisecond)
	}
	dead := f.DeadWorkers()
	sort.Strings(dead)
	if dead[0] != "agent-0" || dead[1] != "agent-1" {
		t.Fatalf("dead = %v, want [agent-0 agent-1]", dead)
	}
}

func TestFleetEvaluate(t *testing.T) {
	f := fleet(t, 2, 32, nil)
	for i := 0; i < 60; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	_, acc, err := f.Evaluate(dataset(t, 512))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if acc < 0.5 {
		t.Fatalf("accuracy %.3f too low", acc)
	}
}

func TestFleetSetTotalBatchProgressive(t *testing.T) {
	f := fleet(t, 2, 32, nil)
	for i := 0; i < 5; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if err := f.SetTotalBatch(64, 10, true); err != nil {
		t.Fatalf("SetTotalBatch: %v", err)
	}
	for i := 0; i < 15; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step after batch change: %v", err)
		}
	}
	if !f.ReplicasConsistent() {
		t.Fatal("replicas inconsistent after batch change")
	}
	if err := f.SetTotalBatch(33, 10, true); err == nil {
		t.Fatal("indivisible batch accepted")
	}
}
