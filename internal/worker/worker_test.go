package worker

import (
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/data"
	"github.com/elan-sys/elan/internal/transport"
)

func dataset(t *testing.T, n int) *data.Dataset {
	t.Helper()
	d, err := data.GenGaussianMixture(21, n, 4, 3)
	if err != nil {
		t.Fatalf("GenGaussianMixture: %v", err)
	}
	return d
}

func fleet(t *testing.T, workers, tbs int, bus *transport.Bus) *Fleet {
	t.Helper()
	f, err := NewFleet(FleetConfig{
		Dataset:    dataset(t, 1024),
		LayerSizes: []int{4, 16, 3},
		Workers:    workers,
		TotalBatch: tbs,
		LR:         0.05,
		Momentum:   0.9,
		Seed:       21,
		Bus:        bus,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	t.Cleanup(f.Close)
	return f
}

func TestNewFleetValidation(t *testing.T) {
	d := dataset(t, 128)
	cases := []FleetConfig{
		{Dataset: nil, LayerSizes: []int{4, 3}, Workers: 2, TotalBatch: 8, LR: 0.1},
		{Dataset: d, LayerSizes: []int{4, 3}, Workers: 0, TotalBatch: 8, LR: 0.1},
		{Dataset: d, LayerSizes: []int{4, 3}, Workers: 3, TotalBatch: 8, LR: 0.1},
	}
	for i, cfg := range cases {
		if _, err := NewFleet(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFleetTrains(t *testing.T) {
	f := fleet(t, 4, 64, nil)
	var first, last float64
	for i := 0; i < 100; i++ {
		loss, err := f.Step()
		if err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first*0.75 {
		t.Fatalf("loss barely moved: %v -> %v", first, last)
	}
	if !f.ReplicasConsistent() {
		t.Fatal("replicas diverged")
	}
	if f.Iteration() != 100 {
		t.Fatalf("Iteration = %d", f.Iteration())
	}
}

func TestFleetScaleOutViaProtocol(t *testing.T) {
	f := fleet(t, 2, 32, nil)
	for i := 0; i < 10; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if err := f.RequestScaleOut(2); err != nil {
		t.Fatalf("RequestScaleOut: %v", err)
	}
	// The new agents report over the bus asynchronously; keep training
	// until a coordination picks the adjustment up.
	deadline := time.Now().Add(5 * time.Second)
	for f.NumWorkers() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("adjustment never applied; workers = %d", f.NumWorkers())
		}
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if !f.ReplicasConsistent() {
		t.Fatal("replicas inconsistent after scale-out")
	}
	// Training continues at 4 workers.
	for i := 0; i < 10; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step after scale-out: %v", err)
		}
	}
	if !f.ReplicasConsistent() {
		t.Fatal("replicas diverged after scale-out training")
	}
}

func TestFleetScaleInViaProtocol(t *testing.T) {
	f := fleet(t, 4, 32, nil)
	for i := 0; i < 5; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if err := f.RequestScaleIn(2); err != nil {
		t.Fatalf("RequestScaleIn: %v", err)
	}
	// Scale-in is immediately Ready; the next step applies it.
	if _, err := f.Step(); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if f.NumWorkers() != 2 {
		t.Fatalf("workers = %d, want 2", f.NumWorkers())
	}
	for i := 0; i < 5; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step after scale-in: %v", err)
		}
	}
	if !f.ReplicasConsistent() {
		t.Fatal("replicas inconsistent after scale-in")
	}
}

func TestFleetScaleRequestsValidated(t *testing.T) {
	f := fleet(t, 2, 32, nil)
	if err := f.RequestScaleOut(0); err == nil {
		t.Fatal("zero scale-out accepted")
	}
	if err := f.RequestScaleOut(3); err == nil {
		t.Fatal("indivisible scale-out accepted") // 32 % 5 != 0
	}
	if err := f.RequestScaleIn(2); err == nil {
		t.Fatal("scale-in to zero accepted")
	}
	if err := f.RequestScaleIn(0); err == nil {
		t.Fatal("zero scale-in accepted")
	}
}

func TestFleetSurvivesLossyBus(t *testing.T) {
	cfg := transport.DefaultBusConfig()
	cfg.DropRate = 0.3
	cfg.Seed = 5
	cfg.AckTimeout = 4 * time.Millisecond
	cfg.MaxRetries = 100
	bus := transport.NewBus(cfg)
	f := fleet(t, 2, 32, bus)
	if err := f.RequestScaleOut(2); err != nil {
		t.Fatalf("RequestScaleOut under loss: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for f.NumWorkers() != 4 {
		if time.Now().After(deadline) {
			t.Fatal("adjustment lost on lossy bus")
		}
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if !f.ReplicasConsistent() {
		t.Fatal("replicas inconsistent")
	}
}

func TestFleetEvaluate(t *testing.T) {
	f := fleet(t, 2, 32, nil)
	for i := 0; i < 60; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	_, acc, err := f.Evaluate(dataset(t, 512))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if acc < 0.5 {
		t.Fatalf("accuracy %.3f too low", acc)
	}
}

func TestFleetSetTotalBatchProgressive(t *testing.T) {
	f := fleet(t, 2, 32, nil)
	for i := 0; i < 5; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if err := f.SetTotalBatch(64, 10, true); err != nil {
		t.Fatalf("SetTotalBatch: %v", err)
	}
	for i := 0; i < 15; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step after batch change: %v", err)
		}
	}
	if !f.ReplicasConsistent() {
		t.Fatal("replicas inconsistent after batch change")
	}
	if err := f.SetTotalBatch(33, 10, true); err == nil {
		t.Fatal("indivisible batch accepted")
	}
}
