package worker

import (
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/telemetry"
)

// TestScaleOutCrossProcessTrace is the acceptance test for causal trace
// propagation: one RequestScaleOut renders as a single causally-linked span
// tree spanning the scheduler, the transport layer, the AM service, the two
// new agents' reports, the lead's apply, and the two state installs — and
// on a frozen sim clock every span of the tree carries the exact virtual
// timestamp (the epoch; the default bus is lossless with zero latency, so
// nothing ever sleeps).
func TestScaleOutCrossProcessTrace(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	sim := clock.NewSim(epoch)
	rec := telemetry.NewRecorder(sim, 0)
	guardGoroutines(t)
	f, err := NewFleet(FleetConfig{
		Dataset:    dataset(t, 1024),
		LayerSizes: []int{4, 16, 3},
		Workers:    2,
		TotalBatch: 24,
		LR:         0.05,
		Momentum:   0.9,
		Seed:       21,
		Clock:      sim,
		Tracer:     rec,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	t.Cleanup(f.Close)

	if err := f.RequestScaleOut(2); err != nil {
		t.Fatalf("RequestScaleOut: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.NumWorkers() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("adjustment never applied; workers = %d", f.NumWorkers())
		}
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}

	spans := rec.Snapshot()
	var root telemetry.SpanRecord
	for _, s := range spans {
		if s.Name == "worker.request_scale_out" {
			root = s
		}
	}
	if root.ID == 0 {
		t.Fatal("no worker.request_scale_out span recorded")
	}
	if root.Trace != root.ID || root.Parent != 0 || root.Proc != "fleet-sched" {
		t.Fatalf("request root = trace %d parent %d proc %q, want self-rooted on fleet-sched",
			root.Trace, root.Parent, root.Proc)
	}
	if v, _ := root.Attr("add"); v != "2" {
		t.Errorf("request add attr = %q, want 2", v)
	}

	// Collect the request's trace: the one tree the whole adjustment shares.
	tree := map[uint64]telemetry.SpanRecord{}
	byName := map[string][]telemetry.SpanRecord{}
	for _, s := range spans {
		if s.Trace == root.Trace {
			tree[s.ID] = s
			byName[s.Name] = append(byName[s.Name], s)
		}
	}

	// Every span of the tree happened at the frozen virtual instant.
	for _, s := range tree {
		if !s.Start.Equal(epoch) || !s.End.Equal(epoch) {
			t.Errorf("%s on %s at [%v, %v], want exactly the epoch", s.Name, s.Proc, s.Start, s.End)
		}
	}

	// The scheduler's adjust request crossed the bus: its transport.call is
	// a local child, the handler span is a remote child on the AM process,
	// and the AM's service span chains below that.
	var adjCall telemetry.SpanRecord
	for _, c := range byName["transport.call"] {
		if v, _ := c.Attr("kind"); v == "adjust.request" {
			adjCall = c
		}
	}
	if adjCall.ID == 0 || adjCall.Parent != root.ID || adjCall.Proc != "fleet-sched" {
		t.Fatalf("adjust transport.call = %+v, want child of request on fleet-sched", adjCall)
	}
	var adjHandle telemetry.SpanRecord
	for _, h := range byName["transport.handle"] {
		if h.Parent == adjCall.ID {
			adjHandle = h
		}
	}
	if adjHandle.ID == 0 || !adjHandle.Remote || adjHandle.Proc != "fleet-am" {
		t.Fatalf("adjust transport.handle = %+v, want remote child on fleet-am", adjHandle)
	}
	if len(byName["coord.adjust_request"]) != 1 {
		t.Fatalf("coord.adjust_request spans = %d, want 1", len(byName["coord.adjust_request"]))
	}
	if svc := byName["coord.adjust_request"][0]; svc.Parent != adjHandle.ID || svc.Proc != "fleet-am" {
		t.Fatalf("coord.adjust_request = %+v, want chained under the handler on fleet-am", svc)
	}

	// Both new agents' readiness reports are remote children of the request,
	// each on its own process track.
	reports := byName["worker.report_ready"]
	if len(reports) != 2 {
		t.Fatalf("worker.report_ready spans = %d, want 2", len(reports))
	}
	procs := map[string]bool{}
	for _, r := range reports {
		if r.Parent != root.ID || !r.Remote {
			t.Errorf("report %+v, want remote child of the request", r)
		}
		procs[r.Proc] = true
	}
	if !procs["agent-2"] || !procs["agent-3"] {
		t.Fatalf("report procs = %v, want agent-2 and agent-3", procs)
	}

	// The lead applied the adjustment as a remote child of the request (not
	// of its own step span), and each install ran on the joining agent.
	applies := byName["worker.apply_adjustment"]
	if len(applies) != 1 {
		t.Fatalf("worker.apply_adjustment spans = %d, want 1", len(applies))
	}
	apply := applies[0]
	if apply.Parent != root.ID || !apply.Remote || apply.Proc != "fleet-lead" {
		t.Fatalf("apply = %+v, want remote child of the request on fleet-lead", apply)
	}
	if v, _ := apply.Attr("kind"); v != "scale-out" {
		t.Errorf("apply kind attr = %q, want scale-out", v)
	}
	installs := byName["worker.install_state"]
	if len(installs) != 2 {
		t.Fatalf("worker.install_state spans = %d, want 2", len(installs))
	}
	iprocs := map[string]bool{}
	for _, in := range installs {
		if in.Parent != apply.ID || !in.Remote {
			t.Errorf("install %+v, want remote child of the apply", in)
		}
		iprocs[in.Proc] = true
	}
	if !iprocs["agent-2"] || !iprocs["agent-3"] {
		t.Fatalf("install procs = %v, want agent-2 and agent-3", iprocs)
	}

	// The tree really is cross-process: scheduler, AM, lead, and both new
	// workers all contributed spans to the one trace.
	allProcs := map[string]bool{}
	for _, s := range tree {
		allProcs[s.Proc] = true
	}
	for _, want := range []string{"fleet-sched", "fleet-am", "fleet-lead", "agent-2", "agent-3"} {
		if !allProcs[want] {
			t.Errorf("trace missing process %s (got %v)", want, allProcs)
		}
	}
}

// TestStepTraceFansOutToRanks: a traced Step produces per-rank remote
// children on each agent's process track, with the reducer's backward and
// allreduce spans joined to the same trace — the raw material of the
// per-step time attribution.
func TestStepTraceFansOutToRanks(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	sim := clock.NewSim(epoch)
	rec := telemetry.NewRecorder(sim, 0)
	guardGoroutines(t)
	f, err := NewFleet(FleetConfig{
		Dataset:    dataset(t, 1024),
		LayerSizes: []int{4, 16, 3},
		Workers:    2,
		TotalBatch: 24,
		LR:         0.05,
		Momentum:   0.9,
		Seed:       21,
		Clock:      sim,
		Tracer:     rec,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	t.Cleanup(f.Close)
	if _, err := f.Step(); err != nil {
		t.Fatalf("Step: %v", err)
	}

	spans := rec.Snapshot()
	var step telemetry.SpanRecord
	for _, s := range spans {
		if s.Name == "worker.step" {
			step = s
		}
	}
	if step.ID == 0 || step.Proc != "fleet-lead" {
		t.Fatalf("worker.step span = %+v", step)
	}
	count := map[string]int{}
	rankProcs := map[string]bool{}
	for _, s := range spans {
		if s.Trace != step.Trace {
			continue
		}
		count[s.Name]++
		if s.Name == "worker.rank_step" {
			rankProcs[s.Proc] = true
			if s.Parent != step.ID || !s.Remote {
				t.Errorf("rank step %+v, want remote child of the step", s)
			}
			if !s.Start.Equal(epoch) || !s.End.Equal(epoch) {
				t.Errorf("rank step at [%v, %v], want the epoch", s.Start, s.End)
			}
		}
	}
	for name, want := range map[string]int{
		"worker.rank_step":     2,
		"worker.forward":       2,
		"worker.optimize":      2,
		"ddp.backward":         2,
		"collective.allreduce": 2,
	} {
		if count[name] != want {
			t.Errorf("%s spans in step trace = %d, want %d", name, count[name], want)
		}
	}
	if !rankProcs["agent-0"] || !rankProcs["agent-1"] {
		t.Errorf("rank step procs = %v, want agent-0 and agent-1", rankProcs)
	}

	// The step trace feeds attribution directly.
	a := telemetry.Attribute(spans)
	if len(a.RankSteps) != 2 {
		t.Fatalf("attribution rank steps = %d, want 2", len(a.RankSteps))
	}
}
