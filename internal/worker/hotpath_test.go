package worker

import (
	"testing"

	"github.com/elan-sys/elan/internal/collective"
	"github.com/elan-sys/elan/internal/data"
	"github.com/elan-sys/elan/internal/racecheck"
)

// TestAgentStepZeroAllocs is the tentpole proof at the worker layer: once
// the agent's batch buffers, network workspaces and flat gradient vector
// are warm, a full training step — batch materialization, forward, loss,
// backward, allreduce, optimizer — allocates nothing. The step body is
// driven directly (the agent loop is idle), excluding only the mailbox
// round-trip; a single-rank group makes the allreduce a no-op so the
// collective transport is measured separately in its own package.
func TestAgentStepZeroAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates; alloc guards run in the non-race CI job")
	}
	ds, err := data.GenGaussianMixture(1, 512, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := newAgent("bench-0", 1, []int{8, 32, 32, 3}, 0.05, 0.9, 0, ds)
	if err != nil {
		t.Fatal(err)
	}
	defer a.stop()
	g, err := collective.NewGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	cmd := command{kind: stepCmd, rank: 0, n: 1, lo: 0, hi: 32, lr: 0.05, group: g}
	if r := a.step(ds, cmd); r.err != nil { // warm the workspaces
		t.Fatal(r.err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if r := a.step(ds, cmd); r.err != nil {
			t.Fatal(r.err)
		}
	}); avg != 0 {
		t.Fatalf("%v allocs per agent step, want 0", avg)
	}
}

// TestAgentStepRejectsEmptyShard covers the guard that protects the reused
// batch buffers from degenerate shard ranges.
func TestAgentStepRejectsEmptyShard(t *testing.T) {
	ds, err := data.GenGaussianMixture(1, 64, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := newAgent("bench-1", 1, []int{4, 8, 2}, 0.05, 0.9, 0, ds)
	if err != nil {
		t.Fatal(err)
	}
	defer a.stop()
	g, err := collective.NewGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if r := a.step(ds, command{kind: stepCmd, rank: 0, n: 1, lo: 5, hi: 5, lr: 0.1, group: g}); r.err == nil {
		t.Fatal("empty shard accepted")
	}
	if r := a.step(ds, command{kind: stepCmd, rank: 0, n: 1, lo: 9, hi: 5, lr: 0.1, group: g}); r.err == nil {
		t.Fatal("inverted shard accepted")
	}
}
