// Package worker implements the Elan worker-agent architecture as a fleet
// of persistent goroutines: each agent owns its model replica and optimizer
// and runs a long-lived loop processing commands (train one iteration,
// install replicated state, leave). A controller drives the paper's
// coordination protocol over the message bus — one agent acts as the
// coordinator calling the AM's Coordinate API between iterations — and
// applies adjustments without ever stopping the existing agents: new agents
// are spawned and report asynchronously, state flows to them via the
// replication hooks, and the collective group is rebuilt in place.
//
// Compared to core.LiveJob (which fans out fresh goroutines per step), the
// fleet mirrors a real deployment: workers are resident processes with
// mailboxes, and all control traffic crosses the transport layer.
package worker

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/elan-sys/elan/internal/checkpoint"
	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/collective"
	"github.com/elan-sys/elan/internal/coord"
	"github.com/elan-sys/elan/internal/data"
	"github.com/elan-sys/elan/internal/ddp"
	"github.com/elan-sys/elan/internal/nn"
	"github.com/elan-sys/elan/internal/store"
	"github.com/elan-sys/elan/internal/telemetry"
	"github.com/elan-sys/elan/internal/tensor"
	"github.com/elan-sys/elan/internal/topology"
	"github.com/elan-sys/elan/internal/transport"
)

// Liveness-monitoring defaults (overridable via FleetConfig).
const (
	// DefaultHeartbeatTTL is how long an agent may go without completing
	// a step before the monitor reports it dead.
	DefaultHeartbeatTTL = 500 * time.Millisecond
	// DefaultMonitorInterval is how often the liveness monitor checks.
	DefaultMonitorInterval = 50 * time.Millisecond
)

// command is one mailbox message to an agent.
type command struct {
	kind  cmdKind
	rank  int // rank for this iteration (stepCmd)
	n     int // group size (stepCmd)
	lo    int // shard range (stepCmd)
	hi    int
	iter  int // fleet iteration (stepCmd, trace annotation)
	lr    float64
	group *collective.Group
	state []float64 // installCmd payload
	// tr/trace make the agent's spans remote children of the fleet span
	// that issued the command. Both zero on untraced paths: StartRemote on
	// a nil tracer returns a nil span, so the hot path stays free.
	tr    telemetry.Tracer
	trace telemetry.TraceContext
	reply chan result
}

type cmdKind int

const (
	stepCmd cmdKind = iota + 1
	installCmd
	exportCmd
	stopCmd
)

type result struct {
	loss  float64
	state []float64
	err   error
}

// errAgentDead is returned by send when the target agent was crashed.
var errAgentDead = errors.New("worker: agent crashed")

// Agent is one resident worker.
type Agent struct {
	Name string
	net  *nn.MLP
	opt  *nn.SGD
	box  chan command
	done chan struct{}
	// killed is closed by kill() to simulate an abrupt crash: the loop
	// exits without draining its mailbox and pending sends fail with
	// errAgentDead instead of blocking.
	killed   chan struct{}
	killOnce sync.Once

	// Step workspace, reused across iterations so the steady-state step
	// performs no heap allocations: the bucketed gradient reducer (which
	// owns the flat gradient vector) and the materialized batch. All are
	// touched only by the agent goroutine.
	red    *ddp.Reducer
	batchX *tensor.Matrix
	batchY []int
}

// newAgent builds an agent with a deterministic replica and starts its
// loop. All agents share the construction seed, so initial replicas are
// identical; joining agents are overwritten by replication anyway.
func newAgent(name string, seed int64, sizes []int, lr, momentum float64, bucketElems int, ds *data.Dataset) (*Agent, error) {
	net, err := nn.NewMLP(rand.New(rand.NewSource(seed)), sizes)
	if err != nil {
		return nil, err
	}
	opt, err := nn.NewSGD(net.Params(), lr, momentum)
	if err != nil {
		return nil, err
	}
	a := &Agent{
		Name:   name,
		net:    net,
		opt:    opt,
		red:    ddp.New(net, ddp.Config{BucketElems: bucketElems}),
		box:    make(chan command),
		done:   make(chan struct{}),
		killed: make(chan struct{}),
	}
	go a.loop(ds)
	return a, nil
}

// loop is the agent's resident goroutine.
func (a *Agent) loop(ds *data.Dataset) {
	defer close(a.done)
	// The reducer's comm goroutine dies with the agent — on stop and on
	// simulated crash alike — so group reconstruction never inherits one.
	defer a.red.Close()
	for {
		select {
		case <-a.killed:
			return
		case cmd := <-a.box:
			switch cmd.kind {
			case stepCmd:
				cmd.reply <- a.step(ds, cmd)
			case installCmd:
				span := telemetry.StartRemote(cmd.tr, "worker.install_state", cmd.trace)
				span.SetProc(a.Name)
				r := result{err: a.install(cmd.state)}
				if r.err != nil {
					span.Annotate("error", r.err.Error())
				}
				span.End()
				cmd.reply <- r
			case exportCmd:
				state := a.net.FlattenParams(nil)
				state = a.opt.FlattenState(state)
				cmd.reply <- result{state: state}
			case stopCmd:
				cmd.reply <- result{}
				return
			}
		}
	}
}

// step runs one data-parallel iteration: local forward on the shard, then
// the shared ddp reducer runs backward with bucketed, overlap-scheduled
// gradient averaging, then the optimizer update. Everything it touches
// after warm-up is agent-owned and reused — the batch buffers, the network
// workspaces, and the reducer's flat gradient vector — so a steady-state
// step allocates nothing.
//
//elan:hotpath
func (a *Agent) step(ds *data.Dataset, cmd command) (res result) {
	// The rank-step span is a remote child of the fleet's step span; its
	// forward/optimize children plus the reducer's backward and allreduce
	// spans are what the step-time attribution folds into phases. With no
	// tracer in cmd every span below is nil and the path allocates nothing.
	span := telemetry.StartRemote(cmd.tr, "worker.rank_step", cmd.trace)
	span.SetProc(a.Name)
	span.AnnotateInt("rank", cmd.rank)
	span.AnnotateInt("iter", cmd.iter)
	defer func() { //elan:vet-allow hotpathalloc — non-escaping deferred closure stays on the stack, proven by TestAgentStepZeroAllocs
		if res.err != nil {
			span.Annotate("error", res.err.Error())
		}
		span.End()
	}()
	n := cmd.hi - cmd.lo
	if n <= 0 {
		return result{err: fmt.Errorf("worker: empty shard [%d, %d)", cmd.lo, cmd.hi)} //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
	}
	if a.batchX == nil || a.batchX.Rows != n {
		a.batchX = tensor.MustNew(n, ds.Features)
		a.batchY = make([]int, n) //elan:vet-allow hotpathalloc — batch workspace priming on first step or shard-width change
	}
	fspan := span.Child("worker.forward")
	if err := ds.BatchInto(a.batchX, a.batchY, cmd.lo, cmd.hi); err != nil {
		fspan.End()
		return result{err: err}
	}
	a.net.ZeroGrads()
	out, err := a.net.Forward(a.batchX)
	if err != nil {
		fspan.End()
		return result{err: err}
	}
	loss, grad, err := a.net.SoftmaxLoss(out, a.batchY)
	fspan.End()
	if err != nil {
		return result{err: err}
	}
	if err := a.red.BackwardAllReduceTraced(cmd.group, cmd.rank, grad, span.Context()); err != nil {
		return result{err: err}
	}
	ospan := span.Child("worker.optimize")
	a.opt.LR = cmd.lr
	err = a.opt.Step(a.net.Params(), a.net.Grads())
	ospan.End()
	if err != nil {
		return result{err: err}
	}
	return result{loss: loss}
}

// install overwrites the replica with replicated state.
func (a *Agent) install(state []float64) error {
	n := a.net.NumParams()
	if len(state) != n+a.opt.StateElements() {
		return fmt.Errorf("worker: state of %d values, want %d", len(state), n+a.opt.StateElements())
	}
	if err := a.net.LoadParams(state[:n]); err != nil {
		return err
	}
	return a.opt.LoadState(state[n:])
}

// send issues a command and waits for the result. Sends to a crashed agent
// fail with errAgentDead instead of blocking forever.
func (a *Agent) send(cmd command) result {
	cmd.reply = make(chan result, 1)
	select {
	case a.box <- cmd:
	case <-a.killed:
		return result{err: errAgentDead}
	}
	select {
	case r := <-cmd.reply:
		return r
	case <-a.killed:
		return result{err: errAgentDead}
	}
}

// stop terminates the agent's loop.
func (a *Agent) stop() {
	a.send(command{kind: stopCmd})
	<-a.done
}

// kill simulates an abrupt crash: no drain, no goodbye. Idempotent.
func (a *Agent) kill() { a.killOnce.Do(func() { close(a.killed) }) }

// alive reports whether the agent has not been killed.
func (a *Agent) alive() bool {
	select {
	case <-a.killed:
		return false
	default:
		return true
	}
}

// FleetConfig configures a worker fleet.
type FleetConfig struct {
	Dataset    *data.Dataset
	LayerSizes []int
	Workers    int
	TotalBatch int
	LR         float64
	Momentum   float64
	Seed       int64
	// Bus carries coordination traffic; a lossless default is created when
	// nil (tests inject lossy buses). A fleet-created bus is closed by
	// Close; an injected one is left to its owner.
	Bus *transport.Bus
	// Store persists the AM state machine; nil creates a private store.
	// Injecting one lets tests (and the chaos harness) inspect the
	// persisted state and drive CAS-fenced AM recovery.
	Store *store.Store
	// Checkpoints, when non-nil, is the delta checkpoint store the fleet
	// saves training state into (SaveCheckpoint) and recovers from after
	// a crash (RestoreCheckpoint). The fleet keeps the last committed
	// state vector warm in memory, so a restore after an AM crash replays
	// only the chunks that changed since — O(delta), not O(model). Nil
	// disables checkpointing.
	Checkpoints *checkpoint.DeltaStore
	// CheckpointName is the manifest-chain name used in Checkpoints;
	// empty defaults to "fleet".
	CheckpointName string
	// Clock is the time source for liveness monitoring; nil selects the
	// wall clock. When the fleet creates its own bus the bus shares this
	// clock.
	Clock clock.Clock
	// HeartbeatTTL and MonitorInterval tune the liveness monitor started
	// by Start; zero values select the defaults.
	HeartbeatTTL    time.Duration
	MonitorInterval time.Duration
	// Tracer records fleet lifecycle, per-step and adjustment spans; nil
	// disables tracing at zero cost. A fleet-created bus shares it.
	Tracer telemetry.Tracer
	// Metrics receives the fleet's counters and histograms (steps, step
	// latency, adjustments, dead-worker detections); nil disables them. A
	// fleet-created bus and the heartbeat monitor share it.
	Metrics *telemetry.Registry
	// Flight is the always-on black box: when set (and Tracer is a
	// *telemetry.Recorder it is attached to), recent spans keep rolling
	// through the ring and the fleet dumps it automatically on worker and
	// AM crash paths. Nil disables it at zero cost.
	Flight *telemetry.FlightRecorder
	// LinkLabel tags the collective group's allreduce spans with a link
	// level (topology naming); empty defaults to "inproc", the in-process
	// goroutine substrate. Ignored when Cluster is set: the label then
	// comes from the worst link level of the actual GPU placement.
	LinkLabel string
	// Cluster, when non-nil, places workers on simulated GPUs: every group
	// (re)construction reserves one GPU per worker in deterministic tree
	// order and builds a topology-aware group, so placements spanning nodes
	// get the hierarchical allreduce. Nil keeps the flat single-node group.
	Cluster *topology.Cluster
	// BucketElems caps gradient-bucket sizes for the ddp reducer, enabling
	// comm/compute overlap during backward. 0 keeps one whole-vector
	// bucket — arithmetic identical to the historical AllReduceMean path.
	BucketElems int
}

// Fleet is the controller plus its resident agents.
type Fleet struct {
	mu sync.Mutex

	cfg    FleetConfig
	clk    clock.Clock
	agents []*Agent
	group  *collective.Group
	// gpus is the current Cluster reservation backing group (nil when no
	// cluster is configured); rebuildGroupLocked swaps it with the group.
	gpus   []*topology.GPU
	loader *data.SerialLoader
	store  *store.Store
	am     *coord.AM
	amSvc  *coord.Service
	amDown bool
	// coordinator is the client used by the lead worker; sched is the
	// scheduler-side client that requests adjustments.
	coordinator *coord.Client
	sched       *coord.Client
	// spawned holds agents that have been launched (asynchronously started)
	// and reported, awaiting the adjustment that admits them.
	spawned map[string]*Agent
	iter    int
	nextID  int
	lr      float64
	// learning-rate ramp state (progressive linear scaling)
	lrRampFrom  float64
	lrRampTo    float64
	lrRampStart int
	lrRampLen   int

	// Lifecycle. ctx bounds every goroutine the fleet owns (report
	// clients, the liveness monitor); Close cancels it and waits for wg,
	// so after Close no fleet goroutine survives.
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	ownsBus bool
	started bool
	closed  bool

	// Liveness: agents beat on every completed step; the monitor records
	// the ones whose beats lapse.
	hb     *coord.HeartbeatMonitor
	deadMu sync.Mutex
	dead   map[string]bool

	// Delta checkpointing: ckptState is the state vector exactly as
	// committed at manifest ckptSeq — the warm base a post-crash restore
	// applies the manifest-chain tail onto.
	ckptName  string
	ckptState []float64
	ckptSeq   int64

	// Telemetry. lifeSpan covers Start..Close; the instruments are nil-safe
	// so an uninstrumented fleet's step path is allocation-free.
	tr             telemetry.Tracer
	flight         *telemetry.FlightRecorder
	lifeSpan       *telemetry.Span
	mSteps         *telemetry.Counter
	mStepSeconds   *telemetry.Histogram
	mAdjustments   *telemetry.Counter
	mDeadDetected  *telemetry.Counter
	mWorkerCrashes *telemetry.Counter
	mWorkerRejoins *telemetry.Counter
	mAMCrashes     *telemetry.Counter
	mAMRecoveries  *telemetry.Counter
	mCoordSkips    *telemetry.Counter
}

// NewFleet builds the fleet, the AM and its service, and starts the initial
// agents.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("worker: nil dataset")
	}
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("worker: non-positive worker count")
	}
	if cfg.TotalBatch <= 0 || cfg.TotalBatch%cfg.Workers != 0 {
		return nil, fmt.Errorf("worker: total batch %d not divisible by %d workers",
			cfg.TotalBatch, cfg.Workers)
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall{}
	}
	if cfg.HeartbeatTTL <= 0 {
		cfg.HeartbeatTTL = DefaultHeartbeatTTL
	}
	if cfg.MonitorInterval <= 0 {
		cfg.MonitorInterval = DefaultMonitorInterval
	}
	if cfg.LinkLabel == "" {
		cfg.LinkLabel = "inproc"
	}
	ownsBus := cfg.Bus == nil
	if ownsBus {
		busCfg := transport.DefaultBusConfig()
		busCfg.Clock = cfg.Clock
		busCfg.Tracer = cfg.Tracer
		busCfg.Metrics = cfg.Metrics
		cfg.Bus = transport.NewBus(busCfg)
	}
	if cfg.Store == nil {
		cfg.Store = store.New()
	}
	if cfg.CheckpointName == "" {
		cfg.CheckpointName = "fleet"
	}
	ctx, cancel := context.WithCancel(context.Background())
	am, err := coord.NewAM("fleet", cfg.Store)
	if err != nil {
		cancel()
		return nil, err
	}
	amSvc, err := coord.NewServiceCtx(ctx, am, cfg.Bus, "fleet-am")
	if err != nil {
		cancel()
		return nil, err
	}
	coordinator, err := coord.NewClientCtx(ctx, cfg.Bus, "fleet-lead", "fleet-am")
	if err != nil {
		cancel()
		return nil, err
	}
	sched, err := coord.NewClientCtx(ctx, cfg.Bus, "fleet-sched", "fleet-am")
	if err != nil {
		cancel()
		return nil, err
	}
	loader, err := data.NewSerialLoader(cfg.Dataset.N())
	if err != nil {
		cancel()
		return nil, err
	}
	hb, err := coord.NewHeartbeatMonitor(cfg.Clock)
	if err != nil {
		cancel()
		return nil, err
	}
	hb.Instrument(cfg.Metrics)
	f := &Fleet{
		cfg:            cfg,
		clk:            cfg.Clock,
		loader:         loader,
		store:          cfg.Store,
		am:             am,
		amSvc:          amSvc,
		coordinator:    coordinator,
		sched:          sched,
		spawned:        make(map[string]*Agent),
		lr:             cfg.LR,
		ckptName:       cfg.CheckpointName,
		ctx:            ctx,
		cancel:         cancel,
		ownsBus:        ownsBus,
		hb:             hb,
		dead:           make(map[string]bool),
		tr:             telemetry.OrNop(cfg.Tracer),
		flight:         cfg.Flight,
		mSteps:         cfg.Metrics.Counter("worker_steps_total"),
		mStepSeconds:   cfg.Metrics.Histogram("worker_step_seconds"),
		mAdjustments:   cfg.Metrics.Counter("worker_adjustments_total"),
		mDeadDetected:  cfg.Metrics.Counter("worker_dead_detected_total"),
		mWorkerCrashes: cfg.Metrics.Counter("worker_crashes_total"),
		mWorkerRejoins: cfg.Metrics.Counter("worker_rejoins_total"),
		mAMCrashes:     cfg.Metrics.Counter("worker_am_crashes_total"),
		mAMRecoveries:  cfg.Metrics.Counter("worker_am_recoveries_total"),
		mCoordSkips:    cfg.Metrics.Counter("worker_coord_skips_total"),
	}
	// AM-side spans are labeled with the service's endpoint so the
	// cross-process trace shows coord work on the fleet-am track.
	amSvc.SetTracer(f.tr)
	if rec, ok := cfg.Tracer.(*telemetry.Recorder); ok && cfg.Flight != nil {
		rec.SetFlightRecorder(cfg.Flight)
	}
	if err := f.rebuildGroupLocked(cfg.Workers); err != nil {
		f.Close()
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		a, err := f.spawnAgent()
		if err != nil {
			f.Close()
			return nil, err
		}
		f.agents = append(f.agents, a)
		f.hb.Beat(a.Name)
	}
	return f, nil
}

// Start ties the fleet's lifetime to ctx — when ctx is cancelled the fleet
// closes — and launches the liveness monitor: agents heartbeat on every
// completed step, and agents whose beats lapse past HeartbeatTTL are
// recorded (DeadWorkers) for the scheduler to replace, the failure-
// mitigation loop of Section VII. Start may be called at most once.
func (f *Fleet) Start(ctx context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("worker: fleet closed")
	}
	if f.started {
		return fmt.Errorf("worker: fleet already started")
	}
	f.started = true
	f.lifeSpan = f.tr.StartSpan("worker.fleet")
	f.lifeSpan.SetProc("fleet-lead")
	f.lifeSpan.AnnotateInt("workers", len(f.agents))
	f.lifeSpan.Event("start")
	if ctx != nil && ctx.Done() != nil {
		context.AfterFunc(ctx, f.Close)
	}
	f.wg.Add(1)
	go f.monitorLoop()
	return nil
}

// monitorLoop periodically sweeps the heartbeat monitor on the fleet's
// clock. It exits when Close cancels the fleet context.
func (f *Fleet) monitorLoop() {
	defer f.wg.Done()
	tick := f.clk.NewTicker(f.cfg.MonitorInterval)
	defer tick.Stop()
	for {
		select {
		case <-f.ctx.Done():
			return
		case <-tick.C():
			expired := f.hb.Expired(f.cfg.HeartbeatTTL)
			if len(expired) == 0 {
				continue
			}
			newDead := 0
			f.deadMu.Lock()
			for _, w := range expired {
				if !f.dead[w] {
					newDead++
				}
				f.dead[w] = true
			}
			f.deadMu.Unlock()
			if newDead > 0 {
				f.mDeadDetected.Add(int64(newDead))
				f.lifeSpan.Event("dead-worker-detected")
			}
		}
	}
}

// DeadWorkers returns the agents the liveness monitor has declared dead
// (sorted insertion is not guaranteed; callers sort if needed).
func (f *Fleet) DeadWorkers() []string {
	f.deadMu.Lock()
	defer f.deadMu.Unlock()
	out := make([]string, 0, len(f.dead))
	for w := range f.dead {
		out = append(out, w)
	}
	return out
}

func (f *Fleet) spawnAgent() (*Agent, error) {
	name := fmt.Sprintf("agent-%d", f.nextID)
	f.nextID++
	return newAgent(name, f.cfg.Seed, f.cfg.LayerSizes, f.lr, f.cfg.Momentum, f.cfg.BucketElems, f.cfg.Dataset)
}

// NumWorkers returns the active agent count.
func (f *Fleet) NumWorkers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.agents)
}

// Iteration returns completed iterations.
func (f *Fleet) Iteration() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.iter
}

// RequestScaleOut launches n new agents asynchronously (they report to the
// AM when "initialized") and registers the adjustment with the AM. The
// fleet keeps training; the adjustment is applied by a later Step's
// coordination, exactly as the paper's mechanism prescribes.
func (f *Fleet) RequestScaleOut(n int) error {
	if n <= 0 {
		return fmt.Errorf("worker: scale out by %d", n)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.TotalBatch%(len(f.agents)+n) != 0 {
		return fmt.Errorf("worker: total batch %d not divisible by %d workers",
			f.cfg.TotalBatch, len(f.agents)+n)
	}
	// The request span roots the adjustment's cross-process trace: the
	// transport call, the AM's service spans, each new agent's report, and
	// the eventual apply/install spans all join it. Proc "fleet-sched"
	// because the request is the scheduler's act, not the lead worker's.
	span := f.tr.StartSpan("worker.request_scale_out")
	span.SetProc("fleet-sched")
	span.AnnotateInt("add", n)
	defer span.End()
	names := make([]string, 0, n)
	fresh := make([]*Agent, 0, n)
	for i := 0; i < n; i++ {
		a, err := f.spawnAgent()
		if err != nil {
			span.Annotate("error", err.Error())
			return err
		}
		fresh = append(fresh, a)
		names = append(names, a.Name)
	}
	reqCtx := telemetry.ContextWithSpan(f.ctx, span)
	if err := f.sched.RequestAdjustmentTraced(reqCtx, coord.ScaleOut, names, nil, span.Context()); err != nil {
		for _, a := range fresh {
			a.stop()
		}
		span.Annotate("error", err.Error())
		return err
	}
	for i, a := range fresh {
		f.spawned[a.Name] = a
		// The agent "starts and initializes" in the background and then
		// reports. Construction already happened; the report goes over the
		// bus like a real worker's would. The goroutine is fleet-tracked
		// and its call aborts when the fleet closes.
		f.wg.Add(1)
		go func(name string) {
			defer f.wg.Done()
			cl, err := coord.NewClientCtx(f.ctx, f.cfg.Bus, name, "fleet-am")
			if err != nil {
				return
			}
			// The report span runs on the new agent's own process track, a
			// remote child of the request span (which may already be ended —
			// only annotation is frozen by End, not parenthood).
			rspan := telemetry.StartRemote(f.tr, "worker.report_ready", span.Context())
			rspan.SetProc(name)
			defer rspan.End()
			rctx := telemetry.ContextWithSpan(f.ctx, rspan)
			// Retry until the report lands: the AM may be down (crashed,
			// recovering) when the agent first comes up, and a report lost
			// to an outage would leave the adjustment Pending forever.
			// ErrUnknownWorker is terminal — the adjustment no longer wants
			// this worker (already admitted or superseded).
			for {
				err := cl.ReportReadyCtx(rctx, name)
				if err == nil || errors.Is(err, coord.ErrUnknownWorker) {
					return
				}
				rspan.Event("retry")
				if f.clk.Sleep(f.ctx, 50*time.Millisecond) != nil {
					return // fleet closing
				}
			}
		}(names[i])
	}
	return nil
}

// RequestScaleIn registers a scale-in of the last n agents.
func (f *Fleet) RequestScaleIn(n int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 || n >= len(f.agents) {
		return fmt.Errorf("worker: scale in by %d of %d", n, len(f.agents))
	}
	if f.cfg.TotalBatch%(len(f.agents)-n) != 0 {
		return fmt.Errorf("worker: total batch %d not divisible by %d workers",
			f.cfg.TotalBatch, len(f.agents)-n)
	}
	names := make([]string, 0, n)
	for _, a := range f.agents[len(f.agents)-n:] {
		names = append(names, a.Name)
	}
	span := f.tr.StartSpan("worker.request_scale_in")
	span.SetProc("fleet-sched")
	span.AnnotateInt("remove", n)
	defer span.End()
	return f.sched.RequestAdjustmentTraced(
		telemetry.ContextWithSpan(f.ctx, span), coord.ScaleIn, nil, names, span.Context())
}

// Step runs one training iteration: the lead worker coordinates with the
// AM first (applying a pending adjustment if one is ready), then all agents
// execute the iteration concurrently.
//
// Step tolerates faults: crashed agents are swept out of the group before
// dispatch (so a dead rank never wedges the ring collective), and an
// unreachable AM downgrades coordination to a skip — the fleet keeps
// training through AM outages and picks up pending adjustments once the AM
// recovers, per the paper's decoupling of training from coordination.
func (f *Fleet) Step() (float64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	span := f.tr.StartSpan("worker.step")
	span.SetProc("fleet-lead")
	span.AnnotateInt("iter", f.iter)
	stepStart := f.clk.Now()
	defer func() {
		f.mStepSeconds.Observe(f.clk.Since(stepStart).Seconds())
		span.End()
	}()
	if err := f.sweepDeadLocked(); err != nil {
		return 0, err
	}
	adj, ok, err := f.coordinator.CoordinateCtx(telemetry.ContextWithSpan(f.ctx, span))
	if err != nil {
		if errors.Is(err, transport.ErrClosed) || f.ctx.Err() != nil {
			return 0, err
		}
		// AM unreachable, timed out, or fenced: coordination is advisory,
		// so skip it this iteration and train on.
		f.mCoordSkips.Inc()
		span.Annotate("coord_skip", err.Error())
		ok = false
	}
	if ok {
		// When the adjustment carries the scheduler request's trace, the
		// apply span joins that cross-process tree (the request → report →
		// coordinate → apply arc); otherwise it nests under this step.
		var aspan *telemetry.Span
		if adj.Trace.Valid() {
			aspan = telemetry.StartRemote(f.tr, "worker.apply_adjustment", adj.Trace)
			aspan.SetProc("fleet-lead")
			aspan.AnnotateInt("iter", f.iter)
		} else {
			aspan = span.Child("worker.apply_adjustment")
		}
		aspan.Annotate("kind", adj.Kind.String())
		err := f.applyAdjustment(adj, aspan)
		if err != nil {
			aspan.Annotate("error", err.Error())
		}
		aspan.End()
		if err != nil {
			return 0, err
		}
		f.mAdjustments.Inc()
	}
	lr := f.currentLR()
	n := len(f.agents)
	per := f.cfg.TotalBatch / n
	type shard struct{ lo, hi int }
	shards := make([]shard, n)
	for w := 0; w < n; w++ {
		lo, hi, err := f.loader.NextBatch(w, n, per)
		if err != nil {
			return 0, err
		}
		shards[w] = shard{lo, hi}
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[w] = f.agents[w].send(command{
				kind:  stepCmd,
				rank:  w,
				n:     n,
				lo:    shards[w].lo,
				hi:    shards[w].hi,
				iter:  f.iter,
				lr:    lr,
				group: f.group,
				tr:    f.tr,
				trace: span.Context(),
			})
		}()
	}
	wg.Wait()
	var loss float64
	for _, r := range results {
		if r.err != nil {
			return 0, r.err
		}
		loss += r.loss
	}
	// Every agent that completed the iteration is alive: piggyback the
	// heartbeat on the step, as the paper's workers do on coordination.
	for _, a := range f.agents {
		f.hb.Beat(a.Name)
	}
	f.iter++
	f.mSteps.Inc()
	span.AnnotateInt("workers", n)
	return loss / float64(n), nil
}

// applyAdjustment performs steps 4 and 5 of the procedure for a delivered
// adjustment: admit reported agents with replicated state, or retire
// leaving agents, then rebuild the group and repartition.
// rebuildGroupLocked replaces the collective group with one sized for n
// ranks — the single implementation of communication-group reconstruction
// shared by construction, scale adjustments, dead-worker sweeps and
// rejoins. With a Cluster configured the old GPU reservation is released
// and n GPUs re-reserved in deterministic tree order, so the group's
// topology (and therefore its flat-vs-hierarchical algorithm and its link
// label) always matches the actual placement. Callers hold f.mu or own f
// exclusively (construction).
func (f *Fleet) rebuildGroupLocked(n int) error {
	link := f.cfg.LinkLabel
	var topo collective.Topology = collective.Flat(n)
	if f.cfg.Cluster != nil {
		f.cfg.Cluster.Release(f.gpus)
		f.gpus = nil
		gpus, err := f.cfg.Cluster.Reserve(n)
		if err != nil {
			return err
		}
		ct, err := collective.NewClustered(topology.IDsOf(gpus))
		if err != nil {
			f.cfg.Cluster.Release(gpus)
			return err
		}
		f.gpus = gpus
		topo = ct
		link = collective.LinkLabelOf(ct)
	}
	if f.group != nil {
		f.group.Close()
	}
	group, err := collective.NewGroupWithTopology(topo)
	if err != nil {
		return err
	}
	group.SetTelemetry(f.tr, f.cfg.Metrics, f.clk, link)
	f.group = group
	return nil
}

func (f *Fleet) applyAdjustment(adj coord.Adjustment, aspan *telemetry.Span) error {
	oldN := len(f.agents)
	switch adj.Kind {
	case coord.ScaleOut:
		src := f.agents[0].send(command{kind: exportCmd})
		if src.err != nil {
			return src.err
		}
		for _, name := range adj.Add {
			a, ok := f.spawned[name]
			if !ok {
				return fmt.Errorf("worker: adjustment admits unknown agent %q", name)
			}
			delete(f.spawned, name)
			// The install runs on the joining agent's own process track,
			// parented under the apply span of the same trace.
			if r := a.send(command{kind: installCmd, state: src.state,
				tr: f.tr, trace: aspan.Context()}); r.err != nil {
				return r.err
			}
			f.agents = append(f.agents, a)
		}
	case coord.ScaleIn:
		leaving := make(map[string]bool, len(adj.Remove))
		for _, name := range adj.Remove {
			leaving[name] = true
		}
		var stay []*Agent
		for _, a := range f.agents {
			if leaving[a.Name] {
				a.stop()
				f.hb.Forget(a.Name) // left deliberately, not dead
			} else {
				stay = append(stay, a)
			}
		}
		if len(stay) == len(f.agents) {
			return fmt.Errorf("worker: scale-in removed no agents")
		}
		f.agents = stay
	default:
		return fmt.Errorf("worker: unsupported adjustment %v", adj.Kind)
	}
	if err := f.loader.Repartition(oldN, len(f.agents)); err != nil {
		return err
	}
	return f.rebuildGroupLocked(len(f.agents))
}

// sweepDeadLocked excises crashed agents before dispatch: a killed rank
// would never join the ring collective and wedge every other rank, so the
// survivors repartition the loader and rebuild the group without it.
// Callers hold f.mu.
func (f *Fleet) sweepDeadLocked() error {
	live := f.agents[:0:0]
	for _, a := range f.agents {
		if a.alive() {
			live = append(live, a)
		}
	}
	if len(live) == len(f.agents) {
		return nil
	}
	if len(live) == 0 {
		return fmt.Errorf("worker: all agents crashed")
	}
	if f.cfg.TotalBatch%len(live) != 0 {
		return fmt.Errorf("worker: total batch %d not divisible by %d surviving workers",
			f.cfg.TotalBatch, len(live))
	}
	oldN := len(f.agents)
	f.agents = live
	if err := f.loader.Repartition(oldN, len(live)); err != nil {
		return err
	}
	if err := f.rebuildGroupLocked(len(live)); err != nil {
		return err
	}
	f.lifeSpan.Event("dead-worker-swept")
	return nil
}

// CrashWorker abruptly kills the named active agent, as a process crash
// would: its goroutine exits without draining the mailbox, its bus endpoint
// (if any) disappears, and nothing is repartitioned until the next Step
// sweeps it out. Taking the fleet lock serializes the kill with Step, so an
// agent never dies mid-collective.
func (f *Fleet) CrashWorker(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, a := range f.agents {
		if a.Name == name {
			if !a.alive() {
				return fmt.Errorf("worker: %q already crashed", name)
			}
			a.kill()
			f.cfg.Bus.Remove(name)
			f.mWorkerCrashes.Inc()
			f.lifeSpan.Event("worker-crash")
			f.flight.RecordEvent("fleet-lead", "crash:"+name, f.clk.Now())
			f.flight.DumpNow("worker-crash " + name)
			return nil
		}
	}
	return fmt.Errorf("worker: crash target %q is not an active agent", name)
}

// RejoinWorker restarts a previously crashed worker under its old name: a
// fresh agent process re-registers on the bus (new incarnation, so its
// messages are not blackholed by stale dedup state), receives the current
// replica state from a surviving agent, and is folded back into the group.
func (f *Fleet) RejoinWorker(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.sweepDeadLocked(); err != nil {
		return err
	}
	for _, a := range f.agents {
		if a.Name == name {
			return fmt.Errorf("worker: %q is still active", name)
		}
	}
	if _, ok := f.spawned[name]; ok {
		return fmt.Errorf("worker: %q is awaiting admission", name)
	}
	if f.cfg.TotalBatch%(len(f.agents)+1) != 0 {
		return fmt.Errorf("worker: total batch %d not divisible by %d workers",
			f.cfg.TotalBatch, len(f.agents)+1)
	}
	a, err := newAgent(name, f.cfg.Seed, f.cfg.LayerSizes, f.lr, f.cfg.Momentum, f.cfg.BucketElems, f.cfg.Dataset)
	if err != nil {
		return err
	}
	// The restarted process announces itself over the bus; a fresh endpoint
	// under the old name gets a new incarnation number. The AM state probe
	// is advisory — rejoin proceeds even if the AM is down right now.
	if cl, err := coord.NewClientCtx(f.ctx, f.cfg.Bus, name, "fleet-am"); err == nil {
		_, _ = cl.AMState()
	}
	src := f.agents[0].send(command{kind: exportCmd})
	if src.err != nil {
		a.stop()
		return src.err
	}
	if r := a.send(command{kind: installCmd, state: src.state}); r.err != nil {
		a.stop()
		return r.err
	}
	oldN := len(f.agents)
	f.agents = append(f.agents, a)
	if err := f.loader.Repartition(oldN, len(f.agents)); err != nil {
		return err
	}
	if err := f.rebuildGroupLocked(len(f.agents)); err != nil {
		return err
	}
	f.deadMu.Lock()
	delete(f.dead, name)
	f.deadMu.Unlock()
	f.hb.Beat(name)
	f.mWorkerRejoins.Inc()
	f.lifeSpan.Event("worker-rejoin")
	return nil
}

// CrashAM kills the application master: its service endpoint leaves the bus
// and coordination calls start failing (Step degrades to skips). The dead
// incarnation's handle is returned so callers can verify it is fenced off
// once a successor recovers from the store. The persisted state machine
// survives in the store.
func (f *Fleet) CrashAM() (*coord.AM, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.amDown {
		return nil, fmt.Errorf("worker: AM already down")
	}
	f.amSvc.Close()
	f.amDown = true
	old := f.am
	f.am = nil
	f.mAMCrashes.Inc()
	f.lifeSpan.Event("am-crash")
	f.flight.RecordEvent("fleet-am", "am-crash", f.clk.Now())
	f.flight.DumpNow("am-crash")
	return old, nil
}

// RecoverAM starts a successor AM incarnation: it re-reads the persisted
// state machine from the store and takes over via CAS, fencing the dead
// incarnation (any write it might still attempt fails with coord.ErrFenced).
// The service re-registers under the same bus name with a new incarnation.
func (f *Fleet) RecoverAM() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.amDown {
		return fmt.Errorf("worker: AM is not down")
	}
	am, err := coord.Recover("fleet", f.store)
	if err != nil {
		return err
	}
	svc, err := coord.NewServiceCtx(f.ctx, am, f.cfg.Bus, "fleet-am")
	if err != nil {
		return err
	}
	svc.SetTracer(f.tr)
	f.am = am
	f.amSvc = svc
	f.amDown = false
	f.mAMRecoveries.Inc()
	f.lifeSpan.Event("am-recover")
	f.flight.RecordEvent("fleet-am", "am-recover", f.clk.Now())
	return nil
}

// AMDown reports whether the AM is currently crashed.
func (f *Fleet) AMDown() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.amDown
}

// SetTotalBatch changes the fleet's total batch size, ramping the learning
// rate linearly to lr*k over rampIters iterations when progressive is true
// (the progressive linear scaling rule). The new batch must be divisible by
// the current worker count.
func (f *Fleet) SetTotalBatch(tbs, rampIters int, progressive bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if tbs <= 0 || tbs%len(f.agents) != 0 {
		return fmt.Errorf("worker: total batch %d not divisible by %d workers", tbs, len(f.agents))
	}
	k := float64(tbs) / float64(f.cfg.TotalBatch)
	target := f.lr * k
	if progressive && rampIters > 0 {
		f.lrRampFrom = f.lr
		f.lrRampTo = target
		f.lrRampStart = f.iter
		f.lrRampLen = rampIters
	} else {
		f.lr = target
		f.lrRampLen = 0
	}
	f.cfg.TotalBatch = tbs
	return nil
}

// currentLR returns the learning rate for the current iteration, applying
// any ramp in progress. Callers hold f.mu.
func (f *Fleet) currentLR() float64 {
	if f.lrRampLen > 0 {
		t := f.iter - f.lrRampStart
		if t >= f.lrRampLen {
			f.lr = f.lrRampTo
			f.lrRampLen = 0
		} else {
			return f.lrRampFrom + float64(t)/float64(f.lrRampLen)*(f.lrRampTo-f.lrRampFrom)
		}
	}
	return f.lr
}

// Evaluate measures agent 0's replica on a dataset.
func (f *Fleet) Evaluate(ds *data.Dataset) (loss, acc float64, err error) {
	f.mu.Lock()
	a := f.agents[0]
	f.mu.Unlock()
	x, y, err := ds.Batch(0, ds.N())
	if err != nil {
		return 0, 0, err
	}
	// Evaluation runs on the controller; the agent's net is only touched
	// between steps (the fleet lock is held by Step), so a direct forward
	// is safe here as long as callers do not Step concurrently.
	f.mu.Lock()
	defer f.mu.Unlock()
	out, err := a.net.Forward(x)
	if err != nil {
		return 0, 0, err
	}
	loss, _, err = a.net.SoftmaxLoss(out, y)
	if err != nil {
		return 0, 0, err
	}
	acc, err = nn.Accuracy(out, y)
	return loss, acc, err
}

// ReplicasConsistent checks the data-parallel invariant across agents.
func (f *Fleet) ReplicasConsistent() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	ref := f.agents[0].net.FlattenParams(nil)
	for _, a := range f.agents[1:] {
		p := a.net.FlattenParams(nil)
		if len(p) != len(ref) {
			return false
		}
		for i := range p {
			if p[i] != ref[i] {
				return false
			}
		}
	}
	return true
}

// Close stops all agents (including spawned-but-unadmitted ones), the
// liveness monitor and any in-flight report goroutines, then waits for all
// of them to exit — after Close returns the fleet owns no goroutines. A
// fleet-created bus is closed too; an injected bus is left to its owner.
// Close is idempotent and safe to call concurrently with ctx cancellation.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	// Cancel first so report clients and the monitor unblock.
	f.cancel()
	for _, a := range f.agents {
		a.stop()
	}
	f.agents = nil
	for _, a := range f.spawned {
		a.stop()
	}
	f.spawned = nil
	if f.group != nil {
		f.group.Close()
	}
	if f.cfg.Cluster != nil {
		f.cfg.Cluster.Release(f.gpus)
		f.gpus = nil
	}
	f.mu.Unlock()
	f.wg.Wait()
	// The monitor has exited; the lifecycle span is single-owner again.
	f.lifeSpan.Event("stop")
	f.lifeSpan.End()
	if f.ownsBus {
		f.cfg.Bus.Close()
	}
}
