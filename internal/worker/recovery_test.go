package worker

// Crash-recovery tests: worker crash + sweep + rejoin, AM crash with
// CAS-fenced recovery from the store, and a scale-out whose ready report
// must survive an AM outage.

import (
	"errors"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/coord"
	"github.com/elan-sys/elan/internal/store"
	"github.com/elan-sys/elan/internal/telemetry"
)

// stepUntil steps the fleet until cond holds, failing after maxSteps.
func stepUntil(t *testing.T, f *Fleet, maxSteps int, cond func() bool, what string) {
	t.Helper()
	for i := 0; i < maxSteps; i++ {
		if cond() {
			return
		}
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step while waiting for %s: %v", what, err)
		}
	}
	if !cond() {
		t.Fatalf("%s did not happen within %d steps", what, maxSteps)
	}
}

func TestCrashedWorkerSweptAndTrainingContinues(t *testing.T) {
	f := fleet(t, 4, 24, nil)
	for i := 0; i < 3; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
	}
	if err := f.CrashWorker("agent-1"); err != nil {
		t.Fatalf("CrashWorker: %v", err)
	}
	if err := f.CrashWorker("agent-1"); err == nil {
		t.Fatal("double crash accepted")
	}
	// The next step sweeps the dead rank out and trains with 3 workers
	// instead of wedging the collective.
	for i := 0; i < 3; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("post-crash Step %d: %v", i, err)
		}
	}
	if n := f.NumWorkers(); n != 3 {
		t.Fatalf("NumWorkers = %d after crash, want 3", n)
	}
	if !f.ReplicasConsistent() {
		t.Fatal("replicas diverged after crash")
	}
}

func TestCrashedWorkerRejoins(t *testing.T) {
	f := fleet(t, 4, 24, nil)
	if _, err := f.Step(); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if err := f.CrashWorker("agent-2"); err != nil {
		t.Fatalf("CrashWorker: %v", err)
	}
	if _, err := f.Step(); err != nil {
		t.Fatalf("post-crash Step: %v", err)
	}
	if err := f.RejoinWorker("agent-2"); err != nil {
		t.Fatalf("RejoinWorker: %v", err)
	}
	if err := f.RejoinWorker("agent-2"); err == nil {
		t.Fatal("rejoin of an active worker accepted")
	}
	if n := f.NumWorkers(); n != 4 {
		t.Fatalf("NumWorkers = %d after rejoin, want 4", n)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("post-rejoin Step %d: %v", i, err)
		}
	}
	if !f.ReplicasConsistent() {
		t.Fatal("rejoined replica diverged")
	}
	// The rejoined worker is no longer listed dead.
	for _, w := range f.DeadWorkers() {
		if w == "agent-2" {
			t.Fatal("rejoined worker still listed dead")
		}
	}
}

func TestAMCrashRecoveryFencesOldIncarnation(t *testing.T) {
	guardGoroutines(t)
	st := store.New()
	reg := telemetry.NewRegistry()
	f, err := NewFleet(FleetConfig{
		Dataset:    dataset(t, 1024),
		LayerSizes: []int{4, 16, 3},
		Workers:    2,
		TotalBatch: 24,
		LR:         0.05,
		Momentum:   0.9,
		Seed:       21,
		Store:      st,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	t.Cleanup(f.Close)

	if _, err := f.Step(); err != nil {
		t.Fatalf("Step: %v", err)
	}
	old, err := f.CrashAM()
	if err != nil {
		t.Fatalf("CrashAM: %v", err)
	}
	if !f.AMDown() {
		t.Fatal("AMDown = false after crash")
	}
	// Training continues through the outage; coordination degrades to skips.
	for i := 0; i < 3; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step during AM outage: %v", err)
		}
	}
	if v := reg.Counter("worker_coord_skips_total").Value(); v < 3 {
		t.Fatalf("worker_coord_skips_total = %d, want >= 3", v)
	}
	if err := f.RecoverAM(); err != nil {
		t.Fatalf("RecoverAM: %v", err)
	}
	// The dead incarnation lost the CAS fence: any write it attempts fails.
	if err := old.RequestAdjustment(coord.ScaleOut, []string{"zombie"}, nil); !errors.Is(err, coord.ErrFenced) {
		t.Fatalf("old AM write = %v, want ErrFenced", err)
	}
	// The successor coordinates normally: a scale-out goes through it.
	if err := f.RequestScaleOut(1); err != nil {
		t.Fatalf("RequestScaleOut after recovery: %v", err)
	}
	stepUntil(t, f, 200, func() bool { return f.NumWorkers() == 3 }, "scale-out admission")
	if !f.ReplicasConsistent() {
		t.Fatal("replicas diverged after recovery")
	}
}

func TestScaleOutReportSurvivesAMOutage(t *testing.T) {
	f := fleet(t, 2, 24, nil)
	if _, err := f.Step(); err != nil {
		t.Fatalf("Step: %v", err)
	}
	// Register the adjustment, then crash the AM before the new worker's
	// ready report necessarily lands. The report goroutine must retry
	// through the outage; the recovered AM resumes the pending adjustment
	// from the store and eventually admits the worker.
	if err := f.RequestScaleOut(1); err != nil {
		t.Fatalf("RequestScaleOut: %v", err)
	}
	if _, err := f.CrashAM(); err != nil {
		t.Fatalf("CrashAM: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step during outage: %v", err)
		}
	}
	if n := f.NumWorkers(); n != 2 {
		t.Fatalf("worker admitted during AM outage: NumWorkers = %d", n)
	}
	if err := f.RecoverAM(); err != nil {
		t.Fatalf("RecoverAM: %v", err)
	}
	// The report retry fires every 50ms of wall time; give it room.
	deadline := time.Now().Add(10 * time.Second)
	for f.NumWorkers() != 3 && time.Now().Before(deadline) {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step after recovery: %v", err)
		}
	}
	if n := f.NumWorkers(); n != 3 {
		t.Fatalf("NumWorkers = %d after recovery, want 3", n)
	}
	if !f.ReplicasConsistent() {
		t.Fatal("replicas diverged")
	}
}
