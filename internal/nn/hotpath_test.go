package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/elan-sys/elan/internal/racecheck"
	"github.com/elan-sys/elan/internal/tensor"
)

func randBatch(rng *rand.Rand, rows, features, classes int) (*tensor.Matrix, []int) {
	x := tensor.MustNew(rows, features)
	x.Randn(rng, 1)
	y := make([]int, rows)
	for i := range y {
		y[i] = rng.Intn(classes)
	}
	return x, y
}

func matsBitsEqual(t *testing.T, name string, a, b []*tensor.Matrix) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d matrices", name, len(a), len(b))
	}
	for i := range a {
		if a[i].Rows != b[i].Rows || a[i].Cols != b[i].Cols {
			t.Fatalf("%s[%d]: shape %dx%d vs %dx%d", name, i, a[i].Rows, a[i].Cols, b[i].Rows, b[i].Cols)
		}
		for j := range a[i].Data {
			if math.Float64bits(a[i].Data[j]) != math.Float64bits(b[i].Data[j]) {
				t.Fatalf("%s[%d] element %d: %v vs %v", name, i, j, a[i].Data[j], b[i].Data[j])
			}
		}
	}
}

// TestForwardCopiesInput is the regression test for the input-aliasing
// hazard: Linear.Forward must keep its own copy of the batch, so a caller
// overwriting the batch buffer between forward and backward (exactly what
// the workers' reused batch workspaces do) cannot corrupt the gradients.
func TestForwardCopiesInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := randBatch(rng, 8, 4, 3)

	clean := newNet(t, 4, 16, 3)
	out, err := clean.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := clean.SoftmaxLoss(out, y)
	if err != nil {
		t.Fatal(err)
	}
	clean.ZeroGrads()
	if err := clean.Backward(grad.Clone()); err != nil {
		t.Fatal(err)
	}

	mutated := newNet(t, 4, 16, 3)
	xm := x.Clone()
	out2, err := mutated.Forward(xm)
	if err != nil {
		t.Fatal(err)
	}
	_, grad2, err := mutated.SoftmaxLoss(out2, y)
	if err != nil {
		t.Fatal(err)
	}
	g2 := grad2.Clone()
	for i := range xm.Data { // caller scribbles over its batch buffer
		xm.Data[i] = math.NaN()
	}
	mutated.ZeroGrads()
	if err := mutated.Backward(g2); err != nil {
		t.Fatal(err)
	}

	matsBitsEqual(t, "grads after input mutation", clean.Grads(), mutated.Grads())
}

// naiveStep runs one forward/backward with the allocating reference
// primitives directly on the network's weights, returning the loss and
// per-layer gradients in Params order.
func naiveStep(t *testing.T, m *MLP, x *tensor.Matrix, labels []int) (float64, []*tensor.Matrix) {
	t.Helper()
	h := x.Clone()
	var acts []*tensor.Matrix  // input to each layer
	var masks []*tensor.Matrix // ReLU mask after each hidden layer
	for i, l := range m.layers {
		acts = append(acts, h.Clone())
		out, err := tensor.MatMul(h, l.W)
		if err != nil {
			t.Fatal(err)
		}
		if err := out.AddRowVector(l.B); err != nil {
			t.Fatal(err)
		}
		h = out
		if i < len(m.layers)-1 {
			masks = append(masks, h.ReLU())
		}
	}
	loss, grad, err := SoftmaxCrossEntropy(h, labels)
	if err != nil {
		t.Fatal(err)
	}
	grads := make([]*tensor.Matrix, 2*len(m.layers))
	g := grad
	for i := len(m.layers) - 1; i >= 0; i-- {
		l := m.layers[i]
		gw, err := tensor.MatMulAT(acts[i], g)
		if err != nil {
			t.Fatal(err)
		}
		grads[2*i] = gw
		grads[2*i+1] = g.SumRows()
		gin, err := tensor.MatMulBT(g, l.W)
		if err != nil {
			t.Fatal(err)
		}
		g = gin
		if i > 0 {
			if err := g.Hadamard(masks[i-1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return loss, grads
}

// TestWorkspacePathMatchesNaiveReference runs the workspace-backed hot path
// (Forward, SoftmaxLoss, Backward) against a from-scratch implementation
// built on the allocating primitives and demands bit-identical loss and
// gradients — including on the second pass, when every workspace is reused.
func TestWorkspacePathMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := newNet(t, 6, 32, 17, 4)
	for pass := 0; pass < 3; pass++ {
		x, y := randBatch(rng, 9, 6, 4)
		wantLoss, wantGrads := naiveStep(t, net, x, y)

		out, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		loss, grad, err := net.SoftmaxLoss(out, y)
		if err != nil {
			t.Fatal(err)
		}
		net.ZeroGrads()
		if err := net.Backward(grad); err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(loss) != math.Float64bits(wantLoss) {
			t.Fatalf("pass %d: loss %v, naive %v", pass, loss, wantLoss)
		}
		matsBitsEqual(t, "gradients", net.Grads(), wantGrads)
	}
}

// TestWorkspacesPerBatchShape checks that switching batch sizes mid-training
// (exactly what elastic repartitioning does) keeps each shape's workspace
// intact and correct.
func TestWorkspacesPerBatchShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := newNet(t, 5, 24, 3)
	for _, rows := range []int{4, 16, 4, 1, 16} {
		x, y := randBatch(rng, rows, 5, 3)
		wantLoss, wantGrads := naiveStep(t, net, x, y)
		out, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		loss, grad, err := net.SoftmaxLoss(out, y)
		if err != nil {
			t.Fatal(err)
		}
		net.ZeroGrads()
		if err := net.Backward(grad); err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(loss) != math.Float64bits(wantLoss) {
			t.Fatalf("rows=%d: loss %v, naive %v", rows, loss, wantLoss)
		}
		matsBitsEqual(t, "gradients", net.Grads(), wantGrads)
	}
}

// TestTrainStepZeroAllocs is the tentpole proof for the nn layer: once the
// per-shape workspaces exist, a full forward / loss / backward / flatten /
// optimizer step allocates nothing.
func TestTrainStepZeroAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates; alloc guards run in the non-race CI job")
	}
	rng := rand.New(rand.NewSource(21))
	net := newNet(t, 8, 32, 32, 5)
	opt, err := NewSGD(net.Params(), 0.05, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	x, y := randBatch(rng, 16, 8, 5)
	var flat []float64
	step := func() {
		out, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		_, grad, err := net.SoftmaxLoss(out, y)
		if err != nil {
			t.Fatal(err)
		}
		net.ZeroGrads()
		if err := net.Backward(grad); err != nil {
			t.Fatal(err)
		}
		flat = net.FlattenGrads(flat[:0])
		if err := net.LoadGrads(flat); err != nil {
			t.Fatal(err)
		}
		if err := opt.Step(net.Params(), net.Grads()); err != nil {
			t.Fatal(err)
		}
	}
	step() // warm the workspaces and the flat vector
	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Fatalf("%v allocs per training step, want 0", avg)
	}
}
