package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/elan-sys/elan/internal/tensor"
)

func newNet(t *testing.T, sizes ...int) *MLP {
	t.Helper()
	m, err := NewMLP(rand.New(rand.NewSource(42)), sizes)
	if err != nil {
		t.Fatalf("NewMLP: %v", err)
	}
	return m
}

func TestNewMLPValidation(t *testing.T) {
	if _, err := NewMLP(rand.New(rand.NewSource(1)), []int{4}); err == nil {
		t.Fatal("single-size MLP accepted")
	}
	if _, err := NewMLP(rand.New(rand.NewSource(1)), []int{4, 0, 2}); err == nil {
		t.Fatal("zero-width layer accepted")
	}
}

func TestForwardShapes(t *testing.T) {
	m := newNet(t, 3, 8, 4)
	x := tensor.MustNew(5, 3)
	out, err := m.Forward(x)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if out.Rows != 5 || out.Cols != 4 {
		t.Fatalf("output shape %dx%d, want 5x4", out.Rows, out.Cols)
	}
}

func TestBackwardBeforeForward(t *testing.T) {
	l, err := NewLinear(rand.New(rand.NewSource(1)), 2, 2)
	if err != nil {
		t.Fatalf("NewLinear: %v", err)
	}
	if _, err := l.Backward(tensor.MustNew(1, 2)); err == nil {
		t.Fatal("backward before forward accepted")
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	logits := tensor.MustNew(2, 4)
	loss, grad, err := SoftmaxCrossEntropy(logits, []int{0, 3})
	if err != nil {
		t.Fatalf("SoftmaxCrossEntropy: %v", err)
	}
	if math.Abs(loss-math.Log(4)) > 1e-9 {
		t.Fatalf("loss = %v, want ln4 = %v", loss, math.Log(4))
	}
	// Gradient rows sum to zero (softmax - onehot).
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 4; j++ {
			sum += grad.At(i, j)
		}
		if math.Abs(sum) > 1e-9 {
			t.Fatalf("grad row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxCrossEntropyValidation(t *testing.T) {
	logits := tensor.MustNew(2, 3)
	if _, _, err := SoftmaxCrossEntropy(logits, []int{0}); err == nil {
		t.Fatal("label count mismatch accepted")
	}
	if _, _, err := SoftmaxCrossEntropy(logits, []int{0, 5}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestGradientCheck(t *testing.T) {
	// Numerical gradient check of the full network loss.
	rng := rand.New(rand.NewSource(11))
	m := newNet(t, 3, 5, 3)
	x := tensor.MustNew(4, 3)
	x.Randn(rng, 1)
	labels := []int{0, 1, 2, 1}

	lossOf := func() float64 {
		out, err := m.Forward(x)
		if err != nil {
			t.Fatalf("forward: %v", err)
		}
		loss, _, err := SoftmaxCrossEntropy(out, labels)
		if err != nil {
			t.Fatalf("loss: %v", err)
		}
		return loss
	}

	// Analytic gradients.
	m.ZeroGrads()
	out, err := m.Forward(x)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	_, grad, err := SoftmaxCrossEntropy(out, labels)
	if err != nil {
		t.Fatalf("loss: %v", err)
	}
	if err := m.Backward(grad); err != nil {
		t.Fatalf("backward: %v", err)
	}
	analytic := m.FlattenGrads(nil)

	// Numerical gradients on a sample of parameters.
	params := m.Params()
	flatIdx := 0
	const eps = 1e-6
	checked := 0
	for _, p := range params {
		for i := range p.Data {
			if (flatIdx+i)%7 == 0 { // sample every 7th parameter
				orig := p.Data[i]
				p.Data[i] = orig + eps
				up := lossOf()
				p.Data[i] = orig - eps
				down := lossOf()
				p.Data[i] = orig
				num := (up - down) / (2 * eps)
				ana := analytic[flatIdx+i]
				if math.Abs(num-ana) > 1e-4*(1+math.Abs(num)) {
					t.Fatalf("gradient mismatch at %d: numeric %v analytic %v", flatIdx+i, num, ana)
				}
				checked++
			}
		}
		flatIdx += len(p.Data)
	}
	if checked < 5 {
		t.Fatalf("only %d gradients checked", checked)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := newNet(t, 2, 16, 2)
	opt, err := NewSGD(m.Params(), 0.1, 0.9)
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	// Linearly separable toy data.
	n := 64
	x := tensor.MustNew(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		labels[i] = cls
		x.Set(i, 0, float64(cls*2-1)+rng.NormFloat64()*0.3)
		x.Set(i, 1, rng.NormFloat64()*0.3)
	}
	var first, last float64
	for step := 0; step < 60; step++ {
		m.ZeroGrads()
		out, err := m.Forward(x)
		if err != nil {
			t.Fatalf("forward: %v", err)
		}
		loss, grad, err := SoftmaxCrossEntropy(out, labels)
		if err != nil {
			t.Fatalf("loss: %v", err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
		if err := m.Backward(grad); err != nil {
			t.Fatalf("backward: %v", err)
		}
		if err := opt.Step(m.Params(), m.Grads()); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	if last > first/4 {
		t.Fatalf("loss did not drop enough: %v -> %v", first, last)
	}
	out, _ := m.Forward(x)
	acc, err := Accuracy(out, labels)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if acc < 0.95 {
		t.Fatalf("accuracy = %v, want >= 0.95", acc)
	}
}

func TestAccuracyValidation(t *testing.T) {
	if _, err := Accuracy(tensor.MustNew(2, 2), []int{0}); err == nil {
		t.Fatal("label count mismatch accepted")
	}
}

func TestParamsRoundTrip(t *testing.T) {
	m := newNet(t, 3, 4, 2)
	flat := m.FlattenParams(nil)
	if len(flat) != m.NumParams() {
		t.Fatalf("flat len %d != NumParams %d", len(flat), m.NumParams())
	}
	m2 := newNet(t, 3, 4, 2)
	// Different seed paths would give identical nets here, so perturb m.
	flat[0] = 123.456
	if err := m.LoadParams(flat); err != nil {
		t.Fatalf("LoadParams: %v", err)
	}
	if err := m2.LoadParams(m.FlattenParams(nil)); err != nil {
		t.Fatalf("LoadParams m2: %v", err)
	}
	f2 := m2.FlattenParams(nil)
	for i := range flat {
		if flat[i] != f2[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
	if err := m.LoadParams(flat[:3]); err == nil {
		t.Fatal("short LoadParams accepted")
	}
	if err := m.LoadParams(append(flat, 1)); err == nil {
		t.Fatal("long LoadParams accepted")
	}
}

func TestGradsRoundTrip(t *testing.T) {
	m := newNet(t, 2, 3, 2)
	x := tensor.MustNew(4, 2)
	out, _ := m.Forward(x)
	_, grad, _ := SoftmaxCrossEntropy(out, []int{0, 1, 0, 1})
	if err := m.Backward(grad); err != nil {
		t.Fatalf("backward: %v", err)
	}
	flat := m.FlattenGrads(nil)
	m.ZeroGrads()
	if err := m.LoadGrads(flat); err != nil {
		t.Fatalf("LoadGrads: %v", err)
	}
	f2 := m.FlattenGrads(nil)
	for i := range flat {
		if flat[i] != f2[i] {
			t.Fatalf("grads round trip mismatch at %d", i)
		}
	}
}

func TestSGDValidation(t *testing.T) {
	m := newNet(t, 2, 2)
	if _, err := NewSGD(m.Params(), 0, 0.9); err == nil {
		t.Fatal("zero LR accepted")
	}
	if _, err := NewSGD(m.Params(), 0.1, 1.0); err == nil {
		t.Fatal("momentum 1.0 accepted")
	}
	opt, err := NewSGD(m.Params(), 0.1, 0.9)
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	if err := opt.Step(m.Params()[:1], m.Grads()); err == nil {
		t.Fatal("mismatched Step accepted")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	// One parameter, constant gradient 1: with momentum 0.5 and lr 1,
	// updates are 1, 1.5, 1.75, ...
	p := tensor.MustNew(1, 1)
	g := tensor.MustNew(1, 1)
	g.Data[0] = 1
	opt, err := NewSGD([]*tensor.Matrix{p}, 1, 0.5)
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	want := []float64{-1, -2.5, -4.25}
	for i, w := range want {
		if err := opt.Step([]*tensor.Matrix{p}, []*tensor.Matrix{g}); err != nil {
			t.Fatalf("Step: %v", err)
		}
		if math.Abs(p.Data[0]-w) > 1e-12 {
			t.Fatalf("after step %d: p = %v, want %v", i+1, p.Data[0], w)
		}
	}
}

func TestSGDStateRoundTrip(t *testing.T) {
	m := newNet(t, 2, 3, 2)
	opt, err := NewSGD(m.Params(), 0.1, 0.9)
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	// Take a step so the velocity is nonzero.
	x := tensor.MustNew(2, 2)
	out, _ := m.Forward(x)
	_, grad, _ := SoftmaxCrossEntropy(out, []int{0, 1})
	if err := m.Backward(grad); err != nil {
		t.Fatalf("backward: %v", err)
	}
	if err := opt.Step(m.Params(), m.Grads()); err != nil {
		t.Fatalf("step: %v", err)
	}
	state := opt.FlattenState(nil)
	if len(state) != opt.StateElements() {
		t.Fatalf("state len %d != %d", len(state), opt.StateElements())
	}
	opt2, err := NewSGD(m.Params(), 0.1, 0.9)
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	if err := opt2.LoadState(state); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	s2 := opt2.FlattenState(nil)
	for i := range state {
		if state[i] != s2[i] {
			t.Fatalf("state mismatch at %d", i)
		}
	}
}

func TestGradientLinearityProperty(t *testing.T) {
	// Property: gradients accumulated over two backward passes equal the
	// sum of gradients of each pass (linearity of accumulation).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewMLP(rng, []int{2, 4, 2})
		if err != nil {
			return false
		}
		x1 := tensor.MustNew(3, 2)
		x2 := tensor.MustNew(3, 2)
		x1.Randn(rng, 1)
		x2.Randn(rng, 1)
		labels := []int{0, 1, 0}

		runOnce := func(x *tensor.Matrix) []float64 {
			m.ZeroGrads()
			out, err := m.Forward(x)
			if err != nil {
				return nil
			}
			_, g, err := SoftmaxCrossEntropy(out, labels)
			if err != nil {
				return nil
			}
			if err := m.Backward(g); err != nil {
				return nil
			}
			return m.FlattenGrads(nil)
		}
		g1 := runOnce(x1)
		g2 := runOnce(x2)
		// Accumulate both.
		m.ZeroGrads()
		for _, x := range []*tensor.Matrix{x1, x2} {
			out, err := m.Forward(x)
			if err != nil {
				return false
			}
			_, g, err := SoftmaxCrossEntropy(out, labels)
			if err != nil {
				return false
			}
			if err := m.Backward(g); err != nil {
				return false
			}
		}
		acc := m.FlattenGrads(nil)
		for i := range acc {
			if math.Abs(acc[i]-(g1[i]+g2[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
