// Package nn is the pure-Go neural-network substrate: a small multilayer
// perceptron with ReLU activations and a softmax cross-entropy head, trained
// by SGD with momentum. It exists so that the batch-size / learning-rate
// experiments of the paper (Figures 5 and 18) run against genuine
// optimization dynamics rather than a fitted curve: the accuracy loss at
// large total batch sizes and its (partial) recovery under the linear
// scaling rule emerge from actual SGD on a real loss surface.
//
// The package also exposes the training state the elastic runtime needs to
// replicate: flattened parameters and optimizer velocity.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/elan-sys/elan/internal/tensor"
)

// linearWS is one Linear layer's scratch for a particular batch size:
// the workspace-owned copy of the input (so callers may mutate or reuse
// their batch between forward and backward without corrupting gradients),
// the forward activation, and the input-gradient buffer. Workspaces are
// cached per batch-row count; after the first step with a given shape the
// layer's forward and backward passes allocate nothing.
type linearWS struct {
	input  *tensor.Matrix // batch x in, owned copy of the forward input
	out    *tensor.Matrix // batch x out
	gradIn *tensor.Matrix // batch x in
}

// Linear is a fully connected layer y = xW + b.
type Linear struct {
	W, B  *tensor.Matrix // parameters
	GradW *tensor.Matrix // accumulated gradients
	GradB *tensor.Matrix
	gw    *tensor.Matrix    // in x out matmul scratch (batch-independent)
	gb    *tensor.Matrix    // 1 x out row-sum scratch
	ws    map[int]*linearWS // per-batch-shape workspaces, keyed by rows
	cur   *linearWS         // workspace of the most recent Forward
}

// NewLinear creates a layer with He-initialized weights.
func NewLinear(rng *rand.Rand, in, out int) (*Linear, error) {
	w, err := tensor.New(in, out)
	if err != nil {
		return nil, fmt.Errorf("nn: linear weights: %w", err)
	}
	w.Randn(rng, math.Sqrt(2.0/float64(in)))
	b, err := tensor.New(1, out)
	if err != nil {
		return nil, fmt.Errorf("nn: linear bias: %w", err)
	}
	return &Linear{
		W:     w,
		B:     b,
		GradW: tensor.MustNew(in, out),
		GradB: tensor.MustNew(1, out),
		gw:    tensor.MustNew(in, out),
		gb:    tensor.MustNew(1, out),
		ws:    make(map[int]*linearWS),
	}, nil
}

// wsFor returns (building on first use) the workspace for a batch of rows.
//
//elan:hotpath
func (l *Linear) wsFor(rows int) *linearWS {
	w := l.ws[rows]
	if w == nil {
		w = &linearWS{ //elan:vet-allow hotpathalloc — first-use workspace priming; steady state reuses it
			input:  tensor.MustNew(rows, l.W.Rows),
			out:    tensor.MustNew(rows, l.W.Cols),
			gradIn: tensor.MustNew(rows, l.W.Rows),
		}
		l.ws[rows] = w
	}
	return w
}

// Forward computes xW + b into the layer's workspace and caches a copy of
// x for the backward pass. The returned matrix is workspace-owned and
// valid until the next Forward with the same batch size.
//
//elan:hotpath
func (l *Linear) Forward(x *tensor.Matrix) (*tensor.Matrix, error) {
	if x.Cols != l.W.Rows {
		return nil, fmt.Errorf("nn: forward %dx%d through %dx%d layer", //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
			x.Rows, x.Cols, l.W.Rows, l.W.Cols)
	}
	w := l.wsFor(x.Rows)
	copy(w.input.Data, x.Data)
	if err := tensor.MatMulInto(w.out, w.input, l.W); err != nil {
		return nil, err
	}
	if err := w.out.AddRowVector(l.B); err != nil {
		return nil, err
	}
	l.cur = w
	return w.out, nil
}

// Backward accumulates parameter gradients and returns the gradient with
// respect to the layer input (workspace-owned, valid until the next
// Backward with the same batch size).
//
//elan:hotpath
func (l *Linear) Backward(grad *tensor.Matrix) (*tensor.Matrix, error) {
	w := l.cur
	if w == nil {
		return nil, fmt.Errorf("nn: backward before forward") //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
	}
	if err := tensor.MatMulATInto(l.gw, w.input, grad); err != nil {
		return nil, err
	}
	if err := l.GradW.Axpy(1, l.gw); err != nil {
		return nil, err
	}
	if err := grad.SumRowsInto(l.gb); err != nil {
		return nil, err
	}
	if err := l.GradB.Axpy(1, l.gb); err != nil {
		return nil, err
	}
	if err := tensor.MatMulBTInto(w.gradIn, grad, l.W); err != nil {
		return nil, err
	}
	return w.gradIn, nil
}

// MLP is a multilayer perceptron with ReLU between linear layers and raw
// logits at the output.
type MLP struct {
	layers []*Linear
	masks  []*tensor.Matrix         // ReLU masks of the most recent Forward
	maskWS map[int][]*tensor.Matrix // per-batch-shape mask buffers
	probs  map[int]*tensor.Matrix   // per-batch-shape softmax buffer
	params []*tensor.Matrix         // cached Params() result
	grads  []*tensor.Matrix         // cached Grads() result
	offs   []int                    // cached per-layer flat-gradient offsets
}

// NewMLP builds an MLP with the given layer sizes, e.g. {2, 64, 64, 3} for a
// 2-feature, 3-class network with two hidden layers of width 64.
func NewMLP(rng *rand.Rand, sizes []int) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("nn: need at least input and output sizes, got %v", sizes)
	}
	m := &MLP{
		maskWS: make(map[int][]*tensor.Matrix),
		probs:  make(map[int]*tensor.Matrix),
	}
	for i := 0; i+1 < len(sizes); i++ {
		l, err := NewLinear(rng, sizes[i], sizes[i+1])
		if err != nil {
			return nil, err
		}
		m.layers = append(m.layers, l)
	}
	return m, nil
}

// Forward runs the network and returns logits (workspace-owned; valid
// until the next Forward with the same batch size).
//
//elan:hotpath
func (m *MLP) Forward(x *tensor.Matrix) (*tensor.Matrix, error) {
	masks := m.maskWS[x.Rows]
	if masks == nil {
		masks = make([]*tensor.Matrix, len(m.layers)-1) //elan:vet-allow hotpathalloc — first-use workspace priming; steady state reuses it
		m.maskWS[x.Rows] = masks
	}
	h := x
	for i, l := range m.layers {
		var err error
		h, err = l.Forward(h)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d forward: %w", i, err) //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
		}
		if i < len(m.layers)-1 {
			if masks[i] == nil {
				masks[i] = tensor.MustNew(h.Rows, h.Cols)
			}
			if err := h.ReLUInto(masks[i]); err != nil {
				return nil, err
			}
		}
	}
	m.masks = masks
	return h, nil
}

// Backward propagates the loss gradient through the network, accumulating
// parameter gradients.
//
//elan:hotpath
func (m *MLP) Backward(grad *tensor.Matrix) error {
	return m.BackwardLayers(grad, nil)
}

// BackwardLayers is Backward with a per-layer completion hook: onLayer(i)
// runs as soon as layer i's parameter gradients are final, while layers
// i-1..0 still have backward compute ahead of them. Gradient bucketing
// hangs off this hook — the allreduce of already-finished layers overlaps
// the rest of the backward pass. Layers complete in descending index
// order. A nil onLayer makes it exactly Backward.
//
//elan:hotpath
func (m *MLP) BackwardLayers(grad *tensor.Matrix, onLayer func(layer int) error) error {
	g := grad
	for i := len(m.layers) - 1; i >= 0; i-- {
		var err error
		g, err = m.layers[i].Backward(g)
		if err != nil {
			return fmt.Errorf("nn: layer %d backward: %w", i, err) //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
		}
		if onLayer != nil {
			if err := onLayer(i); err != nil {
				return err
			}
		}
		if i > 0 {
			if err := g.Hadamard(m.masks[i-1]); err != nil {
				return err
			}
		}
	}
	return nil
}

// NumLayers returns the number of linear layers.
func (m *MLP) NumLayers() int { return len(m.layers) }

// layerOffsets returns (building once) the prefix offsets of each layer's
// gradients in the FlattenGrads order: layer i occupies [offs[i], offs[i+1]).
//
//elan:hotpath
func (m *MLP) layerOffsets() []int {
	if m.offs == nil {
		m.offs = make([]int, len(m.layers)+1) //elan:vet-allow hotpathalloc — first-use workspace priming; steady state reuses it
		off := 0
		for i, l := range m.layers {
			m.offs[i] = off
			off += l.GradW.Rows*l.GradW.Cols + l.GradB.Cols
		}
		m.offs[len(m.layers)] = off
	}
	return m.offs
}

// GradRange returns the [lo, hi) range layer's gradients occupy in the
// flattened gradient vector (FlattenGrads / LoadGrads order).
//
//elan:hotpath
func (m *MLP) GradRange(layer int) (int, int) {
	offs := m.layerOffsets()
	return offs[layer], offs[layer+1]
}

// FlattenLayerGrads copies one layer's gradients into its GradRange slice
// of flat, which must cover the full flattened gradient vector. Unlike
// FlattenGrads it touches only that layer's range, so a bucketing reducer
// can flatten each layer the moment its backward completes.
//
//elan:hotpath
func (m *MLP) FlattenLayerGrads(layer int, flat []float64) error {
	if layer < 0 || layer >= len(m.layers) {
		return fmt.Errorf("nn: layer %d out of [0, %d)", layer, len(m.layers)) //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
	}
	lo, hi := m.GradRange(layer)
	if len(flat) < hi {
		return fmt.Errorf("nn: flat gradient vector of %d values, need %d", len(flat), hi) //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
	}
	l := m.layers[layer]
	n := copy(flat[lo:hi], l.GradW.Data)
	copy(flat[lo+n:hi], l.GradB.Data)
	return nil
}

// ZeroGrads clears all accumulated gradients.
//
//elan:hotpath
func (m *MLP) ZeroGrads() {
	for _, l := range m.layers {
		l.GradW.Zero()
		l.GradB.Zero()
	}
}

// Params returns all parameter matrices in a stable order. The slice is
// built once and cached (the matrices are fixed at construction), so hot
// paths may call it every step without allocating; callers must not mutate
// the slice itself.
//
//elan:hotpath
func (m *MLP) Params() []*tensor.Matrix {
	if m.params == nil {
		for _, l := range m.layers {
			m.params = append(m.params, l.W, l.B)
		}
	}
	return m.params
}

// Grads returns all gradient matrices in the same order as Params, cached
// like Params.
//
//elan:hotpath
func (m *MLP) Grads() []*tensor.Matrix {
	if m.grads == nil {
		for _, l := range m.layers {
			m.grads = append(m.grads, l.GradW, l.GradB)
		}
	}
	return m.grads
}

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int { return tensor.NumElements(m.Params()...) }

// FlattenParams appends all parameters to dst.
func (m *MLP) FlattenParams(dst []float64) []float64 {
	return tensor.FlattenTo(dst, m.Params()...)
}

// LoadParams copies a flattened parameter vector into the network.
func (m *MLP) LoadParams(flat []float64) error {
	n, err := tensor.UnflattenFrom(flat, m.Params()...)
	if err != nil {
		return err
	}
	if n != len(flat) {
		return fmt.Errorf("nn: %d of %d values consumed", n, len(flat))
	}
	return nil
}

// FlattenGrads appends all gradients to dst.
//
//elan:hotpath
func (m *MLP) FlattenGrads(dst []float64) []float64 {
	return tensor.FlattenTo(dst, m.Grads()...)
}

// LoadGrads copies a flattened gradient vector into the network.
//
//elan:hotpath
func (m *MLP) LoadGrads(flat []float64) error {
	_, err := tensor.UnflattenFrom(flat, m.Grads()...)
	return err
}

// SoftmaxLoss computes the mean softmax cross-entropy of logits against
// integer labels using the network's per-batch-shape softmax buffer: after
// the first call with a given batch size it allocates nothing. The
// returned gradient is workspace-owned and reused by the next call with
// the same batch size.
//
//elan:hotpath
func (m *MLP) SoftmaxLoss(logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix, error) {
	p := m.probs[logits.Rows]
	if p == nil || p.Cols != logits.Cols {
		p = tensor.MustNew(logits.Rows, logits.Cols)
		m.probs[logits.Rows] = p
	}
	return softmaxCrossEntropyInto(p, logits, labels)
}

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits against
// integer labels and returns the loss and the gradient with respect to the
// logits (already divided by the batch size). It allocates a fresh gradient
// per call; the hot path uses MLP.SoftmaxLoss.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix, error) {
	if len(labels) != logits.Rows {
		return 0, nil, fmt.Errorf("nn: %d labels for %d rows", len(labels), logits.Rows)
	}
	return softmaxCrossEntropyInto(tensor.MustNew(logits.Rows, logits.Cols), logits, labels)
}

// softmaxCrossEntropyInto computes the loss and gradient into the
// caller-owned probs buffer (same shape as logits) and returns probs as
// the gradient.
//
//elan:hotpath
func softmaxCrossEntropyInto(probs, logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix, error) {
	if len(labels) != logits.Rows {
		return 0, nil, fmt.Errorf("nn: %d labels for %d rows", len(labels), logits.Rows) //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
	}
	copy(probs.Data, logits.Data)
	probs.SoftmaxRows()
	var loss float64
	grad := probs // reuse: grad = probs - onehot
	for i, y := range labels {
		if y < 0 || y >= logits.Cols {
			return 0, nil, fmt.Errorf("nn: label %d out of range [0,%d)", y, logits.Cols) //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
		}
		p := probs.At(i, y)
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		grad.Set(i, y, grad.At(i, y)-1)
	}
	n := float64(logits.Rows)
	loss /= n
	grad.Scale(1 / n)
	return loss, grad, nil
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Matrix, labels []int) (float64, error) {
	if len(labels) != logits.Rows {
		return 0, fmt.Errorf("nn: %d labels for %d rows", len(labels), logits.Rows)
	}
	correct := 0
	for i, y := range labels {
		best, bestV := 0, logits.At(i, 0)
		for j := 1; j < logits.Cols; j++ {
			if v := logits.At(i, j); v > bestV {
				best, bestV = j, v
			}
		}
		if best == y {
			correct++
		}
	}
	return float64(correct) / float64(len(labels)), nil
}

// SGD is stochastic gradient descent with momentum. Velocity is part of the
// training state replicated on elastic adjustments.
type SGD struct {
	LR       float64
	Momentum float64
	velocity []*tensor.Matrix
}

// NewSGD creates an optimizer for the given parameter shapes.
func NewSGD(params []*tensor.Matrix, lr, momentum float64) (*SGD, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("nn: non-positive learning rate %v", lr)
	}
	if momentum < 0 || momentum >= 1 {
		return nil, fmt.Errorf("nn: momentum %v out of [0,1)", momentum)
	}
	s := &SGD{LR: lr, Momentum: momentum}
	for _, p := range params {
		s.velocity = append(s.velocity, tensor.MustNew(p.Rows, p.Cols))
	}
	return s, nil
}

// Step applies one update: v = mu*v + g; p -= lr*v.
//
//elan:hotpath
func (s *SGD) Step(params, grads []*tensor.Matrix) error {
	if len(params) != len(s.velocity) || len(grads) != len(s.velocity) {
		return fmt.Errorf("nn: optimizer state mismatch: %d params, %d grads, %d velocities", //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
			len(params), len(grads), len(s.velocity))
	}
	for i, p := range params {
		v := s.velocity[i]
		v.Scale(s.Momentum)
		if err := v.Axpy(1, grads[i]); err != nil {
			return err
		}
		if err := p.Axpy(-s.LR, v); err != nil {
			return err
		}
	}
	return nil
}

// FlattenState appends the optimizer velocity to dst; part of the replicated
// GPU state.
func (s *SGD) FlattenState(dst []float64) []float64 {
	return tensor.FlattenTo(dst, s.velocity...)
}

// LoadState restores the optimizer velocity from a flattened vector.
func (s *SGD) LoadState(flat []float64) error {
	_, err := tensor.UnflattenFrom(flat, s.velocity...)
	return err
}

// StateElements returns the number of float64 values in the optimizer state.
func (s *SGD) StateElements() int { return tensor.NumElements(s.velocity...) }
