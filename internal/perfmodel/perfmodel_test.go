package perfmodel

import (
	"math/rand"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/models"
)

func TestAllreduceTimeBasics(t *testing.T) {
	cm := DefaultCommModel()
	if got := cm.AllreduceTime(1, 1<<20); got != 0 {
		t.Fatalf("single-worker allreduce = %v, want 0", got)
	}
	if got := cm.AllreduceTime(4, 0); got != 0 {
		t.Fatalf("zero-byte allreduce = %v, want 0", got)
	}
	small := cm.AllreduceTime(4, 1<<20)
	big := cm.AllreduceTime(4, 1<<28)
	if big <= small {
		t.Fatalf("allreduce not monotone in size: %v <= %v", big, small)
	}
}

func TestAllreduceCrossNodeSlower(t *testing.T) {
	cm := DefaultCommModel()
	bytes := int64(100 << 20)
	intra := cm.AllreduceTime(8, bytes)
	inter := cm.AllreduceTime(16, bytes)
	// Per-byte the 16-worker ring is slower because it crosses the network.
	if inter <= intra {
		t.Fatalf("16-worker allreduce %v not slower than 8-worker %v", inter, intra)
	}
}

func TestIterTimeValidation(t *testing.T) {
	p := Default()
	m := models.ResNet50()
	if _, err := p.IterTime(m, 0, 32); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := p.IterTime(m, 4, 0); err == nil {
		t.Fatal("zero batch accepted")
	}
}

func TestThroughputTBSValidation(t *testing.T) {
	p := Default()
	m := models.ResNet50()
	if _, err := p.ThroughputTBS(m, 3, 128); err == nil {
		t.Fatal("non-divisible TBS accepted")
	}
	if _, err := p.ThroughputTBS(m, 0, 128); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestStrongScalingRisesThenFalls(t *testing.T) {
	p := Default()
	for _, m := range models.Zoo() {
		tbs := 512
		if tbs/1 > m.MaxPerWorkerBatch {
			// start from the smallest feasible N
		}
		curve := p.StrongScalingCurve(m, tbs, PowersOfTwo(128))
		if curve.Len() < 3 {
			t.Fatalf("%s: strong curve too short (%d points)", m.Name, curve.Len())
		}
		// Find the peak; it must not be at the last point (falls eventually)
		// and throughput must strictly decrease after the peak.
		peak := 0
		for i := range curve.Y {
			if curve.Y[i] > curve.Y[peak] {
				peak = i
			}
		}
		if peak == curve.Len()-1 {
			t.Errorf("%s: strong scaling never falls (peak at last point N=%v)", m.Name, curve.X[peak])
		}
		for i := peak + 1; i < curve.Len(); i++ {
			if curve.Y[i] >= curve.Y[i-1] {
				t.Errorf("%s: throughput not decreasing after peak at N=%v", m.Name, curve.X[i])
			}
		}
	}
}

func TestWeakScalingNearLinear(t *testing.T) {
	p := Default()
	for _, m := range models.Zoo() {
		bs := m.MaxPerWorkerBatch / 2
		curve := p.WeakScalingCurve(m, bs, PowersOfTwo(64))
		if curve.Len() < 5 {
			t.Fatalf("%s: weak curve too short", m.Name)
		}
		// Throughput at 64 workers must be at least 60% of perfect linear
		// scaling from 1 worker (the paper's curves are near-linear).
		perfect := curve.Y[0] * 64
		if curve.Y[curve.Len()-1] < 0.6*perfect {
			t.Errorf("%s: weak scaling efficiency %.2f < 0.6", m.Name, curve.Y[curve.Len()-1]/perfect)
		}
		// And it must be monotonically increasing.
		for i := 1; i < curve.Len(); i++ {
			if curve.Y[i] <= curve.Y[i-1] {
				t.Errorf("%s: weak scaling not monotone at N=%v", m.Name, curve.X[i])
			}
		}
	}
}

func TestWeakScalingSlopeGrowsWithBatch(t *testing.T) {
	// Observation 2 of Section III: a larger per-worker batch yields a
	// steeper weak-scaling curve (higher per-worker throughput).
	p := Default()
	m := models.ResNet50()
	smallCurve := p.WeakScalingCurve(m, 8, []int{1, 64})
	largeCurve := p.WeakScalingCurve(m, 64, []int{1, 64})
	slopeSmall := (smallCurve.Y[1] - smallCurve.Y[0]) / 63
	slopeLarge := (largeCurve.Y[1] - largeCurve.Y[0]) / 63
	if slopeLarge <= slopeSmall {
		t.Fatalf("slope(bs=64)=%v <= slope(bs=8)=%v", slopeLarge, slopeSmall)
	}
}

func TestOptimalWorkersGrowsWithTBS(t *testing.T) {
	// Observation 2: the optimal strong-scaling worker count grows with TBS.
	p := Default()
	for _, m := range models.Zoo() {
		prev := 0
		for _, tbs := range []int{128, 512, 2048} {
			n, err := p.OptimalWorkers(m, tbs, 1024)
			if err != nil {
				t.Fatalf("%s TBS=%d: %v", m.Name, tbs, err)
			}
			if n < prev {
				t.Errorf("%s: optimal workers decreased: TBS=%d -> N=%d (prev %d)", m.Name, tbs, n, prev)
			}
			prev = n
		}
	}
}

func TestOptimalWorkersRespectsMemory(t *testing.T) {
	p := Default()
	m := models.ResNet50() // max 64 per worker
	// TBS 2048 with max 16 workers would need 128/worker: infeasible.
	if _, err := p.OptimalWorkers(m, 2048, 16); err == nil {
		t.Fatal("memory-infeasible config accepted")
	}
	n, err := p.OptimalWorkers(m, 2048, 1024)
	if err != nil {
		t.Fatalf("OptimalWorkers: %v", err)
	}
	if 2048/n > m.MaxPerWorkerBatch {
		t.Fatalf("optimal N=%d violates memory limit", n)
	}
}

func TestOptimalWorkersValidation(t *testing.T) {
	p := Default()
	if _, err := p.OptimalWorkers(models.ResNet50(), 0, 64); err == nil {
		t.Fatal("zero TBS accepted")
	}
}

func TestEpochTime(t *testing.T) {
	p := Default()
	m := models.ResNet50()
	et, err := p.EpochTime(m, 16, 32, m.DatasetSamples)
	if err != nil {
		t.Fatalf("EpochTime: %v", err)
	}
	it, _ := p.IterTime(m, 16, 32)
	iters := (m.DatasetSamples + 511) / 512
	if et != time.Duration(iters)*it {
		t.Fatalf("EpochTime = %v, want %v", et, time.Duration(iters)*it)
	}
	// Double the workers at the same per-worker batch: epoch must shrink.
	et2, _ := p.EpochTime(m, 32, 32, m.DatasetSamples)
	if et2 >= et {
		t.Fatalf("epoch time did not shrink: %v -> %v", et, et2)
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := PowersOfTwo(64)
	want := []int{1, 2, 4, 8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("PowersOfTwo = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PowersOfTwo = %v", got)
		}
	}
}

func TestJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := time.Second
	var minF, maxF float64 = 10, 0
	for i := 0; i < 1000; i++ {
		j := Jitter(rng, d, 0.05)
		f := float64(j) / float64(d)
		if f < minF {
			minF = f
		}
		if f > maxF {
			maxF = f
		}
		if j <= 0 {
			t.Fatal("jittered duration non-positive")
		}
	}
	if minF > 0.95 || maxF < 1.05 {
		t.Fatalf("jitter spread too small: [%v, %v]", minF, maxF)
	}
	if got := Jitter(rng, d, 0); got != d {
		t.Fatalf("zero-rel jitter changed value: %v", got)
	}
}

func TestResNetPaperConfiguration(t *testing.T) {
	// Section VI-B uses 16 workers at TBS 512, 32 at 1024, 64 at 2048,
	// guided by the strong-scaling curves of Figure 17. Our model must agree
	// that those worker counts do not exceed the optimum (resources are not
	// wasted at those operating points).
	p := Default()
	m := models.ResNet50()
	for _, c := range []struct{ tbs, workers int }{{512, 16}, {1024, 32}, {2048, 64}} {
		nOpt, err := p.OptimalWorkers(m, c.tbs, 1024)
		if err != nil {
			t.Fatalf("OptimalWorkers(%d): %v", c.tbs, err)
		}
		if nOpt < c.workers {
			t.Errorf("TBS=%d: optimal workers %d < paper's %d", c.tbs, nOpt, c.workers)
		}
	}
}

func TestIterTimeStraggler(t *testing.T) {
	p := Default()
	m := models.ResNet50()
	base, err := p.IterTime(m, 16, 32)
	if err != nil {
		t.Fatalf("IterTime: %v", err)
	}
	same, err := p.IterTimeStraggler(m, 16, 32, 1)
	if err != nil || same != base {
		t.Fatalf("factor-1 straggler = %v, want %v (%v)", same, base, err)
	}
	slow, err := p.IterTimeStraggler(m, 16, 32, 2)
	if err != nil {
		t.Fatalf("IterTimeStraggler: %v", err)
	}
	if slow <= base {
		t.Fatalf("straggler iter %v not slower than %v", slow, base)
	}
	// The whole job is bound by the slow rank: close to 2x for a
	// compute-bound configuration.
	ratio := float64(slow) / float64(base)
	if ratio < 1.5 || ratio > 2.2 {
		t.Fatalf("slowdown ratio %.2f outside [1.5, 2.2]", ratio)
	}
	if _, err := p.IterTimeStraggler(m, 16, 32, 0.5); err == nil {
		t.Fatal("factor < 1 accepted")
	}
	// Single worker: the factor applies directly.
	one, err := p.IterTimeStraggler(m, 1, 32, 3)
	if err != nil {
		t.Fatalf("IterTimeStraggler: %v", err)
	}
	oneBase, _ := p.IterTime(m, 1, 32)
	if one != 3*oneBase {
		t.Fatalf("single-worker straggler = %v, want %v", one, 3*oneBase)
	}
}

func TestHierAllreduceDegeneratesWithinNode(t *testing.T) {
	cm := DefaultCommModel()
	hier := cm
	hier.Hierarchical = true
	bytes := int64(100 << 20)
	for _, n := range []int{1, 2, 4, 8} {
		if got, want := hier.AllreduceTime(n, bytes), cm.AllreduceTime(n, bytes); got != want {
			t.Fatalf("N=%d: hierarchical %v != flat %v inside one node", n, got, want)
		}
	}
	if got := hier.HierAllreduceTime(1, bytes); got != 0 {
		t.Fatalf("single-worker hierarchical allreduce = %v, want 0", got)
	}
	if got := hier.HierAllreduceTime(16, 0); got != 0 {
		t.Fatalf("zero-byte hierarchical allreduce = %v, want 0", got)
	}
}

// nvlinkComm is the hierarchical allreduce's home regime: NVLink-class
// intra-node links over an IB network, a wide intra:inter bandwidth gap.
func nvlinkComm() CommModel {
	cm := DefaultCommModel()
	cm.IntraNodeBytesPerSec = 60e9
	cm.Hierarchical = true
	return cm
}

func TestHierAllreduceBeatsFlatAcrossNodes(t *testing.T) {
	hier := nvlinkComm()
	flat := hier
	flat.Hierarchical = false
	bytes := int64(100 << 20)
	for _, n := range []int{16, 32, 64} {
		ft := flat.AllreduceTime(n, bytes)
		ht := hier.AllreduceTime(n, bytes)
		if ht >= ft {
			t.Fatalf("N=%d: hierarchical %v not faster than flat %v", n, ht, ft)
		}
	}
	// The leader ring's inter-node cost depends on the node count, not the
	// worker count: growing from 2 to 8 nodes must add less absolute time
	// than the flat ring's equivalent growth.
	hierGrowth := hier.AllreduceTime(64, bytes) - hier.AllreduceTime(16, bytes)
	flatGrowth := flat.AllreduceTime(64, bytes) - flat.AllreduceTime(16, bytes)
	if hierGrowth >= flatGrowth {
		t.Fatalf("hierarchical growth %v not below flat growth %v", hierGrowth, flatGrowth)
	}
}

func TestHierAllreduceRegimeBoundary(t *testing.T) {
	// The model is honest about the trade: with PCIe-class intra links
	// (narrow intra:inter gap) and a huge payload, the leader's serial
	// gather/scatter overhead outweighs the inter-node savings and the
	// flat ring wins — hierarchy is not a free lunch.
	cm := DefaultCommModel() // intra 9e9 vs inter 4.2e9
	hier := cm
	hier.Hierarchical = true
	bytes := int64(400 << 20)
	if ht, ft := hier.AllreduceTime(16, bytes), cm.AllreduceTime(16, bytes); ht <= ft {
		t.Fatalf("narrow-gap bandwidth-bound regime: hierarchical %v unexpectedly beat flat %v", ht, ft)
	}
}

func TestHierWeakScalingNearLinear(t *testing.T) {
	// The multi-node weak-scaling claim: with the hierarchical allreduce on
	// NVLink-class intra links, every model in the zoo keeps >=60%
	// efficiency at 64 workers / 8 nodes (VGG-19's half-gigabyte gradient
	// is the floor-setter) and the hierarchical curve dominates the flat
	// one at every multi-node point.
	hierCM := nvlinkComm()
	flatCM := hierCM
	flatCM.Hierarchical = false
	flat, hier := New(flatCM), New(hierCM)
	for _, m := range models.Zoo() {
		bs := m.MaxPerWorkerBatch / 2
		fc := flat.WeakScalingCurve(m, bs, PowersOfTwo(64))
		hc := hier.WeakScalingCurve(m, bs, PowersOfTwo(64))
		if hc.Len() != fc.Len() || hc.Len() < 5 {
			t.Fatalf("%s: curve lengths %d/%d", m.Name, hc.Len(), fc.Len())
		}
		perfect := hc.Y[0] * 64
		if eff := hc.Y[hc.Len()-1] / perfect; eff < 0.6 {
			t.Errorf("%s: hierarchical weak efficiency %.2f < 0.6", m.Name, eff)
		}
		// Never worse at any multi-node point (ties happen where overlap
		// hides the allreduce entirely), strictly better at at least one.
		improved := false
		for i := range hc.Y {
			n := int(hc.X[i])
			if n <= hierCM.GPUsPerNode {
				if hc.Y[i] != fc.Y[i] {
					t.Errorf("%s: single-node point N=%d differs: %v vs %v", m.Name, n, hc.Y[i], fc.Y[i])
				}
				continue
			}
			if hc.Y[i] < fc.Y[i] {
				t.Errorf("%s: hierarchical throughput at N=%d (%v) below flat (%v)", m.Name, n, hc.Y[i], fc.Y[i])
			}
			if hc.Y[i] > fc.Y[i] {
				improved = true
			}
		}
		if !improved {
			// At a comfortable batch, overlap may hide the allreduce in
			// both configurations; shrink the batch until communication is
			// exposed and the hierarchy must show through.
			ft, err1 := flat.Throughput(m, 64, 1)
			ht, err2 := hier.Throughput(m, 64, 1)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: throughput at bs=1: %v / %v", m.Name, err1, err2)
			}
			if ht <= ft {
				t.Errorf("%s: hierarchical never beat flat, even comm-bound (bs=1: %v vs %v)", m.Name, ht, ft)
			}
		}
	}
}
