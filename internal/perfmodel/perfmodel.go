// Package perfmodel is the analytic performance model of data-parallel
// distributed training with collective communication. It predicts iteration
// time and training throughput for a (model, #workers, per-worker batch)
// configuration, reproducing the shapes of the paper's scaling study
// (Section III, Figures 3/4/17):
//
//   - strong scaling (fixed total batch size) rises and then falls: per-worker
//     compute shrinks toward the fixed kernel overhead while ring-allreduce
//     latency grows with the worker count;
//   - weak scaling (fixed per-worker batch) is near-linear with a slope that
//     increases with the per-worker batch size;
//   - the optimal worker count under strong scaling grows with the total
//     batch size, which is the quantity the hybrid scaling mechanism queries.
package perfmodel

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/elan-sys/elan/internal/metrics"
	"github.com/elan-sys/elan/internal/models"
)

// CommModel parametrizes the ring-allreduce cost.
type CommModel struct {
	// LatencyPerStep is the fixed cost of each of the 2(N-1) ring steps.
	LatencyPerStep time.Duration
	// IntraNodeBytesPerSec is the ring bandwidth when all workers share a
	// node (PCIe P2P / SHM mix).
	IntraNodeBytesPerSec float64
	// InterNodeBytesPerSec is the ring bandwidth when the ring crosses the
	// network; the slowest link bounds the ring.
	InterNodeBytesPerSec float64
	// GPUsPerNode controls when the ring starts crossing the network.
	GPUsPerNode int
	// Hierarchical selects the two-tier allreduce for multi-node
	// configurations: intra-node reduce-scatter/allgather rings at
	// intra-node bandwidth plus a single leaders-only ring exchange across
	// the network, mirroring internal/collective's topology-aware engine.
	// The flat ring pays 2(N-1) network-bound steps; the hierarchical one
	// pays 2(nodes-1), which is what restores near-linear weak scaling.
	Hierarchical bool
}

// DefaultCommModel matches the paper's testbed: 8 GPUs per node, 56 Gbps IB.
func DefaultCommModel() CommModel {
	return CommModel{
		LatencyPerStep:       300 * time.Microsecond,
		IntraNodeBytesPerSec: 9e9,
		InterNodeBytesPerSec: 4.2e9,
		GPUsPerNode:          8,
	}
}

// AllreduceTime returns the allreduce time for nWorkers workers and a
// payload of bytes: the flat ring by default, the two-tier hierarchical
// schedule when Hierarchical is set and the workers span nodes. A single
// worker communicates nothing.
func (cm CommModel) AllreduceTime(nWorkers int, bytes int64) time.Duration {
	if nWorkers <= 1 || bytes <= 0 {
		return 0
	}
	if cm.Hierarchical && cm.GPUsPerNode > 0 && nWorkers > cm.GPUsPerNode {
		return cm.HierAllreduceTime(nWorkers, bytes)
	}
	bw := cm.IntraNodeBytesPerSec
	if nWorkers > cm.GPUsPerNode {
		bw = cm.InterNodeBytesPerSec
	}
	steps := 2 * (nWorkers - 1)
	volume := 2 * float64(nWorkers-1) / float64(nWorkers) * float64(bytes)
	sec := volume / bw
	return time.Duration(steps)*cm.LatencyPerStep + time.Duration(sec*float64(time.Second))
}

// HierAllreduceTime models internal/collective's hierarchical allreduce:
// an intra-node ring reduce-scatter, member-to-leader chunk gathering, a
// leaders-only flat ring allreduce across the network, leader-to-member
// chunk return, and an intra-node ring allgather. Only the leader ring
// touches the slow inter-node links, and its cost scales with the node
// count rather than the worker count — adding GPUs inside nodes grows only
// the fast intra-node terms, the near-linear scaling regime the paper's
// testbed operates in (FireCaffe's observation). Within a single node it
// degenerates to the flat intra-node ring.
//
// The trade is explicit in the terms below: the hierarchy spends
// ~4(g-1)/g payload volumes on intra-node links (reduce-scatter, gather
// to the leader, scatter back, allgather) to shrink the latency term from
// 2(N-1) to ~2(g+nodes) steps and the inter-node volume from 2(N-1)/N to
// 2(nodes-1)/nodes payloads. It therefore wins when the intra:inter
// bandwidth gap is wide (NVLink-class intra links) or the payload is
// latency-bound, and can lose to the flat ring when intra links are barely
// faster than the network and the payload is huge.
func (cm CommModel) HierAllreduceTime(nWorkers int, bytes int64) time.Duration {
	if nWorkers <= 1 || bytes <= 0 {
		return 0
	}
	g := cm.GPUsPerNode
	if g <= 0 || nWorkers <= g {
		flat := cm
		flat.Hierarchical = false
		return flat.AllreduceTime(nWorkers, bytes)
	}
	nodes := (nWorkers + g - 1) / g
	b := float64(bytes)
	// Intra-node phases: ring reduce-scatter + allgather (2(g-1) steps,
	// 2(g-1)/g of the payload) plus the member<->leader chunk exchange
	// (2 steps, 2(g-1)/g of the payload), all on intra-node links.
	intraSteps := 2*(g-1) + 2
	intraSec := 4 * float64(g-1) / float64(g) * b / cm.IntraNodeBytesPerSec
	// Leader ring across the network: a flat ring over one rank per node,
	// carrying the full payload of node-partial sums.
	interSteps := 2 * (nodes - 1)
	interSec := 2 * float64(nodes-1) / float64(nodes) * b / cm.InterNodeBytesPerSec
	return time.Duration(intraSteps+interSteps)*cm.LatencyPerStep +
		time.Duration((intraSec+interSec)*float64(time.Second))
}

// Perf is the performance model. The zero value is not usable; construct one
// with New.
type Perf struct {
	comm CommModel
}

// New returns a performance model using the given communication model.
func New(comm CommModel) *Perf {
	return &Perf{comm: comm}
}

// Default returns a performance model with DefaultCommModel.
func Default() *Perf { return New(DefaultCommModel()) }

// IterTime predicts the wall time of one training iteration for nWorkers
// workers each computing perWorkerBatch samples. Compute and communication
// partially overlap according to the model's OverlapFraction.
func (p *Perf) IterTime(m models.Model, nWorkers, perWorkerBatch int) (time.Duration, error) {
	if nWorkers <= 0 {
		return 0, fmt.Errorf("perfmodel: non-positive worker count %d", nWorkers)
	}
	if perWorkerBatch <= 0 {
		return 0, fmt.Errorf("perfmodel: non-positive per-worker batch %d", perWorkerBatch)
	}
	compute := m.KernelOverhead + time.Duration(perWorkerBatch)*m.PerSampleTime
	comm := p.comm.AllreduceTime(nWorkers, m.GradBytes())
	// Only the backward half of compute can hide communication.
	hideable := time.Duration(m.OverlapFraction * float64(compute))
	exposed := comm - hideable
	if exposed < 0 {
		exposed = 0
	}
	return compute + exposed, nil
}

// IterTimeStraggler predicts the iteration time when the slowest worker
// computes slowestFactor times slower than its peers. Synchronous
// data-parallel training is bound by the slowest rank: the whole job waits
// at the allreduce, which is the degradation straggler mitigation
// (migrating the affected rank to a healthy device) removes.
func (p *Perf) IterTimeStraggler(m models.Model, nWorkers, perWorkerBatch int, slowestFactor float64) (time.Duration, error) {
	if slowestFactor < 1 {
		return 0, fmt.Errorf("perfmodel: slowest factor %v < 1", slowestFactor)
	}
	base, err := p.IterTime(m, nWorkers, perWorkerBatch)
	if err != nil {
		return 0, err
	}
	if nWorkers == 1 || slowestFactor == 1 {
		return time.Duration(float64(base) * slowestFactor), nil
	}
	// The straggler's compute stretches; communication structure is
	// unchanged. Recompute with the stretched compute on the critical path.
	compute := m.KernelOverhead + time.Duration(perWorkerBatch)*m.PerSampleTime
	stretched := time.Duration(float64(compute) * slowestFactor)
	comm := p.comm.AllreduceTime(nWorkers, m.GradBytes())
	hideable := time.Duration(m.OverlapFraction * float64(stretched))
	exposed := comm - hideable
	if exposed < 0 {
		exposed = 0
	}
	return stretched + exposed, nil
}

// Throughput predicts training throughput in samples/sec for nWorkers
// workers with perWorkerBatch samples each.
func (p *Perf) Throughput(m models.Model, nWorkers, perWorkerBatch int) (float64, error) {
	it, err := p.IterTime(m, nWorkers, perWorkerBatch)
	if err != nil {
		return 0, err
	}
	return float64(nWorkers*perWorkerBatch) / it.Seconds(), nil
}

// ThroughputTBS predicts throughput under strong scaling: a fixed total
// batch size divided across nWorkers. TBS must be divisible by nWorkers.
func (p *Perf) ThroughputTBS(m models.Model, nWorkers, totalBatch int) (float64, error) {
	if nWorkers <= 0 || totalBatch <= 0 {
		return 0, fmt.Errorf("perfmodel: invalid config N=%d TBS=%d", nWorkers, totalBatch)
	}
	if totalBatch%nWorkers != 0 {
		return 0, fmt.Errorf("perfmodel: TBS %d not divisible by %d workers", totalBatch, nWorkers)
	}
	return p.Throughput(m, nWorkers, totalBatch/nWorkers)
}

// OptimalWorkers returns the worker count in {1,2,4,...,maxWorkers} that
// maximizes strong-scaling throughput for the given total batch size. This
// is the N_opt of Algorithm 1, line 9. Only power-of-two counts that divide
// the total batch size and respect GPU memory are considered, matching the
// paper's configurations.
func (p *Perf) OptimalWorkers(m models.Model, totalBatch, maxWorkers int) (int, error) {
	if totalBatch <= 0 {
		return 0, fmt.Errorf("perfmodel: non-positive TBS %d", totalBatch)
	}
	if maxWorkers <= 0 {
		maxWorkers = 1
	}
	bestN, bestT := 0, -1.0
	for n := 1; n <= maxWorkers; n *= 2 {
		if totalBatch%n != 0 {
			continue
		}
		perWorker := totalBatch / n
		if perWorker > m.MaxPerWorkerBatch {
			continue // does not fit in GPU memory
		}
		t, err := p.Throughput(m, n, perWorker)
		if err != nil {
			return 0, err
		}
		if t > bestT {
			bestN, bestT = n, t
		}
	}
	if bestN == 0 {
		return 0, fmt.Errorf("perfmodel: no feasible worker count for %s TBS=%d max=%d",
			m.Name, totalBatch, maxWorkers)
	}
	return bestN, nil
}

// StrongScalingCurve evaluates throughput vs worker count at a fixed total
// batch size, skipping infeasible points (non-divisible or out of memory).
func (p *Perf) StrongScalingCurve(m models.Model, totalBatch int, workers []int) *metrics.Series {
	s := &metrics.Series{Name: fmt.Sprintf("%s strong TBS=%d", m.Name, totalBatch)}
	for _, n := range workers {
		if n <= 0 || totalBatch%n != 0 {
			continue
		}
		if totalBatch/n > m.MaxPerWorkerBatch {
			continue
		}
		t, err := p.ThroughputTBS(m, n, totalBatch)
		if err != nil {
			continue
		}
		s.Add(float64(n), t)
	}
	return s
}

// WeakScalingCurve evaluates throughput vs worker count at a fixed
// per-worker batch size.
func (p *Perf) WeakScalingCurve(m models.Model, perWorkerBatch int, workers []int) *metrics.Series {
	s := &metrics.Series{Name: fmt.Sprintf("%s weak bs/worker=%d", m.Name, perWorkerBatch)}
	for _, n := range workers {
		if n <= 0 {
			continue
		}
		t, err := p.Throughput(m, n, perWorkerBatch)
		if err != nil {
			continue
		}
		s.Add(float64(n), t)
	}
	return s
}

// PowersOfTwo returns {1, 2, 4, ..., <=max}.
func PowersOfTwo(max int) []int {
	var out []int
	for n := 1; n <= max; n *= 2 {
		out = append(out, n)
	}
	return out
}

// Jitter multiplies d by a normally distributed factor (mean 1, relative
// stddev rel) drawn from rng, clamped to stay positive. The measured-systems
// experiments use it to produce realistic error bars.
func Jitter(rng *rand.Rand, d time.Duration, rel float64) time.Duration {
	if rel <= 0 {
		return d
	}
	f := 1 + rng.NormFloat64()*rel
	if f < 0.05 {
		f = 0.05
	}
	return time.Duration(float64(d) * f)
}

// EpochTime predicts the wall time of one epoch over datasetSamples with the
// given configuration.
func (p *Perf) EpochTime(m models.Model, nWorkers, perWorkerBatch, datasetSamples int) (time.Duration, error) {
	it, err := p.IterTime(m, nWorkers, perWorkerBatch)
	if err != nil {
		return 0, err
	}
	tbs := nWorkers * perWorkerBatch
	iters := int(math.Ceil(float64(datasetSamples) / float64(tbs)))
	return time.Duration(iters) * it, nil
}
