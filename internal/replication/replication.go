// Package replication implements the paper's concurrent IO-free state
// replication mechanism (Section IV) and a naive baseline for ablation.
//
// Given the set of existing workers (each holding an identical copy of the
// training state, a property of data-parallel training) and the set of new
// workers, the planner selects for every new worker the nearest existing
// source in the hardware topology (P2P > SHM > NET) and schedules all pair
// transfers concurrently, serializing only the pairs that share a contended
// physical link (the socket-level QPI link on L3 paths, NICs on L4 paths).
// CPU state is replicated in parallel with GPU state and, being orders of
// magnitude smaller, is fully overlapped.
package replication

import (
	"fmt"
	"time"

	"github.com/elan-sys/elan/internal/topology"
)

// Pair is one planned replication: state flows Source -> Target.
type Pair struct {
	Source topology.GPUID
	Target topology.GPUID
	Level  topology.LinkLevel
	Via    topology.Transport
	// Contention is the shared-resource key; pairs with equal non-empty
	// keys must run sequentially.
	Contention string
}

// Plan is a scheduled set of replications.
type Plan struct {
	Pairs []Pair
	// GPUBytes and CPUBytes are the per-worker state sizes to move.
	GPUBytes int64
	CPUBytes int64
}

// NewPlan computes the replication plan for adding newWorkers to a job whose
// existing workers are existing. Every new worker gets its own source (the
// nearest existing worker), enabling concurrent transfers (Section IV-3).
func NewPlan(existing, newWorkers []topology.GPUID, gpuBytes, cpuBytes int64) (*Plan, error) {
	if len(existing) == 0 {
		return nil, fmt.Errorf("replication: no existing workers to replicate from")
	}
	if gpuBytes < 0 || cpuBytes < 0 {
		return nil, fmt.Errorf("replication: negative state size")
	}
	p := &Plan{GPUBytes: gpuBytes, CPUBytes: cpuBytes}
	for _, nw := range newWorkers {
		src, ok := topology.Nearest(nw, existing)
		if !ok {
			return nil, fmt.Errorf("replication: no source for %v", nw)
		}
		level := topology.Link(src, nw)
		p.Pairs = append(p.Pairs, Pair{
			Source:     src,
			Target:     nw,
			Level:      level,
			Via:        topology.TransportFor(level),
			Contention: topology.ContentionKey(src, nw),
		})
	}
	return p, nil
}

// NewNaivePlan is the ablation baseline: a single source (the first existing
// worker) replicates to every new worker sequentially over whatever link
// connects them — no topology awareness, no concurrency.
func NewNaivePlan(existing, newWorkers []topology.GPUID, gpuBytes, cpuBytes int64) (*Plan, error) {
	if len(existing) == 0 {
		return nil, fmt.Errorf("replication: no existing workers to replicate from")
	}
	src := existing[0]
	p := &Plan{GPUBytes: gpuBytes, CPUBytes: cpuBytes}
	for _, nw := range newWorkers {
		level := topology.Link(src, nw)
		p.Pairs = append(p.Pairs, Pair{
			Source:     src,
			Target:     nw,
			Level:      level,
			Via:        topology.TransportFor(level),
			Contention: "naive-single-source", // everything serializes
		})
	}
	return p, nil
}

// Duration computes the simulated completion time of the plan on cluster c:
// pairs in distinct contention domains run concurrently; pairs sharing a
// domain run back to back. CPU state moves over the control network (the
// paper uses a web socket) concurrently with GPU state and the slower of
// the two bounds each pair.
func (p *Plan) Duration(c *topology.Cluster) time.Duration {
	if len(p.Pairs) == 0 {
		return 0
	}
	// Finish time per contention domain; the empty key means "no shared
	// resource", which we give each pair its own domain for.
	domainBusy := make(map[string]time.Duration)
	var makespan time.Duration
	for i, pair := range p.Pairs {
		gpuT := c.TransferTime(pair.Source, pair.Target, p.GPUBytes)
		cpuT := c.TransportTime(topology.NET, p.CPUBytes)
		t := gpuT
		if cpuT > t {
			t = cpuT
		}
		key := pair.Contention
		if key == "" {
			key = fmt.Sprintf("free-%d", i)
		}
		start := domainBusy[key]
		finish := start + t
		domainBusy[key] = finish
		if finish > makespan {
			makespan = finish
		}
	}
	return makespan
}

// MaxPairTime returns the duration of the single slowest pair, i.e. the
// plan's lower bound given perfect concurrency.
func (p *Plan) MaxPairTime(c *topology.Cluster) time.Duration {
	var worst time.Duration
	for _, pair := range p.Pairs {
		t := c.TransferTime(pair.Source, pair.Target, p.GPUBytes)
		if t > worst {
			worst = t
		}
	}
	return worst
}

// Copier moves real bytes for in-process integration: the elastic runtime
// registers per-state-kind copy hooks and Execute invokes them pairwise.
// This mirrors the paper's hook API (Section V-A): the framework supplies
// functions that extract and install each kind of state.
type Copier struct {
	hooks map[string]Hook
	order []string
}

// Hook extracts state from the source worker and installs it into the
// target worker. Implementations are supplied by the framework integration.
type Hook struct {
	// Kind names the state (e.g. "model", "optimizer", "data", "runtime").
	Kind string
	// OnGPU reports whether the state lives in device memory (Table II).
	OnGPU bool
	// Copy performs the actual transfer between two worker indices.
	Copy func(srcWorker, dstWorker int) error
}

// NewCopier creates an empty hook registry.
func NewCopier() *Copier {
	return &Copier{hooks: make(map[string]Hook)}
}

// RegisterHook adds a state-replication hook. Registering the same kind
// twice replaces the hook (framework re-initialization).
func (c *Copier) RegisterHook(h Hook) error {
	if h.Kind == "" {
		return fmt.Errorf("replication: hook with empty kind")
	}
	if h.Copy == nil {
		return fmt.Errorf("replication: hook %q without copy function", h.Kind)
	}
	if _, exists := c.hooks[h.Kind]; !exists {
		c.order = append(c.order, h.Kind)
	}
	c.hooks[h.Kind] = h
	return nil
}

// Kinds returns the registered state kinds in registration order.
func (c *Copier) Kinds() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Execute runs every hook for the pair (srcWorker, dstWorker). GPU-resident
// and CPU-resident hooks are both executed; the timing overlap is accounted
// for by Plan.Duration, while Execute performs the real data movement.
func (c *Copier) Execute(srcWorker, dstWorker int) error {
	for _, kind := range c.order {
		h := c.hooks[kind]
		if err := h.Copy(srcWorker, dstWorker); err != nil {
			return fmt.Errorf("replication: hook %q: %w", kind, err)
		}
	}
	return nil
}
