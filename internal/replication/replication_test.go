package replication

import (
	"errors"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/topology"
)

func cluster(t *testing.T) *topology.Cluster {
	t.Helper()
	c, err := topology.NewCluster(topology.DefaultGeometry())
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func TestNewPlanPicksNearestSources(t *testing.T) {
	existing := []topology.GPUID{
		{Node: 0, Socket: 0, Switch: 0, Index: 0},
		{Node: 1, Socket: 0, Switch: 0, Index: 0},
	}
	newWorkers := []topology.GPUID{
		{Node: 0, Socket: 0, Switch: 0, Index: 1}, // L1 to existing[0]
		{Node: 1, Socket: 1, Switch: 0, Index: 0}, // L3 to existing[1]
	}
	p, err := NewPlan(existing, newWorkers, 100<<20, 64<<10)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	if len(p.Pairs) != 2 {
		t.Fatalf("pairs = %d", len(p.Pairs))
	}
	if p.Pairs[0].Source != existing[0] || p.Pairs[0].Via != topology.P2P {
		t.Fatalf("pair 0 = %+v", p.Pairs[0])
	}
	if p.Pairs[1].Source != existing[1] || p.Pairs[1].Via != topology.SHM {
		t.Fatalf("pair 1 = %+v", p.Pairs[1])
	}
}

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(nil, []topology.GPUID{{}}, 1, 1); err == nil {
		t.Fatal("empty existing set accepted")
	}
	if _, err := NewPlan([]topology.GPUID{{}}, nil, -1, 0); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestPlanDurationConcurrent(t *testing.T) {
	c := cluster(t)
	// Two L1 replications on different switches: fully concurrent, so the
	// plan takes one pair's time, not two.
	existing := []topology.GPUID{
		{Node: 0, Socket: 0, Switch: 0, Index: 0},
		{Node: 0, Socket: 1, Switch: 0, Index: 0},
	}
	newWorkers := []topology.GPUID{
		{Node: 0, Socket: 0, Switch: 0, Index: 1},
		{Node: 0, Socket: 1, Switch: 0, Index: 1},
	}
	p, err := NewPlan(existing, newWorkers, 1<<30, 64<<10)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	dur := p.Duration(c)
	single := p.MaxPairTime(c)
	if dur != single {
		t.Fatalf("concurrent plan = %v, want single-pair time %v", dur, single)
	}
}

func TestPlanDurationContentionSerializes(t *testing.T) {
	c := cluster(t)
	// Two L3 replications on the same node share the QPI link: they must
	// serialize (paper: "when multiple replications incur contention ... we
	// perform them in turn").
	existing := []topology.GPUID{
		{Node: 0, Socket: 0, Switch: 0, Index: 0},
		{Node: 0, Socket: 0, Switch: 0, Index: 1},
	}
	newWorkers := []topology.GPUID{
		{Node: 0, Socket: 1, Switch: 0, Index: 0},
		{Node: 0, Socket: 1, Switch: 0, Index: 1},
	}
	p, err := NewPlan(existing, newWorkers, 1<<30, 0)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	for _, pair := range p.Pairs {
		if pair.Level != topology.L3 {
			t.Fatalf("pair level = %v, want L3", pair.Level)
		}
	}
	dur := p.Duration(c)
	single := c.TransferTime(existing[0], newWorkers[0], 1<<30)
	if dur < 2*single-time.Millisecond {
		t.Fatalf("contended plan = %v, want ~2x single %v", dur, single)
	}
}

func TestNaivePlanSlower(t *testing.T) {
	c := cluster(t)
	// Existing workers on nodes 0 and 1; new workers land next to each of
	// them. The topology-aware plan uses two concurrent intra-node SHM
	// transfers; the naive plan pushes everything from existing[0], one
	// transfer crossing the network, all sequential.
	existing := []topology.GPUID{
		{Node: 0, Socket: 0, Switch: 0, Index: 0},
		{Node: 1, Socket: 0, Switch: 0, Index: 0},
	}
	newWorkers := []topology.GPUID{
		{Node: 0, Socket: 0, Switch: 1, Index: 0}, // L2 to existing[0]
		{Node: 1, Socket: 0, Switch: 1, Index: 0}, // L2 to existing[1]
	}
	aware, err := NewPlan(existing, newWorkers, 200<<20, 64<<10)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	naive, err := NewNaivePlan(existing, newWorkers, 200<<20, 64<<10)
	if err != nil {
		t.Fatalf("NewNaivePlan: %v", err)
	}
	if aware.Duration(c) >= naive.Duration(c) {
		t.Fatalf("topology-aware (%v) not faster than naive (%v)",
			aware.Duration(c), naive.Duration(c))
	}
}

func TestPaperExampleTwoParallelReplications(t *testing.T) {
	// Figure 9's scenario: E replicates from C (same socket), F from D
	// (same node), concurrently.
	a := topology.GPUID{Node: 0, Socket: 0, Switch: 0, Index: 0}
	b := topology.GPUID{Node: 0, Socket: 0, Switch: 0, Index: 1}
	cw := topology.GPUID{Node: 0, Socket: 1, Switch: 0, Index: 0}
	d := topology.GPUID{Node: 1, Socket: 0, Switch: 0, Index: 0}
	e := topology.GPUID{Node: 0, Socket: 1, Switch: 0, Index: 1}
	f := topology.GPUID{Node: 1, Socket: 0, Switch: 1, Index: 0}
	p, err := NewPlan([]topology.GPUID{a, b, cw, d}, []topology.GPUID{e, f}, 100<<20, 8)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	if p.Pairs[0].Source != cw {
		t.Fatalf("E's source = %v, want C", p.Pairs[0].Source)
	}
	if p.Pairs[1].Source != d {
		t.Fatalf("F's source = %v, want D", p.Pairs[1].Source)
	}
	clu := cluster(t)
	if p.Duration(clu) != p.MaxPairTime(clu) {
		t.Fatal("the two replications did not run concurrently")
	}
}

func TestEmptyPlanDuration(t *testing.T) {
	c := cluster(t)
	p := &Plan{}
	if p.Duration(c) != 0 {
		t.Fatal("empty plan has nonzero duration")
	}
}

func TestCopierHooks(t *testing.T) {
	c := NewCopier()
	if err := c.RegisterHook(Hook{Kind: "", Copy: func(a, b int) error { return nil }}); err == nil {
		t.Fatal("empty kind accepted")
	}
	if err := c.RegisterHook(Hook{Kind: "model"}); err == nil {
		t.Fatal("nil copy function accepted")
	}
	var calls []string
	mk := func(kind string) Hook {
		return Hook{Kind: kind, Copy: func(src, dst int) error {
			calls = append(calls, kind)
			return nil
		}}
	}
	for _, k := range []string{"model", "optimizer", "data", "runtime"} {
		if err := c.RegisterHook(mk(k)); err != nil {
			t.Fatalf("RegisterHook(%s): %v", k, err)
		}
	}
	if got := len(c.Kinds()); got != 4 {
		t.Fatalf("Kinds = %v", c.Kinds())
	}
	if err := c.Execute(0, 1); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(calls) != 4 || calls[0] != "model" || calls[3] != "runtime" {
		t.Fatalf("hook order = %v", calls)
	}
}

func TestCopierReplaceHook(t *testing.T) {
	c := NewCopier()
	v := 0
	if err := c.RegisterHook(Hook{Kind: "model", Copy: func(a, b int) error { v = 1; return nil }}); err != nil {
		t.Fatalf("RegisterHook: %v", err)
	}
	if err := c.RegisterHook(Hook{Kind: "model", Copy: func(a, b int) error { v = 2; return nil }}); err != nil {
		t.Fatalf("RegisterHook replace: %v", err)
	}
	if len(c.Kinds()) != 1 {
		t.Fatalf("Kinds = %v", c.Kinds())
	}
	if err := c.Execute(0, 1); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if v != 2 {
		t.Fatalf("v = %d, replacement not effective", v)
	}
}

func TestCopierHookError(t *testing.T) {
	c := NewCopier()
	boom := errors.New("boom")
	if err := c.RegisterHook(Hook{Kind: "model", Copy: func(a, b int) error { return boom }}); err != nil {
		t.Fatalf("RegisterHook: %v", err)
	}
	if err := c.Execute(0, 1); !errors.Is(err, boom) {
		t.Fatalf("Execute = %v, want boom", err)
	}
}
