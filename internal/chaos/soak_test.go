package chaos

import (
	"math"
	"testing"
)

// soak plays a randomized schedule to completion and returns the formatted
// event log and report.
func soak(t *testing.T, sched Schedule) (string, Report) {
	t.Helper()
	h, err := New(Config{Schedule: sched})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer h.Close()
	if err := h.Run(sched.Iters()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return FormatEvents(h.Events()), h.Report()
}

// TestChaosSoak500 replays a seeded 500-fault randomized schedule against a
// 4-worker fleet: the job must converge (replicas consistent, loss finite,
// at least the generator's floor of workers alive), every generated fault
// must be applicable when it fires, and no goroutines may leak. A second
// run with the same seed must produce a byte-identical fault-event log.
func TestChaosSoak500(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	guardGoroutines(t)
	const seed, faults, workers = 20260806, 500, 4
	sched := RandomSchedule(seed, faults, workers)
	if len(sched.Faults) < faults {
		t.Fatalf("schedule has %d faults, want >= %d", len(sched.Faults), faults)
	}

	log1, rep := soak(t, sched)
	if len(rep.FaultErrors) != 0 {
		t.Fatalf("%d inapplicable faults, first: %s", len(rep.FaultErrors), rep.FaultErrors[0])
	}
	if !rep.Consistent {
		t.Fatal("replicas diverged during soak")
	}
	if rep.FinalWorkers < 2 {
		t.Fatalf("FinalWorkers = %d, want >= 2 (generator floor)", rep.FinalWorkers)
	}
	if math.IsNaN(rep.FinalLoss) || math.IsInf(rep.FinalLoss, 0) {
		t.Fatalf("FinalLoss = %v", rep.FinalLoss)
	}
	if rep.Events < faults {
		t.Fatalf("logged %d events, want >= %d", rep.Events, faults)
	}

	log2, _ := soak(t, sched)
	if log1 != log2 {
		t.Fatal("fault-event logs differ across runs with the same seed")
	}
}
