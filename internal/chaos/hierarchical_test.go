package chaos

import (
	"math"
	"testing"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/telemetry"
	"github.com/elan-sys/elan/internal/topology"
)

// twoNodeCluster builds a 2-node × 2-GPU simulated cluster, so a 4-worker
// fleet always spans both nodes and every group reconstruction — including
// the 3-worker group after a crash sweep (placed 2+1) — is hierarchical.
func twoNodeCluster(t *testing.T) *topology.Cluster {
	t.Helper()
	geom := topology.DefaultGeometry()
	geom.Nodes, geom.SocketsPerNode, geom.SwitchesPerSock, geom.GPUsPerSwitch = 2, 1, 1, 2
	c, err := topology.NewCluster(geom)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

// TestHierarchicalGroupReconstruction replays a crash/rejoin schedule on a
// cluster-placed, bucketed fleet: every crash sweep and rejoin rebuilds the
// hierarchical group (re-reserving GPUs each time), training never step-
// fails, replicas stay bitwise consistent, and every allreduce span carries
// the hierarchical annotations — no reconstruction ever silently fell back
// to a flat group.
func TestHierarchicalGroupReconstruction(t *testing.T) {
	guardGoroutines(t)
	cl := twoNodeCluster(t)
	rec := telemetry.NewRecorder(clock.Wall{}, 1<<14)
	sched := Schedule{
		Seed: 11,
		Faults: []Fault{
			{Iter: 2, Kind: WorkerCrash, Target: "agent-1"},
			{Iter: 6, Kind: WorkerRestart, Target: "agent-1"},
			{Iter: 9, Kind: WorkerCrash, Target: "agent-3"},
			{Iter: 13, Kind: WorkerRestart, Target: "agent-3"},
			{Iter: 16, Kind: DropBurst, Rate: 0.2, Dur: 3},
		},
	}
	h, err := New(Config{
		Workers:     4,
		TotalBatch:  24,
		Schedule:    sched,
		Tracer:      rec,
		Cluster:     cl,
		BucketElems: 20,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer h.Close()
	if err := h.Run(sched.Iters()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := h.Report()
	if len(rep.FaultErrors) != 0 {
		t.Fatalf("fault errors: %v", rep.FaultErrors)
	}
	if rep.FinalWorkers != 4 {
		t.Fatalf("final workers = %d, want 4", rep.FinalWorkers)
	}
	if !rep.Consistent {
		t.Fatal("replicas diverged across hierarchical reconstructions")
	}
	if math.IsNaN(rep.FinalLoss) || math.IsInf(rep.FinalLoss, 0) {
		t.Fatalf("final loss = %v", rep.FinalLoss)
	}
	if free := cl.NumFree(); free != 0 {
		t.Fatalf("%d GPUs free with 4 workers active, want 0", free)
	}
	var reduces int
	for _, sp := range rec.Snapshot() {
		if sp.Name != "collective.allreduce" {
			continue
		}
		reduces++
		if link, ok := sp.Attr("link"); !ok || link != "L4" {
			t.Fatalf("allreduce span link = %q (ok=%v), want L4", link, ok)
		}
		if _, ok := sp.Attr("nodes"); !ok {
			t.Fatal("allreduce span missing hierarchical nodes attr")
		}
		if _, ok := sp.Attr("bucket"); !ok {
			t.Fatal("allreduce span missing bucket attr")
		}
	}
	if reduces == 0 {
		t.Fatal("no allreduce spans recorded")
	}
	h.Close()
	if free := cl.NumFree(); free != 4 {
		t.Fatalf("%d GPUs free after Close, want 4", free)
	}
}
