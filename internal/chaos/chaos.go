// Package chaos is a deterministic fault-injection harness for the elastic
// runtime, in the spirit of FoundationDB-style simulation testing: faults
// (worker crash/restart, AM crash and CAS-fenced recovery, network
// partitions, message-drop bursts, straggler latency) are expressed as a
// Schedule keyed by fleet iteration and replayed on virtual time
// (clock.Sim), so a run is cheap, aggressive and reproducible.
//
// Determinism contract: the fault-event log (Events/FormatEvents) is a pure
// function of the Schedule — two runs with the same schedule produce
// byte-identical logs. Runtime outcomes (losses, admission timing, how many
// coordination rounds were skipped) depend on goroutine interleaving and
// live in the Report instead.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Kind enumerates injectable fault kinds.
type Kind int

const (
	// WorkerCrash abruptly kills an active worker agent.
	WorkerCrash Kind = iota + 1
	// WorkerRestart rejoins a previously crashed worker under its old name.
	WorkerRestart
	// AMCrash kills the application master; its persisted state survives.
	AMCrash
	// AMRecover starts a successor AM that re-reads the state machine from
	// the store and fences the dead incarnation via CAS.
	AMRecover
	// Partition cuts all links between two named endpoint sets for Dur
	// iterations.
	Partition
	// DropBurst drops each message with probability Rate for Dur iterations.
	DropBurst
	// SlowLink adds Delay to every message to or from Target for Dur
	// iterations (a straggler).
	SlowLink
)

// String returns the stable log token for the kind.
func (k Kind) String() string {
	switch k {
	case WorkerCrash:
		return "worker.crash"
	case WorkerRestart:
		return "worker.restart"
	case AMCrash:
		return "am.crash"
	case AMRecover:
		return "am.recover"
	case Partition:
		return "net.partition"
	case DropBurst:
		return "net.drop"
	case SlowLink:
		return "net.slow"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one scheduled fault. It fires just before the fleet iteration
// Iter executes. Which fields matter depends on Kind.
type Fault struct {
	Iter   int
	Kind   Kind
	Target string        // WorkerCrash/WorkerRestart/SlowLink
	A, B   []string      // Partition sides
	Dur    int           // Partition/DropBurst/SlowLink: iterations the condition lasts
	Rate   float64       // DropBurst probability
	Delay  time.Duration // SlowLink added latency
}

// Schedule is a deterministic fault plan.
type Schedule struct {
	Seed   int64
	Faults []Fault // sorted by Iter; stable order within an iteration
}

// Iters returns the iteration count needed to play the whole schedule,
// including the tail of the last timed window, plus a little slack.
func (s Schedule) Iters() int {
	end := 0
	for _, f := range s.Faults {
		e := f.Iter + 1 + f.Dur
		if e > end {
			end = e
		}
	}
	return end + 2
}

// Event is one entry of the deterministic fault-event log.
type Event struct {
	Iter   int
	Detail string // stable "kind key=value ..." text
}

// FormatEvents renders events as one stable text line each — the artifact
// that must be byte-identical across runs with the same schedule.
func FormatEvents(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "iter=%04d %s\n", e.Iter, e.Detail)
	}
	return b.String()
}

// RandomSchedule generates a seeded schedule of approximately targetEvents
// faults against a fleet of workers agents named agent-0..agent-(n-1). The
// generator maintains its own applicability model — at least two workers
// stay alive, restarts only target crashed workers, AM crash/recover
// alternate, and network windows do not overlap — so every generated fault
// is applicable when it fires. The result is a pure function of the inputs.
func RandomSchedule(seed int64, targetEvents, workers int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	var faults []Fault
	crashed := make(map[string]bool)
	alive := workers
	amDown := false
	netBusyUntil := 0
	slowBusyUntil := 0
	endpoints := []string{"fleet-lead", "fleet-sched", "fleet-am"}

	for it := 1; len(faults) < targetEvents; it++ {
		if rng.Float64() > 0.5 {
			continue // quiet iteration
		}
		var applicable []Kind
		if alive > 2 {
			applicable = append(applicable, WorkerCrash)
		}
		if len(crashed) > 0 {
			applicable = append(applicable, WorkerRestart)
		}
		if amDown {
			applicable = append(applicable, AMRecover)
		} else {
			applicable = append(applicable, AMCrash)
		}
		if it >= netBusyUntil {
			applicable = append(applicable, Partition, DropBurst)
		}
		if it >= slowBusyUntil {
			applicable = append(applicable, SlowLink)
		}
		k := applicable[rng.Intn(len(applicable))]
		f := Fault{Iter: it, Kind: k}
		switch k {
		case WorkerCrash:
			// Pick a live worker deterministically: candidates sorted.
			var cands []string
			for i := 0; i < workers; i++ {
				name := fmt.Sprintf("agent-%d", i)
				if !crashed[name] {
					cands = append(cands, name)
				}
			}
			sort.Strings(cands)
			f.Target = cands[rng.Intn(len(cands))]
			crashed[f.Target] = true
			alive--
		case WorkerRestart:
			var cands []string
			for name := range crashed {
				cands = append(cands, name)
			}
			sort.Strings(cands)
			f.Target = cands[rng.Intn(len(cands))]
			delete(crashed, f.Target)
			alive++
		case AMCrash:
			amDown = true
		case AMRecover:
			amDown = false
		case Partition:
			f.A = []string{"fleet-lead"}
			f.B = []string{"fleet-am"}
			f.Dur = 1 + rng.Intn(3)
			netBusyUntil = it + f.Dur + 1
		case DropBurst:
			f.Rate = 0.2 + 0.3*rng.Float64()
			f.Dur = 1 + rng.Intn(3)
			netBusyUntil = it + f.Dur + 1
		case SlowLink:
			f.Target = endpoints[rng.Intn(len(endpoints))]
			f.Delay = time.Duration(1+rng.Intn(5)) * time.Millisecond
			f.Dur = 1 + rng.Intn(3)
			slowBusyUntil = it + f.Dur + 1
		}
		faults = append(faults, f)
	}
	return Schedule{Seed: seed, Faults: faults}
}
