package chaos

import (
	"fmt"
	"strings"
	"time"

	"github.com/elan-sys/elan/internal/checkpoint"
	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/coord"
	"github.com/elan-sys/elan/internal/data"
	"github.com/elan-sys/elan/internal/store"
	"github.com/elan-sys/elan/internal/telemetry"
	"github.com/elan-sys/elan/internal/topology"
	"github.com/elan-sys/elan/internal/transport"
	"github.com/elan-sys/elan/internal/worker"
)

// Config sizes the rig the schedule runs against. The zero value selects a
// 4-worker fleet with a total batch of 24 — divisible by every worker count
// the schedule generator can reach, so elastic repartitioning never fails
// on divisibility.
type Config struct {
	Workers    int     // default 4
	TotalBatch int     // default 24
	LR         float64 // default 0.05
	Seed       int64   // model/data seed (not the fault seed); default 21
	Schedule   Schedule
	Metrics    *telemetry.Registry // optional; harness counters land here
	Tracer     telemetry.Tracer    // optional
	// Cluster places the fleet on simulated GPUs: group reconstruction
	// after every crash, rejoin and adjustment then re-reserves GPUs and
	// rebuilds the topology-aware (possibly hierarchical) collective.
	Cluster *topology.Cluster
	// BucketElems enables gradient bucketing in the fleet's reducers.
	BucketElems int
	// Flight, when set, receives every finished span from the fleet's
	// tracer (if that tracer is a *telemetry.Recorder) plus a chaos marker
	// event per injected fault, and is dumped automatically on each fault
	// so the recent span history around a disruption survives.
	Flight *telemetry.FlightRecorder
	// Checkpoints, when non-nil, wires the fleet to a delta checkpoint
	// store and Run saves into it every CheckpointEvery iterations —
	// including, under an injected store crash, mid-save failures whose
	// recovery the delta tests assert on. CheckpointEvery <= 0 disables
	// the periodic saves (explicit SaveCheckpoint calls still work).
	Checkpoints     *checkpoint.DeltaStore
	CheckpointEvery int
}

// Harness owns a fully wired rig — sim clock, bus with the fault hook
// installed, store, fleet — and replays the schedule against it. The
// exported fields are live handles for tests and drivers (request a
// scale-out mid-run, inspect the store, assert on fleet state).
type Harness struct {
	Fleet *worker.Fleet
	Bus   *transport.Bus
	Sim   *clock.Sim
	Store *store.Store

	cfg      Config
	inj      *Injector
	stopAuto func()

	iter      int // absolute iteration counter, survives across Run calls
	cursor    int // next schedule fault to apply
	windows   []window
	events    []Event
	losses    []float64
	faultErrs []string
	oldAMs    []*coord.AM
	mFaults   *telemetry.Counter

	ckptSaves int      // committed periodic delta saves
	ckptErrs  []string // failed periodic saves (e.g. injected store crashes)
}

// window is an open timed fault awaiting its end iteration.
type window struct {
	expire int
	fault  Fault
}

// New builds the rig and installs the schedule. Close releases it.
func New(cfg Config) (*Harness, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.TotalBatch <= 0 {
		cfg.TotalBatch = 24
	}
	if cfg.LR == 0 {
		cfg.LR = 0.05
	}
	if cfg.Seed == 0 {
		cfg.Seed = 21
	}
	sim := clock.NewSim(time.Unix(0, 0))
	stopAuto := sim.AutoAdvance(0)
	busCfg := transport.DefaultBusConfig()
	busCfg.Clock = sim
	busCfg.Tracer = cfg.Tracer
	busCfg.Metrics = cfg.Metrics
	bus := transport.NewBus(busCfg)
	inj := NewInjector(cfg.Schedule.Seed)
	bus.SetFaultHook(inj.Fate)
	st := store.New()
	ds, err := data.GenGaussianMixture(cfg.Seed, 1024, 4, 3)
	if err != nil {
		stopAuto()
		bus.Close()
		return nil, err
	}
	fleet, err := worker.NewFleet(worker.FleetConfig{
		Dataset:     ds,
		LayerSizes:  []int{4, 16, 3},
		Workers:     cfg.Workers,
		TotalBatch:  cfg.TotalBatch,
		LR:          cfg.LR,
		Momentum:    0.9,
		Seed:        cfg.Seed,
		Bus:         bus,
		Clock:       sim,
		Store:       st,
		Tracer:      cfg.Tracer,
		Metrics:     cfg.Metrics,
		Cluster:     cfg.Cluster,
		BucketElems: cfg.BucketElems,
		Flight:      cfg.Flight,
		Checkpoints: cfg.Checkpoints,
	})
	if err != nil {
		stopAuto()
		bus.Close()
		return nil, err
	}
	h := &Harness{
		Fleet:    fleet,
		Bus:      bus,
		Sim:      sim,
		Store:    st,
		cfg:      cfg,
		inj:      inj,
		stopAuto: stopAuto,
		mFaults:  cfg.Metrics.Counter("chaos_faults_injected_total"),
	}
	if err := fleet.Start(nil); err != nil {
		h.Close()
		return nil, err
	}
	return h, nil
}

// Run executes iters training iterations, applying scheduled faults as
// their iterations come due. The absolute iteration counter persists across
// calls, so callers can interleave Run with direct fleet operations (e.g.
// request a scale-out, then Run until it is admitted) without replaying
// faults.
func (h *Harness) Run(iters int) error {
	for end := h.iter + iters; h.iter < end; h.iter++ {
		h.applyDue()
		loss, err := h.Fleet.Step()
		if err != nil {
			return fmt.Errorf("chaos: step %d: %w", h.iter, err)
		}
		h.losses = append(h.losses, loss)
		h.maybeCheckpoint()
	}
	return nil
}

// maybeCheckpoint runs the periodic delta save. Save timing is a pure
// function of the iteration counter, so the ckpt.save log lines stay
// byte-comparable across same-schedule runs; a failed save (a fault, not a
// schedule event) is reported, never logged.
func (h *Harness) maybeCheckpoint() {
	every := h.cfg.CheckpointEvery
	if h.cfg.Checkpoints == nil || every <= 0 || (h.iter+1)%every != 0 {
		return
	}
	h.log("ckpt.save")
	if _, err := h.Fleet.SaveCheckpoint(); err != nil {
		h.ckptErrs = append(h.ckptErrs, err.Error())
		return
	}
	h.ckptSaves++
}

// applyDue closes expired fault windows, then applies every scheduled fault
// whose iteration has arrived. Both sets — and therefore the event log —
// are pure functions of the schedule.
func (h *Harness) applyDue() {
	keep := h.windows[:0]
	for _, w := range h.windows {
		if w.expire > h.iter {
			keep = append(keep, w)
			continue
		}
		switch w.fault.Kind {
		case Partition:
			h.inj.Heal()
			h.log("net.heal")
		case DropBurst:
			h.inj.SetDropRate(0)
			h.log("net.drop.end")
		case SlowLink:
			h.inj.SetSlow(w.fault.Target, 0)
			h.log("net.slow.end target=" + w.fault.Target)
		}
	}
	h.windows = keep
	for h.cursor < len(h.cfg.Schedule.Faults) && h.cfg.Schedule.Faults[h.cursor].Iter <= h.iter {
		f := h.cfg.Schedule.Faults[h.cursor]
		h.cursor++
		h.apply(f)
	}
}

// apply injects one fault. The event is logged from schedule fields alone;
// a runtime refusal (e.g. crashing an already-crashed worker in a
// hand-written schedule) is recorded in the report, not the log.
func (h *Harness) apply(f Fault) {
	h.mFaults.Inc()
	// Mark the fault on the flight recorder's timeline and freeze the recent
	// span history before the fault lands (nil-safe; no-op when unset). The
	// dump itself depends on goroutine scheduling and must never feed the
	// byte-compared event log.
	h.cfg.Flight.RecordEvent("chaos", f.Kind.String()+" iter="+fmt.Sprint(f.Iter), h.Sim.Now())
	h.cfg.Flight.DumpNow(f.Kind.String())
	switch f.Kind {
	case WorkerCrash:
		h.log("worker.crash target=" + f.Target)
		h.noteErr(h.Fleet.CrashWorker(f.Target))
	case WorkerRestart:
		h.log("worker.restart target=" + f.Target)
		h.noteErr(h.Fleet.RejoinWorker(f.Target))
	case AMCrash:
		h.log("am.crash")
		old, err := h.Fleet.CrashAM()
		h.noteErr(err)
		if old != nil {
			h.oldAMs = append(h.oldAMs, old)
		}
	case AMRecover:
		h.log("am.recover")
		h.noteErr(h.Fleet.RecoverAM())
	case Partition:
		h.log(fmt.Sprintf("net.partition a=%s b=%s dur=%d",
			strings.Join(f.A, ","), strings.Join(f.B, ","), f.Dur))
		h.inj.Partition(f.A, f.B)
		h.windows = append(h.windows, window{expire: f.Iter + f.Dur, fault: f})
	case DropBurst:
		h.log(fmt.Sprintf("net.drop rate=%.3f dur=%d", f.Rate, f.Dur))
		h.inj.SetDropRate(f.Rate)
		h.windows = append(h.windows, window{expire: f.Iter + f.Dur, fault: f})
	case SlowLink:
		h.log(fmt.Sprintf("net.slow target=%s delay=%s dur=%d", f.Target, f.Delay, f.Dur))
		h.inj.SetSlow(f.Target, f.Delay)
		h.windows = append(h.windows, window{expire: f.Iter + f.Dur, fault: f})
	default:
		h.noteErr(fmt.Errorf("chaos: unknown fault kind %v", f.Kind))
	}
}

func (h *Harness) log(detail string) {
	h.events = append(h.events, Event{Iter: h.iter, Detail: detail})
}

func (h *Harness) noteErr(err error) {
	if err != nil {
		h.faultErrs = append(h.faultErrs, err.Error())
	}
}

// Events returns a copy of the deterministic fault-event log.
func (h *Harness) Events() []Event {
	return append([]Event(nil), h.events...)
}

// OldAMs returns the crashed AM incarnations, for fencing assertions.
func (h *Harness) OldAMs() []*coord.AM {
	return append([]*coord.AM(nil), h.oldAMs...)
}

// Report summarizes runtime outcomes. Unlike the event log these depend on
// scheduling nondeterminism and must not be compared byte-for-byte.
type Report struct {
	Iterations       int
	Events           int
	FaultErrors      []string
	FinalWorkers     int
	FinalLoss        float64
	Consistent       bool
	AMDown           bool
	CheckpointSaves  int
	CheckpointErrors []string
	CheckpointSeq    int64
}

// Report captures the current runtime outcome summary.
func (h *Harness) Report() Report {
	r := Report{
		Iterations:       h.iter,
		Events:           len(h.events),
		FaultErrors:      append([]string(nil), h.faultErrs...),
		FinalWorkers:     h.Fleet.NumWorkers(),
		Consistent:       h.Fleet.ReplicasConsistent(),
		AMDown:           h.Fleet.AMDown(),
		CheckpointSaves:  h.ckptSaves,
		CheckpointErrors: append([]string(nil), h.ckptErrs...),
	}
	if h.cfg.Checkpoints != nil {
		r.CheckpointSeq = h.Fleet.CheckpointSeq()
	}
	if len(h.losses) > 0 {
		r.FinalLoss = h.losses[len(h.losses)-1]
	}
	return r
}

// Close tears the rig down: fleet, bus, then the sim-clock driver (last, so
// goroutines sleeping on virtual time can still be woken to exit).
func (h *Harness) Close() {
	h.Fleet.Close()
	h.Bus.Close()
	h.stopAuto()
}
