package chaos

import (
	"strings"
	"testing"

	"github.com/elan-sys/elan/internal/checkpoint"
)

// TestChaosDeltaCheckpointRecovery is the tentpole acceptance scenario run
// through the harness: periodic delta saves ride the chaos run, a store
// crash is injected mid-save (chunks written, manifest never committed),
// the AM crashes and a successor recovers — and the fleet restores
// bit-identical to the last *committed* manifest. Bit-identity is proven
// through the chain itself: a save taken immediately after the restore
// must find zero dirty chunks against the committed hashes.
func TestChaosDeltaCheckpointRecovery(t *testing.T) {
	guardGoroutines(t)
	ds := checkpoint.NewDeltaStore(checkpoint.DeltaConfig{ChunkElems: 16, CompactEvery: 100})
	h, err := New(Config{
		Workers: 2,
		Schedule: Schedule{Seed: 5, Faults: []Fault{
			{Iter: 6, Kind: AMCrash},
			{Iter: 7, Kind: AMRecover},
		}},
		Checkpoints:     ds,
		CheckpointEvery: 3,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer h.Close()

	// Iters 0..4: one periodic save commits after iter 2.
	if err := h.Run(5); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := h.Fleet.CheckpointSeq(); got == 0 {
		t.Fatal("no committed checkpoint after first window")
	}
	committedSeq := h.Fleet.CheckpointSeq()

	// The next periodic save (after iter 5) dies between its chunk writes
	// and the manifest commit; the AM crashes at 6 and recovers at 7.
	ds.InjectCrash(1)
	if err := h.Run(3); err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := h.Report()
	if len(r.CheckpointErrors) != 1 || !strings.Contains(r.CheckpointErrors[0], checkpoint.ErrCrashInjected.Error()) {
		t.Fatalf("CheckpointErrors = %v, want one injected crash", r.CheckpointErrors)
	}
	if h.Fleet.CheckpointSeq() != committedSeq {
		t.Fatalf("torn save advanced the committed seq: %d -> %d", committedSeq, h.Fleet.CheckpointSeq())
	}
	if head, ok := ds.LastSeq("fleet"); !ok || head != committedSeq {
		t.Fatalf("store chain head = %d (ok=%v), want last commit %d", head, ok, committedSeq)
	}

	// Recover from the manifest chain, then prove bit-identity: re-saving
	// the restored state finds every chunk clean against the committed
	// chain. The torn save's orphan chunks are invisible.
	rs, err := h.Fleet.RestoreCheckpoint()
	if err != nil {
		t.Fatalf("RestoreCheckpoint: %v", err)
	}
	if rs.Seq != committedSeq {
		t.Fatalf("restored seq %d, want %d", rs.Seq, committedSeq)
	}
	st, err := h.Fleet.SaveCheckpoint()
	if err != nil {
		t.Fatalf("post-restore save: %v", err)
	}
	if st.ChunksDirty != 0 || st.BytesWritten != 0 {
		t.Fatalf("restored state differs from committed chain: %+v", st)
	}

	// Training continues, and the next periodic save commits cleanly.
	if err := h.Run(3); err != nil {
		t.Fatalf("Run after restore: %v", err)
	}
	r = h.Report()
	if !r.Consistent {
		t.Fatal("replicas inconsistent after delta recovery")
	}
	if r.AMDown {
		t.Fatal("AM still down")
	}
	if r.CheckpointSeq <= committedSeq {
		t.Fatalf("no clean commit after recovery: seq %d", r.CheckpointSeq)
	}
	if r.CheckpointSaves < 2 {
		t.Fatalf("CheckpointSaves = %d, want >= 2", r.CheckpointSaves)
	}
}

// TestChaosCheckpointEventsDeterministic: ckpt.save lines are schedule
// functions (iteration cadence), so two same-config runs — even with a
// fault storm — produce byte-identical event logs including the saves.
func TestChaosCheckpointEventsDeterministic(t *testing.T) {
	guardGoroutines(t)
	run := func() string {
		t.Helper()
		h, err := New(Config{
			Workers: 2,
			Schedule: Schedule{Seed: 11, Faults: []Fault{
				{Iter: 1, Kind: WorkerCrash, Target: "agent-1"},
				{Iter: 3, Kind: WorkerRestart, Target: "agent-1"},
			}},
			Checkpoints:     checkpoint.NewDeltaStore(checkpoint.DeltaConfig{ChunkElems: 16}),
			CheckpointEvery: 2,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer h.Close()
		if err := h.Run(6); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return FormatEvents(h.Events())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("event logs differ:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, "ckpt.save") {
		t.Fatalf("no ckpt.save events logged:\n%s", a)
	}
}
