package chaos

import (
	"errors"
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/coord"
	"github.com/elan-sys/elan/internal/telemetry"
)

// guardGoroutines fails the test if goroutines outlive the harness teardown.
func guardGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

func TestRandomScheduleDeterministic(t *testing.T) {
	a := RandomSchedule(42, 100, 4)
	b := RandomSchedule(42, 100, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := RandomSchedule(43, 100, 4)
	if reflect.DeepEqual(a.Faults, c.Faults) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a.Faults) < 100 {
		t.Fatalf("schedule has %d faults, want >= 100", len(a.Faults))
	}
	// Faults are ordered and the end of the schedule is past the last fault.
	for i := 1; i < len(a.Faults); i++ {
		if a.Faults[i].Iter < a.Faults[i-1].Iter {
			t.Fatal("schedule not sorted by iteration")
		}
	}
	last := a.Faults[len(a.Faults)-1]
	if a.Iters() <= last.Iter+last.Dur {
		t.Fatalf("Iters() = %d does not cover last fault at %d+%d", a.Iters(), last.Iter, last.Dur)
	}
}

func TestFormatEventsStable(t *testing.T) {
	events := []Event{
		{Iter: 3, Detail: "worker.crash target=agent-1"},
		{Iter: 12, Detail: "am.crash"},
	}
	want := "iter=0003 worker.crash target=agent-1\niter=0012 am.crash\n"
	if got := FormatEvents(events); got != want {
		t.Fatalf("FormatEvents = %q, want %q", got, want)
	}
}

// TestFlightRecorderCapturesFaults: with a flight recorder wired through
// the harness, every injected fault freezes a dump of the recent span
// history, and the fleet's tracer feeds the ring continuously.
func TestFlightRecorderCapturesFaults(t *testing.T) {
	guardGoroutines(t)
	flight := telemetry.NewFlightRecorder(512)
	h, err := New(Config{
		Workers:    2,
		TotalBatch: 24,
		Schedule: Schedule{Seed: 7, Faults: []Fault{
			{Iter: 2, Kind: WorkerCrash, Target: "agent-1"},
			{Iter: 4, Kind: WorkerRestart, Target: "agent-1"},
		}},
		Tracer: telemetry.NewRecorder(h0clock(), 0),
		Flight: flight,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer h.Close()
	if err := h.Run(6); err != nil {
		t.Fatalf("Run: %v", err)
	}
	reason, dump := flight.LastDump()
	if reason != "worker.restart" {
		t.Fatalf("last dump reason = %q, want worker.restart", reason)
	}
	if len(dump) == 0 {
		t.Fatal("fault dump is empty")
	}
	var chaosMarks, spanRecs int
	for _, r := range dump {
		if r.Kind == 'E' && r.Proc == "chaos" {
			chaosMarks++
		}
		if r.Kind == 'S' {
			spanRecs++
		}
	}
	if chaosMarks < 2 {
		t.Errorf("chaos markers in dump = %d, want both faults", chaosMarks)
	}
	if spanRecs == 0 {
		t.Error("no spans reached the flight ring from the fleet tracer")
	}
	var sb strings.Builder
	if err := telemetry.WriteFlightDump(&sb, reason, dump); err != nil {
		t.Fatalf("WriteFlightDump: %v", err)
	}
	if !strings.Contains(sb.String(), "worker.crash") {
		t.Errorf("rendered dump missing crash marker:\n%s", sb.String())
	}
}

// h0clock hands the harness tracer the same epoch the harness itself uses
// (time.Unix(0, 0)); the harness owns the sim driver, the recorder only
// needs a matching time source for construction.
func h0clock() clock.Clock { return clock.NewSim(time.Unix(0, 0)) }

// midAdjustmentSchedule crashes and restarts both a worker and the AM while
// a scale-out adjustment is in flight — the acceptance scenario.
func midAdjustmentSchedule() Schedule {
	return Schedule{
		Seed: 7,
		Faults: []Fault{
			{Iter: 1, Kind: AMCrash},
			{Iter: 2, Kind: WorkerCrash, Target: "agent-1"},
			{Iter: 4, Kind: AMRecover},
			{Iter: 6, Kind: WorkerRestart, Target: "agent-1"},
		},
	}
}

// runMidAdjustment plays the acceptance scenario once and returns the
// formatted event log plus the final report.
func runMidAdjustment(t *testing.T) (string, Report, []*coord.AM) {
	t.Helper()
	h, err := New(Config{Workers: 2, TotalBatch: 24, Schedule: midAdjustmentSchedule()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer h.Close()
	// Iteration 0 runs clean, then the scale-out goes in flight before the
	// AM crashes at iteration 1.
	if err := h.Run(1); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := h.Fleet.RequestScaleOut(1); err != nil {
		t.Fatalf("RequestScaleOut: %v", err)
	}
	if err := h.Run(midAdjustmentSchedule().Iters()); err != nil {
		t.Fatalf("Run schedule: %v", err)
	}
	// The job must complete: the restarted worker is back and the pending
	// adjustment is admitted once its ready report lands on the recovered
	// AM. Extra iterations give the asynchronous report room to land.
	for i := 0; i < 300 && h.Fleet.NumWorkers() != 3; i++ {
		if err := h.Run(1); err != nil {
			t.Fatalf("Run while waiting for admission: %v", err)
		}
	}
	return FormatEvents(h.Events()), h.Report(), h.OldAMs()
}

func TestMidAdjustmentCrashRecovery(t *testing.T) {
	guardGoroutines(t)
	log, rep, oldAMs := runMidAdjustment(t)

	if len(rep.FaultErrors) != 0 {
		t.Fatalf("fault errors: %v", rep.FaultErrors)
	}
	if rep.FinalWorkers != 3 {
		t.Fatalf("FinalWorkers = %d, want 3 (2 initial - crash + restart + admitted scale-out)", rep.FinalWorkers)
	}
	if !rep.Consistent {
		t.Fatal("replicas inconsistent after recovery")
	}
	if rep.AMDown {
		t.Fatal("AM still down after recovery")
	}
	if math.IsNaN(rep.FinalLoss) || math.IsInf(rep.FinalLoss, 0) {
		t.Fatalf("FinalLoss = %v", rep.FinalLoss)
	}
	// The dead AM incarnation is fenced: any write it attempts fails at the
	// store's CAS. The old AM crashed mid-adjustment, so its in-memory state
	// is Pending or Ready depending on whether the new worker's report beat
	// the crash; drive whichever write that state permits and require the
	// fence to reject it.
	if len(oldAMs) != 1 {
		t.Fatalf("crashed AM incarnations = %d, want 1", len(oldAMs))
	}
	if _, _, err := oldAMs[0].Coordinate(); !errors.Is(err, coord.ErrFenced) {
		if err != nil {
			t.Fatalf("old AM Coordinate = %v, want ErrFenced or nil", err)
		}
		// Not Ready yet: a report write must hit the fence instead.
		if err := oldAMs[0].ReportReady("agent-2"); !errors.Is(err, coord.ErrFenced) {
			t.Fatalf("old AM write = %v, want ErrFenced", err)
		}
	}
	// The event log is exactly the schedule, rendered.
	want := "iter=0001 am.crash\n" +
		"iter=0002 worker.crash target=agent-1\n" +
		"iter=0004 am.recover\n" +
		"iter=0006 worker.restart target=agent-1\n"
	if log != want {
		t.Fatalf("event log:\n%s\nwant:\n%s", log, want)
	}
}

func TestMidAdjustmentDeterministicEventLog(t *testing.T) {
	guardGoroutines(t)
	log1, _, _ := runMidAdjustment(t)
	log2, _, _ := runMidAdjustment(t)
	if log1 != log2 {
		t.Fatalf("event logs differ across runs with the same schedule:\n%s\nvs:\n%s", log1, log2)
	}
}

func TestTimedWindowsOpenAndClose(t *testing.T) {
	guardGoroutines(t)
	sched := Schedule{
		Seed: 9,
		Faults: []Fault{
			{Iter: 1, Kind: Partition, A: []string{"fleet-lead"}, B: []string{"fleet-am"}, Dur: 2},
			{Iter: 5, Kind: DropBurst, Rate: 0.4, Dur: 1},
			{Iter: 8, Kind: SlowLink, Target: "fleet-am", Delay: 2 * time.Millisecond, Dur: 2},
		},
	}
	h, err := New(Config{Workers: 2, TotalBatch: 24, Schedule: sched})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer h.Close()
	if err := h.Run(sched.Iters()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "iter=0001 net.partition a=fleet-lead b=fleet-am dur=2\n" +
		"iter=0003 net.heal\n" +
		"iter=0005 net.drop rate=0.400 dur=1\n" +
		"iter=0006 net.drop.end\n" +
		"iter=0008 net.slow target=fleet-am delay=2ms dur=2\n" +
		"iter=0010 net.slow.end target=fleet-am\n"
	if got := FormatEvents(h.Events()); got != want {
		t.Fatalf("event log:\n%s\nwant:\n%s", got, want)
	}
	rep := h.Report()
	if len(rep.FaultErrors) != 0 {
		t.Fatalf("fault errors: %v", rep.FaultErrors)
	}
	if !rep.Consistent {
		t.Fatal("replicas inconsistent")
	}
	// Training kept going through the partition (coordination skipped, not
	// wedged): every scheduled iteration completed.
	if rep.Iterations != sched.Iters() {
		t.Fatalf("Iterations = %d, want %d", rep.Iterations, sched.Iters())
	}
}
