package chaos

import (
	"math/rand"
	"sync"
	"time"

	"github.com/elan-sys/elan/internal/transport"
)

// Injector decides per-message fates for the bus fault hook: partition
// cuts, probabilistic drop bursts and straggler latency. It is installed
// with Bus.SetFaultHook(inj.Fate) and reconfigured by the harness as timed
// fault windows open and close. Safe for concurrent use.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand // drop-burst decisions; seeded for reproducible drops
	cut      map[string]bool
	dropRate float64
	slow     map[string]time.Duration
}

// NewInjector creates an injector whose probabilistic decisions are driven
// by the given seed.
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:  rand.New(rand.NewSource(seed)),
		cut:  make(map[string]bool),
		slow: make(map[string]time.Duration),
	}
}

func linkKey(from, to string) string { return from + "\x00" + to }

// Fate implements transport.FaultHook.
func (in *Injector) Fate(m transport.Message) transport.Fate {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cut[linkKey(m.From, m.To)] {
		return transport.Fate{Drop: true}
	}
	if in.dropRate > 0 && in.rng.Float64() < in.dropRate {
		return transport.Fate{Drop: true}
	}
	var d time.Duration
	if v := in.slow[m.From]; v > 0 {
		d += v
	}
	if v := in.slow[m.To]; v > 0 {
		d += v
	}
	return transport.Fate{Delay: d}
}

// Partition cuts every link between the two endpoint sets, both directions.
func (in *Injector) Partition(a, b []string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			in.cut[linkKey(x, y)] = true
			in.cut[linkKey(y, x)] = true
		}
	}
}

// Heal removes all partition cuts.
func (in *Injector) Heal() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.cut = make(map[string]bool)
}

// SetDropRate sets the probability that any message is dropped (0 disables).
func (in *Injector) SetDropRate(r float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.dropRate = r
}

// SetSlow adds d of latency to every message to or from name (0 clears).
func (in *Injector) SetSlow(name string, d time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if d <= 0 {
		delete(in.slow, name)
		return
	}
	in.slow[name] = d
}
