package coord

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/elan-sys/elan/internal/telemetry"
	"github.com/elan-sys/elan/internal/transport"
)

// This file exposes the AM over the transport layer, giving the paper's
// Service API (Table III) a real message-passing implementation: the
// scheduler and workers interact with the AM only through reliable,
// deduplicated messages, never shared memory. Message kinds:
//
//	adjust.request   scheduler -> AM    RequestAdjustment
//	worker.report    new worker -> AM   ReportReady
//	worker.coord     existing -> AM     Coordinate
//	am.state         anyone -> AM       State/Seq inspection

// Message kinds understood by the AM service.
const (
	KindAdjustRequest = "adjust.request"
	KindWorkerReport  = "worker.report"
	KindCoordinate    = "worker.coord"
	KindAMState       = "am.state"
)

// AdjustRequestMsg is the payload of adjust.request.
type AdjustRequestMsg struct {
	Kind   Kind     `json:"kind"`
	Add    []string `json:"add"`
	Remove []string `json:"remove"`
	// Trace is the requesting span's identity, persisted with the pending
	// adjustment so the eventual apply joins the requester's trace.
	Trace telemetry.TraceContext `json:"trace,omitempty"`
}

// ReportMsg is the payload of worker.report.
type ReportMsg struct {
	Worker string `json:"worker"`
}

// CoordReplyMsg is the reply to worker.coord.
type CoordReplyMsg struct {
	HasAdjustment bool       `json:"hasAdjustment"`
	Adjustment    Adjustment `json:"adjustment"`
}

// StateReplyMsg is the reply to am.state.
type StateReplyMsg struct {
	State   State    `json:"state"`
	Seq     int64    `json:"seq"`
	Pending []string `json:"pending"`
}

// Service binds an AM to a bus endpoint.
type Service struct {
	am   *AM
	ep   *transport.Endpoint
	bus  *transport.Bus
	name string
	tr   telemetry.Tracer
	hb   *HeartbeatMonitor
}

// NewService registers the AM at name on the bus and starts serving. The
// service lives until Close (or bus shutdown).
func NewService(am *AM, bus *transport.Bus, name string) (*Service, error) {
	return NewServiceCtx(context.Background(), am, bus, name)
}

// NewServiceCtx is NewService under a parent lifecycle context: when ctx
// is cancelled the service deregisters from the bus, so an AM torn down by
// its job's context stops answering automatically.
func NewServiceCtx(ctx context.Context, am *AM, bus *transport.Bus, name string) (*Service, error) {
	if am == nil {
		return nil, fmt.Errorf("coord: nil AM")
	}
	s := &Service{am: am, bus: bus, name: name, tr: telemetry.Nop{}}
	ep, err := bus.Endpoint(name, s.handle)
	if err != nil {
		return nil, fmt.Errorf("coord: register service: %w", err)
	}
	s.ep = ep
	if ctx != nil && ctx.Done() != nil {
		context.AfterFunc(ctx, s.Close)
	}
	return s, nil
}

// Close deregisters the service's endpoint from the bus; in-flight calls
// against it fail with transport.ErrClosed. Closing twice is safe.
func (s *Service) Close() { s.bus.Remove(s.name) }

// SetTracer makes the service open a span per AM operation (a remote child
// of the transport handler's span, which itself chains to the caller).
func (s *Service) SetTracer(tr telemetry.Tracer) { s.tr = telemetry.OrNop(tr) }

// SetMonitor attaches the liveness monitor that batched worker.beats
// frames fan into. Like SetTracer, call it before serving traffic.
func (s *Service) SetMonitor(hb *HeartbeatMonitor) { s.hb = hb }

func (s *Service) handle(m transport.Message) ([]byte, error) {
	switch m.Kind {
	case KindAdjustRequest:
		var req AdjustRequestMsg
		if err := json.Unmarshal(m.Payload, &req); err != nil {
			return nil, fmt.Errorf("coord: bad adjust.request: %w", err)
		}
		span := telemetry.StartRemote(s.tr, "coord.adjust_request", m.Trace)
		span.Annotate("kind", req.Kind.String())
		// The trace stored with the pending adjustment is the original
		// requester's when it sent one, else this service span's, so
		// apply-side spans always have the deepest available anchor.
		tc := req.Trace
		if !tc.Valid() {
			tc = span.Context()
		}
		err := s.am.RequestAdjustmentTraced(req.Kind, req.Add, req.Remove, tc)
		if err != nil {
			span.Annotate("error", err.Error())
		}
		span.End()
		if err != nil {
			return nil, err
		}
		return []byte(`{}`), nil
	case KindWorkerReport:
		var req ReportMsg
		if err := json.Unmarshal(m.Payload, &req); err != nil {
			return nil, fmt.Errorf("coord: bad worker.report: %w", err)
		}
		span := telemetry.StartRemote(s.tr, "coord.report_ready", m.Trace)
		span.Annotate("worker", req.Worker)
		err := s.am.ReportReady(req.Worker)
		if err != nil {
			span.Annotate("error", err.Error())
		}
		span.End()
		if err != nil {
			return nil, err
		}
		return []byte(`{}`), nil
	case KindCoordinate:
		span := telemetry.StartRemote(s.tr, "coord.coordinate", m.Trace)
		adj, ok, err := s.am.Coordinate()
		if err != nil {
			span.Annotate("error", err.Error())
		}
		span.End()
		if err != nil {
			return nil, err
		}
		return json.Marshal(CoordReplyMsg{HasAdjustment: ok, Adjustment: adj})
	case KindHeartbeats:
		return handleBeats(s.hb, m.Payload)
	case KindAMState:
		return json.Marshal(StateReplyMsg{
			State:   s.am.State(),
			Seq:     s.am.Seq(),
			Pending: s.am.PendingWorkers(),
		})
	default:
		return nil, fmt.Errorf("coord: unknown message kind %q", m.Kind)
	}
}

// Client is the worker/scheduler side of the AM service. Every call runs
// under the client's parent context, so cancelling it aborts in-flight
// resend loops.
type Client struct {
	ctx    context.Context
	ep     *transport.Endpoint
	amName string
}

// NewClient creates a client endpoint named name talking to the AM at
// amName on the same bus.
func NewClient(bus *transport.Bus, name, amName string) (*Client, error) {
	return NewClientCtx(context.Background(), bus, name, amName)
}

// NewClientCtx is NewClient with a parent context bounding every call the
// client makes.
func NewClientCtx(ctx context.Context, bus *transport.Bus, name, amName string) (*Client, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ep, err := bus.Endpoint(name, nil)
	if err != nil {
		return nil, fmt.Errorf("coord: client endpoint: %w", err)
	}
	return &Client{ctx: ctx, ep: ep, amName: amName}, nil
}

// RequestAdjustment calls the AM's service API over the bus.
func (c *Client) RequestAdjustment(kind Kind, add, remove []string) error {
	return c.RequestAdjustmentTraced(c.ctx, kind, add, remove, telemetry.TraceContext{})
}

// RequestAdjustmentTraced is RequestAdjustment under a caller context (which
// may carry the requesting span for the transport layer) and with an
// explicit trace context stored alongside the pending adjustment. A nil ctx
// selects the client's parent context.
func (c *Client) RequestAdjustmentTraced(ctx context.Context, kind Kind, add, remove []string, tc telemetry.TraceContext) error {
	payload, err := json.Marshal(AdjustRequestMsg{Kind: kind, Add: add, Remove: remove, Trace: tc})
	if err != nil {
		return err
	}
	_, err = c.ep.CallCtx(c.callCtx(ctx), c.amName, KindAdjustRequest, payload)
	return err
}

// ReportReady reports this client's worker as started and initialized.
func (c *Client) ReportReady(worker string) error {
	return c.ReportReadyCtx(c.ctx, worker)
}

// ReportReadyCtx is ReportReady under a caller context; a span carried in
// ctx makes the report's transport call part of its trace.
func (c *Client) ReportReadyCtx(ctx context.Context, worker string) error {
	payload, err := json.Marshal(ReportMsg{Worker: worker})
	if err != nil {
		return err
	}
	_, err = c.ep.CallCtx(c.callCtx(ctx), c.amName, KindWorkerReport, payload)
	return err
}

// Beats ships one batched liveness frame covering workers — the wire form
// BeatBatcher produces. The service fans it into its attached monitor.
func (c *Client) Beats(workers []string) error {
	payload, err := json.Marshal(BeatsMsg{Workers: workers})
	if err != nil {
		return err
	}
	_, err = c.ep.CallCtx(c.ctx, c.amName, KindHeartbeats, payload)
	return err
}

// Coordinate polls the AM for a pending adjustment.
func (c *Client) Coordinate() (Adjustment, bool, error) {
	return c.CoordinateCtx(c.ctx)
}

// CoordinateCtx is Coordinate under a caller context; a span carried in ctx
// makes the coordination round-trip part of its trace.
func (c *Client) CoordinateCtx(ctx context.Context) (Adjustment, bool, error) {
	out, err := c.ep.CallCtx(c.callCtx(ctx), c.amName, KindCoordinate, nil)
	if err != nil {
		return Adjustment{}, false, err
	}
	var reply CoordReplyMsg
	if err := json.Unmarshal(out, &reply); err != nil {
		return Adjustment{}, false, fmt.Errorf("coord: bad coord reply: %w", err)
	}
	return reply.Adjustment, reply.HasAdjustment, nil
}

func (c *Client) callCtx(ctx context.Context) context.Context {
	if ctx == nil {
		return c.ctx
	}
	return ctx
}

// AMState fetches the AM's state for monitoring.
func (c *Client) AMState() (StateReplyMsg, error) {
	out, err := c.ep.CallCtx(c.ctx, c.amName, KindAMState, nil)
	if err != nil {
		return StateReplyMsg{}, err
	}
	var reply StateReplyMsg
	if err := json.Unmarshal(out, &reply); err != nil {
		return StateReplyMsg{}, fmt.Errorf("coord: bad state reply: %w", err)
	}
	return reply, nil
}
