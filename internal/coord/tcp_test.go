package coord

import (
	"strings"
	"testing"

	"github.com/elan-sys/elan/internal/store"
)

func TestTCPServiceFullAdjustment(t *testing.T) {
	st := store.New()
	am, err := NewAM("tcp-job", st)
	if err != nil {
		t.Fatalf("NewAM: %v", err)
	}
	svc, err := NewTCPService(am, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPService: %v", err)
	}
	defer svc.Close()
	client := NewTCPClient(svc.Addr)
	defer client.Close()

	if err := client.RequestAdjustment(ScaleOut, []string{"w5", "w6"}, nil); err != nil {
		t.Fatalf("RequestAdjustment: %v", err)
	}
	st1, err := client.AMState()
	if err != nil {
		t.Fatalf("AMState: %v", err)
	}
	if st1.State != Pending || len(st1.Pending) != 2 {
		t.Fatalf("state = %+v", st1)
	}
	if _, ok, err := client.Coordinate(); ok || err != nil {
		t.Fatalf("early Coordinate = %v, %v", ok, err)
	}
	if err := client.ReportReady("w5"); err != nil {
		t.Fatalf("ReportReady: %v", err)
	}
	if err := client.ReportReady("w6"); err != nil {
		t.Fatalf("ReportReady: %v", err)
	}
	adj, ok, err := client.Coordinate()
	if err != nil || !ok {
		t.Fatalf("Coordinate = %v, %v", ok, err)
	}
	if adj.Kind != ScaleOut || len(adj.Add) != 2 {
		t.Fatalf("adjustment = %+v", adj)
	}
}

func TestTCPServiceErrorsPropagate(t *testing.T) {
	am, err := NewAM("tcp-job2", store.New())
	if err != nil {
		t.Fatalf("NewAM: %v", err)
	}
	svc, err := NewTCPService(am, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPService: %v", err)
	}
	defer svc.Close()
	client := NewTCPClient(svc.Addr)
	defer client.Close()
	err = client.ReportReady("stranger")
	if err == nil || !strings.Contains(err.Error(), "state") {
		t.Fatalf("stray report error = %v", err)
	}
}

func TestTCPServiceSurvivesAMRestart(t *testing.T) {
	// The full fault-tolerance story: the AM crashes mid-adjustment, a new
	// incarnation recovers from the store and re-serves on the same port;
	// the client's retry rides it out and the adjustment completes with
	// the first report preserved.
	st := store.New()
	am1, err := NewAM("ft-job", st)
	if err != nil {
		t.Fatalf("NewAM: %v", err)
	}
	svc1, err := NewTCPService(am1, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPService: %v", err)
	}
	addr := svc1.Addr
	client := NewTCPClient(addr)
	defer client.Close()
	if err := client.RequestAdjustment(ScaleOut, []string{"w5", "w6"}, nil); err != nil {
		t.Fatalf("RequestAdjustment: %v", err)
	}
	if err := client.ReportReady("w5"); err != nil {
		t.Fatalf("ReportReady w5: %v", err)
	}
	// Crash.
	svc1.Close()
	// Recover on the same address.
	am2, err := Recover("ft-job", st)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	svc2, err := NewTCPService(am2, addr)
	if err != nil {
		t.Fatalf("re-serve: %v", err)
	}
	defer svc2.Close()
	st2, err := client.AMState()
	if err != nil {
		t.Fatalf("AMState after restart: %v", err)
	}
	if st2.State != Pending || len(st2.Pending) != 1 || st2.Pending[0] != "w6" {
		t.Fatalf("recovered state = %+v, want pending [w6]", st2)
	}
	if err := client.ReportReady("w6"); err != nil {
		t.Fatalf("ReportReady w6: %v", err)
	}
	adj, ok, err := client.Coordinate()
	if err != nil || !ok || len(adj.Add) != 2 {
		t.Fatalf("Coordinate after restart = %+v, %v, %v", adj, ok, err)
	}
}
