package coord

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for heartbeat tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func TestHeartbeatMonitorBasics(t *testing.T) {
	if _, err := NewHeartbeatMonitor(nil); err == nil {
		t.Fatal("nil clock accepted")
	}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	h, err := NewHeartbeatMonitor(clk.now)
	if err != nil {
		t.Fatalf("NewHeartbeatMonitor: %v", err)
	}
	h.Beat("w1")
	h.Beat("w2")
	if got := h.Tracked(); len(got) != 2 || got[0] != "w1" || got[1] != "w2" {
		t.Fatalf("Tracked = %v", got)
	}
	if got := h.Expired(10 * time.Second); len(got) != 0 {
		t.Fatalf("fresh workers expired: %v", got)
	}
	// w1 keeps beating, w2 goes silent.
	clk.advance(8 * time.Second)
	h.Beat("w1")
	clk.advance(8 * time.Second)
	got := h.Expired(10 * time.Second)
	if len(got) != 1 || got[0] != "w2" {
		t.Fatalf("Expired = %v, want [w2]", got)
	}
	// A worker that leaves deliberately is forgotten, not reported dead.
	h.Forget("w2")
	if got := h.Expired(10 * time.Second); len(got) != 0 {
		t.Fatalf("forgotten worker reported: %v", got)
	}
}

func TestHeartbeatDrivesReplacement(t *testing.T) {
	// The failure-mitigation loop: a worker stops heartbeating; the
	// scheduler requests a migration-style replacement through the AM.
	clk := &fakeClock{t: time.Unix(0, 0)}
	h, err := NewHeartbeatMonitor(clk.now)
	if err != nil {
		t.Fatalf("NewHeartbeatMonitor: %v", err)
	}
	am, _ := newAM(t)
	workers := []string{"w1", "w2", "w3"}
	for _, w := range workers {
		h.Beat(w)
	}
	clk.advance(5 * time.Second)
	h.Beat("w1")
	h.Beat("w2") // w3 died
	clk.advance(6 * time.Second)
	dead := h.Expired(10 * time.Second)
	if len(dead) != 1 || dead[0] != "w3" {
		t.Fatalf("dead = %v", dead)
	}
	// Replace the dead worker: migrate w3's rank to w4.
	if err := am.RequestAdjustment(Migrate, []string{"w4"}, dead); err != nil {
		t.Fatalf("RequestAdjustment: %v", err)
	}
	if err := am.ReportReady("w4"); err != nil {
		t.Fatalf("ReportReady: %v", err)
	}
	adj, ok, err := am.Coordinate()
	if err != nil || !ok {
		t.Fatalf("Coordinate: %v %v", ok, err)
	}
	if adj.Kind != Migrate || adj.Remove[0] != "w3" || adj.Add[0] != "w4" {
		t.Fatalf("adjustment = %+v", adj)
	}
	h.Forget("w3")
	h.Beat("w4")
	if got := h.Expired(10 * time.Second); len(got) != 0 {
		t.Fatalf("post-replacement expired = %v", got)
	}
}
