package coord

import (
	"reflect"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
)

// All heartbeat tests run entirely on the sim clock: no real sleeps, fully
// deterministic expiry ordering.

func simMonitor(t *testing.T) (*HeartbeatMonitor, *clock.Sim) {
	t.Helper()
	sim := clock.NewSim(time.Unix(1000, 0))
	h, err := NewHeartbeatMonitor(sim)
	if err != nil {
		t.Fatalf("NewHeartbeatMonitor: %v", err)
	}
	return h, sim
}

func TestHeartbeatMonitorBasics(t *testing.T) {
	if _, err := NewHeartbeatMonitor(nil); err == nil {
		t.Fatal("nil clock accepted")
	}
	h, sim := simMonitor(t)
	h.Beat("w1")
	h.Beat("w2")
	if got := h.Tracked(); len(got) != 2 || got[0] != "w1" || got[1] != "w2" {
		t.Fatalf("Tracked = %v", got)
	}
	if got := h.Expired(10 * time.Second); len(got) != 0 {
		t.Fatalf("fresh workers expired: %v", got)
	}
	// w1 keeps beating, w2 goes silent.
	sim.Advance(8 * time.Second)
	h.Beat("w1")
	sim.Advance(8 * time.Second)
	got := h.Expired(10 * time.Second)
	if len(got) != 1 || got[0] != "w2" {
		t.Fatalf("Expired = %v, want [w2]", got)
	}
	// A worker that leaves deliberately is forgotten, not reported dead.
	h.Forget("w2")
	if got := h.Expired(10 * time.Second); len(got) != 0 {
		t.Fatalf("forgotten worker reported: %v", got)
	}
}

func TestHeartbeatExactTTLBoundary(t *testing.T) {
	// The TTL boundary is inclusive: a beat exactly ttl ago is alive; one
	// nanosecond older is dead. Only virtual time can pin this down.
	h, sim := simMonitor(t)
	h.Beat("w1")
	sim.Advance(10 * time.Second)
	if got := h.Expired(10 * time.Second); len(got) != 0 {
		t.Fatalf("worker expired at exactly ttl: %v", got)
	}
	sim.Advance(time.Nanosecond)
	if got := h.Expired(10 * time.Second); len(got) != 1 || got[0] != "w1" {
		t.Fatalf("Expired just past ttl = %v, want [w1]", got)
	}
}

func TestHeartbeatLateArrivalRevives(t *testing.T) {
	// A worker that was already reported expired comes back (a paused
	// process resumes): its late beat revives it.
	h, sim := simMonitor(t)
	h.Beat("w1")
	sim.Advance(11 * time.Second)
	if got := h.Expired(10 * time.Second); len(got) != 1 {
		t.Fatalf("Expired = %v, want [w1]", got)
	}
	h.Beat("w1") // late arrival
	if got := h.Expired(10 * time.Second); len(got) != 0 {
		t.Fatalf("revived worker still expired: %v", got)
	}
	sim.Advance(10*time.Second + time.Millisecond)
	if got := h.Expired(10 * time.Second); len(got) != 1 || got[0] != "w1" {
		t.Fatalf("re-expiry after revival = %v", got)
	}
}

func TestHeartbeatMultiWorkerExpiryOrdering(t *testing.T) {
	// Workers go silent at staggered virtual times; the expired set grows
	// in exactly that order, and is always sorted.
	h, sim := simMonitor(t)
	const ttl = 10 * time.Second
	h.Beat("w3") // silent from t=0
	sim.Advance(2 * time.Second)
	h.Beat("w1") // silent from t=2
	sim.Advance(2 * time.Second)
	h.Beat("w2") // silent from t=4
	// t=4: nobody expired yet.
	if got := h.Expired(ttl); len(got) != 0 {
		t.Fatalf("t=4s Expired = %v", got)
	}
	sim.Advance(6*time.Second + time.Millisecond) // t≈10: only w3 past ttl
	if got := h.Expired(ttl); !reflect.DeepEqual(got, []string{"w3"}) {
		t.Fatalf("t=10s Expired = %v, want [w3]", got)
	}
	sim.Advance(2 * time.Second) // t≈12: w1 joins
	if got := h.Expired(ttl); !reflect.DeepEqual(got, []string{"w1", "w3"}) {
		t.Fatalf("t=12s Expired = %v, want [w1 w3]", got)
	}
	sim.Advance(2 * time.Second) // t≈14: all three
	if got := h.Expired(ttl); !reflect.DeepEqual(got, []string{"w1", "w2", "w3"}) {
		t.Fatalf("t=14s Expired = %v, want [w1 w2 w3]", got)
	}
}

func TestHeartbeatDrivesReplacement(t *testing.T) {
	// The failure-mitigation loop: a worker stops heartbeating; the
	// scheduler requests a migration-style replacement through the AM.
	h, sim := simMonitor(t)
	am, _ := newAM(t)
	workers := []string{"w1", "w2", "w3"}
	for _, w := range workers {
		h.Beat(w)
	}
	sim.Advance(5 * time.Second)
	h.Beat("w1")
	h.Beat("w2") // w3 died
	sim.Advance(6 * time.Second)
	dead := h.Expired(10 * time.Second)
	if len(dead) != 1 || dead[0] != "w3" {
		t.Fatalf("dead = %v", dead)
	}
	// Replace the dead worker: migrate w3's rank to w4.
	if err := am.RequestAdjustment(Migrate, []string{"w4"}, dead); err != nil {
		t.Fatalf("RequestAdjustment: %v", err)
	}
	if err := am.ReportReady("w4"); err != nil {
		t.Fatalf("ReportReady: %v", err)
	}
	adj, ok, err := am.Coordinate()
	if err != nil || !ok {
		t.Fatalf("Coordinate: %v %v", ok, err)
	}
	if adj.Kind != Migrate || adj.Remove[0] != "w3" || adj.Add[0] != "w4" {
		t.Fatalf("adjustment = %+v", adj)
	}
	h.Forget("w3")
	h.Beat("w4")
	if got := h.Expired(10 * time.Second); len(got) != 0 {
		t.Fatalf("post-replacement expired = %v", got)
	}
}
