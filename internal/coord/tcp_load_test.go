package coord

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/store"
)

// TestTCPServiceLoadSmoke is the coord half of the CI load-smoke job: many
// concurrent TCPClients (each holding its own pooled connections) drive
// the full service API — reports, state reads, coordination polls —
// against one AM over real TCP. Every call must succeed, the AM must end
// in a consistent state, and the pooled clients must reclaim all their
// goroutines on Close.
func TestTCPServiceLoadSmoke(t *testing.T) {
	before := runtime.NumGoroutine()
	clients, callsPer := 128, 10
	if testing.Short() {
		clients, callsPer = 32, 5
	}
	st := store.New()
	am, err := NewAM("load-job", st)
	if err != nil {
		t.Fatalf("NewAM: %v", err)
	}
	svc, err := NewTCPService(am, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPService: %v", err)
	}
	defer svc.Close()

	// Seed one adjustment; the load traffic reports its workers ready in
	// the middle of the state-read storm.
	admin := NewTCPClient(svc.Addr)
	defer admin.Close()
	if err := admin.RequestAdjustment(ScaleOut, []string{"w1", "w2"}, nil); err != nil {
		t.Fatalf("RequestAdjustment: %v", err)
	}

	var wg sync.WaitGroup
	var coordinated atomic.Int64
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := NewTCPClient(svc.Addr)
			defer cl.Close()
			for i := 0; i < callsPer; i++ {
				if _, err := cl.AMState(); err != nil {
					errc <- fmt.Errorf("client %d AMState: %w", c, err)
					return
				}
				adj, ok, err := cl.Coordinate()
				if err != nil {
					errc <- fmt.Errorf("client %d Coordinate: %w", c, err)
					return
				}
				if ok {
					if len(adj.Add) != 2 {
						errc <- fmt.Errorf("client %d observed adjustment %+v", c, adj)
						return
					}
					coordinated.Add(1)
				}
			}
			// Two designated clients complete the adjustment mid-load.
			if c < 2 {
				if err := cl.ReportReady(fmt.Sprintf("w%d", c+1)); err != nil {
					errc <- fmt.Errorf("client %d ReportReady: %w", c, err)
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// The adjustment completes mid-load; either a load client's poll
	// consumed it or the admin's post-load poll does — exactly one party
	// may see it.
	if coordinated.Load() == 0 {
		adj, ok, err := admin.Coordinate()
		if err != nil || !ok || len(adj.Add) != 2 {
			t.Fatalf("post-load Coordinate = %+v, %v, %v", adj, ok, err)
		}
		coordinated.Add(1)
	}
	if got := coordinated.Load(); got != 1 {
		t.Fatalf("adjustment observed by %d pollers, want exactly 1", got)
	}

	// Leak guard: all per-client pools must be gone once their Close ran.
	// The admin client is closed here rather than by its defer so its
	// pooled connection (one client reader + one server conn reader) is
	// out of the count; Close is idempotent.
	admin.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 { // svc accept loop + slack
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after load: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}
