package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/elan-sys/elan/internal/clock"
)

// Heartbeat coalescing. Liveness beats are tiny and frequent — one frame
// per worker per tick is pure protocol overhead on the pooled TCP path.
// The worker side batches every beat recorded at the same (virtual or
// wall) instant and ships the whole tick as a single worker.beats frame;
// the service fans the batch into the attached HeartbeatMonitor. The
// monitor's observable state is identical to per-beat delivery — the
// differential test in beats_test.go proves it — only the frame count
// changes.

// KindHeartbeats is the batched liveness message kind: one frame carrying
// every worker that beat in the sender's current tick.
const KindHeartbeats = "worker.beats"

// BeatsMsg is the payload of worker.beats.
type BeatsMsg struct {
	Workers []string `json:"workers"`
}

// ErrNoMonitor reports a worker.beats frame arriving at a service that has
// no HeartbeatMonitor attached.
var ErrNoMonitor = errors.New("coord: no heartbeat monitor attached")

// handleBeats fans a batched heartbeat frame into the monitor.
func handleBeats(hb *HeartbeatMonitor, payload []byte) ([]byte, error) {
	var req BeatsMsg
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("coord: bad worker.beats: %w", err)
	}
	if hb == nil {
		return nil, ErrNoMonitor
	}
	for _, w := range req.Workers {
		hb.Beat(w)
	}
	return []byte(`{}`), nil
}

// BeatBatcher coalesces heartbeats on the worker side. Beats recorded at
// the same clock instant accumulate (deduplicated) into one pending batch;
// the batch is shipped as a single frame by Flush, or lazily when a beat
// from a later instant arrives. Callers in a periodic reporting loop beat
// for each local worker and Flush before yielding the tick, so the
// monitor's receipt stamps match per-beat delivery exactly.
//
// A failed send keeps the batch: the next Flush (or tick) retries it
// merged with whatever accumulated since. Beats are never dropped, they
// only arrive later — exactly the liveness contract a lossy network already
// imposes.
type BeatBatcher struct {
	clk  clock.Clock
	send func(workers []string) error

	mu      sync.Mutex
	stamp   time.Time
	pending []string
	seen    map[string]bool
	frames  int64
}

// NewBeatBatcher creates a batcher reading tick identity from clk and
// shipping batches through send — typically Client.Beats or
// TCPClient.Beats. send must not retain the slice.
func NewBeatBatcher(clk clock.Clock, send func(workers []string) error) (*BeatBatcher, error) {
	if clk == nil {
		return nil, ErrNilClock
	}
	if send == nil {
		return nil, errors.New("coord: nil send")
	}
	return &BeatBatcher{clk: clk, send: send, seen: make(map[string]bool)}, nil
}

// Beat records a heartbeat for worker in the current tick's batch. If the
// clock advanced since the batch was opened, the stale batch is flushed
// first; a flush failure is returned but the new beat is still recorded.
func (b *BeatBatcher) Beat(worker string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var err error
	now := b.clk.Now()
	if len(b.pending) > 0 && !now.Equal(b.stamp) {
		err = b.flushLocked()
	}
	b.stamp = now
	if !b.seen[worker] {
		b.seen[worker] = true
		b.pending = append(b.pending, worker)
	}
	return err
}

// Flush ships the pending batch as one frame. A no-op when nothing is
// pending; on error the batch is retained for the next attempt.
func (b *BeatBatcher) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushLocked()
}

func (b *BeatBatcher) flushLocked() error {
	if len(b.pending) == 0 {
		return nil
	}
	if err := b.send(b.pending); err != nil {
		return err
	}
	b.frames++
	b.pending = b.pending[:0]
	clear(b.seen)
	return nil
}

// Frames returns how many batched frames have been shipped — the
// differential observable against one-frame-per-beat delivery.
func (b *BeatBatcher) Frames() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.frames
}

// Pending returns the number of beats waiting in the open batch.
func (b *BeatBatcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}
