package coord

import (
	"errors"
	"sort"
	"sync"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/telemetry"
)

// HeartbeatMonitor tracks worker liveness for the AM. The paper's fault
// tolerance (Section V-D) covers the AM itself; in a deployment the AM is
// also the natural place to notice dead or degraded workers so the
// scheduler can replace them (the straggler/failure mitigation use case of
// Section VII). Workers piggyback a heartbeat on their periodic
// coordination; the monitor reports the ones whose heartbeats lapsed.
//
// The monitor reads time from an injected clock.Clock, so the same code
// runs on wall time in a deployment and on deterministic virtual time in
// tests and the simulator.
type HeartbeatMonitor struct {
	mu   sync.Mutex
	clk  clock.Clock
	last map[string]time.Time

	// Nil-safe instruments; Instrument replaces them with live ones.
	mBeats   *telemetry.Counter
	mExpired *telemetry.Counter
	mChecks  *telemetry.Counter
}

// ErrNilClock is returned when constructing a monitor without a clock.
var ErrNilClock = errors.New("coord: nil clock")

// NewHeartbeatMonitor creates a monitor reading time from clk (use
// clock.Wall{} in production, a clock.Sim in tests).
func NewHeartbeatMonitor(clk clock.Clock) (*HeartbeatMonitor, error) {
	if clk == nil {
		return nil, ErrNilClock
	}
	return &HeartbeatMonitor{clk: clk, last: make(map[string]time.Time)}, nil
}

// Instrument attaches liveness metrics to the monitor: heartbeats
// received, expiry checks performed, and workers declared expired. A nil
// registry leaves the monitor uninstrumented.
func (h *HeartbeatMonitor) Instrument(reg *telemetry.Registry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.mBeats = reg.Counter("coord_heartbeats_total")
	h.mExpired = reg.Counter("coord_heartbeats_expired_total")
	h.mChecks = reg.Counter("coord_monitor_checks_total")
}

// Beat records a heartbeat from worker.
func (h *HeartbeatMonitor) Beat(worker string) {
	h.mu.Lock()
	h.last[worker] = h.clk.Now()
	beats := h.mBeats
	h.mu.Unlock()
	beats.Inc()
}

// Forget removes a worker (it left the job deliberately).
func (h *HeartbeatMonitor) Forget(worker string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.last, worker)
}

// Tracked returns the monitored workers, sorted.
func (h *HeartbeatMonitor) Tracked() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.last))
	for w := range h.last {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Expired returns the workers whose last heartbeat is strictly older than
// ttl, sorted — a beat exactly ttl ago is still considered alive, so the
// TTL boundary is inclusive. The scheduler reacts by requesting a
// replacement adjustment.
func (h *HeartbeatMonitor) Expired(ttl time.Duration) []string {
	h.mu.Lock()
	deadline := h.clk.Now().Add(-ttl)
	var out []string
	for w, at := range h.last {
		if at.Before(deadline) {
			out = append(out, w)
		}
	}
	checks, expired := h.mChecks, h.mExpired
	h.mu.Unlock()
	checks.Inc()
	expired.Add(int64(len(out)))
	sort.Strings(out)
	return out
}
