package coord

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/store"
	"github.com/elan-sys/elan/internal/transport"
)

// TestBeatBatcherDifferential is the coalescing proof: the same beat
// pattern delivered per-beat and batched-per-tick (through the exact
// service decode path) leaves the two monitors with identical liveness
// state — tracked sets and expiry decisions — while the batched side
// ships one frame per tick instead of one per beat.
func TestBeatBatcherDifferential(t *testing.T) {
	sim := clock.NewSim(time.Unix(0, 0))
	direct, err := NewHeartbeatMonitor(sim)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewHeartbeatMonitor(sim)
	if err != nil {
		t.Fatal(err)
	}
	var frames, framedBeats int
	send := func(ws []string) error {
		p, err := json.Marshal(BeatsMsg{Workers: ws})
		if err != nil {
			return err
		}
		if _, err := handleBeats(batched, p); err != nil {
			return err
		}
		frames++
		framedBeats += len(ws)
		return nil
	}
	b, err := NewBeatBatcher(sim, send)
	if err != nil {
		t.Fatal(err)
	}

	// 6 ticks; w3 stops beating after tick 2, and every tick each worker
	// beats twice (the dedup case: real reporting loops touch liveness at
	// both the report and the coordinate step).
	const ticks = 6
	tick := time.Second
	var directBeats int
	for i := 0; i < ticks; i++ {
		workers := []string{"w1", "w2", "w3"}
		if i > 2 {
			workers = workers[:2]
		}
		for _, w := range workers {
			for r := 0; r < 2; r++ {
				direct.Beat(w)
				if err := b.Beat(w); err != nil {
					t.Fatalf("tick %d: Beat(%s): %v", i, w, err)
				}
				directBeats++
			}
		}
		if err := b.Flush(); err != nil {
			t.Fatalf("tick %d: Flush: %v", i, err)
		}
		sim.Advance(tick)
	}

	if got, want := direct.Tracked(), batched.Tracked(); !reflect.DeepEqual(got, want) {
		t.Fatalf("tracked sets differ: direct %v, batched %v", got, want)
	}
	for _, ttl := range []time.Duration{tick, 2 * tick, 3 * tick, 4 * tick, 10 * tick} {
		d, bx := direct.Expired(ttl), batched.Expired(ttl)
		if !reflect.DeepEqual(d, bx) {
			t.Fatalf("Expired(%v) differ: direct %v, batched %v", ttl, d, bx)
		}
	}
	// w3 did lapse — the differential covers a real expiry, not two empty sets.
	if exp := batched.Expired(3 * tick); len(exp) != 1 || exp[0] != "w3" {
		t.Fatalf("Expired(3t) = %v, want [w3]", exp)
	}
	if frames != ticks {
		t.Fatalf("frames = %d, want one per tick (%d)", frames, ticks)
	}
	if b.Frames() != int64(ticks) {
		t.Fatalf("Frames() = %d, want %d", b.Frames(), ticks)
	}
	// Dedup: 2 beats per worker per tick collapse to one wire entry.
	if wantFramed := directBeats / 2; framedBeats != wantFramed {
		t.Fatalf("framed beats = %d, want %d (deduped)", framedBeats, wantFramed)
	}
	if framedBeats >= directBeats {
		t.Fatalf("coalescing saved nothing: %d framed vs %d direct", framedBeats, directBeats)
	}
}

// TestBeatBatcherRetainsOnSendFailure: a failed flush keeps the batch; the
// next flush ships it merged with newer beats, so no beat is ever lost.
func TestBeatBatcherRetainsOnSendFailure(t *testing.T) {
	sim := clock.NewSim(time.Unix(0, 0))
	fail := true
	var got []string
	send := func(ws []string) error {
		if fail {
			return errors.New("boom")
		}
		got = append(got[:0], ws...)
		return nil
	}
	b, err := NewBeatBatcher(sim, send)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Beat("w1"); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err == nil {
		t.Fatal("Flush succeeded through failing send")
	}
	if b.Pending() != 1 {
		t.Fatalf("Pending = %d after failed flush, want 1", b.Pending())
	}
	sim.Advance(time.Second)
	// The next tick's beat triggers the lazy flush, which also fails —
	// the error surfaces but both beats stay pending.
	if err := b.Beat("w2"); err == nil {
		t.Fatal("lazy flush error not surfaced")
	}
	if b.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2 (merged)", b.Pending())
	}
	fail = false
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"w1", "w2"}) {
		t.Fatalf("recovered frame = %v, want [w1 w2]", got)
	}
	if b.Pending() != 0 {
		t.Fatalf("Pending = %d after successful flush", b.Pending())
	}
}

// TestBeatsOverBus: the worker.beats kind lands in the bus service's
// attached monitor; without a monitor the frame is rejected.
func TestBeatsOverBus(t *testing.T) {
	sim := clock.NewSim(time.Unix(0, 0))
	t.Cleanup(sim.AutoAdvance(0))
	cfg := transport.DefaultBusConfig()
	cfg.Clock = sim
	bus := transport.NewBus(cfg)
	t.Cleanup(bus.Close)
	am, err := NewAM("beats-job", store.New())
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(am, bus, "am")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := NewHeartbeatMonitor(sim)
	if err != nil {
		t.Fatal(err)
	}
	svc.SetMonitor(hb)
	cl, err := NewClient(bus, "w1", "am")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Beats([]string{"w1", "w2"}); err != nil {
		t.Fatalf("Beats: %v", err)
	}
	if got := hb.Tracked(); !reflect.DeepEqual(got, []string{"w1", "w2"}) {
		t.Fatalf("Tracked = %v", got)
	}

	if _, err := NewService(am, bus, "am-bare"); err != nil {
		t.Fatal(err)
	}
	cl2, err := NewClient(bus, "w2", "am-bare")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl2.Beats([]string{"w9"}); err == nil || !strings.Contains(err.Error(), "no heartbeat monitor") {
		t.Fatalf("Beats without monitor = %v, want ErrNoMonitor", err)
	}
}

// TestBeatsOverTCP: the batcher wired to a TCPClient coalesces a tick of
// beats into one frame over the wire and the TCP service fans it into the
// monitor.
func TestBeatsOverTCP(t *testing.T) {
	am, err := NewAM("beats-tcp", store.New())
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewTCPService(am, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	hb, err := NewHeartbeatMonitor(clock.Wall{})
	if err != nil {
		t.Fatal(err)
	}
	svc.SetMonitor(hb)
	cl := NewTCPClient(svc.Addr)
	t.Cleanup(cl.Close)

	sim := clock.NewSim(time.Unix(0, 0))
	b, err := NewBeatBatcher(sim, cl.Beats)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"w1", "w2", "w3", "w1"} {
		if err := b.Beat(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := hb.Tracked(); !reflect.DeepEqual(got, []string{"w1", "w2", "w3"}) {
		t.Fatalf("Tracked = %v", got)
	}
	if b.Frames() != 1 {
		t.Fatalf("Frames = %d, want 1", b.Frames())
	}
}
