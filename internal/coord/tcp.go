package coord

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"github.com/elan-sys/elan/internal/transport"
)

// This file exposes the AM service over real TCP, demonstrating that the
// coordination protocol is transport-independent: the same message kinds
// (adjust.request, worker.report, worker.coord, am.state) flow over
// length-prefixed binary frames on pooled, multiplexed connections instead
// of the in-process bus. A scheduler outside the training job's process —
// the deployment the paper describes — talks to the AM this way. Pool
// invalidation plus the retry policy's backoff makes AM restarts
// transparent (the ZeroMQ property), and combined with the AM state
// machine's persistence a restarted AM resumes where it stopped.

// TCPService serves an AM over TCP.
type TCPService struct {
	am  *AM
	srv *transport.Server
	hb  *HeartbeatMonitor
	// Addr is the bound address after Start.
	Addr string
}

// NewTCPService starts serving am on addr ("127.0.0.1:0" for ephemeral).
func NewTCPService(am *AM, addr string) (*TCPService, error) {
	return NewTCPServiceCtx(context.Background(), am, addr)
}

// NewTCPServiceCtx is NewTCPService under a parent lifecycle context:
// cancelling ctx shuts the server down, tearing open connections.
func NewTCPServiceCtx(ctx context.Context, am *AM, addr string) (*TCPService, error) {
	if am == nil {
		return nil, fmt.Errorf("coord: nil AM")
	}
	s := &TCPService{am: am}
	s.srv = transport.NewServer(s.handle)
	bound, err := s.srv.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("coord: tcp service: %w", err)
	}
	s.Addr = bound
	if ctx != nil && ctx.Done() != nil {
		context.AfterFunc(ctx, s.Close)
	}
	return s, nil
}

// Close stops the server.
func (s *TCPService) Close() { s.srv.Close() }

// SetMonitor attaches the liveness monitor that batched worker.beats
// frames fan into. Call it before serving traffic.
func (s *TCPService) SetMonitor(hb *HeartbeatMonitor) { s.hb = hb }

func (s *TCPService) handle(m transport.Message) ([]byte, error) {
	switch m.Kind {
	case KindAdjustRequest:
		var req AdjustRequestMsg
		if err := json.Unmarshal(m.Payload, &req); err != nil {
			return nil, fmt.Errorf("coord: bad adjust.request: %w", err)
		}
		if err := s.am.RequestAdjustment(req.Kind, req.Add, req.Remove); err != nil {
			return nil, err
		}
		return []byte(`{}`), nil
	case KindWorkerReport:
		var req ReportMsg
		if err := json.Unmarshal(m.Payload, &req); err != nil {
			return nil, fmt.Errorf("coord: bad worker.report: %w", err)
		}
		if err := s.am.ReportReady(req.Worker); err != nil {
			return nil, err
		}
		return []byte(`{}`), nil
	case KindCoordinate:
		adj, ok, err := s.am.Coordinate()
		if err != nil {
			return nil, err
		}
		return json.Marshal(CoordReplyMsg{HasAdjustment: ok, Adjustment: adj})
	case KindHeartbeats:
		return handleBeats(s.hb, m.Payload)
	case KindAMState:
		return json.Marshal(StateReplyMsg{
			State:   s.am.State(),
			Seq:     s.am.Seq(),
			Pending: s.am.PendingWorkers(),
		})
	default:
		return nil, fmt.Errorf("coord: unknown message kind %q", m.Kind)
	}
}

// TCPClient talks to a TCPService over a pooled, multiplexed
// transport.Client: connections are dialed lazily, reused across calls,
// and carry concurrent requests. AM restarts are still transparent — a
// dead connection fails its in-flight calls with retryable transport
// errors, the pool invalidates it, and the retry policy's exponential
// backoff redials the new incarnation. Handler-level errors (including
// the AM's own state-machine rejections) return immediately without
// burning the retry budget, so non-idempotent service calls execute at
// most once per TCPClient call. The client's parent context bounds every
// call, giving reconnect loops a hard deadline. Call Close when done to
// reclaim the pooled connections.
type TCPClient struct {
	ctx     context.Context
	client  *transport.Client
	timeout time.Duration
	policy  transport.RetryPolicy
}

// NewTCPClient creates a client for the AM at addr with the default
// timeout and reconnect policy.
func NewTCPClient(addr string) *TCPClient {
	return NewTCPClientCtx(context.Background(), addr, 0, transport.RetryPolicy{})
}

// NewTCPClientCtx creates a client whose calls run under ctx with the
// given per-call timeout and retry policy (zero values select defaults).
func NewTCPClientCtx(ctx context.Context, addr string, timeout time.Duration, policy transport.RetryPolicy) *TCPClient {
	if ctx == nil {
		ctx = context.Background()
	}
	if timeout <= 0 {
		timeout = transport.DefaultCallTimeout
	}
	if policy.Attempts <= 0 {
		policy.Attempts = 5
	}
	c := &TCPClient{
		ctx:     ctx,
		client:  transport.NewClient(addr, transport.ClientConfig{Timeout: timeout}),
		timeout: timeout,
		policy:  policy,
	}
	if ctx.Done() != nil {
		context.AfterFunc(ctx, c.Close)
	}
	return c
}

// Close tears down the pooled connections and resolves in-flight calls
// with transport.ErrClosed. Closing twice is safe.
func (c *TCPClient) Close() { c.client.Close() }

func (c *TCPClient) call(kind string, payload []byte) ([]byte, error) {
	return c.client.CallRetry(c.ctx, kind, payload, c.timeout, c.policy)
}

// RequestAdjustment invokes the service API over TCP.
func (c *TCPClient) RequestAdjustment(kind Kind, add, remove []string) error {
	payload, err := json.Marshal(AdjustRequestMsg{Kind: kind, Add: add, Remove: remove})
	if err != nil {
		return err
	}
	_, err = c.call(KindAdjustRequest, payload)
	return err
}

// ReportReady reports a worker as started and initialized.
func (c *TCPClient) ReportReady(worker string) error {
	payload, err := json.Marshal(ReportMsg{Worker: worker})
	if err != nil {
		return err
	}
	_, err = c.call(KindWorkerReport, payload)
	return err
}

// Beats ships one batched liveness frame covering workers.
func (c *TCPClient) Beats(workers []string) error {
	payload, err := json.Marshal(BeatsMsg{Workers: workers})
	if err != nil {
		return err
	}
	_, err = c.call(KindHeartbeats, payload)
	return err
}

// Coordinate polls for a pending adjustment.
func (c *TCPClient) Coordinate() (Adjustment, bool, error) {
	out, err := c.call(KindCoordinate, nil)
	if err != nil {
		return Adjustment{}, false, err
	}
	var reply CoordReplyMsg
	if err := json.Unmarshal(out, &reply); err != nil {
		return Adjustment{}, false, fmt.Errorf("coord: bad coord reply: %w", err)
	}
	return reply.Adjustment, reply.HasAdjustment, nil
}

// AMState fetches the AM's state.
func (c *TCPClient) AMState() (StateReplyMsg, error) {
	out, err := c.call(KindAMState, nil)
	if err != nil {
		return StateReplyMsg{}, err
	}
	var reply StateReplyMsg
	if err := json.Unmarshal(out, &reply); err != nil {
		return StateReplyMsg{}, fmt.Errorf("coord: bad state reply: %w", err)
	}
	return reply, nil
}
