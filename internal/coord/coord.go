// Package coord implements the application master (AM) and the asynchronous
// coordination mechanism of Sections II and V-B.
//
// The AM is a small state machine attached to each elastic job:
//
//	Idle --RequestAdjustment--> Pending --all new workers reported--> Ready
//	Ready --Coordinate (by existing workers at an iteration boundary)--> Idle
//
// The two properties that make adjustments cheap are encoded here. First,
// new workers start and initialize in parallel with ongoing training and
// report when ready; existing workers never wait — if a coordination call
// arrives while workers are still launching, it simply returns "keep
// training" and the adjustment is picked up by a later coordination.
// Second, no existing worker is ever shut down: Coordinate hands back an
// adjustment plan that the runtime applies in place.
//
// For fault tolerance (Section V-D) the AM persists its state machine to a
// versioned store (the etcd stand-in) using compare-and-swap: a recovered
// incarnation resumes from the stored state, and a stale incarnation that
// lost the key fences itself off with ErrFenced.
package coord

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"github.com/elan-sys/elan/internal/store"
	"github.com/elan-sys/elan/internal/telemetry"
)

// Errors returned by the AM.
var (
	// ErrBusy is returned when requesting an adjustment while another is in
	// flight; the scheduler retries at the next opportunity.
	ErrBusy = errors.New("coord: adjustment already in progress")
	// ErrFenced is returned when this AM incarnation lost the persistence
	// race to a newer one and must stop.
	ErrFenced = errors.New("coord: AM incarnation fenced off")
	// ErrUnknownWorker is returned for a report from a worker that is not
	// part of the pending adjustment.
	ErrUnknownWorker = errors.New("coord: worker not in pending adjustment")
)

// Kind classifies a resource adjustment.
type Kind int

const (
	// ScaleOut adds workers.
	ScaleOut Kind = iota + 1
	// ScaleIn removes workers.
	ScaleIn
	// Migrate moves the job to a different worker set.
	Migrate
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case ScaleOut:
		return "scale-out"
	case ScaleIn:
		return "scale-in"
	case Migrate:
		return "migrate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// State is the AM state-machine state.
type State int

const (
	// Idle means no adjustment is in flight.
	Idle State = iota + 1
	// Pending means an adjustment was requested and new workers (if any)
	// are still starting.
	Pending
	// Ready means all new workers reported; the adjustment fires at the
	// next coordination.
	Ready
)

// String names the state.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Pending:
		return "pending"
	case Ready:
		return "ready"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Adjustment is the plan handed to the runtime when a coordination fires.
type Adjustment struct {
	// Seq is the monotonically increasing adjustment number of this job.
	Seq int64
	// Kind of adjustment.
	Kind Kind
	// Add are the worker names joining; Remove are those leaving.
	Add    []string
	Remove []string
	// Trace is the causal identity of the scheduler request that opened the
	// adjustment, carried through the Pending state so the fleet's
	// apply-side spans join the original request's tree. Zero when the
	// request was untraced.
	Trace telemetry.TraceContext
}

// persisted is the gob-serialized AM state saved to the store.
type persisted struct {
	State   State
	Seq     int64
	Pending *pendingState
}

type pendingState struct {
	Kind     Kind
	Add      []string
	Remove   []string
	Reported map[string]bool
	// Trace survives persistence (exported for gob) so a recovered AM still
	// hands the original request's causal identity to Coordinate.
	Trace telemetry.TraceContext
}

// AM is the application master of one job. It is safe for concurrent use:
// the scheduler, new workers and existing workers all call into it.
type AM struct {
	jobID string
	st    *store.Store

	mu      sync.Mutex
	state   State
	seq     int64
	pending *pendingState
	version int64 // store version for CAS fencing
}

func amKey(jobID string) string { return "am/" + jobID }

// NewAM creates a fresh AM for jobID, persisting its initial state. It
// fails if an AM for the job already exists (use Recover instead).
func NewAM(jobID string, st *store.Store) (*AM, error) {
	if jobID == "" {
		return nil, errors.New("coord: empty job ID")
	}
	if st == nil {
		return nil, errors.New("coord: nil store")
	}
	am := &AM{jobID: jobID, st: st, state: Idle}
	blob, err := am.encode()
	if err != nil {
		return nil, err
	}
	v, err := st.CAS(amKey(jobID), 0, blob)
	if err != nil {
		return nil, fmt.Errorf("coord: AM for %q already exists: %w", jobID, err)
	}
	am.version = v
	return am, nil
}

// Recover reconstructs an AM from its persisted state after a failure. The
// recovered incarnation takes over the key: any older incarnation still
// running will fence itself on its next persist.
func Recover(jobID string, st *store.Store) (*AM, error) {
	if st == nil {
		return nil, errors.New("coord: nil store")
	}
	e, err := st.Get(amKey(jobID))
	if err != nil {
		return nil, fmt.Errorf("coord: recover %q: %w", jobID, err)
	}
	var p persisted
	if err := gob.NewDecoder(bytes.NewReader(e.Value)).Decode(&p); err != nil {
		return nil, fmt.Errorf("coord: decode AM state: %w", err)
	}
	am := &AM{
		jobID:   jobID,
		st:      st,
		state:   p.State,
		seq:     p.Seq,
		pending: p.Pending,
	}
	// Take over by bumping the version.
	blob, err := am.encode()
	if err != nil {
		return nil, err
	}
	v, err := st.CAS(amKey(jobID), e.Version, blob)
	if err != nil {
		return nil, fmt.Errorf("coord: takeover race: %w", err)
	}
	am.version = v
	return am, nil
}

// encode must be called with or without the lock but with a consistent view.
func (am *AM) encode() ([]byte, error) {
	var buf bytes.Buffer
	p := persisted{State: am.state, Seq: am.seq, Pending: am.pending}
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		return nil, fmt.Errorf("coord: encode AM state: %w", err)
	}
	return buf.Bytes(), nil
}

// persistLocked writes the current state under CAS; callers hold am.mu.
func (am *AM) persistLocked() error {
	blob, err := am.encode()
	if err != nil {
		return err
	}
	v, err := am.st.CAS(amKey(am.jobID), am.version, blob)
	if err != nil {
		if errors.Is(err, store.ErrCASFailure) {
			return ErrFenced
		}
		return err
	}
	am.version = v
	return nil
}

// State returns the current state (for monitoring and tests).
func (am *AM) State() State {
	am.mu.Lock()
	defer am.mu.Unlock()
	return am.state
}

// Seq returns the number of adjustments performed so far.
func (am *AM) Seq() int64 {
	am.mu.Lock()
	defer am.mu.Unlock()
	return am.seq
}

// RequestAdjustment is the service API offered to the scheduler (step 1 of
// the adjustment procedure). add names workers being launched; remove names
// workers that will leave. If no new workers are required (pure scale-in),
// the adjustment is immediately Ready.
func (am *AM) RequestAdjustment(kind Kind, add, remove []string) error {
	return am.RequestAdjustmentTraced(kind, add, remove, telemetry.TraceContext{})
}

// RequestAdjustmentTraced is RequestAdjustment carrying the requesting
// span's identity: the context is stored with the pending adjustment and
// returned on the eventual Coordinate, linking request and application into
// one cross-process trace.
func (am *AM) RequestAdjustmentTraced(kind Kind, add, remove []string, tc telemetry.TraceContext) error {
	if kind != ScaleOut && kind != ScaleIn && kind != Migrate {
		return fmt.Errorf("coord: invalid kind %v", kind)
	}
	if kind == ScaleOut && len(add) == 0 {
		return errors.New("coord: scale-out without new workers")
	}
	if kind == ScaleIn && len(remove) == 0 {
		return errors.New("coord: scale-in without removed workers")
	}
	am.mu.Lock()
	defer am.mu.Unlock()
	if am.state != Idle {
		return fmt.Errorf("%w (state=%v)", ErrBusy, am.state)
	}
	reported := make(map[string]bool, len(add))
	for _, w := range add {
		reported[w] = false
	}
	am.pending = &pendingState{
		Kind:     kind,
		Add:      append([]string(nil), add...),
		Remove:   append([]string(nil), remove...),
		Reported: reported,
		Trace:    tc,
	}
	if len(add) == 0 {
		am.state = Ready
	} else {
		am.state = Pending
	}
	if err := am.persistLocked(); err != nil {
		// Roll back the in-memory transition so a fenced AM stays inert.
		am.state = Idle
		am.pending = nil
		return err
	}
	return nil
}

// ReportReady records that a newly launched worker finished start and
// initialization (step 2). When the last pending worker reports, the
// adjustment becomes Ready.
func (am *AM) ReportReady(worker string) error {
	am.mu.Lock()
	defer am.mu.Unlock()
	if am.state != Pending || am.pending == nil {
		return fmt.Errorf("coord: report from %q in state %v", worker, am.state)
	}
	done, ok := am.pending.Reported[worker]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownWorker, worker)
	}
	if done {
		return nil // duplicate report (resend); idempotent
	}
	am.pending.Reported[worker] = true
	for _, v := range am.pending.Reported {
		if !v {
			return am.persistLocked()
		}
	}
	am.state = Ready
	return am.persistLocked()
}

// Coordinate is called by the existing workers at iteration boundaries
// (step 3). If an adjustment is Ready it is returned and the AM goes back
// to Idle; otherwise ok is false and training proceeds immediately — this
// is what hides worker start and initialization off the critical path.
func (am *AM) Coordinate() (Adjustment, bool, error) {
	am.mu.Lock()
	defer am.mu.Unlock()
	if am.state != Ready || am.pending == nil {
		return Adjustment{}, false, nil
	}
	am.seq++
	adj := Adjustment{
		Seq:    am.seq,
		Kind:   am.pending.Kind,
		Add:    append([]string(nil), am.pending.Add...),
		Remove: append([]string(nil), am.pending.Remove...),
		Trace:  am.pending.Trace,
	}
	am.state = Idle
	am.pending = nil
	if err := am.persistLocked(); err != nil {
		return Adjustment{}, false, err
	}
	return adj, true, nil
}

// PendingWorkers returns the not-yet-reported workers of the pending
// adjustment (for monitoring).
func (am *AM) PendingWorkers() []string {
	am.mu.Lock()
	defer am.mu.Unlock()
	if am.pending == nil {
		return nil
	}
	var out []string
	for _, w := range am.pending.Add {
		if !am.pending.Reported[w] {
			out = append(out, w)
		}
	}
	return out
}
