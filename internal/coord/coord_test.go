package coord

import (
	"errors"
	"testing"

	"github.com/elan-sys/elan/internal/store"
)

func newAM(t *testing.T) (*AM, *store.Store) {
	t.Helper()
	st := store.New()
	am, err := NewAM("job1", st)
	if err != nil {
		t.Fatalf("NewAM: %v", err)
	}
	return am, st
}

func TestNewAMValidation(t *testing.T) {
	st := store.New()
	if _, err := NewAM("", st); err == nil {
		t.Fatal("empty job ID accepted")
	}
	if _, err := NewAM("j", nil); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := NewAM("j", st); err != nil {
		t.Fatalf("NewAM: %v", err)
	}
	if _, err := NewAM("j", st); err == nil {
		t.Fatal("duplicate AM accepted")
	}
}

func TestScaleOutLifecycle(t *testing.T) {
	am, _ := newAM(t)
	if am.State() != Idle {
		t.Fatalf("initial state = %v", am.State())
	}
	// Coordinate with nothing pending: keep training.
	if _, ok, err := am.Coordinate(); ok || err != nil {
		t.Fatalf("idle Coordinate = %v, %v", ok, err)
	}
	if err := am.RequestAdjustment(ScaleOut, []string{"w5", "w6"}, nil); err != nil {
		t.Fatalf("RequestAdjustment: %v", err)
	}
	if am.State() != Pending {
		t.Fatalf("state = %v, want Pending", am.State())
	}
	// Async property: coordination while workers are starting returns
	// no-adjustment, training proceeds.
	if _, ok, err := am.Coordinate(); ok || err != nil {
		t.Fatalf("pending Coordinate = %v, %v", ok, err)
	}
	if err := am.ReportReady("w5"); err != nil {
		t.Fatalf("ReportReady w5: %v", err)
	}
	if am.State() != Pending {
		t.Fatal("became ready with one of two reports")
	}
	if got := am.PendingWorkers(); len(got) != 1 || got[0] != "w6" {
		t.Fatalf("PendingWorkers = %v", got)
	}
	if err := am.ReportReady("w6"); err != nil {
		t.Fatalf("ReportReady w6: %v", err)
	}
	if am.State() != Ready {
		t.Fatalf("state = %v, want Ready", am.State())
	}
	adj, ok, err := am.Coordinate()
	if err != nil || !ok {
		t.Fatalf("Coordinate = %v, %v", ok, err)
	}
	if adj.Kind != ScaleOut || len(adj.Add) != 2 || adj.Seq != 1 {
		t.Fatalf("adjustment = %+v", adj)
	}
	if am.State() != Idle {
		t.Fatalf("state after adjustment = %v", am.State())
	}
	// Exactly-once: a second coordinate returns nothing.
	if _, ok, _ := am.Coordinate(); ok {
		t.Fatal("adjustment delivered twice")
	}
}

func TestScaleInImmediatelyReady(t *testing.T) {
	am, _ := newAM(t)
	if err := am.RequestAdjustment(ScaleIn, nil, []string{"w3", "w4"}); err != nil {
		t.Fatalf("RequestAdjustment: %v", err)
	}
	if am.State() != Ready {
		t.Fatalf("scale-in state = %v, want Ready (no new workers to wait for)", am.State())
	}
	adj, ok, err := am.Coordinate()
	if err != nil || !ok || adj.Kind != ScaleIn || len(adj.Remove) != 2 {
		t.Fatalf("Coordinate = %+v, %v, %v", adj, ok, err)
	}
}

func TestMigration(t *testing.T) {
	am, _ := newAM(t)
	if err := am.RequestAdjustment(Migrate, []string{"w9"}, []string{"w1"}); err != nil {
		t.Fatalf("RequestAdjustment: %v", err)
	}
	if err := am.ReportReady("w9"); err != nil {
		t.Fatalf("ReportReady: %v", err)
	}
	adj, ok, err := am.Coordinate()
	if err != nil || !ok {
		t.Fatalf("Coordinate: %v %v", ok, err)
	}
	if adj.Kind != Migrate || adj.Add[0] != "w9" || adj.Remove[0] != "w1" {
		t.Fatalf("adjustment = %+v", adj)
	}
}

func TestRequestValidation(t *testing.T) {
	am, _ := newAM(t)
	if err := am.RequestAdjustment(Kind(99), nil, nil); err == nil {
		t.Fatal("invalid kind accepted")
	}
	if err := am.RequestAdjustment(ScaleOut, nil, nil); err == nil {
		t.Fatal("scale-out without workers accepted")
	}
	if err := am.RequestAdjustment(ScaleIn, nil, nil); err == nil {
		t.Fatal("scale-in without workers accepted")
	}
}

func TestBusyRejectsSecondRequest(t *testing.T) {
	am, _ := newAM(t)
	if err := am.RequestAdjustment(ScaleOut, []string{"w5"}, nil); err != nil {
		t.Fatalf("RequestAdjustment: %v", err)
	}
	if err := am.RequestAdjustment(ScaleOut, []string{"w6"}, nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("second request = %v, want ErrBusy", err)
	}
}

func TestReportValidation(t *testing.T) {
	am, _ := newAM(t)
	if err := am.ReportReady("w5"); err == nil {
		t.Fatal("report in Idle accepted")
	}
	if err := am.RequestAdjustment(ScaleOut, []string{"w5"}, nil); err != nil {
		t.Fatalf("RequestAdjustment: %v", err)
	}
	if err := am.ReportReady("stranger"); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("unknown worker report = %v", err)
	}
	// Duplicate reports (message resends) are idempotent.
	if err := am.ReportReady("w5"); err != nil {
		t.Fatalf("ReportReady: %v", err)
	}
	if am.State() != Ready {
		t.Fatal("not ready after last report")
	}
}

func TestRecoverAfterFailure(t *testing.T) {
	am, st := newAM(t)
	if err := am.RequestAdjustment(ScaleOut, []string{"w5", "w6"}, nil); err != nil {
		t.Fatalf("RequestAdjustment: %v", err)
	}
	if err := am.ReportReady("w5"); err != nil {
		t.Fatalf("ReportReady: %v", err)
	}
	// AM crashes; a new incarnation recovers from the store.
	am2, err := Recover("job1", st)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if am2.State() != Pending {
		t.Fatalf("recovered state = %v, want Pending", am2.State())
	}
	if got := am2.PendingWorkers(); len(got) != 1 || got[0] != "w6" {
		t.Fatalf("recovered pending = %v", got)
	}
	// The recovery preserved w5's report.
	if err := am2.ReportReady("w6"); err != nil {
		t.Fatalf("ReportReady on recovered AM: %v", err)
	}
	adj, ok, err := am2.Coordinate()
	if err != nil || !ok || len(adj.Add) != 2 {
		t.Fatalf("Coordinate on recovered AM = %+v, %v, %v", adj, ok, err)
	}
}

func TestOldIncarnationFenced(t *testing.T) {
	am, st := newAM(t)
	// A new incarnation takes over.
	if _, err := Recover("job1", st); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	// The old incarnation's next mutation is fenced.
	err := am.RequestAdjustment(ScaleOut, []string{"w5"}, nil)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale AM mutation = %v, want ErrFenced", err)
	}
	// And it stayed inert (Idle) so it cannot hand out adjustments.
	if am.State() != Idle {
		t.Fatalf("fenced AM state = %v", am.State())
	}
}

func TestRecoverMissing(t *testing.T) {
	if _, err := Recover("ghost", store.New()); err == nil {
		t.Fatal("recovering a non-existent AM succeeded")
	}
	if _, err := Recover("ghost", nil); err == nil {
		t.Fatal("nil store accepted")
	}
}

func TestSeqIncrements(t *testing.T) {
	am, _ := newAM(t)
	for i := int64(1); i <= 3; i++ {
		if err := am.RequestAdjustment(ScaleIn, nil, []string{"w"}); err != nil {
			t.Fatalf("RequestAdjustment %d: %v", i, err)
		}
		adj, ok, err := am.Coordinate()
		if err != nil || !ok {
			t.Fatalf("Coordinate %d: %v %v", i, ok, err)
		}
		if adj.Seq != i {
			t.Fatalf("Seq = %d, want %d", adj.Seq, i)
		}
	}
	if am.Seq() != 3 {
		t.Fatalf("Seq() = %d", am.Seq())
	}
}
