package coord

import (
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/store"
	"github.com/elan-sys/elan/internal/transport"
)

// setupService builds a service on a sim-clock bus: ack timeouts and resends
// run on auto-advanced virtual time.
func setupService(t *testing.T, cfg transport.BusConfig) (*transport.Bus, *AM) {
	t.Helper()
	sim := clock.NewSim(time.Unix(0, 0))
	t.Cleanup(sim.AutoAdvance(0))
	cfg.Clock = sim
	bus := transport.NewBus(cfg)
	t.Cleanup(bus.Close)
	am, err := NewAM("job1", store.New())
	if err != nil {
		t.Fatalf("NewAM: %v", err)
	}
	if _, err := NewService(am, bus, "am"); err != nil {
		t.Fatalf("NewService: %v", err)
	}
	return bus, am
}

func TestServiceFullAdjustmentOverBus(t *testing.T) {
	bus, _ := setupService(t, transport.DefaultBusConfig())
	sched, err := NewClient(bus, "scheduler", "am")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	w5, err := NewClient(bus, "w5", "am")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	existing, err := NewClient(bus, "w1", "am")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	if err := sched.RequestAdjustment(ScaleOut, []string{"w5"}, nil); err != nil {
		t.Fatalf("RequestAdjustment: %v", err)
	}
	// Existing worker coordinates before the new worker reported: no
	// adjustment, no blocking.
	if _, ok, err := existing.Coordinate(); ok || err != nil {
		t.Fatalf("early Coordinate = %v, %v", ok, err)
	}
	st, err := existing.AMState()
	if err != nil {
		t.Fatalf("AMState: %v", err)
	}
	if st.State != Pending || len(st.Pending) != 1 {
		t.Fatalf("AMState = %+v", st)
	}
	if err := w5.ReportReady("w5"); err != nil {
		t.Fatalf("ReportReady: %v", err)
	}
	adj, ok, err := existing.Coordinate()
	if err != nil || !ok {
		t.Fatalf("Coordinate = %v, %v", ok, err)
	}
	if adj.Kind != ScaleOut || adj.Add[0] != "w5" {
		t.Fatalf("adjustment = %+v", adj)
	}
}

func TestServiceSurvivesMessageLoss(t *testing.T) {
	cfg := transport.DefaultBusConfig()
	cfg.DropRate = 0.3
	cfg.Seed = 99
	cfg.AckTimeout = 5 * time.Millisecond
	cfg.MaxRetries = 60
	bus, am := setupService(t, cfg)
	sched, err := NewClient(bus, "scheduler", "am")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	w5, err := NewClient(bus, "w5", "am")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if err := sched.RequestAdjustment(ScaleOut, []string{"w5"}, nil); err != nil {
		t.Fatalf("RequestAdjustment under loss: %v", err)
	}
	if err := w5.ReportReady("w5"); err != nil {
		t.Fatalf("ReportReady under loss: %v", err)
	}
	if am.State() != Ready {
		t.Fatalf("state = %v, want Ready", am.State())
	}
	// Despite resends, the adjustment is delivered exactly once.
	existing, err := NewClient(bus, "w1", "am")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	var delivered int
	for i := 0; i < 5; i++ {
		_, ok, err := existing.Coordinate()
		if err != nil {
			t.Fatalf("Coordinate: %v", err)
		}
		if ok {
			delivered++
		}
	}
	if delivered != 1 {
		t.Fatalf("adjustment delivered %d times, want 1", delivered)
	}
}

func TestServiceErrorsPropagate(t *testing.T) {
	bus, _ := setupService(t, transport.DefaultBusConfig())
	sched, err := NewClient(bus, "scheduler", "am")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	// Invalid request: scale-out without workers.
	if err := sched.RequestAdjustment(ScaleOut, nil, nil); err == nil {
		t.Fatal("invalid request accepted over bus")
	}
	// Report for a worker not in any adjustment.
	w9, err := NewClient(bus, "w9", "am")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if err := w9.ReportReady("w9"); err == nil {
		t.Fatal("stray report accepted")
	}
}

func TestServiceUnknownKind(t *testing.T) {
	bus, _ := setupService(t, transport.DefaultBusConfig())
	client, err := NewClient(bus, "x", "am")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if _, err := client.ep.Call("am", "bogus.kind", nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
