// Package simclock implements a deterministic discrete-event simulation
// engine. All timing-sensitive experiments in this repository run against a
// virtual clock instead of wall time so that results are reproducible and
// laptop-scale: a "second" of cluster time costs nothing to simulate.
//
// The engine is a classic event-queue design: events carry a virtual
// timestamp, the simulation repeatedly pops the earliest event and runs its
// callback, and callbacks may schedule further events. Ties are broken by
// insertion order, which makes runs fully deterministic for a fixed seed.
package simclock

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrStopped is returned by Run when the simulation is stopped explicitly
// before the event queue drains.
var ErrStopped = errors.New("simclock: simulation stopped")

// Event is a scheduled callback in virtual time.
type Event struct {
	// At is the virtual time at which the event fires.
	At time.Duration
	// Name annotates the event for tracing and error messages.
	Name string
	// Fn is the callback to execute. It runs on the simulation goroutine.
	Fn func()

	seq   uint64
	index int
	dead  bool
}

// eventQueue implements heap.Interface ordered by (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Clock is a discrete-event simulation clock. The zero value is not usable;
// construct one with New.
type Clock struct {
	now     time.Duration
	queue   eventQueue
	nextSeq uint64
	stopped bool
	// Trace, when non-nil, receives a line for every event executed.
	Trace func(at time.Duration, name string)
}

// New returns a clock starting at virtual time zero with an empty queue.
func New() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Schedule enqueues fn to run at absolute virtual time at. Scheduling in the
// past is an error: the simulation cannot rewind.
func (c *Clock) Schedule(at time.Duration, name string, fn func()) (*Event, error) {
	if at < c.now {
		return nil, fmt.Errorf("simclock: schedule %q at %v before now %v", name, at, c.now)
	}
	ev := &Event{At: at, Name: name, Fn: fn, seq: c.nextSeq}
	c.nextSeq++
	heap.Push(&c.queue, ev)
	return ev, nil
}

// After enqueues fn to run after delay d from the current virtual time.
// Negative delays are clamped to zero.
func (c *Clock) After(d time.Duration, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	// Scheduling at or after now can never fail.
	ev, _ := c.Schedule(c.now+d, name, fn)
	return ev
}

// Cancel removes a pending event. Cancelling an already-fired or already-
// cancelled event is a no-op and returns false.
func (c *Clock) Cancel(ev *Event) bool {
	if ev == nil || ev.dead || ev.index < 0 || ev.index >= len(c.queue) || c.queue[ev.index] != ev {
		return false
	}
	ev.dead = true
	heap.Remove(&c.queue, ev.index)
	return true
}

// Stop aborts the run loop after the current event completes.
func (c *Clock) Stop() { c.stopped = true }

// Pending reports the number of events waiting in the queue.
func (c *Clock) Pending() int { return len(c.queue) }

// Next returns the virtual timestamp of the earliest pending event, or
// false when the queue is empty. Drivers that advance the clock from
// outside (the concurrent clock.Sim wrapper) use it to jump straight to
// the next deadline.
func (c *Clock) Next() (time.Duration, bool) {
	if len(c.queue) == 0 {
		return 0, false
	}
	return c.queue[0].At, true
}

// Run executes events in timestamp order until the queue drains, Stop is
// called, or the virtual clock passes deadline (use RunAll for no deadline).
// It returns ErrStopped when stopped explicitly.
func (c *Clock) Run(deadline time.Duration) error {
	c.stopped = false
	for len(c.queue) > 0 {
		if c.stopped {
			return ErrStopped
		}
		next := c.queue[0]
		if next.At > deadline {
			// Leave future events queued; advance the clock to the deadline
			// so that Now() reflects how far the simulation ran.
			c.now = deadline
			return nil
		}
		popped, ok := heap.Pop(&c.queue).(*Event)
		if !ok {
			return errors.New("simclock: corrupt event queue")
		}
		c.now = popped.At
		if c.Trace != nil {
			c.Trace(c.now, popped.Name)
		}
		popped.dead = true
		popped.Fn()
	}
	return nil
}

// RunAll executes events until the queue drains or Stop is called.
func (c *Clock) RunAll() error {
	return c.Run(time.Duration(math.MaxInt64))
}

// Advance moves virtual time forward by d without executing any events. It is
// intended for driving the clock from an external discrete-time loop (the
// scheduler simulator uses fixed ticks). Events scheduled inside the skipped
// window fire in order before Advance returns.
func (c *Clock) Advance(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("simclock: negative advance %v", d)
	}
	target := c.now + d
	if err := c.Run(target); err != nil {
		return err
	}
	if c.now < target {
		c.now = target
	}
	return nil
}
