package simclock

import (
	"errors"
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	c := New()
	var got []string
	c.After(3*time.Second, "c", func() { got = append(got, "c") })
	c.After(1*time.Second, "a", func() { got = append(got, "a") })
	c.After(2*time.Second, "b", func() { got = append(got, "b") })
	if err := c.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	want := "abc"
	if s := join(got); s != want {
		t.Fatalf("order = %q, want %q", s, want)
	}
	if c.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", c.Now())
	}
}

func TestTieBreakInsertionOrder(t *testing.T) {
	c := New()
	var got []string
	for _, name := range []string{"x", "y", "z"} {
		name := name
		c.After(time.Second, name, func() { got = append(got, name) })
	}
	if err := c.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if s := join(got); s != "xyz" {
		t.Fatalf("tie order = %q, want xyz", s)
	}
}

func TestScheduleInPast(t *testing.T) {
	c := New()
	c.After(time.Second, "advance", func() {})
	if err := c.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if _, err := c.Schedule(0, "past", func() {}); err == nil {
		t.Fatal("scheduling in the past succeeded, want error")
	}
}

func TestNestedScheduling(t *testing.T) {
	c := New()
	var fired []time.Duration
	c.After(time.Second, "outer", func() {
		c.After(2*time.Second, "inner", func() {
			fired = append(fired, c.Now())
		})
	})
	if err := c.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(fired) != 1 || fired[0] != 3*time.Second {
		t.Fatalf("inner fired at %v, want [3s]", fired)
	}
}

func TestCancel(t *testing.T) {
	c := New()
	ran := false
	ev := c.After(time.Second, "doomed", func() { ran = true })
	if !c.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if c.Cancel(ev) {
		t.Fatal("Cancel returned true for already-cancelled event")
	}
	if err := c.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if ran {
		t.Fatal("cancelled event still ran")
	}
}

func TestStop(t *testing.T) {
	c := New()
	var count int
	c.After(time.Second, "first", func() {
		count++
		c.Stop()
	})
	c.After(2*time.Second, "second", func() { count++ })
	err := c.RunAll()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("RunAll err = %v, want ErrStopped", err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", c.Pending())
	}
}

func TestRunDeadline(t *testing.T) {
	c := New()
	var fired int
	c.After(time.Second, "in", func() { fired++ })
	c.After(10*time.Second, "out", func() { fired++ })
	if err := c.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if c.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", c.Now())
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", c.Pending())
	}
}

func TestAdvance(t *testing.T) {
	c := New()
	var at time.Duration
	c.After(2*time.Second, "ev", func() { at = c.Now() })
	if err := c.Advance(5 * time.Second); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if at != 2*time.Second {
		t.Fatalf("event fired at %v, want 2s", at)
	}
	if c.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", c.Now())
	}
	if err := c.Advance(-time.Second); err == nil {
		t.Fatal("negative Advance succeeded, want error")
	}
}

func TestNegativeAfterClamped(t *testing.T) {
	c := New()
	ran := false
	c.After(-time.Second, "neg", func() { ran = true })
	if err := c.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
	if c.Now() != 0 {
		t.Fatalf("Now = %v, want 0", c.Now())
	}
}

func TestTrace(t *testing.T) {
	c := New()
	var names []string
	c.Trace = func(_ time.Duration, name string) { names = append(names, name) }
	c.After(time.Second, "one", func() {})
	c.After(2*time.Second, "two", func() {})
	if err := c.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(names) != 2 || names[0] != "one" || names[1] != "two" {
		t.Fatalf("trace = %v", names)
	}
}

func join(ss []string) string {
	out := ""
	for _, s := range ss {
		out += s
	}
	return out
}
