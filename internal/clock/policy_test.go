package clock

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRuntimePackagesUseInjectedClock enforces the unified-time invariant:
// no non-test file in the coordination stack (transport, coord, worker) or
// the telemetry layer may read or wait on wall time directly — all timing
// must flow through an injected clock.Clock so the whole stack runs
// identically on simulated time (and traces carry exact virtual
// timestamps). The CI workflow runs the same check via grep; this test
// keeps it enforced locally and survives workflow drift.
func TestRuntimePackagesUseInjectedClock(t *testing.T) {
	banned := map[string]bool{
		"Sleep": true, "After": true, "AfterFunc": true, "Now": true,
		"NewTimer": true, "NewTicker": true, "Tick": true, "Since": true,
	}
	var violations []string
	for _, dir := range []string{"../transport", "../coord", "../worker", "../telemetry", "../chaos"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("ReadDir %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			// Only selector expressions on the time package identifier
			// count; time.Duration / time.Time type references are fine.
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != "time" || id.Obj != nil {
					return true
				}
				if banned[sel.Sel.Name] {
					violations = append(violations, fmt.Sprintf("%s: time.%s",
						fset.Position(call.Pos()), sel.Sel.Name))
				}
				return true
			})
		}
	}
	if len(violations) > 0 {
		t.Fatalf("direct wall-clock calls in runtime packages (inject a clock.Clock instead):\n  %s",
			strings.Join(violations, "\n  "))
	}
}
