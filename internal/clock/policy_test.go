package clock_test

import (
	"strings"
	"testing"

	"github.com/elan-sys/elan/internal/analysis"
)

// TestClockPolicyTreeWide enforces the unified-time invariant through the
// clockpolicy analyzer from internal/analysis — the single source of truth
// for the banned-identifier list and the package allowlist. It replaces
// the hand-rolled per-package AST walk (and the CI grep) that previously
// guarded only five packages: the analyzer covers every non-test package
// in the module, and cmd/elan-vet runs the same check in CI. This thin
// test keeps the invariant enforced by `go test ./...` alone, surviving
// workflow drift.
func TestClockPolicyTreeWide(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	pkgs, err := analysis.LoadPackages(root, "./...")
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	diags := analysis.Run([]*analysis.Analyzer{analysis.ClockPolicy}, pkgs)
	if len(diags) > 0 {
		var lines []string
		for _, d := range diags {
			lines = append(lines, d.String())
		}
		t.Fatalf("direct wall-clock calls in runtime packages (inject a clock.Clock instead):\n  %s",
			strings.Join(lines, "\n  "))
	}
}
