// Package clock is the single time substrate shared by the distributed
// runtime (transport, coord, worker, core) and the simulator. Every layer
// that sleeps, times out, or reads the current time does so through the
// Clock interface, so the same coordination stack runs on wall time in a
// deployment and on deterministic virtual time in tests and simulations —
// the property Elan's sub-second adjustment and heartbeat-driven failure
// detection claims depend on being able to measure trustworthily.
//
// Two implementations are provided: Wall (the real time package) and Sim
// (a goroutine-safe wrapper around the internal/simclock discrete-event
// engine, advanced manually or by an auto-advance driver).
package clock

import (
	"context"
	"time"
)

// Clock abstracts the time operations the runtime needs. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
	// Sleep blocks for d or until ctx is cancelled, returning ctx.Err()
	// in the latter case. A nil ctx never cancels.
	Sleep(ctx context.Context, d time.Duration) error
	// After returns a channel that receives the current time once d has
	// elapsed. Use NewTimer when the wait may need to be cancelled.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a ticker that fires every d. d must be positive.
	NewTicker(d time.Duration) Ticker
}

// Timer is a cancellable one-shot timer (the time.Timer shape behind an
// interface so simulated timers can implement it).
type Timer interface {
	// C is the channel the expiry is delivered on.
	C() <-chan time.Time
	// Stop cancels the timer; it reports whether the timer was still
	// pending. It does not drain C.
	Stop() bool
	// Reset re-arms the timer for d, reporting whether it was still
	// pending. Callers must only Reset a timer that has fired and been
	// drained, or been stopped — the same contract as time.Timer.
	Reset(d time.Duration) bool
}

// Ticker delivers repeated ticks. Ticks are dropped (not queued) when the
// receiver lags, matching time.Ticker.
type Ticker interface {
	// C is the channel ticks are delivered on.
	C() <-chan time.Time
	// Stop turns the ticker off. It does not close C.
	Stop()
}

// Wall is the production Clock: real time from the time package. The zero
// value is ready to use.
type Wall struct{}

// Now implements Clock.
func (Wall) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Wall) Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep implements Clock.
func (Wall) Sleep(ctx context.Context, d time.Duration) error {
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	if d <= 0 {
		return nil
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// After implements Clock.
func (Wall) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTimer implements Clock.
func (Wall) NewTimer(d time.Duration) Timer { return wallTimer{time.NewTimer(d)} }

// NewTicker implements Clock.
func (Wall) NewTicker(d time.Duration) Ticker { return wallTicker{time.NewTicker(d)} }

type wallTimer struct{ t *time.Timer }

func (w wallTimer) C() <-chan time.Time        { return w.t.C }
func (w wallTimer) Stop() bool                 { return w.t.Stop() }
func (w wallTimer) Reset(d time.Duration) bool { return w.t.Reset(d) }

type wallTicker struct{ t *time.Ticker }

func (w wallTicker) C() <-chan time.Time { return w.t.C }
func (w wallTicker) Stop()               { w.t.Stop() }
