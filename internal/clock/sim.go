package clock

import (
	"context"
	"sync"
	"time"

	"github.com/elan-sys/elan/internal/simclock"
)

// defaultGrain is the real-time pause between auto-advance steps: long
// enough for goroutines unblocked by the previous step to run and register
// their next waiter, short enough that a simulated ack timeout costs
// microseconds instead of its face value.
const defaultGrain = 200 * time.Microsecond

// Sim is a Clock on virtual time, backed by the internal/simclock
// discrete-event engine. Unlike the bare engine it is safe for concurrent
// use: any number of goroutines may sleep or wait on timers while a driver
// (a test calling Advance, or the AutoAdvance goroutine) moves time
// forward. Waiters scheduled for the same instant fire in registration
// order, inherited from the engine's deterministic tie-break.
type Sim struct {
	mu    sync.Mutex
	sc    *simclock.Clock
	epoch time.Time
}

// NewSim returns a simulated clock whose Now starts at epoch.
func NewSim(epoch time.Time) *Sim {
	return &Sim{sc: simclock.New(), epoch: epoch}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch.Add(s.sc.Now())
}

// Since implements Clock.
func (s *Sim) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

// Elapsed returns the virtual time advanced since construction.
func (s *Sim) Elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sc.Now()
}

// Advance moves virtual time forward by d, firing every waiter whose
// deadline falls inside the window, in timestamp order. Negative d is a
// no-op.
func (s *Sim) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.sc.Advance(d)
}

// AdvanceToNext jumps virtual time to the earliest pending deadline and
// fires it (plus anything scheduled for the same instant). It reports
// whether there was anything to fire.
func (s *Sim) AdvanceToNext() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	at, ok := s.sc.Next()
	if !ok {
		return false
	}
	_ = s.sc.Advance(at - s.sc.Now())
	return true
}

// Pending reports the number of registered waiters.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sc.Pending()
}

// AutoAdvance starts a background driver that repeatedly jumps virtual
// time to the earliest pending deadline, pausing grain of real time
// between jumps so goroutines unblocked by one step get to run and
// register their next waiter (grain <= 0 selects a default). The returned
// stop function halts the driver; it is idempotent. Tests use AutoAdvance
// to run timeout-driven protocols (ack/resend loops, retry backoff) to
// completion without real sleeps.
func (s *Sim) AutoAdvance(grain time.Duration) (stop func()) {
	if grain <= 0 {
		grain = defaultGrain
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(grain)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s.AdvanceToNext()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Sleep implements Clock. The call returns when a driver advances virtual
// time past the deadline, or immediately with ctx.Err() once ctx is
// cancelled.
func (s *Sim) Sleep(ctx context.Context, d time.Duration) error {
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	if d <= 0 {
		return nil
	}
	fired := make(chan struct{})
	s.mu.Lock()
	ev := s.sc.After(d, "clock.Sleep", func() { close(fired) })
	s.mu.Unlock()
	if ctx == nil {
		<-fired
		return nil
	}
	select {
	case <-fired:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		s.sc.Cancel(ev)
		s.mu.Unlock()
		return ctx.Err()
	}
}

// After implements Clock.
func (s *Sim) After(d time.Duration) <-chan time.Time { return s.NewTimer(d).C() }

// NewTimer implements Clock.
func (s *Sim) NewTimer(d time.Duration) Timer {
	t := &simTimer{s: s, ch: make(chan time.Time, 1)}
	s.mu.Lock()
	t.schedule(d)
	s.mu.Unlock()
	return t
}

// simTimer is a one-shot timer on virtual time. Its callback runs with
// s.mu held (waiters fire inside Advance), so it touches the engine
// directly and communicates through the buffered channel only.
type simTimer struct {
	s  *Sim
	ch chan time.Time
	ev *simclock.Event
}

// schedule arms the timer; callers hold s.mu.
func (t *simTimer) schedule(d time.Duration) {
	t.ev = t.s.sc.After(d, "clock.Timer", func() {
		select {
		case t.ch <- t.s.epoch.Add(t.s.sc.Now()):
		default:
		}
	})
}

func (t *simTimer) C() <-chan time.Time { return t.ch }

func (t *simTimer) Stop() bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	return t.s.sc.Cancel(t.ev)
}

func (t *simTimer) Reset(d time.Duration) bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	active := t.s.sc.Cancel(t.ev)
	t.schedule(d)
	return active
}

// NewTicker implements Clock.
func (s *Sim) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker interval")
	}
	k := &simTicker{s: s, d: d, ch: make(chan time.Time, 1)}
	s.mu.Lock()
	k.schedule()
	s.mu.Unlock()
	return k
}

// simTicker re-arms itself from its own callback; like simTimer its
// callback runs with s.mu held.
type simTicker struct {
	s       *Sim
	d       time.Duration
	ch      chan time.Time
	ev      *simclock.Event
	stopped bool
}

// schedule arms the next tick; callers hold s.mu.
func (k *simTicker) schedule() {
	k.ev = k.s.sc.After(k.d, "clock.Ticker", func() {
		select {
		case k.ch <- k.s.epoch.Add(k.s.sc.Now()):
		default:
		}
		if !k.stopped {
			k.schedule()
		}
	})
}

func (k *simTicker) C() <-chan time.Time { return k.ch }

func (k *simTicker) Stop() {
	k.s.mu.Lock()
	defer k.s.mu.Unlock()
	k.stopped = true
	k.s.sc.Cancel(k.ev)
}
