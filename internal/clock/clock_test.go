package clock

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestWallImplementsClock(t *testing.T) {
	var c Clock = Wall{}
	before := c.Now()
	if err := c.Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	if c.Since(before) <= 0 {
		t.Fatal("time did not advance")
	}
}

func TestWallSleepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var w Wall
	if err := w.Sleep(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("Sleep on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestSimNowAndAdvance(t *testing.T) {
	epoch := time.Unix(1000, 0)
	s := NewSim(epoch)
	if got := s.Now(); !got.Equal(epoch) {
		t.Fatalf("Now = %v, want epoch", got)
	}
	s.Advance(3 * time.Second)
	if got := s.Now(); !got.Equal(epoch.Add(3 * time.Second)) {
		t.Fatalf("Now = %v after advance", got)
	}
	if s.Elapsed() != 3*time.Second {
		t.Fatalf("Elapsed = %v", s.Elapsed())
	}
	s.Advance(-time.Second) // no-op
	if s.Elapsed() != 3*time.Second {
		t.Fatalf("negative advance moved time: %v", s.Elapsed())
	}
}

func TestSimSleepWakesOnAdvance(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	done := make(chan error, 1)
	go func() { done <- s.Sleep(context.Background(), 10*time.Second) }()
	// Wait until the sleeper registered, then release it.
	waitPending(t, s, 1)
	s.Advance(10 * time.Second)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Sleep: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sleeper never woke")
	}
}

func TestSimSleepCancelled(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Sleep(ctx, time.Hour) }()
	waitPending(t, s, 1)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Sleep = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled sleeper never returned")
	}
	if s.Pending() != 0 {
		t.Fatalf("cancelled sleep left %d waiters", s.Pending())
	}
}

func TestSimTimerFiresOnce(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	tm := s.NewTimer(5 * time.Second)
	s.Advance(4 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired early")
	default:
	}
	s.Advance(time.Second)
	at := <-tm.C()
	if !at.Equal(time.Unix(5, 0)) {
		t.Fatalf("fired at %v", at)
	}
	if tm.Stop() {
		t.Fatal("Stop on fired timer reported active")
	}
}

func TestSimTimerStopAndReset(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	tm := s.NewTimer(5 * time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer reported inactive")
	}
	s.Advance(10 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	tm.Reset(2 * time.Second)
	s.Advance(2 * time.Second)
	if got := <-tm.C(); !got.Equal(time.Unix(12, 0)) {
		t.Fatalf("reset timer fired at %v", got)
	}
}

func TestSimTickerTicksAndStops(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	k := s.NewTicker(time.Second)
	for i := 1; i <= 3; i++ {
		s.Advance(time.Second)
		got := <-k.C()
		if !got.Equal(time.Unix(int64(i), 0)) {
			t.Fatalf("tick %d at %v", i, got)
		}
	}
	// A lagging receiver drops ticks instead of queueing them.
	s.Advance(5 * time.Second)
	<-k.C()
	select {
	case at := <-k.C():
		t.Fatalf("queued tick delivered: %v", at)
	default:
	}
	k.Stop()
	pend := s.Pending()
	s.Advance(10 * time.Second)
	if s.Pending() != 0 || pend != 0 {
		t.Fatalf("stopped ticker still scheduled (%d pending)", pend)
	}
}

func TestSimAutoAdvanceDrivesWaiters(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	stop := s.AutoAdvance(0)
	defer stop()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// An hour of virtual time per sleeper; wall cost must be tiny.
			for j := 0; j < 6; j++ {
				if err := s.Sleep(context.Background(), 10*time.Minute); err != nil {
					t.Errorf("Sleep: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if real := time.Since(start); real > 5*time.Second {
		t.Fatalf("auto-advance took %v of real time", real)
	}
	if s.Elapsed() < time.Hour {
		t.Fatalf("virtual time only advanced %v", s.Elapsed())
	}
}

func TestSimDeterministicOrder(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	a := s.NewTimer(time.Second)
	b := s.NewTimer(time.Second)
	s.Advance(time.Second)
	ta, tb := <-a.C(), <-b.C()
	if !ta.Equal(tb) {
		t.Fatalf("same-deadline timers fired at %v and %v", ta, tb)
	}
}

// waitPending blocks until the sim clock has at least n registered waiters.
func waitPending(t *testing.T, s *Sim, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.Pending() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters registered, want %d", s.Pending(), n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}
