// Package metrics provides the statistics and reporting helpers shared by
// every experiment in this repository: summary statistics with standard
// deviations (the paper reports error bars as standard deviation), time
// series recording, and fixed-width table printers that the benchmark harness
// uses to emit rows in the same layout as the paper's tables and figures.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary holds the aggregate statistics of a sample set.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes summary statistics of xs. An empty sample yields a zero
// Summary. Stddev is the sample standard deviation (n-1 denominator), which is
// what error bars in the paper's figures represent.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile on already-sorted non-empty input.
func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles holds the tail percentiles reported by the telemetry layer's
// histograms (latency distributions are summarized as P50/P95/P99, the
// shape of the paper's timing claims).
type Quantiles struct {
	P50 float64
	P95 float64
	P99 float64
}

// QuantilesOf computes P50/P95/P99 of xs with a single sort, using the
// same closest-rank interpolation as Percentile. Empty input yields a zero
// Quantiles.
func QuantilesOf(xs []float64) Quantiles {
	if len(xs) == 0 {
		return Quantiles{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Quantiles{
		P50: percentileSorted(sorted, 50),
		P95: percentileSorted(sorted, 95),
		P99: percentileSorted(sorted, 99),
	}
}

// Series is an append-only (x, y) time series.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point to the series.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len reports the number of points in the series.
func (s *Series) Len() int { return len(s.X) }

// MeanY returns the mean of the series' Y values.
func (s *Series) MeanY() float64 { return Mean(s.Y) }

// Downsample returns a copy of the series with at most n points, picked at
// evenly spaced indices. It returns the series unchanged if it already has n
// or fewer points.
func (s *Series) Downsample(n int) *Series {
	if n <= 0 || s.Len() <= n {
		return s
	}
	out := &Series{Name: s.Name}
	step := float64(s.Len()-1) / float64(n-1)
	for i := 0; i < n; i++ {
		idx := int(math.Round(float64(i) * step))
		out.Add(s.X[idx], s.Y[idx])
	}
	return out
}

// Table accumulates rows and renders them with aligned columns. It is the
// uniform output format of the benchmark harness.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row. Cells are formatted with %v; float64 cells use %.4g
// to keep columns narrow, and Summary cells render as "mean +/- stddev".
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case Summary:
			row[i] = fmt.Sprintf("%s +/- %s", trimFloat(v.Mean), trimFloat(v.Stddev))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows added.
func (t *Table) NumRows() int { return len(t.rows) }

func trimFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, 0, len(cells))
		for i, cell := range cells {
			width := len(cell)
			if i < len(widths) {
				width = widths[i]
			}
			parts = append(parts, pad(cell, width))
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// PlotASCII renders series as a coarse ASCII chart, used by cmd/elan-bench to
// visualize figure-style results in the terminal. Each series gets its own
// marker; points are bucketed into a width x height grid.
func PlotASCII(w io.Writer, title string, width, height int, series ...*Series) {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
			total++
		}
	}
	if total == 0 {
		fmt.Fprintf(w, "== %s == (no data)\n", title)
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	markers := "*o+x#@%&"
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			cy := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			grid[height-1-cy][cx] = m
		}
	}
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "y: [%s, %s]\n", trimFloat(minY), trimFloat(maxY))
	for _, line := range grid {
		fmt.Fprintf(w, "|%s|\n", string(line))
	}
	fmt.Fprintf(w, "x: [%s, %s]\n", trimFloat(minX), trimFloat(maxX))
	for si, s := range series {
		fmt.Fprintf(w, "  %c = %s\n", markers[si%len(markers)], s.Name)
	}
}

// RenderCSV writes the table as CSV (RFC-4180 quoting for cells containing
// commas or quotes), so figure data can be re-plotted with external tools.
func (t *Table) RenderCSV(w io.Writer) error {
	writeRecord := func(cells []string) error {
		for i, cell := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, cell); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRecord(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRecord(row); err != nil {
			return err
		}
	}
	return nil
}

// CSV renders the series as two-column CSV with the given column names.
func (s *Series) CSV(w io.Writer, xName, yName string) error {
	if _, err := fmt.Fprintf(w, "%s,%s\n", xName, yName); err != nil {
		return err
	}
	for i := range s.X {
		if _, err := fmt.Fprintf(w, "%g,%g\n", s.X[i], s.Y[i]); err != nil {
			return err
		}
	}
	return nil
}
