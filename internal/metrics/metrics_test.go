package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Stddev != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Stddev != 0 || s.Min != 5 || s.Max != 5 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	// Sample 2,4,4,4,5,5,7,9: mean 5, sample stddev sqrt(32/7).
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(s.Mean, 5) {
		t.Fatalf("mean = %v, want 5", s.Mean)
	}
	want := math.Sqrt(32.0 / 7.0)
	if !almostEq(s.Stddev, want) {
		t.Fatalf("stddev = %v, want %v", s.Stddev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeProperties(t *testing.T) {
	prop := func(xs []float64) bool {
		for i, x := range xs {
			// quick may generate NaN/Inf via extreme floats; clamp to a sane range.
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
			xs[i] = math.Mod(xs[i], 1e6)
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		if s.Min > s.Max {
			return false
		}
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		return s.Stddev >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); !almostEq(got, 5) {
		t.Fatalf("Percentile(50) = %v, want 5", got)
	}
	if got := Percentile(xs, 30); !almostEq(got, 3) {
		t.Fatalf("Percentile(30) = %v, want 3", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "throughput"
	s.Add(1, 10)
	s.Add(2, 20)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !almostEq(s.MeanY(), 15) {
		t.Fatalf("MeanY = %v", s.MeanY())
	}
}

func TestSeriesDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(i*i))
	}
	d := s.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("downsampled len = %d, want 10", d.Len())
	}
	if d.X[0] != 0 || d.X[9] != 99 {
		t.Fatalf("endpoints = %v, %v", d.X[0], d.X[9])
	}
	// No-op when already small enough.
	if got := d.Downsample(50); got.Len() != 10 {
		t.Fatalf("no-op downsample len = %d", got.Len())
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "model", "workers", "throughput")
	tb.AddRow("ResNet-50", 8, 1234.5678)
	tb.AddRow("VGG-19", 16, Summary{Mean: 10, Stddev: 0.5})
	out := tb.String()
	for _, want := range []string{"demo", "model", "ResNet-50", "VGG-19", "10 +/- 0.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "bbbb")
	tb.AddRow("xxxxxx", 1)
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3 (header, sep, row)", len(lines))
	}
	// Header cell "a" must be padded to the row cell width (6).
	if !strings.HasPrefix(lines[0], "a     ") {
		t.Fatalf("header not padded: %q", lines[0])
	}
}

func TestPlotASCII(t *testing.T) {
	var s Series
	s.Name = "line"
	for i := 0; i < 20; i++ {
		s.Add(float64(i), float64(i))
	}
	var b strings.Builder
	PlotASCII(&b, "test-plot", 40, 10, &s)
	out := b.String()
	if !strings.Contains(out, "test-plot") || !strings.Contains(out, "* = line") {
		t.Fatalf("plot output unexpected:\n%s", out)
	}
}

func TestPlotASCIIEmpty(t *testing.T) {
	var b strings.Builder
	PlotASCII(&b, "empty", 40, 10)
	if !strings.Contains(b.String(), "no data") {
		t.Fatalf("empty plot output: %s", b.String())
	}
}

func TestTrimFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{5, "5"}, {1234.56, "1234.6"}, {12.345, "12.35"}, {0.12345, "0.1235"},
	}
	for _, c := range cases {
		if got := trimFloat(c.in); got != c.want {
			t.Errorf("trimFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tb := NewTable("demo", "model", "note")
	tb.AddRow("ResNet-50", `has "quotes", and commas`)
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatalf("RenderCSV: %v", err)
	}
	out := b.String()
	want := "model,note\nResNet-50,\"has \"\"quotes\"\", and commas\"\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestSeriesCSV(t *testing.T) {
	var s Series
	s.Add(1, 2.5)
	s.Add(3, 4)
	var b strings.Builder
	if err := s.CSV(&b, "workers", "throughput"); err != nil {
		t.Fatalf("CSV: %v", err)
	}
	want := "workers,throughput\n1,2.5\n3,4\n"
	if b.String() != want {
		t.Fatalf("CSV = %q", b.String())
	}
}

func TestQuantilesEmptyAndSingle(t *testing.T) {
	if q := QuantilesOf(nil); q != (Quantiles{}) {
		t.Fatalf("empty quantiles = %+v", q)
	}
	q := QuantilesOf([]float64{3})
	if q.P50 != 3 || q.P95 != 3 || q.P99 != 3 {
		t.Fatalf("single quantiles = %+v", q)
	}
}

func TestQuantilesMatchPercentile(t *testing.T) {
	xs := []float64{9, 1, 4, 7, 2, 8, 3, 6, 5, 0}
	q := QuantilesOf(xs)
	for _, c := range []struct {
		p    float64
		got  float64
		name string
	}{
		{50, q.P50, "P50"},
		{95, q.P95, "P95"},
		{99, q.P99, "P99"},
	} {
		if want := Percentile(xs, c.p); !almostEq(c.got, want) {
			t.Errorf("%s = %v, Percentile(%v) = %v", c.name, c.got, c.p, want)
		}
	}
}

func TestQuantilesProperties(t *testing.T) {
	prop := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
			xs[i] = math.Mod(xs[i], 1e6)
		}
		q := QuantilesOf(xs)
		if len(xs) == 0 {
			return q == Quantiles{}
		}
		s := Summarize(xs)
		// Ordered and bounded by the sample range.
		if q.P50 > q.P95+1e-9 || q.P95 > q.P99+1e-9 {
			return false
		}
		if q.P50 < s.Min-1e-9 || q.P99 > s.Max+1e-9 {
			return false
		}
		// Permutation invariance: quantiles are order statistics.
		rev := make([]float64, len(xs))
		for i, x := range xs {
			rev[len(xs)-1-i] = x
		}
		qr := QuantilesOf(rev)
		return almostEq(q.P50, qr.P50) && almostEq(q.P95, qr.P95) && almostEq(q.P99, qr.P99)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantilesScaleEquivariant(t *testing.T) {
	// Quantiles commute with positive affine maps: Q(a*x+b) = a*Q(x)+b.
	xs := []float64{0.5, 2, 2, 3, 7, 11, 13, 29}
	q := QuantilesOf(xs)
	scaled := make([]float64, len(xs))
	const a, b = 2.5, -4
	for i, x := range xs {
		scaled[i] = a*x + b
	}
	qs := QuantilesOf(scaled)
	if !almostEq(qs.P50, a*q.P50+b) || !almostEq(qs.P95, a*q.P95+b) || !almostEq(qs.P99, a*q.P99+b) {
		t.Fatalf("affine map not respected: %+v vs %+v", qs, q)
	}
}

func TestQuantilesDoNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	QuantilesOf(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}
