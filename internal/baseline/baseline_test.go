package baseline

import (
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/checkpoint"
	"github.com/elan-sys/elan/internal/coord"
	"github.com/elan-sys/elan/internal/core"
	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/perfmodel"
	"github.com/elan-sys/elan/internal/topology"
)

func newSR(t *testing.T) *SR {
	t.Helper()
	return NewSR(core.DefaultSystemCosts(), checkpoint.DefaultFSModel(), 1)
}

func TestSRScaleOutDominatedByStartInit(t *testing.T) {
	// Figure 11: start + initialization dominate the S&R adjustment.
	sr := newSR(t)
	rep, err := sr.Adjust(coord.ScaleOut, models.ResNet50(), 8, 16)
	if err != nil {
		t.Fatalf("Adjust: %v", err)
	}
	var startInit, total time.Duration
	for _, p := range rep.Breakdown {
		total += p.Duration
		if p.Name == "start" || p.Name == "initialize" {
			startInit += p.Duration
		}
	}
	if total != rep.Pause {
		t.Fatalf("breakdown sum %v != pause %v", total, rep.Pause)
	}
	if float64(startInit)/float64(total) < 0.5 {
		t.Fatalf("start+init only %.0f%% of S&R pause", 100*float64(startInit)/float64(total))
	}
	// Scale-out pause is tens of seconds.
	if rep.Pause < 20*time.Second || rep.Pause > 2*time.Minute {
		t.Fatalf("S&R scale-out pause = %v", rep.Pause)
	}
}

func TestSRMigrationHidesStartInit(t *testing.T) {
	sr := newSR(t)
	mig, err := sr.Adjust(coord.Migrate, models.ResNet50(), 8, 8)
	if err != nil {
		t.Fatalf("Adjust: %v", err)
	}
	out, err := sr.Adjust(coord.ScaleOut, models.ResNet50(), 8, 16)
	if err != nil {
		t.Fatalf("Adjust: %v", err)
	}
	// Migration hides start/init; scale-out pays it.
	if mig.HiddenStartInit == 0 {
		t.Fatal("migration did not hide start/init")
	}
	if out.HiddenStartInit != 0 {
		t.Fatal("scale-out hid start/init")
	}
	if mig.Pause >= out.Pause/3 {
		t.Fatalf("migration pause %v not much smaller than scale-out %v", mig.Pause, out.Pause)
	}
	for _, p := range mig.Breakdown {
		if p.Name == "start" || p.Name == "initialize" || p.Name == "shutdown" {
			t.Fatalf("migration breakdown contains %q", p.Name)
		}
	}
}

func TestSRValidation(t *testing.T) {
	sr := newSR(t)
	if _, err := sr.Adjust(coord.ScaleOut, models.ResNet50(), 0, 8); err == nil {
		t.Fatal("zero old workers accepted")
	}
	if _, err := sr.Adjust(coord.Kind(42), models.ResNet50(), 8, 8); err == nil {
		t.Fatal("invalid kind accepted")
	}
}

func TestElanBeatsSRPaperRatios(t *testing.T) {
	// Figure 15's headline: Elan is up to ~4x faster on migration and
	// 10-80x faster on scaling, across models A-E.
	cluster, err := topology.NewCluster(topology.DefaultGeometry())
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	sr := newSR(t)
	for _, m := range models.Zoo() {
		gpus, err := cluster.Reserve(8)
		if err != nil {
			t.Fatalf("Reserve: %v", err)
		}
		tbs := 8 * m.MaxPerWorkerBatch / 2
		job, err := core.NewJob(core.JobConfig{
			Model: m, Cluster: cluster, Workers: topology.IDsOf(gpus),
			TotalBatch: tbs, LR: 0.1, Seed: 5,
		})
		if err != nil {
			t.Fatalf("NewJob: %v", err)
		}
		add, err := cluster.Reserve(8)
		if err != nil {
			t.Fatalf("Reserve add: %v", err)
		}
		elanOut, err := job.ScaleOut(topology.IDsOf(add))
		if err != nil {
			t.Fatalf("%s ScaleOut: %v", m.Name, err)
		}
		srOut, err := sr.Adjust(coord.ScaleOut, m, 8, 16)
		if err != nil {
			t.Fatalf("SR Adjust: %v", err)
		}
		ratio := float64(srOut.Pause) / float64(elanOut.Pause)
		if ratio < 10 || ratio > 120 {
			t.Errorf("%s: scale-out speedup %.1fx outside the paper's 10-80x band", m.Name, ratio)
		}
		cluster.Release(cluster.AllGPUs())
	}
}

func TestLitzValidation(t *testing.T) {
	if _, err := NewLitz(LitzConfig{ExecutorsPerWorker: 0, PCIeBytesPerSec: 1}, nil); err == nil {
		t.Fatal("zero executors accepted")
	}
	if _, err := NewLitz(LitzConfig{ExecutorsPerWorker: 2}, nil); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	l, err := NewLitz(DefaultLitzConfig(2), perfmodel.Default())
	if err != nil {
		t.Fatalf("NewLitz: %v", err)
	}
	if _, err := l.RelativeThroughput(models.ResNet50(), 0, 32); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestLitzThroughputHeavilyReduced(t *testing.T) {
	// Figure 16: Litz runs far below Elan; the Transformer reduction
	// exceeds 90%.
	for _, executors := range []int{2, 4} {
		l, err := NewLitz(DefaultLitzConfig(executors), perfmodel.Default())
		if err != nil {
			t.Fatalf("NewLitz: %v", err)
		}
		for _, m := range models.Zoo() {
			rel, err := l.RelativeThroughput(m, 8, m.MaxPerWorkerBatch/2)
			if err != nil {
				t.Fatalf("RelativeThroughput: %v", err)
			}
			if rel <= 0 || rel >= 0.6 {
				t.Errorf("Litz-%d %s: relative throughput %.3f not heavily reduced", executors, m.Name, rel)
			}
		}
		tr, err := l.RelativeThroughput(models.Transformer(), 8, 40)
		if err != nil {
			t.Fatalf("RelativeThroughput: %v", err)
		}
		if tr > 0.10 {
			t.Errorf("Litz-%d Transformer: relative throughput %.3f, want <= 0.10 (>90%% reduction)", executors, tr)
		}
	}
}

func TestLitz4WorseThanLitz2(t *testing.T) {
	l2, err := NewLitz(DefaultLitzConfig(2), perfmodel.Default())
	if err != nil {
		t.Fatalf("NewLitz: %v", err)
	}
	l4, err := NewLitz(DefaultLitzConfig(4), perfmodel.Default())
	if err != nil {
		t.Fatalf("NewLitz: %v", err)
	}
	for _, m := range models.Zoo() {
		r2, err := l2.RelativeThroughput(m, 16, m.MaxPerWorkerBatch/2)
		if err != nil {
			t.Fatalf("RelativeThroughput: %v", err)
		}
		r4, err := l4.RelativeThroughput(m, 16, m.MaxPerWorkerBatch/2)
		if err != nil {
			t.Fatalf("RelativeThroughput: %v", err)
		}
		if r4 >= r2 {
			t.Errorf("%s: Litz-4 (%.3f) not worse than Litz-2 (%.3f)", m.Name, r4, r2)
		}
	}
}

func TestLitzImprovesSlightlyWithWorkers(t *testing.T) {
	// Local gradient aggregation: relative throughput rises slightly with
	// the worker count.
	l, err := NewLitz(DefaultLitzConfig(2), perfmodel.Default())
	if err != nil {
		t.Fatalf("NewLitz: %v", err)
	}
	m := models.ResNet50()
	r8, err := l.RelativeThroughput(m, 8, 32)
	if err != nil {
		t.Fatalf("RelativeThroughput: %v", err)
	}
	r64, err := l.RelativeThroughput(m, 64, 32)
	if err != nil {
		t.Fatalf("RelativeThroughput: %v", err)
	}
	if r64 <= r8 {
		t.Fatalf("no aggregation bonus: N=8 %.3f, N=64 %.3f", r8, r64)
	}
	if r64 > 2*r8 {
		t.Fatalf("bonus too large: N=8 %.3f, N=64 %.3f", r8, r64)
	}
}

func TestLitzAdjustCheapButThroughputPoor(t *testing.T) {
	// Litz's trade-off: adjustments are cheap (executor reassignment), but
	// steady-state throughput pays for it.
	l, err := NewLitz(DefaultLitzConfig(2), perfmodel.Default())
	if err != nil {
		t.Fatalf("NewLitz: %v", err)
	}
	m := models.ResNet50()
	adj := l.AdjustTime(m, 2)
	if adj <= 0 {
		t.Fatalf("AdjustTime = %v", adj)
	}
	// Moving 2 executors' contexts is sub-second scale.
	if adj > 2.0 {
		t.Fatalf("Litz adjustment %vs suspiciously expensive", adj)
	}
	if got := l.AdjustTime(m, -3); got != 0 {
		t.Fatalf("negative moves = %v", got)
	}
}

func TestSRBreakdownPhases(t *testing.T) {
	sr := newSR(t)
	phases := sr.Breakdown(models.VGG19(), 8, 16)
	want := []string{"coordinate", "checkpoint", "shutdown", "start", "initialize", "load"}
	if len(phases) != len(want) {
		t.Fatalf("breakdown = %v", phases)
	}
	for i, p := range phases {
		if p.Name != want[i] {
			t.Fatalf("phase %d = %q, want %q", i, p.Name, want[i])
		}
		if p.Duration <= 0 {
			t.Fatalf("phase %q non-positive", p.Name)
		}
	}
}
