// Package baseline implements the two systems Elan is evaluated against:
//
//   - Shutdown-&-Restart (S&R), the practice of Gandiva/Optimus-style
//     schedulers: on every adjustment the job checkpoints all training state
//     to the shared filesystem, shuts down, restarts with the new resource
//     configuration and reloads the checkpoint (Section V-B, Figure 10).
//     For scale-out and scale-in the shutdown/start/initialization of the
//     existing workers sits on the critical path; only migration can hide
//     the start of the destination workers.
//
//   - Litz-style executor context switching: a new-programming-model system
//     that over-decomposes the job into executors multiplexed on shared
//     GPUs. Elasticity is cheap but steady-state training pays for CPU<->GPU
//     context movement on every switch (Figure 16).
package baseline

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/elan-sys/elan/internal/checkpoint"
	"github.com/elan-sys/elan/internal/coord"
	"github.com/elan-sys/elan/internal/core"
	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/perfmodel"
)

// SR models the Shutdown-&-Restart baseline.
type SR struct {
	Costs core.SystemCosts
	FS    checkpoint.FSModel
	rng   *rand.Rand
}

// NewSR constructs the baseline with the given calibrations.
func NewSR(costs core.SystemCosts, fs checkpoint.FSModel, seed int64) *SR {
	return &SR{Costs: costs, FS: fs, rng: rand.New(rand.NewSource(seed))}
}

// Adjust returns the training pause an S&R adjustment causes for the given
// model when changing from oldWorkers to newWorkers. kind selects the
// procedure: migration hides the start/init of the destination workers
// (they boot while the job still trains), while scale-out and scale-in
// must restart the existing workers, putting shutdown + start + init on the
// critical path — the asymmetry the paper's Figure 15 exhibits.
func (s *SR) Adjust(kind coord.Kind, m models.Model, oldWorkers, newWorkers int) (core.AdjustmentReport, error) {
	if oldWorkers <= 0 || newWorkers <= 0 {
		return core.AdjustmentReport{}, fmt.Errorf("baseline: invalid worker counts %d -> %d",
			oldWorkers, newWorkers)
	}
	rep := core.AdjustmentReport{Kind: kind}
	gpu, cpu := m.GPUStateBytes(), m.CPUStateBytes

	addPhase := func(name string, d time.Duration) {
		rep.Breakdown = append(rep.Breakdown, core.Phase{
			Name: name, Duration: perfmodel.Jitter(s.rng, d, s.Costs.JitterRel),
		})
		rep.Pause += rep.Breakdown[len(rep.Breakdown)-1].Duration
	}

	addPhase("coordinate", s.Costs.CoordBase+time.Duration(oldWorkers)*s.Costs.CoordPerWorker)
	addPhase("checkpoint", s.FS.SaveTime(gpu, cpu))
	switch kind {
	case coord.Migrate:
		// Destination workers started and initialized while the source kept
		// training; record the hidden cost and pay only the load.
		var hidden time.Duration
		for i := 0; i < newWorkers; i++ {
			if t := s.Costs.StartInitTime(s.rng); t > hidden {
				hidden = t
			}
		}
		rep.HiddenStartInit = hidden
	case coord.ScaleOut, coord.ScaleIn:
		// Existing workers restart: everything on the critical path.
		addPhase("shutdown", s.Costs.ShutdownTime)
		addPhase("start", s.Costs.WorkerStart)
		addPhase("initialize", s.Costs.WorkerInit)
	default:
		return core.AdjustmentReport{}, fmt.Errorf("baseline: invalid kind %v", kind)
	}
	addPhase("load", s.FS.LoadTime(gpu, cpu, newWorkers))
	return rep, nil
}

// Breakdown returns the mean contribution of each S&R phase for a scale-out
// (the Figure 11 experiment) without jitter.
func (s *SR) Breakdown(m models.Model, oldWorkers, newWorkers int) []core.Phase {
	gpu, cpu := m.GPUStateBytes(), m.CPUStateBytes
	return []core.Phase{
		{Name: "coordinate", Duration: s.Costs.CoordBase + time.Duration(oldWorkers)*s.Costs.CoordPerWorker},
		{Name: "checkpoint", Duration: s.FS.SaveTime(gpu, cpu)},
		{Name: "shutdown", Duration: s.Costs.ShutdownTime},
		{Name: "start", Duration: s.Costs.WorkerStart},
		{Name: "initialize", Duration: s.Costs.WorkerInit},
		{Name: "load", Duration: s.FS.LoadTime(gpu, cpu, newWorkers)},
	}
}

// RuntimeOverhead is identical to Elan's: both systems perform the same
// periodic coordination when no adjustment is pending (Section VI-A1).
func (s *SR) RuntimeOverhead(j *core.Job) (float64, error) {
	return j.RuntimeOverhead()
}
