package baseline

import (
	"fmt"
	"math"

	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/perfmodel"
)

// LitzConfig calibrates the executor-based baseline.
type LitzConfig struct {
	// ExecutorsPerWorker is the over-decomposition factor (Litz-2, Litz-4).
	ExecutorsPerWorker int
	// PCIeBytesPerSec is the CPU<->GPU context movement bandwidth.
	PCIeBytesPerSec float64
	// AggBonusPerDoubling is the relative throughput gained per doubling of
	// the worker count from local gradient aggregation (the paper observes
	// throughput "goes up slightly" with more workers).
	AggBonusPerDoubling float64
	// BaseWorkers anchors the aggregation bonus.
	BaseWorkers int
}

// DefaultLitzConfig returns the calibration for Litz-N.
func DefaultLitzConfig(executors int) LitzConfig {
	return LitzConfig{
		ExecutorsPerWorker:  executors,
		PCIeBytesPerSec:     6e9,
		AggBonusPerDoubling: 0.06,
		BaseWorkers:         8,
	}
}

// Litz models the executor-based elastic training baseline.
type Litz struct {
	cfg  LitzConfig
	perf *perfmodel.Perf
}

// NewLitz validates the configuration and builds the model.
func NewLitz(cfg LitzConfig, perf *perfmodel.Perf) (*Litz, error) {
	if cfg.ExecutorsPerWorker < 1 {
		return nil, fmt.Errorf("baseline: executors per worker %d < 1", cfg.ExecutorsPerWorker)
	}
	if cfg.PCIeBytesPerSec <= 0 {
		return nil, fmt.Errorf("baseline: non-positive PCIe bandwidth")
	}
	if cfg.BaseWorkers <= 0 {
		cfg.BaseWorkers = 8
	}
	if perf == nil {
		perf = perfmodel.Default()
	}
	return &Litz{cfg: cfg, perf: perf}, nil
}

// SwapTimePerIteration returns the context-movement cost one training
// iteration pays: each of the E executors sharing the GPU is swapped out
// and in once per iteration, moving its full context (parameters, optimizer
// state and live activations) across PCIe in both directions.
func (l *Litz) SwapTimePerIteration(m models.Model) float64 {
	e := float64(l.cfg.ExecutorsPerWorker)
	perSwap := 2 * float64(m.SwapContextBytes) / l.cfg.PCIeBytesPerSec
	return e * perSwap
}

// AdjustTime returns Litz's resource-adjustment cost: because work is
// over-decomposed into executors, elasticity is just executor reassignment
// plus one context migration per moved executor — cheap, which is the
// design's selling point. Its price is the steady-state context-switching
// overhead that RelativeThroughput quantifies.
func (l *Litz) AdjustTime(m models.Model, executorsMoved int) float64 {
	if executorsMoved < 0 {
		executorsMoved = 0
	}
	perMove := float64(m.SwapContextBytes) / l.cfg.PCIeBytesPerSec
	return float64(executorsMoved) * perMove
}

// RelativeThroughput returns Litz's training throughput relative to Elan
// for the same model and resources (the Figure 16 metric, in (0, 1]).
// perWorkerBatch is Elan's per-worker batch; Litz splits it across its
// executors, computing the same total work plus the swap overhead, minus a
// small local-aggregation bonus that grows with the worker count.
func (l *Litz) RelativeThroughput(m models.Model, nWorkers, perWorkerBatch int) (float64, error) {
	if nWorkers <= 0 || perWorkerBatch <= 0 {
		return 0, fmt.Errorf("baseline: invalid config N=%d bs=%d", nWorkers, perWorkerBatch)
	}
	elanIter, err := l.perf.IterTime(m, nWorkers, perWorkerBatch)
	if err != nil {
		return 0, err
	}
	litzIter := elanIter.Seconds() + l.SwapTimePerIteration(m)
	rel := elanIter.Seconds() / litzIter
	// Local gradient aggregation bonus.
	if nWorkers > l.cfg.BaseWorkers {
		doublings := math.Log2(float64(nWorkers) / float64(l.cfg.BaseWorkers))
		rel *= 1 + l.cfg.AggBonusPerDoubling*doublings
	}
	if rel > 1 {
		rel = 1
	}
	return rel, nil
}
