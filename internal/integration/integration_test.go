// Package integration contains cross-subsystem end-to-end tests: the full
// Elan stack (coordination over a lossy message bus + real training + state
// replication), the S&R restart path with a real serialized checkpoint, and
// migration of a live job between processes of worker goroutines.
package integration

import (
	"math"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/checkpoint"
	"github.com/elan-sys/elan/internal/coord"
	"github.com/elan-sys/elan/internal/core"
	"github.com/elan-sys/elan/internal/data"
	"github.com/elan-sys/elan/internal/store"
	"github.com/elan-sys/elan/internal/transport"
)

func dataset(t *testing.T, seed int64, n int) *data.Dataset {
	t.Helper()
	d, err := data.GenGaussianMixture(seed, n, 4, 3)
	if err != nil {
		t.Fatalf("GenGaussianMixture: %v", err)
	}
	return d
}

func liveJob(t *testing.T, workers, tbs int) *core.LiveJob {
	t.Helper()
	lj, err := core.NewLiveJob(core.LiveConfig{
		Dataset:    dataset(t, 11, 1024),
		LayerSizes: []int{4, 16, 3},
		Workers:    workers,
		TotalBatch: tbs,
		LR:         0.05,
		Momentum:   0.9,
		Seed:       11,
	})
	if err != nil {
		t.Fatalf("NewLiveJob: %v", err)
	}
	t.Cleanup(lj.Close)
	return lj
}

// TestElasticStackOverLossyBus drives the full adjustment protocol over a
// bus with 25% message loss while real training runs: the scheduler
// requests a scale-out through the AM service, a "new worker" goroutine
// starts (simulated init delay) and reports, the training loop coordinates
// between iterations, and when the adjustment fires the live job performs
// replication and group reconstruction. Exactly one adjustment must be
// applied, training must keep converging, and replicas stay consistent.
func TestElasticStackOverLossyBus(t *testing.T) {
	cfg := transport.DefaultBusConfig()
	cfg.DropRate = 0.25
	cfg.Seed = 77
	cfg.AckTimeout = 5 * time.Millisecond
	cfg.MaxRetries = 100
	bus := transport.NewBus(cfg)

	am, err := coord.NewAM("e2e", store.New())
	if err != nil {
		t.Fatalf("NewAM: %v", err)
	}
	if _, err := coord.NewService(am, bus, "am"); err != nil {
		t.Fatalf("NewService: %v", err)
	}
	scheduler, err := coord.NewClient(bus, "scheduler", "am")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	trainer, err := coord.NewClient(bus, "trainer", "am")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	newWorker, err := coord.NewClient(bus, "w-new", "am")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	job := liveJob(t, 2, 32)

	// Scheduler decides to scale out and launches the new worker.
	if err := scheduler.RequestAdjustment(coord.ScaleOut, []string{"w-new"}, nil); err != nil {
		t.Fatalf("RequestAdjustment: %v", err)
	}
	workerReady := make(chan error, 1)
	go func() {
		time.Sleep(30 * time.Millisecond) // start + initialization
		workerReady <- newWorker.ReportReady("w-new")
	}()

	applied := 0
	for iter := 0; iter < 200; iter++ {
		if _, err := job.Step(); err != nil {
			t.Fatalf("Step %d: %v", iter, err)
		}
		// Coordinate at every iteration boundary; training never blocks.
		adj, ok, err := trainer.Coordinate()
		if err != nil {
			t.Fatalf("Coordinate: %v", err)
		}
		if ok {
			if adj.Kind != coord.ScaleOut {
				t.Fatalf("adjustment kind = %v", adj.Kind)
			}
			// Apply the adjustment to the live job: 2 -> 4 workers keeps
			// divisibility of TBS 32.
			if err := job.ScaleOut(2); err != nil {
				t.Fatalf("ScaleOut: %v", err)
			}
			applied++
		}
		if applied > 0 && iter > 120 {
			break
		}
	}
	if err := <-workerReady; err != nil {
		t.Fatalf("ReportReady: %v", err)
	}
	if applied != 1 {
		t.Fatalf("adjustment applied %d times, want exactly 1", applied)
	}
	if job.NumWorkers() != 4 {
		t.Fatalf("workers = %d", job.NumWorkers())
	}
	if !job.ReplicasConsistent() {
		t.Fatal("replicas inconsistent after bus-driven adjustment")
	}
	// Training converged meaningfully.
	_, acc, err := job.Evaluate(dataset(t, 12, 512))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if acc < 0.55 {
		t.Fatalf("accuracy %.3f too low after end-to-end run", acc)
	}
}

// TestSRCheckpointRestartPath exercises the baseline's full restart on real
// state: train, checkpoint (gob into the store), build a fresh job with a
// different worker count, load the checkpoint, and verify the model and
// data position carried over exactly.
func TestSRCheckpointRestartPath(t *testing.T) {
	job := liveJob(t, 2, 32)
	for i := 0; i < 50; i++ {
		if _, err := job.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	preLoss, preAcc, err := job.Evaluate(dataset(t, 12, 512))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	snap, err := job.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	fs := checkpoint.NewStore()
	size, err := fs.Save("job-ckpt", snap)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if size <= 0 {
		t.Fatalf("checkpoint size = %d", size)
	}
	// The simulated cost of this checkpoint on the FS model is positive
	// and scales with the state.
	model := checkpoint.DefaultFSModel()
	if model.SaveTime(size, 0) <= 0 {
		t.Fatal("zero save time")
	}

	// "Restart" with 4 workers (the S&R scale-out path).
	restarted := liveJob(t, 4, 32)
	var loaded core.Snapshot
	if err := fs.Load("job-ckpt", &loaded); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if err := restarted.RestoreSnapshot(&loaded); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if restarted.Iteration() != 50 {
		t.Fatalf("restored iteration = %d", restarted.Iteration())
	}
	postLoss, postAcc, err := restarted.Evaluate(dataset(t, 12, 512))
	if err != nil {
		t.Fatalf("Evaluate restored: %v", err)
	}
	if math.Abs(postLoss-preLoss) > 1e-12 || math.Abs(postAcc-preAcc) > 1e-12 {
		t.Fatalf("restored model differs: loss %v vs %v, acc %v vs %v",
			postLoss, preLoss, postAcc, preAcc)
	}
	if !restarted.ReplicasConsistent() {
		t.Fatal("restored replicas inconsistent")
	}
	// And training continues from where it stopped.
	for i := 0; i < 20; i++ {
		if _, err := restarted.Step(); err != nil {
			t.Fatalf("Step after restore: %v", err)
		}
	}
	if restarted.Iteration() != 70 {
		t.Fatalf("iteration after resume = %d", restarted.Iteration())
	}
}

// TestMigrationPreservesTraining migrates a live job's full state to a new
// "process" (a fresh LiveJob on different goroutines) via Snapshot/Restore
// — the IO-free path moves the same bytes the hooks replicate — and checks
// bit-exact continuation.
func TestMigrationPreservesTraining(t *testing.T) {
	src := liveJob(t, 4, 32)
	for i := 0; i < 40; i++ {
		if _, err := src.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	snap, err := src.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	dst := liveJob(t, 4, 32)
	if err := dst.RestoreSnapshot(snap); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	// Both jobs now step in lockstep and must produce identical losses
	// (same state, same serial cursor, same data).
	for i := 0; i < 10; i++ {
		a, err := src.Step()
		if err != nil {
			t.Fatalf("src Step: %v", err)
		}
		b, err := dst.Step()
		if err != nil {
			t.Fatalf("dst Step: %v", err)
		}
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("step %d: losses diverged %v vs %v", i, a, b)
		}
	}
}

// TestSnapshotValidation covers the restore error paths.
func TestSnapshotValidation(t *testing.T) {
	job := liveJob(t, 2, 32)
	if err := job.RestoreSnapshot(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	snap, err := job.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	bad := *snap
	bad.TBS = 7 // not divisible by 2 workers
	if err := job.RestoreSnapshot(&bad); err == nil {
		t.Fatal("indivisible TBS accepted")
	}
	bad = *snap
	bad.Params = snap.Params[:3]
	if err := job.RestoreSnapshot(&bad); err == nil {
		t.Fatal("short params accepted")
	}
	bad = *snap
	bad.LR0 = -1
	if err := job.RestoreSnapshot(&bad); err == nil {
		t.Fatal("negative LR accepted")
	}
	bad = *snap
	bad.Cursor = -5
	if err := job.RestoreSnapshot(&bad); err == nil {
		t.Fatal("negative cursor accepted")
	}
}
