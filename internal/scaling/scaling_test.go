package scaling

import (
	"math"
	"testing"

	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/perfmodel"
)

func mech(t *testing.T) *Mechanism {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil perf model accepted")
	}
	m, err := New(Config{Perf: perfmodel.Default()})
	if err != nil {
		t.Fatalf("New with defaults: %v", err)
	}
	if m.RampIterations() != 100 {
		t.Fatalf("default ramp = %d", m.RampIterations())
	}
}

func TestStrongScalingPreferred(t *testing.T) {
	// ResNet-50, TBS 512: the model's optimal strong-scaling worker count is
	// >= 32, so scaling 16 -> 32 must keep the batch size (strong scaling).
	h := mech(t)
	m := models.ResNet50()
	tbs, err := h.TotalBatchSize(m, 16, 512, 32)
	if err != nil {
		t.Fatalf("TotalBatchSize: %v", err)
	}
	if tbs != 512 {
		t.Fatalf("TBS = %d, want 512 (strong scaling)", tbs)
	}
}

func TestWeakScalingWhenStrongExhausted(t *testing.T) {
	// Scale far beyond the strong-scaling optimum: the mechanism must grow
	// the batch (weak scaling), choosing the minimal power-of-two factor
	// whose optimum covers the new worker count.
	h := mech(t)
	m := models.ResNet50()
	p := perfmodel.Default()
	newWorkers := 512
	tbs, err := h.TotalBatchSize(m, 16, 512, newWorkers)
	if err != nil {
		t.Fatalf("TotalBatchSize: %v", err)
	}
	if tbs <= 512 {
		t.Fatalf("TBS = %d, want weak scaling beyond 512", tbs)
	}
	// Minimality: half the chosen factor must NOT satisfy the requirement.
	if tbs > 1024 {
		nOpt, err := p.OptimalWorkers(m, tbs/2, 1024)
		if err == nil && nOpt >= newWorkers {
			t.Fatalf("TBS %d not minimal: %d already suffices", tbs, tbs/2)
		}
	}
	// And the chosen one (or the fallback) must be k*512 for a power-of-2 k.
	k := tbs / 512
	if tbs%512 != 0 || k&(k-1) != 0 {
		t.Fatalf("TBS %d is not a power-of-two multiple of 512", tbs)
	}
}

func TestScaleInKeepsBatch(t *testing.T) {
	h := mech(t)
	m := models.ResNet50()
	tbs, err := h.TotalBatchSize(m, 32, 1024, 16)
	if err != nil {
		t.Fatalf("TotalBatchSize: %v", err)
	}
	if tbs != 1024 {
		t.Fatalf("scale-in TBS = %d, want unchanged 1024", tbs)
	}
}

func TestScaleInMemoryGuard(t *testing.T) {
	h := mech(t)
	m := models.ResNet50() // max 64/worker
	// 2048 on 16 workers would need 128/worker.
	if _, err := h.TotalBatchSize(m, 64, 2048, 16); err == nil {
		t.Fatal("memory-violating scale-in accepted")
	}
}

func TestMigrationUnchanged(t *testing.T) {
	h := mech(t)
	m := models.VGG19()
	tbs, err := h.TotalBatchSize(m, 8, 256, 8)
	if err != nil {
		t.Fatalf("TotalBatchSize: %v", err)
	}
	if tbs != 256 {
		t.Fatalf("migration TBS = %d, want 256", tbs)
	}
}

func TestTotalBatchSizeValidation(t *testing.T) {
	h := mech(t)
	m := models.ResNet50()
	if _, err := h.TotalBatchSize(m, 0, 512, 16); err == nil {
		t.Fatal("zero old workers accepted")
	}
	if _, err := h.TotalBatchSize(m, 16, 0, 32); err == nil {
		t.Fatal("zero TBS accepted")
	}
	if _, err := h.TotalBatchSize(m, 16, 100, 32); err == nil {
		t.Fatal("non-divisible TBS accepted")
	}
}

func TestDecide(t *testing.T) {
	h := mech(t)
	m := models.ResNet50()
	d, err := h.Decide(m, 16, 512, 32, 0.1)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if !d.Strong || d.Factor != 1 || math.Abs(d.TargetLR-0.1) > 1e-12 {
		t.Fatalf("strong decision = %+v", d)
	}
	d2, err := h.Decide(m, 16, 512, 512, 0.1)
	if err != nil {
		t.Fatalf("Decide weak: %v", err)
	}
	if d2.Strong {
		t.Fatalf("expected weak scaling: %+v", d2)
	}
	// Linear scaling rule: lr_T = lr_0 * k (Equation 2).
	if math.Abs(d2.TargetLR-0.1*d2.Factor) > 1e-12 {
		t.Fatalf("TargetLR = %v, want %v", d2.TargetLR, 0.1*d2.Factor)
	}
	if _, err := h.Decide(m, 16, 512, 32, 0); err == nil {
		t.Fatal("zero LR accepted")
	}
}

func TestLRScheduleEquation3(t *testing.T) {
	s, err := NewLRSchedule(0.1, 0.2, 1000, 100)
	if err != nil {
		t.Fatalf("NewLRSchedule: %v", err)
	}
	// Before the adjustment begins.
	if got := s.At(999); got != 0.1 {
		t.Fatalf("At(999) = %v", got)
	}
	// Start of the ramp.
	if got := s.At(1000); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("At(1000) = %v", got)
	}
	// Midpoint.
	if got := s.At(1050); math.Abs(got-0.15) > 1e-12 {
		t.Fatalf("At(1050) = %v, want 0.15", got)
	}
	// After the ramp.
	if got := s.At(1100); got != 0.2 {
		t.Fatalf("At(1100) = %v", got)
	}
	if got := s.At(5000); got != 0.2 {
		t.Fatalf("At(5000) = %v", got)
	}
	if s.Done(1099) || !s.Done(1100) {
		t.Fatal("Done boundary wrong")
	}
}

func TestLRScheduleMonotoneWhenIncreasing(t *testing.T) {
	s, err := NewLRSchedule(0.1, 0.8, 0, 50)
	if err != nil {
		t.Fatalf("NewLRSchedule: %v", err)
	}
	prev := 0.0
	for t2 := 0; t2 <= 60; t2++ {
		v := s.At(t2)
		if v < prev-1e-12 {
			t.Fatalf("LR decreased at %d: %v < %v", t2, v, prev)
		}
		prev = v
	}
}

func TestLRScheduleZeroRamp(t *testing.T) {
	s, err := NewLRSchedule(0.1, 0.4, 10, 0)
	if err != nil {
		t.Fatalf("NewLRSchedule: %v", err)
	}
	if got := s.At(10); got != 0.4 {
		t.Fatalf("zero-ramp At(10) = %v, want immediate target", got)
	}
	if got := s.At(9); got != 0.1 {
		t.Fatalf("At(9) = %v", got)
	}
}

func TestLRScheduleValidation(t *testing.T) {
	if _, err := NewLRSchedule(0, 0.1, 0, 10); err == nil {
		t.Fatal("zero lr0 accepted")
	}
	if _, err := NewLRSchedule(0.1, -0.1, 0, 10); err == nil {
		t.Fatal("negative lrT accepted")
	}
	if _, err := NewLRSchedule(0.1, 0.2, -1, 10); err == nil {
		t.Fatal("negative t0 accepted")
	}
	if _, err := NewLRSchedule(0.1, 0.2, 0, -10); err == nil {
		t.Fatal("negative ramp accepted")
	}
}

func TestHybridMinimizesBatchChange(t *testing.T) {
	// Property over all models: whatever transition, the returned TBS is
	// the smallest power-of-two multiple of oldTBS within the resource
	// ratio that satisfies N_opt >= newWorkers, or the ratio-scaled
	// fallback. We verify the returned TBS never exceeds ratio*oldTBS.
	h := mech(t)
	for _, m := range models.Zoo() {
		for _, c := range []struct{ oldW, oldTBS, newW int }{
			{8, 256, 16}, {8, 256, 64}, {16, 512, 128}, {4, 128, 32},
		} {
			tbs, err := h.TotalBatchSize(m, c.oldW, c.oldTBS, c.newW)
			if err != nil {
				continue // some transitions are memory-infeasible; fine
			}
			ratio := c.newW / c.oldW
			if tbs > c.oldTBS*ratio {
				t.Errorf("%s %d->%d: TBS %d exceeds weak-scaling bound %d",
					m.Name, c.oldW, c.newW, tbs, c.oldTBS*ratio)
			}
			if tbs < c.oldTBS {
				t.Errorf("%s: TBS shrank %d -> %d", m.Name, c.oldTBS, tbs)
			}
		}
	}
}
