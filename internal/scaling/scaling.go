// Package scaling implements the paper's hybrid scaling mechanism
// (Section III, Algorithm 1): the co-design of system and algorithm that
// decides, on every resource adjustment, (a) the new total batch size —
// preferring strong scaling and falling back to progressive weak scaling
// only when strong scaling would under-utilize the new workers — and (b)
// the learning-rate trajectory, applying the progressive linear scaling
// rule (Equations 1-3) so that a batch-size increase does not destabilize
// the optimization.
package scaling

import (
	"fmt"

	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/perfmodel"
)

// Decision is the outcome of the hybrid scaling mechanism for one
// adjustment.
type Decision struct {
	// TotalBatch is the total batch size after the adjustment.
	TotalBatch int
	// Factor is the batch scaling factor k = TotalBatch / previous.
	Factor float64
	// Strong reports whether pure strong scaling was chosen (k == 1).
	Strong bool
	// TargetLR is the learning rate after the progressive adjustment.
	TargetLR float64
}

// Config parametrizes the mechanism.
type Config struct {
	// Perf supplies OptimalWorkers (Algorithm 1, line 9).
	Perf *perfmodel.Perf
	// MaxWorkersProbe bounds the optimal-worker search.
	MaxWorkersProbe int
	// RampIterations is T, the number of iterations over which the learning
	// rate moves linearly to its target (the paper uses 100 for ResNet-50).
	RampIterations int
}

// DefaultConfig returns the configuration used in the paper's experiments.
func DefaultConfig() Config {
	return Config{
		Perf:            perfmodel.Default(),
		MaxWorkersProbe: 1024,
		RampIterations:  100,
	}
}

// Mechanism is the hybrid scaling decision engine.
type Mechanism struct {
	cfg Config
}

// New constructs a Mechanism, validating the configuration.
func New(cfg Config) (*Mechanism, error) {
	if cfg.Perf == nil {
		return nil, fmt.Errorf("scaling: nil performance model")
	}
	if cfg.MaxWorkersProbe <= 0 {
		cfg.MaxWorkersProbe = 1024
	}
	if cfg.RampIterations <= 0 {
		cfg.RampIterations = 100
	}
	return &Mechanism{cfg: cfg}, nil
}

// TotalBatchSize implements Algorithm 1's GETTOTALBATCHSIZE: scaling a job
// from oldWorkers (at total batch size oldTBS) to newWorkers, it returns
// the smallest total batch size TBS' = k*oldTBS (k a power of two,
// k <= newWorkers/oldWorkers) whose optimal strong-scaling worker count is
// at least newWorkers; if no such k exists it falls back to full weak
// scaling (k = newWorkers/oldWorkers).
func (h *Mechanism) TotalBatchSize(m models.Model, oldWorkers, oldTBS, newWorkers int) (int, error) {
	if oldWorkers <= 0 || newWorkers <= 0 || oldTBS <= 0 {
		return 0, fmt.Errorf("scaling: invalid transition %d->%d workers TBS=%d",
			oldWorkers, newWorkers, oldTBS)
	}
	if oldTBS%oldWorkers != 0 {
		return 0, fmt.Errorf("scaling: TBS %d not divisible by %d workers", oldTBS, oldWorkers)
	}
	// Scaling in or migrating: strong scaling always suffices — the batch
	// per worker only grows. Guard GPU memory: if the shrunken worker set
	// cannot hold the batch, the caller must reject the adjustment.
	if newWorkers <= oldWorkers {
		if oldTBS/newWorkers > m.MaxPerWorkerBatch {
			return 0, fmt.Errorf("scaling: TBS %d does not fit on %d workers of %s (max %d/worker)",
				oldTBS, newWorkers, m.Name, m.MaxPerWorkerBatch)
		}
		return oldTBS, nil
	}
	ratio := newWorkers / oldWorkers
	for k := 1; k <= ratio; k *= 2 {
		tbs := k * oldTBS
		if tbs%newWorkers != 0 {
			continue
		}
		nOpt, err := h.cfg.Perf.OptimalWorkers(m, tbs, h.cfg.MaxWorkersProbe)
		if err != nil {
			continue // infeasible trial (e.g. memory); try a larger batch
		}
		if nOpt >= newWorkers {
			return tbs, nil
		}
	}
	// All trials failed: plain weak scaling by the resource ratio.
	tbs := oldTBS * ratio
	if tbs/newWorkers > m.MaxPerWorkerBatch {
		return 0, fmt.Errorf("scaling: weak-scaled TBS %d does not fit on %d workers of %s",
			tbs, newWorkers, m.Name)
	}
	return tbs, nil
}

// Decide runs the full mechanism: the new total batch size plus the target
// learning rate lr_T = lr_0 * k (Equation 2).
func (h *Mechanism) Decide(m models.Model, oldWorkers, oldTBS, newWorkers int, lr0 float64) (Decision, error) {
	if lr0 <= 0 {
		return Decision{}, fmt.Errorf("scaling: non-positive learning rate %v", lr0)
	}
	tbs, err := h.TotalBatchSize(m, oldWorkers, oldTBS, newWorkers)
	if err != nil {
		return Decision{}, err
	}
	k := float64(tbs) / float64(oldTBS)
	return Decision{
		TotalBatch: tbs,
		Factor:     k,
		Strong:     tbs == oldTBS,
		TargetLR:   lr0 * k,
	}, nil
}

// RampIterations returns T, for building LR schedules.
func (h *Mechanism) RampIterations() int { return h.cfg.RampIterations }

// LRSchedule is the progressive linear scaling rule (Equation 3): the
// learning rate moves linearly from lr0 to lrT over [T0, T0+T) and stays at
// lrT afterwards.
type LRSchedule struct {
	LR0, LRT float64
	T0, T    int
}

// NewLRSchedule builds a schedule starting at iteration t0, ramping over
// rampIters iterations.
func NewLRSchedule(lr0, lrT float64, t0, rampIters int) (*LRSchedule, error) {
	if lr0 <= 0 || lrT <= 0 {
		return nil, fmt.Errorf("scaling: non-positive learning rates %v -> %v", lr0, lrT)
	}
	if rampIters < 0 || t0 < 0 {
		return nil, fmt.Errorf("scaling: negative schedule bounds t0=%d T=%d", t0, rampIters)
	}
	return &LRSchedule{LR0: lr0, LRT: lrT, T0: t0, T: rampIters}, nil
}

// At returns the learning rate at iteration t (Equation 3). Iterations
// before T0 use lr0.
func (s *LRSchedule) At(t int) float64 {
	switch {
	case t < s.T0:
		return s.LR0
	case s.T == 0 || t >= s.T0+s.T:
		return s.LRT
	default:
		frac := float64(t-s.T0) / float64(s.T)
		return s.LR0 + frac*(s.LRT-s.LR0)
	}
}

// Done reports whether the ramp has completed at iteration t.
func (s *LRSchedule) Done(t int) bool { return t >= s.T0+s.T }
