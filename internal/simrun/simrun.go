// Package simrun executes elastic-training timelines on the discrete-event
// simulation clock: training iterations, coordination rounds, worker
// start/initialization and resource adjustments all become events in
// virtual time. It is the event-driven counterpart of core.Job's closed-
// form pause arithmetic — the two are cross-validated in the tests — and
// it produces Figure 10/12-style timelines showing precisely which phases
// sit on the training's critical path.
package simrun

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/elan-sys/elan/internal/coord"
	"github.com/elan-sys/elan/internal/core"
	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/perfmodel"
	"github.com/elan-sys/elan/internal/replication"
	"github.com/elan-sys/elan/internal/simclock"
	"github.com/elan-sys/elan/internal/store"
	"github.com/elan-sys/elan/internal/topology"
)

// EventKind classifies timeline entries.
type EventKind string

// Timeline event kinds.
const (
	EvIterDone       EventKind = "iteration"
	EvRequest        EventKind = "adjust-request"
	EvWorkerStarted  EventKind = "worker-started"
	EvWorkerReported EventKind = "worker-reported"
	EvAdjustBegin    EventKind = "adjust-begin"
	EvAdjustEnd      EventKind = "adjust-end"
)

// TimelineEvent is one entry of the simulated run.
type TimelineEvent struct {
	At   time.Duration
	Kind EventKind
	Note string
}

// Config parametrizes a simulated elastic run.
type Config struct {
	Model   models.Model
	Cluster *topology.Cluster
	Perf    *perfmodel.Perf
	Costs   core.SystemCosts
	// Workers is the initial worker set.
	Workers []topology.GPUID
	// TotalBatch is the fixed total batch size (strong scaling).
	TotalBatch int
	// CoordInterval is iterations between coordinations.
	CoordInterval int
	// Seed drives the jittered cost samples.
	Seed int64
	// Synchronous, when true, disables the asynchronous coordination
	// mechanism: training blocks from the request until the new workers
	// have started and initialized (the ablation baseline).
	Synchronous bool
}

// ScaleOutAt schedules a scale-out request at virtual time at.
type ScaleOutAt struct {
	At  time.Duration
	Add []topology.GPUID
}

// Result summarizes a simulated run.
type Result struct {
	// Timeline holds all events in order.
	Timeline []TimelineEvent
	// Iterations completed within the horizon.
	Iterations int
	// TrainingPause is the total virtual time training stood still due to
	// adjustments (excluding hidden start/init under async coordination).
	TrainingPause time.Duration
	// AdjustLatency is, per adjustment, the time from the request to the
	// end of the adjustment (includes waiting for worker start/init).
	AdjustLatency []time.Duration
}

// Run simulates training with the given scale-out schedule until horizon.
// The returned result records the exact critical-path structure: under
// asynchronous coordination, iterations continue while new workers start;
// under synchronous coordination, the run blocks at the request.
func Run(cfg Config, scaleOuts []ScaleOutAt, horizon time.Duration) (*Result, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("simrun: nil cluster")
	}
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("simrun: no workers")
	}
	if cfg.TotalBatch <= 0 || cfg.TotalBatch%len(cfg.Workers) != 0 {
		return nil, fmt.Errorf("simrun: total batch %d not divisible by %d workers",
			cfg.TotalBatch, len(cfg.Workers))
	}
	if cfg.Perf == nil {
		cfg.Perf = perfmodel.Default()
	}
	if cfg.Costs == (core.SystemCosts{}) {
		cfg.Costs = core.DefaultSystemCosts()
	}
	if cfg.CoordInterval <= 0 {
		cfg.CoordInterval = 1
	}
	sort.Slice(scaleOuts, func(i, j int) bool { return scaleOuts[i].At < scaleOuts[j].At })

	am, err := coord.NewAM("simrun", store.New())
	if err != nil {
		return nil, err
	}
	clk := simclock.New()
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{}
	workers := append([]topology.GPUID(nil), cfg.Workers...)
	// pendingAdds maps worker names (w<idx>) to their GPU IDs for the
	// in-flight adjustment.
	pendingAdds := make(map[string]topology.GPUID)
	var requestAt time.Duration
	nameOf := func(g topology.GPUID) string { return "w-" + g.String() }

	record := func(kind EventKind, note string) {
		res.Timeline = append(res.Timeline, TimelineEvent{At: clk.Now(), Kind: kind, Note: note})
	}

	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
		clk.Stop()
	}

	// scheduleScaleOut registers the request and the workers' async start.
	scheduleScaleOut := func(so ScaleOutAt) {
		names := make([]string, len(so.Add))
		for i, g := range so.Add {
			names[i] = nameOf(g)
			pendingAdds[names[i]] = g
		}
		if err := am.RequestAdjustment(coord.ScaleOut, names, nil); err != nil {
			fail(fmt.Errorf("simrun: request: %w", err))
			return
		}
		requestAt = clk.Now()
		record(EvRequest, fmt.Sprintf("add %d workers", len(so.Add)))
		for _, name := range names {
			name := name
			startInit := cfg.Costs.StartInitTime(rng)
			clk.After(startInit, "worker-ready "+name, func() {
				record(EvWorkerReported, name)
				if err := am.ReportReady(name); err != nil {
					fail(fmt.Errorf("simrun: report %s: %w", name, err))
				}
			})
		}
	}

	// The training loop: one event per iteration; at coordination
	// boundaries the worker set may change.
	iterTime := func() (time.Duration, error) {
		return cfg.Perf.IterTime(cfg.Model, len(workers), cfg.TotalBatch/len(workers))
	}
	nextScaleOut := 0
	inFlight := false

	// applyAdjustment runs steps 4-5 for a delivered adjustment, then
	// resumes via resume().
	applyAdjustment := func(adj coord.Adjustment, coordCost time.Duration, resume func()) {
		record(EvAdjustBegin, adj.Kind.String())
		var add []topology.GPUID
		for _, name := range adj.Add {
			add = append(add, pendingAdds[name])
			delete(pendingAdds, name)
		}
		plan, err := replication.NewPlan(workers, add,
			cfg.Model.GPUStateBytes(), cfg.Model.CPUStateBytes)
		if err != nil {
			fail(err)
			return
		}
		pause := coordCost +
			plan.Duration(cfg.Cluster) +
			cfg.Costs.Repartition +
			cfg.Costs.GroupReconstructTime(rng, len(workers)+len(add))
		res.TrainingPause += pause
		reqAt := requestAt
		clk.After(pause, "adjust-done", func() {
			workers = append(workers, add...)
			inFlight = false
			record(EvAdjustEnd, fmt.Sprintf("N=%d", len(workers)))
			res.AdjustLatency = append(res.AdjustLatency, clk.Now()-reqAt)
			resume()
		})
	}

	var iterate func()
	// blockUntilReady is the synchronous baseline: training stands still,
	// polling the AM until the adjustment fires; the whole wait is pause.
	var blockUntilReady func()
	blockUntilReady = func() {
		if clk.Now() >= horizon {
			return
		}
		const poll = 250 * time.Millisecond
		adj, ok, err := am.Coordinate()
		if err != nil {
			fail(err)
			return
		}
		if ok {
			applyAdjustment(adj, cfg.Costs.CoordTime(rng, len(workers)), iterate)
			return
		}
		res.TrainingPause += poll
		clk.After(poll, "sync-wait", blockUntilReady)
	}

	iterate = func() {
		if clk.Now() >= horizon {
			return
		}
		// Fire due requests.
		for nextScaleOut < len(scaleOuts) && scaleOuts[nextScaleOut].At <= clk.Now() {
			so := scaleOuts[nextScaleOut]
			nextScaleOut++
			scheduleScaleOut(so)
			inFlight = true
		}
		if cfg.Synchronous && inFlight {
			blockUntilReady()
			return
		}
		it, err := iterTime()
		if err != nil {
			fail(err)
			return
		}
		clk.After(it, "iteration", func() {
			res.Iterations++
			record(EvIterDone, fmt.Sprintf("N=%d", len(workers)))
			// Coordination at the boundary.
			if res.Iterations%cfg.CoordInterval == 0 {
				coordCost := cfg.Costs.CoordTime(rng, len(workers))
				adj, ok, err := am.Coordinate()
				if err != nil {
					fail(err)
					return
				}
				if ok {
					applyAdjustment(adj, coordCost, iterate)
					return
				}
				res.TrainingPause += coordCost
				clk.After(coordCost, "coordination", iterate)
				return
			}
			iterate()
		})
	}
	iterate()
	if err := clk.Run(horizon); err != nil && !errors.Is(err, simclock.ErrStopped) {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// Render prints the timeline in a human-readable form.
func (r *Result) Render() string {
	out := ""
	for _, ev := range r.Timeline {
		if ev.Kind == EvIterDone {
			continue // too noisy; iterations are summarized
		}
		out += fmt.Sprintf("%12v  %-16s %s\n", ev.At.Round(time.Millisecond), ev.Kind, ev.Note)
	}
	out += fmt.Sprintf("iterations=%d pause=%v\n", r.Iterations, r.TrainingPause.Round(time.Millisecond))
	return out
}
