package simrun

import (
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/core"
	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/topology"
)

func cluster(t *testing.T) *topology.Cluster {
	t.Helper()
	c, err := topology.NewCluster(topology.DefaultGeometry())
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func baseConfig(t *testing.T, c *topology.Cluster, n int) Config {
	t.Helper()
	gpus, err := c.Reserve(n)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	return Config{
		Model:         models.ResNet50(),
		Cluster:       c,
		Workers:       topology.IDsOf(gpus),
		TotalBatch:    n * 32,
		CoordInterval: 1,
		Seed:          1,
	}
}

func TestRunValidation(t *testing.T) {
	c := cluster(t)
	bad := baseConfig(t, c, 4)
	bad.Cluster = nil
	if _, err := Run(bad, nil, time.Minute); err == nil {
		t.Fatal("nil cluster accepted")
	}
	bad = baseConfig(t, c, 4)
	bad.Workers = nil
	if _, err := Run(bad, nil, time.Minute); err == nil {
		t.Fatal("no workers accepted")
	}
	bad = baseConfig(t, c, 4)
	bad.TotalBatch = 7
	if _, err := Run(bad, nil, time.Minute); err == nil {
		t.Fatal("indivisible batch accepted")
	}
}

func TestSteadyStateTraining(t *testing.T) {
	c := cluster(t)
	cfg := baseConfig(t, c, 8)
	res, err := Run(cfg, nil, 30*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations in 30 virtual seconds")
	}
	// Pause without adjustments is just coordination: tiny.
	if res.TrainingPause > 100*time.Millisecond {
		t.Fatalf("steady-state pause %v too large", res.TrainingPause)
	}
}

func TestAsyncScaleOutTimeline(t *testing.T) {
	c := cluster(t)
	cfg := baseConfig(t, c, 8)
	add, err := c.Reserve(8)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	res, err := Run(cfg, []ScaleOutAt{{At: 5 * time.Second, Add: topology.IDsOf(add)}}, 3*time.Minute)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The adjustment happened.
	var sawRequest, sawAdjust bool
	var requestAt, adjustEndAt time.Duration
	itersDuringStart := 0
	for _, ev := range res.Timeline {
		switch ev.Kind {
		case EvRequest:
			sawRequest = true
			requestAt = ev.At
		case EvAdjustEnd:
			sawAdjust = true
			adjustEndAt = ev.At
		case EvIterDone:
			if sawRequest && !sawAdjust {
				itersDuringStart++
			}
		}
	}
	if !sawRequest || !sawAdjust {
		t.Fatalf("timeline incomplete: request=%v adjust=%v", sawRequest, sawAdjust)
	}
	// The asynchronous property: training iterations continued while the
	// new workers were starting (start+init is ~30 virtual seconds; at
	// ~200ms/iter that is dozens of iterations).
	if itersDuringStart < 10 {
		t.Fatalf("only %d iterations during worker start: async coordination not effective",
			itersDuringStart)
	}
	// The request-to-done latency is dominated by start/init (tens of
	// seconds), but the training pause is ~1s: the hidden-cost property.
	latency := adjustEndAt - requestAt
	if latency < 20*time.Second {
		t.Fatalf("adjustment latency %v suspiciously small", latency)
	}
	if res.TrainingPause > 3*time.Second {
		t.Fatalf("training pause %v not hidden", res.TrainingPause)
	}
	if len(res.AdjustLatency) != 1 || res.AdjustLatency[0] != latency {
		t.Fatalf("AdjustLatency = %v, want [%v]", res.AdjustLatency, latency)
	}
}

func TestSynchronousBaselinePausesLonger(t *testing.T) {
	c1 := cluster(t)
	async := baseConfig(t, c1, 8)
	add1, err := c1.Reserve(8)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	asyncRes, err := Run(async, []ScaleOutAt{{At: 5 * time.Second, Add: topology.IDsOf(add1)}}, 3*time.Minute)
	if err != nil {
		t.Fatalf("Run async: %v", err)
	}
	c2 := cluster(t)
	sync := baseConfig(t, c2, 8)
	sync.Synchronous = true
	add2, err := c2.Reserve(8)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	syncRes, err := Run(sync, []ScaleOutAt{{At: 5 * time.Second, Add: topology.IDsOf(add2)}}, 3*time.Minute)
	if err != nil {
		t.Fatalf("Run sync: %v", err)
	}
	// The synchronous system charges the whole start/init to the pause.
	if syncRes.TrainingPause < 10*asyncRes.TrainingPause {
		t.Fatalf("sync pause %v not much larger than async %v",
			syncRes.TrainingPause, asyncRes.TrainingPause)
	}
}

func TestEventDrivenMatchesClosedForm(t *testing.T) {
	// Cross-validation: the event-driven pause for one scale-out should be
	// within a factor ~2 of core.Job's closed-form pause for the same
	// configuration (they sample jitter independently).
	c := cluster(t)
	cfg := baseConfig(t, c, 8)
	add, err := c.Reserve(8)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	addIDs := topology.IDsOf(add)
	res, err := Run(cfg, []ScaleOutAt{{At: 2 * time.Second, Add: addIDs}}, 3*time.Minute)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Closed form.
	c2 := cluster(t)
	gpus, err := c2.Reserve(8)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	job, err := core.NewJob(core.JobConfig{
		Model:   models.ResNet50(),
		Cluster: c2,
		Workers: topology.IDsOf(gpus), TotalBatch: 256, LR: 0.1, Seed: 3,
	})
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	add2, err := c2.Reserve(8)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	rep, err := job.ScaleOut(topology.IDsOf(add2))
	if err != nil {
		t.Fatalf("ScaleOut: %v", err)
	}
	// The event-driven pause includes per-iteration coordination; subtract
	// nothing and compare loosely.
	ratio := float64(res.TrainingPause) / float64(rep.Pause)
	if ratio < 0.5 || ratio > 2.5 {
		t.Fatalf("event-driven pause %v vs closed-form %v (ratio %.2f)",
			res.TrainingPause, rep.Pause, ratio)
	}
}

func TestRenderTimeline(t *testing.T) {
	c := cluster(t)
	cfg := baseConfig(t, c, 4)
	add, err := c.Reserve(4)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	res, err := Run(cfg, []ScaleOutAt{{At: time.Second, Add: topology.IDsOf(add)}}, 2*time.Minute)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := res.Render()
	for _, want := range []string{"adjust-request", "worker-reported", "adjust-begin", "adjust-end", "iterations="} {
		if !contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
