package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// This file implements the same request/reply protocol over real TCP using
// encoding/gob, demonstrating that the coordination protocol is not tied to
// the in-process bus. The scheduler's resource-adjustment service
// (Section V-A, "Service API") is exposed this way in the integration tests
// and examples. Clients dial per call, which makes reconnection after a
// server restart automatic — the property the paper gets from ZeroMQ.

type rpcRequest struct {
	ID      uint64
	Kind    string
	Payload []byte
}

type rpcResponse struct {
	ID      uint64
	Payload []byte
	Err     string
}

// Server serves the request/reply protocol on a TCP listener.
type Server struct {
	handler Handler

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates a server dispatching to h.
func NewServer(h Handler) *Server {
	return &Server{handler: h, conns: make(map[net.Conn]struct{})}
}

// Listen binds to addr ("127.0.0.1:0" for an ephemeral port) and starts
// accepting connections. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req rpcRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := rpcResponse{ID: req.ID}
		payload, err := s.handler(Message{ID: req.ID, Kind: req.Kind, Payload: req.Payload})
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Payload = payload
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Close stops accepting and tears down open connections, waiting for the
// serving goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

// Call performs one request/reply round trip to a Server at addr, dialing a
// fresh connection (and therefore transparently surviving server restarts
// between calls). The timeout covers dial, write and read.
func Call(addr, kind string, payload []byte, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	defer func() { _ = conn.Close() }()
	deadline := time.Now().Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, fmt.Errorf("transport: set deadline: %w", err)
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	req := rpcRequest{ID: 1, Kind: kind, Payload: payload}
	if err := enc.Encode(&req); err != nil {
		return nil, fmt.Errorf("transport: encode request: %w", err)
	}
	var resp rpcResponse
	if err := dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("transport: decode response: %w", err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Payload, nil
}

// CallRetry is Call with resend-on-timeout semantics: it retries up to
// attempts times, which rides out a server restart in progress.
func CallRetry(addr, kind string, payload []byte, timeout time.Duration, attempts int) ([]byte, error) {
	if attempts <= 0 {
		attempts = 3
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		out, err := Call(addr, kind, payload, timeout)
		if err == nil {
			return out, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("transport: %d attempts failed: %w", attempts, lastErr)
}
