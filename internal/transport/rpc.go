package transport

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/telemetry"
)

// This file implements the request/reply protocol over real TCP,
// demonstrating that the coordination protocol is not tied to the
// in-process bus. The scheduler's resource-adjustment service (Section
// V-A, "Service API") is exposed this way in the integration tests and
// examples. The wire format is the length-prefixed binary framing of
// frame.go/wire.go; requests multiplex over long-lived connections
// (pool.go's Client) or one-shot dials (Call), and either way a server
// restart is transparent to callers: broken connections surface retryable
// transport errors, CallRetry redials, and the pooled client invalidates
// and re-establishes its connections — the property the paper gets from
// ZeroMQ.

// TCP call defaults, named once and referenced everywhere.
const (
	// DefaultCallTimeout covers dial+write+read of one Call when the
	// caller passes no timeout.
	DefaultCallTimeout = 2 * time.Second
	// DefaultRetryAttempts is the attempt budget of an unconfigured
	// RetryPolicy.
	DefaultRetryAttempts = 3
	// DefaultRetryBase is the first backoff delay of an unconfigured
	// RetryPolicy; subsequent delays double up to DefaultRetryMax.
	DefaultRetryBase = 10 * time.Millisecond
	// DefaultRetryMax caps the exponential backoff delay.
	DefaultRetryMax = 500 * time.Millisecond
)

// serverConn is one accepted connection: reads are owned by the serveConn
// loop, writes come from per-request handler goroutines and serialize on
// wmu so concurrent responses never interleave frames.
type serverConn struct {
	conn net.Conn
	wmu  sync.Mutex
}

// Server serves the request/reply protocol on a TCP listener. Requests
// dispatch concurrently: the per-connection read loop hands each decoded
// request to its own goroutine, so one slow handler no longer head-of-line
// blocks every other call multiplexed on the connection, and a panicking
// handler is recovered per request — it produces a CodeHandlerPanic
// response and the connection keeps serving.
type Server struct {
	handler Handler

	mu       sync.Mutex
	listener net.Listener
	conns    map[*serverConn]struct{}
	closed   bool
	wg       sync.WaitGroup
	tr       telemetry.Tracer
	proc     string

	// Nil-safe instruments; SetMetrics replaces them.
	mRequests *telemetry.Counter
	mPanics   *telemetry.Counter
}

// NewServer creates a server dispatching to h.
func NewServer(h Handler) *Server {
	return &Server{handler: h, conns: make(map[*serverConn]struct{}), tr: telemetry.Nop{}}
}

// SetTracer makes the server open a remote-child "transport.handle" span
// per request, labeled with the given logical process name. Nil disables
// tracing again.
func (s *Server) SetTracer(tr telemetry.Tracer, proc string) {
	s.mu.Lock()
	s.tr = telemetry.OrNop(tr)
	s.proc = proc
	s.mu.Unlock()
}

// SetMetrics wires the server's counters into reg:
// transport_server_requests_total counts dispatched requests and
// transport_handler_panics_total counts handler panics recovered per
// request. A nil registry disables them at zero cost.
func (s *Server) SetMetrics(reg *telemetry.Registry) {
	s.mu.Lock()
	s.mRequests = reg.Counter("transport_server_requests_total")
	s.mPanics = reg.Counter("transport_handler_panics_total")
	s.mu.Unlock()
}

// Listen binds to addr ("127.0.0.1:0" for an ephemeral port) and starts
// accepting connections. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		sc := &serverConn{conn: conn}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(sc)
	}
}

// serveConn is the per-connection read loop: it reads one frame at a time
// into a pooled buffer and hands each request to its own goroutine. The
// request goroutine owns the frame buffer (the decoded payload aliases
// it) and returns it to the pool after the handler finishes.
func (s *Server) serveConn(sc *serverConn) {
	defer s.wg.Done()
	defer func() {
		_ = sc.conn.Close()
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
	}()
	for {
		bufp := getFrameBuf()
		body, err := readFrame(sc.conn, bufp)
		if err != nil {
			putFrameBuf(bufp)
			return
		}
		id, kind, payload, tc, err := decodeRequest(body)
		if err != nil {
			putFrameBuf(bufp)
			return // protocol corruption: tear the connection down
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer putFrameBuf(bufp)
			s.serveRequest(sc, id, kind, payload, tc)
		}()
	}
}

// serveRequest runs the handler for one request and writes its response.
func (s *Server) serveRequest(sc *serverConn, id uint64, kind string, payload []byte, tc telemetry.TraceContext) {
	s.mu.Lock()
	tr, proc := s.tr, s.proc
	mReq, mPanics := s.mRequests, s.mPanics
	s.mu.Unlock()
	mReq.Inc()
	msg := Message{ID: id, Kind: kind, Payload: payload, Trace: tc}
	hspan := telemetry.StartRemote(tr, "transport.handle", tc)
	if hspan != nil {
		hspan.SetProc(proc)
		hspan.Annotate("kind", kind)
		msg.Trace = hspan.Context()
	}
	out, err := s.dispatch(msg, mPanics)
	if err != nil {
		hspan.Annotate("error", err.Error())
	}
	hspan.End()
	respp := getFrameBuf()
	code := codeOf(err)
	errMsg := ""
	if err != nil {
		errMsg = err.Error()
	}
	*respp = encodeResponse((*respp)[:0], id, code, errMsg, out)
	_ = writeFrame(sc.conn, &sc.wmu, *respp) // write failure ends the conn via the read loop
	putFrameBuf(respp)
}

// dispatch runs the handler with per-request panic containment: a
// panicking handler yields an ErrHandlerPanic error (CodeHandlerPanic on
// the wire), increments transport_handler_panics_total, and leaves the
// connection — and every other in-flight request on it — serving.
func (s *Server) dispatch(msg Message, panics *telemetry.Counter) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			panics.Inc()
			out, err = nil, fmt.Errorf("%w: %s %v", ErrHandlerPanic, msg.Kind, r)
		}
	}()
	if s.handler == nil {
		return nil, nil
	}
	return s.handler(msg)
}

// Close stops accepting and tears down open connections, waiting for the
// serving goroutines — including in-flight per-request handlers — to exit.
// In-flight pooled callers observe the torn connection as a retryable
// transport error, never a hang.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.conn.Close()
	}
	s.wg.Wait()
}

// Call performs one request/reply round trip to a Server at addr, dialing a
// fresh connection (and therefore transparently surviving server restarts
// between calls). The timeout covers dial, write and read; cancelling ctx
// aborts the call at any point, including mid-read. TCP I/O deadlines are
// inherently wall-clock, so Call always stamps them from the wall clock —
// only the retry backoff (CallRetry) runs on an injectable clock.
//
// Call is the zero-state path: no pool, no connection reuse. Steady-state
// callers should hold a Client (pool.go), which multiplexes requests over
// pooled connections and is benchmarked at ≥5× Call's throughput under
// concurrency; Call remains for one-shot probes and as the simplest
// illustration of the wire protocol.
func Call(ctx context.Context, addr, kind string, payload []byte, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		timeout = DefaultCallTimeout
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dialer := net.Dialer{Timeout: timeout}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	defer func() { _ = conn.Close() }()
	// A cancelled context unblocks in-flight reads by closing the conn.
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()
	deadline := clock.Wall{}.Now().Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, fmt.Errorf("transport: set deadline: %w", err)
	}
	var wmu sync.Mutex
	reqp := getFrameBuf()
	frame, err := encodeRequest((*reqp)[:0], 1, kind, payload,
		telemetry.SpanFromContext(ctx).Context())
	if err != nil {
		putFrameBuf(reqp)
		return nil, err
	}
	*reqp = frame
	err = writeFrame(conn, &wmu, frame)
	putFrameBuf(reqp)
	if err != nil {
		return nil, err
	}
	respp := getFrameBuf()
	defer putFrameBuf(respp)
	body, err := readFrame(conn, respp)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("transport: read response: %w", err)
	}
	_, code, errMsg, respPayload, err := decodeResponse(body)
	if err != nil {
		return nil, err
	}
	if rerr := responseError(code, errMsg); rerr != nil {
		return nil, rerr
	}
	out := make([]byte, len(respPayload))
	copy(out, respPayload)
	return out, nil
}

// RetryPolicy shapes CallRetry's exponential backoff. The zero value is
// normalized to the package defaults.
type RetryPolicy struct {
	// Attempts is the total call budget (first try included).
	Attempts int
	// Base is the delay before the second attempt; each later delay
	// doubles (Base, 2*Base, 4*Base, ...) up to Max.
	Base time.Duration
	// Max caps individual delays.
	Max time.Duration
	// Seed makes the jitter deterministic. Delays are jittered
	// multiplicatively in [delay/2, delay) so that retrying peers
	// de-synchronize without losing reproducibility.
	Seed int64
	// Clock is the time source the backoff sleeps on; nil selects the
	// wall clock. Tests pass a clock.Sim to assert the schedule in
	// virtual time.
	Clock clock.Clock
}

// DefaultRetryPolicy returns the standard reconnect policy.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: DefaultRetryAttempts, Base: DefaultRetryBase, Max: DefaultRetryMax}
}

// normalized fills zero fields with defaults.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetryAttempts
	}
	if p.Base <= 0 {
		p.Base = DefaultRetryBase
	}
	if p.Max <= 0 {
		p.Max = DefaultRetryMax
	}
	if p.Clock == nil {
		p.Clock = clock.Wall{}
	}
	return p
}

// Schedule returns the exact backoff delays a CallRetry under this policy
// sleeps between attempts (length Attempts-1). It is exported so tests and
// capacity planning can assert the schedule without running calls.
func (p RetryPolicy) Schedule() []time.Duration {
	p = p.normalized()
	rng := rand.New(rand.NewSource(p.Seed))
	delays := make([]time.Duration, 0, p.Attempts-1)
	backoff := p.Base
	for i := 1; i < p.Attempts; i++ {
		d := backoff
		if d > p.Max {
			d = p.Max
		}
		// Multiplicative jitter in [d/2, d).
		if half := d / 2; half > 0 {
			d = half + time.Duration(rng.Int63n(int64(half)))
		}
		delays = append(delays, d)
		if backoff <= p.Max {
			backoff *= 2
		}
	}
	return delays
}

// CallRetry is Call with exponential-backoff resend semantics for
// transport-level failures: it retries up to policy.Attempts times,
// sleeping the policy's jittered schedule between attempts, which rides
// out a server restart in progress without hammering the endpoint.
// Handler-level errors (Retryable reports false) return immediately — a
// handler that ran and failed must not be re-executed by the transport,
// because the TCP path has no incarnation dedup to absorb the repeat.
// Cancelling ctx aborts both in-flight calls and backoff sleeps.
func CallRetry(ctx context.Context, addr, kind string, payload []byte, timeout time.Duration, policy RetryPolicy) ([]byte, error) {
	return callRetry(ctx, policy, func() ([]byte, error) {
		return Call(ctx, addr, kind, payload, timeout)
	})
}

// callRetry is the shared retry loop behind CallRetry and
// Client.CallRetry: transport-level errors burn attempts through the
// backoff schedule, terminal errors return at once.
func callRetry(ctx context.Context, policy RetryPolicy, call func() ([]byte, error)) ([]byte, error) {
	policy = policy.normalized()
	delays := policy.Schedule()
	var lastErr error
	for i := 0; i < policy.Attempts; i++ {
		if i > 0 {
			if err := policy.Clock.Sleep(ctx, delays[i-1]); err != nil {
				return nil, fmt.Errorf("transport: retry cancelled after %d attempts: %w", i, err)
			}
		}
		out, err := call()
		if err == nil {
			return out, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		if !Retryable(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("transport: %d attempts failed: %w", policy.Attempts, lastErr)
}
