package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/telemetry"
)

// This file implements the same request/reply protocol over real TCP using
// encoding/gob, demonstrating that the coordination protocol is not tied to
// the in-process bus. The scheduler's resource-adjustment service
// (Section V-A, "Service API") is exposed this way in the integration tests
// and examples. Clients dial per call, which makes reconnection after a
// server restart automatic — the property the paper gets from ZeroMQ.

// TCP call defaults, named once and referenced everywhere.
const (
	// DefaultCallTimeout covers dial+write+read of one Call when the
	// caller passes no timeout.
	DefaultCallTimeout = 2 * time.Second
	// DefaultRetryAttempts is the attempt budget of an unconfigured
	// RetryPolicy.
	DefaultRetryAttempts = 3
	// DefaultRetryBase is the first backoff delay of an unconfigured
	// RetryPolicy; subsequent delays double up to DefaultRetryMax.
	DefaultRetryBase = 10 * time.Millisecond
	// DefaultRetryMax caps the exponential backoff delay.
	DefaultRetryMax = 500 * time.Millisecond
)

type rpcRequest struct {
	ID      uint64
	Kind    string
	Payload []byte
	// Trace carries the caller's span identity across the wire (gob-encoded
	// with the rest of the request) so server-side spans join the caller's
	// causal tree exactly as on the in-process bus.
	Trace telemetry.TraceContext
}

type rpcResponse struct {
	ID      uint64
	Payload []byte
	Err     string
}

// Server serves the request/reply protocol on a TCP listener.
type Server struct {
	handler Handler

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	tr       telemetry.Tracer
	proc     string
}

// NewServer creates a server dispatching to h.
func NewServer(h Handler) *Server {
	return &Server{handler: h, conns: make(map[net.Conn]struct{}), tr: telemetry.Nop{}}
}

// SetTracer makes the server open a remote-child "transport.handle" span
// per request, labeled with the given logical process name. Nil disables
// tracing again.
func (s *Server) SetTracer(tr telemetry.Tracer, proc string) {
	s.mu.Lock()
	s.tr = telemetry.OrNop(tr)
	s.proc = proc
	s.mu.Unlock()
}

// Listen binds to addr ("127.0.0.1:0" for an ephemeral port) and starts
// accepting connections. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req rpcRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := rpcResponse{ID: req.ID}
		s.mu.Lock()
		tr, proc := s.tr, s.proc
		s.mu.Unlock()
		msg := Message{ID: req.ID, Kind: req.Kind, Payload: req.Payload, Trace: req.Trace}
		hspan := telemetry.StartRemote(tr, "transport.handle", req.Trace)
		if hspan != nil {
			hspan.SetProc(proc)
			hspan.Annotate("kind", req.Kind)
			msg.Trace = hspan.Context()
		}
		payload, err := s.handler(msg)
		if err != nil {
			hspan.Annotate("error", err.Error())
		}
		hspan.End()
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Payload = payload
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Close stops accepting and tears down open connections, waiting for the
// serving goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

// Call performs one request/reply round trip to a Server at addr, dialing a
// fresh connection (and therefore transparently surviving server restarts
// between calls). The timeout covers dial, write and read; cancelling ctx
// aborts the call at any point, including mid-read. TCP I/O deadlines are
// inherently wall-clock, so Call always stamps them from the wall clock —
// only the retry backoff (CallRetry) runs on an injectable clock.
func Call(ctx context.Context, addr, kind string, payload []byte, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		timeout = DefaultCallTimeout
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dialer := net.Dialer{Timeout: timeout}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	defer func() { _ = conn.Close() }()
	// A cancelled context unblocks in-flight reads by closing the conn.
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()
	deadline := clock.Wall{}.Now().Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, fmt.Errorf("transport: set deadline: %w", err)
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	req := rpcRequest{ID: 1, Kind: kind, Payload: payload,
		Trace: telemetry.SpanFromContext(ctx).Context()}
	if err := enc.Encode(&req); err != nil {
		return nil, fmt.Errorf("transport: encode request: %w", err)
	}
	var resp rpcResponse
	if err := dec.Decode(&resp); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("transport: decode response: %w", err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Payload, nil
}

// RetryPolicy shapes CallRetry's exponential backoff. The zero value is
// normalized to the package defaults.
type RetryPolicy struct {
	// Attempts is the total call budget (first try included).
	Attempts int
	// Base is the delay before the second attempt; each later delay
	// doubles (Base, 2*Base, 4*Base, ...) up to Max.
	Base time.Duration
	// Max caps individual delays.
	Max time.Duration
	// Seed makes the jitter deterministic. Delays are jittered
	// multiplicatively in [delay/2, delay) so that retrying peers
	// de-synchronize without losing reproducibility.
	Seed int64
	// Clock is the time source the backoff sleeps on; nil selects the
	// wall clock. Tests pass a clock.Sim to assert the schedule in
	// virtual time.
	Clock clock.Clock
}

// DefaultRetryPolicy returns the standard reconnect policy.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: DefaultRetryAttempts, Base: DefaultRetryBase, Max: DefaultRetryMax}
}

// normalized fills zero fields with defaults.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetryAttempts
	}
	if p.Base <= 0 {
		p.Base = DefaultRetryBase
	}
	if p.Max <= 0 {
		p.Max = DefaultRetryMax
	}
	if p.Clock == nil {
		p.Clock = clock.Wall{}
	}
	return p
}

// Schedule returns the exact backoff delays a CallRetry under this policy
// sleeps between attempts (length Attempts-1). It is exported so tests and
// capacity planning can assert the schedule without running calls.
func (p RetryPolicy) Schedule() []time.Duration {
	p = p.normalized()
	rng := rand.New(rand.NewSource(p.Seed))
	delays := make([]time.Duration, 0, p.Attempts-1)
	backoff := p.Base
	for i := 1; i < p.Attempts; i++ {
		d := backoff
		if d > p.Max {
			d = p.Max
		}
		// Multiplicative jitter in [d/2, d).
		if half := d / 2; half > 0 {
			d = half + time.Duration(rng.Int63n(int64(half)))
		}
		delays = append(delays, d)
		if backoff <= p.Max {
			backoff *= 2
		}
	}
	return delays
}

// CallRetry is Call with exponential-backoff resend semantics: it retries
// up to policy.Attempts times, sleeping the policy's jittered schedule
// between attempts, which rides out a server restart in progress without
// hammering the endpoint. Cancelling ctx aborts both in-flight calls and
// backoff sleeps.
func CallRetry(ctx context.Context, addr, kind string, payload []byte, timeout time.Duration, policy RetryPolicy) ([]byte, error) {
	policy = policy.normalized()
	delays := policy.Schedule()
	var lastErr error
	for i := 0; i < policy.Attempts; i++ {
		if i > 0 {
			if err := policy.Clock.Sleep(ctx, delays[i-1]); err != nil {
				return nil, fmt.Errorf("transport: retry cancelled after %d attempts: %w", i, err)
			}
		}
		out, err := Call(ctx, addr, kind, payload, timeout)
		if err == nil {
			return out, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("transport: %d attempts failed: %w", policy.Attempts, lastErr)
}
