package transport

import (
	"context"
	"reflect"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
)

func TestRetryScheduleDeterministic(t *testing.T) {
	p := RetryPolicy{Attempts: 6, Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Seed: 99}
	a, b := p.Schedule(), p.Schedule()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	p.Seed = 100
	if reflect.DeepEqual(a, p.Schedule()) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRetryScheduleBounds(t *testing.T) {
	p := RetryPolicy{Attempts: 8, Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Seed: 1}
	delays := p.Schedule()
	if len(delays) != p.Attempts-1 {
		t.Fatalf("schedule length %d, want %d", len(delays), p.Attempts-1)
	}
	raw := p.Base
	for i, d := range delays {
		cap := raw
		if cap > p.Max {
			cap = p.Max
		}
		// Jitter keeps each delay in [cap/2, cap).
		if d < cap/2 || d >= cap {
			t.Fatalf("delay %d = %v outside [%v, %v)", i, d, cap/2, cap)
		}
		if raw <= p.Max {
			raw *= 2
		}
	}
}

func TestRetryScheduleZeroValueNormalized(t *testing.T) {
	delays := RetryPolicy{}.Schedule()
	if len(delays) != DefaultRetryAttempts-1 {
		t.Fatalf("zero policy schedule length %d, want %d", len(delays), DefaultRetryAttempts-1)
	}
	for i, d := range delays {
		if d <= 0 || d > DefaultRetryMax {
			t.Fatalf("delay %d = %v out of range", i, d)
		}
	}
}

func TestCallRetryFollowsScheduleOnSimClock(t *testing.T) {
	// Dial a dead address so every attempt fails immediately; the only time
	// that passes on the sim clock is the backoff itself, so virtual elapsed
	// must equal the schedule sum exactly.
	sim := clock.NewSim(time.Unix(0, 0))
	stop := sim.AutoAdvance(0)
	defer stop()
	policy := RetryPolicy{
		Attempts: 5,
		Base:     100 * time.Millisecond,
		Max:      time.Second,
		Seed:     7,
		Clock:    sim,
	}
	var want time.Duration
	for _, d := range policy.Schedule() {
		want += d
	}
	start := time.Now()
	_, err := CallRetry(context.Background(), "127.0.0.1:1", "x", nil, 100*time.Millisecond, policy)
	if err == nil {
		t.Fatal("CallRetry to dead address succeeded")
	}
	if got := sim.Elapsed(); got != want {
		t.Fatalf("virtual backoff elapsed %v, want schedule sum %v", got, want)
	}
	// Sub-second wall time even though the virtual schedule is ~900ms+:
	// generous bound to absorb slow dial failures on loaded machines.
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("sim-clock backoff burned %v of wall time", wall)
	}
}

func TestCallRetryCancelDuringBackoff(t *testing.T) {
	sim := clock.NewSim(time.Unix(0, 0))
	// No auto-advance: the first backoff sleep can only end via ctx.
	policy := RetryPolicy{Attempts: 3, Base: time.Hour, Clock: sim}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := CallRetry(ctx, "127.0.0.1:1", "x", nil, 100*time.Millisecond, policy)
		done <- err
	}()
	// Wait for the sleeper to register, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for sim.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("backoff sleep never registered on sim clock")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled CallRetry returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled CallRetry never returned")
	}
}
