package transport

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/telemetry"
)

func TestRetryScheduleDeterministic(t *testing.T) {
	p := RetryPolicy{Attempts: 6, Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Seed: 99}
	a, b := p.Schedule(), p.Schedule()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	p.Seed = 100
	if reflect.DeepEqual(a, p.Schedule()) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRetryScheduleBounds(t *testing.T) {
	p := RetryPolicy{Attempts: 8, Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Seed: 1}
	delays := p.Schedule()
	if len(delays) != p.Attempts-1 {
		t.Fatalf("schedule length %d, want %d", len(delays), p.Attempts-1)
	}
	raw := p.Base
	for i, d := range delays {
		cap := raw
		if cap > p.Max {
			cap = p.Max
		}
		// Jitter keeps each delay in [cap/2, cap).
		if d < cap/2 || d >= cap {
			t.Fatalf("delay %d = %v outside [%v, %v)", i, d, cap/2, cap)
		}
		if raw <= p.Max {
			raw *= 2
		}
	}
}

func TestRetryScheduleZeroValueNormalized(t *testing.T) {
	delays := RetryPolicy{}.Schedule()
	if len(delays) != DefaultRetryAttempts-1 {
		t.Fatalf("zero policy schedule length %d, want %d", len(delays), DefaultRetryAttempts-1)
	}
	for i, d := range delays {
		if d <= 0 || d > DefaultRetryMax {
			t.Fatalf("delay %d = %v out of range", i, d)
		}
	}
}

func TestCallRetryFollowsScheduleOnSimClock(t *testing.T) {
	// Dial a dead address so every attempt fails immediately; the only time
	// that passes on the sim clock is the backoff itself, so virtual elapsed
	// must equal the schedule sum exactly.
	sim := clock.NewSim(time.Unix(0, 0))
	stop := sim.AutoAdvance(0)
	defer stop()
	policy := RetryPolicy{
		Attempts: 5,
		Base:     100 * time.Millisecond,
		Max:      time.Second,
		Seed:     7,
		Clock:    sim,
	}
	var want time.Duration
	for _, d := range policy.Schedule() {
		want += d
	}
	start := time.Now()
	_, err := CallRetry(context.Background(), "127.0.0.1:1", "x", nil, 100*time.Millisecond, policy)
	if err == nil {
		t.Fatal("CallRetry to dead address succeeded")
	}
	if got := sim.Elapsed(); got != want {
		t.Fatalf("virtual backoff elapsed %v, want schedule sum %v", got, want)
	}
	// Sub-second wall time even though the virtual schedule is ~900ms+:
	// generous bound to absorb slow dial failures on loaded machines.
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("sim-clock backoff burned %v of wall time", wall)
	}
}

func TestCallRetryCancelDuringBackoff(t *testing.T) {
	sim := clock.NewSim(time.Unix(0, 0))
	// No auto-advance: the first backoff sleep can only end via ctx.
	policy := RetryPolicy{Attempts: 3, Base: time.Hour, Clock: sim}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := CallRetry(ctx, "127.0.0.1:1", "x", nil, 100*time.Millisecond, policy)
		done <- err
	}()
	// Wait for the sleeper to register, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for sim.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("backoff sleep never registered on sim clock")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled CallRetry returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled CallRetry never returned")
	}
}

// TestCallRetryDoesNotRetryHandlerErrors is the regression for the
// retry-identity bug: CallRetry used to push deterministic application
// errors through the full backoff budget, re-executing non-idempotent
// handlers. A handler that runs and fails must run exactly once.
func TestCallRetryDoesNotRetryHandlerErrors(t *testing.T) {
	guardGoroutines(t)
	var invocations atomic.Int64
	srv := NewServer(func(m Message) ([]byte, error) {
		invocations.Add(1)
		return nil, errors.New("charge already applied") // non-idempotent: a retry would double-charge
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	sim := clock.NewSim(time.Unix(0, 0))
	stop := sim.AutoAdvance(0)
	defer stop()
	policy := RetryPolicy{Attempts: 6, Base: 10 * time.Millisecond, Clock: sim}
	_, err = CallRetry(context.Background(), addr, "charge", nil, time.Second, policy)
	if err == nil {
		t.Fatal("handler error did not propagate")
	}
	if !IsHandlerError(err) {
		t.Fatalf("error lost handler identity: %v", err)
	}
	if got := invocations.Load(); got != 1 {
		t.Fatalf("non-idempotent handler executed %d times under CallRetry, want exactly 1", got)
	}
	if elapsed := sim.Elapsed(); elapsed != 0 {
		t.Fatalf("terminal error burned %v of backoff", elapsed)
	}

	// The pooled client obeys the same contract.
	invocations.Store(0)
	client := NewClient(addr, ClientConfig{})
	defer client.Close()
	if _, err := client.CallRetry(context.Background(), "charge", nil, time.Second, policy); err == nil {
		t.Fatal("pooled handler error did not propagate")
	}
	if got := invocations.Load(); got != 1 {
		t.Fatalf("pooled CallRetry executed handler %d times, want exactly 1", got)
	}
}

// TestCallRetryStillRetriesTransportErrors pins the other half of the
// contract: dial failures keep burning the full attempt budget.
func TestCallRetryStillRetriesTransportErrors(t *testing.T) {
	sim := clock.NewSim(time.Unix(0, 0))
	stop := sim.AutoAdvance(0)
	defer stop()
	policy := RetryPolicy{Attempts: 4, Base: 10 * time.Millisecond, Clock: sim}
	var want time.Duration
	for _, d := range policy.Schedule() {
		want += d
	}
	_, err := CallRetry(context.Background(), "127.0.0.1:1", "x", nil, 100*time.Millisecond, policy)
	if err == nil {
		t.Fatal("CallRetry to dead address succeeded")
	}
	if !strings.Contains(err.Error(), "4 attempts failed") {
		t.Fatalf("dial failure did not burn the budget: %v", err)
	}
	if got := sim.Elapsed(); got != want {
		t.Fatalf("backoff elapsed %v, want schedule sum %v", got, want)
	}
}

// TestServerRecoversHandlerPanics: a panicking handler must produce a
// typed CodeHandlerPanic response, bump transport_handler_panics_total,
// and leave both the connection and the server serving.
func TestServerRecoversHandlerPanics(t *testing.T) {
	guardGoroutines(t)
	srv := NewServer(func(m Message) ([]byte, error) {
		if m.Kind == "boom" {
			panic("nil map write in handler")
		}
		return []byte("ok"), nil
	})
	reg := telemetry.NewRegistry()
	srv.SetMetrics(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	client := NewClient(addr, ClientConfig{Conns: 1})
	defer client.Close()

	_, err = client.Call(context.Background(), "boom", nil, time.Second)
	if !errors.Is(err, ErrHandlerPanic) {
		t.Fatalf("panic response = %v, want ErrHandlerPanic identity", err)
	}
	if Retryable(err) {
		t.Fatal("a handler panic must be terminal under CallRetry")
	}
	if !strings.Contains(err.Error(), "nil map write") {
		t.Fatalf("panic message lost: %v", err)
	}
	if got := reg.Counter("transport_handler_panics_total").Value(); got != 1 {
		t.Fatalf("transport_handler_panics_total = %d, want 1", got)
	}
	// The same connection keeps serving after the panic.
	out, err := client.Call(context.Background(), "fine", nil, time.Second)
	if err != nil || string(out) != "ok" {
		t.Fatalf("call after panic = %q, %v", out, err)
	}
	// And the one-shot path sees the same typed error.
	if _, err := Call(context.Background(), addr, "boom", nil, time.Second); !errors.Is(err, ErrHandlerPanic) {
		t.Fatalf("one-shot panic response = %v, want ErrHandlerPanic identity", err)
	}
	if got := reg.Counter("transport_handler_panics_total").Value(); got != 2 {
		t.Fatalf("transport_handler_panics_total = %d, want 2", got)
	}
}

// TestOneShotCallRoundTrip covers the dial-per-call path on the framed
// protocol, including payload isolation from the pooled frame buffers.
func TestOneShotCallRoundTrip(t *testing.T) {
	guardGoroutines(t)
	srv := NewServer(func(m Message) ([]byte, error) {
		return append([]byte("got:"), m.Payload...), nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	out1, err := Call(context.Background(), addr, "a", []byte("one"), time.Second)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	out2, err := Call(context.Background(), addr, "b", []byte("two"), time.Second)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(out1) != "got:one" || string(out2) != "got:two" {
		t.Fatalf("replies = %q, %q (buffer aliasing?)", out1, out2)
	}
}
