package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/racecheck"
)

// echoServer starts a Server whose handler echoes kind:payload, closed at
// test end.
func echoServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer(func(m Message) ([]byte, error) {
		out := make([]byte, 0, len(m.Kind)+1+len(m.Payload))
		out = append(out, m.Kind...)
		out = append(out, ':')
		return append(out, m.Payload...), nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(srv.Close)
	return srv, addr
}

func TestPooledCallBasic(t *testing.T) {
	guardGoroutines(t)
	_, addr := echoServer(t)
	client := NewClient(addr, ClientConfig{})
	defer client.Close()
	out, err := client.Call(context.Background(), "ping", []byte("x"), time.Second)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(out) != "ping:x" {
		t.Fatalf("reply = %q", out)
	}
}

// TestPooledCallConcurrentDemux drives many goroutines through a
// deliberately tiny pool so every connection multiplexes many requests at
// once, and verifies each caller gets its own reply — the demux-by-ID
// contract that replaces the old one-request-per-connection lockstep.
func TestPooledCallConcurrentDemux(t *testing.T) {
	guardGoroutines(t)
	_, addr := echoServer(t)
	client := NewClient(addr, ClientConfig{Conns: 2})
	defer client.Close()
	const goroutines, calls = 32, 50
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				payload := fmt.Sprintf("g%d-i%d", g, i)
				out, err := client.Call(context.Background(), "echo", []byte(payload), 5*time.Second)
				if err != nil {
					errc <- fmt.Errorf("g%d i%d: %w", g, i, err)
					return
				}
				if string(out) != "echo:"+payload {
					errc <- fmt.Errorf("g%d i%d: cross-talk: got %q", g, i, out)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestPooledNoHeadOfLineBlocking pins the concurrent-dispatch fix: on a
// single pooled connection, a fast request issued after a slow one must
// complete first. The old serveConn ran handlers inline in the read loop,
// so the slow handler head-of-line blocked the whole connection.
func TestPooledNoHeadOfLineBlocking(t *testing.T) {
	guardGoroutines(t)
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	srv := NewServer(func(m Message) ([]byte, error) {
		if m.Kind == "slow" {
			<-release
		}
		return []byte(m.Kind), nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	// Runs before srv.Close (LIFO), which joins the parked slow handler.
	defer releaseOnce()
	client := NewClient(addr, ClientConfig{Conns: 1})
	defer client.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := client.Call(context.Background(), "slow", nil, 10*time.Second)
		slowDone <- err
	}()
	// The fast call must finish while the slow handler is still parked.
	deadline := time.Now().Add(5 * time.Second)
	for {
		out, err := client.Call(context.Background(), "fast", nil, 5*time.Second)
		if err == nil && string(out) == "fast" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fast call starved behind slow handler: %v", err)
		}
	}
	select {
	case err := <-slowDone:
		t.Fatalf("slow call finished early: %v", err)
	default:
	}
	releaseOnce()
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

// TestPooledClientSurvivesServerRestart is the restart-transparency
// contract the dial-per-call path had for free: kill the server, bring a
// new one up on the same address, and CallRetry must ride it out by
// invalidating the dead pooled connection and redialing.
func TestPooledClientSurvivesServerRestart(t *testing.T) {
	guardGoroutines(t)
	srv1, addr := echoServer(t)
	client := NewClient(addr, ClientConfig{})
	defer client.Close()
	if _, err := client.Call(context.Background(), "warm", nil, time.Second); err != nil {
		t.Fatalf("warm call: %v", err)
	}
	srv1.Close()
	// New incarnation on the same port.
	srv2 := NewServer(func(m Message) ([]byte, error) { return []byte("v2"), nil })
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("re-listen: %v", err)
	}
	defer srv2.Close()
	out, err := client.CallRetry(context.Background(), "probe", nil, time.Second,
		RetryPolicy{Attempts: 5, Base: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("CallRetry across restart: %v", err)
	}
	if string(out) != "v2" {
		t.Fatalf("reply = %q, want v2", out)
	}
}

// TestServerCloseResolvesInflightPooledCalls kills the server while pooled
// calls are parked in handlers: every in-flight call must resolve with a
// definite (retryable, transport-level) error — no hangs — and neither
// side may leak goroutines.
func TestServerCloseResolvesInflightPooledCalls(t *testing.T) {
	guardGoroutines(t)
	started := make(chan struct{}, 64)
	block := make(chan struct{})
	srv := NewServer(func(m Message) ([]byte, error) {
		started <- struct{}{}
		<-block
		return nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	client := NewClient(addr, ClientConfig{Conns: 3})
	defer client.Close()
	const inflight = 8
	results := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			_, err := client.Call(context.Background(), "park", nil, 30*time.Second)
			results <- err
		}()
	}
	for i := 0; i < inflight; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("handlers never started")
		}
	}
	// Close tears the connections immediately but joins the parked handler
	// goroutines, so run it concurrently: every in-flight call must
	// resolve with a definite, retryable transport error while the
	// handlers are still parked — proof that callers never hang on a
	// mid-request shutdown.
	closeDone := make(chan struct{})
	go func() { srv.Close(); close(closeDone) }()
	for i := 0; i < inflight; i++ {
		select {
		case err := <-results:
			if err == nil {
				t.Fatal("in-flight call succeeded though its handler never replied")
			}
			if !Retryable(err) {
				t.Fatalf("in-flight call resolved terminal: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("in-flight pooled call never resolved after Server.Close")
		}
	}
	close(block)
	select {
	case <-closeDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Server.Close never returned after handlers released")
	}
}

// TestClientCloseResolvesInflightCalls is the mirror image: Client.Close
// with calls parked server-side resolves every caller with ErrClosed and
// reclaims the reader goroutines.
func TestClientCloseResolvesInflightCalls(t *testing.T) {
	guardGoroutines(t)
	block := make(chan struct{})
	started := make(chan struct{}, 16)
	srv := NewServer(func(m Message) ([]byte, error) {
		started <- struct{}{}
		<-block
		return nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	// Registered after srv.Close so it runs first: Close joins the parked
	// handler goroutines, which need block released to return.
	defer close(block)
	client := NewClient(addr, ClientConfig{Conns: 2})
	const inflight = 4
	results := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			_, err := client.Call(context.Background(), "park", nil, 30*time.Second)
			results <- err
		}()
	}
	for i := 0; i < inflight; i++ {
		<-started
	}
	client.Close()
	for i := 0; i < inflight; i++ {
		select {
		case err := <-results:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("in-flight call after Client.Close = %v, want ErrClosed", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("in-flight call never resolved after Client.Close")
		}
	}
	// Closed client fails fast and terminally.
	if _, err := client.Call(context.Background(), "x", nil, time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("call on closed client = %v, want ErrClosed", err)
	}
}

// TestPooledCallTimeoutLeavesConnUsable: a timed-out call (slow handler)
// must not poison the connection — the late reply is discarded and
// subsequent calls on the same pooled connection succeed.
func TestPooledCallTimeoutLeavesConnUsable(t *testing.T) {
	guardGoroutines(t)
	release := make(chan struct{})
	srv := NewServer(func(m Message) ([]byte, error) {
		if m.Kind == "slow" {
			<-release
		}
		return []byte(m.Kind), nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	// Runs before srv.Close (LIFO), which joins the parked slow handler.
	defer close(release)
	client := NewClient(addr, ClientConfig{Conns: 1})
	defer client.Close()
	_, err = client.Call(context.Background(), "slow", nil, 50*time.Millisecond)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("slow call error = %v, want ErrCallTimeout", err)
	}
	if !Retryable(err) {
		t.Fatal("call timeout must be retryable")
	}
	out, err := client.Call(context.Background(), "fast", nil, 5*time.Second)
	if err != nil || string(out) != "fast" {
		t.Fatalf("call after timeout = %q, %v", out, err)
	}
}

// TestPooledCallSteadyStateAllocsBounded guards the buffer-reuse contract:
// once the pool and frame buffers are warm, a round trip performs a small
// constant number of allocations (result copy, reply channel, timer —
// not per-call frame buffers or codec scratch).
func TestPooledCallSteadyStateAllocsBounded(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("allocation counts are perturbed under -race; the CI hotpath job runs this without it")
	}
	_, addr := echoServer(t)
	client := NewClient(addr, ClientConfig{Conns: 1})
	defer client.Close()
	ctx := context.Background()
	payload := []byte("steady-state-payload")
	call := func() {
		if _, err := client.Call(ctx, "bench", payload, time.Second); err != nil {
			t.Fatalf("Call: %v", err)
		}
	}
	call() // warm: dial, reader start, pool buffers
	avg := testing.AllocsPerRun(200, call)
	// The bound is deliberately loose enough to tolerate runtime noise but
	// tight enough that a per-call frame buffer or codec scratch slice
	// (tens of allocs under gob) fails it.
	const maxAllocs = 25
	if avg > maxAllocs {
		t.Fatalf("pooled call = %.1f allocs/op, want <= %d (buffer reuse broken)", avg, maxAllocs)
	}
}

// TestPooledRequestIDsUniquePerConn: the old TCP path hardcoded ID 1 on
// every request, which multiplexing would collapse. Drive concurrent calls
// over one connection and assert the server observed unique IDs.
func TestPooledRequestIDsUniquePerConn(t *testing.T) {
	guardGoroutines(t)
	var mu sync.Mutex
	seen := make(map[uint64]int)
	srv := NewServer(func(m Message) ([]byte, error) {
		mu.Lock()
		seen[m.ID]++
		mu.Unlock()
		return nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	client := NewClient(addr, ClientConfig{Conns: 1})
	defer client.Close()
	var wg sync.WaitGroup
	var failed atomic.Bool
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := client.Call(context.Background(), "id", nil, 5*time.Second); err != nil {
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		t.Fatal("calls failed")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 8*25 {
		t.Fatalf("server saw %d unique request IDs, want %d", len(seen), 8*25)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("request ID %d seen %d times", id, n)
		}
	}
}
