package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Framing for the TCP path: every message on the wire is one
// length-prefixed frame — a 4-byte big-endian body length followed by the
// body. Frames are the multiplexing unit: requests and responses from many
// concurrent calls interleave on one connection and are matched back up by
// the request ID inside the body (wire.go). Frame bodies are read into and
// written from pooled buffers so the steady-state call path reuses storage
// instead of allocating per message.

const (
	// frameHeaderLen is the byte length of the frame length prefix.
	frameHeaderLen = 4
	// MaxFrameBytes bounds a single frame body. A peer announcing a larger
	// frame is treated as protocol corruption and the connection is torn
	// down rather than letting a bad length prefix drive an enormous
	// allocation.
	MaxFrameBytes = 64 << 20
)

// ErrFrameTooLarge reports a frame whose announced body length exceeds
// MaxFrameBytes. It is a transport-level (retryable) error: the connection
// that produced it is invalid, not the request.
var ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")

// framePool recycles frame bodies across calls. Buffers grow to fit the
// largest frame they ever carry and are reused at that capacity, so a
// steady-state workload settles into zero buffer churn (the
// Muratam/isucon9q buffer-reuse pattern).
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

//elan:hotpath
func getFrameBuf() *[]byte { return framePool.Get().(*[]byte) }

//elan:hotpath
func putFrameBuf(b *[]byte) { *b = (*b)[:0]; framePool.Put(b) }

// readFrame reads one frame body into *bufp (growing its backing array
// only when the body outgrows it) and returns the body slice, which
// aliases *bufp's storage and is valid until the buffer is reused.
//
//elan:hotpath
func readFrame(r io.Reader, bufp *[]byte) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n) //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
	}
	buf := *bufp
	if cap(buf) < int(n) {
		buf = make([]byte, n) //elan:vet-allow hotpathalloc — pooled buffer grows to the high-water frame size, then reuses it (TestPooledCallSteadyStateAllocsBounded)
		*bufp = buf
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("transport: short frame: %w", err) //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
	}
	return buf, nil
}

// writeFrame writes body as one frame under wmu. The length prefix and
// body go out in a single Write so concurrent writers on a multiplexed
// connection never interleave partial frames; wmu serializes the calls
// themselves (net.Conn allows concurrent Write, but two frames built from
// two buffers must not interleave at the io layer when a Write is split).
// The frame is assembled in *bufp's storage, which must have
// frameHeaderLen spare bytes reserved at the front by the encoder.
//
//elan:hotpath
func writeFrame(conn net.Conn, wmu *sync.Mutex, frame []byte) error {
	if len(frame) < frameHeaderLen {
		return errors.New("transport: internal: frame missing header room")
	}
	binary.BigEndian.PutUint32(frame[:frameHeaderLen], uint32(len(frame)-frameHeaderLen))
	wmu.Lock()
	_, err := conn.Write(frame)
	wmu.Unlock()
	if err != nil {
		return fmt.Errorf("transport: write frame: %w", err) //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
	}
	return nil
}
