package transport

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// parkedServer starts a Server whose handlers park on release, tracking the
// high-water mark of concurrently running handlers.
func parkedServer(t *testing.T) (addr string, highWater *atomic.Int64, release func()) {
	t.Helper()
	relCh := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(relCh) })
	var inFlight, hw atomic.Int64
	srv := NewServer(func(m Message) ([]byte, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			old := hw.Load()
			if n <= old || hw.CompareAndSwap(old, n) {
				break
			}
		}
		<-relCh
		return []byte("ok"), nil
	})
	a, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(srv.Close)
	t.Cleanup(releaseOnce) // runs before srv.Close (LIFO), unparking handlers
	return a, &hw, releaseOnce
}

// TestPooledBackpressureWindow pins the in-flight cap: with the window
// full of parked calls, the next Call on the connection fails fast with
// the retryable ErrBackpressure, and completing a call frees a slot.
func TestPooledBackpressureWindow(t *testing.T) {
	guardGoroutines(t)
	addr, highWater, release := parkedServer(t)
	const window = 3
	client := NewClient(addr, ClientConfig{Conns: 1, MaxInFlight: window})
	defer client.Close()

	done := make(chan error, window)
	for i := 0; i < window; i++ {
		go func() {
			_, err := client.Call(context.Background(), "park", nil, 30*time.Second)
			done <- err
		}()
	}
	// A call registers in the window before its frame reaches the server,
	// so once the server has all three handlers parked the window is
	// provably full and the next call must bounce.
	deadline := time.Now().Add(5 * time.Second)
	for highWater.Load() < window {
		if time.Now().After(deadline) {
			t.Fatalf("window never filled: high water %d", highWater.Load())
		}
		time.Sleep(time.Millisecond)
	}
	_, err := client.Call(context.Background(), "extra", nil, 30*time.Second)
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("extra call = %v, want ErrBackpressure", err)
	}
	if !Retryable(err) {
		t.Fatalf("ErrBackpressure not retryable: %v", err)
	}
	release()
	for i := 0; i < window; i++ {
		if err := <-done; err != nil {
			t.Fatalf("parked call %d: %v", i, err)
		}
	}
	// Window drained: calls flow again.
	if _, err := client.Call(context.Background(), "after", nil, 30*time.Second); err != nil {
		t.Fatalf("call after drain: %v", err)
	}
}

// TestPooledBackpressureFloodBounded floods a window-1 connection with far
// more concurrent callers than the window admits: the server must never see
// more than MaxInFlight concurrent handlers per connection, and every
// refused call must carry the retryable backpressure identity.
func TestPooledBackpressureFloodBounded(t *testing.T) {
	guardGoroutines(t)
	addr, highWater, release := parkedServer(t)
	const window = 4
	client := NewClient(addr, ClientConfig{Conns: 1, MaxInFlight: window})
	defer client.Close()

	const flood = 64
	var wg sync.WaitGroup
	var bounced, admitted atomic.Int64
	errc := make(chan error, flood)
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := client.Call(context.Background(), "flood", nil, 30*time.Second)
			switch {
			case err == nil:
				admitted.Add(1)
			case errors.Is(err, ErrBackpressure):
				if !Retryable(err) {
					errc <- err
				}
				bounced.Add(1)
			default:
				errc <- err
			}
		}()
	}
	// Unpark once the admitted calls have filled the window; the remaining
	// flood resolves as a mix of admissions (as slots free) and bounces.
	deadline := time.Now().Add(5 * time.Second)
	for highWater.Load() < window {
		if time.Now().After(deadline) {
			t.Fatalf("window never filled: high water %d", highWater.Load())
		}
		time.Sleep(time.Millisecond)
	}
	release()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("flood call: %v", err)
	}
	if hw := highWater.Load(); hw > window {
		t.Fatalf("server saw %d concurrent handlers, window is %d", hw, window)
	}
	if bounced.Load() == 0 {
		t.Fatal("flood produced no backpressure errors")
	}
	if admitted.Load() < window {
		t.Fatalf("only %d calls admitted", admitted.Load())
	}
}

// TestPooledBackpressureCallRetryBacksOff: CallRetry treats a full window
// as a transient fault — it burns backoff attempts instead of failing, and
// succeeds once the window drains.
func TestPooledBackpressureCallRetryBacksOff(t *testing.T) {
	guardGoroutines(t)
	addr, highWater, release := parkedServer(t)
	client := NewClient(addr, ClientConfig{Conns: 1, MaxInFlight: 1})
	defer client.Close()

	parked := make(chan error, 1)
	go func() {
		_, err := client.Call(context.Background(), "park", nil, 30*time.Second)
		parked <- err
	}()
	// Wait for the parked call to occupy the single-slot window, then a
	// probe must bounce before the retrying call starts.
	deadline := time.Now().Add(5 * time.Second)
	for highWater.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("window never filled")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := client.Call(context.Background(), "probe", nil, 30*time.Second); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("probe = %v, want ErrBackpressure", err)
	}
	retried := make(chan error, 1)
	go func() {
		_, err := client.CallRetry(context.Background(), "retry", nil, 30*time.Second,
			RetryPolicy{Attempts: 200, Base: time.Millisecond, Max: 5 * time.Millisecond})
		retried <- err
	}()
	select {
	case err := <-retried:
		t.Fatalf("CallRetry returned %v while window was full, want backoff", err)
	case <-time.After(50 * time.Millisecond):
	}
	release()
	if err := <-parked; err != nil {
		t.Fatalf("parked call: %v", err)
	}
	if err := <-retried; err != nil {
		t.Fatalf("CallRetry after drain: %v", err)
	}
}
