package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/telemetry"
)

// TestLoadSmokePooledClients is the load harness the CI load-smoke job
// runs: many concurrent callers multiplexed over a handful of pooled
// connections, every reply checked for cross-talk, zero tolerated errors,
// and the goroutine-leak guard proving the pool reclaims everything. In
// -short mode (the default `go test ./...` sweep is not short) it still
// runs but with a smaller fleet.
func TestLoadSmokePooledClients(t *testing.T) {
	guardGoroutines(t)
	clients, callsPer := 256, 20
	if testing.Short() {
		clients, callsPer = 64, 10
	}
	var served atomic.Int64
	srv := NewServer(func(m Message) ([]byte, error) {
		served.Add(1)
		// Echo the caller's sequence number back so mismatched demux shows
		// up as corruption, not silence.
		return m.Payload, nil
	})
	reg := telemetry.NewRegistry()
	srv.SetMetrics(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	client := NewClient(addr, ClientConfig{Conns: 8, Metrics: reg})
	defer client.Close()

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf [16]byte
			for i := 0; i < callsPer; i++ {
				binary.BigEndian.PutUint64(buf[:8], uint64(c))
				binary.BigEndian.PutUint64(buf[8:], uint64(i))
				out, err := client.Call(context.Background(), "load", buf[:], 30*time.Second)
				if err != nil {
					errc <- fmt.Errorf("client %d call %d: %w", c, i, err)
					return
				}
				if len(out) != 16 || binary.BigEndian.Uint64(out[:8]) != uint64(c) ||
					binary.BigEndian.Uint64(out[8:]) != uint64(i) {
					errc <- fmt.Errorf("client %d call %d: cross-talk reply % x", c, i, out)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	want := int64(clients * callsPer)
	if got := served.Load(); got != want {
		t.Fatalf("server handled %d requests, want %d", got, want)
	}
	if got := reg.Counter("transport_server_requests_total").Value(); got != want {
		t.Fatalf("transport_server_requests_total = %d, want %d", got, want)
	}
	// The whole load must have ridden the fixed pool: at most Conns dials.
	if got := reg.Counter("transport_client_dials_total").Value(); got > 8 {
		t.Fatalf("pool dialed %d times for %d calls, want <= 8 (pooling broken)", got, want)
	}
}

// TestLoadSurvivesMidLoadRestart drives sustained CallRetry traffic while
// the server is torn down and replaced on the same address: every call
// must eventually succeed (the retry budget absorbs the outage) or fail
// with a definite retryable error, and afterwards the pool must be fully
// re-established against the new incarnation.
func TestLoadSurvivesMidLoadRestart(t *testing.T) {
	guardGoroutines(t)
	mk := func(tag byte) *Server {
		return NewServer(func(m Message) ([]byte, error) { return []byte{tag}, nil })
	}
	srv1 := mk(1)
	addr, err := srv1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	client := NewClient(addr, ClientConfig{Conns: 4})
	defer client.Close()

	const workers = 32
	var succeeded, retryableFailed atomic.Int64
	stopTraffic := make(chan struct{})
	var wg sync.WaitGroup
	policy := RetryPolicy{Attempts: 8, Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopTraffic:
					return
				default:
				}
				_, err := client.CallRetry(context.Background(), "tick", nil, time.Second, policy)
				if err == nil {
					succeeded.Add(1)
				} else if Retryable(err) {
					retryableFailed.Add(1)
				} else {
					// Terminal errors under pure transport churn are the bug
					// this test exists to catch.
					retryableFailed.Add(1_000_000)
					return
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond) // let traffic establish
	srv1.Close()
	srv2 := mk(2)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("re-listen: %v", err)
	}
	defer srv2.Close()
	time.Sleep(200 * time.Millisecond) // traffic through the new incarnation
	close(stopTraffic)
	wg.Wait()
	if succeeded.Load() == 0 {
		t.Fatal("no call ever succeeded under restart load")
	}
	if retryableFailed.Load() >= 1_000_000 {
		t.Fatal("a call failed terminally during a pure transport outage")
	}
	// The new incarnation must answer immediately post-churn.
	out, err := client.Call(context.Background(), "tick", nil, time.Second)
	if err != nil || len(out) != 1 || out[0] != 2 {
		t.Fatalf("post-restart call = % x, %v, want [2]", out, err)
	}
}
