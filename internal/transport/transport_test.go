package transport

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
)

// guardGoroutines fails the test if goroutines outlive the test's cleanup
// stack (bus shutdown must stop every delivery goroutine). Register it
// FIRST so it runs after all other cleanups.
func guardGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// simBus builds a bus on auto-advanced virtual time: ack timeouts and
// latency cost microseconds of wall time instead of their face value.
func simBus(t *testing.T, cfg BusConfig) (*Bus, *clock.Sim) {
	t.Helper()
	guardGoroutines(t)
	sim := clock.NewSim(time.Unix(0, 0))
	stop := sim.AutoAdvance(0)
	t.Cleanup(stop)
	cfg.Clock = sim
	bus := NewBus(cfg)
	t.Cleanup(bus.Close)
	return bus, sim
}

func TestCallBasic(t *testing.T) {
	bus, _ := simBus(t, DefaultBusConfig())
	_, err := bus.Endpoint("server", func(m Message) ([]byte, error) {
		return []byte("pong:" + string(m.Payload)), nil
	})
	if err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	client, err := bus.Endpoint("client", nil)
	if err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	out, err := client.Call("server", "ping", []byte("hi"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(out) != "pong:hi" {
		t.Fatalf("reply = %q", out)
	}
}

func TestCallUnknownEndpoint(t *testing.T) {
	bus, _ := simBus(t, DefaultBusConfig())
	client, err := bus.Endpoint("client", nil)
	if err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	_, err = client.Call("ghost", "ping", nil)
	if !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("err = %v, want ErrNoEndpoint", err)
	}
}

func TestEmptyEndpointName(t *testing.T) {
	bus, _ := simBus(t, DefaultBusConfig())
	if _, err := bus.Endpoint("", nil); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestHandlerError(t *testing.T) {
	bus, _ := simBus(t, DefaultBusConfig())
	if _, err := bus.Endpoint("server", func(m Message) ([]byte, error) {
		return nil, errors.New("boom")
	}); err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	client, _ := bus.Endpoint("client", nil)
	_, err := client.Call("server", "x", nil)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestResendSurvivesDrops(t *testing.T) {
	cfg := DefaultBusConfig()
	cfg.DropRate = 0.4
	cfg.Seed = 42
	cfg.AckTimeout = 5 * time.Millisecond
	cfg.MaxRetries = 50
	bus, _ := simBus(t, cfg)
	var handled atomic.Int64
	if _, err := bus.Endpoint("server", func(m Message) ([]byte, error) {
		handled.Add(1)
		return m.Payload, nil
	}); err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	client, _ := bus.Endpoint("client", nil)
	for i := 0; i < 20; i++ {
		out, err := client.Call("server", "echo", []byte{byte(i)})
		if err != nil {
			t.Fatalf("Call %d: %v", i, err)
		}
		if len(out) != 1 || out[0] != byte(i) {
			t.Fatalf("Call %d: reply %v", i, out)
		}
	}
	// Exactly-once processing despite resends.
	if got := handled.Load(); got != 20 {
		t.Fatalf("handler ran %d times, want 20", got)
	}
}

func TestResendOnSimLatency(t *testing.T) {
	// Latency injection also runs on virtual time: a 50 ms round trip
	// costs no real sleeping.
	cfg := DefaultBusConfig()
	cfg.Latency = 25 * time.Millisecond
	cfg.AckTimeout = 200 * time.Millisecond
	bus, sim := simBus(t, cfg)
	if _, err := bus.Endpoint("server", func(m Message) ([]byte, error) {
		return m.Payload, nil
	}); err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	client, _ := bus.Endpoint("client", nil)
	start := time.Now()
	if _, err := client.Call("server", "echo", []byte("x")); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("simulated latency cost %v of wall time", wall)
	}
	if sim.Elapsed() < 50*time.Millisecond {
		t.Fatalf("virtual time advanced only %v, want >= 50ms", sim.Elapsed())
	}
}

func TestDedupReturnsCachedReply(t *testing.T) {
	// Force the first reply to be dropped and verify the resent request
	// gets the original handler result, not an empty ack.
	cfg := DefaultBusConfig()
	cfg.AckTimeout = 5 * time.Millisecond
	cfg.MaxRetries = 20
	bus, _ := simBus(t, cfg)
	var calls atomic.Int64
	if _, err := bus.Endpoint("server", func(m Message) ([]byte, error) {
		calls.Add(1)
		return []byte("result"), nil
	}); err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	client, _ := bus.Endpoint("client", nil)
	// Simulate a dropped reply by calling handle directly twice with the
	// same message, as a resend would.
	msg := Message{ID: client.allocID(), From: "client", To: "server", Kind: "x"}
	dst, _ := bus.lookup("server")
	first, err := dst.handle(msg)
	if err != nil || string(first) != "result" {
		t.Fatalf("first handle = %q, %v", first, err)
	}
	second, err := dst.handle(msg)
	if err != nil || string(second) != "result" {
		t.Fatalf("duplicate handle = %q, %v; want cached result", second, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", calls.Load())
	}
}

func TestTimeoutAfterRetries(t *testing.T) {
	cfg := DefaultBusConfig()
	cfg.DropRate = 0.95 // nearly everything lost
	cfg.Seed = 7
	cfg.AckTimeout = time.Millisecond
	cfg.MaxRetries = 3
	bus, _ := simBus(t, cfg)
	if _, err := bus.Endpoint("server", func(m Message) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	client, _ := bus.Endpoint("client", nil)
	var sawTimeout bool
	for i := 0; i < 10; i++ {
		if _, err := client.Call("server", "x", nil); errors.Is(err, ErrTimeout) {
			sawTimeout = true
			break
		}
	}
	if !sawTimeout {
		t.Fatal("no timeout observed at 95% drop rate with 3 retries")
	}
}

func TestCallCtxCancelled(t *testing.T) {
	// A cancelled context aborts the resend loop immediately even though
	// the destination never answers.
	cfg := DefaultBusConfig()
	cfg.AckTimeout = time.Hour // would block forever on the ack path
	bus, _ := simBus(t, cfg)
	// Handler blocks until the test ends.
	release := make(chan struct{})
	defer close(release)
	if _, err := bus.Endpoint("server", func(m Message) ([]byte, error) {
		<-release
		return nil, nil
	}); err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	client, _ := bus.Endpoint("client", nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := client.CallCtx(ctx, "server", "x", nil)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("CallCtx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled CallCtx never returned")
	}
}

func TestBusCloseAbortsCalls(t *testing.T) {
	guardGoroutines(t)
	cfg := DefaultBusConfig()
	cfg.AckTimeout = time.Hour
	cfg.Latency = time.Hour // delivery goroutine parks in a latency sleep
	sim := clock.NewSim(time.Unix(0, 0))
	cfg.Clock = sim
	bus := NewBus(cfg)
	if _, err := bus.Endpoint("server", func(m Message) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	client, _ := bus.Endpoint("client", nil)
	done := make(chan error, 1)
	go func() {
		_, err := client.Call("server", "x", nil)
		done <- err
	}()
	// Close must abort both the latency-sleeping delivery goroutine and
	// the pending call — with no driver ever advancing virtual time.
	time.Sleep(10 * time.Millisecond) // let the call start
	bus.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Call after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Call survived bus Close")
	}
	if _, err := client.Call("server", "x", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Call on closed bus = %v, want ErrClosed", err)
	}
}

func TestRemoveClosesEndpoint(t *testing.T) {
	bus, _ := simBus(t, DefaultBusConfig())
	ep, err := bus.Endpoint("worker", func(m Message) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	bus.Remove("worker")
	if _, err := ep.Call("anything", "x", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Call on removed endpoint = %v, want ErrClosed", err)
	}
	client, _ := bus.Endpoint("client", nil)
	if _, err := client.Call("worker", "x", nil); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("Call to removed endpoint = %v, want ErrNoEndpoint", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	bus, _ := simBus(t, DefaultBusConfig())
	if _, err := bus.Endpoint("server", func(m Message) ([]byte, error) {
		return m.Payload, nil
	}); err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := "client" + string(rune('0'+c))
			ep, err := bus.Endpoint(name, nil)
			if err != nil {
				t.Errorf("Endpoint: %v", err)
				return
			}
			for i := 0; i < 20; i++ {
				out, err := ep.Call("server", "echo", []byte{byte(c), byte(i)})
				if err != nil {
					t.Errorf("Call: %v", err)
					return
				}
				if len(out) != 2 || out[0] != byte(c) || out[1] != byte(i) {
					t.Errorf("wrong reply %v", out)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTCPServerRoundTrip(t *testing.T) {
	guardGoroutines(t)
	srv := NewServer(func(m Message) ([]byte, error) {
		if m.Kind == "fail" {
			return nil, errors.New("requested failure")
		}
		return append([]byte("ok:"), m.Payload...), nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	ctx := context.Background()
	out, err := Call(ctx, addr, "test", []byte("payload"), time.Second)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(out) != "ok:payload" {
		t.Fatalf("reply = %q", out)
	}
	if _, err := Call(ctx, addr, "fail", nil, time.Second); err == nil || !strings.Contains(err.Error(), "requested failure") {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestTCPReconnectAfterRestart(t *testing.T) {
	// The paper's ZeroMQ reconnect property: a client retries through a
	// server restart.
	ctx := context.Background()
	handler := func(m Message) ([]byte, error) { return []byte("alive"), nil }
	srv1 := NewServer(handler)
	addr, err := srv1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if _, err := Call(ctx, addr, "ping", nil, time.Second); err != nil {
		t.Fatalf("first Call: %v", err)
	}
	srv1.Close()
	// Server gone: plain Call fails.
	if _, err := Call(ctx, addr, "ping", nil, 100*time.Millisecond); err == nil {
		t.Fatal("Call succeeded against closed server")
	}
	// Restart on the same port.
	srv2 := NewServer(handler)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("re-Listen: %v", err)
	}
	defer srv2.Close()
	policy := RetryPolicy{Attempts: 5, Base: time.Millisecond, Max: 10 * time.Millisecond}
	out, err := CallRetry(ctx, addr, "ping", nil, 200*time.Millisecond, policy)
	if err != nil {
		t.Fatalf("CallRetry after restart: %v", err)
	}
	if string(out) != "alive" {
		t.Fatalf("reply = %q", out)
	}
}

func TestCallRetryExhausts(t *testing.T) {
	// Dial a port that nothing listens on; backoff runs on the sim clock
	// so exhaustion is instant in wall time.
	sim := clock.NewSim(time.Unix(0, 0))
	stop := sim.AutoAdvance(0)
	defer stop()
	policy := RetryPolicy{Attempts: 2, Base: 50 * time.Millisecond, Clock: sim}
	if _, err := CallRetry(context.Background(), "127.0.0.1:1", "x", nil, 50*time.Millisecond, policy); err == nil {
		t.Fatal("CallRetry to dead address succeeded")
	}
}
