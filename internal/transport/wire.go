package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/elan-sys/elan/internal/telemetry"
)

// Binary codec for the TCP path. The previous protocol gob-encoded each
// request/response, which allocated per message and — worse — flattened
// server-side errors into bare strings, so errors.Is(err,
// ErrStaleIncarnation) held on the in-process bus but silently failed over
// TCP. This codec writes fixed-layout binary bodies into pooled frame
// buffers and carries a typed error code in every response so sentinel
// identity survives the round trip.
//
// Request body (after the frame length prefix):
//
//	byte    wireRequest
//	uint64  request ID (unique per connection)
//	uint64  trace ID     } telemetry.TraceContext
//	uint64  span ID      }
//	uint16  len(proc), proc bytes
//	uint16  len(kind), kind bytes
//	rest    payload
//
// Response body:
//
//	byte    wireResponse
//	uint64  request ID (echoed)
//	uint16  error code
//	uint16  len(error message), message bytes
//	rest    payload
type wireType byte

const (
	wireRequest  wireType = 1
	wireResponse wireType = 2
)

// ErrorCode is the typed wire representation of a handler-level error.
// Codes exist so the sentinels the coordination protocol dispatches on
// keep their identity across TCP exactly as on the in-process bus.
type ErrorCode uint16

const (
	// CodeOK marks a successful response; the error message is empty.
	CodeOK ErrorCode = iota
	// CodeApp is a handler error with no sentinel identity: only its
	// message crosses the wire. It is terminal — retrying re-executes the
	// handler, which the transport must never do on the caller's behalf.
	CodeApp
	// CodeStaleIncarnation maps ErrStaleIncarnation (zombie fencing).
	CodeStaleIncarnation
	// CodeNoEndpoint maps ErrNoEndpoint.
	CodeNoEndpoint
	// CodeClosed maps ErrClosed.
	CodeClosed
	// CodeHandlerPanic maps ErrHandlerPanic: the handler panicked and the
	// server recovered, replied, and kept the connection serving.
	CodeHandlerPanic
)

// ErrHandlerPanic is the sentinel behind CodeHandlerPanic responses. A
// panicking handler is a server bug, not a transient transport fault, so
// it is terminal under CallRetry.
var ErrHandlerPanic = errors.New("transport: handler panicked")

// codeSentinels maps each typed code to the sentinel it preserves. CodeApp
// is deliberately absent: an application error has message-only identity.
var codeSentinels = map[ErrorCode]error{
	CodeStaleIncarnation: ErrStaleIncarnation,
	CodeNoEndpoint:       ErrNoEndpoint,
	CodeClosed:           ErrClosed,
	CodeHandlerPanic:     ErrHandlerPanic,
}

// codeOf classifies a handler error for the wire.
func codeOf(err error) ErrorCode {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, ErrStaleIncarnation):
		return CodeStaleIncarnation
	case errors.Is(err, ErrNoEndpoint):
		return CodeNoEndpoint
	case errors.Is(err, ErrClosed):
		return CodeClosed
	case errors.Is(err, ErrHandlerPanic):
		return CodeHandlerPanic
	default:
		return CodeApp
	}
}

// HandlerError is a remote handler's error reconstructed on the client
// side of the TCP path. Unwrap restores the sentinel named by Code, so
// errors.Is(err, transport.ErrStaleIncarnation) behaves identically on the
// bus and TCP paths. A HandlerError is terminal: the remote handler ran
// and deterministically failed, so CallRetry returns it immediately
// instead of re-executing the handler through the backoff budget.
type HandlerError struct {
	Code ErrorCode
	Msg  string
}

func (e *HandlerError) Error() string { return e.Msg }

// Unwrap exposes the sentinel behind typed codes (nil for CodeApp).
func (e *HandlerError) Unwrap() error { return codeSentinels[e.Code] }

// IsHandlerError reports whether err carries a remote handler's verdict —
// the terminal half of the retry contract.
func IsHandlerError(err error) bool {
	var he *HandlerError
	return errors.As(err, &he)
}

// Retryable reports whether a Call error may be retried against the same
// address. Transport-level failures (dial refused, I/O deadline, torn
// connection, frame/codec corruption) are retryable: the request may never
// have reached a healthy server, and a restart heals them. Handler-level
// errors and context cancellation are terminal: retrying would re-execute
// a handler that already ran to a deterministic verdict, or outlive the
// caller's interest. CallRetry and Client.CallRetry consult this, and
// callers layering their own retries should too.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// A local ErrClosed (the Client or Endpoint was deliberately shut
	// down) is terminal: retrying against a closed client can never
	// succeed. The remote form arrives as a HandlerError and is terminal
	// below anyway.
	if errors.Is(err, ErrClosed) {
		return false
	}
	return !IsHandlerError(err)
}

// appendUint16Str appends a uint16 length prefix and the string bytes.
func appendUint16Str(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// encodeRequest appends a request frame (header room included) to dst.
func encodeRequest(dst []byte, id uint64, kind string, payload []byte, tc telemetry.TraceContext) ([]byte, error) {
	if len(kind) > 0xffff || len(tc.Proc) > 0xffff {
		return dst, fmt.Errorf("transport: kind/proc too long (%d/%d bytes)", len(kind), len(tc.Proc))
	}
	dst = append(dst, make([]byte, frameHeaderLen)...)
	dst = append(dst, byte(wireRequest))
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = binary.BigEndian.AppendUint64(dst, tc.Trace)
	dst = binary.BigEndian.AppendUint64(dst, tc.Span)
	dst = appendUint16Str(dst, tc.Proc)
	dst = appendUint16Str(dst, kind)
	return append(dst, payload...), nil
}

// encodeResponse appends a response frame (header room included) to dst.
func encodeResponse(dst []byte, id uint64, code ErrorCode, errMsg string, payload []byte) []byte {
	if len(errMsg) > 0xffff {
		errMsg = errMsg[:0xffff]
	}
	dst = append(dst, make([]byte, frameHeaderLen)...)
	dst = append(dst, byte(wireResponse))
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = binary.BigEndian.AppendUint16(dst, uint16(code))
	dst = appendUint16Str(dst, errMsg)
	return append(dst, payload...)
}

var errBadFrame = errors.New("transport: malformed frame body")

// wireReader walks a frame body with bounds checking.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.err = errBadFrame
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *wireReader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.err = errBadFrame
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *wireReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.err = errBadFrame
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// str reads a uint16-prefixed string, copying out of the frame buffer (the
// buffer is pooled; strings escape it).
func (r *wireReader) str() string {
	n := int(r.u16())
	if r.err != nil || r.off+n > len(r.b) {
		r.err = errBadFrame
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}

// rest returns the remaining bytes, aliasing the frame buffer.
func (r *wireReader) rest() []byte {
	if r.err != nil {
		return nil
	}
	return r.b[r.off:]
}

// decodeRequest parses a request frame body. The returned payload aliases
// body and is only valid until the frame buffer is reused — the server
// hands it to the handler and recycles the buffer after the handler
// returns, matching the in-process bus's ownership contract.
func decodeRequest(body []byte) (id uint64, kind string, payload []byte, tc telemetry.TraceContext, err error) {
	r := &wireReader{b: body}
	if t := wireType(r.u8()); r.err == nil && t != wireRequest {
		return 0, "", nil, tc, fmt.Errorf("%w: type %d, want request", errBadFrame, t)
	}
	id = r.u64()
	tc.Trace = r.u64()
	tc.Span = r.u64()
	tc.Proc = r.str()
	kind = r.str()
	payload = r.rest()
	return id, kind, payload, tc, r.err
}

// decodeResponse parses a response frame body. The returned payload
// aliases body; callers that hand it beyond the frame buffer's lifetime
// must copy (the pooled client copies once into the caller's result).
func decodeResponse(body []byte) (id uint64, code ErrorCode, errMsg string, payload []byte, err error) {
	r := &wireReader{b: body}
	if t := wireType(r.u8()); r.err == nil && t != wireResponse {
		return 0, 0, "", nil, fmt.Errorf("%w: type %d, want response", errBadFrame, t)
	}
	id = r.u64()
	code = ErrorCode(r.u16())
	errMsg = r.str()
	payload = r.rest()
	return id, code, errMsg, payload, r.err
}

// responseError reconstructs the handler error a response frame carries.
func responseError(code ErrorCode, msg string) error {
	if code == CodeOK {
		return nil
	}
	return &HandlerError{Code: code, Msg: msg}
}
