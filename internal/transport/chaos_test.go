package transport

// Regression tests for the crash-recovery bugs the chaos harness exposed:
// the in-flight dedup race (a resend racing a slow handler returned the
// previous message's cached reply), the crash-restart blackhole (a
// re-created sender's fresh IDs were swallowed by the receiver's dedup
// high-water mark), and stale-incarnation fencing. All run on virtual time.

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestSlowHandlerResendGetsGenuineReply(t *testing.T) {
	// Latency 10ms, ack timeout 15ms, handler takes 50ms of virtual time:
	// the resend reaches the server at t=25ms while the first delivery's
	// handler is still running. Before the in-flight fix the duplicate
	// returned the previous (empty) cached reply, and the caller's Call
	// completed with a stale payload at t=35ms instead of the genuine
	// result at t=70ms.
	cfg := DefaultBusConfig()
	cfg.Latency = 10 * time.Millisecond
	cfg.AckTimeout = 15 * time.Millisecond
	cfg.MaxRetries = 20
	bus, _ := simBus(t, cfg)
	var calls atomic.Int64
	if _, err := bus.Endpoint("server", func(m Message) ([]byte, error) {
		calls.Add(1)
		if err := bus.Clock().Sleep(nil, 50*time.Millisecond); err != nil {
			return nil, err
		}
		return []byte("genuine:" + string(m.Payload)), nil
	}); err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	client, _ := bus.Endpoint("client", nil)
	out, err := client.Call("server", "work", []byte("x"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(out) != "genuine:x" {
		t.Fatalf("Call returned %q, want the genuine handler reply", out)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("handler ran %d times, want exactly once", got)
	}
}

func TestRestartedSenderNotBlackholed(t *testing.T) {
	// A sender that crashes and re-registers restarts its ID sequence at 1.
	// Without incarnation numbers the receiver's seen[from] stays at the old
	// high-water mark and every post-restart message is acked with an empty
	// payload, never reaching the handler.
	bus, _ := simBus(t, DefaultBusConfig())
	var handled atomic.Int64
	if _, err := bus.Endpoint("server", func(m Message) ([]byte, error) {
		handled.Add(1)
		return append([]byte("ok:"), m.Payload...), nil
	}); err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	client, _ := bus.Endpoint("client", nil)
	for i := 0; i < 5; i++ {
		if _, err := client.Call("server", "x", []byte{byte(i)}); err != nil {
			t.Fatalf("pre-restart Call %d: %v", i, err)
		}
	}
	// Crash and restart the client endpoint.
	bus.Remove("client")
	restarted, err := bus.Endpoint("client", nil)
	if err != nil {
		t.Fatalf("re-Endpoint: %v", err)
	}
	if restarted.Incarnation() != client.Incarnation()+1 {
		t.Fatalf("incarnation = %d after restart, want %d",
			restarted.Incarnation(), client.Incarnation()+1)
	}
	out, err := restarted.Call("server", "x", []byte("post"))
	if err != nil {
		t.Fatalf("post-restart Call: %v", err)
	}
	if string(out) != "ok:post" {
		t.Fatalf("post-restart reply = %q; restarted sender was blackholed", out)
	}
	if got := handled.Load(); got != 6 {
		t.Fatalf("handler ran %d times, want 6", got)
	}
}

func TestStaleIncarnationFenced(t *testing.T) {
	// Once the receiver has heard from incarnation 2, a message hand-crafted
	// from incarnation 1 (a zombie of the dead instance) is rejected.
	bus, _ := simBus(t, DefaultBusConfig())
	if _, err := bus.Endpoint("server", func(m Message) ([]byte, error) {
		return []byte("ok"), nil
	}); err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	first, _ := bus.Endpoint("client", nil)
	bus.Remove("client")
	second, err := bus.Endpoint("client", nil)
	if err != nil {
		t.Fatalf("re-Endpoint: %v", err)
	}
	if _, err := second.Call("server", "x", nil); err != nil {
		t.Fatalf("Call: %v", err)
	}
	dst, _ := bus.lookup("server")
	_, err = dst.handle(Message{ID: 99, Inc: first.Incarnation(), From: "client", To: "server", Kind: "x"})
	if !errors.Is(err, ErrStaleIncarnation) {
		t.Fatalf("zombie handle = %v, want ErrStaleIncarnation", err)
	}
}

func TestFaultHookPartition(t *testing.T) {
	// A hook that cuts client<->server makes calls time out; clearing it
	// restores delivery. The reply leg is consulted with From/To swapped,
	// so a one-directional rule still cuts the round trip.
	cfg := DefaultBusConfig()
	cfg.AckTimeout = 2 * time.Millisecond
	cfg.MaxRetries = 3
	bus, _ := simBus(t, cfg)
	if _, err := bus.Endpoint("server", func(m Message) ([]byte, error) {
		return m.Payload, nil
	}); err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	client, _ := bus.Endpoint("client", nil)
	bus.SetFaultHook(func(m Message) Fate {
		if (m.From == "client" && m.To == "server") || (m.From == "server" && m.To == "client") {
			return Fate{Drop: true}
		}
		return Fate{}
	})
	if _, err := client.Call("server", "x", nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("partitioned Call = %v, want ErrTimeout", err)
	}
	bus.SetFaultHook(nil)
	out, err := client.Call("server", "x", []byte("healed"))
	if err != nil || string(out) != "healed" {
		t.Fatalf("healed Call = %q, %v", out, err)
	}
}

func TestFaultHookStragglerLatency(t *testing.T) {
	// Injected per-leg delay shows up as virtual time: a 30ms straggler on
	// both legs costs >= 60ms of virtual time but microseconds of wall time.
	cfg := DefaultBusConfig()
	cfg.AckTimeout = 200 * time.Millisecond
	bus, sim := simBus(t, cfg)
	if _, err := bus.Endpoint("server", func(m Message) ([]byte, error) {
		return m.Payload, nil
	}); err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	client, _ := bus.Endpoint("client", nil)
	bus.SetFaultHook(func(m Message) Fate { return Fate{Delay: 30 * time.Millisecond} })
	if _, err := client.Call("server", "x", nil); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if sim.Elapsed() < 60*time.Millisecond {
		t.Fatalf("virtual time advanced only %v, want >= 60ms of injected latency", sim.Elapsed())
	}
}
