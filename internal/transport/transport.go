// Package transport provides the reliable messaging layer between the
// application master and workers — the stand-in for the paper's ZeroMQ
// sockets (Section V-D). Every message carries a unique ID plus the
// sender's endpoint incarnation; senders resend on ack timeout and
// receivers deduplicate by (incarnation, ID), so delivery is exactly-once
// at the handler as long as the peer eventually responds. The incarnation
// number survives endpoint removal: a crash-restarted sender starts a new
// incarnation instead of reusing low message IDs that the receiver's dedup
// state would silently swallow, and a zombie sender from a fenced
// incarnation is rejected with ErrStaleIncarnation. An in-process Bus with
// configurable drop rate, latency, and a pluggable fault hook (partition /
// drop-burst / straggler injection, see internal/chaos) lets tests inject
// failures; a separate TCP server/client pair (rpc.go) demonstrates the
// same protocol over a real network connection.
package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/telemetry"
)

// Errors returned by the transport layer.
var (
	ErrNoEndpoint = errors.New("transport: no such endpoint")
	ErrTimeout    = errors.New("transport: send timed out after all retries")
	ErrClosed     = errors.New("transport: endpoint closed")
	// ErrStaleIncarnation is replied to a sender whose endpoint incarnation
	// is older than one the receiver has already heard from — a zombie that
	// was replaced by a restarted instance must stop, not be silently acked.
	ErrStaleIncarnation = errors.New("transport: message from stale sender incarnation")
)

// Package-level defaults, referenced everywhere a config value is missing
// so the numbers exist in exactly one place.
const (
	// DefaultAckTimeout is how long a sender waits for an ack before
	// resending when BusConfig.AckTimeout is unset.
	DefaultAckTimeout = 20 * time.Millisecond
	// DefaultMaxRetries bounds resends when BusConfig.MaxRetries is unset.
	DefaultMaxRetries = 10
)

// Message is the unit of communication. Payloads are opaque bytes; Kind
// routes them at the receiver. Inc is the sender endpoint's incarnation:
// message IDs are only monotonic within one incarnation, so receivers key
// their dedup state on (From, Inc) and reset it when a restarted sender
// shows up with a higher incarnation.
type Message struct {
	ID      uint64 `json:"id"`
	Inc     uint64 `json:"inc"`
	From    string `json:"from"`
	To      string `json:"to"`
	Kind    string `json:"kind"`
	Payload []byte `json:"payload"`
	// Trace carries the sender's span identity so the receiver's handler
	// span joins the same causal tree. The zero value means "untraced" and
	// costs nothing to propagate.
	Trace telemetry.TraceContext `json:"trace"`
}

// Fate is a fault hook's verdict on one delivery leg.
type Fate struct {
	// Drop loses this leg; the sender's resend protocol recovers (or times
	// out) exactly as for a random drop.
	Drop bool
	// Delay adds straggler latency to this leg on top of the bus's
	// configured Latency.
	Delay time.Duration
}

// FaultHook inspects a delivery leg and decides its fate. It is consulted
// once for the request leg (msg as sent) and once for the reply leg (From
// and To swapped), so symmetric partitions need no special casing. Hooks
// run on delivery goroutines and must be safe for concurrent use.
type FaultHook func(m Message) Fate

// Handler processes an inbound message and optionally returns a reply
// payload (delivered to the sender's Call, if any).
type Handler func(Message) ([]byte, error)

// BusConfig controls the simulated fault characteristics of the bus.
type BusConfig struct {
	// DropRate is the probability a given delivery attempt is lost.
	DropRate float64
	// Latency delays every delivery.
	Latency time.Duration
	// AckTimeout is how long a sender waits for an ack before resending.
	AckTimeout time.Duration
	// MaxRetries bounds resends before Send fails with ErrTimeout.
	MaxRetries int
	// Seed makes drop decisions deterministic.
	Seed int64
	// Clock is the time source for ack timeouts and latency injection.
	// Nil selects the wall clock; tests inject a clock.Sim so the whole
	// resend protocol runs on instant virtual time.
	Clock clock.Clock
	// Tracer records a span per Call with resend events; nil disables
	// tracing at zero cost.
	Tracer telemetry.Tracer
	// Metrics receives the bus counters (calls, resends, drops, errors)
	// and the call-latency histogram; nil disables them at zero cost.
	Metrics *telemetry.Registry
}

// DefaultBusConfig returns a lossless, low-latency configuration.
func DefaultBusConfig() BusConfig {
	return BusConfig{
		AckTimeout: DefaultAckTimeout,
		MaxRetries: DefaultMaxRetries,
	}
}

// Bus is an in-process message fabric connecting named endpoints.
type Bus struct {
	cfg BusConfig
	clk clock.Clock
	tr  telemetry.Tracer

	// Instruments are resolved once at construction; all are nil-safe, so
	// an uninstrumented bus pays nothing on the call path.
	mCalls      *telemetry.Counter
	mResends    *telemetry.Counter
	mDrops      *telemetry.Counter
	mCallErrors *telemetry.Counter
	mLatency    *telemetry.Histogram

	// ctx is the bus lifecycle: Close cancels it, aborting in-flight
	// latency sleeps and pending calls. wg tracks delivery goroutines so
	// Close can prove they all exited.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[string]*Endpoint
	// incarnations counts endpoint creations per name. Unlike the endpoint
	// map it survives Remove, so a re-created endpoint (a restarted worker
	// or AM) sends under a strictly higher incarnation.
	incarnations map[string]uint64
	hook         FaultHook
}

// NewBus constructs a bus. Invalid config values are normalized.
func NewBus(cfg BusConfig) *Bus {
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = DefaultAckTimeout
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.DropRate < 0 {
		cfg.DropRate = 0
	}
	if cfg.DropRate > 0.95 {
		cfg.DropRate = 0.95
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Bus{
		cfg:          cfg,
		clk:          cfg.Clock,
		tr:           telemetry.OrNop(cfg.Tracer),
		mCalls:       cfg.Metrics.Counter("transport_calls_total"),
		mResends:     cfg.Metrics.Counter("transport_resends_total"),
		mDrops:       cfg.Metrics.Counter("transport_drops_total"),
		mCallErrors:  cfg.Metrics.Counter("transport_call_errors_total"),
		mLatency:     cfg.Metrics.Histogram("transport_call_seconds"),
		ctx:          ctx,
		cancel:       cancel,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		endpoints:    make(map[string]*Endpoint),
		incarnations: make(map[string]uint64),
	}
}

// SetFaultHook installs (or, with nil, clears) the hook consulted on every
// delivery leg. Chaos harnesses use it to inject partitions, drop bursts
// and straggler latency without reconfiguring the bus.
func (b *Bus) SetFaultHook(h FaultHook) {
	b.mu.Lock()
	b.hook = h
	b.mu.Unlock()
}

// fate consults the fault hook for one delivery leg; a nil hook lets
// everything through untouched.
func (b *Bus) fate(m Message) Fate {
	b.mu.Lock()
	h := b.hook
	b.mu.Unlock()
	if h == nil {
		return Fate{}
	}
	f := h(m)
	if f.Drop {
		b.mDrops.Inc()
	}
	return f
}

// Clock returns the bus's time source.
func (b *Bus) Clock() clock.Clock { return b.clk }

// Close shuts the bus down: every endpoint is closed, in-flight deliveries
// are aborted, and Close blocks until all delivery goroutines have exited
// — after Close returns the bus owns no goroutines. Closing twice is safe.
func (b *Bus) Close() {
	b.cancel()
	b.mu.Lock()
	eps := make([]*Endpoint, 0, len(b.endpoints))
	for _, ep := range b.endpoints {
		eps = append(eps, ep)
	}
	b.endpoints = make(map[string]*Endpoint)
	b.mu.Unlock()
	for _, ep := range eps {
		ep.close()
	}
	b.wg.Wait()
}

// Endpoint creates (or returns) the endpoint with the given name and sets
// its handler. The handler runs on the delivery goroutine.
func (b *Bus) Endpoint(name string, h Handler) (*Endpoint, error) {
	if name == "" {
		return nil, errors.New("transport: empty endpoint name")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ep, ok := b.endpoints[name]; ok {
		ep.mu.Lock()
		ep.handler = h
		ep.mu.Unlock()
		return ep, nil
	}
	b.incarnations[name]++
	ep := &Endpoint{
		name:      name,
		bus:       b,
		inc:       b.incarnations[name],
		handler:   h,
		seen:      make(map[string]uint64),
		peerInc:   make(map[string]uint64),
		lastReply: make(map[string]reply),
		inflight:  make(map[string]*inflightCall),
		replies:   make(map[uint64]chan reply),
		closed:    make(chan struct{}),
	}
	b.endpoints[name] = ep
	return ep, nil
}

// Remove deletes an endpoint from the bus (worker shutdown / migration).
func (b *Bus) Remove(name string) {
	b.mu.Lock()
	ep, ok := b.endpoints[name]
	if ok {
		delete(b.endpoints, name)
	}
	b.mu.Unlock()
	if ok {
		ep.close()
	}
}

// shouldDrop decides message loss under the bus lock.
func (b *Bus) shouldDrop() bool {
	if b.cfg.DropRate == 0 {
		return false
	}
	b.mu.Lock()
	drop := b.rng.Float64() < b.cfg.DropRate
	b.mu.Unlock()
	if drop {
		b.mDrops.Inc()
	}
	return drop
}

func (b *Bus) lookup(name string) (*Endpoint, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ep, ok := b.endpoints[name]
	return ep, ok
}

type reply struct {
	payload []byte
	err     error
}

// inflightCall tracks a message whose handler is still executing, so a
// duplicate delivery (a resend racing the slow handler) waits for the
// genuine reply instead of returning the previous message's cached one.
type inflightCall struct {
	id   uint64
	inc  uint64
	done chan struct{}
	r    reply // valid once done is closed
}

// Endpoint is a named participant on a bus.
type Endpoint struct {
	name string
	bus  *Bus
	// inc is this endpoint's incarnation, stamped on every message it
	// sends; assigned once at creation from the bus's per-name counter.
	inc uint64

	mu      sync.Mutex
	handler Handler
	nextID  uint64
	// seen[from] is the highest processed message ID from that sender used
	// for dedup; senders allocate IDs monotonically within an incarnation.
	seen map[string]uint64
	// peerInc[from] is the highest sender incarnation heard from; a higher
	// one resets the dedup state, a lower one is a fenced zombie.
	peerInc map[string]uint64
	// lastReply[from] caches the reply to the highest processed message so
	// that a resend (after a dropped reply) still returns the real result.
	lastReply map[string]reply
	// inflight[from] is the latest message from that sender whose handler
	// has not returned yet.
	inflight map[string]*inflightCall
	replies  map[uint64]chan reply

	closeOnce sync.Once
	closed    chan struct{}
}

// Name returns the endpoint's bus name.
func (e *Endpoint) Name() string { return e.name }

// Incarnation returns the endpoint's incarnation number: 1 for the first
// endpoint created under a name, and one higher for each re-creation after
// a Remove (a restarted process).
func (e *Endpoint) Incarnation() uint64 { return e.inc }

func (e *Endpoint) close() {
	e.closeOnce.Do(func() { close(e.closed) })
}

// allocID returns the next message ID for this sender.
func (e *Endpoint) allocID() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextID++
	return e.nextID
}

// Call sends a message and waits for the receiver's reply, resending on
// timeout and deduplicating at the receiver. It is the reliable RPC used for
// AM<->worker coordination.
func (e *Endpoint) Call(to, kind string, payload []byte) ([]byte, error) {
	return e.CallCtx(context.Background(), to, kind, payload)
}

// CallCtx is Call under a caller-supplied context: cancellation aborts the
// resend loop immediately with ctx.Err(), independent of the ack timeout.
func (e *Endpoint) CallCtx(ctx context.Context, to, kind string, payload []byte) (_ []byte, err error) {
	select {
	case <-e.closed:
		return nil, ErrClosed
	case <-e.bus.ctx.Done():
		return nil, ErrClosed
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b := e.bus
	b.mCalls.Inc()
	// A span already in ctx makes this call a child in the caller's causal
	// tree; otherwise the call roots a fresh trace on the bus tracer.
	var span *telemetry.Span
	if parent := telemetry.SpanFromContext(ctx); parent != nil {
		span = parent.Child("transport.call")
	} else {
		span = b.tr.StartSpan("transport.call")
		span.SetProc(e.name)
	}
	span.Annotate("from", e.name)
	span.Annotate("to", to)
	span.Annotate("kind", kind)
	callStart := b.clk.Now()
	defer func() {
		b.mLatency.Observe(b.clk.Since(callStart).Seconds())
		if err != nil {
			b.mCallErrors.Inc()
			span.Annotate("error", err.Error())
		}
		span.End()
	}()
	msg := Message{
		ID:      e.allocID(),
		Inc:     e.inc,
		From:    e.name,
		To:      to,
		Kind:    kind,
		Payload: payload,
		Trace:   span.Context(),
	}
	ch := make(chan reply, 1)
	e.mu.Lock()
	e.replies[msg.ID] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.replies, msg.ID)
		e.mu.Unlock()
	}()

	timer := e.bus.clk.NewTimer(e.bus.cfg.AckTimeout)
	defer timer.Stop()
	for attempt := 0; attempt < e.bus.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			// Only reached after draining the previous expiry, so Reset is
			// safe under the time.Timer contract.
			timer.Reset(e.bus.cfg.AckTimeout)
		}
		e.deliver(msg)
		select {
		case r := <-ch:
			return r.payload, r.err
		case <-timer.C():
			// resend (timeout: either the message or its reply was dropped)
			b.mResends.Inc()
			span.Event("resend")
		case <-e.closed:
			return nil, ErrClosed
		case <-e.bus.ctx.Done():
			return nil, ErrClosed
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("%w (to=%s kind=%s id=%d)", ErrTimeout, to, kind, msg.ID)
}

// deliver attempts one delivery of msg (possibly dropped by the configured
// rate or the fault hook). The receiver's handler runs on a fresh
// bus-tracked goroutine; its reply is routed back to the pending Call, also
// subject to drops and fault injection.
func (e *Endpoint) deliver(msg Message) {
	if e.bus.shouldDrop() {
		return
	}
	fate := e.bus.fate(msg)
	if fate.Drop {
		return
	}
	dst, ok := e.bus.lookup(msg.To)
	if !ok {
		// Unknown destination: reply with an error so Call fails fast
		// instead of burning retries.
		e.routeReply(msg.ID, reply{err: fmt.Errorf("%w: %s", ErrNoEndpoint, msg.To)})
		return
	}
	e.bus.wg.Add(1)
	go func() {
		defer e.bus.wg.Done()
		if d := e.bus.cfg.Latency + fate.Delay; d > 0 {
			if e.bus.clk.Sleep(e.bus.ctx, d) != nil {
				return // bus closed mid-flight
			}
		}
		payload, err := dst.handle(msg)
		if e.bus.shouldDrop() {
			return // the reply got lost; sender will resend
		}
		back := msg
		back.From, back.To = msg.To, msg.From
		backFate := e.bus.fate(back)
		if backFate.Drop {
			return
		}
		if d := e.bus.cfg.Latency + backFate.Delay; d > 0 {
			if e.bus.clk.Sleep(e.bus.ctx, d) != nil {
				return
			}
		}
		e.routeReply(msg.ID, reply{payload: payload, err: err})
	}()
}

func (e *Endpoint) routeReply(id uint64, r reply) {
	e.mu.Lock()
	ch, ok := e.replies[id]
	e.mu.Unlock()
	if ok {
		select {
		case ch <- r:
		default: // a retry already delivered a reply
		}
	}
}

// handle runs the endpoint handler exactly once per (incarnation, ID):
// duplicate deliveries of the most recent message either wait for the
// in-flight handler's genuine reply (a resend racing a slow handler) or
// return the cached reply (a resend after a dropped reply); older
// duplicates are acknowledged with an empty payload. A message from a
// higher sender incarnation resets the sender's dedup state — a restarted
// sender restarts its ID sequence and must not be blackholed by the dead
// incarnation's high-water mark — while a lower incarnation is a fenced
// zombie and gets ErrStaleIncarnation. Handlers therefore see each logical
// message once.
func (e *Endpoint) handle(msg Message) ([]byte, error) {
	e.mu.Lock()
	select {
	case <-e.closed:
		e.mu.Unlock()
		return nil, ErrClosed
	default:
	}
	cur := e.peerInc[msg.From]
	if msg.Inc < cur {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %s sent incarnation %d, current is %d",
			ErrStaleIncarnation, msg.From, msg.Inc, cur)
	}
	if msg.Inc > cur {
		e.peerInc[msg.From] = msg.Inc
		delete(e.seen, msg.From)
		delete(e.lastReply, msg.From)
		// An in-flight handler from the dead incarnation may still finish;
		// its completion guard below sees the incarnation moved on and
		// skips the cache.
		delete(e.inflight, msg.From)
	}
	last := e.seen[msg.From]
	if msg.ID <= last {
		if msg.ID == last {
			if inf := e.inflight[msg.From]; inf != nil && inf.id == msg.ID && inf.inc == msg.Inc {
				e.mu.Unlock()
				select {
				case <-inf.done:
					return inf.r.payload, inf.r.err
				case <-e.closed:
					return nil, ErrClosed
				}
			}
			cached := e.lastReply[msg.From]
			e.mu.Unlock()
			return cached.payload, cached.err
		}
		e.mu.Unlock()
		return nil, nil
	}
	e.seen[msg.From] = msg.ID
	inf := &inflightCall{id: msg.ID, inc: msg.Inc, done: make(chan struct{})}
	e.inflight[msg.From] = inf
	h := e.handler
	e.mu.Unlock()
	var payload []byte
	var err error
	if h != nil {
		// The handler span is a remote child of the sender's call span. Its
		// context replaces msg.Trace only when a span was actually opened,
		// so an untraced bus still forwards the sender's causality to
		// handlers that trace on their own recorder.
		hspan := telemetry.StartRemote(e.bus.tr, "transport.handle", msg.Trace)
		if hspan != nil {
			hspan.SetProc(e.name)
			hspan.Annotate("from", msg.From)
			hspan.Annotate("kind", msg.Kind)
			msg.Trace = hspan.Context()
		}
		payload, err = h(msg)
		if err != nil {
			hspan.Annotate("error", err.Error())
		}
		hspan.End()
	}
	e.mu.Lock()
	inf.r = reply{payload: payload, err: err}
	close(inf.done)
	if e.inflight[msg.From] == inf {
		delete(e.inflight, msg.From)
	}
	if e.peerInc[msg.From] == msg.Inc && e.seen[msg.From] == msg.ID {
		e.lastReply[msg.From] = reply{payload: payload, err: err}
	}
	e.mu.Unlock()
	return payload, err
}
