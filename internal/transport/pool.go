package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/telemetry"
)

// Client is the pooled, multiplexed TCP call path: a fixed set of
// long-lived connections to one server, each carrying many concurrent
// requests matched to responses by per-connection request IDs. This is the
// production data plane — Call's dial-per-connect handshake disappears
// from the steady state, and the benchmark (elan-bench -transport) holds
// it to ≥5× dial-per-call throughput at 256 concurrent callers.
//
// Restart transparency, the property the dial-per-call path got for free,
// is preserved by pool invalidation: when a connection dies (server
// restart, network fault), its reader fails every in-flight call on it
// with a retryable transport error and removes it from the pool, and the
// next call on that slot dials fresh. Client.CallRetry therefore rides out
// a server restart exactly as the package-level CallRetry does.
type Client struct {
	addr        string
	timeout     time.Duration
	maxInFlight int
	slots       []*connSlot
	next        atomic.Uint64

	mu       sync.Mutex
	closed   bool
	closedCh chan struct{}
	wg       sync.WaitGroup // connection reader goroutines

	mCalls        *telemetry.Counter
	mDials        *telemetry.Counter
	mConnErrors   *telemetry.Counter
	mBackpressure *telemetry.Counter
}

// DefaultClientConns is the pool size of an unconfigured Client.
const DefaultClientConns = 4

// ErrCallTimeout reports a pooled call that saw no response within its
// timeout. It is retryable: the connection is left alone (a slow handler
// is not a dead server), and the late response — if it ever arrives — is
// discarded by the demultiplexer.
var ErrCallTimeout = errors.New("transport: call timed out")

// ErrBackpressure reports a call refused because its pooled connection
// already carries ClientConfig.MaxInFlight outstanding requests. The
// connection is healthy — the caller is simply outrunning the server — so
// the error is retryable and CallRetry converts it into clock-driven
// backoff instead of letting an unbounded pending table absorb the flood.
var ErrBackpressure = errors.New("transport: too many in-flight calls on connection")

// ClientConfig configures a Client. The zero value selects the defaults.
type ClientConfig struct {
	// Conns is the number of pooled connections (DefaultClientConns when
	// unset). Connections are dialed lazily and selected round-robin.
	Conns int
	// Timeout bounds each call when the Call's own timeout is unset.
	Timeout time.Duration
	// MaxInFlight caps the outstanding requests per pooled connection;
	// a call arriving at a full connection fails fast with the retryable
	// ErrBackpressure instead of growing the pending table without bound.
	// 0 (the default) means unlimited.
	MaxInFlight int
	// Metrics receives transport_client_calls_total,
	// transport_client_dials_total, transport_client_conn_errors_total and
	// transport_client_backpressure_total; nil disables them at zero cost.
	Metrics *telemetry.Registry
}

// connSlot is one pool position. Its mutex serializes dialing, so a dead
// connection is re-established exactly once however many callers hit the
// slot; calls on other slots proceed undisturbed.
type connSlot struct {
	mu sync.Mutex
	cc *clientConn
}

// clientConn is one pooled connection: a write mutex serializing frame
// writes, a pending table keyed by request ID, and a reader goroutine
// (Client.readLoop) demultiplexing responses.
type clientConn struct {
	conn net.Conn
	wmu  sync.Mutex

	maxInFlight int // immutable after dial; 0 = unlimited

	mu        sync.Mutex
	pending   map[uint64]chan callResult
	nextID    uint64
	broken    bool
	brokenErr error
}

type callResult struct {
	payload []byte
	err     error
}

// NewClient creates a pooled client for the server at addr. Connections
// are dialed on first use, so creating a client is free and never fails.
func NewClient(addr string, cfg ClientConfig) *Client {
	if cfg.Conns <= 0 {
		cfg.Conns = DefaultClientConns
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultCallTimeout
	}
	slots := make([]*connSlot, cfg.Conns)
	for i := range slots {
		slots[i] = &connSlot{}
	}
	return &Client{
		addr:          addr,
		timeout:       cfg.Timeout,
		maxInFlight:   cfg.MaxInFlight,
		slots:         slots,
		closedCh:      make(chan struct{}),
		mCalls:        cfg.Metrics.Counter("transport_client_calls_total"),
		mDials:        cfg.Metrics.Counter("transport_client_dials_total"),
		mConnErrors:   cfg.Metrics.Counter("transport_client_conn_errors_total"),
		mBackpressure: cfg.Metrics.Counter("transport_client_backpressure_total"),
	}
}

// Addr returns the server address the client pools connections to.
func (c *Client) Addr() string { return c.addr }

// Close tears down every pooled connection, resolves all in-flight calls
// with ErrClosed, and waits for the reader goroutines to exit — after
// Close returns the client owns no goroutines. Closing twice is safe.
func (c *Client) Close() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.closedCh)
	}
	c.mu.Unlock()
	for _, slot := range c.slots {
		slot.mu.Lock()
		cc := slot.cc
		slot.cc = nil
		slot.mu.Unlock()
		if cc != nil {
			cc.fail(ErrClosed)
		}
	}
	c.wg.Wait()
}

// grab returns a live connection for slot, dialing one if the slot is
// empty or its connection broke. Dialing happens under the slot mutex so
// concurrent callers share the dial instead of racing their own.
func (c *Client) grab(ctx context.Context, slot *connSlot, timeout time.Duration) (*clientConn, error) {
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if cc := slot.cc; cc != nil && !cc.isBroken() {
		return cc, nil
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	dialer := net.Dialer{Timeout: timeout}
	conn, err := dialer.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", c.addr, err)
	}
	cc := &clientConn{conn: conn, pending: make(map[uint64]chan callResult), maxInFlight: c.maxInFlight}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = conn.Close()
		return nil, ErrClosed
	}
	c.wg.Add(1)
	c.mu.Unlock()
	c.mDials.Inc()
	go c.readLoop(slot, cc)
	slot.cc = cc
	return cc, nil
}

// readLoop demultiplexes response frames to pending calls until the
// connection dies, then fails every in-flight call with a retryable
// transport error and invalidates the slot.
func (c *Client) readLoop(slot *connSlot, cc *clientConn) {
	defer c.wg.Done()
	bufp := getFrameBuf()
	defer putFrameBuf(bufp)
	for {
		body, err := readFrame(cc.conn, bufp)
		if err != nil {
			c.connLost(slot, cc, fmt.Errorf("transport: connection lost: %w", err))
			return
		}
		id, code, errMsg, payload, err := decodeResponse(body)
		if err != nil {
			c.connLost(slot, cc, fmt.Errorf("transport: connection corrupt: %w", err))
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[id]
		if ok {
			delete(cc.pending, id)
		}
		cc.mu.Unlock()
		if !ok {
			continue // the caller timed out or was cancelled; drop the late reply
		}
		res := callResult{err: responseError(code, errMsg)}
		if res.err == nil {
			// The payload aliases the pooled frame buffer; copy once into
			// storage the caller owns indefinitely.
			res.payload = make([]byte, len(payload))
			copy(res.payload, payload)
		}
		ch <- res // cap-1 buffered and this is the only sender after the delete
	}
}

// connLost marks the connection broken, resolves its in-flight calls with
// err, and empties the slot so the next call dials fresh.
func (c *Client) connLost(slot *connSlot, cc *clientConn, err error) {
	c.mConnErrors.Inc()
	cc.fail(err)
	slot.mu.Lock()
	if slot.cc == cc {
		slot.cc = nil
	}
	slot.mu.Unlock()
}

func (cc *clientConn) isBroken() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.broken
}

// fail marks the connection broken with err, closes it, and resolves every
// pending call with err. Safe to call more than once; the first error
// wins.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if !cc.broken {
		cc.broken = true
		cc.brokenErr = err
	}
	err = cc.brokenErr
	drained := make([]chan callResult, 0, len(cc.pending))
	for id, ch := range cc.pending {
		delete(cc.pending, id)
		drained = append(drained, ch)
	}
	cc.mu.Unlock()
	_ = cc.conn.Close()
	for _, ch := range drained {
		ch <- callResult{err: err}
	}
}

// register allocates a request ID and a result channel on the connection,
// refusing with ErrBackpressure when the in-flight window is full.
func (cc *clientConn) register() (uint64, chan callResult, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.broken {
		return 0, nil, cc.brokenErr
	}
	if cc.maxInFlight > 0 && len(cc.pending) >= cc.maxInFlight {
		return 0, nil, fmt.Errorf("%w (window %d)", ErrBackpressure, cc.maxInFlight)
	}
	cc.nextID++
	ch := make(chan callResult, 1)
	cc.pending[cc.nextID] = ch
	return cc.nextID, ch, nil
}

// unregister abandons a pending call (timeout or cancellation).
func (cc *clientConn) unregister(id uint64) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}

// Call performs one multiplexed request/reply round trip on a pooled
// connection. The timeout (the client default when <= 0) bounds the whole
// call; cancelling ctx aborts it immediately. Errors follow the package
// retry contract: transport-level failures (dial, lost connection,
// timeout) are Retryable, handler-level errors arrive as *HandlerError
// with sentinel identity intact and are terminal.
func (c *Client) Call(ctx context.Context, kind string, payload []byte, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		timeout = c.timeout
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case <-c.closedCh:
		return nil, ErrClosed
	default:
	}
	c.mCalls.Inc()
	slot := c.slots[c.next.Add(1)%uint64(len(c.slots))]
	cc, err := c.grab(ctx, slot, timeout)
	if err != nil {
		return nil, err
	}
	id, ch, err := cc.register()
	if err != nil {
		if errors.Is(err, ErrBackpressure) {
			c.mBackpressure.Inc()
		}
		return nil, err
	}
	reqp := getFrameBuf()
	frame, err := encodeRequest((*reqp)[:0], id, kind, payload,
		telemetry.SpanFromContext(ctx).Context())
	if err != nil {
		putFrameBuf(reqp)
		cc.unregister(id)
		return nil, err
	}
	*reqp = frame
	// Bound the write too: a peer that stops draining must not wedge the
	// caller past its timeout. The deadline is per-connection, so
	// concurrent callers refresh it to roughly the latest deadline — safe,
	// because every writer's own timer still bounds its wait below.
	_ = cc.conn.SetWriteDeadline(clock.Wall{}.Now().Add(timeout))
	err = writeFrame(cc.conn, &cc.wmu, frame)
	putFrameBuf(reqp)
	if err != nil {
		cc.unregister(id)
		c.connLost(slot, cc, err)
		return nil, err
	}
	timer := clock.Wall{}.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.payload, res.err
	case <-timer.C():
		cc.unregister(id)
		return nil, fmt.Errorf("%w: kind %s after %v", ErrCallTimeout, kind, timeout)
	case <-ctx.Done():
		cc.unregister(id)
		return nil, ctx.Err()
	case <-c.closedCh:
		cc.unregister(id)
		return nil, ErrClosed
	}
}

// CallRetry is Client.Call under the package retry contract: transport
// errors (including a pool invalidated by a server restart) burn backoff
// attempts and redial, handler errors return immediately.
func (c *Client) CallRetry(ctx context.Context, kind string, payload []byte, timeout time.Duration, policy RetryPolicy) ([]byte, error) {
	return callRetry(ctx, policy, func() ([]byte, error) {
		return c.Call(ctx, kind, payload, timeout)
	})
}
