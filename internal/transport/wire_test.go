package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/telemetry"
)

func TestWireRequestRoundTrip(t *testing.T) {
	tc := telemetry.TraceContext{Trace: 7, Span: 9, Proc: "am"}
	frame, err := encodeRequest(nil, 42, "adjust.request", []byte("payload-bytes"), tc)
	if err != nil {
		t.Fatalf("encodeRequest: %v", err)
	}
	// writeFrame stamps the length prefix; emulate it to decode the body.
	binary.BigEndian.PutUint32(frame[:frameHeaderLen], uint32(len(frame)-frameHeaderLen))
	id, kind, payload, gotTC, err := decodeRequest(frame[frameHeaderLen:])
	if err != nil {
		t.Fatalf("decodeRequest: %v", err)
	}
	if id != 42 || kind != "adjust.request" || string(payload) != "payload-bytes" || gotTC != tc {
		t.Fatalf("round trip = (%d, %q, %q, %+v)", id, kind, payload, gotTC)
	}
}

func TestWireResponseRoundTrip(t *testing.T) {
	frame := encodeResponse(nil, 99, CodeStaleIncarnation, "zombie", []byte("data"))
	id, code, msg, payload, err := decodeResponse(frame[frameHeaderLen:])
	if err != nil {
		t.Fatalf("decodeResponse: %v", err)
	}
	if id != 99 || code != CodeStaleIncarnation || msg != "zombie" || string(payload) != "data" {
		t.Fatalf("round trip = (%d, %d, %q, %q)", id, code, msg, payload)
	}
}

func TestWireTruncatedBodiesRejected(t *testing.T) {
	frame, err := encodeRequest(nil, 1, "k", []byte("p"), telemetry.TraceContext{})
	if err != nil {
		t.Fatalf("encodeRequest: %v", err)
	}
	body := frame[frameHeaderLen:]
	// Every strict prefix that cuts a fixed-width field or a string length
	// must fail loudly, never panic or mis-parse.
	for cut := 0; cut < len(body)-1; cut++ {
		if _, _, _, _, err := decodeRequest(body[:cut]); err == nil && cut < len(body)-1 {
			t.Fatalf("decodeRequest accepted %d/%d-byte prefix", cut, len(body))
		}
	}
	if _, _, _, _, err := decodeResponse(body); err == nil {
		t.Fatal("decodeResponse accepted a request body")
	}
}

func TestReadFrameRejectsOversizeAndReusesBuffer(t *testing.T) {
	var huge [frameHeaderLen]byte
	binary.BigEndian.PutUint32(huge[:], MaxFrameBytes+1)
	bufp := getFrameBuf()
	defer putFrameBuf(bufp)
	if _, err := readFrame(bytes.NewReader(huge[:]), bufp); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize frame error = %v, want ErrFrameTooLarge", err)
	}
	// Two sequential frames through one buffer: the second read must reuse
	// the first's storage when it fits.
	var stream bytes.Buffer
	for _, body := range []string{"first-frame-body", "second"} {
		var hdr [frameHeaderLen]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		stream.Write(hdr[:])
		stream.WriteString(body)
	}
	b1, err := readFrame(&stream, bufp)
	if err != nil {
		t.Fatalf("first readFrame: %v", err)
	}
	if string(b1) != "first-frame-body" {
		t.Fatalf("first body = %q", b1)
	}
	cap1 := cap(*bufp)
	b2, err := readFrame(&stream, bufp)
	if err != nil {
		t.Fatalf("second readFrame: %v", err)
	}
	if string(b2) != "second" || cap(*bufp) != cap1 {
		t.Fatalf("second body = %q, cap %d → %d (want reuse)", b2, cap1, cap(*bufp))
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"dial", fmt.Errorf("transport: dial 1.2.3.4: %w", &net.OpError{Op: "dial", Err: errors.New("refused")}), true},
		{"conn lost", fmt.Errorf("transport: connection lost: %w", errors.New("EOF")), true},
		{"call timeout", fmt.Errorf("%w: kind x", ErrCallTimeout), true},
		{"frame too large", ErrFrameTooLarge, true},
		{"ctx cancel", context.Canceled, false},
		{"ctx deadline", context.DeadlineExceeded, false},
		{"client closed", ErrClosed, false},
		{"handler app error", &HandlerError{Code: CodeApp, Msg: "boom"}, false},
		{"handler stale", &HandlerError{Code: CodeStaleIncarnation, Msg: "zombie"}, false},
		{"handler panic", &HandlerError{Code: CodeHandlerPanic, Msg: "panicked"}, false},
		{"wrapped handler error", fmt.Errorf("coord: %w", &HandlerError{Code: CodeApp, Msg: "x"}), false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// errorIdentityTable is the contract both delivery paths must satisfy: a
// handler returning the given error must yield a caller-side error for
// which errors.Is(err, sentinel) holds and the message survives.
var errorIdentityTable = []struct {
	name     string
	handler  error
	sentinel error
}{
	{"stale incarnation", fmt.Errorf("%w: w3 sent incarnation 1, current is 2", ErrStaleIncarnation), ErrStaleIncarnation},
	{"no endpoint", fmt.Errorf("%w: w9", ErrNoEndpoint), ErrNoEndpoint},
	{"closed", fmt.Errorf("%w: during drain", ErrClosed), ErrClosed},
	{"app error", errors.New("coord: worker w1 not in pending state"), nil},
}

// callPath runs one request against a handler and returns the caller-side
// error, over a specific delivery path.
type callPath func(t *testing.T, h Handler) error

func busPath(t *testing.T, h Handler) error {
	t.Helper()
	bus, _ := simBus(t, DefaultBusConfig())
	if _, err := bus.Endpoint("server", h); err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	client, err := bus.Endpoint("client", nil)
	if err != nil {
		t.Fatalf("Endpoint: %v", err)
	}
	_, callErr := client.Call("server", "probe", nil)
	return callErr
}

func tcpOneShotPath(t *testing.T, h Handler) error {
	t.Helper()
	srv := NewServer(h)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(srv.Close)
	_, callErr := Call(context.Background(), addr, "probe", nil, time.Second)
	return callErr
}

func tcpPooledPath(t *testing.T, h Handler) error {
	t.Helper()
	srv := NewServer(h)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(srv.Close)
	client := NewClient(addr, ClientConfig{})
	t.Cleanup(client.Close)
	_, callErr := client.Call(context.Background(), "probe", nil, time.Second)
	return callErr
}

// TestErrorIdentityAcrossPaths is the regression for the error-identity
// bug: the gob path collapsed server errors into errors.New(resp.Err), so
// errors.Is(err, ErrStaleIncarnation) held on the bus but silently failed
// over TCP. All three paths now run the same table.
func TestErrorIdentityAcrossPaths(t *testing.T) {
	guardGoroutines(t)
	paths := []struct {
		name string
		run  callPath
	}{
		{"bus", busPath},
		{"tcp-oneshot", tcpOneShotPath},
		{"tcp-pooled", tcpPooledPath},
	}
	for _, p := range paths {
		for _, c := range errorIdentityTable {
			t.Run(p.name+"/"+c.name, func(t *testing.T) {
				handlerErr := c.handler
				err := p.run(t, func(Message) ([]byte, error) { return nil, handlerErr })
				if err == nil {
					t.Fatal("handler error did not propagate")
				}
				if c.sentinel != nil && !errors.Is(err, c.sentinel) {
					t.Fatalf("errors.Is(%v, %v) = false", err, c.sentinel)
				}
				// Non-sentinel identity must not be invented: an app error
				// matches no transport sentinel.
				if c.sentinel == nil {
					for _, s := range []error{ErrStaleIncarnation, ErrNoEndpoint, ErrClosed, ErrHandlerPanic} {
						if errors.Is(err, s) {
							t.Fatalf("app error %v gained sentinel identity %v", err, s)
						}
					}
				}
				if want := handlerErr.Error(); !errors.Is(err, c.handler) && err.Error() != want {
					t.Fatalf("message %q, want %q", err.Error(), want)
				}
			})
		}
	}
}

// TestWireEncodeConcurrent shakes out frame-buffer pool aliasing: many
// goroutines encode and decode distinct requests through the shared pool.
func TestWireEncodeConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				want := fmt.Sprintf("g%d-i%d", g, i)
				bufp := getFrameBuf()
				frame, err := encodeRequest((*bufp)[:0], uint64(i), "k", []byte(want), telemetry.TraceContext{})
				if err != nil {
					t.Error(err)
					putFrameBuf(bufp)
					return
				}
				*bufp = frame
				_, _, payload, _, err := decodeRequest(frame[frameHeaderLen:])
				if err != nil || string(payload) != want {
					t.Errorf("decode = %q, %v, want %q", payload, err, want)
				}
				putFrameBuf(bufp)
			}
		}()
	}
	wg.Wait()
}
