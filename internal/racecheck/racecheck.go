// Package racecheck exposes whether the race detector is compiled in, so
// testing.AllocsPerRun zero-allocation guards can skip under -race (the
// detector's instrumentation perturbs allocation counts; the dedicated CI
// hot-path job runs the guards without it).
package racecheck

// Enabled reports whether this build includes the race detector.
const Enabled = enabled
