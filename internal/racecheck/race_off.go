//go:build !race

package racecheck

const enabled = false
