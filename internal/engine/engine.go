// Package engine demonstrates Elan's framework generality (Section V-A):
// the elastic runtime talks to the DL framework only through the hook API
// (state extraction/installation functions registered per state kind), so
// integrating a new framework means implementing a handful of hooks.
//
// Two engines are provided, mirroring the paper's two integrations:
//
//   - StaticEngine is Caffe-like: the network is compiled once into a fixed
//     execution plan with shapes validated up front; running a batch merely
//     replays the plan.
//   - DynamicEngine is PyTorch-like: each step eagerly executes layer
//     objects and records a tape, allowing per-step graph changes (the test
//     suite exercises a step-dependent structure).
//
// Both satisfy the same Engine interface, and ReplicationHooks adapts any
// Engine to the replication.Copier registry.
package engine

import (
	"fmt"
	"math/rand"

	"github.com/elan-sys/elan/internal/nn"
	"github.com/elan-sys/elan/internal/replication"
	"github.com/elan-sys/elan/internal/tensor"
)

// Engine is the minimal framework contract the elastic runtime needs: run
// a training step, expose flattenable training state, and report its size.
type Engine interface {
	// Step runs forward+backward+update on one batch and returns the loss.
	Step(x *tensor.Matrix, y []int, lr float64) (float64, error)
	// Eval returns loss and accuracy without updating parameters.
	Eval(x *tensor.Matrix, y []int) (loss, acc float64, err error)
	// ExportState flattens all replicable state (parameters + optimizer).
	ExportState() []float64
	// ImportState installs previously exported state.
	ImportState([]float64) error
	// Kind names the engine for diagnostics.
	Kind() string
}

// StaticEngine precompiles an MLP into a fixed plan (Caffe-style).
type StaticEngine struct {
	net      *nn.MLP
	opt      *nn.SGD
	inDim    int
	outDim   int
	compiled bool
}

// NewStatic builds and "compiles" a static engine: shapes are fixed and
// checked at construction; Step rejects mismatched batches.
func NewStatic(seed int64, sizes []int, lr, momentum float64) (*StaticEngine, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("engine: need at least 2 layer sizes")
	}
	net, err := nn.NewMLP(rand.New(rand.NewSource(seed)), sizes)
	if err != nil {
		return nil, err
	}
	opt, err := nn.NewSGD(net.Params(), lr, momentum)
	if err != nil {
		return nil, err
	}
	return &StaticEngine{
		net:      net,
		opt:      opt,
		inDim:    sizes[0],
		outDim:   sizes[len(sizes)-1],
		compiled: true,
	}, nil
}

// Kind implements Engine.
func (e *StaticEngine) Kind() string { return "static" }

// Step implements Engine with compile-time shape enforcement.
func (e *StaticEngine) Step(x *tensor.Matrix, y []int, lr float64) (float64, error) {
	if !e.compiled {
		return 0, fmt.Errorf("engine: static engine not compiled")
	}
	if x.Cols != e.inDim {
		return 0, fmt.Errorf("engine: static plan expects %d features, got %d", e.inDim, x.Cols)
	}
	e.net.ZeroGrads()
	out, err := e.net.Forward(x)
	if err != nil {
		return 0, err
	}
	loss, grad, err := e.net.SoftmaxLoss(out, y)
	if err != nil {
		return 0, err
	}
	if err := e.net.Backward(grad); err != nil {
		return 0, err
	}
	e.opt.LR = lr
	if err := e.opt.Step(e.net.Params(), e.net.Grads()); err != nil {
		return 0, err
	}
	return loss, nil
}

// Eval implements Engine.
func (e *StaticEngine) Eval(x *tensor.Matrix, y []int) (float64, float64, error) {
	out, err := e.net.Forward(x)
	if err != nil {
		return 0, 0, err
	}
	loss, _, err := e.net.SoftmaxLoss(out, y)
	if err != nil {
		return 0, 0, err
	}
	acc, err := nn.Accuracy(out, y)
	return loss, acc, err
}

// ExportState implements Engine.
func (e *StaticEngine) ExportState() []float64 {
	state := e.net.FlattenParams(nil)
	return e.opt.FlattenState(state)
}

// ImportState implements Engine.
func (e *StaticEngine) ImportState(state []float64) error {
	nParams := e.net.NumParams()
	if len(state) != nParams+e.opt.StateElements() {
		return fmt.Errorf("engine: state of %d values, want %d", len(state), nParams+e.opt.StateElements())
	}
	if err := e.net.LoadParams(state[:nParams]); err != nil {
		return err
	}
	return e.opt.LoadState(state[nParams:])
}

// DynamicEngine executes eagerly and may change structure between steps
// (PyTorch-style). It keeps a set of branches and picks one per step based
// on a caller-provided selector, re-recording the tape each time.
type DynamicEngine struct {
	branches []*nn.MLP
	opts     []*nn.SGD
	// Select picks the branch for a given step; defaults to branch 0.
	Select func(step int) int
	step   int
}

// NewDynamic builds a dynamic engine with one or more structural branches
// (all sharing input/output dimensions but possibly different hidden
// shapes — the kind of data-dependent control flow a static engine cannot
// express).
func NewDynamic(seed int64, branchSizes [][]int, lr, momentum float64) (*DynamicEngine, error) {
	if len(branchSizes) == 0 {
		return nil, fmt.Errorf("engine: need at least one branch")
	}
	e := &DynamicEngine{}
	for i, sizes := range branchSizes {
		if len(sizes) < 2 {
			return nil, fmt.Errorf("engine: branch %d too shallow", i)
		}
		net, err := nn.NewMLP(rand.New(rand.NewSource(seed+int64(i))), sizes)
		if err != nil {
			return nil, err
		}
		opt, err := nn.NewSGD(net.Params(), lr, momentum)
		if err != nil {
			return nil, err
		}
		e.branches = append(e.branches, net)
		e.opts = append(e.opts, opt)
	}
	return e, nil
}

// Kind implements Engine.
func (e *DynamicEngine) Kind() string { return "dynamic" }

func (e *DynamicEngine) pick(step int) int {
	if e.Select == nil {
		return 0
	}
	b := e.Select(step)
	if b < 0 || b >= len(e.branches) {
		return 0
	}
	return b
}

// Step implements Engine, eagerly executing the branch chosen for this
// step.
func (e *DynamicEngine) Step(x *tensor.Matrix, y []int, lr float64) (float64, error) {
	b := e.pick(e.step)
	e.step++
	net, opt := e.branches[b], e.opts[b]
	net.ZeroGrads()
	out, err := net.Forward(x)
	if err != nil {
		return 0, err
	}
	loss, grad, err := net.SoftmaxLoss(out, y)
	if err != nil {
		return 0, err
	}
	if err := net.Backward(grad); err != nil {
		return 0, err
	}
	opt.LR = lr
	if err := opt.Step(net.Params(), net.Grads()); err != nil {
		return 0, err
	}
	return loss, nil
}

// Eval implements Engine using branch 0 (the inference branch).
func (e *DynamicEngine) Eval(x *tensor.Matrix, y []int) (float64, float64, error) {
	out, err := e.branches[0].Forward(x)
	if err != nil {
		return 0, 0, err
	}
	loss, _, err := e.branches[0].SoftmaxLoss(out, y)
	if err != nil {
		return 0, 0, err
	}
	acc, err := nn.Accuracy(out, y)
	return loss, acc, err
}

// ExportState implements Engine: all branches' parameters and optimizer
// states, in branch order.
func (e *DynamicEngine) ExportState() []float64 {
	var state []float64
	for i, net := range e.branches {
		state = net.FlattenParams(state)
		state = e.opts[i].FlattenState(state)
	}
	return state
}

// ImportState implements Engine.
func (e *DynamicEngine) ImportState(state []float64) error {
	off := 0
	for i, net := range e.branches {
		n := net.NumParams()
		s := e.opts[i].StateElements()
		if off+n+s > len(state) {
			return fmt.Errorf("engine: state too short at branch %d", i)
		}
		if err := net.LoadParams(state[off : off+n]); err != nil {
			return err
		}
		off += n
		if err := e.opts[i].LoadState(state[off : off+s]); err != nil {
			return err
		}
		off += s
	}
	if off != len(state) {
		return fmt.Errorf("engine: %d trailing state values", len(state)-off)
	}
	return nil
}

// ReplicationHooks adapts any Engine to the elastic runtime's hook API:
// given a fleet of engine replicas, it registers the "model+optimizer"
// GPU-state hook that copies state between replicas. This is all a new
// framework must provide to gain elasticity (Table III, RegisterHook).
func ReplicationHooks(copier *replication.Copier, replicas []Engine) error {
	if len(replicas) == 0 {
		return fmt.Errorf("engine: no replicas")
	}
	return copier.RegisterHook(replication.Hook{
		Kind:  "engine-state",
		OnGPU: true,
		Copy: func(src, dst int) error {
			if src < 0 || src >= len(replicas) || dst < 0 || dst >= len(replicas) {
				return fmt.Errorf("engine: hook indices %d->%d out of range", src, dst)
			}
			return replicas[dst].ImportState(replicas[src].ExportState())
		},
	})
}

var (
	_ Engine = (*StaticEngine)(nil)
	_ Engine = (*DynamicEngine)(nil)
)
