package engine

import (
	"math"
	"testing"

	"github.com/elan-sys/elan/internal/data"
	"github.com/elan-sys/elan/internal/replication"
	"github.com/elan-sys/elan/internal/tensor"
)

func trainBatch(t *testing.T) (*tensor.Matrix, []int) {
	t.Helper()
	d, err := data.GenGaussianMixture(4, 256, 4, 3)
	if err != nil {
		t.Fatalf("GenGaussianMixture: %v", err)
	}
	x, y, err := d.Batch(0, 256)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	return x, y
}

func TestStaticEngineTrains(t *testing.T) {
	e, err := NewStatic(1, []int{4, 16, 3}, 0.1, 0.9)
	if err != nil {
		t.Fatalf("NewStatic: %v", err)
	}
	if e.Kind() != "static" {
		t.Fatalf("Kind = %q", e.Kind())
	}
	x, y := trainBatch(t)
	var first, last float64
	for i := 0; i < 60; i++ {
		loss, err := e.Step(x, y, 0.1)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first/2 {
		t.Fatalf("loss did not halve: %v -> %v", first, last)
	}
	_, acc, err := e.Eval(x, y)
	if err != nil || acc < 0.7 {
		t.Fatalf("Eval acc = %v, %v", acc, err)
	}
}

func TestStaticEngineShapeEnforcement(t *testing.T) {
	e, err := NewStatic(1, []int{4, 8, 3}, 0.1, 0.9)
	if err != nil {
		t.Fatalf("NewStatic: %v", err)
	}
	bad := tensor.MustNew(2, 5) // wrong feature count
	if _, err := e.Step(bad, []int{0, 1}, 0.1); err == nil {
		t.Fatal("static engine accepted mismatched shape")
	}
	if _, err := NewStatic(1, []int{4}, 0.1, 0.9); err == nil {
		t.Fatal("one-layer network accepted")
	}
}

func TestDynamicEngineBranches(t *testing.T) {
	e, err := NewDynamic(2, [][]int{{4, 16, 3}, {4, 8, 8, 3}}, 0.1, 0.9)
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	if e.Kind() != "dynamic" {
		t.Fatalf("Kind = %q", e.Kind())
	}
	// Step-dependent structure: alternate branches.
	used := map[int]int{}
	e.Select = func(step int) int {
		b := step % 2
		used[b]++
		return b
	}
	x, y := trainBatch(t)
	for i := 0; i < 20; i++ {
		if _, err := e.Step(x, y, 0.05); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if used[0] == 0 || used[1] == 0 {
		t.Fatalf("branches not both used: %v", used)
	}
	// Out-of-range selector falls back to branch 0 instead of crashing.
	e.Select = func(step int) int { return 99 }
	if _, err := e.Step(x, y, 0.05); err != nil {
		t.Fatalf("Step with bad selector: %v", err)
	}
}

func TestDynamicEngineValidation(t *testing.T) {
	if _, err := NewDynamic(1, nil, 0.1, 0.9); err == nil {
		t.Fatal("no branches accepted")
	}
	if _, err := NewDynamic(1, [][]int{{4}}, 0.1, 0.9); err == nil {
		t.Fatal("shallow branch accepted")
	}
}

func TestStateRoundTripBothEngines(t *testing.T) {
	x, y := trainBatch(t)
	engines := []Engine{}
	st, err := NewStatic(3, []int{4, 16, 3}, 0.1, 0.9)
	if err != nil {
		t.Fatalf("NewStatic: %v", err)
	}
	dy, err := NewDynamic(3, [][]int{{4, 16, 3}}, 0.1, 0.9)
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	engines = append(engines, st, dy)
	for _, e := range engines {
		for i := 0; i < 10; i++ {
			if _, err := e.Step(x, y, 0.05); err != nil {
				t.Fatalf("%s Step: %v", e.Kind(), err)
			}
		}
		state := e.ExportState()
		if len(state) == 0 {
			t.Fatalf("%s: empty state", e.Kind())
		}
		// Round trip into a fresh engine of the same shape.
		var fresh Engine
		var err error
		if e.Kind() == "static" {
			fresh, err = NewStatic(99, []int{4, 16, 3}, 0.1, 0.9)
		} else {
			fresh, err = NewDynamic(99, [][]int{{4, 16, 3}}, 0.1, 0.9)
		}
		if err != nil {
			t.Fatalf("fresh %s: %v", e.Kind(), err)
		}
		if err := fresh.ImportState(state); err != nil {
			t.Fatalf("%s ImportState: %v", e.Kind(), err)
		}
		lossA, accA, err := e.Eval(x, y)
		if err != nil {
			t.Fatalf("Eval: %v", err)
		}
		lossB, accB, err := fresh.Eval(x, y)
		if err != nil {
			t.Fatalf("Eval fresh: %v", err)
		}
		if math.Abs(lossA-lossB) > 1e-12 || math.Abs(accA-accB) > 1e-12 {
			t.Fatalf("%s: state round trip changed behaviour", e.Kind())
		}
		// Corrupt-length state rejected.
		if err := fresh.ImportState(state[:len(state)-1]); err == nil {
			t.Fatalf("%s: short state accepted", e.Kind())
		}
	}
}

func TestReplicationHooksAdaptAnyEngine(t *testing.T) {
	// The generality claim: the same hook adapter replicates state for a
	// static-engine fleet and a dynamic-engine fleet.
	x, y := trainBatch(t)
	build := func(kind string) []Engine {
		var out []Engine
		for i := 0; i < 3; i++ {
			var e Engine
			var err error
			if kind == "static" {
				e, err = NewStatic(7, []int{4, 16, 3}, 0.1, 0.9)
			} else {
				e, err = NewDynamic(7, [][]int{{4, 16, 3}}, 0.1, 0.9)
			}
			if err != nil {
				t.Fatalf("build %s: %v", kind, err)
			}
			out = append(out, e)
		}
		return out
	}
	for _, kind := range []string{"static", "dynamic"} {
		replicas := build(kind)
		// Train only replica 0; replicas 1, 2 stay at init.
		for i := 0; i < 15; i++ {
			if _, err := replicas[0].Step(x, y, 0.05); err != nil {
				t.Fatalf("Step: %v", err)
			}
		}
		copier := replication.NewCopier()
		if err := ReplicationHooks(copier, replicas); err != nil {
			t.Fatalf("ReplicationHooks: %v", err)
		}
		// Replicate 0 -> 1 and 0 -> 2 (a scale-out from 1 to 3 workers).
		if err := copier.Execute(0, 1); err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if err := copier.Execute(0, 2); err != nil {
			t.Fatalf("Execute: %v", err)
		}
		loss0, _, err := replicas[0].Eval(x, y)
		if err != nil {
			t.Fatalf("Eval: %v", err)
		}
		for r := 1; r < 3; r++ {
			loss, _, err := replicas[r].Eval(x, y)
			if err != nil {
				t.Fatalf("Eval replica %d: %v", r, err)
			}
			if math.Abs(loss-loss0) > 1e-12 {
				t.Fatalf("%s replica %d not replicated: loss %v vs %v", kind, r, loss, loss0)
			}
		}
	}
	if err := ReplicationHooks(replication.NewCopier(), nil); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

func TestReplicationHookIndexValidation(t *testing.T) {
	st, err := NewStatic(1, []int{4, 8, 3}, 0.1, 0.9)
	if err != nil {
		t.Fatalf("NewStatic: %v", err)
	}
	copier := replication.NewCopier()
	if err := ReplicationHooks(copier, []Engine{st}); err != nil {
		t.Fatalf("ReplicationHooks: %v", err)
	}
	if err := copier.Execute(0, 5); err == nil {
		t.Fatal("out-of-range replica accepted")
	}
}
