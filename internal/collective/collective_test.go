package collective

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// runCollective runs fn on n goroutines, one per rank, and returns the first
// error observed.
func runCollective(n int, fn func(rank int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = fn(r)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup(0); err == nil {
		t.Fatal("zero-size group accepted")
	}
	g, err := NewGroup(4)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	if g.Size() != 4 {
		t.Fatalf("Size = %d", g.Size())
	}
}

func TestAllReduceSingleRank(t *testing.T) {
	g, err := NewGroup(1)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	vec := []float64{1, 2, 3}
	if err := g.AllReduce(0, vec); err != nil {
		t.Fatalf("AllReduce: %v", err)
	}
	if vec[0] != 1 || vec[1] != 2 || vec[2] != 3 {
		t.Fatalf("single-rank allreduce changed data: %v", vec)
	}
}

func TestAllReduceSums(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		for _, length := range []int{1, 5, 8, 17, 100} {
			g, err := NewGroup(n)
			if err != nil {
				t.Fatalf("NewGroup: %v", err)
			}
			vecs := make([][]float64, n)
			want := make([]float64, length)
			for r := range vecs {
				vecs[r] = make([]float64, length)
				for i := range vecs[r] {
					vecs[r][i] = float64(r*1000 + i)
					want[i] += vecs[r][i]
				}
			}
			if err := runCollective(n, func(rank int) error {
				return g.AllReduce(rank, vecs[rank])
			}); err != nil {
				t.Fatalf("n=%d len=%d: %v", n, length, err)
			}
			for r := 0; r < n; r++ {
				for i := range want {
					if math.Abs(vecs[r][i]-want[i]) > 1e-9 {
						t.Fatalf("n=%d len=%d rank=%d idx=%d: got %v want %v",
							n, length, r, i, vecs[r][i], want[i])
					}
				}
			}
			g.Close()
		}
	}
}

func TestAllReduceMean(t *testing.T) {
	n := 4
	g, err := NewGroup(n)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	defer g.Close()
	vecs := make([][]float64, n)
	for r := range vecs {
		vecs[r] = []float64{float64(r)}
	}
	if err := runCollective(n, func(rank int) error {
		return g.AllReduceMean(rank, vecs[rank])
	}); err != nil {
		t.Fatalf("AllReduceMean: %v", err)
	}
	want := (0.0 + 1 + 2 + 3) / 4
	for r := 0; r < n; r++ {
		if math.Abs(vecs[r][0]-want) > 1e-12 {
			t.Fatalf("rank %d mean = %v, want %v", r, vecs[r][0], want)
		}
	}
}

func TestAllReduceRankValidation(t *testing.T) {
	g, err := NewGroup(2)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	defer g.Close()
	if err := g.AllReduce(2, []float64{1}); err == nil {
		t.Fatal("rank out of range accepted")
	}
	if err := g.AllReduce(-1, []float64{1}); err == nil {
		t.Fatal("negative rank accepted")
	}
}

func TestAllReduceRepeated(t *testing.T) {
	// Multiple sequential collectives on one group (training iterations).
	n := 4
	g, err := NewGroup(n)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	defer g.Close()
	for iter := 0; iter < 10; iter++ {
		vecs := make([][]float64, n)
		for r := range vecs {
			vecs[r] = []float64{1}
		}
		if err := runCollective(n, func(rank int) error {
			return g.AllReduce(rank, vecs[rank])
		}); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for r := 0; r < n; r++ {
			if vecs[r][0] != float64(n) {
				t.Fatalf("iter %d rank %d: %v", iter, r, vecs[r][0])
			}
		}
	}
}

func TestBarrier(t *testing.T) {
	n := 6
	g, err := NewGroup(n)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	defer g.Close()
	for round := 0; round < 5; round++ {
		if err := runCollective(n, func(rank int) error {
			return g.Barrier()
		}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestCloseUnblocks(t *testing.T) {
	g, err := NewGroup(2)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		// Only rank 0 joins; it blocks until Close.
		done <- g.AllReduce(0, []float64{1, 2})
	}()
	g.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Barrier after close fails immediately.
	if err := g.Barrier(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Barrier after close = %v, want ErrClosed", err)
	}
}

func TestCloseUnblocksBarrier(t *testing.T) {
	g, err := NewGroup(3)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Barrier() }()
	g.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestGroupReconstruction(t *testing.T) {
	// Scaling out: close the old group, build a bigger one, collectives
	// still work — this is the "communication group reconstruction" of the
	// adjustment procedure.
	old, err := NewGroup(2)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	vecs := [][]float64{{1}, {2}}
	if err := runCollective(2, func(r int) error { return old.AllReduce(r, vecs[r]) }); err != nil {
		t.Fatalf("old group: %v", err)
	}
	old.Close()
	bigger, err := NewGroup(4)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	defer bigger.Close()
	vecs4 := [][]float64{{1}, {1}, {1}, {1}}
	if err := runCollective(4, func(r int) error { return bigger.AllReduce(r, vecs4[r]) }); err != nil {
		t.Fatalf("new group: %v", err)
	}
	for r := 0; r < 4; r++ {
		if vecs4[r][0] != 4 {
			t.Fatalf("rank %d: %v", r, vecs4[r][0])
		}
	}
}

func TestAllReduceMatchesSequentialSum(t *testing.T) {
	// Property: ring allreduce equals a sequential elementwise sum for
	// random vectors, sizes and group sizes.
	prop := func(seed int64, nRaw, lenRaw uint8) bool {
		n := int(nRaw%7) + 2 // 2..8 ranks
		length := int(lenRaw%50) + 1
		rng := rand.New(rand.NewSource(seed))
		g, err := NewGroup(n)
		if err != nil {
			return false
		}
		defer g.Close()
		vecs := make([][]float64, n)
		want := make([]float64, length)
		for r := range vecs {
			vecs[r] = make([]float64, length)
			for i := range vecs[r] {
				vecs[r][i] = rng.NormFloat64()
				want[i] += vecs[r][i]
			}
		}
		if err := runCollective(n, func(rank int) error {
			return g.AllReduce(rank, vecs[rank])
		}); err != nil {
			return false
		}
		for r := 0; r < n; r++ {
			for i := range want {
				if math.Abs(vecs[r][i]-want[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
