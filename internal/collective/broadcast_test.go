package collective

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBroadcastFromEveryRoot(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		for root := 0; root < n; root++ {
			g, err := NewGroup(n)
			if err != nil {
				t.Fatalf("NewGroup: %v", err)
			}
			length := 23
			vecs := make([][]float64, n)
			want := make([]float64, length)
			for i := range want {
				want[i] = float64(root*100 + i)
			}
			for r := range vecs {
				vecs[r] = make([]float64, length)
				if r == root {
					copy(vecs[r], want)
				}
			}
			if err := runCollective(n, func(rank int) error {
				return g.Broadcast(rank, root, vecs[rank])
			}); err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
			for r := 0; r < n; r++ {
				for i := range want {
					if vecs[r][i] != want[i] {
						t.Fatalf("n=%d root=%d rank=%d idx=%d: %v != %v",
							n, root, r, i, vecs[r][i], want[i])
					}
				}
			}
			g.Close()
		}
	}
}

func TestBroadcastSingleRank(t *testing.T) {
	g, err := NewGroup(1)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	defer g.Close()
	vec := []float64{1, 2}
	if err := g.Broadcast(0, 0, vec); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if vec[0] != 1 || vec[1] != 2 {
		t.Fatal("single-rank broadcast changed data")
	}
}

func TestBroadcastValidation(t *testing.T) {
	g, err := NewGroup(2)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	defer g.Close()
	if err := g.Broadcast(5, 0, []float64{1}); err == nil {
		t.Fatal("bad rank accepted")
	}
	if err := g.Broadcast(0, 5, []float64{1}); err == nil {
		t.Fatal("bad root accepted")
	}
}

func TestBroadcastCloseUnblocks(t *testing.T) {
	g, err := NewGroup(3)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		done <- g.Broadcast(1, 0, make([]float64, 8))
	}()
	g.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestBroadcastRandomized(t *testing.T) {
	prop := func(seed int64, nRaw, lenRaw, rootRaw uint8) bool {
		n := int(nRaw%6) + 2
		length := int(lenRaw%40) + 1
		root := int(rootRaw) % n
		rng := rand.New(rand.NewSource(seed))
		g, err := NewGroup(n)
		if err != nil {
			return false
		}
		defer g.Close()
		want := make([]float64, length)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		vecs := make([][]float64, n)
		for r := range vecs {
			vecs[r] = make([]float64, length)
			if r == root {
				copy(vecs[r], want)
			}
		}
		if err := runCollective(n, func(rank int) error {
			return g.Broadcast(rank, root, vecs[rank])
		}); err != nil {
			return false
		}
		for r := 0; r < n; r++ {
			for i := range want {
				if vecs[r][i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastThenAllReduce(t *testing.T) {
	// The adjustment sequence: broadcast the model to joiners, then the
	// next iteration's allreduce works on the same group.
	n := 4
	g, err := NewGroup(n)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	defer g.Close()
	vecs := make([][]float64, n)
	for r := range vecs {
		vecs[r] = make([]float64, 10)
	}
	for i := range vecs[0] {
		vecs[0][i] = float64(i)
	}
	if err := runCollective(n, func(rank int) error {
		return g.Broadcast(rank, 0, vecs[rank])
	}); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if err := runCollective(n, func(rank int) error {
		return g.AllReduce(rank, vecs[rank])
	}); err != nil {
		t.Fatalf("AllReduce: %v", err)
	}
	for r := 0; r < n; r++ {
		for i := range vecs[r] {
			if vecs[r][i] != float64(i*n) {
				t.Fatalf("rank %d idx %d: %v", r, i, vecs[r][i])
			}
		}
	}
}
