package collective

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/elan-sys/elan/internal/topology"
)

// placement builds a rank→GPU placement putting counts[j] consecutive ranks
// on node j.
func placement(counts ...int) []topology.GPUID {
	var place []topology.GPUID
	for node, c := range counts {
		for i := 0; i < c; i++ {
			place = append(place, topology.GPUID{Node: node, Index: i})
		}
	}
	return place
}

// interleaved builds a placement striping n ranks round-robin over nodes
// GPUs, so node member ranks are non-contiguous.
func interleaved(n, nodes int) []topology.GPUID {
	place := make([]topology.GPUID, n)
	for r := 0; r < n; r++ {
		place[r] = topology.GPUID{Node: r % nodes, Index: r / nodes}
	}
	return place
}

func mustClustered(t *testing.T, place []topology.GPUID) *Clustered {
	t.Helper()
	c, err := NewClustered(place)
	if err != nil {
		t.Fatalf("NewClustered: %v", err)
	}
	return c
}

// runTopo runs one allreduce over all ranks of a fresh group for topo and
// returns the per-rank result vectors.
func runTopo(t *testing.T, topo Topology, vecs [][]float64) [][]float64 {
	t.Helper()
	g, err := NewGroupWithTopology(topo)
	if err != nil {
		t.Fatalf("NewGroupWithTopology: %v", err)
	}
	defer g.Close()
	out := make([][]float64, len(vecs))
	for r := range vecs {
		out[r] = append([]float64(nil), vecs[r]...)
	}
	if err := runCollective(g.Size(), func(rank int) error {
		return g.AllReduce(rank, out[rank])
	}); err != nil {
		t.Fatalf("allreduce: %v", err)
	}
	return out
}

// expectBits asserts got matches want bit for bit (so ±0 and NaN payloads
// are distinguished, unlike ==).
func expectBits(t *testing.T, label string, rank int, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s rank %d: length %d, want %d", label, rank, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s rank %d elem %d: %v (%#x), want %v (%#x)",
				label, rank, i, got[i], math.Float64bits(got[i]),
				want[i], math.Float64bits(want[i]))
		}
	}
}

func randVecs(rng *rand.Rand, n, length int) [][]float64 {
	vecs := make([][]float64, n)
	for r := range vecs {
		vecs[r] = make([]float64, length)
		for i := range vecs[r] {
			// Wide exponent spread makes addition order-sensitive, so any
			// deviation from the specified accumulation order shows up.
			vecs[r][i] = rng.NormFloat64() * math.Pow(2, float64(rng.Intn(40)-20))
		}
	}
	return vecs
}

// TestFlatMatchesReferenceBitwise pins the flat engine to the executable
// order spec on order-sensitive inputs: the refactor onto the shared ring
// engine must not have changed a single accumulation.
func TestFlatMatchesReferenceBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		for _, length := range []int{1, 2, 5, 17, 100} {
			vecs := randVecs(rng, n, length)
			want, err := ReferenceAllReduce(Flat(n), vecs)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			got := runTopo(t, Flat(n), vecs)
			for r := 0; r < n; r++ {
				expectBits(t, "flat", r, got[r], want)
			}
		}
	}
}

// TestHierarchicalMatchesReferenceBitwise is the core differential test:
// the two-tier engine must realize exactly the documented two-level
// k-ascending fold, across adversarial shapes — 1×1, ragged chunk
// remainders, node groups of unequal size, singleton nodes (leader-only
// ranks), ranks not divisible by GPUs per node, and striped placements.
func TestHierarchicalMatchesReferenceBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct {
		name  string
		place []topology.GPUID
	}{
		{"2nodes-1x1", placement(1, 1)},
		{"2nodes-4x4", placement(4, 4)},
		{"2nodes-ragged-3x2", placement(3, 2)},
		{"2nodes-ragged-1x4", placement(1, 4)},
		{"3nodes-singletons", placement(1, 1, 1)},
		{"3nodes-mixed-2x1x3", placement(2, 1, 3)},
		{"3nodes-7ranks-3x3x1", placement(3, 3, 1)},
		{"2nodes-striped-8", interleaved(8, 2)},
		{"3nodes-striped-7", interleaved(7, 3)},
	}
	for _, tc := range cases {
		topo := mustClustered(t, tc.place)
		for _, length := range []int{1, 2, 3, 7, 16, 17, 100} {
			vecs := randVecs(rng, topo.Ranks(), length)
			want, err := ReferenceAllReduce(topo, vecs)
			if err != nil {
				t.Fatalf("%s reference: %v", tc.name, err)
			}
			got := runTopo(t, topo, vecs)
			for r := 0; r < topo.Ranks(); r++ {
				expectBits(t, tc.name, r, got[r], want)
			}
		}
	}
}

// TestHierarchicalMatchesFlatBitwise proves flat and hierarchical engines
// agree bit for bit whenever addition is exact, so reduction structure
// cannot leak into training results: integer-valued floats (no rounding below
// 2^53), mixed ±0 (IEEE: +0 + -0 = +0 in any order), and Inf patterns.
func TestHierarchicalMatchesFlatBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 8
	hier := mustClustered(t, placement(4, 4))
	build := []struct {
		name string
		gen  func(r, i int) float64
	}{
		{"integers", func(r, i int) float64 { return float64(rng.Intn(2001) - 1000) }},
		{"signed-zeros", func(r, i int) float64 {
			if (r+i)%3 == 0 {
				return math.Copysign(0, -1)
			}
			return 0
		}},
		{"all-neg-zero", func(r, i int) float64 { return math.Copysign(0, -1) }},
		{"infinities", func(r, i int) float64 {
			if i%2 == 0 {
				return math.Inf(1)
			}
			return math.Inf(1 - 2*(r%2)) // +Inf and -Inf mix → indefinite NaN
		}},
	}
	for _, tc := range build {
		vecs := make([][]float64, n)
		for r := range vecs {
			vecs[r] = make([]float64, 24)
			for i := range vecs[r] {
				vecs[r][i] = tc.gen(r, i)
			}
		}
		flatOut := runTopo(t, Flat(n), vecs)
		hierOut := runTopo(t, hier, vecs)
		for r := 0; r < n; r++ {
			expectBits(t, tc.name, r, hierOut[r], flatOut[0])
			expectBits(t, tc.name+"/flat-agrees", r, flatOut[r], flatOut[0])
		}
	}
}

// TestHierarchicalNaNPropagation: a canonical NaN contributed by one rank
// must survive both engines at full payload (both engines only ever add it
// to non-NaN values, so the payload choice is unambiguous).
func TestHierarchicalNaNPropagation(t *testing.T) {
	const n = 6
	hier := mustClustered(t, placement(3, 3))
	vecs := make([][]float64, n)
	for r := range vecs {
		vecs[r] = make([]float64, 8)
		for i := range vecs[r] {
			vecs[r][i] = float64(i)
		}
	}
	vecs[2][5] = math.NaN()
	want, err := ReferenceAllReduce(hier, vecs)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	for _, tc := range []struct {
		name string
		topo Topology
	}{{"hier", hier}, {"flat", Flat(n)}} {
		got := runTopo(t, tc.topo, vecs)
		for r := 0; r < n; r++ {
			if !math.IsNaN(got[r][5]) {
				t.Fatalf("%s rank %d: NaN did not propagate: %v", tc.name, r, got[r][5])
			}
			for i := 0; i < 8; i++ {
				if i == 5 {
					continue
				}
				if math.Float64bits(got[r][i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s rank %d elem %d: %v, want %v", tc.name, r, i, got[r][i], want[i])
				}
			}
		}
	}
}

// TestHierarchicalElasticResize walks a group through the elastic sequence
// 2 → 8 → 3 with hierarchical placements, reconstructing the group each
// time as the adjustment procedure does, and checks every incarnation
// against the reference.
func TestHierarchicalElasticResize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	steps := []struct {
		name  string
		place []topology.GPUID
	}{
		{"2ranks-2nodes", placement(1, 1)},
		{"8ranks-2nodes", placement(4, 4)},
		{"3ranks-2nodes", placement(2, 1)},
	}
	for _, st := range steps {
		topo := mustClustered(t, st.place)
		vecs := randVecs(rng, topo.Ranks(), 33)
		want, err := ReferenceAllReduce(topo, vecs)
		if err != nil {
			t.Fatalf("%s reference: %v", st.name, err)
		}
		got := runTopo(t, topo, vecs) // builds, runs, closes — a reconstruction per step
		for r := 0; r < topo.Ranks(); r++ {
			expectBits(t, st.name, r, got[r], want)
		}
	}
}

// TestHierarchicalRepeatedAndResizing exercises one hierarchical group
// across many collectives with alternating vector lengths: arenas must
// re-prime and the stage protocol must stay aligned across calls.
func TestHierarchicalRepeatedAndResizing(t *testing.T) {
	topo := mustClustered(t, placement(3, 2, 3))
	g, err := NewGroupWithTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if !g.Hierarchical() {
		t.Fatal("group not hierarchical")
	}
	n := g.Size()
	rng := rand.New(rand.NewSource(5))
	for iter, length := range []int{7, 1024, 7, 31, 1, 257, 8} {
		vecs := randVecs(rng, n, length)
		want, err := ReferenceAllReduce(topo, vecs)
		if err != nil {
			t.Fatalf("iter %d reference: %v", iter, err)
		}
		got := make([][]float64, n)
		for r := range got {
			got[r] = append([]float64(nil), vecs[r]...)
		}
		if err := runCollective(n, func(rank int) error {
			return g.AllReduce(rank, got[rank])
		}); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for r := 0; r < n; r++ {
			expectBits(t, "repeated", r, got[r], want)
		}
	}
}

// TestHierarchicalBroadcastStillWorks: Broadcast rides the global ring,
// which hierarchical groups keep wired.
func TestHierarchicalBroadcastStillWorks(t *testing.T) {
	topo := mustClustered(t, placement(2, 3))
	g, err := NewGroupWithTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	n := g.Size()
	vecs := make([][]float64, n)
	for r := range vecs {
		vecs[r] = make([]float64, 10)
		for i := range vecs[r] {
			vecs[r][i] = float64(r*100 + i)
		}
	}
	if err := runCollective(n, func(rank int) error {
		return g.Broadcast(rank, 1, vecs[rank])
	}); err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	for r := 0; r < n; r++ {
		for i := range vecs[r] {
			if vecs[r][i] != float64(100+i) {
				t.Fatalf("rank %d elem %d: %v", r, i, vecs[r][i])
			}
		}
	}
}

// TestHierarchicalCloseUnblocks: Close must release ranks blocked inside
// any hierarchical stage, not just the global ring.
func TestHierarchicalCloseUnblocks(t *testing.T) {
	topo := mustClustered(t, placement(2, 2))
	g, err := NewGroupWithTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Only rank 3 joins; it blocks in the intra-node ring until Close.
		done <- g.AllReduce(3, []float64{1, 2, 3})
	}()
	g.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestNewClusteredValidation(t *testing.T) {
	if _, err := NewClustered(nil); err == nil {
		t.Fatal("empty placement accepted")
	}
	dup := []topology.GPUID{{Node: 0, Index: 1}, {Node: 0, Index: 1}}
	if _, err := NewClustered(dup); err == nil {
		t.Fatal("duplicate placement accepted")
	}
}

func TestLinkLabelOf(t *testing.T) {
	if got := LinkLabelOf(Flat(4)); got != "L1" {
		t.Fatalf("flat label %q, want L1", got)
	}
	cross := mustClustered(t, placement(2, 2))
	if got := LinkLabelOf(cross); got != "L4" {
		t.Fatalf("cross-node label %q, want L4", got)
	}
}

// TestTopologySingleNodeIsFlat: a clustered placement on one node must run
// the flat engine (and its exact reduction order).
func TestTopologySingleNodeIsFlat(t *testing.T) {
	topo := mustClustered(t, placement(4))
	g, err := NewGroupWithTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Hierarchical() {
		t.Fatal("single-node group marked hierarchical")
	}
	rng := rand.New(rand.NewSource(6))
	vecs := randVecs(rng, 4, 13)
	want, err := ReferenceAllReduce(Flat(4), vecs)
	if err != nil {
		t.Fatal(err)
	}
	got := runTopo(t, topo, vecs)
	for r := 0; r < 4; r++ {
		expectBits(t, "single-node", r, got[r], want)
	}
}
