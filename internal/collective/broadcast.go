package collective

import "fmt"

// Broadcast distributes root's vector to every rank, in place, using a
// pipelined ring: the payload is split into n chunks that travel around the
// ring, so all links are busy simultaneously and the completion time
// approaches one payload transfer regardless of the group size. The elastic
// runtime uses it when one source must feed several new workers at once
// (one-to-many replication), complementing the pairwise plans of the
// replication package.
//
// All ranks must call Broadcast collectively with vectors of equal length;
// non-root vectors are overwritten.
func (g *Group) Broadcast(rank, root int, vec []float64) error {
	if rank < 0 || rank >= g.n {
		return fmt.Errorf("collective: rank %d out of [0, %d)", rank, g.n)
	}
	if root < 0 || root >= g.n {
		return fmt.Errorf("collective: root %d out of [0, %d)", root, g.n)
	}
	if g.n == 1 {
		return nil
	}
	// Position of this rank along the ring starting at root: root is 0,
	// root+1 is 1, ..., root-1 is n-1. The last position only receives.
	pos := ((rank-root)%g.n + g.n) % g.n
	last := g.n - 1
	for c := 0; c < g.n; c++ {
		lo, hi := bounds(len(vec), g.n, c)
		if pos == 0 {
			// Root: send each chunk once.
			out := make([]float64, hi-lo)
			copy(out, vec[lo:hi])
			if err := g.send(rank, chunkMsg{idx: c, data: out}); err != nil {
				return err
			}
			continue
		}
		m, err := g.recv(rank)
		if err != nil {
			return err
		}
		mlo, mhi := bounds(len(vec), g.n, m.idx)
		if mhi-mlo != len(m.data) {
			return fmt.Errorf("collective: broadcast chunk %d size mismatch at rank %d", m.idx, rank)
		}
		copy(vec[mlo:mhi], m.data)
		if pos != last {
			if err := g.send(rank, m); err != nil {
				return err
			}
		}
	}
	return nil
}
