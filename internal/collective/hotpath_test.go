package collective

import (
	"errors"
	"sync"
	"testing"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/racecheck"
	"github.com/elan-sys/elan/internal/telemetry"
)

// startRing launches ranks 1..n-1 looping AllReduce until the group closes,
// so the measured rank 0 always has ring partners.
func startRing(t *testing.T, g *Group, vecs [][]float64) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for r := 1; r < g.Size(); r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := g.AllReduce(r, vecs[r]); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("rank %d: %v", r, err)
					}
					return
				}
			}
		}()
	}
	return &wg
}

// TestAllReduceZeroAllocs is the tentpole proof for the collective layer:
// once every rank's scratch arena is primed, a bare (un-instrumented) ring
// allreduce allocates nothing. AllocsPerRun counts mallocs process-wide, so
// the measurement covers all four ranks, not just the caller.
func TestAllReduceZeroAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates; alloc guards run in the non-race CI job")
	}
	const n, size = 4, 4096
	g, err := NewGroup(n)
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([][]float64, n)
	for r := range vecs {
		vecs[r] = make([]float64, size)
	}
	wg := startRing(t, g, vecs)
	for i := 0; i < 3; i++ { // prime every rank's arena
		if err := g.AllReduce(0, vecs[0]); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := g.AllReduce(0, vecs[0]); err != nil {
			t.Fatal(err)
		}
	})
	g.Close()
	wg.Wait()
	if avg != 0 {
		t.Fatalf("%v allocs per allreduce, want 0", avg)
	}
}

// TestHierAllReduceZeroAllocs extends the zero-alloc guarantee to the
// two-tier engine: leaders absorb and pay back member buffers within each
// call, so once the arenas and free-list stacks reach their high-water
// marks (first calls), a hierarchical allreduce allocates nothing.
// AllocsPerRun counts mallocs process-wide, so members, leaders and the
// leader ring are all covered.
func TestHierAllReduceZeroAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates; alloc guards run in the non-race CI job")
	}
	const size = 4096
	topo, err := NewClustered(placement(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGroupWithTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Hierarchical() {
		t.Fatal("2x4 placement should be hierarchical")
	}
	n := g.Size()
	vecs := make([][]float64, n)
	for r := range vecs {
		vecs[r] = make([]float64, size)
	}
	wg := startRing(t, g, vecs)
	for i := 0; i < 3; i++ { // prime arenas and free-list high-water marks
		if err := g.AllReduce(0, vecs[0]); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := g.AllReduce(0, vecs[0]); err != nil {
			t.Fatal(err)
		}
	})
	g.Close()
	wg.Wait()
	if avg != 0 {
		t.Fatalf("%v allocs per hierarchical allreduce, want 0", avg)
	}
}

// TestScratchArenaSurvivesSizeChanges runs alternating vector lengths
// through one group: the arena must re-prime for larger chunks and keep
// producing correct sums.
func TestScratchArenaSurvivesSizeChanges(t *testing.T) {
	const n = 3
	g, err := NewGroup(n)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, size := range []int{7, 1024, 7, 31, 4096, 1} {
		var wg sync.WaitGroup
		errs := make([]error, n)
		vecs := make([][]float64, n)
		for r := 0; r < n; r++ {
			vecs[r] = make([]float64, size)
			for i := range vecs[r] {
				vecs[r][i] = float64(r + i)
			}
		}
		for r := 0; r < n; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[r] = g.AllReduce(r, vecs[r])
			}()
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("size %d rank %d: %v", size, r, err)
			}
		}
		for r := 0; r < n; r++ {
			for i := range vecs[r] {
				want := float64(n*i + (n-1)*n/2) // sum over ranks of (r+i)
				if vecs[r][i] != want {
					t.Fatalf("size %d rank %d elem %d: %v, want %v", size, r, i, vecs[r][i], want)
				}
			}
		}
	}
}

// TestInstrumentedGroupRecords checks the SetTelemetry path: the same
// allreduce math, plus spans and metrics.
func TestInstrumentedGroupRecords(t *testing.T) {
	const n = 2
	g, err := NewGroup(n)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(clock.Wall{}, 16)
	g.SetTelemetry(rec, reg, clock.Wall{}, "inproc")
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			vec := []float64{float64(r), 1}
			if err := g.AllReduce(r, vec); err != nil {
				t.Errorf("rank %d: %v", r, err)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("collective_allreduce_total").Value(); got != n {
		t.Fatalf("allreduce counter %d, want %d", got, n)
	}
	if got := reg.Counter("collective_allreduce_elements_total").Value(); got != 2*n {
		t.Fatalf("elements counter %d, want %d", got, 2*n)
	}
	if got := rec.Len(); got != n {
		t.Fatalf("%d spans, want %d", got, n)
	}
}

// BenchmarkAllReduceBare measures the un-instrumented fast path; with the
// scratch arenas warm it reports 0 allocs/op.
func BenchmarkAllReduceBare4x64k(b *testing.B) {
	const n, size = 4, 1 << 16
	g, err := NewGroup(n)
	if err != nil {
		b.Fatal(err)
	}
	vecs := make([][]float64, n)
	for r := range vecs {
		vecs[r] = make([]float64, size)
	}
	var wg sync.WaitGroup
	for r := 1; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := g.AllReduce(r, vecs[r]); err != nil {
					return
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		if err := g.AllReduce(0, vecs[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.SetBytes(int64(size * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.AllReduce(0, vecs[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	g.Close()
	wg.Wait()
}

// BenchmarkAllReduceHier2x4x64k is the hierarchical counterpart of the bare
// flat benchmark: same payload, 8 ranks placed 4+4 across two nodes.
func BenchmarkAllReduceHier2x4x64k(b *testing.B) {
	const size = 1 << 16
	topo, err := NewClustered(placement(4, 4))
	if err != nil {
		b.Fatal(err)
	}
	g, err := NewGroupWithTopology(topo)
	if err != nil {
		b.Fatal(err)
	}
	n := g.Size()
	vecs := make([][]float64, n)
	for r := range vecs {
		vecs[r] = make([]float64, size)
	}
	var wg sync.WaitGroup
	for r := 1; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := g.AllReduce(r, vecs[r]); err != nil {
					return
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		if err := g.AllReduce(0, vecs[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.SetBytes(int64(size * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.AllReduce(0, vecs[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	g.Close()
	wg.Wait()
}
