package collective

import "fmt"

// ReferenceAllReduce computes the allreduce of vecs (vecs[r] is rank r's
// input) sequentially, in the exact accumulation order the group engines
// produce for topology t. It is the executable specification the
// differential tests hold both engines to, bit for bit:
//
//   - Within a node group of g members, element e falls in chunk
//     c = chunkOf(e, g); its node partial is the left fold of the members'
//     values in ascending position order starting at position c (the
//     rotated k-ascending order of the ring reduce-scatter, where chunk
//     c's partial sum starts at position c and travels the ring).
//   - Across m node groups, element e falls in leader chunk t = chunkOf(e,
//     m); the global sum is the left fold of the node partials in
//     ascending node order starting at node t — the same rotated order,
//     one level up.
//
// With a single node group the outer fold is the identity and the inner
// fold is exactly the flat ring's order, so one reference specifies both
// engines. IEEE-754 addition is commutative (each engine step adds the
// same two operands the reference adds, possibly swapped), so equality is
// exact even for non-associative inputs — with the one caveat that when
// both operands are NaNs with different payloads the hardware's payload
// choice is operand-order dependent; the differential tests therefore use
// a single canonical NaN payload.
func ReferenceAllReduce(t Topology, vecs [][]float64) ([]float64, error) {
	n := t.Ranks()
	if len(vecs) != n {
		return nil, fmt.Errorf("collective: reference got %d vectors for %d ranks", len(vecs), n)
	}
	if n == 0 {
		return nil, fmt.Errorf("collective: reference on empty topology")
	}
	L := len(vecs[0])
	for r, v := range vecs {
		if len(v) != L {
			return nil, fmt.Errorf("collective: reference rank %d vector length %d, want %d", r, len(v), L)
		}
	}
	lay := layoutOf(t)

	partials := make([][]float64, len(lay.nodes))
	for j, members := range lay.nodes {
		gn := len(members)
		p := make([]float64, L)
		if gn == 1 {
			copy(p, vecs[members[0]])
		} else {
			for c := 0; c < gn; c++ {
				lo, hi := bounds(L, gn, c)
				for e := lo; e < hi; e++ {
					acc := vecs[members[c]][e]
					for s := 1; s < gn; s++ {
						acc += vecs[members[(c+s)%gn]][e]
					}
					p[e] = acc
				}
			}
		}
		partials[j] = p
	}

	m := len(partials)
	out := make([]float64, L)
	if m == 1 {
		copy(out, partials[0])
		return out, nil
	}
	for c := 0; c < m; c++ {
		lo, hi := bounds(L, m, c)
		for e := lo; e < hi; e++ {
			acc := partials[c][e]
			for s := 1; s < m; s++ {
				acc += partials[(c+s)%m][e]
			}
			out[e] = acc
		}
	}
	return out, nil
}
