package collective

import (
	"fmt"

	"github.com/elan-sys/elan/internal/topology"
)

// Topology tells a communication group where its ranks live: which GPU
// hosts each rank and what link level connects any two of them. The group
// uses it to pick a reduction structure — a single flat ring when every
// rank shares a node, a two-tier hierarchy (intra-node rings at L1/L2, a
// leader ring at L4) when the placement spans nodes — and to tag telemetry
// spans with the link levels each stage traverses.
//
// Implementations must be immutable after construction: the elastic runtime
// rebuilds the group (with a fresh Topology) on every resource adjustment
// rather than mutating one in place.
type Topology interface {
	// Ranks returns the number of ranks in the group.
	Ranks() int
	// Placement returns the GPU hosting a rank, for rank in [0, Ranks()).
	Placement(rank int) topology.GPUID
	// Level classifies the link between two ranks' GPUs.
	Level(a, b int) topology.LinkLevel
}

// Flat is the degenerate single-node topology: all ranks share one PCIe
// switch, so every pair is L1 and the group runs the classic flat ring.
// It preserves the exact behavior (and bit-exact reduction order) of groups
// built with NewGroup, which is defined as NewGroupWithTopology(Flat(n)).
type Flat int

// Ranks returns the group size.
func (f Flat) Ranks() int { return int(f) }

// Placement puts every rank on node 0, switch 0 — one GPU per rank index.
func (f Flat) Placement(rank int) topology.GPUID {
	return topology.GPUID{Node: 0, Socket: 0, Switch: 0, Index: rank}
}

// Level is L1 for every pair: the flat topology models co-located ranks.
func (f Flat) Level(a, b int) topology.LinkLevel { return topology.L1 }

// Clustered is a Topology backed by a concrete GPU placement on a
// topology.Cluster-shaped hardware tree: rank r runs on place[r]. Link
// levels come from the hardware tree structure (topology.Link), so a
// placement spanning nodes yields a hierarchical group.
type Clustered struct {
	place []topology.GPUID
}

// NewClustered builds a Topology from a rank→GPU placement. The placement
// must be non-empty and free of duplicates (two ranks cannot share a GPU).
func NewClustered(place []topology.GPUID) (*Clustered, error) {
	if len(place) == 0 {
		return nil, fmt.Errorf("collective: empty placement")
	}
	seen := make(map[topology.GPUID]bool, len(place))
	for _, id := range place {
		if seen[id] {
			return nil, fmt.Errorf("collective: GPU %v placed twice", id)
		}
		seen[id] = true
	}
	c := &Clustered{place: make([]topology.GPUID, len(place))}
	copy(c.place, place)
	return c, nil
}

// Ranks returns the group size.
func (c *Clustered) Ranks() int { return len(c.place) }

// Placement returns the GPU hosting a rank.
func (c *Clustered) Placement(rank int) topology.GPUID { return c.place[rank] }

// Level classifies the link between two ranks from the hardware tree.
func (c *Clustered) Level(a, b int) topology.LinkLevel {
	return topology.Link(c.place[a], c.place[b])
}

// LinkLabelOf names the widest link a topology's reduction traffic must
// cross ("L1".."L4") — the label attached to the group's allreduce spans.
func LinkLabelOf(t Topology) string {
	n := t.Ranks()
	worst := topology.L1
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if l := t.Level(a, b); l > worst {
				worst = l
			}
		}
	}
	return worst.String()
}

// hierLayout is the group-construction-time decomposition of a topology
// into node groups: the structure both the hierarchical engine and the
// sequential reference execute, and therefore the definition of the
// reduction order.
type hierLayout struct {
	// nodes[j] lists the ranks of node group j in ascending rank order;
	// node groups are ordered by ascending node id. nodes[j][0] is the
	// node's leader.
	nodes [][]int
	// nodeOf[r] is the node-group index of rank r; memIdx[r] its position
	// within nodes[nodeOf[r]].
	nodeOf []int
	memIdx []int
	// leaders[j] == nodes[j][0], kept as a slice so the leader ring can run
	// the same ring engine as the intra-node rings.
	leaders []int
	// minMulti is the smallest member count among multi-member node groups
	// (0 if every node holds a single rank). Together with the node count it
	// bounds the largest chunk any stage of the hierarchy sends, which is
	// what the scratch arenas must be primed for.
	minMulti int
	// intraLevel is the widest link inside any node group; leaderLevel the
	// widest link between any two leaders. Telemetry tags.
	intraLevel  topology.LinkLevel
	leaderLevel topology.LinkLevel
}

// layoutOf decomposes a topology into the hierarchical layout. A topology
// whose placement occupies a single node (or a single rank) yields a
// one-group layout, which the group executes as the classic flat ring.
func layoutOf(t Topology) *hierLayout {
	n := t.Ranks()
	byNode := make(map[int][]int)
	var nodeIDs []int
	for r := 0; r < n; r++ {
		id := t.Placement(r).Node
		if _, ok := byNode[id]; !ok {
			nodeIDs = append(nodeIDs, id)
		}
		byNode[id] = append(byNode[id], r)
	}
	// Ascending node id; ranks were appended in ascending order already.
	for i := 1; i < len(nodeIDs); i++ {
		for j := i; j > 0 && nodeIDs[j] < nodeIDs[j-1]; j-- {
			nodeIDs[j], nodeIDs[j-1] = nodeIDs[j-1], nodeIDs[j]
		}
	}
	lay := &hierLayout{
		nodeOf:      make([]int, n),
		memIdx:      make([]int, n),
		intraLevel:  topology.L1,
		leaderLevel: topology.L1,
	}
	for j, id := range nodeIDs {
		members := byNode[id]
		lay.nodes = append(lay.nodes, members)
		lay.leaders = append(lay.leaders, members[0])
		if len(members) > 1 && (lay.minMulti == 0 || len(members) < lay.minMulti) {
			lay.minMulti = len(members)
		}
		for k, r := range members {
			lay.nodeOf[r] = j
			lay.memIdx[r] = k
			for _, other := range members[:k] {
				if l := t.Level(other, r); l > lay.intraLevel {
					lay.intraLevel = l
				}
			}
		}
	}
	for j := 1; j < len(lay.nodes); j++ {
		for i := 0; i < j; i++ {
			if l := t.Level(lay.nodes[i][0], lay.nodes[j][0]); l > lay.leaderLevel {
				lay.leaderLevel = l
			}
		}
	}
	return lay
}

// bounds returns the [lo, hi) range of part idx when total elements are
// split into parts pieces, the first (total % parts) pieces one element
// larger — the chunking used by every ring and by the leader exchange.
func bounds(total, parts, idx int) (int, int) {
	base := total / parts
	rem := total % parts
	lo := idx*base + min(idx, rem)
	size := base
	if idx < rem {
		size++
	}
	return lo, lo + size
}
