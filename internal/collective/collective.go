// Package collective implements the collective communication used by
// data-parallel training: a real ring allreduce across in-process workers
// (goroutines connected by channels), plus group construction and
// reconstruction, which the elastic runtime performs after every resource
// adjustment (Section II, step 5).
//
// The allreduce is the textbook two-phase ring: a reduce-scatter of N chunks
// over N-1 steps followed by an allgather over N-1 steps. Each rank runs in
// its own goroutine, so the gradient math of the pure-Go training substrate
// is genuinely distributed rather than simulated.
package collective

import (
	"errors"
	"fmt"
	"sync"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/telemetry"
)

// ErrClosed is returned when operating on a closed group.
var ErrClosed = errors.New("collective: group closed")

type chunkMsg struct {
	idx  int
	data []float64
}

// rankScratch is one rank's double-buffered chunk arena for the ring
// allreduce. Ownership protocol: a send hands the buffer to the successor
// for good (the channel send is the transfer point), and every receive
// deposits the incoming buffer into the receiver's arena for its next
// send. Buffers therefore migrate around the ring — what ping-pongs is the
// arena slot, not a fixed buffer — and no rank ever writes a buffer its
// neighbor might still be reading. Each step performs one withdrawal and
// one deposit, so after ensure primes the two halves the arena never
// allocates again for that vector size.
type rankScratch struct {
	free   [2][]float64
	n      int
	capPer int
}

// ensure sizes both halves for chunks of up to maxChunk elements. Sized at
// first use (and re-sized only if a later allreduce needs larger chunks);
// migrated buffers from other ranks are interchangeable because every rank
// primes to the same maxChunk.
func (s *rankScratch) ensure(maxChunk int) {
	if s.capPer >= maxChunk {
		return
	}
	s.free[0] = make([]float64, maxChunk)
	s.free[1] = make([]float64, maxChunk)
	s.n = 2
	s.capPer = maxChunk
}

// get withdraws a buffer of length need, allocating only if the arena was
// drained by a prior error path.
func (s *rankScratch) get(need int) []float64 {
	if s.n > 0 {
		s.n--
		b := s.free[s.n]
		s.free[s.n] = nil
		if cap(b) >= need {
			return b[:need]
		}
	}
	return make([]float64, need)
}

// put deposits a buffer received from the ring predecessor.
func (s *rankScratch) put(b []float64) {
	if s.n < len(s.free) {
		s.free[s.n] = b
		s.n++
	}
}

// Group is a communication group of n ranks. All ranks must call AllReduce
// (or Barrier) collectively; the calls block until the collective completes.
// A Group is safe for concurrent use by its n member goroutines.
type Group struct {
	n int
	// ring[i] carries messages from rank i to rank (i+1)%n.
	ring []chan chunkMsg
	// barrier support
	barrierMu  sync.Mutex
	barrierN   int
	barrierGen int
	barrierC   *sync.Cond

	closeOnce sync.Once
	closed    chan struct{}

	// scratch[r] is rank r's chunk arena, touched only by that rank's
	// goroutine.
	scratch []rankScratch

	// Telemetry (SetTelemetry); an un-instrumented group takes the
	// AllReduce fast path and records nothing at zero cost.
	instrumented bool
	tr           telemetry.Tracer
	clk          clock.Clock
	link         string
	mOps         *telemetry.Counter
	mSeconds     *telemetry.Histogram
	mElements    *telemetry.Counter
}

// NewGroup constructs a communication group with n ranks.
func NewGroup(n int) (*Group, error) {
	if n <= 0 {
		return nil, fmt.Errorf("collective: non-positive group size %d", n)
	}
	g := &Group{
		n:       n,
		ring:    make([]chan chunkMsg, n),
		closed:  make(chan struct{}),
		scratch: make([]rankScratch, n),
		tr:      telemetry.Nop{},
	}
	for i := range g.ring {
		g.ring[i] = make(chan chunkMsg, 1)
	}
	g.barrierC = sync.NewCond(&g.barrierMu)
	return g, nil
}

// SetTelemetry attaches tracing and metrics to the group: every AllReduce
// records one span per rank tagged with the link level, rank, vector
// length, group size and chunk size — the shape of the paper's allreduce
// cost-by-link-level accounting (Section IV). link labels the closest
// common link of the group's placement (topology.LinkLevel.String(), or
// "inproc" for the in-process goroutine substrate). Call before handing
// the group to its ranks; the elastic runtime re-attaches after every
// group reconstruction. Nil tracer/registry components stay disabled.
func (g *Group) SetTelemetry(tr telemetry.Tracer, reg *telemetry.Registry, clk clock.Clock, link string) {
	g.instrumented = true
	g.tr = telemetry.OrNop(tr)
	if clk == nil {
		clk = clock.Wall{}
	}
	g.clk = clk
	g.link = link
	g.mOps = reg.Counter("collective_allreduce_total")
	g.mSeconds = reg.Histogram("collective_allreduce_seconds")
	g.mElements = reg.Counter("collective_allreduce_elements_total")
}

// Size returns the number of ranks.
func (g *Group) Size() int { return g.n }

// Close aborts pending collectives; blocked ranks return ErrClosed.
func (g *Group) Close() {
	g.closeOnce.Do(func() {
		close(g.closed)
		g.barrierMu.Lock()
		g.barrierGen++
		g.barrierN = 0
		g.barrierC.Broadcast()
		g.barrierMu.Unlock()
	})
}

func (g *Group) send(from int, msg chunkMsg) error {
	select {
	case g.ring[from] <- msg:
		return nil
	case <-g.closed:
		return ErrClosed
	}
}

func (g *Group) recv(to int) (chunkMsg, error) {
	from := (to - 1 + g.n) % g.n
	select {
	case m := <-g.ring[from]:
		return m, nil
	case <-g.closed:
		return chunkMsg{}, ErrClosed
	}
}

// chunkBounds returns the [lo, hi) range of chunk idx for a vector of length
// total split into g.n chunks.
func (g *Group) chunkBounds(total, idx int) (int, int) {
	base := total / g.n
	rem := total % g.n
	lo := idx*base + min(idx, rem)
	size := base
	if idx < rem {
		size++
	}
	return lo, lo + size
}

// AllReduce sums vec elementwise across all ranks, in place. Every rank must
// call it with a vector of identical length; on return every rank holds the
// global sum. rank identifies the caller in [0, n). A group that never had
// SetTelemetry attached runs the bare ring with zero instrumentation cost
// and zero steady-state allocations.
func (g *Group) AllReduce(rank int, vec []float64) error {
	if !g.instrumented {
		return g.allReduce(rank, vec)
	}
	span := g.tr.StartSpan("collective.allreduce")
	span.Annotate("link", g.link)
	span.AnnotateInt("rank", rank)
	span.AnnotateInt("ranks", g.n)
	span.AnnotateInt("elements", len(vec))
	span.AnnotateInt("chunk", (len(vec)+g.n-1)/g.n)
	start := g.clk.Now()
	err := g.allReduce(rank, vec)
	g.mSeconds.Observe(g.clk.Since(start).Seconds())
	g.mOps.Inc()
	g.mElements.Add(int64(len(vec)))
	if err != nil {
		span.Annotate("error", err.Error())
	}
	span.End()
	return err
}

// allReduce is the uninstrumented two-phase ring. Outgoing chunks are
// copied into recycled arena buffers (see rankScratch) instead of fresh
// allocations: the send transfers buffer ownership to the successor rank
// and each receive deposits the predecessor's buffer for reuse.
func (g *Group) allReduce(rank int, vec []float64) error {
	if rank < 0 || rank >= g.n {
		return fmt.Errorf("collective: rank %d out of [0, %d)", rank, g.n)
	}
	if g.n == 1 {
		return nil
	}
	n := g.n
	maxChunk := len(vec) / n
	if len(vec)%n != 0 {
		maxChunk++
	}
	sc := &g.scratch[rank]
	sc.ensure(maxChunk)
	// Phase 1: reduce-scatter. At step s (0-based), rank r sends chunk
	// (r-s) mod n and receives chunk (r-s-1) mod n, accumulating into it.
	for s := 0; s < n-1; s++ {
		sendIdx := ((rank-s)%n + n) % n
		lo, hi := g.chunkBounds(len(vec), sendIdx)
		out := sc.get(hi - lo)
		copy(out, vec[lo:hi])
		if err := g.send(rank, chunkMsg{idx: sendIdx, data: out}); err != nil {
			return err
		}
		m, err := g.recv(rank)
		if err != nil {
			return err
		}
		lo, hi = g.chunkBounds(len(vec), m.idx)
		if hi-lo != len(m.data) {
			return fmt.Errorf("collective: rank %d got chunk %d of %d values, want %d (vector length mismatch across ranks?)",
				rank, m.idx, len(m.data), hi-lo)
		}
		for i, v := range m.data {
			vec[lo+i] += v
		}
		sc.put(m.data)
	}
	// Phase 2: allgather. At step s, rank r sends chunk (r+1-s) mod n and
	// receives chunk (r-s) mod n, overwriting it.
	for s := 0; s < n-1; s++ {
		sendIdx := ((rank+1-s)%n + n) % n
		lo, hi := g.chunkBounds(len(vec), sendIdx)
		out := sc.get(hi - lo)
		copy(out, vec[lo:hi])
		if err := g.send(rank, chunkMsg{idx: sendIdx, data: out}); err != nil {
			return err
		}
		m, err := g.recv(rank)
		if err != nil {
			return err
		}
		lo, hi = g.chunkBounds(len(vec), m.idx)
		if hi-lo != len(m.data) {
			return fmt.Errorf("collective: rank %d allgather chunk %d size mismatch", rank, m.idx)
		}
		copy(vec[lo:hi], m.data)
		sc.put(m.data)
	}
	return nil
}

// AllReduceMean is AllReduce followed by dividing by the group size, which
// is how data-parallel training averages gradients.
func (g *Group) AllReduceMean(rank int, vec []float64) error {
	if err := g.AllReduce(rank, vec); err != nil {
		return err
	}
	inv := 1 / float64(g.n)
	for i := range vec {
		vec[i] *= inv
	}
	return nil
}

// Barrier blocks until all n ranks have called it.
func (g *Group) Barrier() error {
	g.barrierMu.Lock()
	defer g.barrierMu.Unlock()
	select {
	case <-g.closed:
		return ErrClosed
	default:
	}
	gen := g.barrierGen
	g.barrierN++
	if g.barrierN == g.n {
		g.barrierN = 0
		g.barrierGen++
		g.barrierC.Broadcast()
		return nil
	}
	for gen == g.barrierGen {
		g.barrierC.Wait()
		select {
		case <-g.closed:
			return ErrClosed
		default:
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
