// Package collective implements the collective communication used by
// data-parallel training: a real ring allreduce across in-process workers
// (goroutines connected by channels), plus group construction and
// reconstruction, which the elastic runtime performs after every resource
// adjustment (Section II, step 5).
//
// Groups are topology-aware. A flat placement (every rank on one node) runs
// the textbook two-phase ring: a reduce-scatter of N chunks over N-1 steps
// followed by an allgather over N-1 steps. A placement spanning nodes runs
// the two-tier hierarchy of hierarchical.go: intra-node rings at L1/L2 plus
// a single cross-node leader ring at L4, so only node leaders pay the
// slowest-link price. Each rank runs in its own goroutine, so the gradient
// math of the pure-Go training substrate is genuinely distributed rather
// than simulated.
package collective

import (
	"errors"
	"fmt"
	"sync"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/telemetry"
)

// ErrClosed is returned when operating on a closed group.
var ErrClosed = errors.New("collective: group closed")

type chunkMsg struct {
	idx  int
	data []float64
}

// rankScratch is one rank's chunk arena for the ring stages. Ownership
// protocol: a send hands the buffer to the receiver for good (the channel
// send is the transfer point), and every receive deposits the incoming
// buffer into the receiver's arena for its next send. Buffers therefore
// migrate around the group — what cycles is the arena slot, not a fixed
// buffer — and no rank ever writes a buffer its neighbor might still be
// reading. The free list is a dynamic stack because the hierarchical path
// is unbalanced within a call: a node leader absorbs one buffer per member
// during the gather stage and pays them all back during the scatter stage,
// so its pool transiently holds up to g+1 buffers. Once the stack has grown
// to the protocol's high-water mark (first call), steady state performs one
// withdrawal per deposit and never allocates.
type rankScratch struct {
	free   [][]float64
	capPer int
}

// ensure primes the arena for chunks of up to maxChunk elements. Sized at
// first use (and re-sized only if a later allreduce needs larger chunks);
// migrated buffers from other ranks are interchangeable because every rank
// primes to the same maxChunk.
//
//elan:hotpath
func (s *rankScratch) ensure(maxChunk int) {
	if s.capPer >= maxChunk {
		return
	}
	for i := range s.free {
		s.free[i] = nil
	}
	s.free = s.free[:0]
	s.free = append(s.free, make([]float64, maxChunk), make([]float64, maxChunk)) //elan:vet-allow hotpathalloc — first-use workspace priming; steady state reuses it
	s.capPer = maxChunk
}

// get withdraws a buffer of length need, allocating only if the arena was
// drained by a prior error path. Undersized buffers (migrants primed before
// a re-size) are dropped rather than returned.
//
//elan:hotpath
func (s *rankScratch) get(need int) []float64 {
	for len(s.free) > 0 {
		b := s.free[len(s.free)-1]
		s.free[len(s.free)-1] = nil
		s.free = s.free[:len(s.free)-1]
		if cap(b) >= need {
			return b[:need]
		}
	}
	return make([]float64, need) //elan:vet-allow hotpathalloc — refill after the arena was drained by a peer error path; balanced steady state never hits it
}

// put deposits a buffer received from a peer.
//
//elan:hotpath
func (s *rankScratch) put(b []float64) {
	s.free = append(s.free, b)
}

// Group is a communication group of n ranks. All ranks must call AllReduce
// (or Barrier) collectively; the calls block until the collective completes.
// A Group is safe for concurrent use by its n member goroutines.
type Group struct {
	n int
	// ring[i] carries messages from rank i to rank (i+1)%n: the channel
	// fabric of the flat ring and of Broadcast.
	ring []chan chunkMsg
	// pair[a][b] carries messages from rank a to rank b. The global ring
	// edges alias ring[a]; hierarchical groups add the extra directed edges
	// their stages use (intra-node rings, member<->leader, leader ring).
	// Unused edges stay nil.
	pair [][]chan chunkMsg
	// allRanks is [0, 1, ..., n-1]: the member list of the flat ring.
	allRanks []int
	// lay is the two-tier decomposition of the group's topology, nil when
	// the placement fits one node and the group runs the flat ring.
	lay *hierLayout

	// barrier support
	barrierMu  sync.Mutex
	barrierN   int
	barrierGen int
	barrierC   *sync.Cond

	closeOnce sync.Once
	closed    chan struct{}

	// scratch[r] is rank r's chunk arena, touched only by that rank's
	// goroutine.
	scratch []rankScratch

	// Telemetry (SetTelemetry); an un-instrumented group takes the
	// AllReduce fast path and records nothing at zero cost.
	instrumented bool
	tr           telemetry.Tracer
	clk          clock.Clock
	link         string
	mOps         *telemetry.Counter
	mSeconds     *telemetry.Histogram
	mElements    *telemetry.Counter
}

// NewGroup constructs a communication group with n ranks on the flat
// single-node topology: NewGroupWithTopology(Flat(n)).
func NewGroup(n int) (*Group, error) {
	if n <= 0 {
		return nil, fmt.Errorf("collective: non-positive group size %d", n)
	}
	return NewGroupWithTopology(Flat(n))
}

// NewGroupWithTopology constructs a communication group whose reduction
// structure matches the placement described by t. A single-node placement
// yields the classic flat ring, bit-for-bit identical to NewGroup; a
// placement spanning nodes yields the two-tier hierarchical engine. The
// reduction order of either engine is specified executably by
// ReferenceAllReduce.
func NewGroupWithTopology(t Topology) (*Group, error) {
	n := t.Ranks()
	if n <= 0 {
		return nil, fmt.Errorf("collective: non-positive group size %d", n)
	}
	g := &Group{
		n:        n,
		ring:     make([]chan chunkMsg, n),
		pair:     make([][]chan chunkMsg, n),
		allRanks: make([]int, n),
		closed:   make(chan struct{}),
		scratch:  make([]rankScratch, n),
		tr:       telemetry.Nop{},
	}
	for i := range g.ring {
		g.ring[i] = make(chan chunkMsg, 1)
		g.pair[i] = make([]chan chunkMsg, n)
		g.pair[i][(i+1)%n] = g.ring[i]
		g.allRanks[i] = i
	}
	g.barrierC = sync.NewCond(&g.barrierMu)
	if lay := layoutOf(t); len(lay.nodes) > 1 {
		g.lay = lay
		g.wireHierEdges(lay)
	}
	return g, nil
}

// wireHierEdges creates the directed channels the hierarchical stages use
// beyond the global ring: each node's intra ring, each member's two edges
// to its leader, and the leader ring. Edges that coincide with a global
// ring edge reuse it.
func (g *Group) wireHierEdges(lay *hierLayout) {
	edge := func(a, b int) {
		if g.pair[a][b] == nil {
			g.pair[a][b] = make(chan chunkMsg, 1)
		}
	}
	for _, members := range lay.nodes {
		gn := len(members)
		if gn == 1 {
			continue
		}
		leader := members[0]
		for k, r := range members {
			edge(r, members[(k+1)%gn])
			if r != leader {
				edge(r, leader)
				edge(leader, r)
			}
		}
	}
	m := len(lay.leaders)
	for j, l := range lay.leaders {
		edge(l, lay.leaders[(j+1)%m])
	}
}

// SetTelemetry attaches tracing and metrics to the group: every AllReduce
// records one span per rank tagged with the link level, rank, vector
// length, group size and chunk size — the shape of the paper's allreduce
// cost-by-link-level accounting (Section IV). link labels the closest
// common link of the group's placement (topology.LinkLevel.String(), or
// "inproc" for the in-process goroutine substrate). Call before handing
// the group to its ranks; the elastic runtime re-attaches after every
// group reconstruction. Nil tracer/registry components stay disabled.
func (g *Group) SetTelemetry(tr telemetry.Tracer, reg *telemetry.Registry, clk clock.Clock, link string) {
	g.instrumented = true
	g.tr = telemetry.OrNop(tr)
	if clk == nil {
		clk = clock.Wall{}
	}
	g.clk = clk
	g.link = link
	g.mOps = reg.Counter("collective_allreduce_total")
	g.mSeconds = reg.Histogram("collective_allreduce_seconds")
	g.mElements = reg.Counter("collective_allreduce_elements_total")
}

// Tracer returns the group's tracer (Nop until SetTelemetry attaches one),
// so per-rank callers — the ddp reducer, the worker agents — can open spans
// on the same recorder the allreduce spans land in.
func (g *Group) Tracer() telemetry.Tracer {
	if !g.instrumented {
		return telemetry.Nop{}
	}
	return g.tr
}

// Size returns the number of ranks.
func (g *Group) Size() int { return g.n }

// Hierarchical reports whether the group runs the two-tier engine (true
// exactly when its topology spans more than one node).
func (g *Group) Hierarchical() bool { return g.lay != nil }

// Close aborts pending collectives; blocked ranks return ErrClosed.
func (g *Group) Close() {
	g.closeOnce.Do(func() {
		close(g.closed)
		g.barrierMu.Lock()
		g.barrierGen++
		g.barrierN = 0
		g.barrierC.Broadcast()
		g.barrierMu.Unlock()
	})
}

// sendTo delivers msg on the directed edge from -> to.
//
//elan:hotpath
func (g *Group) sendTo(from, to int, msg chunkMsg) error {
	select {
	case g.pair[from][to] <- msg:
		return nil
	case <-g.closed:
		return ErrClosed
	}
}

// recvFrom receives the next message on the directed edge from -> to.
//
//elan:hotpath
func (g *Group) recvFrom(from, to int) (chunkMsg, error) {
	select {
	case m := <-g.pair[from][to]:
		return m, nil
	case <-g.closed:
		return chunkMsg{}, ErrClosed
	}
}

//elan:hotpath
func (g *Group) send(from int, msg chunkMsg) error {
	return g.sendTo(from, (from+1)%g.n, msg)
}

//elan:hotpath
func (g *Group) recv(to int) (chunkMsg, error) {
	return g.recvFrom((to-1+g.n)%g.n, to)
}

// AllReduce sums vec elementwise across all ranks, in place. Every rank must
// call it with a vector of identical length; on return every rank holds the
// global sum. rank identifies the caller in [0, n). A group that never had
// SetTelemetry attached runs the bare engine with zero instrumentation cost
// and zero steady-state allocations.
//
//elan:hotpath
func (g *Group) AllReduce(rank int, vec []float64) error {
	return g.allReduceTagged(telemetry.TraceContext{}, rank, vec, -1)
}

// AllReduceBucket is AllReduce for one gradient bucket: identical reduction,
// but the telemetry span additionally carries the bucket index so overlap
// schedules can be read off the trace. bucket must be >= 0.
func (g *Group) AllReduceBucket(rank int, vec []float64, bucket int) error {
	return g.allReduceTagged(telemetry.TraceContext{}, rank, vec, bucket)
}

// AllReduceBucketFrom is AllReduceBucket with a causal parent: the span
// becomes a remote child of the given trace context (typically the rank's
// step span), so overlapped reductions render inside the step that issued
// them instead of as disconnected roots. A zero parent behaves exactly like
// AllReduceBucket.
func (g *Group) AllReduceBucketFrom(parent telemetry.TraceContext, rank int, vec []float64, bucket int) error {
	return g.allReduceTagged(parent, rank, vec, bucket)
}

func (g *Group) allReduceTagged(parent telemetry.TraceContext, rank int, vec []float64, bucket int) error {
	if !g.instrumented {
		return g.reduce(rank, vec)
	}
	var span *telemetry.Span
	if parent.Valid() {
		span = telemetry.StartRemote(g.tr, "collective.allreduce", parent)
	} else {
		span = g.tr.StartSpan("collective.allreduce")
	}
	span.Annotate("link", g.link)
	span.AnnotateInt("rank", rank)
	span.AnnotateInt("ranks", g.n)
	span.AnnotateInt("elements", len(vec))
	span.AnnotateInt("chunk", (len(vec)+g.n-1)/g.n)
	if bucket >= 0 {
		span.AnnotateInt("bucket", bucket)
	}
	if g.lay != nil {
		span.Annotate("intra_link", g.lay.intraLevel.String())
		span.Annotate("leader_link", g.lay.leaderLevel.String())
		span.AnnotateInt("nodes", len(g.lay.nodes))
	}
	start := g.clk.Now()
	err := g.reduce(rank, vec)
	g.mSeconds.Observe(g.clk.Since(start).Seconds())
	g.mOps.Inc()
	g.mElements.Add(int64(len(vec)))
	if err != nil {
		span.Annotate("error", err.Error())
	}
	span.End()
	return err
}

// reduce dispatches to the engine matching the group's topology.
//
//elan:hotpath
func (g *Group) reduce(rank int, vec []float64) error {
	if rank < 0 || rank >= g.n {
		return fmt.Errorf("collective: rank %d out of [0, %d)", rank, g.n) //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
	}
	if g.n == 1 {
		return nil
	}
	if g.lay != nil {
		return g.hierAllReduce(rank, vec)
	}
	return g.flatAllReduce(rank, vec)
}

// flatAllReduce is the uninstrumented two-phase ring over all ranks.
// Outgoing chunks are copied into recycled arena buffers (see rankScratch)
// instead of fresh allocations: the send transfers buffer ownership to the
// successor rank and each receive deposits the predecessor's buffer for
// reuse.
//
//elan:hotpath
func (g *Group) flatAllReduce(rank int, vec []float64) error {
	g.scratch[rank].ensure(ceilDiv(len(vec), g.n))
	if err := g.ringReduceScatter(g.allRanks, rank, vec); err != nil {
		return err
	}
	return g.ringAllGather(g.allRanks, rank, vec)
}

// ringReduceScatter runs the reduce-scatter half of the ring over the ranks
// in members (len >= 2), with the caller at position pos, splitting vec
// into len(members) chunks. At step s (0-based), position p sends chunk
// (p-s) mod gn to its successor and receives chunk (p-s-1) mod gn from its
// predecessor, accumulating into it. On return, position p holds the fully
// reduced chunk (p+1) mod gn; chunk c's value is the left fold of the
// members' values in ascending position order starting at position c.
//
//elan:hotpath
func (g *Group) ringReduceScatter(members []int, pos int, vec []float64) error {
	gn := len(members)
	me := members[pos]
	succ := members[(pos+1)%gn]
	pred := members[(pos-1+gn)%gn]
	sc := &g.scratch[me]
	for s := 0; s < gn-1; s++ {
		sendIdx := ((pos-s)%gn + gn) % gn
		lo, hi := bounds(len(vec), gn, sendIdx)
		out := sc.get(hi - lo)
		copy(out, vec[lo:hi])
		if err := g.sendTo(me, succ, chunkMsg{idx: sendIdx, data: out}); err != nil {
			return err
		}
		m, err := g.recvFrom(pred, me)
		if err != nil {
			return err
		}
		lo, hi = bounds(len(vec), gn, m.idx)
		if hi-lo != len(m.data) {
			return fmt.Errorf("collective: rank %d got chunk %d of %d values, want %d (vector length mismatch across ranks?)", //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
				me, m.idx, len(m.data), hi-lo)
		}
		for i, v := range m.data {
			vec[lo+i] += v
		}
		sc.put(m.data)
	}
	return nil
}

// ringAllGather runs the allgather half of the ring over the ranks in
// members (len >= 2), with the caller at position pos. It requires the
// reduce-scatter ownership invariant: position p holds the final value of
// chunk (p+1) mod gn. At step s, position p sends chunk (p+1-s) mod gn and
// receives chunk (p-s) mod gn, overwriting it; after gn-1 steps every
// member holds every chunk.
//
//elan:hotpath
func (g *Group) ringAllGather(members []int, pos int, vec []float64) error {
	gn := len(members)
	me := members[pos]
	succ := members[(pos+1)%gn]
	pred := members[(pos-1+gn)%gn]
	sc := &g.scratch[me]
	for s := 0; s < gn-1; s++ {
		sendIdx := ((pos+1-s)%gn + gn) % gn
		lo, hi := bounds(len(vec), gn, sendIdx)
		out := sc.get(hi - lo)
		copy(out, vec[lo:hi])
		if err := g.sendTo(me, succ, chunkMsg{idx: sendIdx, data: out}); err != nil {
			return err
		}
		m, err := g.recvFrom(pred, me)
		if err != nil {
			return err
		}
		lo, hi = bounds(len(vec), gn, m.idx)
		if hi-lo != len(m.data) {
			return fmt.Errorf("collective: rank %d allgather chunk %d size mismatch", me, m.idx) //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
		}
		copy(vec[lo:hi], m.data)
		sc.put(m.data)
	}
	return nil
}

// AllReduceMean is AllReduce followed by dividing by the group size, which
// is how data-parallel training averages gradients.
func (g *Group) AllReduceMean(rank int, vec []float64) error {
	if err := g.AllReduce(rank, vec); err != nil {
		return err
	}
	inv := 1 / float64(g.n)
	for i := range vec {
		vec[i] *= inv
	}
	return nil
}

// Barrier blocks until all n ranks have called it.
func (g *Group) Barrier() error {
	g.barrierMu.Lock()
	defer g.barrierMu.Unlock()
	select {
	case <-g.closed:
		return ErrClosed
	default:
	}
	gen := g.barrierGen
	g.barrierN++
	if g.barrierN == g.n {
		g.barrierN = 0
		g.barrierGen++
		g.barrierC.Broadcast()
		return nil
	}
	for gen == g.barrierGen {
		g.barrierC.Wait()
		select {
		case <-g.closed:
			return ErrClosed
		default:
		}
	}
	return nil
}

// ceilDiv returns ceil(a/b) for non-negative a and positive b.
func ceilDiv(a, b int) int {
	return (a + b - 1) / b
}
