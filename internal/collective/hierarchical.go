package collective

import "fmt"

// hierAllReduce is the two-tier topology-matched allreduce, run when the
// group's placement spans more than one node. Only node leaders touch the
// cross-node links, so the slowest link carries 2(m-1)/m of the payload
// once instead of bounding every one of the flat ring's 2(n-1) steps —
// the topology-matched reduction structure behind FireCaffe-style
// near-linear scaling.
//
// Stages (g = ranks on this node, m = nodes):
//
//	P1  intra-node ring reduce-scatter over the node's g members
//	    (L1/L2 links): member at position i ends owning node-partial
//	    chunk (i+1) mod g.
//	P2a each non-leader member hands its owned chunk to the node leader,
//	    which overwrites its copy: the leader now holds the full node
//	    partial vector.
//	P2b leader ring allreduce across the m leaders (L4 links): reduce-
//	    scatter plus allgather over m chunks; every leader ends with the
//	    global sum.
//	P2c the leader hands each member back its owned chunk, now globally
//	    reduced — exactly balancing the buffers absorbed in P2a.
//	P3  intra-node ring allgather redistributes the full vector to every
//	    member (the P2c chunk restores the allgather ownership invariant).
//
// Single-member nodes skip P1/P2a/P2c/P3 and participate only in the
// leader ring. The accumulation order — per-node rotated k-ascending fold,
// then a rotated k-ascending fold of the node partials — is specified
// executably by ReferenceAllReduce, and degenerates to the flat ring's
// order when m == 1 (which is why that case is dispatched to the flat
// engine at construction).
//
// All chunk buffers come from the caller rank's scratch arena under the
// ownership-transfer protocol of rankScratch; every stage's withdrawals
// are balanced by deposits, so the hierarchical path is allocation-free at
// steady state.
//
//elan:hotpath
func (g *Group) hierAllReduce(rank int, vec []float64) error {
	lay := g.lay
	j := lay.nodeOf[rank]
	members := lay.nodes[j]
	gn := len(members)
	pos := lay.memIdx[rank]
	m := len(lay.nodes)
	leader := members[0]

	// Prime the arena for the largest chunk any stage sends. Buffers
	// migrate across nodes via the leader ring, so every rank primes to
	// the same group-wide bound.
	maxChunk := ceilDiv(len(vec), m)
	if lay.minMulti > 0 {
		if c := ceilDiv(len(vec), lay.minMulti); c > maxChunk {
			maxChunk = c
		}
	}
	sc := &g.scratch[rank]
	sc.ensure(maxChunk)

	if gn > 1 {
		// P1: intra-node reduce-scatter.
		if err := g.ringReduceScatter(members, pos, vec); err != nil {
			return err
		}
		owned := (pos + 1) % gn
		lo, hi := bounds(len(vec), gn, owned)
		if pos != 0 {
			// P2a (member side): transfer the owned node-partial chunk
			// to the leader. The buffer stays with the leader until P2c
			// pays one back.
			out := sc.get(hi - lo)
			copy(out, vec[lo:hi])
			if err := g.sendTo(rank, leader, chunkMsg{idx: owned, data: out}); err != nil {
				return err
			}
		} else {
			// P2a (leader side): collect every member's owned chunk in
			// ascending member order; each deposit grows the pool that
			// P2c drains.
			for i := 1; i < gn; i++ {
				msg, err := g.recvFrom(members[i], rank)
				if err != nil {
					return err
				}
				mlo, mhi := bounds(len(vec), gn, msg.idx)
				if mhi-mlo != len(msg.data) {
					return fmt.Errorf("collective: leader %d got node chunk %d of %d values, want %d", //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
						rank, msg.idx, len(msg.data), mhi-mlo)
				}
				copy(vec[mlo:mhi], msg.data)
				sc.put(msg.data)
			}
		}
	}

	// P2b: leader ring allreduce of the node partials.
	if pos == 0 {
		if err := g.ringReduceScatter(lay.leaders, j, vec); err != nil {
			return err
		}
		if err := g.ringAllGather(lay.leaders, j, vec); err != nil {
			return err
		}
	}

	if gn > 1 {
		if pos == 0 {
			// P2c (leader side): hand each member its owned chunk of the
			// global sum.
			for i := 1; i < gn; i++ {
				ci := (i + 1) % gn
				clo, chi := bounds(len(vec), gn, ci)
				out := sc.get(chi - clo)
				copy(out, vec[clo:chi])
				if err := g.sendTo(rank, members[i], chunkMsg{idx: ci, data: out}); err != nil {
					return err
				}
			}
		} else {
			// P2c (member side): receive the globally reduced owned chunk.
			owned := (pos + 1) % gn
			lo, hi := bounds(len(vec), gn, owned)
			msg, err := g.recvFrom(leader, rank)
			if err != nil {
				return err
			}
			if msg.idx != owned || hi-lo != len(msg.data) {
				return fmt.Errorf("collective: rank %d got global chunk %d of %d values, want chunk %d of %d", //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
					rank, msg.idx, len(msg.data), owned, hi-lo)
			}
			copy(vec[lo:hi], msg.data)
			sc.put(msg.data)
		}
		// P3: intra-node allgather of the global sum.
		if err := g.ringAllGather(members, pos, vec); err != nil {
			return err
		}
	}
	return nil
}
