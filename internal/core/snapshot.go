package core

import (
	"fmt"

	"github.com/elan-sys/elan/internal/scaling"
)

// Snapshot is the complete serializable training state of a LiveJob — what
// the S&R baseline writes to the shared filesystem and what a migrated job
// carries to its destination. It captures every state kind of Table II:
// model parameters, optimizer state, the data-loading cursor, and the
// runtime information (iteration, batch size, learning-rate schedule).
type Snapshot struct {
	Params    []float64
	OptState  []float64
	Cursor    int
	Iteration int
	TBS       int
	LR0, LRT  float64
	LRTime0   int
	LRRamp    int
}

// Snapshot captures the job's training state. Because of the data-parallel
// invariant, worker 0's replica represents the whole job.
func (lj *LiveJob) Snapshot() (*Snapshot, error) {
	lj.mu.Lock()
	defer lj.mu.Unlock()
	w := lj.workers[0]
	return &Snapshot{
		Params:    w.net.FlattenParams(nil),
		OptState:  w.opt.FlattenState(nil),
		Cursor:    lj.loader.Cursor(),
		Iteration: lj.iter,
		TBS:       lj.tbs,
		LR0:       lj.lrSched.LR0,
		LRT:       lj.lrSched.LRT,
		LRTime0:   lj.lrSched.T0,
		LRRamp:    lj.lrSched.T,
	}, nil
}

// RestoreSnapshot installs a snapshot into the job: every worker replica
// receives the parameters and optimizer state, and the loader cursor and
// runtime info are restored. This is the "load" step of an S&R restart and
// the arrival step of a migration.
func (lj *LiveJob) RestoreSnapshot(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("core: nil snapshot")
	}
	lj.mu.Lock()
	defer lj.mu.Unlock()
	if s.TBS <= 0 || s.TBS%len(lj.workers) != 0 {
		return fmt.Errorf("core: snapshot TBS %d not divisible by %d workers",
			s.TBS, len(lj.workers))
	}
	sched, err := scaling.NewLRSchedule(s.LR0, s.LRT, s.LRTime0, s.LRRamp)
	if err != nil {
		return fmt.Errorf("core: snapshot LR schedule: %w", err)
	}
	for _, w := range lj.workers {
		if err := w.net.LoadParams(s.Params); err != nil {
			return fmt.Errorf("core: restore params: %w", err)
		}
		if err := w.opt.LoadState(s.OptState); err != nil {
			return fmt.Errorf("core: restore optimizer: %w", err)
		}
	}
	if err := lj.loader.SetCursor(s.Cursor); err != nil {
		return fmt.Errorf("core: restore cursor: %w", err)
	}
	lj.iter = s.Iteration
	lj.tbs = s.TBS
	lj.lrSched = sched
	return nil
}
