package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/collective"
	"github.com/elan-sys/elan/internal/coord"
	"github.com/elan-sys/elan/internal/data"
	"github.com/elan-sys/elan/internal/ddp"
	"github.com/elan-sys/elan/internal/nn"
	"github.com/elan-sys/elan/internal/replication"
	"github.com/elan-sys/elan/internal/scaling"
	"github.com/elan-sys/elan/internal/store"
	"github.com/elan-sys/elan/internal/telemetry"
	"github.com/elan-sys/elan/internal/tensor"
	"github.com/elan-sys/elan/internal/topology"
)

// LiveJob is real elastic data-parallel training: every worker holds its own
// replica of a pure-Go MLP, computes gradients on its shard of the batch,
// averages them with a genuine ring allreduce across goroutines, and steps
// its local optimizer. Resource adjustments perform the paper's full
// procedure with real data movement: the AM coordinates, training state
// (parameters, optimizer velocity, data-loader cursor, iteration counter)
// is replicated from nearest sources per the replication plan, the
// communication group is reconstructed, and the serial loader repartitions.
//
// LiveJob is the substrate of the accuracy experiments: large-batch
// degradation and the progressive linear scaling rule act on genuine SGD.
type LiveJob struct {
	mu sync.Mutex

	dataset  *data.Dataset
	layers   []int
	momentum float64

	workers []*liveWorker
	group   *collective.Group
	loader  *data.SerialLoader
	am      *coord.AM
	copier  *replication.Copier

	// GPU placement: cluster is the optional simulated cluster; gpus is the
	// current reservation backing group. bucketElems parametrizes each
	// worker's gradient reducer.
	cluster     *topology.Cluster
	gpus        []*topology.GPU
	bucketElems int

	iter     int
	tbs      int
	lrSched  *scaling.LRSchedule
	seed     int64
	nextName int

	// clk times adjustments (the paper's sub-second adjustment-latency
	// accounting); lastAdjust is the duration of the most recent one.
	clk        clock.Clock
	lastAdjust time.Duration

	// Telemetry: adjustment spans carry the commit-point and rollback
	// events of the paper's Fig. 11/13 adjustment-cost story; all
	// instruments are nil-safe, so the uninstrumented step path is free.
	tr             telemetry.Tracer
	metrics        *telemetry.Registry
	link           string
	mSteps         *telemetry.Counter
	mStepSeconds   *telemetry.Histogram
	mAdjustments   *telemetry.Counter
	mAdjustSeconds *telemetry.Histogram
	mRollbacks     *telemetry.Counter
}

// liveWorker is one data-parallel replica.
type liveWorker struct {
	name string
	net  *nn.MLP
	opt  *nn.SGD
	// Step workspace, reused across iterations (touched only by this
	// worker's step goroutine): the bucketed gradient reducer (which owns
	// the flat gradient vector) and the materialized batch.
	red    *ddp.Reducer
	batchX *tensor.Matrix
	batchY []int
}

// LiveConfig configures a LiveJob.
type LiveConfig struct {
	// Dataset to train on (required).
	Dataset *data.Dataset
	// LayerSizes is the MLP architecture, e.g. {features, 64, 64, classes}.
	LayerSizes []int
	// Workers is the initial worker count.
	Workers int
	// TotalBatch is the initial total batch size; must be divisible by
	// Workers.
	TotalBatch int
	// LR and Momentum configure SGD.
	LR       float64
	Momentum float64
	// Seed makes the run deterministic.
	Seed int64
	// Clock is the time source used to measure adjustment latency; nil
	// selects the wall clock. Simulated runs inject a clock.Sim so the
	// job and the simulator share one notion of time.
	Clock clock.Clock
	// Tracer records step and adjustment spans (with commit-point and
	// rollback events); nil disables tracing at zero cost.
	Tracer telemetry.Tracer
	// Metrics receives the job's counters and histograms; nil disables
	// them at zero cost. The collective group shares it.
	Metrics *telemetry.Registry
	// LinkLabel tags allreduce spans with a link level; empty defaults to
	// "inproc" (the in-process goroutine substrate). Ignored when Cluster
	// is set: the label then reflects the worst link level of the actual
	// GPU placement.
	LinkLabel string
	// Cluster, when non-nil, places workers on simulated GPUs: every group
	// (re)construction reserves one GPU per worker in deterministic tree
	// order, and placements spanning nodes get the hierarchical allreduce.
	Cluster *topology.Cluster
	// BucketElems caps gradient-bucket sizes for each worker's ddp reducer,
	// enabling comm/compute overlap during backward. 0 keeps one
	// whole-vector bucket — arithmetic identical to the historical
	// AllReduceMean path.
	BucketElems int
}

// NewLiveJob builds the job, initializes identical replicas on all workers
// and registers the state-replication hooks.
func NewLiveJob(cfg LiveConfig) (*LiveJob, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("core: non-positive worker count %d", cfg.Workers)
	}
	if cfg.TotalBatch <= 0 || cfg.TotalBatch%cfg.Workers != 0 {
		return nil, fmt.Errorf("core: total batch %d not divisible by %d workers",
			cfg.TotalBatch, cfg.Workers)
	}
	if len(cfg.LayerSizes) < 2 {
		return nil, fmt.Errorf("core: need at least input and output layer sizes")
	}
	if cfg.LayerSizes[0] != cfg.Dataset.Features {
		return nil, fmt.Errorf("core: input size %d != dataset features %d",
			cfg.LayerSizes[0], cfg.Dataset.Features)
	}
	if cfg.LayerSizes[len(cfg.LayerSizes)-1] != cfg.Dataset.Classes {
		return nil, fmt.Errorf("core: output size %d != dataset classes %d",
			cfg.LayerSizes[len(cfg.LayerSizes)-1], cfg.Dataset.Classes)
	}
	lrSched, err := scaling.NewLRSchedule(cfg.LR, cfg.LR, 0, 0)
	if err != nil {
		return nil, err
	}
	loader, err := data.NewSerialLoader(cfg.Dataset.N())
	if err != nil {
		return nil, err
	}
	am, err := coord.NewAM("live-job", store.New())
	if err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall{}
	}
	if cfg.LinkLabel == "" {
		cfg.LinkLabel = "inproc"
	}
	lj := &LiveJob{
		dataset:  cfg.Dataset,
		layers:   append([]int(nil), cfg.LayerSizes...),
		momentum: cfg.Momentum,
		loader:   loader,
		am:       am,
		tbs:      cfg.TotalBatch,
		lrSched:  lrSched,
		seed:     cfg.Seed,
		clk:      cfg.Clock,
		tr:       telemetry.OrNop(cfg.Tracer),
		link:     cfg.LinkLabel,
		metrics:  cfg.Metrics,

		cluster:     cfg.Cluster,
		bucketElems: cfg.BucketElems,

		mSteps:         cfg.Metrics.Counter("core_steps_total"),
		mStepSeconds:   cfg.Metrics.Histogram("core_step_seconds"),
		mAdjustments:   cfg.Metrics.Counter("core_adjustments_total"),
		mAdjustSeconds: cfg.Metrics.Histogram("core_adjust_seconds"),
		mRollbacks:     cfg.Metrics.Counter("core_rollbacks_total"),
	}
	if err := lj.rebuildGroupLocked(cfg.Workers); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		w, err := lj.buildWorker(cfg.LR)
		if err != nil {
			return nil, err
		}
		lj.workers = append(lj.workers, w)
	}
	lj.registerHooks()
	return lj, nil
}

// buildWorker constructs a replica. All replicas are built from the same
// seed so initial parameters are identical across workers — the data-
// parallel invariant. Newly added workers are built the same way and then
// overwritten by state replication.
func (lj *LiveJob) buildWorker(lr float64) (*liveWorker, error) {
	rng := rand.New(rand.NewSource(lj.seed))
	net, err := nn.NewMLP(rng, lj.layers)
	if err != nil {
		return nil, err
	}
	opt, err := nn.NewSGD(net.Params(), lr, lj.momentum)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("w%d", lj.nextName)
	lj.nextName++
	red := ddp.New(net, ddp.Config{BucketElems: lj.bucketElems})
	return &liveWorker{name: name, net: net, opt: opt, red: red}, nil
}

// closeWorkers shuts down the reducers of workers leaving the job — on
// scale-in, on scale-out rollback, and at Close. Callers hold lj.mu, so no
// step is in flight.
func closeWorkers(ws []*liveWorker) {
	for _, w := range ws {
		w.red.Close()
	}
}

// rebuildGroupLocked replaces the collective group with one sized for n
// ranks — the single implementation of communication-group reconstruction
// shared by construction and both scaling directions. With a Cluster
// configured the old GPU reservation is released and n GPUs re-reserved in
// deterministic tree order, so the group's topology (flat vs hierarchical)
// and link label always match the actual placement. Callers hold lj.mu or
// own lj exclusively (construction).
func (lj *LiveJob) rebuildGroupLocked(n int) error {
	link := lj.link
	var topo collective.Topology = collective.Flat(n)
	if lj.cluster != nil {
		lj.cluster.Release(lj.gpus)
		lj.gpus = nil
		gpus, err := lj.cluster.Reserve(n)
		if err != nil {
			return err
		}
		ct, err := collective.NewClustered(topology.IDsOf(gpus))
		if err != nil {
			lj.cluster.Release(gpus)
			return err
		}
		lj.gpus = gpus
		topo = ct
		link = collective.LinkLabelOf(ct)
	}
	if lj.group != nil {
		lj.group.Close()
	}
	group, err := collective.NewGroupWithTopology(topo)
	if err != nil {
		return err
	}
	group.SetTelemetry(lj.tr, lj.metrics, lj.clk, link)
	lj.group = group
	return nil
}

// registerHooks installs the paper's hook API: one hook per state kind
// (Table II). GPU-resident state: model parameters and optimizer velocity;
// CPU-resident state: the data cursor and iteration counter are global to
// the job (held by the loader and the job itself), so their "replication"
// is a no-op recorded for completeness.
func (lj *LiveJob) registerHooks() {
	lj.copier = replication.NewCopier()
	// Errors are impossible here (non-empty kinds, non-nil funcs).
	_ = lj.copier.RegisterHook(replication.Hook{
		Kind: "model", OnGPU: true,
		Copy: func(src, dst int) error {
			return lj.workers[dst].net.LoadParams(lj.workers[src].net.FlattenParams(nil))
		},
	})
	_ = lj.copier.RegisterHook(replication.Hook{
		Kind: "optimizer", OnGPU: true,
		Copy: func(src, dst int) error {
			return lj.workers[dst].opt.LoadState(lj.workers[src].opt.FlattenState(nil))
		},
	})
	_ = lj.copier.RegisterHook(replication.Hook{
		Kind: "data", OnGPU: false,
		Copy: func(src, dst int) error { return nil }, // loader cursor is job-global
	})
	_ = lj.copier.RegisterHook(replication.Hook{
		Kind: "runtime", OnGPU: false,
		Copy: func(src, dst int) error {
			lj.workers[dst].opt.LR = lj.workers[src].opt.LR
			return nil
		},
	})
}

// NumWorkers returns the current worker count.
func (lj *LiveJob) NumWorkers() int {
	lj.mu.Lock()
	defer lj.mu.Unlock()
	return len(lj.workers)
}

// TotalBatch returns the current total batch size.
func (lj *LiveJob) TotalBatch() int {
	lj.mu.Lock()
	defer lj.mu.Unlock()
	return lj.tbs
}

// Iteration returns the number of completed steps.
func (lj *LiveJob) Iteration() int {
	lj.mu.Lock()
	defer lj.mu.Unlock()
	return lj.iter
}

// LR returns the learning rate the next step will use.
func (lj *LiveJob) LR() float64 {
	lj.mu.Lock()
	defer lj.mu.Unlock()
	return lj.lrSched.At(lj.iter)
}

// Step runs one synchronous data-parallel training iteration and returns
// the mean loss across workers. Each worker runs on its own goroutine and
// gradients are combined with a real ring allreduce.
func (lj *LiveJob) Step() (float64, error) {
	lj.mu.Lock()
	defer lj.mu.Unlock()
	return lj.stepLocked()
}

func (lj *LiveJob) stepLocked() (_ float64, err error) {
	n := len(lj.workers)
	perWorker := lj.tbs / n
	if perWorker == 0 {
		return 0, fmt.Errorf("core: total batch %d too small for %d workers", lj.tbs, n)
	}
	span := lj.tr.StartSpan("core.step")
	span.AnnotateInt("iter", lj.iter)
	span.AnnotateInt("workers", n)
	stepStart := lj.clk.Now()
	defer func() {
		lj.mStepSeconds.Observe(lj.clk.Since(stepStart).Seconds())
		lj.mSteps.Inc()
		if err != nil {
			span.Annotate("error", err.Error())
		}
		span.End()
	}()
	lr := lj.lrSched.At(lj.iter)

	// Assign data shards (serial semantics).
	type shard struct{ lo, hi int }
	shards := make([]shard, n)
	for w := 0; w < n; w++ {
		lo, hi, err := lj.loader.NextBatch(w, n, perWorker)
		if err != nil {
			return 0, err
		}
		shards[w] = shard{lo: lo, hi: hi}
	}

	losses := make([]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rspan := span.Child("core.rank_step")
			rspan.AnnotateInt("rank", w)
			rspan.AnnotateInt("iter", lj.iter)
			defer func() {
				if errs[w] != nil {
					rspan.Annotate("error", errs[w].Error())
				}
				rspan.End()
			}()
			worker := lj.workers[w]
			bn := shards[w].hi - shards[w].lo
			if bn <= 0 {
				errs[w] = fmt.Errorf("core: empty shard [%d, %d)", shards[w].lo, shards[w].hi)
				return
			}
			if worker.batchX == nil || worker.batchX.Rows != bn {
				worker.batchX = tensor.MustNew(bn, lj.dataset.Features)
				worker.batchY = make([]int, bn)
			}
			fspan := rspan.Child("core.forward")
			if err := lj.dataset.BatchInto(worker.batchX, worker.batchY, shards[w].lo, shards[w].hi); err != nil {
				fspan.End()
				errs[w] = err
				return
			}
			worker.net.ZeroGrads()
			out, err := worker.net.Forward(worker.batchX)
			if err != nil {
				fspan.End()
				errs[w] = err
				return
			}
			loss, grad, err := worker.net.SoftmaxLoss(out, worker.batchY)
			fspan.End()
			if err != nil {
				errs[w] = err
				return
			}
			losses[w] = loss
			if err := worker.red.BackwardAllReduceTraced(lj.group, w, grad, rspan.Context()); err != nil {
				errs[w] = err
				return
			}
			ospan := rspan.Child("core.optimize")
			worker.opt.LR = lr
			errs[w] = worker.opt.Step(worker.net.Params(), worker.net.Grads())
			ospan.End()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	lj.iter++
	var mean float64
	for _, l := range losses {
		mean += l
	}
	return mean / float64(n), nil
}

// SetTotalBatch changes the total batch size (the AdaBatch-style dynamic
// batch algorithm calls this). If progressive is true the learning rate
// ramps linearly to lr*k over rampIters iterations (the progressive linear
// scaling rule); otherwise it jumps immediately (the ablation).
func (lj *LiveJob) SetTotalBatch(tbs, rampIters int, progressive bool) error {
	lj.mu.Lock()
	defer lj.mu.Unlock()
	if tbs <= 0 || tbs%len(lj.workers) != 0 {
		return fmt.Errorf("core: total batch %d not divisible by %d workers", tbs, len(lj.workers))
	}
	k := float64(tbs) / float64(lj.tbs)
	lr0 := lj.lrSched.At(lj.iter)
	lrT := lr0 * k
	ramp := 0
	if progressive {
		ramp = rampIters
	}
	sched, err := scaling.NewLRSchedule(lr0, lrT, lj.iter, ramp)
	if err != nil {
		return err
	}
	lj.tbs = tbs
	lj.lrSched = sched
	return nil
}

// ForceLR pins the learning rate to lr from the current iteration onwards,
// discarding any ramp in progress. The Figure 5 "Default" configuration
// uses it to model naive weak scaling that grows the batch without
// touching the learning rate.
func (lj *LiveJob) ForceLR(lr float64) error {
	lj.mu.Lock()
	defer lj.mu.Unlock()
	sched, err := scaling.NewLRSchedule(lr, lr, lj.iter, 0)
	if err != nil {
		return err
	}
	lj.lrSched = sched
	return nil
}

// ScaleOut adds n workers through the full Elan procedure: the AM receives
// the request, the new workers "start" (replica construction) and report,
// the next coordination fires the adjustment, state is replicated via the
// registered hooks, the loader repartitions and the group is reconstructed.
// The total batch size is unchanged (strong scaling); combine with
// SetTotalBatch for weak or hybrid scaling.
func (lj *LiveJob) ScaleOut(n int) error {
	return lj.ScaleOutCtx(context.Background(), n)
}

// ScaleOutCtx is ScaleOut under a caller context. Cancellation is honored
// at the step boundaries before the request is registered with the AM —
// the commit point — and unwinds cleanly: freshly built replicas are
// discarded and no job state changes. Once the AM has accepted the
// request the adjustment runs to completion, preserving the protocol's
// atomicity.
func (lj *LiveJob) ScaleOutCtx(ctx context.Context, n int) (err error) {
	if n <= 0 {
		return fmt.Errorf("core: scale-out by %d", n)
	}
	lj.mu.Lock()
	defer lj.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: scale-out cancelled: %w", err)
	}
	start := lj.clk.Now()
	oldN := len(lj.workers)
	span := lj.tr.StartSpan("core.scale_out")
	span.AnnotateInt("from", oldN)
	span.AnnotateInt("to", oldN+n)
	defer func() {
		lj.mAdjustSeconds.Observe(lj.clk.Since(start).Seconds())
		if err != nil {
			span.Annotate("error", err.Error())
		} else {
			lj.mAdjustments.Inc()
		}
		span.End()
	}()
	if lj.tbs%(oldN+n) != 0 {
		return fmt.Errorf("core: total batch %d not divisible by %d workers", lj.tbs, oldN+n)
	}
	// Step 1: request. Launch replicas (the "start+init" that Elan overlaps
	// with training; here construction is synchronous but the AM protocol
	// is exercised end to end).
	buildSpan := span.Child("core.build_replicas")
	lr := lj.lrSched.At(lj.iter)
	var names []string
	var fresh []*liveWorker
	for i := 0; i < n; i++ {
		w, err := lj.buildWorker(lr)
		if err != nil {
			buildSpan.End()
			return err
		}
		fresh = append(fresh, w)
		names = append(names, w.name)
	}
	buildSpan.End()
	// Last cancellation point: the fresh replicas are garbage-collected
	// and nothing was registered anywhere.
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: scale-out cancelled before request: %w", err)
	}
	if err := lj.am.RequestAdjustmentTraced(coord.ScaleOut, names, nil, span.Context()); err != nil {
		return err
	}
	// The AM has accepted the request: past this point the adjustment runs
	// to completion or rolls back — the protocol's commit point.
	span.Event("commit-point")
	// Step 2: report.
	for _, name := range names {
		if err := lj.am.ReportReady(name); err != nil {
			return err
		}
	}
	// Step 3: coordinate.
	adj, ok, err := lj.am.Coordinate()
	if err != nil {
		return err
	}
	if !ok || len(adj.Add) != n {
		return fmt.Errorf("core: coordination did not fire (ok=%v)", ok)
	}
	// Step 4: state replication. Each new worker copies from a source
	// existing worker via the registered hooks (real byte movement). On a
	// replication failure the fresh workers are rolled back so the job is
	// left at its old size with consistent survivors.
	replSpan := span.Child("core.replicate_state")
	lj.workers = append(lj.workers, fresh...)
	for i := 0; i < n; i++ {
		src := i % oldN // spread sources like the concurrent planner
		if err := lj.copier.Execute(src, oldN+i); err != nil {
			lj.workers = lj.workers[:oldN]
			closeWorkers(fresh)
			replSpan.End()
			span.Event("rollback")
			lj.mRollbacks.Inc()
			return err
		}
	}
	replSpan.End()
	// Step 5: state adjustment — repartition and group reconstruction.
	reconfSpan := span.Child("core.reconfigure")
	defer reconfSpan.End()
	if err := lj.loader.Repartition(oldN, oldN+n); err != nil {
		lj.workers = lj.workers[:oldN]
		closeWorkers(fresh)
		span.Event("rollback")
		lj.mRollbacks.Inc()
		return err
	}
	if err := lj.rebuildGroupLocked(oldN + n); err != nil {
		return err
	}
	lj.lastAdjust = lj.clk.Since(start)
	return nil
}

// ScaleIn removes the last n workers (survivors keep their state; nothing
// moves). The total batch size is unchanged.
func (lj *LiveJob) ScaleIn(n int) error {
	return lj.ScaleInCtx(context.Background(), n)
}

// ScaleInCtx is ScaleIn under a caller context; cancellation before the
// AM accepts the request aborts with no state change.
func (lj *LiveJob) ScaleInCtx(ctx context.Context, n int) (err error) {
	lj.mu.Lock()
	defer lj.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: scale-in cancelled: %w", err)
	}
	start := lj.clk.Now()
	oldN := len(lj.workers)
	if n <= 0 || n >= oldN {
		return fmt.Errorf("core: scale-in by %d of %d workers", n, oldN)
	}
	newN := oldN - n
	span := lj.tr.StartSpan("core.scale_in")
	span.AnnotateInt("from", oldN)
	span.AnnotateInt("to", newN)
	defer func() {
		lj.mAdjustSeconds.Observe(lj.clk.Since(start).Seconds())
		if err != nil {
			span.Annotate("error", err.Error())
		} else {
			lj.mAdjustments.Inc()
		}
		span.End()
	}()
	if lj.tbs%newN != 0 {
		return fmt.Errorf("core: total batch %d not divisible by %d workers", lj.tbs, newN)
	}
	var names []string
	for _, w := range lj.workers[newN:] {
		names = append(names, w.name)
	}
	if err := lj.am.RequestAdjustmentTraced(coord.ScaleIn, nil, names, span.Context()); err != nil {
		return err
	}
	span.Event("commit-point")
	if _, ok, err := lj.am.Coordinate(); err != nil || !ok {
		return fmt.Errorf("core: scale-in coordination failed (ok=%v err=%v)", ok, err)
	}
	leaving := lj.workers[newN:]
	lj.workers = lj.workers[:newN]
	closeWorkers(leaving)
	reconfSpan := span.Child("core.reconfigure")
	defer reconfSpan.End()
	if err := lj.loader.Repartition(oldN, newN); err != nil {
		return err
	}
	if err := lj.rebuildGroupLocked(newN); err != nil {
		return err
	}
	lj.lastAdjust = lj.clk.Since(start)
	return nil
}

// LastAdjustDuration returns how long the most recent successful
// adjustment took on the job's clock — the quantity behind the paper's
// sub-second adjustment claim. Zero if no adjustment has completed.
func (lj *LiveJob) LastAdjustDuration() time.Duration {
	lj.mu.Lock()
	defer lj.mu.Unlock()
	return lj.lastAdjust
}

// Evaluate computes loss and accuracy of the (replicated) model on the
// given dataset using worker 0's replica.
func (lj *LiveJob) Evaluate(d *data.Dataset) (loss, acc float64, err error) {
	lj.mu.Lock()
	defer lj.mu.Unlock()
	x, y, err := d.Batch(0, d.N())
	if err != nil {
		return 0, 0, err
	}
	out, err := lj.workers[0].net.Forward(x)
	if err != nil {
		return 0, 0, err
	}
	loss, _, err = lj.workers[0].net.SoftmaxLoss(out, y)
	if err != nil {
		return 0, 0, err
	}
	acc, err = nn.Accuracy(out, y)
	return loss, acc, err
}

// ReplicasConsistent verifies the data-parallel invariant: all workers hold
// bitwise-identical parameters. It is the property state replication must
// preserve.
func (lj *LiveJob) ReplicasConsistent() bool {
	lj.mu.Lock()
	defer lj.mu.Unlock()
	ref := lj.workers[0].net.FlattenParams(nil)
	for _, w := range lj.workers[1:] {
		p := w.net.FlattenParams(nil)
		if len(p) != len(ref) {
			return false
		}
		for i := range p {
			if p[i] != ref[i] {
				return false
			}
		}
	}
	return true
}

// Diverged reports whether the model has left the numerically stable region
// (NaN/Inf in parameters) — used by the progressive-LR ablation.
func (lj *LiveJob) Diverged() bool {
	lj.mu.Lock()
	defer lj.mu.Unlock()
	for _, p := range lj.workers[0].net.Params() {
		if p.HasNaN() {
			return true
		}
	}
	return false
}

// Close releases the communication group, the workers' reducers and any
// GPU reservation.
func (lj *LiveJob) Close() {
	lj.mu.Lock()
	defer lj.mu.Unlock()
	lj.group.Close()
	closeWorkers(lj.workers)
	if lj.cluster != nil {
		lj.cluster.Release(lj.gpus)
		lj.gpus = nil
	}
}
