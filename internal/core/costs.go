// Package core is the Elan elastic-training runtime: it ties the hybrid
// scaling mechanism, the concurrent IO-free replication planner, the
// asynchronous coordination protocol and the data-consistency machinery
// into an elastic job abstraction with the 5-step adjustment procedure of
// Section II (request, report, coordinate, state replication, state
// adjustment).
//
// The package offers two job flavors. Job (job.go) is driven by the
// calibrated cost models and the simulation clock — it is what the paper's
// timing experiments (Figures 14 and 15) run on. LiveJob (live.go) runs
// real data-parallel training of the pure-Go MLP substrate across worker
// goroutines with genuine state replication and group reconstruction — it
// is what the accuracy experiments (Figures 5 and 18) run on.
package core

import (
	"math/rand"
	"time"

	"github.com/elan-sys/elan/internal/perfmodel"
)

// SystemCosts calibrates the fixed costs of the training system that are
// not bulk data movement. Values approximate the paper's testbed (PyTorch
// 1.3 on 1080Ti with NCCL); the experiments depend on their order of
// magnitude, not their exact values: worker start + initialization is tens
// of seconds (Figure 11), coordination is sub-millisecond, communicator
// reconstruction is sub-second.
type SystemCosts struct {
	// WorkerStart is the time to launch a worker process on an allocated
	// GPU (scheduler placement, container start, process exec).
	WorkerStart time.Duration
	// WorkerInit is runtime initialization: CUDA context, NCCL, framework
	// import, model build. This is the dominant term S&R pays on its
	// critical path and Elan hides (Section V-B).
	WorkerInit time.Duration
	// ShutdownTime tears a worker down gracefully.
	ShutdownTime time.Duration
	// GroupReconstructBase and GroupReconstructPerWorker model rebuilding
	// the collective communicator after membership changes.
	GroupReconstructBase      time.Duration
	GroupReconstructPerWorker time.Duration
	// CoordBase and CoordPerWorker model one coordination round between the
	// AM and all existing workers.
	CoordBase      time.Duration
	CoordPerWorker time.Duration
	// Repartition is the data-consistency fix-up (serial semantics: O(1)).
	Repartition time.Duration
	// JitterRel is the relative stddev applied to all sampled durations so
	// repeated measurements produce realistic error bars.
	JitterRel float64
}

// DefaultSystemCosts returns the calibration used by all experiments.
func DefaultSystemCosts() SystemCosts {
	return SystemCosts{
		WorkerStart:               8 * time.Second,
		WorkerInit:                22 * time.Second,
		ShutdownTime:              2 * time.Second,
		GroupReconstructBase:      350 * time.Millisecond,
		GroupReconstructPerWorker: 6 * time.Millisecond,
		CoordBase:                 120 * time.Microsecond,
		CoordPerWorker:            3 * time.Microsecond,
		Repartition:               20 * time.Millisecond,
		JitterRel:                 0.06,
	}
}

// sample jitters d with the configured relative stddev using rng.
func (c SystemCosts) sample(rng *rand.Rand, d time.Duration) time.Duration {
	return perfmodel.Jitter(rng, d, c.JitterRel)
}

// StartInitTime samples the start+initialization time of one new worker.
func (c SystemCosts) StartInitTime(rng *rand.Rand) time.Duration {
	return c.sample(rng, c.WorkerStart) + c.sample(rng, c.WorkerInit)
}

// CoordTime samples one coordination round across nWorkers.
func (c SystemCosts) CoordTime(rng *rand.Rand, nWorkers int) time.Duration {
	return c.sample(rng, c.CoordBase+time.Duration(nWorkers)*c.CoordPerWorker)
}

// GroupReconstructTime samples communicator reconstruction for nWorkers.
func (c SystemCosts) GroupReconstructTime(rng *rand.Rand, nWorkers int) time.Duration {
	return c.sample(rng, c.GroupReconstructBase+time.Duration(nWorkers)*c.GroupReconstructPerWorker)
}
