package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/replication"
	"github.com/elan-sys/elan/internal/telemetry"
)

// TestScaleOutSpanExactVirtualTimestamps runs one ScaleOutCtx adjustment on
// a simulated clock and asserts every span timestamp exactly: the recorder
// reads the same injected clock as the job, so the trace of an adjustment
// is a deterministic fixture.
func TestScaleOutSpanExactVirtualTimestamps(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	sim := clock.NewSim(epoch)
	rec := telemetry.NewRecorder(sim, 0)
	reg := telemetry.NewRegistry()
	lj, err := NewLiveJob(LiveConfig{
		Dataset:    liveDataset(t, 2048),
		LayerSizes: []int{2, 24, 3},
		Workers:    2,
		TotalBatch: 60,
		LR:         0.05,
		Momentum:   0.9,
		Seed:       7,
		Clock:      sim,
		Tracer:     rec,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatalf("NewLiveJob: %v", err)
	}
	t.Cleanup(lj.Close)

	// The adjustment fires at virtual t = epoch+5s. It is synchronous and
	// never waits on the clock, so every span of the adjustment starts AND
	// ends at exactly that instant.
	sim.Advance(5 * time.Second)
	at := epoch.Add(5 * time.Second)
	if err := lj.ScaleOutCtx(context.Background(), 1); err != nil {
		t.Fatalf("ScaleOutCtx: %v", err)
	}

	spans := rec.Snapshot()
	byName := make(map[string]telemetry.SpanRecord, len(spans))
	for _, s := range spans {
		byName[s.Name] = s
	}
	root, ok := byName["core.scale_out"]
	if !ok {
		t.Fatalf("no core.scale_out span in %d spans", len(spans))
	}
	for _, name := range []string{"core.scale_out", "core.build_replicas", "core.replicate_state", "core.reconfigure"} {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("missing span %q", name)
		}
		if !s.Start.Equal(at) || !s.End.Equal(at) {
			t.Errorf("%s window = [%v, %v], want exactly %v", name, s.Start, s.End, at)
		}
		if name != "core.scale_out" && s.Parent != root.ID {
			t.Errorf("%s parent = %d, want root %d", name, s.Parent, root.ID)
		}
	}
	if from, _ := root.Attr("from"); from != "2" {
		t.Errorf("from attr = %q, want 2", from)
	}
	if to, _ := root.Attr("to"); to != "3" {
		t.Errorf("to attr = %q, want 3", to)
	}
	if len(root.Events) != 1 || root.Events[0].Name != "commit-point" || !root.Events[0].At.Equal(at) {
		t.Errorf("root events = %+v, want one commit-point at %v", root.Events, at)
	}
	if _, hasErr := root.Attr("error"); hasErr {
		t.Error("successful adjustment carries an error attribute")
	}
	if lj.LastAdjustDuration() != 0 {
		t.Errorf("virtual adjustment duration = %v, want 0 (no clock waits)", lj.LastAdjustDuration())
	}
	if got := reg.Counter("core_adjustments_total").Value(); got != 1 {
		t.Errorf("core_adjustments_total = %d, want 1", got)
	}
	if got := reg.Counter("core_rollbacks_total").Value(); got != 0 {
		t.Errorf("core_rollbacks_total = %d, want 0", got)
	}
	if got := reg.Histogram("core_adjust_seconds").Snapshot(); got.Count != 1 || got.Sum != 0 {
		t.Errorf("core_adjust_seconds = %+v, want one zero-duration sample", got)
	}
}

// TestStepSpansOnSimClock: step spans and the allreduce spans they trigger
// share the virtual instant, and the step counters advance.
func TestStepSpansOnSimClock(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	sim := clock.NewSim(epoch)
	rec := telemetry.NewRecorder(sim, 0)
	reg := telemetry.NewRegistry()
	lj, err := NewLiveJob(LiveConfig{
		Dataset:    liveDataset(t, 2048),
		LayerSizes: []int{2, 24, 3},
		Workers:    2,
		TotalBatch: 60,
		LR:         0.05,
		Momentum:   0.9,
		Seed:       7,
		Clock:      sim,
		Tracer:     rec,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatalf("NewLiveJob: %v", err)
	}
	t.Cleanup(lj.Close)

	sim.Advance(time.Second)
	if _, err := lj.Step(); err != nil {
		t.Fatalf("Step: %v", err)
	}
	at := epoch.Add(time.Second)
	var stepID uint64
	count := map[string]int{}
	for _, s := range rec.Snapshot() {
		count[s.Name]++
		switch s.Name {
		case "core.step":
			stepID = s.ID
			if !s.Start.Equal(at) || !s.End.Equal(at) {
				t.Errorf("core.step window = [%v, %v], want %v", s.Start, s.End, at)
			}
			if iter, _ := s.Attr("iter"); iter != "0" {
				t.Errorf("iter attr = %q, want 0", iter)
			}
		case "collective.allreduce":
			if link, _ := s.Attr("link"); link != "inproc" {
				t.Errorf("link attr = %q, want inproc", link)
			}
		}
	}
	if count["core.step"] != 1 {
		t.Errorf("core.step spans = %d, want 1", count["core.step"])
	}
	// Each rank gets its own step tree; backward and allreduce join it.
	for name, want := range map[string]int{
		"core.rank_step":       2,
		"core.forward":         2,
		"core.optimize":        2,
		"ddp.backward":         2,
		"collective.allreduce": 2,
	} {
		if count[name] != want {
			t.Errorf("%s spans = %d, want %d", name, count[name], want)
		}
	}
	for _, s := range rec.Snapshot() {
		if s.Name == "core.rank_step" && s.Parent != stepID {
			t.Errorf("core.rank_step parent = %d, want core.step %d", s.Parent, stepID)
		}
	}
	if got := reg.Counter("core_steps_total").Value(); got != 1 {
		t.Errorf("core_steps_total = %d, want 1", got)
	}
	if got := reg.Counter("collective_allreduce_total").Value(); got != 2 {
		t.Errorf("collective_allreduce_total = %d, want 2", got)
	}
}

// TestScaleOutRollbackEvent: a replication failure rolls the worker set
// back and the trace records it.
func TestScaleOutRollbackEvent(t *testing.T) {
	sim := clock.NewSim(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	rec := telemetry.NewRecorder(sim, 0)
	reg := telemetry.NewRegistry()
	lj, err := NewLiveJob(LiveConfig{
		Dataset:    liveDataset(t, 2048),
		LayerSizes: []int{2, 24, 3},
		Workers:    2,
		TotalBatch: 60,
		LR:         0.05,
		Momentum:   0.9,
		Seed:       7,
		Clock:      sim,
		Tracer:     rec,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatalf("NewLiveJob: %v", err)
	}
	t.Cleanup(lj.Close)
	// Sabotage replication: swap in a copier whose only hook fails.
	lj.copier = replication.NewCopier()
	if err := lj.copier.RegisterHook(replication.Hook{
		Kind: "model", OnGPU: true,
		Copy: func(src, dst int) error { return errors.New("injected copy failure") },
	}); err != nil {
		t.Fatalf("RegisterHook: %v", err)
	}

	if err := lj.ScaleOut(1); err == nil {
		t.Fatal("sabotaged scale-out succeeded")
	}
	if lj.NumWorkers() != 2 {
		t.Fatalf("workers = %d after rollback, want 2", lj.NumWorkers())
	}
	var root telemetry.SpanRecord
	for _, s := range rec.Snapshot() {
		if s.Name == "core.scale_out" {
			root = s
		}
	}
	var sawRollback bool
	for _, ev := range root.Events {
		if ev.Name == "rollback" {
			sawRollback = true
		}
	}
	if !sawRollback {
		t.Errorf("no rollback event on %+v", root.Events)
	}
	if _, hasErr := root.Attr("error"); !hasErr {
		t.Error("failed adjustment carries no error attribute")
	}
	if got := reg.Counter("core_rollbacks_total").Value(); got != 1 {
		t.Errorf("core_rollbacks_total = %d, want 1", got)
	}
	if got := reg.Counter("core_adjustments_total").Value(); got != 0 {
		t.Errorf("core_adjustments_total = %d, want 0", got)
	}
}
