package core

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/elan-sys/elan/internal/coord"
	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/perfmodel"
	"github.com/elan-sys/elan/internal/replication"
	"github.com/elan-sys/elan/internal/scaling"
	"github.com/elan-sys/elan/internal/topology"
)

// Job is a simulated elastic data-parallel training job managed by Elan.
// Its timing is produced by the calibrated cost models, which lets the
// adjustment-performance experiments run thousands of adjustments in
// milliseconds of wall time.
type Job struct {
	Model      models.Model
	Cluster    *topology.Cluster
	Perf       *perfmodel.Perf
	Costs      SystemCosts
	Mech       *scaling.Mechanism
	Workers    []topology.GPUID
	TotalBatch int
	LR         float64
	// CoordInterval is how many iterations pass between coordinations.
	CoordInterval int

	rng  *rand.Rand
	iter int64
}

// JobConfig constructs a Job.
type JobConfig struct {
	Model         models.Model
	Cluster       *topology.Cluster
	Perf          *perfmodel.Perf
	Costs         SystemCosts
	Mech          *scaling.Mechanism
	Workers       []topology.GPUID
	TotalBatch    int
	LR            float64
	CoordInterval int
	Seed          int64
}

// NewJob validates the configuration and builds a Job.
func NewJob(cfg JobConfig) (*Job, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("core: nil cluster")
	}
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("core: job needs at least one worker")
	}
	if cfg.TotalBatch <= 0 || cfg.TotalBatch%len(cfg.Workers) != 0 {
		return nil, fmt.Errorf("core: total batch %d not divisible by %d workers",
			cfg.TotalBatch, len(cfg.Workers))
	}
	if cfg.LR <= 0 {
		return nil, fmt.Errorf("core: non-positive learning rate %v", cfg.LR)
	}
	if cfg.Perf == nil {
		cfg.Perf = perfmodel.Default()
	}
	if cfg.Mech == nil {
		m, err := scaling.New(scaling.Config{Perf: cfg.Perf})
		if err != nil {
			return nil, err
		}
		cfg.Mech = m
	}
	if cfg.CoordInterval <= 0 {
		cfg.CoordInterval = 1
	}
	if cfg.Costs == (SystemCosts{}) {
		cfg.Costs = DefaultSystemCosts()
	}
	workers := append([]topology.GPUID(nil), cfg.Workers...)
	return &Job{
		Model:         cfg.Model,
		Cluster:       cfg.Cluster,
		Perf:          cfg.Perf,
		Costs:         cfg.Costs,
		Mech:          cfg.Mech,
		Workers:       workers,
		TotalBatch:    cfg.TotalBatch,
		LR:            cfg.LR,
		CoordInterval: cfg.CoordInterval,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// NumWorkers returns the current worker count.
func (j *Job) NumWorkers() int { return len(j.Workers) }

// IterTime returns the current per-iteration time (without coordination).
func (j *Job) IterTime() (time.Duration, error) {
	return j.Perf.IterTime(j.Model, len(j.Workers), j.TotalBatch/len(j.Workers))
}

// Throughput returns the current training throughput in samples/sec,
// accounting for the amortized coordination overhead.
func (j *Job) Throughput() (float64, error) {
	it, err := j.IterTime()
	if err != nil {
		return 0, err
	}
	coordPer := time.Duration(float64(j.Costs.CoordBase+
		time.Duration(len(j.Workers))*j.Costs.CoordPerWorker) / float64(j.CoordInterval))
	return float64(j.TotalBatch) / (it + coordPer).Seconds(), nil
}

// RuntimeOverhead returns the relative throughput loss due to elasticity
// maintenance (the Figure 14 metric): coordination time divided by the
// iteration time, amortized over the coordination interval.
func (j *Job) RuntimeOverhead() (float64, error) {
	it, err := j.IterTime()
	if err != nil {
		return 0, err
	}
	coord := j.Costs.CoordBase + time.Duration(len(j.Workers))*j.Costs.CoordPerWorker
	per := float64(coord) / float64(j.CoordInterval)
	return per / float64(it), nil
}

// AdjustmentReport describes one resource adjustment.
type AdjustmentReport struct {
	Kind coord.Kind
	// Pause is the time training stood still — the paper's Figure 15
	// metric. For Elan this excludes new-worker start/init (hidden by the
	// asynchronous coordination mechanism).
	Pause time.Duration
	// HiddenStartInit is the start+initialization time that overlapped with
	// training (zero for baselines that pay it on the critical path).
	HiddenStartInit time.Duration
	// Breakdown itemizes the pause.
	Breakdown []Phase
	// Decision records what the hybrid scaling mechanism chose.
	Decision scaling.Decision
}

// Phase is one component of an adjustment pause.
type Phase struct {
	Name     string
	Duration time.Duration
}

func (r *AdjustmentReport) add(name string, d time.Duration) {
	r.Breakdown = append(r.Breakdown, Phase{Name: name, Duration: d})
	r.Pause += d
}

// ScaleOut grows the job onto the additional GPUs using Elan's mechanisms:
// start/init of the new workers overlaps training; the pause is one
// coordination, the concurrent topology-aware replication, the data
// repartition and the communicator reconstruction. The hybrid scaling
// mechanism picks the new total batch size and learning-rate target.
func (j *Job) ScaleOut(add []topology.GPUID) (AdjustmentReport, error) {
	if len(add) == 0 {
		return AdjustmentReport{}, fmt.Errorf("core: scale-out with no GPUs")
	}
	newWorkers := len(j.Workers) + len(add)
	dec, err := j.Mech.Decide(j.Model, len(j.Workers), j.TotalBatch, newWorkers, j.LR)
	if err != nil {
		return AdjustmentReport{}, fmt.Errorf("core: hybrid scaling: %w", err)
	}
	plan, err := replication.NewPlan(j.Workers, add, j.Model.GPUStateBytes(), j.Model.CPUStateBytes)
	if err != nil {
		return AdjustmentReport{}, err
	}
	rep := AdjustmentReport{Kind: coord.ScaleOut, Decision: dec}
	// Start+init of new workers happens off the critical path: record the
	// hidden cost (max over workers starting in parallel).
	var hidden time.Duration
	for range add {
		if t := j.Costs.StartInitTime(j.rng); t > hidden {
			hidden = t
		}
	}
	rep.HiddenStartInit = hidden
	rep.add("coordinate", j.Costs.CoordTime(j.rng, len(j.Workers)))
	rep.add("replicate", j.Costs.sample(j.rng, plan.Duration(j.Cluster)))
	rep.add("repartition", j.Costs.sample(j.rng, j.Costs.Repartition))
	rep.add("group-reconstruct", j.Costs.GroupReconstructTime(j.rng, newWorkers))

	j.Workers = append(j.Workers, add...)
	j.TotalBatch = dec.TotalBatch
	j.LR = dec.TargetLR
	return rep, nil
}

// ScaleIn shrinks the job by removing the given GPUs. No state movement is
// needed (every survivor holds a full copy); the pause is coordination,
// repartition and communicator reconstruction.
func (j *Job) ScaleIn(remove []topology.GPUID) (AdjustmentReport, error) {
	if len(remove) == 0 {
		return AdjustmentReport{}, fmt.Errorf("core: scale-in with no GPUs")
	}
	if len(remove) >= len(j.Workers) {
		return AdjustmentReport{}, fmt.Errorf("core: scale-in would remove all %d workers", len(j.Workers))
	}
	removeSet := make(map[topology.GPUID]bool, len(remove))
	for _, g := range remove {
		removeSet[g] = true
	}
	var survivors []topology.GPUID
	for _, w := range j.Workers {
		if !removeSet[w] {
			survivors = append(survivors, w)
		}
	}
	if len(survivors)+len(remove) != len(j.Workers) {
		return AdjustmentReport{}, fmt.Errorf("core: scale-in GPUs not all part of the job")
	}
	dec, err := j.Mech.Decide(j.Model, len(j.Workers), j.TotalBatch, len(survivors), j.LR)
	if err != nil {
		return AdjustmentReport{}, fmt.Errorf("core: hybrid scaling: %w", err)
	}
	rep := AdjustmentReport{Kind: coord.ScaleIn, Decision: dec}
	rep.add("coordinate", j.Costs.CoordTime(j.rng, len(j.Workers)))
	rep.add("repartition", j.Costs.sample(j.rng, j.Costs.Repartition))
	rep.add("group-reconstruct", j.Costs.GroupReconstructTime(j.rng, len(survivors)))
	j.Workers = survivors
	j.TotalBatch = dec.TotalBatch
	j.LR = dec.TargetLR
	return rep, nil
}

// Replace swaps a single worker for a new GPU — the straggler-mitigation
// primitive: when one device degrades, its rank is moved to a healthy GPU
// while the rest of the job keeps its placement. State for the replacement
// comes from the nearest surviving worker; the pause is one coordination,
// one replication, repartition and group reconstruction, like a one-worker
// migration. The batch size and learning rate are untouched.
func (j *Job) Replace(old, new topology.GPUID) (AdjustmentReport, error) {
	idx := -1
	for i, w := range j.Workers {
		if w == old {
			idx = i
			break
		}
	}
	if idx < 0 {
		return AdjustmentReport{}, fmt.Errorf("core: worker %v not part of the job", old)
	}
	survivors := make([]topology.GPUID, 0, len(j.Workers)-1)
	for i, w := range j.Workers {
		if i != idx {
			survivors = append(survivors, w)
		}
	}
	if len(survivors) == 0 {
		return AdjustmentReport{}, fmt.Errorf("core: cannot replace the only worker")
	}
	plan, err := replication.NewPlan(survivors, []topology.GPUID{new},
		j.Model.GPUStateBytes(), j.Model.CPUStateBytes)
	if err != nil {
		return AdjustmentReport{}, err
	}
	rep := AdjustmentReport{Kind: coord.Migrate}
	rep.HiddenStartInit = j.Costs.StartInitTime(j.rng)
	rep.add("coordinate", j.Costs.CoordTime(j.rng, len(j.Workers)))
	rep.add("replicate", j.Costs.sample(j.rng, plan.Duration(j.Cluster)))
	rep.add("repartition", j.Costs.sample(j.rng, j.Costs.Repartition))
	rep.add("group-reconstruct", j.Costs.GroupReconstructTime(j.rng, len(j.Workers)))
	j.Workers[idx] = new
	return rep, nil
}

// Migrate moves the job to an entirely new worker set of the same size.
// State is replicated from the old workers to the new ones concurrently;
// old workers are released afterwards (their shutdown is off the critical
// path).
func (j *Job) Migrate(dest []topology.GPUID) (AdjustmentReport, error) {
	if len(dest) == 0 {
		return AdjustmentReport{}, fmt.Errorf("core: migrate to empty worker set")
	}
	dec, err := j.Mech.Decide(j.Model, len(j.Workers), j.TotalBatch, len(dest), j.LR)
	if err != nil {
		return AdjustmentReport{}, fmt.Errorf("core: hybrid scaling: %w", err)
	}
	plan, err := replication.NewPlan(j.Workers, dest, j.Model.GPUStateBytes(), j.Model.CPUStateBytes)
	if err != nil {
		return AdjustmentReport{}, err
	}
	rep := AdjustmentReport{Kind: coord.Migrate, Decision: dec}
	var hidden time.Duration
	for range dest {
		if t := j.Costs.StartInitTime(j.rng); t > hidden {
			hidden = t
		}
	}
	rep.HiddenStartInit = hidden
	rep.add("coordinate", j.Costs.CoordTime(j.rng, len(j.Workers)))
	rep.add("replicate", j.Costs.sample(j.rng, plan.Duration(j.Cluster)))
	rep.add("repartition", j.Costs.sample(j.rng, j.Costs.Repartition))
	rep.add("group-reconstruct", j.Costs.GroupReconstructTime(j.rng, len(dest)))
	j.Workers = append([]topology.GPUID(nil), dest...)
	j.TotalBatch = dec.TotalBatch
	j.LR = dec.TargetLR
	return rep, nil
}
