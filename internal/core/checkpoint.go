package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"github.com/elan-sys/elan/internal/checkpoint"
)

// Delta-checkpoint threading (DESIGN §13): a LiveJob's snapshot splits
// into a tensor part — Params ++ OptState, the state vector the delta
// store chunks and content-hashes — and a small header of runtime fields
// (cursor, iteration, LR schedule) gob-encoded into the manifest. Saves
// after the first write only the chunks the optimizer actually moved;
// restores rebuild the exact Snapshot the full-blob path would have
// produced.

// snapshotHeader is the non-tensor remainder of a Snapshot plus the split
// point of the state vector.
type snapshotHeader struct {
	Cursor    int
	Iteration int
	TBS       int
	LR0, LRT  float64
	LRTime0   int
	LRRamp    int
	NumParams int
}

// SaveDelta checkpoints the job's current training state into the delta
// store under name, persisting only chunks that changed since the last
// save of that name.
func (lj *LiveJob) SaveDelta(ds *checkpoint.DeltaStore, name string) (checkpoint.SaveStats, error) {
	snap, err := lj.Snapshot()
	if err != nil {
		return checkpoint.SaveStats{}, err
	}
	hdr, state, err := encodeSnapshot(snap)
	if err != nil {
		return checkpoint.SaveStats{}, err
	}
	return ds.Save(name, hdr, state)
}

// RestoreDelta rebuilds the last committed checkpoint of name from its
// manifest chain and installs it into the job — the recovery path after a
// crash, equivalent to RestoreSnapshot of the state at the last committed
// save.
func (lj *LiveJob) RestoreDelta(ds *checkpoint.DeltaStore, name string) (checkpoint.RestoreStats, error) {
	hdr, state, stats, err := ds.Restore(name)
	if err != nil {
		return checkpoint.RestoreStats{}, err
	}
	snap, err := decodeSnapshot(hdr, state)
	if err != nil {
		return checkpoint.RestoreStats{}, err
	}
	if err := lj.RestoreSnapshot(snap); err != nil {
		return checkpoint.RestoreStats{}, err
	}
	return stats, nil
}

// encodeSnapshot flattens a Snapshot into the delta store's (header,
// state-vector) form.
func encodeSnapshot(snap *Snapshot) ([]byte, []float64, error) {
	var buf bytes.Buffer
	h := snapshotHeader{
		Cursor:    snap.Cursor,
		Iteration: snap.Iteration,
		TBS:       snap.TBS,
		LR0:       snap.LR0,
		LRT:       snap.LRT,
		LRTime0:   snap.LRTime0,
		LRRamp:    snap.LRRamp,
		NumParams: len(snap.Params),
	}
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		return nil, nil, fmt.Errorf("core: encode checkpoint header: %w", err)
	}
	// Snapshot() flattens into fresh slices, so extending Params in place
	// cannot alias live training state.
	state := append(snap.Params, snap.OptState...)
	return buf.Bytes(), state, nil
}

// decodeSnapshot is the inverse of encodeSnapshot.
func decodeSnapshot(hdr []byte, state []float64) (*Snapshot, error) {
	var h snapshotHeader
	if err := gob.NewDecoder(bytes.NewReader(hdr)).Decode(&h); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint header: %w", err)
	}
	if h.NumParams < 0 || h.NumParams > len(state) {
		return nil, fmt.Errorf("core: checkpoint header splits %d params out of %d elems",
			h.NumParams, len(state))
	}
	return &Snapshot{
		Params:    state[:h.NumParams],
		OptState:  state[h.NumParams:],
		Cursor:    h.Cursor,
		Iteration: h.Iteration,
		TBS:       h.TBS,
		LR0:       h.LR0,
		LRT:       h.LRT,
		LRTime0:   h.LRTime0,
		LRRamp:    h.LRRamp,
	}, nil
}
