package core
