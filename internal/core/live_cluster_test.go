package core

import (
	"testing"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/telemetry"
	"github.com/elan-sys/elan/internal/topology"
)

// liveCluster builds a 2-node × 2-GPU simulated cluster (4 GPUs): a
// 4-worker job spans both nodes (hierarchical group), 2 workers pack onto
// one node (flat group).
func liveCluster(t *testing.T) *topology.Cluster {
	t.Helper()
	geom := topology.DefaultGeometry()
	geom.Nodes, geom.SocketsPerNode, geom.SwitchesPerSock, geom.GPUsPerSwitch = 2, 1, 1, 2
	c, err := topology.NewCluster(geom)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

// linkLabels collects the distinct "link" attributes of the allreduce spans
// recorded so far, then resets the recorder.
func linkLabels(t *testing.T, rec *telemetry.Recorder) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for _, sp := range rec.Snapshot() {
		if sp.Name != "collective.allreduce" {
			continue
		}
		link, ok := sp.Attr("link")
		if !ok {
			t.Fatal("allreduce span missing link attr")
		}
		out[link] = true
	}
	rec.Reset()
	return out
}

// TestLiveJobClusterElasticPlacement is the end-to-end elasticity story on
// a simulated cluster: 4 workers span two nodes and reduce hierarchically
// over L4; scaling in to 2 re-packs the placement onto one node and the
// group degenerates to the flat single-node ring (L1); scaling back out
// re-spans the nodes. The replica invariant holds across every transition
// and Close returns the reservation.
func TestLiveJobClusterElasticPlacement(t *testing.T) {
	cl := liveCluster(t)
	rec := telemetry.NewRecorder(clock.Wall{}, 8192)
	lj, err := NewLiveJob(LiveConfig{
		Dataset:     liveDataset(t, 2048),
		LayerSizes:  []int{2, 24, 3},
		Workers:     4,
		TotalBatch:  32,
		LR:          0.05,
		Momentum:    0.9,
		Seed:        7,
		Tracer:      rec,
		Cluster:     cl,
		BucketElems: 60,
	})
	if err != nil {
		t.Fatalf("NewLiveJob: %v", err)
	}
	t.Cleanup(lj.Close)
	if free := cl.NumFree(); free != 0 {
		t.Fatalf("%d GPUs free with 4 workers placed, want 0", free)
	}
	step := func(phase string) {
		t.Helper()
		for i := 0; i < 5; i++ {
			if _, err := lj.Step(); err != nil {
				t.Fatalf("%s step %d: %v", phase, i, err)
			}
		}
		if !lj.ReplicasConsistent() {
			t.Fatalf("replicas diverged (%s)", phase)
		}
	}
	rec.Reset() // drop construction-time spans
	step("4 workers, two nodes")
	if links := linkLabels(t, rec); !links["L4"] || len(links) != 1 {
		t.Fatalf("two-node links = %v, want {L4}", links)
	}

	if err := lj.ScaleIn(2); err != nil {
		t.Fatalf("ScaleIn: %v", err)
	}
	if free := cl.NumFree(); free != 2 {
		t.Fatalf("%d GPUs free after scale-in, want 2", free)
	}
	step("2 workers, one node")
	if links := linkLabels(t, rec); !links["L1"] || len(links) != 1 {
		t.Fatalf("one-node links = %v, want {L1}", links)
	}

	if err := lj.ScaleOut(2); err != nil {
		t.Fatalf("ScaleOut: %v", err)
	}
	if free := cl.NumFree(); free != 0 {
		t.Fatalf("%d GPUs free after scale-out, want 0", free)
	}
	step("back to 4 workers")
	if links := linkLabels(t, rec); !links["L4"] || len(links) != 1 {
		t.Fatalf("re-spanned links = %v, want {L4}", links)
	}

	lj.Close()
	if free := cl.NumFree(); free != 4 {
		t.Fatalf("%d GPUs free after Close, want 4", free)
	}
}

// TestLiveJobBucketedMatchesWholeVector pins down the accuracy contract of
// bucketing: splitting the gradient into buckets shifts each element's ring
// rotation anchor, so the averaged gradients are the same real-number mean
// under a different IEEE accumulation order — training must track the
// whole-vector configuration to tight tolerance (the bitwise guarantee
// belongs to BucketElems=0, pinned in the ddp package's differential
// tests).
func TestLiveJobBucketedMatchesWholeVector(t *testing.T) {
	run := func(bucketElems int) []float64 {
		lj, err := NewLiveJob(LiveConfig{
			Dataset:     liveDataset(t, 2048),
			LayerSizes:  []int{2, 24, 3},
			Workers:     3,
			TotalBatch:  24,
			LR:          0.05,
			Momentum:    0.9,
			Seed:        7,
			BucketElems: bucketElems,
		})
		if err != nil {
			t.Fatalf("NewLiveJob: %v", err)
		}
		defer lj.Close()
		for i := 0; i < 20; i++ {
			if _, err := lj.Step(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
		return lj.workers[0].net.FlattenParams(nil)
	}
	whole := run(0)
	bucketed := run(60)
	if len(whole) != len(bucketed) {
		t.Fatalf("param count mismatch: %d vs %d", len(whole), len(bucketed))
	}
	for i := range whole {
		diff := whole[i] - bucketed[i]
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if s := whole[i]; s > scale || -s > scale {
			scale = s
			if scale < 0 {
				scale = -scale
			}
		}
		if diff > 1e-9*scale {
			t.Fatalf("param %d drifted: whole-vector %v vs bucketed %v", i, whole[i], bucketed[i])
		}
	}
}
