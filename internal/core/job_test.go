package core

import (
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/coord"
	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/topology"
)

func testCluster(t *testing.T) *topology.Cluster {
	t.Helper()
	c, err := topology.NewCluster(topology.DefaultGeometry())
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func testJob(t *testing.T, nWorkers, tbs int) (*Job, *topology.Cluster) {
	t.Helper()
	c := testCluster(t)
	gpus, err := c.Reserve(nWorkers)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	j, err := NewJob(JobConfig{
		Model:         models.ResNet50(),
		Cluster:       c,
		Workers:       topology.IDsOf(gpus),
		TotalBatch:    tbs,
		LR:            0.1,
		CoordInterval: 1,
		Seed:          1,
	})
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	return j, c
}

func TestNewJobValidation(t *testing.T) {
	c := testCluster(t)
	gpus, _ := c.Reserve(4)
	ids := topology.IDsOf(gpus)
	base := JobConfig{Model: models.ResNet50(), Cluster: c, Workers: ids, TotalBatch: 128, LR: 0.1}

	bad := base
	bad.Cluster = nil
	if _, err := NewJob(bad); err == nil {
		t.Fatal("nil cluster accepted")
	}
	bad = base
	bad.Workers = nil
	if _, err := NewJob(bad); err == nil {
		t.Fatal("no workers accepted")
	}
	bad = base
	bad.TotalBatch = 100 // not divisible by 4? 100/4=25, divisible. Use 101.
	bad.TotalBatch = 101
	if _, err := NewJob(bad); err == nil {
		t.Fatal("non-divisible batch accepted")
	}
	bad = base
	bad.LR = 0
	if _, err := NewJob(bad); err == nil {
		t.Fatal("zero LR accepted")
	}
	if _, err := NewJob(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestRuntimeOverheadUnderThreePerMille(t *testing.T) {
	// Figure 14: runtime overhead < 3 per-mille for all models, 2-64
	// workers, coordinating every iteration.
	c := testCluster(t)
	for _, m := range models.Zoo() {
		for _, n := range []int{2, 4, 8, 16, 32, 64} {
			gpus, err := c.Reserve(n)
			if err != nil {
				t.Fatalf("Reserve: %v", err)
			}
			perWorker := m.MaxPerWorkerBatch / 2
			j, err := NewJob(JobConfig{
				Model:   m,
				Cluster: c,
				Workers: topology.IDsOf(gpus), TotalBatch: n * perWorker,
				LR: 0.1, CoordInterval: 1, Seed: 2,
			})
			if err != nil {
				t.Fatalf("NewJob: %v", err)
			}
			ov, err := j.RuntimeOverhead()
			if err != nil {
				t.Fatalf("RuntimeOverhead: %v", err)
			}
			if ov >= 0.003 {
				t.Errorf("%s N=%d: overhead %.5f >= 3 per-mille", m.Name, n, ov)
			}
			if ov <= 0 {
				t.Errorf("%s N=%d: overhead %.5f not positive", m.Name, n, ov)
			}
			c.Release(gpus)
		}
	}
}

func TestScaleOutElan(t *testing.T) {
	j, c := testJob(t, 16, 512)
	add, err := c.Reserve(16)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	rep, err := j.ScaleOut(topology.IDsOf(add))
	if err != nil {
		t.Fatalf("ScaleOut: %v", err)
	}
	if j.NumWorkers() != 32 {
		t.Fatalf("workers = %d", j.NumWorkers())
	}
	if rep.Kind != coord.ScaleOut {
		t.Fatalf("kind = %v", rep.Kind)
	}
	// Elan's pause is ~1s scale: well under 5s, over 100ms (group
	// reconstruction alone is ~0.5s).
	if rep.Pause > 5*time.Second || rep.Pause < 100*time.Millisecond {
		t.Fatalf("pause = %v, want sub-5s", rep.Pause)
	}
	// Start+init was hidden, not part of the pause.
	if rep.HiddenStartInit < 10*time.Second {
		t.Fatalf("hidden start/init = %v, want tens of seconds", rep.HiddenStartInit)
	}
	// Strong scaling at this operating point: TBS unchanged.
	if j.TotalBatch != 512 {
		t.Fatalf("TBS = %d after 16->32 scale-out", j.TotalBatch)
	}
	// Breakdown covers the documented phases.
	names := map[string]bool{}
	for _, p := range rep.Breakdown {
		names[p.Name] = true
	}
	for _, want := range []string{"coordinate", "replicate", "repartition", "group-reconstruct"} {
		if !names[want] {
			t.Errorf("breakdown missing %q", want)
		}
	}
}

func TestScaleOutValidation(t *testing.T) {
	j, _ := testJob(t, 4, 128)
	if _, err := j.ScaleOut(nil); err == nil {
		t.Fatal("empty scale-out accepted")
	}
}

func TestScaleInElan(t *testing.T) {
	j, _ := testJob(t, 32, 1024)
	remove := j.Workers[16:]
	rep, err := j.ScaleIn(append([]topology.GPUID(nil), remove...))
	if err != nil {
		t.Fatalf("ScaleIn: %v", err)
	}
	if j.NumWorkers() != 16 {
		t.Fatalf("workers = %d", j.NumWorkers())
	}
	// Scale-in moves no state: no "replicate" phase, pause sub-second scale.
	for _, p := range rep.Breakdown {
		if p.Name == "replicate" {
			t.Fatal("scale-in performed replication")
		}
	}
	if rep.Pause > 2*time.Second {
		t.Fatalf("scale-in pause = %v", rep.Pause)
	}
	if j.TotalBatch != 1024 {
		t.Fatalf("TBS changed on scale-in: %d", j.TotalBatch)
	}
}

func TestScaleInValidation(t *testing.T) {
	j, _ := testJob(t, 4, 128)
	if _, err := j.ScaleIn(nil); err == nil {
		t.Fatal("empty scale-in accepted")
	}
	if _, err := j.ScaleIn(j.Workers); err == nil {
		t.Fatal("removing all workers accepted")
	}
	stranger := []topology.GPUID{{Node: 7, Socket: 1, Switch: 1, Index: 1}}
	if _, err := j.ScaleIn(stranger); err == nil {
		t.Fatal("removing a non-member accepted")
	}
}

func TestMigrateElan(t *testing.T) {
	j, c := testJob(t, 8, 256)
	dest, err := c.Reserve(8)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	destIDs := topology.IDsOf(dest)
	rep, err := j.Migrate(destIDs)
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if j.NumWorkers() != 8 {
		t.Fatalf("workers = %d", j.NumWorkers())
	}
	for i, w := range j.Workers {
		if w != destIDs[i] {
			t.Fatalf("worker %d = %v, want %v", i, w, destIDs[i])
		}
	}
	if rep.Pause > 5*time.Second {
		t.Fatalf("migration pause = %v", rep.Pause)
	}
	if _, err := j.Migrate(nil); err == nil {
		t.Fatal("empty migration accepted")
	}
}

func TestHybridWeakScalingOnBigScaleOut(t *testing.T) {
	// Scaling 16 -> 512 workers at TBS 512 exceeds the strong-scaling
	// optimum; the hybrid mechanism must grow the batch and the LR.
	c := testCluster(t)
	geo := topology.DefaultGeometry()
	geo.Nodes = 128 // big virtual cluster
	big, err := topology.NewCluster(geo)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	_ = c
	gpus, err := big.Reserve(16)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	j, err := NewJob(JobConfig{
		Model:   models.ResNet50(),
		Cluster: big,
		Workers: topology.IDsOf(gpus), TotalBatch: 512, LR: 0.1, Seed: 3,
	})
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	add, err := big.Reserve(496)
	if err != nil {
		t.Fatalf("Reserve add: %v", err)
	}
	rep, err := j.ScaleOut(topology.IDsOf(add))
	if err != nil {
		t.Fatalf("ScaleOut: %v", err)
	}
	if rep.Decision.Strong {
		t.Fatal("expected weak scaling for 16->512")
	}
	if j.TotalBatch <= 512 {
		t.Fatalf("TBS = %d, want > 512", j.TotalBatch)
	}
	wantLR := 0.1 * float64(j.TotalBatch) / 512
	if diff := j.LR - wantLR; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("LR = %v, want %v (linear scaling rule)", j.LR, wantLR)
	}
}

func TestThroughputPositive(t *testing.T) {
	j, _ := testJob(t, 16, 512)
	tp, err := j.Throughput()
	if err != nil {
		t.Fatalf("Throughput: %v", err)
	}
	if tp <= 0 {
		t.Fatalf("throughput = %v", tp)
	}
	it, err := j.IterTime()
	if err != nil || it <= 0 {
		t.Fatalf("IterTime = %v, %v", it, err)
	}
}

func TestReplaceStraggler(t *testing.T) {
	j, c := testJob(t, 8, 256)
	spare, err := c.Reserve(1)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	victim := j.Workers[3]
	rep, err := j.Replace(victim, spare[0].ID)
	if err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if j.NumWorkers() != 8 {
		t.Fatalf("workers = %d", j.NumWorkers())
	}
	if j.Workers[3] != spare[0].ID {
		t.Fatalf("worker 3 = %v, want replacement", j.Workers[3])
	}
	// Replacement is a one-worker migration: sub-second pause, hidden
	// start/init, unchanged hyperparameters.
	if rep.Pause > 2*time.Second || rep.HiddenStartInit == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if j.TotalBatch != 256 {
		t.Fatalf("TBS changed: %d", j.TotalBatch)
	}
	// Replacing a non-member fails.
	if _, err := j.Replace(victim, spare[0].ID); err == nil {
		t.Fatal("replacing a departed worker accepted")
	}
}
