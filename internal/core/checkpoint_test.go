package core

import (
	"testing"

	"github.com/elan-sys/elan/internal/checkpoint"
)

// TestLiveJobDeltaRoundTrip trains, delta-saves, trains further, then
// restores — the job must land bit-identical on the checkpointed state,
// and the second save must write far fewer chunks than the first (SGD
// moves every parameter, but the loader cursor and runtime header ride in
// the manifest, so the test instead verifies dirty tracking across an
// unchanged save).
func TestLiveJobDeltaRoundTrip(t *testing.T) {
	lj := liveJob(t, 2, 8)
	ds := checkpoint.NewDeltaStore(checkpoint.DeltaConfig{ChunkElems: 16, CompactEvery: 100})

	for i := 0; i < 3; i++ {
		if _, err := lj.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st1, err := lj.SaveDelta(ds, "job")
	if err != nil {
		t.Fatal(err)
	}
	if !st1.Full || st1.ChunksWritten == 0 {
		t.Fatalf("first save stats = %+v", st1)
	}
	want, err := lj.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// An immediate re-save writes nothing: every chunk is clean.
	st2, err := lj.SaveDelta(ds, "job")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Full || st2.ChunksDirty != 0 || st2.BytesWritten != 0 {
		t.Fatalf("clean re-save stats = %+v", st2)
	}

	// Train past the checkpoint, then recover from it.
	for i := 0; i < 4; i++ {
		if _, err := lj.Step(); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := lj.RestoreDelta(ds, "job")
	if err != nil {
		t.Fatal(err)
	}
	if rs.ChunksReplayed == 0 {
		t.Fatalf("restore stats = %+v", rs)
	}
	got, err := lj.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != want.Iteration || got.Cursor != want.Cursor || got.TBS != want.TBS {
		t.Fatalf("runtime state: got iter=%d cursor=%d tbs=%d, want iter=%d cursor=%d tbs=%d",
			got.Iteration, got.Cursor, got.TBS, want.Iteration, want.Cursor, want.TBS)
	}
	if len(got.Params) != len(want.Params) || len(got.OptState) != len(want.OptState) {
		t.Fatalf("state sizes: %d/%d vs %d/%d",
			len(got.Params), len(got.OptState), len(want.Params), len(want.OptState))
	}
	for i := range want.Params {
		if got.Params[i] != want.Params[i] {
			t.Fatalf("param %d: %v != %v (not bit-identical)", i, got.Params[i], want.Params[i])
		}
	}
	for i := range want.OptState {
		if got.OptState[i] != want.OptState[i] {
			t.Fatalf("opt state %d: %v != %v (not bit-identical)", i, got.OptState[i], want.OptState[i])
		}
	}
	// Training resumes from the restored state.
	if _, err := lj.Step(); err != nil {
		t.Fatal(err)
	}
	if !lj.ReplicasConsistent() {
		t.Fatal("replicas diverged after delta restore")
	}
}
