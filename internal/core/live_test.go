package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/data"
)

func liveDataset(t *testing.T, n int) *data.Dataset {
	t.Helper()
	d, err := data.GenGaussianMixture(17, n, 2, 3)
	if err != nil {
		t.Fatalf("GenGaussianMixture: %v", err)
	}
	return d
}

func liveJob(t *testing.T, workers, tbs int) *LiveJob {
	t.Helper()
	lj, err := NewLiveJob(LiveConfig{
		Dataset:    liveDataset(t, 2048),
		LayerSizes: []int{2, 24, 3},
		Workers:    workers,
		TotalBatch: tbs,
		LR:         0.05,
		Momentum:   0.9,
		Seed:       7,
	})
	if err != nil {
		t.Fatalf("NewLiveJob: %v", err)
	}
	t.Cleanup(lj.Close)
	return lj
}

func TestNewLiveJobValidation(t *testing.T) {
	d := liveDataset(t, 100)
	cases := []LiveConfig{
		{Dataset: nil, LayerSizes: []int{2, 3}, Workers: 2, TotalBatch: 8, LR: 0.1},
		{Dataset: d, LayerSizes: []int{2, 3}, Workers: 0, TotalBatch: 8, LR: 0.1},
		{Dataset: d, LayerSizes: []int{2, 3}, Workers: 3, TotalBatch: 8, LR: 0.1},
		{Dataset: d, LayerSizes: []int{2}, Workers: 2, TotalBatch: 8, LR: 0.1},
		{Dataset: d, LayerSizes: []int{5, 3}, Workers: 2, TotalBatch: 8, LR: 0.1},
		{Dataset: d, LayerSizes: []int{2, 4}, Workers: 2, TotalBatch: 8, LR: 0.1},
		{Dataset: d, LayerSizes: []int{2, 3}, Workers: 2, TotalBatch: 8, LR: 0},
	}
	for i, cfg := range cases {
		if _, err := NewLiveJob(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestLiveAdjustmentCancelled(t *testing.T) {
	// A cancelled context must unwind an adjustment before it commits: the
	// worker set, iteration count and replica invariant are untouched.
	lj := liveJob(t, 2, 32)
	for i := 0; i < 5; i++ {
		if _, err := lj.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := lj.ScaleOutCtx(ctx, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("ScaleOutCtx = %v, want context.Canceled", err)
	}
	if err := lj.ScaleInCtx(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("ScaleInCtx = %v, want context.Canceled", err)
	}
	if lj.NumWorkers() != 2 {
		t.Fatalf("workers = %d after cancelled adjustments, want 2", lj.NumWorkers())
	}
	if !lj.ReplicasConsistent() {
		t.Fatal("replicas inconsistent after cancelled adjustment")
	}
	// Training continues as if nothing happened.
	if _, err := lj.Step(); err != nil {
		t.Fatalf("Step after cancelled adjustment: %v", err)
	}
}

func TestLiveAdjustDurationOnSimClock(t *testing.T) {
	// With an injected sim clock the adjustment duration is measured in
	// virtual time; nothing advances the clock here, so it must be zero —
	// proving the measurement uses the injected clock, not the wall.
	sim := clock.NewSim(time.Unix(0, 0))
	lj, err := NewLiveJob(LiveConfig{
		Dataset:    liveDataset(t, 512),
		LayerSizes: []int{2, 8, 3},
		Workers:    2,
		TotalBatch: 32,
		LR:         0.05,
		Seed:       7,
		Clock:      sim,
	})
	if err != nil {
		t.Fatalf("NewLiveJob: %v", err)
	}
	t.Cleanup(lj.Close)
	if err := lj.ScaleOut(2); err != nil {
		t.Fatalf("ScaleOut: %v", err)
	}
	if got := lj.LastAdjustDuration(); got != 0 {
		t.Fatalf("LastAdjustDuration = %v on a frozen sim clock, want 0", got)
	}
	if lj.NumWorkers() != 4 {
		t.Fatalf("workers = %d, want 4", lj.NumWorkers())
	}
}

func TestLiveTrainingConverges(t *testing.T) {
	lj := liveJob(t, 4, 64)
	var first, last float64
	for i := 0; i < 150; i++ {
		loss, err := lj.Step()
		if err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first*0.7 {
		t.Fatalf("loss barely moved: %v -> %v", first, last)
	}
	_, acc, err := lj.Evaluate(liveDataset(t, 512))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if acc < 0.6 {
		t.Fatalf("accuracy = %v, want >= 0.6", acc)
	}
	if lj.Iteration() != 150 {
		t.Fatalf("Iteration = %d", lj.Iteration())
	}
}

func TestLiveReplicasStayConsistent(t *testing.T) {
	lj := liveJob(t, 4, 32)
	if !lj.ReplicasConsistent() {
		t.Fatal("replicas differ at init")
	}
	for i := 0; i < 20; i++ {
		if _, err := lj.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if !lj.ReplicasConsistent() {
		t.Fatal("replicas diverged during training")
	}
}

func TestLiveScaleOutPreservesState(t *testing.T) {
	lj := liveJob(t, 2, 32)
	for i := 0; i < 10; i++ {
		if _, err := lj.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if err := lj.ScaleOut(2); err != nil {
		t.Fatalf("ScaleOut: %v", err)
	}
	if lj.NumWorkers() != 4 {
		t.Fatalf("workers = %d", lj.NumWorkers())
	}
	// The data-parallel invariant must hold right after replication: the
	// new workers carry the trained state, not fresh init.
	if !lj.ReplicasConsistent() {
		t.Fatal("replicas inconsistent after scale-out")
	}
	// And training continues.
	for i := 0; i < 10; i++ {
		if _, err := lj.Step(); err != nil {
			t.Fatalf("Step after scale-out: %v", err)
		}
	}
	if !lj.ReplicasConsistent() {
		t.Fatal("replicas diverged after post-scale-out training")
	}
	if lj.Iteration() != 20 {
		t.Fatalf("Iteration = %d, want 20 (state carried over)", lj.Iteration())
	}
}

func TestLiveScaleOutValidation(t *testing.T) {
	lj := liveJob(t, 2, 32)
	if err := lj.ScaleOut(0); err == nil {
		t.Fatal("zero scale-out accepted")
	}
	if err := lj.ScaleOut(3); err == nil {
		t.Fatal("indivisible worker count accepted") // 32 % 5 != 0
	}
}

func TestLiveScaleIn(t *testing.T) {
	lj := liveJob(t, 4, 32)
	for i := 0; i < 5; i++ {
		if _, err := lj.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if err := lj.ScaleIn(2); err != nil {
		t.Fatalf("ScaleIn: %v", err)
	}
	if lj.NumWorkers() != 2 {
		t.Fatalf("workers = %d", lj.NumWorkers())
	}
	if !lj.ReplicasConsistent() {
		t.Fatal("replicas inconsistent after scale-in")
	}
	for i := 0; i < 5; i++ {
		if _, err := lj.Step(); err != nil {
			t.Fatalf("Step after scale-in: %v", err)
		}
	}
	if err := lj.ScaleIn(5); err == nil {
		t.Fatal("removing more workers than exist accepted")
	}
	if err := lj.ScaleIn(0); err == nil {
		t.Fatal("zero scale-in accepted")
	}
}

func TestLiveElasticityMatchesStaticTraining(t *testing.T) {
	// The headline correctness property: a job that scales 2 -> 4 -> 2
	// workers mid-training computes numerically similar results to a static
	// job, because gradients are averaged over the same total batch drawn
	// from the same serial cursor. (Floating-point summation order differs
	// across group sizes, so we compare loss trajectories loosely.)
	static := liveJob(t, 2, 32)
	elastic := liveJob(t, 2, 32)
	var staticLoss, elasticLoss float64
	for i := 0; i < 30; i++ {
		l, err := static.Step()
		if err != nil {
			t.Fatalf("static Step: %v", err)
		}
		staticLoss = l
	}
	for i := 0; i < 10; i++ {
		if _, err := elastic.Step(); err != nil {
			t.Fatalf("elastic Step: %v", err)
		}
	}
	if err := elastic.ScaleOut(2); err != nil {
		t.Fatalf("ScaleOut: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := elastic.Step(); err != nil {
			t.Fatalf("elastic Step: %v", err)
		}
	}
	if err := elastic.ScaleIn(2); err != nil {
		t.Fatalf("ScaleIn: %v", err)
	}
	for i := 0; i < 10; i++ {
		l, err := elastic.Step()
		if err != nil {
			t.Fatalf("elastic Step: %v", err)
		}
		elasticLoss = l
	}
	// Both trained 30 iterations at TBS 32 over the same data order.
	if elastic.Iteration() != static.Iteration() {
		t.Fatalf("iterations: %d vs %d", elastic.Iteration(), static.Iteration())
	}
	ratio := elasticLoss / staticLoss
	if ratio > 1.5 || ratio < 0.6 {
		t.Fatalf("elastic loss %v too far from static loss %v", elasticLoss, staticLoss)
	}
}

func TestLiveSetTotalBatchProgressive(t *testing.T) {
	lj := liveJob(t, 2, 16)
	for i := 0; i < 5; i++ {
		if _, err := lj.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	lr0 := lj.LR()
	if err := lj.SetTotalBatch(32, 10, true); err != nil {
		t.Fatalf("SetTotalBatch: %v", err)
	}
	if lj.TotalBatch() != 32 {
		t.Fatalf("TBS = %d", lj.TotalBatch())
	}
	// Immediately after the change the LR has not jumped yet.
	if got := lj.LR(); got > lr0*1.15 {
		t.Fatalf("LR jumped immediately: %v -> %v", lr0, got)
	}
	for i := 0; i < 12; i++ {
		if _, err := lj.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	// After the ramp the LR is doubled (k=2).
	want := lr0 * 2
	if got := lj.LR(); got < want*0.99 || got > want*1.01 {
		t.Fatalf("LR after ramp = %v, want %v", got, want)
	}
	if err := lj.SetTotalBatch(33, 10, true); err == nil {
		t.Fatal("indivisible TBS accepted")
	}
}

func TestLiveSetTotalBatchImmediate(t *testing.T) {
	lj := liveJob(t, 2, 16)
	lr0 := lj.LR()
	if err := lj.SetTotalBatch(64, 100, false); err != nil {
		t.Fatalf("SetTotalBatch: %v", err)
	}
	// Immediate mode: LR jumps to 4x at once.
	want := lr0 * 4
	if got := lj.LR(); got < want*0.99 || got > want*1.01 {
		t.Fatalf("immediate LR = %v, want %v", got, want)
	}
}
