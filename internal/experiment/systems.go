package experiment

import (
	"fmt"
	"io"
	"time"

	"github.com/elan-sys/elan/internal/baseline"
	"github.com/elan-sys/elan/internal/checkpoint"
	"github.com/elan-sys/elan/internal/coord"
	"github.com/elan-sys/elan/internal/core"
	"github.com/elan-sys/elan/internal/metrics"
	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/perfmodel"
	"github.com/elan-sys/elan/internal/replication"
	"github.com/elan-sys/elan/internal/topology"
)

// Fig08 regenerates Figure 8: effective bandwidth of the three transports
// (P2P, SHM, NET) as a function of message size.
func Fig08(w io.Writer) []*metrics.Series {
	c := newCluster()
	sizes := []int64{4 << 10, 64 << 10, 1 << 20, 16 << 20, 256 << 20, 1 << 30}
	t := metrics.NewTable("Figure 8: transport bandwidth vs message size (GB/s)",
		"Size", "P2P", "SHM", "NET")
	var series []*metrics.Series
	byTr := map[topology.Transport]*metrics.Series{}
	for _, tr := range []topology.Transport{topology.P2P, topology.SHM, topology.NET} {
		s := &metrics.Series{Name: tr.String()}
		byTr[tr] = s
		series = append(series, s)
	}
	for _, size := range sizes {
		row := []any{fmtBytes(size)}
		for _, tr := range []topology.Transport{topology.P2P, topology.SHM, topology.NET} {
			bw := c.EffectiveBandwidth(tr, size) / 1e9
			byTr[tr].Add(float64(size), bw)
			row = append(row, bw)
		}
		t.AddRow(row...)
	}
	t.Render(w)
	return series
}

// Fig09 regenerates the Figure 9 example: adding workers E and F to the
// 4-worker job {A, B, C, D} and printing the topology-aware replication
// plan with its concurrency structure.
func Fig09(w io.Writer) (*replication.Plan, error) {
	a := topology.GPUID{Node: 0, Socket: 0, Switch: 0, Index: 0}
	b := topology.GPUID{Node: 0, Socket: 0, Switch: 0, Index: 1}
	cw := topology.GPUID{Node: 0, Socket: 1, Switch: 0, Index: 0}
	d := topology.GPUID{Node: 1, Socket: 0, Switch: 0, Index: 0}
	e := topology.GPUID{Node: 0, Socket: 1, Switch: 0, Index: 1}
	f := topology.GPUID{Node: 1, Socket: 0, Switch: 1, Index: 0}
	m := models.ResNet50()
	plan, err := replication.NewPlan(
		[]topology.GPUID{a, b, cw, d}, []topology.GPUID{e, f},
		m.GPUStateBytes(), m.CPUStateBytes)
	if err != nil {
		return nil, err
	}
	c := newCluster()
	t := metrics.NewTable("Figure 9: topology-aware replication plan (E,F join A-D)",
		"Target", "Source", "Level", "Transport", "Time")
	for _, pair := range plan.Pairs {
		t.AddRow(pair.Target.String(), pair.Source.String(), pair.Level.String(),
			pair.Via.String(), fmtDur(c.TransferTime(pair.Source, pair.Target, plan.GPUBytes)))
	}
	t.AddRow("TOTAL (concurrent)", "", "", "", fmtDur(plan.Duration(c)))
	t.Render(w)
	return plan, nil
}

// Fig11 regenerates Figure 11: the time breakdown of an S&R scale-out,
// showing start + initialization dominating.
func Fig11(w io.Writer) *metrics.Table {
	sr := baseline.NewSR(core.DefaultSystemCosts(), checkpoint.DefaultFSModel(), 11)
	t := metrics.NewTable("Figure 11: S&R time breakdown (ResNet-50, 8 -> 16 workers)",
		"Phase", "Time", "Share")
	phases := sr.Breakdown(models.ResNet50(), 8, 16)
	var total time.Duration
	for _, p := range phases {
		total += p.Duration
	}
	for _, p := range phases {
		t.AddRow(p.Name, fmtDur(p.Duration), fmt.Sprintf("%.1f%%", 100*float64(p.Duration)/float64(total)))
	}
	t.AddRow("TOTAL", fmtDur(total), "100%")
	t.Render(w)
	return t
}

// Fig12 regenerates the Figure 10/12 timeline comparison: the training
// pause of one scale-out under S&R vs Elan, with Elan's hidden start/init.
func Fig12(w io.Writer) (*metrics.Table, error) {
	c := newCluster()
	m := models.ResNet50()
	gpus, err := c.Reserve(4)
	if err != nil {
		return nil, err
	}
	job, err := core.NewJob(core.JobConfig{
		Model: m, Cluster: c, Workers: topology.IDsOf(gpus),
		TotalBatch: 128, LR: 0.1, Seed: 12,
	})
	if err != nil {
		return nil, err
	}
	add, err := c.Reserve(2)
	if err != nil {
		return nil, err
	}
	elanRep, err := job.ScaleOut(topology.IDsOf(add))
	if err != nil {
		return nil, err
	}
	sr := baseline.NewSR(core.DefaultSystemCosts(), checkpoint.DefaultFSModel(), 12)
	srRep, err := sr.Adjust(coord.ScaleOut, m, 4, 6)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Figure 10/12: scale-out timeline, S&R vs Elan (4 -> 6 workers)",
		"System", "Phase", "On critical path", "Time")
	for _, p := range srRep.Breakdown {
		t.AddRow("S&R", p.Name, "yes", fmtDur(p.Duration))
	}
	t.AddRow("S&R", "TOTAL PAUSE", "", fmtDur(srRep.Pause))
	for _, p := range elanRep.Breakdown {
		t.AddRow("Elan", p.Name, "yes", fmtDur(p.Duration))
	}
	t.AddRow("Elan", "start+init (async)", "no (overlapped)", fmtDur(elanRep.HiddenStartInit))
	t.AddRow("Elan", "TOTAL PAUSE", "", fmtDur(elanRep.Pause))
	t.Render(w)
	return t, nil
}

// Fig14 regenerates Figure 14: Elan's runtime overhead (per-mille of
// iteration time) for the five models on 2-64 workers.
func Fig14(w io.Writer) (*metrics.Table, error) {
	c := newCluster()
	t := metrics.NewTable("Figure 14: Elan runtime overhead (per-mille)",
		"Model", "Workers", "Overhead")
	for _, m := range models.Zoo() {
		for _, n := range []int{2, 4, 8, 16, 32, 64} {
			gpus, err := c.Reserve(n)
			if err != nil {
				return nil, err
			}
			job, err := core.NewJob(core.JobConfig{
				Model: m, Cluster: c, Workers: topology.IDsOf(gpus),
				TotalBatch: n * m.MaxPerWorkerBatch / 2, LR: 0.1, Seed: 14,
			})
			if err != nil {
				return nil, err
			}
			ov, err := job.RuntimeOverhead()
			if err != nil {
				return nil, err
			}
			t.AddRow(m.Name, n, fmt.Sprintf("%.3f", ov*1000))
			c.Release(gpus)
		}
	}
	t.Render(w)
	return t, nil
}

// AdjustmentCase is one (kind, from, to) configuration of Figure 15.
type AdjustmentCase struct {
	Kind coord.Kind
	From int
	To   int
}

// Fig15Cases returns the paper's adjustment matrix: migrations at equal
// size, scale-ins halving, scale-outs doubling.
func Fig15Cases() []AdjustmentCase {
	return []AdjustmentCase{
		{coord.Migrate, 8, 8}, {coord.Migrate, 16, 16}, {coord.Migrate, 32, 32},
		{coord.ScaleIn, 16, 8}, {coord.ScaleIn, 32, 16}, {coord.ScaleIn, 64, 32},
		{coord.ScaleOut, 8, 16}, {coord.ScaleOut, 16, 32}, {coord.ScaleOut, 32, 64},
	}
}

// Fig15 regenerates Figure 15: the adjustment pause of Elan vs S&R for
// every case and model (mean +/- stddev over Repeats runs).
func Fig15(w io.Writer) (*metrics.Table, error) {
	t := metrics.NewTable("Figure 15: adjustment pause, Elan vs S&R (seconds)",
		"Model", "Case", "Elan", "S&R", "Speedup")
	for _, m := range models.Zoo() {
		for _, cse := range Fig15Cases() {
			elanSamples := make([]float64, 0, Repeats)
			srSamples := make([]float64, 0, Repeats)
			for r := 0; r < Repeats; r++ {
				pause, err := elanAdjustPause(m, cse, int64(r))
				if err != nil {
					return nil, fmt.Errorf("elan %s %v: %w", m.Name, cse, err)
				}
				elanSamples = append(elanSamples, pause.Seconds())
				sr := baseline.NewSR(core.DefaultSystemCosts(), checkpoint.DefaultFSModel(), int64(100+r))
				rep, err := sr.Adjust(cse.Kind, m, cse.From, cse.To)
				if err != nil {
					return nil, fmt.Errorf("sr %s %v: %w", m.Name, cse, err)
				}
				srSamples = append(srSamples, rep.Pause.Seconds())
			}
			es := metrics.Summarize(elanSamples)
			ss := metrics.Summarize(srSamples)
			t.AddRow(m.Letter, fmt.Sprintf("%v %d->%d", cse.Kind, cse.From, cse.To),
				es, ss, fmt.Sprintf("%.1fx", ss.Mean/es.Mean))
		}
	}
	t.Render(w)
	return t, nil
}

// elanAdjustPause runs one Elan adjustment on a fresh cluster and returns
// the pause.
func elanAdjustPause(m models.Model, cse AdjustmentCase, seed int64) (time.Duration, error) {
	c := bigCluster(16) // room for 64 + 64
	gpus, err := c.Reserve(cse.From)
	if err != nil {
		return 0, err
	}
	// Pick a feasible total batch at both sizes.
	per := m.MaxPerWorkerBatch / 2
	tbs := cse.From * per
	if cse.Kind == coord.ScaleIn && tbs/cse.To > m.MaxPerWorkerBatch {
		tbs = cse.To * m.MaxPerWorkerBatch
	}
	job, err := core.NewJob(core.JobConfig{
		Model: m, Cluster: c, Workers: topology.IDsOf(gpus),
		TotalBatch: tbs, LR: 0.1, Seed: seed,
	})
	if err != nil {
		return 0, err
	}
	switch cse.Kind {
	case coord.Migrate:
		dest, err := c.Reserve(cse.To)
		if err != nil {
			return 0, err
		}
		rep, err := job.Migrate(topology.IDsOf(dest))
		if err != nil {
			return 0, err
		}
		return rep.Pause, nil
	case coord.ScaleIn:
		rep, err := job.ScaleIn(job.Workers[cse.To:])
		if err != nil {
			return 0, err
		}
		return rep.Pause, nil
	default:
		add, err := c.Reserve(cse.To - cse.From)
		if err != nil {
			return 0, err
		}
		rep, err := job.ScaleOut(topology.IDsOf(add))
		if err != nil {
			return 0, err
		}
		return rep.Pause, nil
	}
}

// Fig16 regenerates Figure 16: relative training throughput of Litz-2 and
// Litz-4 versus Elan across models and worker counts.
func Fig16(w io.Writer) (*metrics.Table, error) {
	t := metrics.NewTable("Figure 16: Litz relative throughput vs Elan",
		"Model", "Workers", "Litz-2", "Litz-4")
	l2, err := baseline.NewLitz(baseline.DefaultLitzConfig(2), perfmodel.Default())
	if err != nil {
		return nil, err
	}
	l4, err := baseline.NewLitz(baseline.DefaultLitzConfig(4), perfmodel.Default())
	if err != nil {
		return nil, err
	}
	for _, m := range models.Zoo() {
		for _, n := range []int{8, 16, 32, 64} {
			bs := m.MaxPerWorkerBatch / 2
			r2, err := l2.RelativeThroughput(m, n, bs)
			if err != nil {
				return nil, err
			}
			r4, err := l4.RelativeThroughput(m, n, bs)
			if err != nil {
				return nil, err
			}
			t.AddRow(m.Name, n, fmt.Sprintf("%.1f%%", 100*r2), fmt.Sprintf("%.1f%%", 100*r4))
		}
	}
	t.Render(w)
	return t, nil
}
