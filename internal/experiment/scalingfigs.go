package experiment

import (
	"fmt"
	"io"

	"github.com/elan-sys/elan/internal/metrics"
	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/perfmodel"
)

// Fig03 regenerates Figure 3: training throughput vs worker count under
// strong scaling (fixed total batch size) for the five models at several
// total batch sizes.
func Fig03(w io.Writer) []*metrics.Series {
	p := perfmodel.Default()
	// Sweep beyond the testbed's 64 GPUs so every curve shows its peak and
	// fall; the paper's figures stop at the peak region for the same reason.
	workers := perfmodel.PowersOfTwo(512)
	var out []*metrics.Series
	t := metrics.NewTable("Figure 3: strong scaling throughput (samples/s)",
		"Model", "TBS", "Workers", "Throughput")
	for _, m := range models.Zoo() {
		for _, tbs := range []int{128, 512, 2048} {
			s := p.StrongScalingCurve(m, tbs, workers)
			out = append(out, s)
			for i := range s.X {
				t.AddRow(m.Name, tbs, int(s.X[i]), s.Y[i])
			}
		}
	}
	t.Render(w)
	return out
}

// Fig04 regenerates Figure 4: training throughput vs worker count under
// weak scaling (fixed per-worker batch size).
func Fig04(w io.Writer) []*metrics.Series {
	p := perfmodel.Default()
	workers := perfmodel.PowersOfTwo(128)
	var out []*metrics.Series
	t := metrics.NewTable("Figure 4: weak scaling throughput (samples/s)",
		"Model", "BS/worker", "Workers", "Throughput")
	for _, m := range models.Zoo() {
		for _, div := range []int{4, 2, 1} {
			bs := m.MaxPerWorkerBatch / div
			if bs < 1 {
				bs = 1
			}
			s := p.WeakScalingCurve(m, bs, workers)
			out = append(out, s)
			for i := range s.X {
				t.AddRow(m.Name, bs, int(s.X[i]), s.Y[i])
			}
		}
	}
	t.Render(w)
	return out
}

// Fig17 regenerates Figure 17: the ResNet-50 strong-scaling curves on the
// VI-B testbed that guide the elastic experiment's worker counts.
func Fig17(w io.Writer) []*metrics.Series {
	p := VIBPerf()
	m := models.ResNet50()
	workers := perfmodel.PowersOfTwo(128)
	var out []*metrics.Series
	t := metrics.NewTable("Figure 17: ResNet-50 strong scaling (VI-B testbed)",
		"TBS", "Workers", "Throughput", "Chosen")
	for _, tbs := range []int{512, 1024, 2048} {
		s := p.StrongScalingCurve(m, tbs, workers)
		out = append(out, s)
		chosen := map[int]int{512: 16, 1024: 32, 2048: 64}[tbs]
		for i := range s.X {
			mark := ""
			if int(s.X[i]) == chosen {
				mark = "<== paper config"
			}
			t.AddRow(tbs, int(s.X[i]), s.Y[i], mark)
		}
	}
	t.Render(w)
	return out
}

// Fig06Demo exercises Algorithm 1 end to end for a set of transitions and
// prints the decisions (the mechanism itself is unit-tested in
// internal/scaling; this is the human-readable demonstration).
func Fig06Demo(w io.Writer) *metrics.Table {
	p := perfmodel.Default()
	t := metrics.NewTable("Algorithm 1: hybrid scaling decisions",
		"Model", "Transition", "Old TBS", "New TBS", "Mode", "LR factor")
	type tr struct{ oldW, tbs, newW int }
	for _, m := range models.Zoo() {
		for _, c := range []tr{{8, 256, 16}, {16, 512, 64}, {16, 512, 512}, {32, 1024, 16}} {
			mech, err := newMech(p)
			if err != nil {
				continue
			}
			dec, err := mech.Decide(m, c.oldW, c.tbs, c.newW, 0.1)
			if err != nil {
				t.AddRow(m.Name, fmt.Sprintf("%d->%d", c.oldW, c.newW), c.tbs, "-", "infeasible", "-")
				continue
			}
			mode := "weak"
			if dec.Strong {
				mode = "strong"
			}
			t.AddRow(m.Name, fmt.Sprintf("%d->%d", c.oldW, c.newW), c.tbs,
				dec.TotalBatch, mode, dec.Factor)
		}
	}
	t.Render(w)
	return t
}
