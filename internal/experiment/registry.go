package experiment

import (
	"fmt"
	"io"
	"sort"
)

// Runner regenerates one experiment into w; quick shrinks workloads for
// fast runs where the experiment supports it.
type Runner func(w io.Writer, quick bool) error

// Registry maps experiment ids (fig/table/ablation/scenario names) to their
// runners. cmd/elan-bench and cmd/elan-report both dispatch through it.
func Registry() map[string]Runner {
	wrap := func(f func(io.Writer)) Runner {
		return func(w io.Writer, _ bool) error { f(w); return nil }
	}
	return map[string]Runner{
		"table1": wrap(func(w io.Writer) { Table01(w) }),
		"table2": wrap(func(w io.Writer) { Table02(w) }),
		"fig1": func(w io.Writer, _ bool) error {
			_, err := Fig01(w)
			return err
		},
		"fig3": wrap(func(w io.Writer) { Fig03(w) }),
		"fig4": wrap(func(w io.Writer) { Fig04(w) }),
		"fig5": func(w io.Writer, quick bool) error {
			_, err := Fig05(w, quick)
			return err
		},
		"alg1": wrap(func(w io.Writer) { Fig06Demo(w) }),
		"fig8": wrap(func(w io.Writer) { Fig08(w) }),
		"fig9": func(w io.Writer, _ bool) error {
			_, err := Fig09(w)
			return err
		},
		"fig11": wrap(func(w io.Writer) { Fig11(w) }),
		"fig12": func(w io.Writer, _ bool) error {
			_, err := Fig12(w)
			return err
		},
		"fig14": func(w io.Writer, _ bool) error {
			_, err := Fig14(w)
			return err
		},
		"fig15": func(w io.Writer, _ bool) error {
			_, err := Fig15(w)
			return err
		},
		"fig16": func(w io.Writer, _ bool) error {
			_, err := Fig16(w)
			return err
		},
		"fig17": wrap(func(w io.Writer) { Fig17(w) }),
		"fig18": wrap(func(w io.Writer) { Fig18(w) }),
		"fig19": func(w io.Writer, _ bool) error {
			_, err := Fig19(w)
			return err
		},
		"table4": func(w io.Writer, _ bool) error {
			_, err := Table04(w)
			return err
		},
		"fig20": func(w io.Writer, quick bool) error {
			runs := 3
			if quick {
				runs = 1
			}
			_, err := Fig20(w, runs, quick)
			return err
		},
		"fig21": func(w io.Writer, quick bool) error {
			_, _, err := Fig21(w, quick)
			return err
		},
		"fig22": func(w io.Writer, quick bool) error {
			_, err := Fig22(w, quick)
			return err
		},
		"ablation-replication": func(w io.Writer, _ bool) error {
			_, err := AblationReplication(w)
			return err
		},
		"ablation-coordination": func(w io.Writer, _ bool) error {
			_, err := AblationCoordination(w)
			return err
		},
		"ablation-progressive-lr": func(w io.Writer, _ bool) error {
			_, err := AblationProgressiveLR(w)
			return err
		},
		"ablation-data-semantics": func(w io.Writer, _ bool) error {
			_, err := AblationDataSemantics(w)
			return err
		},
		"ablation-async-timeline": func(w io.Writer, _ bool) error {
			_, err := AblationAsyncTimeline(w)
			return err
		},
		"straggler": func(w io.Writer, _ bool) error {
			_, err := StragglerScenario(w)
			return err
		},
		"spot": func(w io.Writer, _ bool) error {
			_, err := SpotScenario(w)
			return err
		},
	}
}

// IDs returns the registry keys in sorted order.
func IDs() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for id := range reg {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run dispatches one experiment by id.
func Run(id string, w io.Writer, quick bool) error {
	r, ok := Registry()[id]
	if !ok {
		return fmt.Errorf("experiment: unknown id %q", id)
	}
	return r(w, quick)
}
