// Package experiment regenerates every table and figure of the paper's
// evaluation (Section VI) plus the motivating figures of Sections I, III
// and IV. Each function produces the same rows or series the paper
// reports and writes them to the supplied writer; the benchmark harness
// (bench_test.go) and the CLI (cmd/elan-bench) both call into this package
// so there is a single source of truth per experiment.
//
// Calibration note: all experiments use the default performance model
// except the Section VI-B elastic-training set (Figures 17-19, Table IV),
// which uses VIBPerf — a communication model with higher per-step latency
// calibrated so the ResNet-50 strong-scaling knee matches Figure 17 (peak
// near 16 workers at total batch 512). See EXPERIMENTS.md for the
// paper-vs-measured comparison.
package experiment

import (
	"fmt"
	"io"
	"time"

	"github.com/elan-sys/elan/internal/metrics"
	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/perfmodel"
	"github.com/elan-sys/elan/internal/scaling"
	"github.com/elan-sys/elan/internal/topology"
)

// newMech builds a hybrid scaling mechanism over the given perf model.
func newMech(p *perfmodel.Perf) (*scaling.Mechanism, error) {
	return scaling.New(scaling.Config{Perf: p, MaxWorkersProbe: 1024, RampIterations: 100})
}

// Repeats is the number of measurement repetitions (the paper repeats its
// timing experiments 5 times and reports mean +/- stddev).
const Repeats = 5

// VIBPerf returns the performance model calibrated for the Section VI-B
// testbed: the same 8-GPU nodes but with a per-step ring latency that puts
// the ResNet-50 strong-scaling optimum at the worker counts the paper's
// configurations use (16 @ 512, 32 @ 1024, 64 @ 2048).
func VIBPerf() *perfmodel.Perf {
	return perfmodel.New(perfmodel.CommModel{
		LatencyPerStep:       2 * time.Millisecond,
		IntraNodeBytesPerSec: 9e9,
		InterNodeBytesPerSec: 4.2e9,
		GPUsPerNode:          8,
	})
}

// newCluster builds the testbed cluster (8 nodes x 8 GPUs); geometry errors
// are impossible with the default geometry.
func newCluster() *topology.Cluster {
	c, err := topology.NewCluster(topology.DefaultGeometry())
	if err != nil {
		panic(fmt.Sprintf("experiment: default cluster: %v", err))
	}
	return c
}

// bigCluster builds an oversized cluster for scaling sweeps beyond 64 GPUs.
func bigCluster(nodes int) *topology.Cluster {
	g := topology.DefaultGeometry()
	g.Nodes = nodes
	c, err := topology.NewCluster(g)
	if err != nil {
		panic(fmt.Sprintf("experiment: cluster(%d nodes): %v", nodes, err))
	}
	return c
}

// Table01 prints the model zoo summary (Table I + ResNet-50).
func Table01(w io.Writer) *metrics.Table {
	t := metrics.NewTable("Table I: DL models for scaling-out strategy analysis",
		"Model", "Type", "Domain", "#Parameters", "Dataset")
	for _, m := range models.Zoo() {
		t.AddRow(m.Name, m.Kind, m.Domain, fmt.Sprintf("%dM", m.Params/1_000_000), m.Dataset)
	}
	t.Render(w)
	return t
}

// Table02 prints the training-state characteristics (Table II): state
// kinds, where they live and how big they are, using ResNet-50 as the
// example.
func Table02(w io.Writer) *metrics.Table {
	m := models.ResNet50()
	t := metrics.NewTable("Table II: training-state characteristics (ResNet-50)",
		"State", "Device", "Size")
	t.AddRow("Model parameters", "GPU", fmtBytes(m.Params*4))
	t.AddRow("Optimizer (momentum)", "GPU", fmtBytes(m.Params*4))
	t.AddRow("Data loading (serial cursor)", "CPU", "8 B")
	t.AddRow("Communication group", "CPU", fmtBytes(4096))
	t.AddRow("Runtime info (epoch/iter)", "CPU", "16 B")
	t.Render(w)
	return t
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fus", float64(d)/float64(time.Microsecond))
	}
}
