package experiment

import (
	"fmt"
	"io"
	"time"

	"github.com/elan-sys/elan/internal/metrics"
	"github.com/elan-sys/elan/internal/sched"
	"github.com/elan-sys/elan/internal/trace"
)

// schedTrace generates the trace used by the scheduling experiments. quick
// shrinks the span so unit tests and short bench runs stay fast.
func schedTrace(seed int64, quick bool) ([]trace.Job, error) {
	cfg := trace.DefaultConfig()
	cfg.Seed = seed
	if quick {
		// Shrink the span but raise the load so the cluster still saturates
		// and queueing (the phenomenon elasticity fixes) occurs.
		cfg.Span = 3 * time.Hour
		cfg.JobsPerDay = 700
		cfg.MeanServiceMinutes = 55
	}
	return trace.Generate(cfg)
}

// Fig01 regenerates Figure 1: one week of GPU utilization under static
// FIFO scheduling of the synthetic production trace, showing the dramatic
// fluctuation that motivates elasticity.
func Fig01(w io.Writer) (*metrics.Series, error) {
	cfg := trace.DefaultConfig()
	cfg.Span = 7 * 24 * time.Hour
	jobs, err := trace.Generate(cfg)
	if err != nil {
		return nil, err
	}
	hours, utils, err := trace.UtilizationSeries(jobs, cfg.ClusterGPUs, 30*time.Minute)
	if err != nil {
		return nil, err
	}
	s := &metrics.Series{Name: "GPU utilization"}
	for i := range hours {
		s.Add(hours[i], utils[i])
	}
	summary := metrics.Summarize(utils)
	t := metrics.NewTable("Figure 1: weekly GPU utilization (static scheduling)",
		"Metric", "Value")
	t.AddRow("mean", fmt.Sprintf("%.1f%%", 100*summary.Mean))
	t.AddRow("min", fmt.Sprintf("%.1f%%", 100*summary.Min))
	t.AddRow("max", fmt.Sprintf("%.1f%%", 100*summary.Max))
	t.AddRow("stddev", fmt.Sprintf("%.1f%%", 100*summary.Stddev))
	t.Render(w)
	metrics.PlotASCII(w, "Figure 1: utilization over one week", 72, 12, s.Downsample(72))
	return s, nil
}

// Fig20Run is one (policy, metrics) outcome.
type Fig20Run struct {
	Policy   sched.Policy
	MeanJPT  time.Duration
	MeanJCT  time.Duration
	Makespan time.Duration
}

// Fig20 regenerates Figure 20: JPT, JCT and makespan under the four
// policies with the ideal system, averaged over `runs` seeds.
func Fig20(w io.Writer, runs int, quick bool) ([]Fig20Run, error) {
	if runs <= 0 {
		runs = 3
	}
	policies := []sched.Policy{sched.FIFO, sched.Backfill, sched.ElasticFIFO, sched.ElasticBackfill}
	t := metrics.NewTable("Figure 20: scheduling with and without elasticity",
		"Policy", "Mean JPT (min)", "Mean JCT (min)", "Makespan (h)")
	var out []Fig20Run
	for _, p := range policies {
		var jpt, jct, mk float64
		for r := 0; r < runs; r++ {
			jobs, err := schedTrace(int64(20+r), quick)
			if err != nil {
				return nil, err
			}
			cfg := sched.DefaultConfig(p, sched.IdealSystem{})
			if quick {
				cfg.Tick = 2 * time.Second
			}
			res, err := sched.Run(cfg, jobs)
			if err != nil {
				return nil, err
			}
			jpt += res.MeanJPT.Minutes()
			jct += res.MeanJCT.Minutes()
			mk += res.Makespan.Hours()
		}
		n := float64(runs)
		run := Fig20Run{
			Policy:   p,
			MeanJPT:  time.Duration(jpt / n * float64(time.Minute)),
			MeanJCT:  time.Duration(jct / n * float64(time.Minute)),
			Makespan: time.Duration(mk / n * float64(time.Hour)),
		}
		out = append(out, run)
		t.AddRow(p.String(), fmt.Sprintf("%.1f", jpt/n), fmt.Sprintf("%.1f", jct/n),
			fmt.Sprintf("%.2f", mk/n))
	}
	// Reductions as the paper reports them.
	byPolicy := make(map[sched.Policy]Fig20Run, len(out))
	for _, r := range out {
		byPolicy[r.Policy] = r
	}
	red := func(a, b time.Duration) string {
		return fmt.Sprintf("%.0f%%", 100*(1-float64(b)/float64(a)))
	}
	t2 := metrics.NewTable("Figure 20 (derived): elastic reductions",
		"Pair", "JPT reduction", "JCT reduction", "Makespan reduction")
	t2.AddRow("E-FIFO vs FIFO",
		red(byPolicy[sched.FIFO].MeanJPT, byPolicy[sched.ElasticFIFO].MeanJPT),
		red(byPolicy[sched.FIFO].MeanJCT, byPolicy[sched.ElasticFIFO].MeanJCT),
		red(byPolicy[sched.FIFO].Makespan, byPolicy[sched.ElasticFIFO].Makespan))
	t2.AddRow("E-BF vs BF",
		red(byPolicy[sched.Backfill].MeanJPT, byPolicy[sched.ElasticBackfill].MeanJPT),
		red(byPolicy[sched.Backfill].MeanJCT, byPolicy[sched.ElasticBackfill].MeanJCT),
		red(byPolicy[sched.Backfill].Makespan, byPolicy[sched.ElasticBackfill].Makespan))
	t.Render(w)
	t2.Render(w)
	return out, nil
}

// Fig21 regenerates Figure 21: GPU utilization over time of one run under
// the static and the elastic policy.
func Fig21(w io.Writer, quick bool) (staticSeries, elasticSeries *metrics.Series, err error) {
	jobs, err := schedTrace(21, quick)
	if err != nil {
		return nil, nil, err
	}
	run := func(p sched.Policy) (*metrics.Series, error) {
		cfg := sched.DefaultConfig(p, sched.IdealSystem{})
		if quick {
			cfg.Tick = 2 * time.Second
		}
		res, err := sched.Run(cfg, jobs)
		if err != nil {
			return nil, err
		}
		s := &metrics.Series{Name: p.String()}
		for i := range res.UtilHours {
			s.Add(res.UtilHours[i], res.UtilVals[i])
		}
		return s, nil
	}
	staticSeries, err = run(sched.Backfill)
	if err != nil {
		return nil, nil, err
	}
	elasticSeries, err = run(sched.ElasticBackfill)
	if err != nil {
		return nil, nil, err
	}
	metrics.PlotASCII(w, "Figure 21: GPU utilization, BF vs E-BF", 72, 12,
		staticSeries.Downsample(72), elasticSeries.Downsample(72))
	fmt.Fprintf(w, "mean utilization: %s %.1f%%, %s %.1f%%\n",
		staticSeries.Name, 100*staticSeries.MeanY(),
		elasticSeries.Name, 100*elasticSeries.MeanY())
	return staticSeries, elasticSeries, nil
}

// Fig22Run is one (system, metrics) outcome.
type Fig22Run struct {
	System   string
	MeanJCT  time.Duration
	Makespan time.Duration
}

// Fig22 regenerates Figure 22: average JCT and makespan of the elastic
// scheduler under the Ideal, Elan and S&R cost models.
func Fig22(w io.Writer, quick bool) ([]Fig22Run, error) {
	systems := []sched.System{sched.IdealSystem{}, sched.NewElanSystem(22), sched.NewSRSystem(22)}
	t := metrics.NewTable("Figure 22: E-BF scheduling under different systems",
		"System", "Mean JCT (min)", "Makespan (h)", "JCT vs Ideal")
	jobs, err := schedTrace(22, quick)
	if err != nil {
		return nil, err
	}
	var out []Fig22Run
	var idealJCT time.Duration
	for _, sys := range systems {
		cfg := sched.DefaultConfig(sched.ElasticBackfill, sys)
		if quick {
			cfg.Tick = 2 * time.Second
		}
		res, err := sched.Run(cfg, jobs)
		if err != nil {
			return nil, err
		}
		if sys.Name() == "Ideal" {
			idealJCT = res.MeanJCT
		}
		out = append(out, Fig22Run{System: sys.Name(), MeanJCT: res.MeanJCT, Makespan: res.Makespan})
		rel := "-"
		if idealJCT > 0 {
			rel = fmt.Sprintf("+%.1f%%", 100*(float64(res.MeanJCT)/float64(idealJCT)-1))
		}
		t.AddRow(sys.Name(), fmt.Sprintf("%.1f", res.MeanJCT.Minutes()),
			fmt.Sprintf("%.2f", res.Makespan.Hours()), rel)
	}
	t.Render(w)
	return out, nil
}
