package experiment

import (
	"fmt"
	"io"
	"time"

	"github.com/elan-sys/elan/internal/core"
	"github.com/elan-sys/elan/internal/data"
	"github.com/elan-sys/elan/internal/metrics"
	"github.com/elan-sys/elan/internal/models"
)

// Fig05Result is one point of the batch-size/accuracy sweep.
type Fig05Result struct {
	TotalBatch  int
	DefaultAcc  float64
	HybridAcc   float64
	HybridLR    float64
	DefaultLoss float64
	HybridLoss  float64
}

// Fig05 regenerates Figure 5 on the live substrate: final accuracy as a
// function of the total batch size, training with all hyperparameters
// fixed ("Default") versus with the progressive linear scaling rule
// ("Hybrid"). This is real SGD on the pure-Go MLP: the degradation at
// large batches and its recovery under LR scaling are genuine optimization
// effects, not a fitted curve.
func Fig05(w io.Writer, quick bool) ([]Fig05Result, error) {
	const (
		seed     = 5
		samples  = 8192
		features = 16
		classes  = 8
		baseTBS  = 32
		baseLR   = 0.01
		workers  = 4
	)
	epochs := 6
	batches := []int{32, 64, 128, 256, 512, 1024, 2048}
	if quick {
		epochs = 3
		batches = []int{32, 512, 2048}
	}
	train, err := data.GenGaussianMixture(seed, samples, features, classes)
	if err != nil {
		return nil, err
	}
	test, err := data.GenGaussianMixture(seed+1, 2048, features, classes)
	if err != nil {
		return nil, err
	}

	runOne := func(tbs int, hybrid bool) (acc, loss, lr float64, err error) {
		lj, err := core.NewLiveJob(core.LiveConfig{
			Dataset:    train,
			LayerSizes: []int{features, 32, classes},
			Workers:    workers,
			TotalBatch: baseTBS,
			LR:         baseLR,
			Momentum:   0.9,
			Seed:       seed,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		defer lj.Close()
		totalIters := epochs * samples / tbs
		if totalIters < 8 {
			totalIters = 8
		}
		if tbs != baseTBS {
			ramp := totalIters / 5
			if ramp < 4 {
				ramp = 4
			}
			if hybrid {
				if err := lj.SetTotalBatch(tbs, ramp, true); err != nil {
					return 0, 0, 0, err
				}
			} else {
				// Default: batch grows, LR stays. Emulate by setting the
				// batch and then forcing the schedule back to the base LR.
				if err := lj.SetTotalBatch(tbs, 0, false); err != nil {
					return 0, 0, 0, err
				}
				if err := lj.ForceLR(baseLR); err != nil {
					return 0, 0, 0, err
				}
			}
		}
		for i := 0; i < totalIters; i++ {
			if _, err := lj.Step(); err != nil {
				return 0, 0, 0, err
			}
		}
		if lj.Diverged() {
			return 0, 0, lj.LR(), nil // report zero accuracy on divergence
		}
		loss, acc, err = lj.Evaluate(test)
		return acc, loss, lj.LR(), err
	}

	t := metrics.NewTable("Figure 5: final accuracy vs total batch size (live MLP)",
		"TBS", "Default acc", "Hybrid acc", "Hybrid LR")
	var out []Fig05Result
	for _, tbs := range batches {
		defAcc, defLoss, _, err := runOne(tbs, false)
		if err != nil {
			return nil, fmt.Errorf("default tbs=%d: %w", tbs, err)
		}
		hybAcc, hybLoss, hybLR, err := runOne(tbs, true)
		if err != nil {
			return nil, fmt.Errorf("hybrid tbs=%d: %w", tbs, err)
		}
		out = append(out, Fig05Result{
			TotalBatch: tbs, DefaultAcc: defAcc, HybridAcc: hybAcc,
			HybridLR: hybLR, DefaultLoss: defLoss, HybridLoss: hybLoss,
		})
		t.AddRow(tbs, fmt.Sprintf("%.1f%%", 100*defAcc),
			fmt.Sprintf("%.1f%%", 100*hybAcc), hybLR)
	}
	t.Render(w)
	return out, nil
}

// VIBPhase is one phase of the Section VI-B elastic training schedule.
type VIBPhase struct {
	Epochs     int
	TotalBatch int
	Workers    int
}

// VIBConfig is one of the three Section VI-B configurations.
type VIBConfig struct {
	Name   string
	Phases []VIBPhase
	// Adjustments is the number of Elan resource adjustments the schedule
	// performs (each charges ~1s of pause).
	Adjustments int
	// Dynamic batch schedules follow the AdaBatch accuracy trajectory.
	Dynamic bool
}

// VIBConfigs returns the paper's three configurations: static 16-worker
// training, dynamic batch on fixed 64 workers, and the elastic schedule.
func VIBConfigs() []VIBConfig {
	return []VIBConfig{
		{
			Name:   "512 (16)",
			Phases: []VIBPhase{{Epochs: 90, TotalBatch: 512, Workers: 16}},
		},
		{
			Name: "512-2048 (64)",
			Phases: []VIBPhase{
				{Epochs: 30, TotalBatch: 512, Workers: 64},
				{Epochs: 30, TotalBatch: 1024, Workers: 64},
				{Epochs: 30, TotalBatch: 2048, Workers: 64},
			},
			Dynamic: true,
		},
		{
			Name: "512-2048 (Elastic)",
			Phases: []VIBPhase{
				{Epochs: 30, TotalBatch: 512, Workers: 16},
				{Epochs: 30, TotalBatch: 1024, Workers: 32},
				{Epochs: 30, TotalBatch: 2048, Workers: 64},
			},
			Adjustments: 2,
			Dynamic:     true,
		},
	}
}

// accPoint anchors the accuracy trajectory.
type accPoint struct {
	epoch float64
	acc   float64
}

// staticAccCurve and dynamicAccCurve are the top-1 accuracy trajectories
// of ResNet-50 on ImageNet under the static and the batch-doubling
// (AdaBatch + progressive linear scaling) schedules. We cannot train
// ResNet-50 on ImageNet in this substrate, so the trajectories are
// calibrated to the paper's reported endpoints (75.89% static, 75.87%
// elastic, Figure 18) with the dynamic schedule reaching each target a few
// epochs later — the convergence cost of large batches that the paper's
// time-to-solution numbers embed. The live-substrate Figure 5 experiment
// demonstrates the same effect with real SGD.
var (
	staticAccCurve = []accPoint{
		{0, 0.10}, {5, 0.35}, {10, 0.50}, {20, 0.62}, {30, 0.685},
		{40, 0.707}, {50, 0.722}, {60, 0.735}, {70, 0.742}, {75, 0.745},
		{81, 0.750}, {87, 0.755}, {90, 0.7589},
	}
	dynamicAccCurve = []accPoint{
		{0, 0.10}, {5, 0.33}, {10, 0.48}, {20, 0.61}, {30, 0.680},
		{40, 0.700}, {50, 0.715}, {60, 0.728}, {70, 0.738}, {76, 0.742},
		{82, 0.745}, {86, 0.750}, {89, 0.755}, {90, 0.7587},
	}
)

// accAt interpolates a trajectory at a (fractional) epoch.
func accAt(curve []accPoint, epoch float64) float64 {
	if epoch <= curve[0].epoch {
		return curve[0].acc
	}
	for i := 1; i < len(curve); i++ {
		if epoch <= curve[i].epoch {
			a, b := curve[i-1], curve[i]
			frac := (epoch - a.epoch) / (b.epoch - a.epoch)
			return a.acc + frac*(b.acc-a.acc)
		}
	}
	return curve[len(curve)-1].acc
}

// epochOf inverts a trajectory: the first (fractional) epoch at which the
// accuracy reaches target, or -1 if never.
func epochOf(curve []accPoint, target float64) float64 {
	if target <= curve[0].acc {
		return curve[0].epoch
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].acc >= target {
			a, b := curve[i-1], curve[i]
			frac := (target - a.acc) / (b.acc - a.acc)
			return a.epoch + frac*(b.epoch-a.epoch)
		}
	}
	return -1
}

// vibEpochTime returns the wall time of one epoch of a phase on the VI-B
// testbed.
func vibEpochTime(ph VIBPhase) (time.Duration, error) {
	m := models.ResNet50()
	return VIBPerf().EpochTime(m, ph.Workers, ph.TotalBatch/ph.Workers, m.DatasetSamples)
}

// vibTimeAtEpoch returns the wall time a configuration needs to reach the
// given (fractional) epoch, including Elan adjustment pauses.
func vibTimeAtEpoch(cfg VIBConfig, epoch float64) (time.Duration, error) {
	var t time.Duration
	remaining := epoch
	for _, ph := range cfg.Phases {
		et, err := vibEpochTime(ph)
		if err != nil {
			return 0, err
		}
		span := float64(ph.Epochs)
		if remaining <= span {
			t += time.Duration(remaining * float64(et))
			remaining = 0
			break
		}
		t += time.Duration(span * float64(et))
		remaining -= span
	}
	if remaining > 0 {
		return 0, fmt.Errorf("experiment: epoch %.1f beyond schedule of %s", epoch, cfg.Name)
	}
	// Elan adjustment pauses (~1s each): negligible but accounted.
	t += time.Duration(cfg.Adjustments) * 1200 * time.Millisecond
	return t, nil
}

// vibCurve returns a configuration's accuracy trajectory.
func vibCurve(cfg VIBConfig) []accPoint {
	if cfg.Dynamic {
		return dynamicAccCurve
	}
	return staticAccCurve
}

// Fig18 regenerates Figure 18: top-1 accuracy vs epoch for the static and
// elastic configurations.
func Fig18(w io.Writer) (*metrics.Series, *metrics.Series) {
	static := &metrics.Series{Name: "512 (16)"}
	elastic := &metrics.Series{Name: "512-2048 (Elastic)"}
	t := metrics.NewTable("Figure 18: top-1 accuracy vs epoch",
		"Epoch", "512 (16)", "512-2048 (Elastic)")
	for e := 0; e <= 90; e += 5 {
		s := accAt(staticAccCurve, float64(e))
		el := accAt(dynamicAccCurve, float64(e))
		static.Add(float64(e), s)
		elastic.Add(float64(e), el)
		t.AddRow(e, fmt.Sprintf("%.2f%%", 100*s), fmt.Sprintf("%.2f%%", 100*el))
	}
	t.Render(w)
	fmt.Fprintf(w, "final: static %.2f%%, elastic %.2f%% (paper: 75.89%% / 75.87%%)\n",
		100*accAt(staticAccCurve, 90), 100*accAt(dynamicAccCurve, 90))
	return static, elastic
}

// Fig19 regenerates Figure 19: training progress (accuracy) against wall
// time for the three configurations.
func Fig19(w io.Writer) ([]*metrics.Series, error) {
	t := metrics.NewTable("Figure 19: accuracy vs wall time (hours)",
		"Config", "Epoch", "Hours", "Accuracy")
	var out []*metrics.Series
	for _, cfg := range VIBConfigs() {
		s := &metrics.Series{Name: cfg.Name}
		curve := vibCurve(cfg)
		for e := 0; e <= 90; e += 10 {
			wall, err := vibTimeAtEpoch(cfg, float64(e))
			if err != nil {
				return nil, err
			}
			acc := accAt(curve, float64(e))
			s.Add(wall.Hours(), acc)
			t.AddRow(cfg.Name, e, fmt.Sprintf("%.2f", wall.Hours()), fmt.Sprintf("%.2f%%", 100*acc))
		}
		out = append(out, s)
	}
	t.Render(w)
	return out, nil
}

// Table04Row is one row of Table IV.
type Table04Row struct {
	Target  float64
	TTS     map[string]time.Duration
	Speedup float64 // elastic vs static
	Speed64 float64 // fixed-64 vs static
}

// Table04 regenerates Table IV: time to solution for the three target
// accuracies and the speedup of the elastic configuration.
func Table04(w io.Writer) ([]Table04Row, error) {
	targets := []float64{0.745, 0.750, 0.755}
	cfgs := VIBConfigs()
	t := metrics.NewTable("Table IV: time to solution (s) and speedup vs 512 (16)",
		"Target", "512 (16)", "512-2048 (64)", "512-2048 (Elastic)", "Elastic speedup")
	var rows []Table04Row
	for _, target := range targets {
		row := Table04Row{Target: target, TTS: make(map[string]time.Duration)}
		for _, cfg := range cfgs {
			epoch := epochOf(vibCurve(cfg), target)
			if epoch < 0 {
				return nil, fmt.Errorf("experiment: %s never reaches %.3f", cfg.Name, target)
			}
			wall, err := vibTimeAtEpoch(cfg, epoch)
			if err != nil {
				return nil, err
			}
			row.TTS[cfg.Name] = wall
		}
		staticT := row.TTS["512 (16)"]
		row.Speedup = staticT.Seconds() / row.TTS["512-2048 (Elastic)"].Seconds()
		row.Speed64 = staticT.Seconds() / row.TTS["512-2048 (64)"].Seconds()
		rows = append(rows, row)
		t.AddRow(fmt.Sprintf("%.1f%%", 100*target),
			fmt.Sprintf("%.0f", staticT.Seconds()),
			fmt.Sprintf("%.0f", row.TTS["512-2048 (64)"].Seconds()),
			fmt.Sprintf("%.0f", row.TTS["512-2048 (Elastic)"].Seconds()),
			fmt.Sprintf("%.2fx", row.Speedup))
	}
	t.Render(w)
	return rows, nil
}
