package experiment

import (
	"fmt"
	"io"
	"time"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/core"
	"github.com/elan-sys/elan/internal/data"
	"github.com/elan-sys/elan/internal/metrics"
	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/replication"
	"github.com/elan-sys/elan/internal/topology"
)

// This file holds the ablation studies DESIGN.md calls out: each isolates
// one of Elan's design choices and quantifies its contribution.

// AblationReplication compares the topology-aware concurrent replication
// planner against two crippled variants: sequential (same sources, no
// concurrency) and naive (single source, no topology awareness), for a
// range of scale-out sizes.
func AblationReplication(w io.Writer) (*metrics.Table, error) {
	c := bigCluster(16)
	m := models.VGG19() // largest state: replication dominates
	t := metrics.NewTable("Ablation: replication mechanism (VGG-19 state)",
		"Scale-out", "Topology+concurrent", "Topology sequential", "Naive single-source")
	for _, n := range []int{2, 4, 8, 16} {
		// Place one existing worker per node (socket 0) and the matching
		// new worker on the other socket of the same node — the placement
		// an elastic scheduler that grows jobs in place produces. The
		// topology-aware plan uses n concurrent intra-node SHM transfers;
		// the naive plan streams everything from one node over the network.
		var exIDs, addIDs []topology.GPUID
		for i := 0; i < n; i++ {
			exIDs = append(exIDs, topology.GPUID{Node: i, Socket: 0, Switch: 0, Index: 0})
			addIDs = append(addIDs, topology.GPUID{Node: i, Socket: 1, Switch: 0, Index: 0})
		}
		aware, err := replication.NewPlan(exIDs, addIDs, m.GPUStateBytes(), m.CPUStateBytes)
		if err != nil {
			return nil, err
		}
		naive, err := replication.NewNaivePlan(exIDs, addIDs, m.GPUStateBytes(), m.CPUStateBytes)
		if err != nil {
			return nil, err
		}
		// Sequential variant: same pairs, forced shared contention domain.
		seq := &replication.Plan{GPUBytes: aware.GPUBytes, CPUBytes: aware.CPUBytes}
		for _, p := range aware.Pairs {
			p.Contention = "sequential"
			seq.Pairs = append(seq.Pairs, p)
		}
		t.AddRow(fmt.Sprintf("%d->%d", n, 2*n),
			fmtDur(aware.Duration(c)), fmtDur(seq.Duration(c)), fmtDur(naive.Duration(c)))
	}
	t.Render(w)
	return t, nil
}

// AblationCoordination compares Elan's asynchronous coordination (start and
// initialization off the critical path) against a synchronous variant that
// waits for the new workers before resuming.
func AblationCoordination(w io.Writer) (*metrics.Table, error) {
	c := newCluster()
	m := models.ResNet50()
	t := metrics.NewTable("Ablation: asynchronous vs synchronous coordination (ResNet-50)",
		"Scale-out", "Async pause", "Sync pause", "Hidden by async")
	for _, n := range []int{4, 8, 16} {
		gpus, err := c.Reserve(n)
		if err != nil {
			return nil, err
		}
		job, err := core.NewJob(core.JobConfig{
			Model: m, Cluster: c, Workers: topology.IDsOf(gpus),
			TotalBatch: n * 32, LR: 0.1, Seed: int64(n),
		})
		if err != nil {
			return nil, err
		}
		add, err := c.Reserve(n)
		if err != nil {
			return nil, err
		}
		rep, err := job.ScaleOut(topology.IDsOf(add))
		if err != nil {
			return nil, err
		}
		syncPause := rep.Pause + rep.HiddenStartInit
		t.AddRow(fmt.Sprintf("%d->%d", n, 2*n), fmtDur(rep.Pause), fmtDur(syncPause),
			fmt.Sprintf("%.1f%%", 100*float64(rep.HiddenStartInit)/float64(syncPause)))
		c.Release(c.AllGPUs())
	}
	t.Render(w)
	return t, nil
}

// ProgressiveLRResult quantifies the transition stability of one LR-change
// mode: the worst loss observed in the window after the batch-size change,
// relative to the loss just before it. A sharp LR jump produces a large
// transient spike (and, at high enough factors, divergence); the
// progressive ramp keeps the trajectory smooth — the motivation for
// Equation 3.
type ProgressiveLRResult struct {
	Mode      string
	PreLoss   float64
	PeakLoss  float64
	SpikeRate float64 // PeakLoss / PreLoss
	FinalLoss float64
	Diverged  bool
}

// AblationProgressiveLR compares the progressive linear scaling rule
// against an immediate LR jump when the batch grows 32 -> 512 (k=16) on
// the live substrate.
func AblationProgressiveLR(w io.Writer) ([]ProgressiveLRResult, error) {
	const (
		seed     = 31
		samples  = 8192
		features = 16
		classes  = 8
		k        = 16
	)
	train, err := data.GenGaussianMixture(seed, samples, features, classes)
	if err != nil {
		return nil, err
	}
	run := func(progressive bool) (ProgressiveLRResult, error) {
		mode := "immediate"
		if progressive {
			mode = "progressive"
		}
		res := ProgressiveLRResult{Mode: mode}
		lj, err := core.NewLiveJob(core.LiveConfig{
			Dataset:    train,
			LayerSizes: []int{features, 32, classes},
			Workers:    4,
			TotalBatch: 32,
			LR:         0.02,
			Momentum:   0.9,
			Seed:       seed,
		})
		if err != nil {
			return res, err
		}
		defer lj.Close()
		var pre float64
		for i := 0; i < 120; i++ {
			l, err := lj.Step()
			if err != nil {
				return res, err
			}
			pre = l
		}
		res.PreLoss = pre
		if err := lj.SetTotalBatch(32*k, 40, progressive); err != nil {
			return res, err
		}
		peak, final := 0.0, 0.0
		for i := 0; i < 60; i++ {
			l, err := lj.Step()
			if err != nil {
				return res, err
			}
			if l > peak {
				peak = l
			}
			final = l
			if lj.Diverged() {
				res.Diverged = true
				break
			}
		}
		res.PeakLoss = peak
		res.FinalLoss = final
		if pre > 0 {
			res.SpikeRate = peak / pre
		}
		return res, nil
	}
	t := metrics.NewTable("Ablation: progressive vs immediate LR rescale (k=16)",
		"Mode", "Pre loss", "Peak loss after change", "Spike", "Final loss", "Diverged")
	var out []ProgressiveLRResult
	for _, progressive := range []bool{true, false} {
		r, err := run(progressive)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		t.AddRow(r.Mode, r.PreLoss, r.PeakLoss, fmt.Sprintf("%.2fx", r.SpikeRate),
			r.FinalLoss, r.Diverged)
	}
	t.Render(w)
	return out, nil
}

// AblationDataSemantics compares the serial and chunk-based data-loading
// semantics: replication-state size and repartition behaviour (Figure 13).
func AblationDataSemantics(w io.Writer) (*metrics.Table, error) {
	const epoch = 1_281_167 // ImageNet
	serial, err := data.NewSerialLoader(epoch)
	if err != nil {
		return nil, err
	}
	chunked, err := data.NewChunkLoader(epoch, 1024, 16)
	if err != nil {
		return nil, err
	}
	// Consume a third of the epoch on 16 workers.
	for it := 0; it < epoch/3/(16*32); it++ {
		for w := 0; w < 16; w++ {
			if _, _, err := serial.NextBatch(w, 16, 32); err != nil {
				return nil, err
			}
			if _, _, err := chunked.NextBatch(w, 16, 32); err != nil {
				return nil, err
			}
		}
	}
	t := metrics.NewTable("Ablation: serial vs chunk-based data loading (Figure 13)",
		"Semantics", "State size", "Remaining contiguous", "Repartition")
	repart := func(l data.Loader) string {
		// Genuine wall-time measurement of local compute, via the
		// sanctioned substrate rather than the time package.
		clk := clock.Wall{}
		start := clk.Now()
		if err := l.Repartition(16, 24); err != nil {
			return "error"
		}
		return fmt.Sprintf("ok (%v)", clk.Since(start).Round(time.Microsecond))
	}
	t.AddRow("serial", fmtBytes(serial.StateBytes()), "yes (single cursor)", repart(serial))
	t.AddRow("chunk-based", fmtBytes(chunked.StateBytes()), "no (record table)", repart(chunked))
	t.Render(w)
	return t, nil
}
