package experiment

import (
	"fmt"
	"io"
	"time"

	"github.com/elan-sys/elan/internal/metrics"
	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/simrun"
	"github.com/elan-sys/elan/internal/topology"
)

// AblationAsyncTimeline is the event-driven counterpart of the
// coordination ablation: the same scale-out is executed on the discrete-
// event simulator twice, once with the asynchronous coordination mechanism
// and once with a synchronous barrier, and the resulting training pauses
// and iteration counts are compared. Unlike the closed-form version, this
// one derives the pause from an actual event timeline (request, per-worker
// report, coordination, adjustment).
func AblationAsyncTimeline(w io.Writer) (*metrics.Table, error) {
	t := metrics.NewTable("Ablation: async vs sync coordination (event-driven, ResNet-50 8->16)",
		"Mode", "Iterations in 2 min", "Training pause", "Request->done latency")
	run := func(synchronous bool) (*simrun.Result, error) {
		c, err := topology.NewCluster(topology.DefaultGeometry())
		if err != nil {
			return nil, err
		}
		gpus, err := c.Reserve(8)
		if err != nil {
			return nil, err
		}
		add, err := c.Reserve(8)
		if err != nil {
			return nil, err
		}
		return simrun.Run(simrun.Config{
			Model:         models.ResNet50(),
			Cluster:       c,
			Workers:       topology.IDsOf(gpus),
			TotalBatch:    256,
			CoordInterval: 1,
			Seed:          8,
			Synchronous:   synchronous,
		}, []simrun.ScaleOutAt{{At: 10 * time.Second, Add: topology.IDsOf(add)}}, 2*time.Minute)
	}
	for _, synchronous := range []bool{false, true} {
		res, err := run(synchronous)
		if err != nil {
			return nil, err
		}
		mode := "asynchronous"
		if synchronous {
			mode = "synchronous"
		}
		latency := "-"
		if len(res.AdjustLatency) > 0 {
			latency = res.AdjustLatency[0].Round(time.Millisecond).String()
		}
		t.AddRow(mode, res.Iterations, fmtDur(res.TrainingPause), latency)
	}
	t.Render(w)
	fmt.Fprintln(w, "both modes wait ~30s for worker start+init; only the synchronous one stops training for it.")
	return t, nil
}
