package experiment

import (
	"fmt"
	"io"
	"time"

	"github.com/elan-sys/elan/internal/core"
	"github.com/elan-sys/elan/internal/metrics"
	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/perfmodel"
	"github.com/elan-sys/elan/internal/topology"
)

// StragglerScenario quantifies the straggler-mitigation use case the paper
// lists for elasticity (Section VII): synchronous data-parallel training is
// bound by its slowest rank, so one degraded GPU drags the whole job; Elan
// replaces just that worker with a ~1s pause, restoring full throughput.
// The table reports, for several slowdown factors, the throughput with the
// straggler, the replacement pause, and the time after which the migration
// pays for itself.
func StragglerScenario(w io.Writer) (*metrics.Table, error) {
	p := perfmodel.Default()
	m := models.ResNet50()
	const (
		nWorkers  = 16
		perWorker = 32
	)
	healthyIter, err := p.IterTime(m, nWorkers, perWorker)
	if err != nil {
		return nil, err
	}
	healthyTP := float64(nWorkers*perWorker) / healthyIter.Seconds()

	// The replacement pause, measured on a simulated job.
	c := bigCluster(4)
	gpus, err := c.Reserve(nWorkers)
	if err != nil {
		return nil, err
	}
	job, err := core.NewJob(core.JobConfig{
		Model: m, Cluster: c, Workers: topology.IDsOf(gpus),
		TotalBatch: nWorkers * perWorker, LR: 0.1, Seed: 33,
	})
	if err != nil {
		return nil, err
	}
	spare, err := c.Reserve(1)
	if err != nil {
		return nil, err
	}
	rep, err := job.Replace(job.Workers[3], spare[0].ID)
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable(
		fmt.Sprintf("Straggler mitigation (ResNet-50, %d workers; replacement pause %v)",
			nWorkers, rep.Pause.Round(time.Millisecond)),
		"Slowdown", "Throughput w/ straggler", "Loss", "Break-even after")
	for _, factor := range []float64{1.25, 1.5, 2, 4} {
		slowIter, err := p.IterTimeStraggler(m, nWorkers, perWorker, factor)
		if err != nil {
			return nil, err
		}
		slowTP := float64(nWorkers*perWorker) / slowIter.Seconds()
		lossFrac := 1 - slowTP/healthyTP
		// Samples lost per second with the straggler vs the pause's cost in
		// samples: break-even when pause * healthyTP == t * (healthyTP-slowTP).
		breakEven := time.Duration(rep.Pause.Seconds() * healthyTP / (healthyTP - slowTP) * float64(time.Second))
		t.AddRow(fmt.Sprintf("%.2fx", factor),
			fmt.Sprintf("%.0f samples/s", slowTP),
			fmt.Sprintf("-%.0f%%", 100*lossFrac),
			breakEven.Round(100*time.Millisecond).String())
	}
	t.Render(w)
	fmt.Fprintf(w, "healthy throughput: %.0f samples/s; a few seconds of straggling already justify the migration.\n", healthyTP)
	return t, nil
}
