package experiment

import (
	"fmt"
	"io"
	"time"

	"github.com/elan-sys/elan/internal/metrics"
	"github.com/elan-sys/elan/internal/sched"
)

// SpotScenario demonstrates the transient-resource use case the paper
// names for cloud deployments: the cluster temporarily loses part of its
// capacity (spot reclaim) and elastic jobs shrink to ride it out instead of
// dying. The table compares constant capacity against a reclaim window
// under the Elan and S&R cost models: with cheap adjustments the reclaim
// costs little; with S&R every shrink/grow charges a restart.
func SpotScenario(w io.Writer) (*metrics.Table, error) {
	jobs, err := schedTrace(40, true)
	if err != nil {
		return nil, err
	}
	// Capacity drops by half for 45 minutes in the middle of the run.
	reclaim := func(now time.Duration) int {
		if now > time.Hour && now < time.Hour+45*time.Minute {
			return 64
		}
		return 128
	}
	t := metrics.NewTable("Transient (spot) capacity: E-BF under a 50% reclaim window",
		"Capacity", "System", "Mean JCT (min)", "Makespan (h)")
	type cse struct {
		name  string
		capFn func(time.Duration) int
		sys   sched.System
	}
	cases := []cse{
		{"constant", nil, sched.IdealSystem{}},
		{"reclaim", reclaim, sched.NewElanSystem(40)},
		{"reclaim", reclaim, sched.NewSRSystem(40)},
	}
	var out []*sched.Result
	for _, c := range cases {
		cfg := sched.DefaultConfig(sched.ElasticBackfill, c.sys)
		cfg.Tick = 2 * time.Second
		cfg.CapacityFn = c.capFn
		res, err := sched.Run(cfg, jobs)
		if err != nil {
			return nil, fmt.Errorf("spot %s/%s: %w", c.name, c.sys.Name(), err)
		}
		out = append(out, res)
		t.AddRow(c.name, c.sys.Name(),
			fmt.Sprintf("%.1f", res.MeanJCT.Minutes()),
			fmt.Sprintf("%.2f", res.Makespan.Hours()))
	}
	t.Render(w)
	fmt.Fprintln(w, "all jobs complete in every case: elasticity turns reclaims into slowdowns, not failures.")
	_ = out
	return t, nil
}
