package experiment

import (
	"io"
	"strings"
	"testing"
)

func TestTable01ListsAllModels(t *testing.T) {
	var b strings.Builder
	tab := Table01(&b)
	if tab.NumRows() != 5 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	out := b.String()
	for _, want := range []string{"ResNet-50", "VGG-19", "MobileNet-v2", "Seq2Seq", "Transformer", "143M"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestTable02StateInventory(t *testing.T) {
	var b strings.Builder
	tab := Table02(&b)
	if tab.NumRows() != 5 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	out := b.String()
	if !strings.Contains(out, "GPU") || !strings.Contains(out, "CPU") {
		t.Fatal("missing device column values")
	}
}

func TestFig03CurvesHavePeaks(t *testing.T) {
	series := Fig03(io.Discard)
	if len(series) != 15 { // 5 models x 3 TBS
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if s.Len() < 3 {
			t.Errorf("%s: only %d points", s.Name, s.Len())
			continue
		}
		peak := 0
		for i := range s.Y {
			if s.Y[i] > s.Y[peak] {
				peak = i
			}
		}
		if peak == s.Len()-1 {
			t.Errorf("%s: strong scaling never falls", s.Name)
		}
	}
}

func TestFig04CurvesMonotone(t *testing.T) {
	series := Fig04(io.Discard)
	if len(series) != 15 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		for i := 1; i < s.Len(); i++ {
			if s.Y[i] <= s.Y[i-1] {
				t.Errorf("%s: weak scaling not monotone at %v", s.Name, s.X[i])
			}
		}
	}
}

func TestFig08BandwidthOrdering(t *testing.T) {
	series := Fig08(io.Discard)
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	p2p, shm, net := series[0], series[1], series[2]
	for i := range p2p.Y {
		if !(p2p.Y[i] > shm.Y[i] && shm.Y[i] > net.Y[i]) {
			t.Fatalf("ordering violated at point %d: %v %v %v", i, p2p.Y[i], shm.Y[i], net.Y[i])
		}
	}
}

func TestFig09PlanMatchesPaper(t *testing.T) {
	plan, err := Fig09(io.Discard)
	if err != nil {
		t.Fatalf("Fig09: %v", err)
	}
	if len(plan.Pairs) != 2 {
		t.Fatalf("pairs = %d", len(plan.Pairs))
	}
	// E's source is C (node 0, socket 1); F's source is D (node 1).
	if plan.Pairs[0].Source.Socket != 1 || plan.Pairs[0].Source.Node != 0 {
		t.Fatalf("E's source = %v", plan.Pairs[0].Source)
	}
	if plan.Pairs[1].Source.Node != 1 {
		t.Fatalf("F's source = %v", plan.Pairs[1].Source)
	}
}

func TestFig11StartInitDominates(t *testing.T) {
	var b strings.Builder
	Fig11(&b)
	out := b.String()
	for _, phase := range []string{"checkpoint", "shutdown", "start", "initialize", "load"} {
		if !strings.Contains(out, phase) {
			t.Errorf("missing phase %q", phase)
		}
	}
}

func TestFig12ElanPauseSubSecondScale(t *testing.T) {
	if _, err := Fig12(io.Discard); err != nil {
		t.Fatalf("Fig12: %v", err)
	}
}

func TestFig14AllUnderThreePerMille(t *testing.T) {
	tab, err := Fig14(io.Discard)
	if err != nil {
		t.Fatalf("Fig14: %v", err)
	}
	if tab.NumRows() != 30 { // 5 models x 6 worker counts
		t.Fatalf("rows = %d", tab.NumRows())
	}
}

func TestFig15SpeedupBands(t *testing.T) {
	var b strings.Builder
	tab, err := Fig15(&b)
	if err != nil {
		t.Fatalf("Fig15: %v", err)
	}
	if tab.NumRows() != 45 { // 5 models x 9 cases
		t.Fatalf("rows = %d", tab.NumRows())
	}
	out := b.String()
	if !strings.Contains(out, "scale-out") || !strings.Contains(out, "migrate") {
		t.Fatal("missing adjustment kinds")
	}
}

func TestFig16TransformerWorst(t *testing.T) {
	tab, err := Fig16(io.Discard)
	if err != nil {
		t.Fatalf("Fig16: %v", err)
	}
	if tab.NumRows() != 20 { // 5 models x 4 worker counts
		t.Fatalf("rows = %d", tab.NumRows())
	}
}

func TestFig17PaperConfigsNearOptimal(t *testing.T) {
	series := Fig17(io.Discard)
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	// For each TBS, the paper's chosen worker count must be within 25% of
	// the curve's maximum throughput.
	chosen := map[int]float64{512: 16, 1024: 32, 2048: 64}
	tbsOf := []int{512, 1024, 2048}
	for i, s := range series {
		want := chosen[tbsOf[i]]
		var chosenY, maxY float64
		for j := range s.X {
			if s.X[j] == want {
				chosenY = s.Y[j]
			}
			if s.Y[j] > maxY {
				maxY = s.Y[j]
			}
		}
		if chosenY < 0.75*maxY {
			t.Errorf("TBS %d: paper config at %.0f%% of peak", tbsOf[i], 100*chosenY/maxY)
		}
	}
}

func TestFig18FinalAccuraciesMatchPaper(t *testing.T) {
	static, elastic := Fig18(io.Discard)
	finalStatic := static.Y[static.Len()-1]
	finalElastic := elastic.Y[elastic.Len()-1]
	if finalStatic < 0.757 || finalStatic > 0.760 {
		t.Fatalf("static final = %v, want ~0.7589", finalStatic)
	}
	if finalElastic < 0.757 || finalElastic > 0.760 {
		t.Fatalf("elastic final = %v, want ~0.7587", finalElastic)
	}
	// The hybrid mechanism keeps model performance: within 0.1%.
	if diff := finalStatic - finalElastic; diff > 0.001 || diff < -0.001 {
		t.Fatalf("accuracy gap %v too large", diff)
	}
}

func TestFig19ElasticFastest(t *testing.T) {
	series, err := Fig19(io.Discard)
	if err != nil {
		t.Fatalf("Fig19: %v", err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	// At epoch 90 (last point), the elastic config's wall time is the
	// smallest.
	endTime := func(s int) float64 { return series[s].X[series[s].Len()-1] }
	static, fixed64, elastic := endTime(0), endTime(1), endTime(2)
	if !(elastic < static && elastic < fixed64) {
		t.Fatalf("elastic (%v h) not fastest: static %v h, fixed-64 %v h", elastic, static, fixed64)
	}
}

func TestTable04SpeedupsMatchPaperShape(t *testing.T) {
	rows, err := Table04(io.Discard)
	if err != nil {
		t.Fatalf("Table04: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	prev := 0.0
	for _, r := range rows {
		// Paper: ~20% speedup (1.2x-1.45x band), increasing with target.
		if r.Speedup < 1.15 || r.Speedup > 1.5 {
			t.Errorf("target %.3f: speedup %.2fx outside [1.15, 1.5]", r.Target, r.Speedup)
		}
		if r.Speedup < prev {
			t.Errorf("speedup not increasing with target accuracy")
		}
		prev = r.Speedup
		// Dynamic batches on fixed 64 workers: no speedup (paper: "hard to
		// obtain a speedup").
		if r.Speed64 > 1.05 {
			t.Errorf("target %.3f: fixed-64 speedup %.2fx, want <= 1.05", r.Target, r.Speed64)
		}
	}
}

func TestFig05PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("live training sweep")
	}
	results, err := Fig05(io.Discard, false)
	if err != nil {
		t.Fatalf("Fig05: %v", err)
	}
	if len(results) != 7 {
		t.Fatalf("results = %d", len(results))
	}
	small := results[0]
	var big, mid Fig05Result
	for _, r := range results {
		if r.TotalBatch == 2048 {
			big = r
		}
		if r.TotalBatch == 1024 {
			mid = r
		}
	}
	// Default degrades with large batches.
	if big.DefaultAcc >= small.DefaultAcc-0.1 {
		t.Errorf("default did not degrade: %.3f -> %.3f", small.DefaultAcc, big.DefaultAcc)
	}
	// Hybrid recovers most of it at mid-large batches.
	if mid.HybridAcc <= mid.DefaultAcc+0.05 {
		t.Errorf("hybrid did not recover at TBS 1024: default %.3f hybrid %.3f",
			mid.DefaultAcc, mid.HybridAcc)
	}
	// Hybrid still beats default at the extreme, but itself degrades
	// relative to the small-batch baseline (the paper's 2^12 observation).
	if big.HybridAcc <= big.DefaultAcc {
		t.Errorf("hybrid worse than default at TBS 2048: %.3f vs %.3f", big.HybridAcc, big.DefaultAcc)
	}
	if big.HybridAcc >= small.HybridAcc-0.03 {
		t.Errorf("hybrid did not degrade at the extreme: %.3f vs %.3f", big.HybridAcc, small.HybridAcc)
	}
}

func TestFig01Fluctuates(t *testing.T) {
	s, err := Fig01(io.Discard)
	if err != nil {
		t.Fatalf("Fig01: %v", err)
	}
	var minU, maxU = 2.0, -1.0
	for _, u := range s.Y {
		if u < minU {
			minU = u
		}
		if u > maxU {
			maxU = u
		}
	}
	if maxU-minU < 0.3 {
		t.Fatalf("utilization fluctuation [%v, %v] too small", minU, maxU)
	}
}

func TestFig20ElasticWins(t *testing.T) {
	runs, err := Fig20(io.Discard, 1, true)
	if err != nil {
		t.Fatalf("Fig20: %v", err)
	}
	if len(runs) != 4 {
		t.Fatalf("runs = %d", len(runs))
	}
	byPolicy := map[string]Fig20Run{}
	for _, r := range runs {
		byPolicy[r.Policy.String()] = r
	}
	if byPolicy["E-FIFO"].MeanJCT >= byPolicy["FIFO"].MeanJCT {
		t.Error("E-FIFO JCT not better than FIFO")
	}
	if byPolicy["E-BF"].Makespan > byPolicy["BF"].Makespan {
		t.Error("E-BF makespan worse than BF")
	}
}

func TestFig21ElasticUtilizationHigher(t *testing.T) {
	static, elastic, err := Fig21(io.Discard, true)
	if err != nil {
		t.Fatalf("Fig21: %v", err)
	}
	// Compare over the shared busy window.
	n := static.Len()
	if elastic.Len() < n {
		n = elastic.Len()
	}
	var sMean, eMean float64
	for i := 0; i < n; i++ {
		sMean += static.Y[i]
		eMean += elastic.Y[i]
	}
	if eMean <= sMean {
		t.Fatalf("elastic utilization not higher: %v vs %v", eMean/float64(n), sMean/float64(n))
	}
}

func TestFig22SystemOrdering(t *testing.T) {
	runs, err := Fig22(io.Discard, true)
	if err != nil {
		t.Fatalf("Fig22: %v", err)
	}
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	ideal, elan, sr := runs[0], runs[1], runs[2]
	if float64(elan.MeanJCT) > 1.05*float64(ideal.MeanJCT) {
		t.Errorf("Elan JCT %v too far above ideal %v", elan.MeanJCT, ideal.MeanJCT)
	}
	if sr.MeanJCT <= elan.MeanJCT {
		t.Errorf("S&R JCT %v not worse than Elan %v", sr.MeanJCT, elan.MeanJCT)
	}
}

func TestAblationReplicationOrdering(t *testing.T) {
	if _, err := AblationReplication(io.Discard); err != nil {
		t.Fatalf("AblationReplication: %v", err)
	}
}

func TestAblationCoordinationHidesMost(t *testing.T) {
	if _, err := AblationCoordination(io.Discard); err != nil {
		t.Fatalf("AblationCoordination: %v", err)
	}
}

func TestAblationProgressiveLRSmoother(t *testing.T) {
	if testing.Short() {
		t.Skip("live training")
	}
	results, err := AblationProgressiveLR(io.Discard)
	if err != nil {
		t.Fatalf("AblationProgressiveLR: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	prog, imm := results[0], results[1]
	if prog.Mode != "progressive" || imm.Mode != "immediate" {
		t.Fatalf("modes = %q, %q", prog.Mode, imm.Mode)
	}
	if prog.SpikeRate >= imm.SpikeRate {
		t.Fatalf("progressive spike %.2f not smaller than immediate %.2f",
			prog.SpikeRate, imm.SpikeRate)
	}
}

func TestAblationAsyncTimeline(t *testing.T) {
	var b strings.Builder
	tab, err := AblationAsyncTimeline(&b)
	if err != nil {
		t.Fatalf("AblationAsyncTimeline: %v", err)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	out := b.String()
	if !strings.Contains(out, "asynchronous") || !strings.Contains(out, "synchronous") {
		t.Fatal("modes missing")
	}
}

func TestAblationDataSemantics(t *testing.T) {
	if _, err := AblationDataSemantics(io.Discard); err != nil {
		t.Fatalf("AblationDataSemantics: %v", err)
	}
}

func TestFig06DemoRenders(t *testing.T) {
	var b strings.Builder
	tab := Fig06Demo(&b)
	if tab.NumRows() == 0 {
		t.Fatal("no decisions rendered")
	}
	if !strings.Contains(b.String(), "strong") {
		t.Fatal("no strong-scaling decision present")
	}
}

func TestStragglerScenario(t *testing.T) {
	var b strings.Builder
	tab, err := StragglerScenario(&b)
	if err != nil {
		t.Fatalf("StragglerScenario: %v", err)
	}
	if tab.NumRows() != 4 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	out := b.String()
	if !strings.Contains(out, "replacement pause") || !strings.Contains(out, "Break-even") {
		t.Fatalf("output incomplete:\n%s", out)
	}
}

func TestSpotScenario(t *testing.T) {
	var b strings.Builder
	tab, err := SpotScenario(&b)
	if err != nil {
		t.Fatalf("SpotScenario: %v", err)
	}
	if tab.NumRows() != 3 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if !strings.Contains(b.String(), "reclaim") {
		t.Fatal("missing reclaim rows")
	}
}
