// Package models defines the DL model zoo of the paper's Table I plus
// ResNet-50, together with the calibration constants the performance model
// needs: parameter counts, per-sample compute time on the reference GPU
// (GeForce 1080Ti), fixed per-iteration kernel overhead, the fraction of
// allreduce communication that overlaps with backward compute, and the sizes
// of the CPU- and GPU-resident training state (Table II).
//
// Absolute values are approximations of the paper-era hardware; the scaling
// experiments only depend on their relative magnitudes (e.g. VGG-19 is
// communication-heavy, MobileNet-v2 is latency-bound).
package models

import (
	"fmt"
	"time"
)

// Model describes one neural network for the analytic training model.
type Model struct {
	// Name as in Table I.
	Name string
	// Letter is the single-letter alias of Figure 15 (A-E).
	Letter string
	// Kind is the architecture family (CNN, RNN, Attention).
	Kind string
	// Domain is CV or NLP.
	Domain string
	// Dataset names the training set of Table I.
	Dataset string
	// Params is the number of trainable parameters.
	Params int64
	// PerSampleTime is the forward+backward compute time per sample on the
	// reference GPU at a moderate batch size.
	PerSampleTime time.Duration
	// KernelOverhead is the fixed per-iteration launch/framework overhead;
	// it bounds strong scaling (compute cannot shrink below it).
	KernelOverhead time.Duration
	// OverlapFraction is the share of allreduce time hideable behind
	// backward compute (gradient bucketing).
	OverlapFraction float64
	// MaxPerWorkerBatch is the largest batch fitting in GPU memory.
	MaxPerWorkerBatch int
	// OptimizerFactor is optimizer state size relative to the parameters
	// (1.0 for SGD with momentum).
	OptimizerFactor float64
	// CPUStateBytes is the CPU-resident state: data-loading cursors,
	// communication-group description, runtime info (Table II: tiny).
	CPUStateBytes int64
	// DatasetSamples is the training-set size used for epoch accounting.
	DatasetSamples int
	// SwapContextBytes is the GPU context an executor-based system (Litz)
	// moves across PCIe on every context switch: parameters, optimizer
	// state and live activations. Activations dominate, so attention
	// models with long sequences (Transformer) have the largest contexts.
	SwapContextBytes int64
}

// GradBytes returns the gradient (= parameter) payload per allreduce in
// bytes, assuming float32 training.
func (m Model) GradBytes() int64 { return m.Params * 4 }

// GPUStateBytes returns the GPU-resident training state that must be
// replicated to a new worker: parameters plus optimizer state.
func (m Model) GPUStateBytes() int64 {
	return int64(float64(m.Params*4) * (1 + m.OptimizerFactor))
}

// TotalStateBytes returns all state replicated on an adjustment.
func (m Model) TotalStateBytes() int64 { return m.GPUStateBytes() + m.CPUStateBytes }

// Zoo returns the five evaluation models. The order matches the paper's
// letters: A ResNet-50, B VGG-19, C MobileNet-v2, D Seq2Seq, E Transformer.
func Zoo() []Model {
	return []Model{
		ResNet50(),
		VGG19(),
		MobileNetV2(),
		Seq2Seq(),
		Transformer(),
	}
}

// ByName looks a model up by its Table I name.
func ByName(name string) (Model, error) {
	for _, m := range Zoo() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("models: unknown model %q", name)
}

// ByLetter looks a model up by its Figure 15 letter (A-E).
func ByLetter(letter string) (Model, error) {
	for _, m := range Zoo() {
		if m.Letter == letter {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("models: unknown letter %q", letter)
}

// ResNet50 is the headline model of the elastic-training experiment
// (Section VI-B): 25.6M parameters on ImageNet.
func ResNet50() Model {
	return Model{
		Name:              "ResNet-50",
		Letter:            "A",
		Kind:              "CNN",
		Domain:            "CV",
		Dataset:           "ImageNet",
		Params:            25_600_000,
		PerSampleTime:     5500 * time.Microsecond,
		KernelOverhead:    18 * time.Millisecond,
		OverlapFraction:   0.6,
		MaxPerWorkerBatch: 64,
		OptimizerFactor:   1.0,
		CPUStateBytes:     64 << 10,
		SwapContextBytes:  1536 << 20,
		DatasetSamples:    1_281_167,
	}
}

// VGG19 is the communication-heavy CNN: 143M parameters (572 MB gradients).
func VGG19() Model {
	return Model{
		Name:              "VGG-19",
		Letter:            "B",
		Kind:              "CNN",
		Domain:            "CV",
		Dataset:           "ImageNet",
		Params:            143_000_000,
		PerSampleTime:     11 * time.Millisecond,
		KernelOverhead:    14 * time.Millisecond,
		OverlapFraction:   0.5,
		MaxPerWorkerBatch: 48,
		OptimizerFactor:   1.0,
		CPUStateBytes:     64 << 10,
		SwapContextBytes:  2560 << 20,
		DatasetSamples:    1_281_167,
	}
}

// MobileNetV2 is the small, latency-bound CNN: 3.5M parameters.
func MobileNetV2() Model {
	return Model{
		Name:              "MobileNet-v2",
		Letter:            "C",
		Kind:              "CNN",
		Domain:            "CV",
		Dataset:           "ImageNet",
		Params:            3_500_000,
		PerSampleTime:     2500 * time.Microsecond,
		KernelOverhead:    22 * time.Millisecond,
		OverlapFraction:   0.4,
		MaxPerWorkerBatch: 128,
		OptimizerFactor:   1.0,
		CPUStateBytes:     64 << 10,
		SwapContextBytes:  640 << 20,
		DatasetSamples:    1_281_167,
	}
}

// Seq2Seq is the RNN translation model on Tatoeba: 45M parameters.
func Seq2Seq() Model {
	return Model{
		Name:              "Seq2Seq",
		Letter:            "D",
		Kind:              "RNN",
		Domain:            "NLP",
		Dataset:           "Tatoeba",
		Params:            45_000_000,
		PerSampleTime:     8 * time.Millisecond,
		KernelOverhead:    30 * time.Millisecond,
		OverlapFraction:   0.3,
		MaxPerWorkerBatch: 96,
		OptimizerFactor:   1.0,
		CPUStateBytes:     96 << 10,
		SwapContextBytes:  2048 << 20,
		DatasetSamples:    500_000,
	}
}

// Transformer is the attention model on WMT'16: 47M parameters. Its small
// per-sample compute and large activation footprint make it the model that
// suffers most from Litz-style context switching (Figure 16).
func Transformer() Model {
	return Model{
		Name:              "Transformer",
		Letter:            "E",
		Kind:              "Attention",
		Domain:            "NLP",
		Dataset:           "WMT'16",
		Params:            47_000_000,
		PerSampleTime:     6 * time.Millisecond,
		KernelOverhead:    25 * time.Millisecond,
		OverlapFraction:   0.45,
		MaxPerWorkerBatch: 80,
		OptimizerFactor:   1.0,
		CPUStateBytes:     96 << 10,
		SwapContextBytes:  4608 << 20,
		DatasetSamples:    4_500_000,
	}
}
