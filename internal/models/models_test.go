package models

import "testing"

func TestZooComplete(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 5 {
		t.Fatalf("zoo size = %d, want 5", len(zoo))
	}
	letters := map[string]bool{}
	for _, m := range zoo {
		if m.Name == "" || m.Letter == "" || m.Dataset == "" {
			t.Errorf("incomplete model %+v", m)
		}
		if m.Params <= 0 || m.PerSampleTime <= 0 || m.KernelOverhead <= 0 {
			t.Errorf("%s: non-positive calibration", m.Name)
		}
		if m.OverlapFraction < 0 || m.OverlapFraction > 1 {
			t.Errorf("%s: overlap fraction %v out of [0,1]", m.Name, m.OverlapFraction)
		}
		if m.MaxPerWorkerBatch <= 0 || m.DatasetSamples <= 0 {
			t.Errorf("%s: missing limits", m.Name)
		}
		if letters[m.Letter] {
			t.Errorf("duplicate letter %s", m.Letter)
		}
		letters[m.Letter] = true
	}
	for _, l := range []string{"A", "B", "C", "D", "E"} {
		if !letters[l] {
			t.Errorf("missing letter %s", l)
		}
	}
}

func TestTableIParameterCounts(t *testing.T) {
	// Table I: VGG-19 143M, MobileNet-v2 ~3M, Seq2Seq 45M, Transformer 47M.
	cases := map[string]int64{
		"VGG-19":       143_000_000,
		"MobileNet-v2": 3_500_000,
		"Seq2Seq":      45_000_000,
		"Transformer":  47_000_000,
		"ResNet-50":    25_600_000,
	}
	for name, want := range cases {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if m.Params != want {
			t.Errorf("%s params = %d, want %d", name, m.Params, want)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("AlexNet"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestByLetter(t *testing.T) {
	m, err := ByLetter("B")
	if err != nil || m.Name != "VGG-19" {
		t.Fatalf("ByLetter(B) = %v, %v", m.Name, err)
	}
	if _, err := ByLetter("Z"); err == nil {
		t.Fatal("unknown letter accepted")
	}
}

func TestStateSizes(t *testing.T) {
	m := ResNet50()
	if got := m.GradBytes(); got != m.Params*4 {
		t.Fatalf("GradBytes = %d", got)
	}
	// SGD+momentum: GPU state = 2x parameter bytes.
	if got := m.GPUStateBytes(); got != m.Params*8 {
		t.Fatalf("GPUStateBytes = %d, want %d", got, m.Params*8)
	}
	if m.TotalStateBytes() != m.GPUStateBytes()+m.CPUStateBytes {
		t.Fatal("TotalStateBytes inconsistent")
	}
	// Table II observation: GPU state is much larger than CPU state.
	if m.GPUStateBytes() < 100*m.CPUStateBytes {
		t.Fatalf("GPU state (%d) not >> CPU state (%d)", m.GPUStateBytes(), m.CPUStateBytes)
	}
}

func TestBERTScaleStateExceeds1GB(t *testing.T) {
	// The paper motivates replication efficiency with BERT's >1GB of
	// parameters; our largest model VGG-19 must also exceed 1GB of GPU
	// state (params + momentum) to keep that regime covered.
	m := VGG19()
	if m.GPUStateBytes() < 1<<30 {
		t.Fatalf("VGG-19 GPU state %d bytes, want > 1GiB", m.GPUStateBytes())
	}
}
