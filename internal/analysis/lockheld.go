package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
)

// lockBlockingCalls are method names from this codebase's known-blocking
// set: clock sleeps, reliable transport calls, and collective operations.
// Calling any of them — or touching a channel — while a mutex acquired in
// the same function is still held is how the pre-PR3 adjustment deadlocks
// happened: the lock holder waits on a peer that needs the lock to make
// progress. Broadcast is deliberately absent: matching is by name, and
// sync.Cond.Broadcast — non-blocking and correctly called under the lock
// — would collide with collective's vector Broadcast.
var lockBlockingCalls = map[string]bool{
	"Sleep": true, "Call": true, "CallCtx": true, "CallRetry": true,
	"AllReduce": true, "AllReduceMean": true, "Barrier": true,
}

// LockHeld flags blocking operations performed while a sync.Mutex/RWMutex
// acquired in the same function is provably still held: a channel send or
// receive, a select without default, or a call into the known-blocking set,
// reached after an x.Lock()/x.RLock() with no intervening x.Unlock() and no
// defer x.Unlock() scheduled. The analysis is per-function and
// flow-conservative: branch bodies are scanned with a copy of the held
// set, function literals are independent analysis units, and go statements
// are skipped (their bodies run on other goroutines).
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc: "forbid channel operations and known-blocking calls while a mutex " +
		"acquired in the same function is still held without an Unlock or defer Unlock",
	Run: runLockHeld,
}

func runLockHeld(pass *Pass) {
	for _, f := range pass.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				lh := &lockScan{pass: pass, fset: pass.Fset}
				lh.block(body.List, map[string]token.Pos{})
			}
			return true // descend: nested literals get their own scan
		})
	}
}

type lockScan struct {
	pass *Pass
	fset *token.FileSet
}

// exprKey renders the receiver expression of a Lock/Unlock call ("s.mu",
// "mu") so acquire and release sites pair up textually.
func exprKey(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// lockOp classifies a call as a mutex acquire/release on a receiver key.
func lockOp(fset *token.FileSet, call *ast.CallExpr) (key, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return exprKey(fset, sel.X), "lock"
	case "Unlock", "RUnlock":
		return exprKey(fset, sel.X), "unlock"
	}
	return "", ""
}

// block scans a statement list in order, mutating held as locks are
// acquired and released.
func (ls *lockScan) block(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		ls.stmt(s, held)
	}
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func (ls *lockScan) stmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op := lockOp(ls.fset, call); key != "" {
				if op == "lock" {
					held[key] = call.Pos()
				} else {
					delete(held, key)
				}
				return
			}
		}
		ls.expr(s.X, held)
	case *ast.DeferStmt:
		// defer x.Unlock() — directly or inside a deferred literal —
		// discharges the obligation for the rest of the function.
		if key, op := lockOp(ls.fset, s.Call); op == "unlock" {
			delete(held, key)
			return
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if key, op := lockOp(ls.fset, call); op == "unlock" {
						delete(held, key)
					}
				}
				return true
			})
		}
	case *ast.GoStmt:
		// Runs on another goroutine; its body is scanned as its own unit.
	case *ast.SendStmt:
		ls.report(s.Pos(), "channel send", held)
		ls.expr(s.Chan, held)
		ls.expr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			ls.expr(e, held)
		}
		for _, e := range s.Lhs {
			ls.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			ls.expr(e, held)
		}
	case *ast.IncDecStmt:
		ls.expr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						ls.expr(e, held)
					}
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		ls.expr(s.Cond, held)
		ls.block(s.Body.List, copyHeld(held))
		if s.Else != nil {
			ls.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		if s.Cond != nil {
			ls.expr(s.Cond, held)
		}
		ls.block(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		ls.expr(s.X, held)
		ls.block(s.Body.List, copyHeld(held))
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			ls.report(s.Pos(), "select without default", held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				ls.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		if s.Tag != nil {
			ls.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.BlockStmt:
		ls.block(s.List, held)
	case *ast.LabeledStmt:
		ls.stmt(s.Stmt, held)
	}
}

// expr scans an expression for blocking operations, skipping function
// literals (independent units).
func (ls *lockScan) expr(e ast.Expr, held map[string]token.Pos) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ls.report(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && lockBlockingCalls[sel.Sel.Name] {
				ls.report(n.Pos(), "blocking call "+sel.Sel.Name, held)
			}
		}
		return true
	})
}

func (ls *lockScan) report(pos token.Pos, what string, held map[string]token.Pos) {
	for key := range held {
		ls.pass.Reportf(pos,
			"%s while %s is held (locked with no intervening Unlock or defer Unlock); release the lock before blocking",
			what, key)
		return // one diagnostic per site, regardless of how many locks are held
	}
}
