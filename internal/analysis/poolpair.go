package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// PoolPair enforces the pooled-storage pairing contract from DESIGN
// §9/§12: a value withdrawn from a pool or scratch arena — framePool /
// any sync.Pool via Get, a rank's scratch arena via get, getFrameBuf() —
// must be released exactly once on every path out of the acquiring
// function. Three things count as the release:
//
//   - a put/Put/release/free/deposit call taking the value as an argument
//     (framePool.Put(b), putFrameBuf(b), sc.put(m.data));
//   - an ownership-transfer send: sending the value — or a message
//     containing it — on a channel, or passing it to a send*/deposit*
//     call (g.sendTo(me, succ, chunkMsg{data: out})), per the arena
//     ping-pong protocol where the send is the transfer point;
//   - an escape to a new owner: returning it, storing it in a struct, or
//     capturing it in a goroutine that now owns the release.
//
// Passing the buffer as a plain argument is a borrow (readFrame fills a
// caller-owned buffer; the caller still owes the Put), so leaks past
// borrows are still caught. Releasing a definitely-released value twice
// is reported: a double Put poisons a sync.Pool with aliased buffers, the
// exact class of corruption the frame pool's one-copy handoff exists to
// avoid.
var PoolPair = &Analyzer{
	Name: "poolpair",
	Doc: "pool/arena values (framePool, sync.Pool, scratch arenas) must be " +
		"released exactly once on all paths; sends and deposits transfer ownership",
	Run: runPoolPair,
}

// poolRecvRe matches receiver/type names that identify a pool or arena.
var poolRecvRe = regexp.MustCompile(`(?i)(pool|scratch|arena)`)

// poolReleaseRe matches callee names that give a value back to its pool.
var poolReleaseRe = regexp.MustCompile(`^(?i)(put|release|free|deposit)`)

// poolTransferRe matches callee names that transfer ownership to a peer
// per the arena protocol (the channel send inside is the transfer point).
var poolTransferRe = regexp.MustCompile(`^(?i)(send|deposit)`)

// acquireGetFuncs are package-level helpers that mint pooled values.
var acquireGetFuncs = map[string]bool{
	"getFrameBuf": true,
}

var poolPairSpec = &ownershipSpec{
	what:   "pooled buffer",
	action: "a put/release call or ownership-transfer send",
	acquire: func(pass *Pass, file *File, call *ast.CallExpr) bool {
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			return acquireGetFuncs[fun.Name]
		case *ast.SelectorExpr:
			if fun.Sel.Name != "Get" && fun.Sel.Name != "get" {
				return false
			}
			// Receiver names a pool/arena either textually (framePool,
			// sc := &g.scratch[r] → printed "sc" won't match, so also…)
			// or by its intra-package type (rankScratch resolves via the
			// package's own type info even under stubbed imports).
			if poolRecvRe.MatchString(exprKey(pass.Fset, fun.X)) {
				return true
			}
			return poolRecvRe.MatchString(typeNameOf(pass, fun.X))
		}
		return false
	},
	release: func(pass *Pass, file *File, call *ast.CallExpr, obj *ast.Object) bool {
		var name string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		default:
			return false
		}
		if poolReleaseRe.MatchString(name) {
			// The value itself as a direct argument.
			for _, a := range call.Args {
				if id := directIdent(a); id != nil && id.Obj == obj {
					return true
				}
			}
			return false
		}
		if poolTransferRe.MatchString(name) {
			// Ownership-transfer call: the value anywhere in the
			// arguments, including nested in a message literal.
			for _, a := range call.Args {
				found := false
				ast.Inspect(a, func(x ast.Node) bool {
					if id, ok := x.(*ast.Ident); ok && id.Obj == obj {
						found = true
					}
					return true
				})
				if found {
					return true
				}
			}
		}
		return false
	},
	sendReleases:  true, // ch <- buf / ch <- msg{data: buf} transfers ownership
	argBorrows:    true, // readFrame(conn, bufp): caller still owes the Put
	doubleRelease: true,
	skipPkg:       nil,
}

// typeNameOf best-effort resolves an expression's type name via the
// package's type info, peeling pointers. Cross-package types under the
// stub importer come back invalid and yield "".
func typeNameOf(pass *Pass, e ast.Expr) string {
	if pass.Info == nil {
		return ""
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func runPoolPair(pass *Pass) {
	runOwnership(pass, poolPairSpec)
}
