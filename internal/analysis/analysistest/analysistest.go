// Package analysistest runs an analyzer over a testdata package and checks
// its diagnostics against `// want "regexp"` comment annotations, the same
// golden-comment convention used by golang.org/x/tools/go/analysis. A want
// comment asserts that the analyzer reports a diagnostic on that line whose
// message matches the quoted regular expression; every diagnostic must be
// wanted and every want must be matched, so tests fail both on false
// positives and on a disabled or broken analyzer.
package analysistest

import (
	"go/token"
	"regexp"
	"strconv"
	"testing"

	"github.com/elan-sys/elan/internal/analysis"
)

// wantRe accepts both interpreted (`// want "..."`) and raw
// (// want `...`) annotation strings; raw strings keep regexp
// metacharacters like \( readable.
var wantRe = regexp.MustCompile("// want (\".*\"|`.*`)\\s*$")

// expectation is one `// want` annotation.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the package rooted at root/dir (dir becomes the package's
// import path, so analyzers with path-based allowlists can be pointed at
// allowlisted paths) and diffs the analyzer's diagnostics against the
// package's want annotations.
func Run(t *testing.T, root, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.LoadPackages(root, dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("load %s: got %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]

	var wants []*expectation
	for _, f := range pkg.Files {
		wants = append(wants, parseWants(t, pkg.Fset, f)...)
	}
	diags := analysis.Run([]*analysis.Analyzer{a}, pkgs)

	for _, d := range diags {
		if !match(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q (analyzer silent or broken)", w.file, w.line, w.re)
		}
	}
}

func parseWants(t *testing.T, fset *token.FileSet, f *analysis.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pat, err := strconv.Unquote(m[1])
			if err != nil {
				t.Fatalf("%s: bad want string %s: %v", f.Name, m[1], err)
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s: bad want regexp %q: %v", f.Name, pat, err)
			}
			out = append(out, &expectation{
				file: f.Name,
				line: fset.Position(c.Pos()).Line,
				re:   re,
			})
		}
	}
	return out
}

func match(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.hit || w.line != d.Pos.Line || w.file != d.Pos.Filename {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}
