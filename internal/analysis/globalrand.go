package analysis

import (
	"go/ast"
)

// globalRandFuncs are the math/rand package-level functions that draw from
// the shared, implicitly seeded global source. rand.New, rand.NewSource
// and rand.NewZipf are fine — they force the caller to hold a seeded
// *rand.Rand, which is exactly the contract.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
}

// GlobalRand enforces the replayability invariant: non-test code must not
// draw randomness from math/rand's global source (or re-seed it). Every
// random decision — chaos fault schedules, backoff jitter, data shuffles,
// weight init — must come from an injected *rand.Rand built with an
// explicit seed, so a soak or chaos run replays byte-identically from its
// seed alone. The global source is process-wide mutable state that any
// import can perturb, which silently breaks that guarantee.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "forbid math/rand package-level functions in non-test code; use an " +
		"injected, explicitly seeded *rand.Rand",
	Run: runGlobalRand,
}

func runGlobalRand(pass *Pass) {
	for _, f := range pass.Files {
		if f.Test {
			continue
		}
		file := f
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !globalRandFuncs[sel.Sel.Name] {
				return true
			}
			switch pass.ImportedPath(file, id) {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			pass.Reportf(call.Pos(),
				"global math/rand source via rand.%s breaks seeded replay; draw from an injected *rand.Rand",
				sel.Sel.Name)
			return true
		})
	}
}
