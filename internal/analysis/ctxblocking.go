package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxExemptNames are exported methods that conventionally block briefly
// without a context: terminators (Close/Stop/Shutdown release blocked
// callers rather than join them).
var ctxExemptNames = map[string]bool{
	"Close": true, "Stop": true, "Shutdown": true,
}

// ctxAllowedPkgs may block without a context: the clock substrate is the
// thing contexts are *implemented* on top of, and the discrete-event
// engine below it advances virtual time by blocking by design.
var ctxAllowedPkgs = map[string]bool{
	"internal/clock":    true,
	"internal/simclock": true,
}

// CtxBlocking enforces the cancellable-API invariant: an exported function
// or method that can block indefinitely — it performs a channel send or
// receive, a select without a default, or ranges over a channel — must
// accept a context.Context so callers (fleet lifecycle, scale operations,
// transport calls) can bound it. Convenience wrappers that delegate to a
// ctx-taking variant (e.g. Call → CallCtx(context.Background(), ...)) pass
// automatically because the wrapper body holds no blocking operation
// itself; only the function that owns the blocking op must take the ctx.
var CtxBlocking = &Analyzer{
	Name: "ctxblocking",
	Doc: "exported functions containing direct blocking channel operations " +
		"must accept a context.Context (terminators Close/Stop/Shutdown exempt)",
	Run: runCtxBlocking,
}

func runCtxBlocking(pass *Pass) {
	if ctxAllowedPkgs[pass.Path] {
		return
	}
	for _, f := range pass.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !fd.Name.IsExported() || ctxExemptNames[fd.Name.Name] {
				continue
			}
			if hasCtxParam(pass, f, fd.Type) {
				continue
			}
			if pos, what, ok := firstBlockingOp(pass, fd.Body); ok {
				pass.Reportf(pos,
					"exported %s blocks (%s) but takes no context.Context; add a ctx parameter or move the blocking op behind a ctx-taking variant",
					fd.Name.Name, what)
			}
		}
	}
}

// hasCtxParam reports whether any parameter's type is context.Context.
func hasCtxParam(pass *Pass, f *File, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		if id, ok := sel.X.(*ast.Ident); ok && pass.ImportedPath(f, id) == "context" {
			return true
		}
	}
	return false
}

// firstBlockingOp finds the first operation in body that can block the
// calling goroutine indefinitely. Function literals are skipped: a literal
// may run on another goroutine or carry its own analysis when invoked, and
// flagging through them would punish the common go-func pattern that is
// precisely how blocking work is moved off the caller.
func firstBlockingOp(pass *Pass, body *ast.BlockStmt) (pos token.Pos, what string, found bool) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pos, what, found = n.Pos(), "channel send", true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pos, what, found = n.Pos(), "channel receive", true
			}
		case *ast.SelectStmt:
			// The comm operations belong to the select: a select with a
			// default is non-blocking even though its cases send and
			// receive, so only the clause bodies are scanned generically.
			if !selectHasDefault(n) {
				pos, what, found = n.Pos(), "select without default", true
				return false
			}
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						ast.Inspect(s, visit)
					}
				}
			}
			return false
		case *ast.RangeStmt:
			if pass.Info != nil {
				if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pos, what, found = n.Pos(), "range over channel", true
					}
				}
			}
		}
		return !found
	}
	ast.Inspect(body, visit)
	return pos, what, found
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
