package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, best-effort type-checked package.
type Package struct {
	// Path is the slash-separated directory path relative to the module
	// root ("." for the root package).
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*File
	Types *types.Package
	Info  *types.Info
}

// ModuleRoot walks upward from dir to the nearest directory containing a
// go.mod file.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// LoadPackages resolves package patterns relative to root (a module root or
// any directory). Each pattern is either a directory ("./internal/coord",
// "."), or a recursive pattern ("./...", "./internal/..."), mirroring the
// go tool's syntax. Directories named "testdata" and hidden directories are
// skipped; directories containing no .go files are skipped silently.
func LoadPackages(root string, patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "..." || pat == "./...":
			if err := walkGoDirs(root, dirs); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(root, strings.TrimSuffix(pat, "/..."))
			if err := walkGoDirs(base, dirs); err != nil {
				return nil, err
			}
		default:
			dirs[filepath.Join(root, pat)] = true
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		pkg, err := LoadPackage(root, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

func walkGoDirs(base string, dirs map[string]bool) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != base) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
}

// LoadPackage parses every .go file in dir and type-checks the non-test
// files with stubbed imports. It returns nil (no error) if the directory
// holds no .go files.
func LoadPackage(root, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		files = append(files, &File{AST: f, Name: path, Test: strings.HasSuffix(name, "_test.go")})
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		rel = dir
	}
	pkg := &Package{
		Path:  filepath.ToSlash(rel),
		Dir:   dir,
		Fset:  fset,
		Files: files,
	}
	pkg.Types, pkg.Info = typeCheck(fset, pkg.Path, files)
	return pkg, nil
}

// typeCheck runs go/types over the non-test files with a stub importer:
// every import resolves to an empty placeholder package. Cross-package
// member references therefore produce (ignored) type errors, but local
// declarations and — crucially — package-name identifiers still resolve,
// which is all the analyzers need. The trade is deliberate: full
// cross-package type-checking would require either compiled export data or
// a source importer, both unavailable in a dependency-free module.
func typeCheck(fset *token.FileSet, path string, files []*File) (*types.Package, *types.Info) {
	var syntax []*ast.File
	for _, f := range files {
		if !f.Test {
			syntax = append(syntax, f.AST)
		}
	}
	if len(syntax) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
		Types: map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{
		Importer: &stubImporter{pkgs: map[string]*types.Package{}},
		Error:    func(error) {}, // stubbed imports guarantee errors; collect nothing
	}
	tpkg, _ := conf.Check(path, fset, syntax, info)
	return tpkg, info
}

// stubImporter satisfies every import with an empty, incomplete package
// named after the path's last element.
type stubImporter struct {
	pkgs map[string]*types.Package
}

func (si *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := si.pkgs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	si.pkgs[path] = p
	return p, nil
}
