package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
)

// ErrIdentity enforces the sentinel-identity contract from DESIGN §12:
// exported Err* sentinels are compared with errors.Is, never with == / !=
// / switch-case identity. PR 8 made sentinel identity survive the TCP
// wire precisely by wrapping (HandlerError's Unwrap restores the
// sentinel), which means a raw pointer comparison that happens to pass
// today over the in-process bus silently breaks the moment the same call
// crosses the pooled TCP path — the error is then a wrapper around the
// sentinel, not the sentinel itself. errors.Is is the single contract
// that holds on both paths, so identity comparisons are rejected
// everywhere, test files included (tests encode the contract consumers
// copy).
//
// Comparisons against nil and non-sentinel values are untouched; the
// check keys on the exported-sentinel naming convention (Err followed by
// an upper-case letter), matching both bare identifiers (ErrClosed) and
// package-qualified selectors (transport.ErrClosed).
var ErrIdentity = &Analyzer{
	Name: "erridentity",
	Doc: "compare exported Err* sentinels with errors.Is, never ==/!=/switch " +
		"(raw identity breaks across the TCP wire's error wrapping)",
	Run: runErrIdentity,
}

// sentinelRe matches the exported sentinel naming convention.
var sentinelRe = regexp.MustCompile(`^Err[A-Z]`)

// sentinelExpr reports whether e names an exported Err* sentinel,
// unwrapping one level of package qualification.
func sentinelExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return sentinelRe.MatchString(x.Name)
	case *ast.SelectorExpr:
		if _, ok := x.X.(*ast.Ident); ok {
			return sentinelRe.MatchString(x.Sel.Name)
		}
	}
	return false
}

func runErrIdentity(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if sentinelExpr(n.X) || sentinelExpr(n.Y) {
					pass.Reportf(n.OpPos,
						"sentinel compared with %s; use errors.Is so identity survives wrapping (and the TCP wire)", n.Op)
				}
			case *ast.SwitchStmt:
				for _, c := range n.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if sentinelExpr(e) {
							pass.Reportf(e.Pos(),
								"sentinel matched by switch-case identity; use errors.Is in an if/else chain so identity survives wrapping")
						}
					}
				}
			}
			return true
		})
	}
}
