package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFunc parses a single function body for CFG construction.
func parseFunc(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// reachableExits walks the CFG and collects the exit kinds of reachable
// blocks that edge to Exit.
func reachableExits(g *CFG) map[ExitKind]int {
	out := map[ExitKind]int{}
	for _, blk := range g.ReversePostorder() {
		if blk.Exit != ExitNone {
			out[blk.Exit]++
		}
	}
	return out
}

func TestCFGStraightLine(t *testing.T) {
	g := NewCFG(parseFunc(t, "x := 1\n_ = x"))
	rpo := g.ReversePostorder()
	if len(rpo) != 1 {
		t.Fatalf("straight-line function: %d reachable blocks, want 1", len(rpo))
	}
	if got := reachableExits(g); got[ExitFall] != 1 || len(got) != 1 {
		t.Fatalf("exits = %v, want one ExitFall", got)
	}
}

func TestCFGIfElseJoins(t *testing.T) {
	g := NewCFG(parseFunc(t, `
x := 0
if x > 0 {
	x = 1
} else {
	x = 2
}
_ = x`))
	rpo := g.ReversePostorder()
	// entry(+cond), then, else, join: all reachable.
	if len(rpo) != 4 {
		t.Fatalf("%d reachable blocks, want 4", len(rpo))
	}
	// The join block must have two predecessors: count edges into it.
	join := rpo[len(rpo)-1]
	preds := 0
	for _, blk := range rpo {
		for _, s := range blk.Succs {
			if s == join {
				preds++
			}
		}
	}
	if preds != 2 {
		t.Fatalf("join block has %d predecessors, want 2", preds)
	}
}

func TestCFGEarlyReturnBothExitKinds(t *testing.T) {
	g := NewCFG(parseFunc(t, `
x := 0
if x > 0 {
	return
}
_ = x`))
	got := reachableExits(g)
	if got[ExitReturn] != 1 || got[ExitFall] != 1 {
		t.Fatalf("exits = %v, want one ExitReturn and one ExitFall", got)
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	g := NewCFG(parseFunc(t, `
for i := 0; i < 10; i++ {
	if i == 5 {
		break
	}
	if i == 3 {
		continue
	}
	_ = i
}`))
	rpo := g.ReversePostorder()
	// A back edge exists: some reachable block's successor appears
	// earlier in RPO (the loop head).
	pos := map[*Block]int{}
	for i, blk := range rpo {
		pos[blk] = i
	}
	back := false
	for _, blk := range rpo {
		for _, s := range blk.Succs {
			if j, ok := pos[s]; ok && j <= pos[blk] {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("loop produced no back edge")
	}
}

func TestCFGInfiniteLoopNoFallExit(t *testing.T) {
	g := NewCFG(parseFunc(t, `
for {
	_ = 1
}`))
	if got := reachableExits(g); len(got) != 0 {
		t.Fatalf("infinite loop exits = %v, want none reachable", got)
	}
}

func TestCFGLabeledBreakEscapesOuterLoop(t *testing.T) {
	g := NewCFG(parseFunc(t, `
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if j == i {
			break outer
		}
	}
}
return`))
	if got := reachableExits(g); got[ExitReturn] != 1 {
		t.Fatalf("exits = %v, want the final return reachable", got)
	}
}

func TestCFGSwitchFallthroughAndDefault(t *testing.T) {
	g := NewCFG(parseFunc(t, `
x := 1
switch x {
case 1:
	x = 10
	fallthrough
case 2:
	x = 20
default:
	return
}
_ = x`))
	got := reachableExits(g)
	if got[ExitReturn] != 1 || got[ExitFall] != 1 {
		t.Fatalf("exits = %v, want one ExitReturn (default) and one ExitFall", got)
	}
}

func TestCFGSelectAllCasesReachable(t *testing.T) {
	g := NewCFG(parseFunc(t, `
var a, b chan int
select {
case <-a:
	return
case v := <-b:
	_ = v
}
_ = a`))
	got := reachableExits(g)
	if got[ExitReturn] != 1 || got[ExitFall] != 1 {
		t.Fatalf("exits = %v, want both select arms reachable", got)
	}
}

func TestCFGPanicIsNotAReturn(t *testing.T) {
	g := NewCFG(parseFunc(t, `
x := 0
if x > 0 {
	panic("boom")
}
_ = x`))
	got := reachableExits(g)
	if got[ExitPanic] != 1 || got[ExitFall] != 1 || got[ExitReturn] != 0 {
		t.Fatalf("exits = %v, want one ExitPanic and one ExitFall", got)
	}
}

func TestCFGGotoForward(t *testing.T) {
	g := NewCFG(parseFunc(t, `
x := 0
if x == 0 {
	goto done
}
x = 1
done:
return`))
	if got := reachableExits(g); got[ExitReturn] != 1 {
		t.Fatalf("exits = %v, want the labeled return reachable", got)
	}
}

// countingFlow exercises the Forward driver: it counts, per block entry,
// the maximum number of assignments seen on any path (a max lattice),
// proving loop fixpoints terminate and joins take the upper bound.
type countState int

func (c countState) Join(o FlowState) FlowState {
	if o == nil {
		return c
	}
	if oc := o.(countState); oc > c {
		return oc
	}
	return c
}
func (c countState) Equal(o FlowState) bool { return o != nil && c == o.(countState) }

type countFlow struct{ cap int }

func (countFlow) Entry() FlowState { return countState(0) }
func (cf countFlow) Transfer(n ast.Node, in FlowState) FlowState {
	c := in.(countState)
	if _, ok := n.(*ast.AssignStmt); ok && int(c) < cf.cap {
		c++
	}
	return c
}

func TestForwardFixpointOnLoop(t *testing.T) {
	g := NewCFG(parseFunc(t, `
x := 0
for i := 0; i < 3; i++ {
	x = x + 1
}
_ = x`))
	states := g.Forward(countFlow{cap: 10})
	if len(states) == 0 {
		t.Fatal("no states computed")
	}
	// The loop body's assignment feeds the head via the back edge, so
	// the saturated count must reach the cap at some block (fixpoint ran
	// the loop to saturation rather than diverging or stopping at 1).
	max := countState(0)
	for _, st := range states {
		if c := st.(countState); c > max {
			max = c
		}
	}
	if max != 10 {
		t.Fatalf("max count = %d, want saturation at 10", max)
	}
}

func TestForwardBranchJoinTakesUpperBound(t *testing.T) {
	g := NewCFG(parseFunc(t, `
y := 0
if y > 0 {
	y = 1
	y = 2
}
_ = y`))
	states := g.Forward(countFlow{cap: 10})
	var join *Block
	rpo := g.ReversePostorder()
	join = rpo[len(rpo)-1]
	st, ok := states[join]
	if !ok {
		t.Fatal("join block unreached")
	}
	// Path through the branch performs 3 assignments, around it 1; the
	// join must hold the upper bound.
	if c := st.(countState); c != 3 {
		t.Fatalf("join state = %d, want 3 (upper bound of 3 and 1)", c)
	}
}

func ExampleNewCFG() {
	fset := token.NewFileSet()
	f, _ := parser.ParseFile(fset, "x.go", `package p
func f(n int) int {
	if n > 0 {
		return n
	}
	return -n
}`, 0)
	g := NewCFG(f.Decls[0].(*ast.FuncDecl).Body)
	fmt.Println(len(g.ReversePostorder()) > 1)
	// Output: true
}
