package analysis

import (
	"go/ast"
	"sort"
)

// clockBanned are the time-package functions that read or wait on wall
// time. time.Duration / time.Time type references and constructors like
// time.Date remain fine — the contract is about *observing* time, not
// naming it.
var clockBanned = map[string]bool{
	"Sleep": true, "After": true, "AfterFunc": true, "Now": true,
	"NewTimer": true, "NewTicker": true, "Tick": true, "Since": true,
	"Until": true,
}

// clockAllowedPkgs are the only packages that may touch the time package
// directly: the clock substrate itself and the discrete-event engine it
// wraps.
var clockAllowedPkgs = map[string]bool{
	"internal/clock":    true,
	"internal/simclock": true,
}

// ClockAllowedPackages returns the sorted allowlist of packages that may
// touch the time package directly. Exported so a test (run in CI) can pin
// the allowlist: it must never grow silently, because every package outside
// it — telemetry and its flight recorder included — is what keeps traces on
// exact virtual time and chaos replays deterministic.
func ClockAllowedPackages() []string {
	pkgs := make([]string, 0, len(clockAllowedPkgs))
	for p := range clockAllowedPkgs {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	return pkgs
}

// ClockPolicy enforces the unified-time invariant across the whole tree:
// no non-test file outside the clock substrate may read or wait on wall
// time directly — all timing must flow through an injected clock.Clock so
// the entire stack runs identically on simulated time, traces carry exact
// virtual timestamps, and chaos runs replay deterministically. This
// subsumes the per-package grep and hand-rolled AST test that previously
// guarded only five packages.
var ClockPolicy = &Analyzer{
	Name: "clockpolicy",
	Doc: "forbid direct time.Now/Sleep/After/... calls outside internal/clock " +
		"and internal/simclock; inject a clock.Clock instead",
	Run: runClockPolicy,
}

func runClockPolicy(pass *Pass) {
	if clockAllowedPkgs[pass.Path] {
		return
	}
	for _, f := range pass.Files {
		if f.Test {
			continue
		}
		file := f
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !clockBanned[sel.Sel.Name] {
				return true
			}
			if pass.ImportedPath(file, id) != "time" {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct wall-clock call time.%s; route timing through an injected clock.Clock (clock.Wall{} in production paths)",
				sel.Sel.Name)
			return true
		})
	}
}
