package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the shared engine behind the spanend and poolpair
// analyzers: a forward dataflow over the CFG that tracks, per local
// variable, whether a resource acquired into it has been released,
// escaped, or is still owed on each path. The two analyzers differ only
// in their ownershipSpec — what counts as an acquisition, what counts as
// a release, and whether handing the value to another function transfers
// ownership (pool buffers are routinely lent to encoders/readers and
// returned by the caller, so argument passing is a borrow there; spans
// handed away — stored in a context, returned — change owners, so it is
// an escape).

// ownStatus is a powerset lattice over three facts about a tracked
// variable at a program point. Join is bitwise OR: "may be live" and "may
// be released" coexist after a branch that released on one arm only.
type ownStatus uint8

const (
	ownLive     ownStatus = 1 << iota // acquisition not yet released on some path
	ownReleased                       // released on some path
	ownEscaped                        // ownership handed elsewhere on some path
)

// ownershipSpec parameterizes the engine for one resource discipline.
type ownershipSpec struct {
	// what names the resource in diagnostics ("span", "pooled buffer").
	what string
	// action names the required release in diagnostics ("End()",
	// "a Put/put/release call or ownership-transfer send").
	action string
	// acquire reports whether a call expression mints a tracked value.
	acquire func(pass *Pass, file *File, call *ast.CallExpr) bool
	// release reports whether a call releases the tracked object obj
	// (End() on the receiver, Put(x)/put(x) with x as argument, an
	// ownership-transfer send/deposit call with x anywhere in its
	// arguments, ...).
	release func(pass *Pass, file *File, call *ast.CallExpr, obj *ast.Object) bool
	// sendReleases: a channel send whose value mentions the variable
	// transfers ownership (the collective arena protocol) rather than
	// escaping it.
	sendReleases bool
	// argBorrows: passing the variable as a call argument is a borrow
	// (caller still owes the release) instead of an escape. Release
	// calls are recognized before this applies.
	argBorrows bool
	// skipPkg skips entire packages (the implementation package that
	// owns the lifecycle legitimately manipulates half-open states).
	skipPkg func(path string) bool
	// doubleRelease: report a second release of a definitely-released
	// variable ("released exactly once", the pool contract). Spans keep
	// End idempotent by design, so spanend leaves this off.
	doubleRelease bool
}

// ownState is the dataflow state: status per tracked variable object.
type ownState struct {
	vars map[*ast.Object]ownStatus
}

func (s *ownState) get(o *ast.Object) ownStatus { return s.vars[o] }

func (s *ownState) clone() *ownState {
	c := &ownState{vars: make(map[*ast.Object]ownStatus, len(s.vars))}
	for k, v := range s.vars {
		c.vars[k] = v
	}
	return c
}

func (s *ownState) Join(other FlowState) FlowState {
	if other == nil {
		return s.clone()
	}
	o := other.(*ownState)
	c := s.clone()
	for k, v := range o.vars {
		c.vars[k] |= v
	}
	return c
}

func (s *ownState) Equal(other FlowState) bool {
	if other == nil {
		return false
	}
	o := other.(*ownState)
	if len(s.vars) != len(o.vars) {
		return false
	}
	for k, v := range s.vars {
		if o.vars[k] != v {
			return false
		}
	}
	return true
}

// ownFinding is one diagnostic candidate, deduplicated by position so the
// fixpoint's repeated transfers do not multiply reports.
type ownFinding struct {
	pos token.Pos
	msg string
}

// ownFlow runs the spec over one function body.
type ownFlow struct {
	pass *Pass
	file *File
	spec *ownershipSpec
	// acquired remembers each tracked object's acquisition position for
	// the leak message.
	acquired map[*ast.Object]token.Pos
	findings map[token.Pos]string
	// body is the function under analysis; only variables declared inside
	// it are tracked (acquiring into a package-level variable hands
	// ownership to whoever manages that global).
	body *ast.BlockStmt
	// recording is false during fixpoint iteration (intermediate states
	// under-approximate joins and could yield spurious reports) and true
	// only during the final replay pass.
	recording bool
}

// isLocal reports whether the object is declared within the analyzed
// body.
func (f *ownFlow) isLocal(obj *ast.Object) bool {
	decl, ok := obj.Decl.(ast.Node)
	return ok && f.body.Pos() <= decl.Pos() && decl.Pos() <= f.body.End()
}

func (f *ownFlow) Entry() FlowState { return &ownState{vars: map[*ast.Object]ownStatus{}} }

func (f *ownFlow) report(pos token.Pos, msg string) {
	if !f.recording {
		return
	}
	if _, ok := f.findings[pos]; !ok {
		f.findings[pos] = msg
	}
}

// rootIdent peels selectors/indexes/stars/parens/slices down to the base
// identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// directIdent unwraps parens only: the variable itself, not a projection.
func directIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Transfer pushes state through one node.
func (f *ownFlow) Transfer(node ast.Node, in FlowState) FlowState {
	st := in.(*ownState).clone()
	switch n := node.(type) {
	case *ast.AssignStmt:
		f.assign(n, st)
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if f.spec.acquire(f.pass, f.file, call) {
				f.report(call.Pos(), f.spec.what+" acquired and immediately discarded; the result must reach "+f.spec.action)
				// Nothing to track: the value is gone.
				f.scanUses(call, st, nil)
				return st
			}
			f.call(call, st)
			return st
		}
		f.scanUses(n.X, st, nil)
	case *ast.DeferStmt:
		f.deferStmt(n, st)
	case *ast.SendStmt:
		f.send(n, st)
	case *ast.GoStmt:
		// The goroutine takes ownership of anything it captures.
		f.escapeCaptured(n.Call, st)
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			f.escapeExpr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						f.scanUses(v, st, nil)
					}
				}
			}
		}
	case *ast.IncDecStmt, *ast.RangeStmt, *ast.EmptyStmt, *ast.LabeledStmt:
		// No ownership effect.
	case ast.Expr:
		// Control expressions (if/for conditions, switch tags): uses but
		// no transfer of ownership; method calls on tracked vars are
		// neutral, releases still count.
		f.scanUses(n, st, nil)
	default:
		if s, ok := node.(ast.Stmt); ok {
			ast.Inspect(s, func(x ast.Node) bool {
				if e, ok := x.(ast.Expr); ok {
					f.scanUses(e, st, nil)
					return false
				}
				return true
			})
		}
	}
	return st
}

// assign handles acquisitions (x := acquire()), alias escapes (y := x)
// and stores of tracked values into anything that is not a plain local
// (s.f = x escapes).
func (f *ownFlow) assign(n *ast.AssignStmt, st *ownState) {
	// RHS first: uses, releases, escapes-into-composites.
	acquiredRhs := -1
	if len(n.Rhs) == 1 {
		if call, ok := n.Rhs[0].(*ast.CallExpr); ok && f.spec.acquire(f.pass, f.file, call) {
			acquiredRhs = 0
			// Arguments of the acquire call are ordinary uses.
			for _, a := range call.Args {
				f.scanUses(a, st, nil)
			}
		}
	}
	if acquiredRhs < 0 {
		for _, e := range n.Rhs {
			// A tracked variable on the RHS of an assignment aliases into
			// the LHS: ownership is no longer solely the variable's.
			f.escapeExpr(e, st)
		}
	}
	for i, lhs := range n.Lhs {
		id := directIdent(lhs)
		if id == nil || id.Obj == nil {
			// Store through a projection (s.f = x, m[k] = x): handled by
			// escapeExpr on the RHS above; stores into tracked var's
			// element (buf[i] = v) are neutral.
			continue
		}
		if acquiredRhs == i {
			if !f.isLocal(id.Obj) {
				continue // acquired into a global: its owner is elsewhere
			}
			if st.get(id.Obj)&ownLive != 0 {
				f.report(n.Rhs[acquiredRhs].Pos(),
					"re-acquiring into "+id.Name+" overwrites a "+f.spec.what+" that has not reached "+f.spec.action)
			}
			st.vars[id.Obj] = ownLive
			if f.acquired == nil {
				f.acquired = map[*ast.Object]token.Pos{}
			}
			f.acquired[id.Obj] = n.Rhs[acquiredRhs].Pos()
			continue
		}
		// Plain reassignment of a tracked variable from something else:
		// the old value is gone. If it was still live, that is a leak.
		if prev, ok := st.vars[id.Obj]; ok && len(n.Rhs) > 0 {
			if prev&ownLive != 0 && prev&(ownReleased|ownEscaped) == 0 && !isNilIdent(rhsFor(n, i)) {
				// Overwriting a definitely-live resource with a new value
				// loses the only handle. nil assignment is a deliberate
				// clear and stays flagged at exit instead.
				f.report(n.Pos(), "assignment overwrites a "+f.spec.what+" that has not reached "+f.spec.action)
			}
			delete(st.vars, id.Obj)
		}
	}
}

func rhsFor(n *ast.AssignStmt, i int) ast.Expr {
	if len(n.Rhs) == len(n.Lhs) {
		return n.Rhs[i]
	}
	if len(n.Rhs) == 1 {
		return n.Rhs[0]
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// deferStmt: a recognized deferred release discharges the obligation from
// this point on every path that reaches it. Deferred closures are scanned
// for releases on tracked variables; any other captured use escapes.
func (f *ownFlow) deferStmt(n *ast.DeferStmt, st *ownState) {
	if f.releaseCall(n.Call, st) {
		return
	}
	if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
		released := map[*ast.Object]bool{}
		ast.Inspect(fl.Body, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				for obj := range st.vars {
					if f.spec.release(f.pass, f.file, call, obj) {
						released[obj] = true
					}
				}
			}
			return true
		})
		for obj := range released {
			f.markReleased(obj, n.Pos(), st)
		}
		// Other captured uses inside the deferred body: escape.
		ast.Inspect(fl.Body, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok && id.Obj != nil && !released[id.Obj] {
				if _, tracked := st.vars[id.Obj]; tracked {
					markEscaped(id.Obj, st)
				}
			}
			return true
		})
		return
	}
	// defer f(x...) with tracked arguments: same rules as a direct call.
	f.call(n.Call, st)
}

// send: channel sends transfer ownership under the arena protocol, or
// escape otherwise.
func (f *ownFlow) send(n *ast.SendStmt, st *ownState) {
	f.scanUses(n.Chan, st, nil)
	if f.spec.sendReleases {
		sent := false
		ast.Inspect(n.Value, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok && id.Obj != nil {
				if _, tracked := st.vars[id.Obj]; tracked {
					f.markReleased(id.Obj, n.Pos(), st)
					sent = true
				}
			}
			return true
		})
		if sent {
			return
		}
		f.scanUses(n.Value, st, nil)
		return
	}
	f.escapeExpr(n.Value, st)
}

// markEscaped performs the escape transition. Escape clears the live
// obligation: ownership now rests with whoever received the value, so
// later re-acquisitions into the same variable are clean and exits do
// not owe a release.
func markEscaped(obj *ast.Object, st *ownState) {
	st.vars[obj] = (st.get(obj) &^ ownLive) | ownEscaped
}

// markReleased performs the release transition, reporting double releases
// when the spec asks for them.
func (f *ownFlow) markReleased(obj *ast.Object, pos token.Pos, st *ownState) {
	prev := st.get(obj)
	if f.spec.doubleRelease && prev == ownReleased {
		f.report(pos, f.spec.what+" released twice: "+obj.Name+" was already released on every path reaching this point")
	}
	st.vars[obj] = (prev &^ ownLive) | ownReleased
}

// releaseCall applies a call's release effects; reports whether the call
// was a recognized release of at least one tracked variable.
func (f *ownFlow) releaseCall(call *ast.CallExpr, st *ownState) bool {
	any := false
	for obj := range st.vars {
		if f.spec.release(f.pass, f.file, call, obj) {
			f.markReleased(obj, call.Pos(), st)
			any = true
		}
	}
	return any
}

// call applies a non-acquire call's effects: releases first, then borrow
// or escape semantics for tracked arguments, neutral receiver methods.
func (f *ownFlow) call(call *ast.CallExpr, st *ownState) {
	if f.releaseCall(call, st) {
		return
	}
	for _, a := range call.Args {
		if id := directIdent(a); id != nil && id.Obj != nil {
			if _, tracked := st.vars[id.Obj]; tracked {
				if !f.spec.argBorrows {
					markEscaped(id.Obj, st)
				}
				continue
			}
		}
		f.scanUses(a, st, nil)
	}
	// Nested closures anywhere in the call (arguments or fun position)
	// capture: escape.
	f.escapeCaptured(call, st)
}

// escapeExpr marks every tracked variable mentioned in e as escaped —
// used for returns, sends (non-arena), RHS aliasing, and stores into
// non-local places.
func (f *ownFlow) escapeExpr(e ast.Expr, st *ownState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			// return foo(sp): the call sees it first (possibly a release),
			// its result escapes, which is fine.
			f.call(call, st)
			return false
		}
		if id, ok := x.(*ast.Ident); ok && id.Obj != nil {
			if _, tracked := st.vars[id.Obj]; tracked {
				markEscaped(id.Obj, st)
			}
		}
		return true
	})
}

// escapeCaptured marks tracked variables captured by any function literal
// under n as escaped.
func (f *ownFlow) escapeCaptured(n ast.Node, st *ownState) {
	ast.Inspect(n, func(x ast.Node) bool {
		fl, ok := x.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(fl.Body, func(y ast.Node) bool {
			if id, ok := y.(*ast.Ident); ok && id.Obj != nil {
				if _, tracked := st.vars[id.Obj]; tracked {
					markEscaped(id.Obj, st)
				}
			}
			return true
		})
		return false
	})
}

// scanUses walks an expression for release calls and nested acquisitions
// whose results vanish; ordinary mentions of tracked variables (receiver
// method calls, indexing, arithmetic) are neutral. skip suppresses
// descent into one subtree.
func (f *ownFlow) scanUses(e ast.Expr, st *ownState, skip ast.Node) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(x ast.Node) bool {
		if x == skip {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			// Closures capture; conservatively escape what they mention.
			f.escapeCaptured(x, st)
			return false
		case *ast.CallExpr:
			if f.spec.acquire(f.pass, f.file, x) {
				f.report(x.Pos(), f.spec.what+" acquired and immediately discarded; the result must reach "+f.spec.action)
				return true
			}
			if f.releaseCall(x, st) {
				return false
			}
			for _, a := range x.Args {
				if id := directIdent(a); id != nil && id.Obj != nil {
					if _, tracked := st.vars[id.Obj]; tracked && !f.spec.argBorrows {
						markEscaped(id.Obj, st)
					}
				}
			}
		}
		return true
	})
}

// runOwnership drives the engine over every function in the package.
func runOwnership(pass *Pass, spec *ownershipSpec) {
	if spec.skipPkg != nil && spec.skipPkg(pass.Path) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file.AST, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				checkOwnership(pass, file, spec, body)
			}
			return true // nested literals analyzed as their own units
		})
	}
}

// checkOwnership analyzes one function body.
func checkOwnership(pass *Pass, file *File, spec *ownershipSpec, body *ast.BlockStmt) {
	flow := &ownFlow{
		pass:     pass,
		file:     file,
		spec:     spec,
		findings: map[token.Pos]string{},
		body:     body,
	}
	g := NewCFG(body)
	entry := g.Forward(flow)

	// Reporting pass: replay transfers with final entry states, then
	// check obligations on non-panic exits.
	flow.recording = true
	for _, blk := range g.ReversePostorder() {
		st, ok := entry[blk]
		if !ok {
			continue
		}
		out := st
		for _, n := range blk.Nodes {
			out = flow.Transfer(n, out)
		}
		if blk.Exit == ExitReturn || blk.Exit == ExitFall {
			final := out.(*ownState)
			for obj, status := range final.vars {
				// May-leak: the resource is live on at least one path into
				// this exit and its ownership never left the function. A
				// release on one branch does not excuse the other branch.
				if status&ownLive != 0 && status&ownEscaped == 0 {
					pos := flow.acquired[obj]
					if pos == token.NoPos {
						pos = body.Pos()
					}
					flow.report(pos, leakMessage(spec, obj.Name, blk.Exit))
				}
			}
		}
	}
	for pos, msg := range flow.findings {
		pass.Reportf(pos, "%s", msg)
	}
}

// leakMessage builds the all-paths diagnostic.
func leakMessage(spec *ownershipSpec, name string, kind ExitKind) string {
	where := "a return path"
	if kind == ExitFall {
		where = "the end of the function"
	}
	return spec.what + " assigned to " + name + " does not reach " + spec.action +
		" on every path: leaked at " + where
}
