// Package globalrand is analyzer testdata: draws from math/rand's global
// source versus an injected seeded generator.
package globalrand

import (
	"math/rand"
)

func bad() {
	_ = rand.Intn(10)     // want "global math/rand source via rand.Intn"
	_ = rand.Float64()    // want "global math/rand source via rand.Float64"
	_ = rand.Int63()      // want "global math/rand source via rand.Int63"
	_ = rand.Perm(4)      // want "global math/rand source via rand.Perm"
	rand.Shuffle(3, swap) // want "global math/rand source via rand.Shuffle"
	rand.Seed(42)         // want "global math/rand source via rand.Seed"
}

func swap(i, j int) {}

// good shows the contract: an explicitly seeded generator, injected or
// constructed from a seed, is the sanctioned source.
func good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64() + float64(rng.Intn(10))
}

func waived() {
	_ = rand.Intn(10) //elan:vet-allow globalrand — testdata: demonstrates the waiver pragma
}

// shadowed: a local identifier named rand is not the package.
func shadowed() {
	rand := seededSource{}
	_ = rand.Intn(10)
}

type seededSource struct{}

func (seededSource) Intn(n int) int { return 0 }
