// Package erridentity exercises the sentinel-identity analyzer.
package erridentity

import "errors"

var ErrClosed = errors.New("closed")
var ErrStopped = errors.New("stopped")
var errInternal = errors.New("internal") // unexported: out of contract

type fakePkg struct{ ErrRemote error }

func do() error { return ErrClosed }

func rawEquality() bool {
	err := do()
	return err == ErrClosed // want `sentinel compared with ==`
}

func rawInequality() {
	if err := do(); err != ErrStopped { // want `sentinel compared with !=`
		_ = err
	}
}

func qualifiedSentinel(tp struct{ ErrTimeout error }) {
	err := do()
	if err == tp.ErrTimeout { // want `sentinel compared with ==`
		return
	}
}

func switchIdentity() string {
	switch do() {
	case ErrClosed: // want `sentinel matched by switch-case identity`
		return "closed"
	case nil:
		return "ok"
	}
	return "other"
}

// errorsIsIsTheContract: the sanctioned form.
func errorsIsIsTheContract() bool {
	err := do()
	return errors.Is(err, ErrClosed)
}

// nilChecksAreFine: nil is not a sentinel.
func nilChecksAreFine() bool {
	err := do()
	return err == nil || err != nil
}

// unexportedIsOutOfScope: the contract covers the exported API surface.
func unexportedIsOutOfScope() bool {
	return do() == errInternal
}

// waived: exact-identity assertions must say why.
func waived() bool {
	err := do()
	return err == ErrClosed //elan:vet-allow erridentity — testdata: demonstrates the waiver pragma
}
