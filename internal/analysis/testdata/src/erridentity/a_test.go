// Test files are inside the contract: the PR-8 wire-identity work exists
// precisely so tests (the contract consumers copy) can use errors.Is.
package erridentity

import "testing"

func TestSentinelInTest(t *testing.T) {
	if err := do(); err != ErrClosed { // want `sentinel compared with !=`
		t.Fatal(err)
	}
}
