// Package clock is analyzer testdata standing in for internal/clock: the
// allowlisted substrate may touch the time package directly, so none of
// these calls diagnose.
package clock

import "time"

func Now() time.Time { return time.Now() }

func Sleep(d time.Duration) { time.Sleep(d) }

func After(d time.Duration) <-chan time.Time { return time.After(d) }
