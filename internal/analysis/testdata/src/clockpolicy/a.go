// Package clockpolicy is analyzer testdata: direct wall-clock reads in a
// runtime package.
package clockpolicy

import (
	"time"
	stdtime "time"
)

// Vars and type references to the time package are fine — only observing
// or waiting on wall time is banned.
var timeout = 5 * time.Second

type event struct {
	at time.Time
	d  time.Duration
}

func bad() {
	_ = time.Now()                     // want "direct wall-clock call time.Now"
	time.Sleep(timeout)                // want "direct wall-clock call time.Sleep"
	<-time.After(timeout)              // want "direct wall-clock call time.After"
	_ = time.NewTimer(timeout)         // want "direct wall-clock call time.NewTimer"
	_ = time.NewTicker(timeout)        // want "direct wall-clock call time.NewTicker"
	_ = time.Since(event{}.at)         // want "direct wall-clock call time.Since"
	_ = stdtime.Now()                  // want "direct wall-clock call time.Now"
	time.AfterFunc(timeout, func() {}) // want "direct wall-clock call time.AfterFunc"
}

func allowed() {
	// A justified waiver on the same line is honored.
	_ = time.Now() //elan:vet-allow clockpolicy — testdata: demonstrates the waiver pragma
	// Constructors and conversions don't observe time.
	_ = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	_ = time.Duration(3)
	_ = time.Unix(0, 0)
}

// shadowed proves resolution is by import, not identifier spelling: a
// local value named time is not the time package.
func shadowed() {
	time := fakeClock{}
	_ = time.Now()
	time.Sleep(0)
}

type fakeClock struct{}

func (fakeClock) Now() struct{}            { return struct{}{} }
func (fakeClock) Sleep(d stdtime.Duration) {}
