// Package goroutinefatal is analyzer testdata: Goexit-calling testing
// methods inside test-spawned goroutines.
package goroutinefatal

import (
	"sync"
	"testing"
)

func TestBad(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		if 1 != 1 {
			t.Fatal("boom") // want "t.Fatal inside a goroutine does not stop the test"
		}
		t.Fatalf("x %d", 1) // want "t.Fatalf inside a goroutine does not stop the test"
		t.FailNow()         // want "t.FailNow inside a goroutine does not stop the test"
		t.Skip("nope")      // want "t.Skip inside a goroutine does not stop the test"
	}()
	<-done
}

func TestNested(t *testing.T) {
	go func() {
		f := func() {
			t.Fatalf("nested literal, same goroutine") // want "t.Fatalf inside a goroutine"
		}
		f()
	}()
}

func BenchmarkBad(b *testing.B) {
	go func() {
		b.Fatal("bench") // want "b.Fatal inside a goroutine"
	}()
}

// TestGood shows the sanctioned pattern: t.Error plus a channel the test
// goroutine drains, with Fatal decisions made on the test goroutine.
func TestGood(t *testing.T) {
	errc := make(chan error, 1)
	go func() {
		t.Error("recorded, does not Goexit")
		t.Logf("logging is fine")
		errc <- nil
	}()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestSubtestRebind: a t.Run callback receives its own *testing.T; Fatal
// on the rebound t is correct even under a go statement.
func TestSubtestRebind(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t.Run("sub", func(t *testing.T) {
			t.Fatal("fine: this t is the subtest's own")
		})
	}()
	wg.Wait()
}

func TestWaived(t *testing.T) {
	go func() {
		t.Fatal("waived") //elan:vet-allow goroutinefatal — testdata: demonstrates the waiver pragma
	}()
}
