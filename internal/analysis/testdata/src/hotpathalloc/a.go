// Package hotpathalloc exercises the hot-path allocation analyzer: only
// functions annotated //elan:hotpath are checked, and every
// alloc-inducing construct inside one is reported precisely.
package hotpathalloc

import "fmt"

type point struct{ x, y float64 }

type state struct {
	buf  []float64
	name string
}

func resident() {}

// hotAllocs demonstrates each flagged construct.
//
//elan:hotpath
func hotAllocs(dst []float64, s *state, n int) {
	scratch := make([]float64, n) // want `hot path allocates: make`
	_ = scratch
	p := new(point) // want `hot path allocates: new`
	_ = p
	q := &point{1, 2} // want `hot path allocates: &composite literal`
	_ = q
	xs := []int{1, 2, 3} // want `hot path allocates: slice literal`
	_ = xs
	m := map[string]int{} // want `hot path allocates: map literal`
	_ = m
	var local []float64
	local = append(local, 1) // want `hot path allocates: append to a non-parameter slice`
	_ = local
	f := func() {} // want `hot path allocates: function literal`
	_ = f
	go resident()            // want `hot path allocates: go statement`
	_ = fmt.Sprintf("%d", n) // want `hot path allocates: fmt\.Sprintf`
	msg := "hot: " + s.name  // want `hot path allocates: string concatenation`
	_ = msg
	bs := []byte(s.name) // want `hot path allocates: slice conversion`
	_ = bs
	str := string(bs) // want `hot path allocates: string\(\.\.\.\) conversion`
	_ = str
	_ = any(n) // want `hot path allocates: any\(\.\.\.\) boxes`
}

// hotClean is the steady-state shape: index writes, value literals,
// appends into caller-owned storage, fixed-size arrays.
//
//elan:hotpath
func hotClean(dst []float64, s *state, v float64) {
	var acc [4]float64
	for i := range dst {
		dst[i] = v + acc[i%4]
	}
	pt := point{v, v} // value literal: stays on the stack
	dst[0] = pt.x
	s.buf = append(s.buf, v) // caller-owned, pre-sized storage
}

// coldUnannotated may allocate freely.
func coldUnannotated(n int) []float64 {
	out := make([]float64, n)
	return out
}

// hotWaived: a priming path inside a hot function, justified.
//
//elan:hotpath
func hotWaived(s *state, n int) {
	if cap(s.buf) < n {
		s.buf = make([]float64, n) //elan:vet-allow hotpathalloc — testdata: demonstrates the waiver pragma
	}
	for i := 0; i < n; i++ {
		s.buf[i] = 0
	}
}
