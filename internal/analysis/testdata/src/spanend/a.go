// Package spanend exercises the span-lifetime analyzer. The types mirror
// internal/telemetry's shape (the analyzer matches the Start*/Child/End
// method names syntactically, so the fixture stays dependency-free).
package spanend

type Span struct{}

func (s *Span) End()                    {}
func (s *Span) Annotate(k, v string)    {}
func (s *Span) Child(name string) *Span { return &Span{} }

type TraceContext struct{}

type Tracer struct{}

func (t *Tracer) StartSpan(name string) *Span                       { return &Span{} }
func (t *Tracer) StartRemoteSpan(name string, p TraceContext) *Span { return &Span{} }

var sink *Span

// leakOnEarlyReturn: the error path returns before End.
func leakOnEarlyReturn(t *Tracer, fail bool) error {
	sp := t.StartSpan("op") // want `span assigned to sp does not reach End\(\) on every path`
	if fail {
		return errDummy
	}
	sp.End()
	return nil
}

// leakOnOneBranch: End on one arm does not excuse the other.
func leakOnOneBranch(t *Tracer, ok bool) {
	sp := t.StartSpan("op") // want `span assigned to sp does not reach End\(\) on every path`
	if ok {
		sp.End()
	}
}

// leakChild: child spans carry the same obligation.
func leakChild(parent *Span, skip bool) {
	c := parent.Child("sub") // want `span assigned to c does not reach End\(\) on every path`
	if skip {
		return
	}
	c.End()
}

// discarded: the result never lands anywhere.
func discarded(t *Tracer) {
	t.StartSpan("op") // want `span acquired and immediately discarded`
}

// deferEnd: the canonical pattern; early returns are covered.
func deferEnd(t *Tracer, fail bool) error {
	sp := t.StartSpan("op")
	defer sp.End()
	sp.Annotate("k", "v")
	if fail {
		return errDummy
	}
	return nil
}

// endOnEveryReturn: explicit End on all paths is equally fine.
func endOnEveryReturn(t *Tracer, fail bool) error {
	sp := t.StartSpan("op")
	if fail {
		sp.End()
		return errDummy
	}
	sp.End()
	return nil
}

// branchAcquire: acquisition on both arms of a branch, one End at the
// bottom — the remote-parent-or-root idiom from collective.AllReduce.
func branchAcquire(t *Tracer, parent TraceContext, remote bool) {
	var sp *Span
	if remote {
		sp = t.StartRemoteSpan("op", parent)
	} else {
		sp = t.StartSpan("op")
	}
	sp.Annotate("mode", "x")
	sp.End()
}

// escapes: handing the span away transfers the obligation.
func escapeByReturn(t *Tracer) *Span {
	sp := t.StartSpan("op")
	return sp
}

func escapeToStruct(t *Tracer) {
	sp := t.StartSpan("op")
	sink = sp
}

func escapeToGoroutine(t *Tracer, done chan struct{}) {
	sp := t.StartSpan("op")
	go func() {
		sp.End()
		close(done)
	}()
}

// panicPathIsNotALeak: abort paths are exempt from the obligation.
func panicPathIsNotALeak(t *Tracer, bad bool) {
	sp := t.StartSpan("op")
	if bad {
		panic("bad")
	}
	sp.End()
}

// loopSpan: per-iteration spans Ended in the loop are clean.
func loopSpan(t *Tracer, n int) {
	for i := 0; i < n; i++ {
		sp := t.StartSpan("iter")
		sp.Annotate("i", "x")
		sp.End()
	}
}

// waived: an acknowledged intentional leak, justified.
func waived(t *Tracer) {
	sp := t.StartSpan("op") //elan:vet-allow spanend — testdata: demonstrates the waiver pragma
	sp.Annotate("k", "v")
}

var errDummy = errOf("dummy")

type errOf string

func (e errOf) Error() string { return string(e) }
