// Package ctxblocking is analyzer testdata: exported blocking APIs with
// and without a context parameter.
package ctxblocking

import "context"

type Conn struct {
	in     chan []byte
	out    chan []byte
	closed chan struct{}
}

// Recv blocks on a channel receive with no way to cancel; the diagnostic
// anchors on the receive site.
func (c *Conn) Recv() []byte {
	return <-c.in // want "exported Recv blocks \\(channel receive\\) but takes no context.Context"
}

// Send blocks on a channel send.
func (c *Conn) Send(b []byte) {
	c.out <- b // want "exported Send blocks \\(channel send\\) but takes no context.Context"
}

// WaitClosed parks in a select with no default.
func (c *Conn) WaitClosed() {
	select { // want "exported WaitClosed blocks \\(select without default\\) but takes no context.Context"
	case <-c.closed:
	}
}

// Drain ranges over a channel.
func (c *Conn) Drain() int {
	n := 0
	for range c.in { // want "exported Drain blocks \\(range over channel\\) but takes no context.Context"
		n++
	}
	return n
}

// RecvCtx is the fix: the same blocking op behind a caller-cancellable
// select would still flag, but a ctx parameter satisfies the contract.
func (c *Conn) RecvCtx(ctx context.Context) ([]byte, error) {
	select {
	case b := <-c.in:
		return b, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Recv2 delegates to the ctx variant; convenience wrappers hold no
// blocking op themselves and pass.
func (c *Conn) Recv2() ([]byte, error) {
	return c.RecvCtx(context.Background())
}

// Close is an exempt terminator name: it unblocks callers rather than
// joining them.
func (c *Conn) Close() {
	c.closed <- struct{}{}
}

// TryRecv never blocks: select with default.
func (c *Conn) TryRecv() ([]byte, bool) {
	select {
	case b := <-c.in:
		return b, true
	default:
		return nil, false
	}
}

// pump is unexported; internal helpers may block, their exported callers
// own the contract.
func (c *Conn) pump() {
	for b := range c.in {
		c.out <- b
	}
}

// Spawn only blocks inside a go-launched literal, which runs elsewhere.
func (c *Conn) Spawn() {
	go func() {
		c.out <- <-c.in
	}()
}
