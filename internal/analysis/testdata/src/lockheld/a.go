// Package lockheld is analyzer testdata: blocking operations performed
// with a mutex still held.
package lockheld

import "sync"

type box struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	done chan struct{}
	v    int
}

func (b *box) badSend() {
	b.mu.Lock()
	b.ch <- 1 // want "channel send while b.mu is held"
	b.mu.Unlock()
}

func (b *box) badRecv() {
	b.mu.Lock()
	v := <-b.ch // want "channel receive while b.mu is held"
	b.mu.Unlock()
	b.v = v
}

func (b *box) badSelect() {
	b.rw.RLock()
	select { // want "select without default while b.rw is held"
	case <-b.done:
	case v := <-b.ch:
		b.v = v
	}
	b.rw.RUnlock()
}

func (b *box) badCall(c *caller) {
	b.mu.Lock()
	defer b.mu.Lock() // note: a second Lock, not an Unlock — still held
	c.Call()          // want "blocking call Call while b.mu is held"
}

// goodUnlockFirst releases before blocking.
func (b *box) goodUnlockFirst() {
	b.mu.Lock()
	v := b.v
	b.mu.Unlock()
	b.ch <- v
}

// goodDeferUnlock: a scheduled defer Unlock discharges the obligation
// (the sync.Cond pattern releases inside Wait).
func (b *box) goodDeferUnlock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- b.v
}

// goodNonBlockingSelect: select with default cannot park.
func (b *box) goodNonBlockingSelect() {
	b.mu.Lock()
	select {
	case b.ch <- b.v:
	default:
	}
	b.mu.Unlock()
}

// goodGoroutine: the send runs on another goroutine; the literal is its
// own analysis unit with no lock of its own.
func (b *box) goodGoroutine() {
	b.mu.Lock()
	v := b.v
	go func() { b.ch <- v }()
	b.mu.Unlock()
}

// goodBranchScoped: flow-conservative branch copies do not leak a branch
// Lock to the fall-through path.
func (b *box) goodBranchScoped(p bool) {
	if p {
		b.mu.Lock()
		b.v++
		b.mu.Unlock()
	}
	b.ch <- b.v
}

func (b *box) waived() {
	b.mu.Lock()
	b.ch <- b.v //elan:vet-allow lockheld — testdata: demonstrates the waiver pragma
	b.mu.Unlock()
}

type caller struct{}

func (*caller) Call() {}
